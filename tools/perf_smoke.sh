#!/usr/bin/env bash
# Simulator-throughput smoke: run the perf_simulator microbenchmarks
# that track end-to-end simulation speed (the FMA micro and one suite
# app) and append the measured rates to BENCH_perf.json at the repo
# root, so the throughput trajectory is visible per-PR.
#
# Usage: tools/perf_smoke.sh [path/to/perf_simulator] [label]
#   perf_simulator default: build/bench/perf_simulator
#   label default:          current git short hash (or "untracked")
#
# Appends one record per invocation:
#   { "label": ..., "date": ..., "fma_sim_cycles_per_s": ...,
#     "fma_ms": ..., "suite_ms": ... }
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
bin="${1:-$repo_root/build/bench/perf_simulator}"
label="${2:-$(git -C "$repo_root" rev-parse --short HEAD \
    2>/dev/null || echo untracked)}"
out="$repo_root/BENCH_perf.json"

if [ ! -x "$bin" ]; then
    echo "perf_smoke: $bin not built (cmake --build build)" >&2
    exit 1
fi

json="$("$bin" \
    --benchmark_filter='BM_FmaMicroSim|BM_SuiteAppSim' \
    --benchmark_repetitions=3 \
    --benchmark_report_aggregates_only=true \
    --benchmark_format=json)"

[ -s "$out" ] || echo "[]" > "$out"

RECORD_JSON="$json" RECORD_LABEL="$label" RECORD_OUT="$out" \
python3 - <<'EOF'
import json, os, time

bench = json.loads(os.environ["RECORD_JSON"])["benchmarks"]
means = {b["name"]: b for b in bench if b.get("aggregate_name") == "mean"}
fma = means["BM_FmaMicroSim_mean"]
suite = means["BM_SuiteAppSim_mean"]

record = {
    "label": os.environ["RECORD_LABEL"],
    "date": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    "fma_sim_cycles_per_s": round(fma["sim_cycles/s"], 1),
    "fma_ms": round(fma["real_time"], 3),
    "suite_ms": round(suite["real_time"], 3),
}

path = os.environ["RECORD_OUT"]
with open(path) as f:
    trajectory = json.load(f)
trajectory.append(record)
with open(path, "w") as f:
    json.dump(trajectory, f, indent=2)
    f.write("\n")

print("perf_smoke: FMA %.0f sim_cycles/s (%.2f ms), suite %.2f ms"
      % (record["fma_sim_cycles_per_s"], record["fma_ms"],
         record["suite_ms"]))
EOF
