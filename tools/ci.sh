#!/usr/bin/env bash
# The whole CI story in one command: configure, build and test every
# preset that gates a merge.
#
#   tools/ci.sh              # default, asan, tsan (in that order)
#   tools/ci.sh default      # just the release build + full suite
#   tools/ci.sh asan tsan    # just the sanitizers
#
# Each preset maps to CMakePresets.json: `default` runs the full test
# suite in Release; `asan`/`tsan` rebuild with the sanitizer and run
# the concurrency/robustness/farm/fuzz labels (including the >10k-
# frame protocol fuzzer, so sanitized fuzzing is part of every run).
# The opt-in daemon smokes (farm_smoke, farm_chaos_smoke,
# checkpoint_smoke) stay opt-in — enable with
# `cmake --preset default -DSCSIM_FARM_CHAOS_SMOKE=ON` first.

set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
[ ${#presets[@]} -gt 0 ] || presets=(default asan tsan)

for p in "${presets[@]}"; do
    echo "==== preset $p: configure"
    cmake --preset "$p"
    echo "==== preset $p: build"
    cmake --build --preset "$p" -j "$(nproc)"
    echo "==== preset $p: test"
    ctest --preset "$p"
done

echo "PASS: ci (${presets[*]})"
