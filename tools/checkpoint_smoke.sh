#!/usr/bin/env bash
# Checkpoint/restore smoke test: real SIGKILLs against real snapshots.
#
# Proves the in-simulation checkpoint contract end to end:
#
#   1. an isolated sweep whose run-job worker is SIGKILLed mid-run
#      *twice*, each time after a snapshot exists on disk — every
#      respawn resumes from the snapshot, and the final manifests are
#      byte-identical (`cmp`) to an uninterrupted run's;
#   2. the same through the farm: a daemon with checkpointing enabled
#      is SIGKILLed mid-sweep, restarted on the same state directory,
#      and `submit --resume` finishes the sweep — journaled jobs are
#      adopted, in-flight ones resume from their snapshots, and the
#      manifest still `cmp`s clean.
#
# Usage: tools/checkpoint_smoke.sh [path-to-scsim_cli]   (default:
#        build/tools/scsim_cli)

set -euo pipefail

CLI=${1:-build/tools/scsim_cli}
if [ ! -x "$CLI" ]; then
    echo "error: $CLI not found — build the default preset first" >&2
    exit 2
fi
CLI=$(readlink -f "$CLI")

WORK=$(mktemp -d "${TMPDIR:-/tmp}/scsim_ckpt_smoke.XXXXXX")
DPID=
cleanup() {
    [ -n "$DPID" ] && kill -9 "$DPID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

SWEEP=(--apps tpcU-q1,pb-sgemm --designs RBA --scale 0.2)

echo "== 1. clean isolated run (reference manifests)"
"$CLI" sweep "${SWEEP[@]}" --isolate --jobs 1 --quiet \
    --out "$WORK/ref.json" --csv "$WORK/ref.csv"

echo "== 2. SIGKILL the worker twice mid-run, resume from snapshots"
SNAPDIR=$WORK/snap
"$CLI" sweep "${SWEEP[@]}" --isolate --jobs 1 --retries 5 --quiet \
    --checkpoint-cycles 1000 --state-dir "$SNAPDIR" \
    --out "$WORK/killed.json" --csv "$WORK/killed.csv" \
    2>"$WORK/killed.log" &
spid=$!

# Each round: wait until a snapshot file exists (so the kill lands
# after recoverable state is on disk), then SIGKILL the run-job
# worker.  The pattern pins the kill to *our* state dir.
kills=0
for round in 1 2; do
    landed=0
    for _ in $(seq 1 400); do
        kill -0 "$spid" 2>/dev/null || break 2
        if ls "$SNAPDIR"/*.snap >/dev/null 2>&1; then
            if pkill -9 -f "run-job .*--state-dir $SNAPDIR" \
                   2>/dev/null; then
                landed=1
                kills=$((kills + 1))
                break
            fi
        fi
        sleep 0.05
    done
    [ "$landed" -eq 1 ] || break
    sleep 0.3   # let the respawn get going before the next round
done
if [ "$kills" -gt 0 ]; then
    echo "   SIGKILLed the worker $kills time(s) with snapshots on disk"
else
    echo "   note: sweep finished before a kill could land"
fi

wait "$spid" || {
    echo "FAIL: killed+resumed sweep exited nonzero" >&2
    cat "$WORK/killed.log" >&2
    exit 1
}
cmp "$WORK/ref.json" "$WORK/killed.json" || {
    echo "FAIL: resumed JSON manifest differs from the clean run" >&2
    exit 1
}
cmp "$WORK/ref.csv" "$WORK/killed.csv" || {
    echo "FAIL: resumed CSV manifest differs from the clean run" >&2
    exit 1
}
ls "$SNAPDIR"/*.snap >/dev/null 2>&1 && {
    echo "FAIL: snapshots left behind after the sweep finished" >&2
    exit 1
}

echo "== 3. farm daemon SIGKILLed mid-sweep, restarted, resumed"
SOCK=$WORK/farm.sock
start_daemon() {
    "$CLI" serve --socket "$SOCK" --workers 1 \
        --cache-dir "$WORK/cache" --state-dir "$WORK/state" \
        --checkpoint-cycles 1000 --quiet >>"$WORK/serve.log" 2>&1 &
    DPID=$!
    for _ in $(seq 1 100); do
        [ -S "$SOCK" ] && return 0
        kill -0 "$DPID" 2>/dev/null || {
            echo "FAIL: daemon died on startup:" >&2
            cat "$WORK/serve.log" >&2
            exit 1
        }
        sleep 0.1
    done
    echo "FAIL: socket never appeared" >&2
    exit 1
}
start_daemon

"$CLI" submit "${SWEEP[@]}" --socket "$SOCK" --name ckpt-smoke --quiet \
    --out "$WORK/farm.json" --csv "$WORK/farm.csv" \
    2>"$WORK/submit1.log" &
cpid=$!

# Kill the daemon once a worker snapshot proves a job is mid-run.
killed=0
for _ in $(seq 1 400); do
    if ls "$WORK/state/snapshots"/*.snap >/dev/null 2>&1; then
        kill -9 "$DPID" 2>/dev/null && killed=1
        break
    fi
    kill -0 "$cpid" 2>/dev/null || break
    sleep 0.05
done
wait "$cpid" 2>/dev/null && clientrc=0 || clientrc=$?
if [ "$killed" -eq 1 ]; then
    echo "   SIGKILLed the daemon with a worker snapshot on disk"
    [ "$clientrc" -ne 0 ] || {
        echo "FAIL: client exited 0 though its daemon was killed" >&2
        exit 1
    }
else
    echo "   note: sweep finished before the daemon could be killed"
fi
pkill -9 -f "run-job .*--state-dir $WORK/state" 2>/dev/null || true
DPID=

start_daemon
"$CLI" submit "${SWEEP[@]}" --socket "$SOCK" --name ckpt-smoke --quiet \
    --resume --out "$WORK/farm.json" --csv "$WORK/farm.csv" || {
    echo "FAIL: resumed submit exited nonzero" >&2
    cat "$WORK/serve.log" >&2
    exit 1
}
cmp "$WORK/ref.json" "$WORK/farm.json" || {
    echo "FAIL: farm resumed JSON manifest differs" >&2
    exit 1
}
cmp "$WORK/ref.csv" "$WORK/farm.csv" || {
    echo "FAIL: farm resumed CSV manifest differs" >&2
    exit 1
}

kill -TERM "$DPID" 2>/dev/null || true
for _ in $(seq 1 100); do
    kill -0 "$DPID" 2>/dev/null || break
    sleep 0.1
done
DPID=

echo "PASS: checkpoint smoke (worker killed twice + daemon restart," \
     "manifests byte-identical)"
