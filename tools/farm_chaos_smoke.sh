#!/usr/bin/env bash
# Chaos smoke test for the hardened sweep farm (`scsim_cli serve`).
#
# Where farm_smoke.sh proves the happy path, this drives the daemon
# through hostile weather and asserts it never crashes and never
# loses a result:
#
#   1. malformed peers: HTTP garbage, a lying `frame` envelope, and a
#      truncated frame followed by an abrupt close;
#   2. admission control: a submission bigger than --max-queued-jobs
#      is refused with scsim-busy and the client's bounded retries
#      give up cleanly — the daemon stays up;
#   3. client liveness: a connected-but-silent peer is told about the
#      idle deadline and disconnected (counted in status --json);
#   4. real load under fire: two concurrent submissions while a
#      run-job worker subprocess is SIGKILLed — manifests must still
#      be byte-identical (`cmp`) to local `sweep --isolate` runs;
#   5. a client SIGKILLed mid-sweep (the sweep survives detached),
#      then `scsim_cli drain`: in-flight jobs finish and journal, the
#      daemon exits 0;
#   6. daemon restart + `submit --resume` with a fresh cache: the
#      interrupted sweep's manifests byte-identical to local ones.
#
# Usage: tools/farm_chaos_smoke.sh [path-to-scsim_cli]   (default:
#        build/tools/scsim_cli)

set -euo pipefail

CLI=${1:-build/tools/scsim_cli}
if [ ! -x "$CLI" ]; then
    echo "error: $CLI not found — build the default preset first" >&2
    exit 2
fi
CLI=$(readlink -f "$CLI")

WORK=$(mktemp -d "${TMPDIR:-/tmp}/scsim_farm_chaos.XXXXXX")
DPID=
cleanup() {
    [ -n "$DPID" ] && kill -9 "$DPID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

# 2 jobs per app/design pair: A and B pass admission alone, the
# OVERLOAD spec (6 jobs) exceeds --max-queued-jobs 4 deterministically.
SWEEP_A=(--apps pb-sgemm --designs RBA --scale 0.1)
SWEEP_B=(--apps rod-bfs --designs RBA --scale 0.1)
SWEEP_C=(--apps rod-nw --designs RBA --scale 0.1)
OVERLOAD=(--apps pb-sgemm,rod-bfs,rod-nw --designs RBA --scale 0.1)

echo "== 1. local reference manifests (sweep --isolate)"
for s in A B C; do
    declare -n spec="SWEEP_$s"
    "$CLI" sweep "${spec[@]}" --isolate --jobs 2 --quiet \
        --out "$WORK/ref_$s.json" --csv "$WORK/ref_$s.csv"
done

echo "== 2. start the daemon with tight limits"
"$CLI" serve --port 0 --workers 2 \
    --cache-dir "$WORK/cache" --state-dir "$WORK/state" \
    --max-queued-jobs 4 --max-sweeps-per-client 2 \
    --idle-timeout 1 --listen-backlog 16 \
    --quiet >"$WORK/serve.log" 2>&1 &
DPID=$!
PORT=
for _ in $(seq 1 100); do
    PORT=$(sed -n 's/^serving on tcp port \([0-9]*\)$/\1/p' \
        "$WORK/serve.log")
    [ -n "$PORT" ] && break
    kill -0 "$DPID" 2>/dev/null || {
        echo "FAIL: daemon died on startup:" >&2
        cat "$WORK/serve.log" >&2
        exit 1
    }
    sleep 0.1
done
[ -n "$PORT" ] || { echo "FAIL: no port line in serve.log" >&2; exit 1; }
echo "   daemon pid $DPID on tcp port $PORT"

alive() {
    kill -0 "$DPID" 2>/dev/null \
        || { echo "FAIL: daemon died ($1)" >&2
             cat "$WORK/serve.log" >&2; exit 1; }
}

echo "== 3. malformed peers: garbage, lying envelope, truncated frame"
# Each peer runs in a subshell with errors tolerated: the daemon may
# reset the connection the instant it sees garbage, and an EPIPE on
# our side is the daemon doing its job, not a test failure.
rawpeer() {
    (exec 3<>"/dev/tcp/127.0.0.1/$PORT" && printf '%s' "$1" >&3) \
        2>/dev/null || true
}
rawpeer $'GET / HTTP/1.1\r\nHost: x\r\n\r\n'
rawpeer $'frame 999999999\nnot that many bytes'
rawpeer $'frame 100\nscsim-hello v2 fnv1a dead'   # then abrupt close
sleep 0.3
alive "after malformed peers"
"$CLI" status --port "$PORT" >/dev/null   # still speaks the protocol

echo "== 4. oversized submission: bounded retries, clean refusal"
if "$CLI" submit "${OVERLOAD[@]}" --port "$PORT" --name chaos-big \
    --busy-retries 2 --quiet \
    --out "$WORK/never.json" >"$WORK/busy.log" 2>&1; then
    echo "FAIL: 6-job submit was admitted past --max-queued-jobs 4" >&2
    exit 1
fi
grep -q "daemon busy" "$WORK/busy.log" || {
    echo "FAIL: refusal was not the typed busy error:" >&2
    cat "$WORK/busy.log" >&2
    exit 1
}
alive "after busy refusal"

echo "== 5. silent client is disconnected at the idle deadline"
idle=$( (exec 3<>"/dev/tcp/127.0.0.1/$PORT" && timeout 15 cat <&3) \
    2>/dev/null || true)
case $idle in
*"idle timeout"*) ;;
*) echo "FAIL: no idle-timeout notice before disconnect" >&2; exit 1 ;;
esac
alive "after idle disconnect"

echo "== 6. concurrent submits while a worker is SIGKILLed"
"$CLI" submit "${SWEEP_A[@]}" --port "$PORT" --name chaos-a --quiet \
    --busy-retries 20 \
    --out "$WORK/farm_A.json" --csv "$WORK/farm_A.csv" &
apid=$!
"$CLI" submit "${SWEEP_B[@]}" --port "$PORT" --name chaos-b --quiet \
    --busy-retries 20 \
    --out "$WORK/farm_B.json" --csv "$WORK/farm_B.csv" &
bpid=$!
killed=0
for _ in $(seq 1 80); do
    w=$(pgrep -P "$DPID" -f run-job | head -1 || true)
    if [ -n "$w" ]; then
        kill -9 "$w" 2>/dev/null && killed=1 && break
    fi
    kill -0 "$apid" 2>/dev/null || kill -0 "$bpid" 2>/dev/null || break
    sleep 0.05
done
[ "$killed" -eq 1 ] && echo "   killed worker subprocess $w" \
    || echo "   note: jobs finished before a worker could be killed"
wait "$apid" || { echo "FAIL: submit A exited nonzero" >&2; exit 1; }
wait "$bpid" || { echo "FAIL: submit B exited nonzero" >&2; exit 1; }
cmp "$WORK/ref_A.json" "$WORK/farm_A.json"
cmp "$WORK/ref_A.csv"  "$WORK/farm_A.csv"
cmp "$WORK/ref_B.json" "$WORK/farm_B.json"
cmp "$WORK/ref_B.csv"  "$WORK/farm_B.csv"

echo "== 7. degradation counters recorded the chaos"
"$CLI" status --port "$PORT" --json >"$WORK/status.json"
field() { sed -n "s/.*\"$1\": \([0-9][0-9]*\).*/\1/p" "$WORK/status.json"; }
rejected=$(field submitsRejected)
idles=$(field idleDisconnects)
if [ "${rejected:-0}" -lt 2 ] || [ "${idles:-0}" -lt 1 ]; then
    echo "FAIL: counters missed the chaos: submitsRejected=$rejected" \
         "idleDisconnects=$idles" >&2
    cat "$WORK/status.json" >&2
    exit 1
fi

echo "== 8. client SIGKILLed mid-sweep, then drain: daemon exits 0"
"$CLI" submit "${SWEEP_C[@]}" --port "$PORT" --name chaos-c --quiet \
    --busy-retries 20 \
    --out "$WORK/farm_C.json" --csv "$WORK/farm_C.csv" &
cpid=$!
sleep 0.3
kill -9 "$cpid" 2>/dev/null || true   # sweep continues detached
wait "$cpid" 2>/dev/null || true
"$CLI" drain --port "$PORT"
drain_rc=0
wait "$DPID" || drain_rc=$?
if [ "$drain_rc" -ne 0 ]; then
    echo "FAIL: drained daemon exited $drain_rc" >&2
    cat "$WORK/serve.log" >&2
    exit 1
fi
DPID=

echo "== 9. restart + submit --resume: byte-identical manifests"
"$CLI" serve --port 0 --workers 2 \
    --cache-dir "$WORK/cache2" --state-dir "$WORK/state" \
    --quiet >"$WORK/serve2.log" 2>&1 &
DPID=$!
PORT=
for _ in $(seq 1 100); do
    PORT=$(sed -n 's/^serving on tcp port \([0-9]*\)$/\1/p' \
        "$WORK/serve2.log")
    [ -n "$PORT" ] && break
    sleep 0.1
done
[ -n "$PORT" ] || { echo "FAIL: restarted daemon has no port" >&2; exit 1; }
"$CLI" submit "${SWEEP_C[@]}" --port "$PORT" --name chaos-c --resume \
    --quiet --out "$WORK/farm_C.json" --csv "$WORK/farm_C.csv"
cmp "$WORK/ref_C.json" "$WORK/farm_C.json"
cmp "$WORK/ref_C.csv"  "$WORK/farm_C.csv"

kill -TERM "$DPID"
for _ in $(seq 1 100); do
    kill -0 "$DPID" 2>/dev/null || break
    sleep 0.1
done
kill -0 "$DPID" 2>/dev/null && {
    echo "FAIL: restarted daemon ignored SIGTERM drain" >&2; exit 1; }
DPID=

echo "PASS: farm chaos smoke"
