#!/usr/bin/env bash
# Crash-containment and resume smoke test for `scsim_cli sweep`.
#
# Drives the real binary through the two failure modes the isolation
# layer exists for:
#
#   1. a worker that dies mid-kernel by SIGSEGV (injected through the
#      SCSIM_FAULT_CRASH hook) — the sweep must finish, record those
#      jobs as "crashed", keep the others "ok", and exit nonzero;
#   2. the whole sweep killed with SIGKILL mid-flight and resumed from
#      its journal — the resumed manifests must be byte-identical to
#      an uninterrupted run's.
#
# Usage: tools/crash_sweep_smoke.sh [build-dir]    (default: build)

set -euo pipefail

BUILD=${1:-build}
CLI=$BUILD/tools/scsim_cli
if [ ! -x "$CLI" ]; then
    echo "error: $CLI not found — build the default preset first" >&2
    exit 2
fi

WORK=$(mktemp -d "${TMPDIR:-/tmp}/scsim_smoke.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

# 3 apps x 2 designs (Baseline is always included) = 6 jobs.
SWEEP=("$CLI" sweep --apps pb-sgemm,rod-bfs,rod-nw --designs RBA
       --scale 0.05 --isolate --retries 1 --quiet)

echo "== 1. clean isolated run (reference manifests)"
"${SWEEP[@]}" --jobs 2 --out "$WORK/ref.json" --csv "$WORK/ref.csv"

echo "== 2. injected SIGSEGV is contained to its jobs"
rc=0
SCSIM_FAULT_CRASH=rod-bfs "${SWEEP[@]}" --jobs 2 \
    --out "$WORK/crash.json" --csv "$WORK/crash.csv" || rc=$?
if [ "$rc" -eq 0 ]; then
    echo "FAIL: sweep with a crashing job exited 0" >&2
    exit 1
fi
if ! grep -q '"status": "crashed"' "$WORK/crash.json"; then
    echo "FAIL: no crashed job recorded in the manifest" >&2
    exit 1
fi
ok=$(grep -c '"status": "ok"' "$WORK/crash.json")
if [ "$ok" -ne 4 ]; then   # rod-bfs crashes under both designs
    echo "FAIL: expected 4 ok jobs next to the crashes, got $ok" >&2
    exit 1
fi

echo "== 3. SIGKILL mid-sweep, then resume from the journal"
JOURNAL=$WORK/sweep.journal
rm -f "$JOURNAL"
"${SWEEP[@]}" --jobs 1 --journal "$JOURNAL" \
    --out "$WORK/killed.json" --csv "$WORK/killed.csv" &
pid=$!
# Kill -9 as soon as the first finished job hits the journal, so real
# work remains for the resumed run.
for _ in $(seq 1 600); do
    kill -0 "$pid" 2>/dev/null || break
    if grep -q '^record ' "$JOURNAL" 2>/dev/null; then
        kill -9 "$pid" 2>/dev/null || true
        break
    fi
    sleep 0.05
done
if wait "$pid"; then
    echo "note: sweep finished before the kill landed;" \
         "resume degenerates to adopt-everything"
fi

"${SWEEP[@]}" --jobs 2 --resume "$JOURNAL" \
    --out "$WORK/resumed.json" --csv "$WORK/resumed.csv"

cmp "$WORK/ref.json" "$WORK/resumed.json" || {
    echo "FAIL: resumed JSON manifest differs from the clean run" >&2
    exit 1
}
cmp "$WORK/ref.csv" "$WORK/resumed.csv" || {
    echo "FAIL: resumed CSV manifest differs from the clean run" >&2
    exit 1
}

echo "PASS: crash contained, kill+resume byte-identical"
