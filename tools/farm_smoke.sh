#!/usr/bin/env bash
# End-to-end smoke test for the sweep farm (`scsim_cli serve`).
#
# Drives the real daemon through the life it was built for:
#
#   1. `serve` with 4 workers on a unix socket;
#   2. two clients submitting overlapping sweeps concurrently — the
#      shared jobs must be computed once (cache hit or in-flight
#      coalesce, visible in `status --json`);
#   3. a worker subprocess SIGKILLed mid-run — its job must be
#      rescheduled and the sweep must still finish clean;
#   4. every farm manifest byte-identical (`cmp`) to a local
#      `sweep --isolate` run of the same spec;
#   5. a clean SIGTERM shutdown.
#
# Usage: tools/farm_smoke.sh [path-to-scsim_cli]   (default:
#        build/tools/scsim_cli)

set -euo pipefail

CLI=${1:-build/tools/scsim_cli}
if [ ! -x "$CLI" ]; then
    echo "error: $CLI not found — build the default preset first" >&2
    exit 2
fi
CLI=$(readlink -f "$CLI")

WORK=$(mktemp -d "${TMPDIR:-/tmp}/scsim_farm_smoke.XXXXXX")
DPID=
cleanup() {
    [ -n "$DPID" ] && kill -9 "$DPID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

# Two overlapping sweeps: rod-bfs (under both designs) is shared.
SWEEP_A=(--apps pb-sgemm,rod-bfs --designs RBA --scale 0.1)
SWEEP_B=(--apps rod-bfs,rod-nw --designs RBA --scale 0.1)

echo "== 1. local reference manifests (sweep --isolate)"
"$CLI" sweep "${SWEEP_A[@]}" --isolate --jobs 2 --quiet \
    --out "$WORK/ref_a.json" --csv "$WORK/ref_a.csv"
"$CLI" sweep "${SWEEP_B[@]}" --isolate --jobs 2 --quiet \
    --out "$WORK/ref_b.json" --csv "$WORK/ref_b.csv"

echo "== 2. start the daemon (4 workers, unix socket)"
SOCK=$WORK/farm.sock
"$CLI" serve --socket "$SOCK" --workers 4 \
    --cache-dir "$WORK/cache" --state-dir "$WORK/state" \
    --quiet >"$WORK/serve.log" 2>&1 &
DPID=$!
for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && break
    kill -0 "$DPID" 2>/dev/null || {
        echo "FAIL: daemon died on startup:" >&2
        cat "$WORK/serve.log" >&2
        exit 1
    }
    sleep 0.1
done
[ -S "$SOCK" ] || { echo "FAIL: socket never appeared" >&2; exit 1; }

echo "== 3. two concurrent clients, one worker SIGKILLed mid-run"
"$CLI" submit "${SWEEP_A[@]}" --socket "$SOCK" --name smoke-a --quiet \
    --out "$WORK/farm_a.json" --csv "$WORK/farm_a.csv" &
apid=$!
"$CLI" submit "${SWEEP_B[@]}" --socket "$SOCK" --name smoke-b --quiet \
    --out "$WORK/farm_b.json" --csv "$WORK/farm_b.csv" &
bpid=$!

# Catch one run-job worker subprocess of the daemon and SIGKILL it;
# the dispatcher must respawn it and the sweeps must not notice.
killed=0
for _ in $(seq 1 80); do
    w=$(pgrep -P "$DPID" -f run-job | head -1 || true)
    if [ -n "$w" ]; then
        kill -9 "$w" 2>/dev/null && killed=1 && break
    fi
    kill -0 "$apid" 2>/dev/null || kill -0 "$bpid" 2>/dev/null || break
    sleep 0.05
done
[ "$killed" -eq 1 ] && echo "   killed worker subprocess $w" \
    || echo "   note: jobs finished before a worker could be killed"

wait "$apid" || { echo "FAIL: submit A exited nonzero" >&2; exit 1; }
wait "$bpid" || { echo "FAIL: submit B exited nonzero" >&2; exit 1; }

echo "== 4. farm manifests must be byte-identical to local ones"
cmp "$WORK/ref_a.json" "$WORK/farm_a.json"
cmp "$WORK/ref_a.csv"  "$WORK/farm_a.csv"
cmp "$WORK/ref_b.json" "$WORK/farm_b.json"
cmp "$WORK/ref_b.csv"  "$WORK/farm_b.csv"

echo "== 5. status --json: both sweeps done, shared jobs deduplicated"
"$CLI" status --socket "$SOCK" --json >"$WORK/status.json"
field() { sed -n "s/.*\"$1\": \([0-9][0-9]*\).*/\1/p" "$WORK/status.json"; }
sweeps=$(field sweepsCompleted)
jobs=$(field jobsCompleted)
hits=$(field cacheHits)
coalesced=$(field jobsCoalesced)
misses=$(field cacheMisses)
if [ "$sweeps" -ne 2 ] || [ "$jobs" -ne 8 ]; then
    echo "FAIL: expected 2 sweeps / 8 jobs, got $sweeps / $jobs" >&2
    cat "$WORK/status.json" >&2
    exit 1
fi
# 6 unique jobs across the two specs: the 2 shared ones must have
# been served from the cache or coalesced in flight, never recomputed.
if [ "$((hits + coalesced))" -lt 2 ] || [ "$misses" -gt 6 ]; then
    echo "FAIL: dedup counters wrong: hits=$hits coalesced=$coalesced" \
         "misses=$misses" >&2
    cat "$WORK/status.json" >&2
    exit 1
fi

echo "== 6. clean shutdown on SIGTERM"
kill -TERM "$DPID"
for _ in $(seq 1 100); do
    kill -0 "$DPID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$DPID" 2>/dev/null; then
    echo "FAIL: daemon ignored SIGTERM" >&2
    exit 1
fi
DPID=

echo "PASS: farm smoke"
