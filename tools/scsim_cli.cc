/**
 * @file
 * Command-line driver for SubCoreSim.
 *
 *   scsim_cli run  --app tpcU-q8 [--scale 0.5] [--sms 8]
 *                  [--set scheduler=RBA] [--set assign=SRR]
 *                  [--config file.cfg] [--concurrent] [--salt N]
 *   scsim_cli run  --trace app.sctrace [...]
 *   scsim_cli run  --micro fma-unbalanced | imbalance:8 | conflict:3
 *                  | hang | crash | crash:abort
 *   scsim_cli sweep [--suite tpch-c | --apps a,b | --subset sensitive]
 *                  [--designs RBA,SRR,ShuffleRBA | --designs all]
 *                  [--jobs N] [--cache-dir DIR] [--out results.json]
 *                  [--csv results.csv] [--scale 0.5] [--sms 8]
 *                  [--set key=value] [--salt N] [--concurrent] [--quiet]
 *                  [--fail-fast] [--max-failures N]
 *                  [--isolate] [--timeout SECONDS] [--retries N]
 *                  [--journal FILE] [--resume FILE]
 *                  [--checkpoint-cycles N --state-dir DIR]
 *   scsim_cli run-job [--checkpoint-cycles N --state-dir DIR]
 *                  (internal: one isolated sweep job; reads an
 *                  scsim-job record on stdin, writes an scsim-jobres
 *                  record on stdout; resumes from DIR/<key>.snap)
 *   scsim_cli serve [--socket /path.sock] [--port N|0] [--workers N]
 *                  [--cache-dir DIR] [--cache-max-bytes N]
 *                  [--state-dir DIR] [--timeout SECONDS] [--retries N]
 *                  [--checkpoint-cycles N]
 *                  [--quiet]    (sweep farm daemon; 0 = ephemeral port)
 *   scsim_cli checkpoint --file SNAP [--verify | --restore]
 *                  (offline snapshot inspection / manual resume)
 *   scsim_cli submit [--socket /path.sock | --port N] [--name LABEL]
 *                  [--detach] [--resume] [sweep selection options]
 *                  [--out results.json] [--csv results.csv] [--quiet]
 *   scsim_cli status [--socket /path.sock | --port N] [--json]
 *   scsim_cli version            (build + wire protocol versions)
 *   scsim_cli list [--suite parboil]
 *   scsim_cli list-designs       (design points + config overlays)
 *   scsim_cli list-policies      (scheduler / assignment registries)
 *   scsim_cli dump --app cg-lou --out cg-lou.sctrace [--scale 0.5]
 *   scsim_cli info [--set key=value ...]
 *
 * Exit code 0 on success; configuration or workload errors print
 * `fatal: ...` on stderr and exit 1.  A sweep contains per-job
 * failures (the other jobs still run and the manifest records each
 * job's status) but exits 1 if any job failed.
 *
 * `--isolate` runs each job in its own `run-job` subprocess so a
 * crashing job is recorded ("crashed", with its signal) instead of
 * killing the sweep; `--journal`/`--resume` checkpoint finished jobs
 * so an interrupted sweep continues where it stopped.  The
 * SCSIM_FAULT_CRASH environment variable (`<token>[:abort|:<sig>]`)
 * arms a deterministic mid-kernel crash in `run-job` workers — test
 * machinery for the containment path.
 */

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <csignal>
#include <cstring>
#include <iostream>
#include <iterator>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "common/fault_inject.hh"
#include "common/io_util.hh"
#include "common/logging.hh"
#include "farm/farm_client.hh"
#include "farm/farm_server.hh"
#include "farm/protocol.hh"
#include "runner/design.hh"
#include "runner/journal.hh"
#include "sim/engine.hh"
#include "sim/registry.hh"
#include "runner/job_key.hh"
#include "runner/report.hh"
#include "runner/sweep_engine.hh"
#include "runner/wire.hh"
#include "trace/trace_io.hh"
#include "workloads/microbench.hh"
#include "workloads/suite.hh"

using namespace scsim;

namespace {

struct Args
{
    std::string command;
    std::map<std::string, std::string> options;
    std::vector<std::string> sets;
};

/**
 * Whether @p flag takes no value.  `--resume` is the one
 * command-dependent case: `sweep --resume FILE` names a journal,
 * `submit --resume` asks the daemon to adopt its own.
 */
bool
isBooleanFlag(const std::string &command, const std::string &flag)
{
    if (flag == "concurrent" || flag == "quiet" || flag == "fail-fast"
        || flag == "isolate")
        return true;
    if (command == "submit"
        && (flag == "detach" || flag == "resume"))
        return true;
    if (command == "status" && flag == "json")
        return true;
    if (command == "checkpoint"
        && (flag == "verify" || flag == "restore"))
        return true;
    return false;
}

Args
parseArgs(int argc, char **argv)
{
    Args args;
    if (argc < 2)
        scsim_fatal(
            "usage: scsim_cli <run|sweep|run-job|serve|submit|status|"
            "drain|checkpoint|version|list|list-designs|list-policies|"
            "dump|info> [options]");
    args.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        std::string flag = argv[i];
        if (flag.rfind("--", 0) != 0)
            scsim_fatal("unexpected argument '%s'", flag.c_str());
        flag.erase(0, 2);
        if (isBooleanFlag(args.command, flag)) {
            args.options[flag] = "1";
            continue;
        }
        if (i + 1 >= argc)
            scsim_fatal("--%s needs a value", flag.c_str());
        std::string value = argv[++i];
        if (flag == "set")
            args.sets.push_back(value);
        else
            args.options[flag] = value;
    }
    return args;
}

GpuConfig
configFor(const Args &args)
{
    GpuConfig cfg = GpuConfig::volta();
    cfg.numSms = 8;
    if (auto it = args.options.find("config"); it != args.options.end())
        cfg.loadFile(it->second);
    if (auto it = args.options.find("sms"); it != args.options.end())
        cfg.set("numSms", it->second);
    for (const std::string &kv : args.sets) {
        auto eq = kv.find('=');
        if (eq == std::string::npos)
            scsim_fatal("--set expects key=value, got '%s'", kv.c_str());
        cfg.set(kv.substr(0, eq), kv.substr(eq + 1));
    }
    cfg.validate();
    return cfg;
}

double
scaleFor(const Args &args)
{
    auto it = args.options.find("scale");
    return it != args.options.end() ? std::stod(it->second) : 0.5;
}

Application
workloadFor(const Args &args)
{
    double scale = scaleFor(args);
    std::uint64_t salt = 0;
    if (auto it = args.options.find("salt"); it != args.options.end())
        salt = std::stoull(it->second);

    if (auto it = args.options.find("app"); it != args.options.end())
        return buildApp(findApp(it->second, scale), salt);
    if (auto it = args.options.find("trace"); it != args.options.end())
        return loadApplication(it->second);
    if (auto it = args.options.find("micro"); it != args.options.end()) {
        const std::string &m = it->second;
        Application app;
        app.name = m;
        app.suite = "micro";
        if (m == "fma-baseline")
            app.kernels.push_back(makeFmaMicro(FmaLayout::Baseline));
        else if (m == "fma-balanced")
            app.kernels.push_back(makeFmaMicro(FmaLayout::Balanced));
        else if (m == "fma-unbalanced")
            app.kernels.push_back(makeFmaMicro(FmaLayout::Unbalanced));
        else if (m.rfind("imbalance:", 0) == 0)
            app.kernels.push_back(
                makeImbalanceMicro(std::stod(m.substr(10))));
        else if (m.rfind("conflict:", 0) == 0)
            app.kernels.push_back(
                makeConflictMicro(std::stoi(m.substr(9))));
        else if (m == "hang")
            app.kernels.push_back(makeHangMicro());
        else if (m == "crash" || m == "crash:abort") {
            app.kernels.push_back(makeCrashMicro());
            FaultInjector::instance().raiseSignalInKernel(
                "crash-micro", m == "crash" ? SIGSEGV : SIGABRT);
        } else
            scsim_fatal("unknown micro '%s'", m.c_str());
        return app;
    }
    scsim_fatal("run/dump need --app, --trace or --micro");
}

int
cmdRun(const Args &args)
{
    GpuConfig cfg = configFor(args);
    Application app = workloadFor(args);
    sim::SimEngine engine(cfg);
    bool concurrent = args.options.count("concurrent") > 0;
    SimStats s = concurrent ? engine.runConcurrent(app)
                            : engine.run(app);

    std::printf("app                : %s (%zu kernel%s%s)\n",
                app.name.c_str(), app.kernels.size(),
                app.kernels.size() == 1 ? "" : "s",
                concurrent ? ", concurrent" : "");
    std::printf("config             : %d SMs x %d sub-cores, %s + %s%s\n",
                cfg.numSms, cfg.subCores, toString(cfg.scheduler),
                toString(cfg.assign),
                cfg.idealWarpMigration ? " + migration-oracle" : "");
    std::printf("cycles             : %llu\n",
                static_cast<unsigned long long>(s.cycles));
    std::printf("warp instructions  : %llu (IPC %.3f)\n",
                static_cast<unsigned long long>(s.instructions),
                s.ipc());
    std::printf("blocks / warps done: %llu / %llu\n",
                static_cast<unsigned long long>(s.blocksCompleted),
                static_cast<unsigned long long>(s.warpsCompleted));
    std::printf("RF reads per cycle : %.1f  (conflict-cycles %llu)\n",
                static_cast<double>(s.rfReads)
                    / static_cast<double>(s.cycles),
                static_cast<unsigned long long>(
                    s.rfBankConflictCycles));
    if (s.l1Accesses)
        std::printf("L1 / L2 hit rate   : %.1f%% / %.1f%%\n",
                    100.0 * (1.0 - static_cast<double>(s.l1Misses)
                                       / static_cast<double>(
                                             s.l1Accesses)),
                    s.l2Accesses
                        ? 100.0 * (1.0
                                   - static_cast<double>(s.l2Misses)
                                         / static_cast<double>(
                                               s.l2Accesses))
                        : 0.0);
    std::printf("issue CoV          : %.3f\n", s.issueCov());
    if (s.warpMigrations)
        std::printf("warp migrations    : %llu\n",
                    static_cast<unsigned long long>(s.warpMigrations));
    for (const auto &[name, span] : s.kernelSpans)
        std::printf("  kernel %-24s %llu cycles\n", name.c_str(),
                    static_cast<unsigned long long>(span));
    return 0;
}

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= csv.size()) {
        std::size_t comma = csv.find(',', start);
        if (comma == std::string::npos)
            comma = csv.size();
        if (comma > start)
            out.push_back(csv.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

/** The (application x design) selection shared by `sweep`/`submit`. */
struct SweepSelection
{
    std::vector<AppSpec> apps;
    std::vector<runner::Design> designs;
    runner::SweepSpec spec;
};

/**
 * Build the sweep spec from the selection flags.  The Baseline design
 * is always included — speedups are reported against it.  `sweep` and
 * `submit` share this so a submitted sweep is, point for point, the
 * sweep a local run would have executed (that identity is what makes
 * their manifests comparable byte for byte).
 */
SweepSelection
selectSweep(const Args &args)
{
    using namespace scsim::runner;

    GpuConfig base = configFor(args);
    double scale = scaleFor(args);

    SweepSelection sel;
    std::vector<AppSpec> &apps = sel.apps;
    if (auto it = args.options.find("apps"); it != args.options.end()) {
        for (const std::string &name : splitList(it->second))
            apps.push_back(findApp(name, scale));
    } else if (auto su = args.options.find("suite");
               su != args.options.end()) {
        apps = suiteApps(su->second, scale);
    } else if (auto ss = args.options.find("subset");
               ss != args.options.end()) {
        if (ss->second == "sensitive")
            apps = sensitiveApps(scale);
        else if (ss->second == "rf")
            apps = rfSensitiveApps(scale);
        else if (ss->second == "all")
            apps = standardSuite(scale);
        else
            scsim_fatal("unknown subset '%s' (sensitive/rf/all)",
                        ss->second.c_str());
    } else {
        apps = standardSuite(scale);
    }
    if (apps.empty())
        scsim_fatal("sweep selected no applications");

    std::vector<Design> &designs = sel.designs;
    designs = { Design::Baseline };
    if (auto it = args.options.find("designs");
        it != args.options.end()) {
        if (it->second == "all") {
            designs = allDesigns();
        } else {
            for (const std::string &name : splitList(it->second)) {
                Design d;
                try {
                    d = parseDesign(name);
                } catch (const ConfigError &e) {
                    // Unknown name: print the menu, not a stack trace.
                    std::fprintf(stderr, "fatal: %s\n"
                                 "available designs:\n", e.what());
                    for (const DesignInfo &info : designCatalog())
                        std::fprintf(stderr, "  %-16s %s\n", info.name,
                                     info.description);
                    std::exit(1);
                }
                if (d != Design::Baseline)
                    designs.push_back(d);
            }
        }
    }

    std::uint64_t salt = 0;
    if (auto it = args.options.find("salt"); it != args.options.end())
        salt = std::stoull(it->second);
    bool concurrent = args.options.count("concurrent") > 0;

    for (const AppSpec &app : apps) {
        for (Design d : designs) {
            SimJob &job = sel.spec.add(app.name + "|" + toString(d),
                                       applyDesign(base, d), app);
            job.salt = salt;
            job.concurrent = concurrent;
        }
    }
    return sel;
}

/**
 * Per-app speedup table over Baseline (Baseline column = cycles).
 * Failed or skipped points print their status instead of a nonsense
 * ratio and are left out of the mean.
 */
void
printSpeedupTable(const SweepSelection &sel,
                  const runner::SweepResult &res)
{
    using namespace scsim::runner;

    auto resultFor = [&](const std::string &tag) -> const JobResult & {
        for (std::size_t i = 0; i < res.tags.size(); ++i)
            if (res.tags[i] == tag)
                return res.results[i];
        scsim_panic("sweep result missing tag '%s'", tag.c_str());
    };
    std::printf("%-16s %12s", "app", "base-cycles");
    for (Design d : sel.designs)
        if (d != Design::Baseline)
            std::printf(" %12s", toString(d));
    std::printf("\n");
    std::vector<std::vector<double>> perDesign(sel.designs.size());
    for (const AppSpec &app : sel.apps) {
        const JobResult &base = resultFor(
            app.name + "|" + toString(Design::Baseline));
        if (base.ok())
            std::printf("%-16s %12llu", app.name.c_str(),
                        static_cast<unsigned long long>(
                            base.stats.cycles));
        else
            std::printf("%-16s %12s", app.name.c_str(),
                        toString(base.status));
        for (std::size_t i = 0; i < sel.designs.size(); ++i) {
            if (sel.designs[i] == Design::Baseline)
                continue;
            const JobResult &r = resultFor(
                app.name + "|" + toString(sel.designs[i]));
            if (base.ok() && r.ok() && r.stats.cycles) {
                double s = static_cast<double>(base.stats.cycles)
                    / static_cast<double>(r.stats.cycles);
                perDesign[i].push_back(s);
                std::printf(" %12.3f", s);
            } else {
                std::printf(" %12s",
                            r.ok() ? "-" : toString(r.status));
            }
        }
        std::printf("\n");
    }
    if (sel.designs.size() > 1) {
        std::printf("%-16s %12s", "MEAN", "");
        for (std::size_t i = 0; i < sel.designs.size(); ++i)
            if (sel.designs[i] != Design::Baseline)
                std::printf(" %12.3f", mean(perDesign[i]));
        std::printf("\n");
    }
}

/**
 * `sweep`: run (application x design) points on the parallel engine
 * and emit a structured manifest.
 */
int
cmdSweep(const Args &args)
{
    using namespace scsim::runner;

    SweepSelection sel = selectSweep(args);
    SweepSpec &spec = sel.spec;

    SweepOptions opts;
    if (auto it = args.options.find("jobs"); it != args.options.end())
        opts.jobs = std::stoi(it->second);
    if (auto it = args.options.find("cache-dir");
        it != args.options.end())
        opts.cacheDir = it->second;
    if (auto it = args.options.find("cache-max-bytes");
        it != args.options.end())
        opts.cacheMaxBytes = std::stoull(it->second);
    opts.progress = args.options.count("quiet") == 0;
    opts.failFast = args.options.count("fail-fast") > 0;
    if (auto it = args.options.find("max-failures");
        it != args.options.end())
        opts.maxFailures = std::stoull(it->second);
    opts.isolate = args.options.count("isolate") > 0;
    if (auto it = args.options.find("timeout");
        it != args.options.end())
        opts.jobTimeoutSec = std::stod(it->second);
    if (auto it = args.options.find("retries");
        it != args.options.end())
        opts.crashAttempts = std::stoi(it->second);
    if (auto it = args.options.find("journal");
        it != args.options.end())
        opts.journalPath = it->second;
    if (auto it = args.options.find("resume");
        it != args.options.end()) {
        opts.resumePath = it->second;
        if (opts.journalPath.empty())
            opts.journalPath = it->second;  // rewritten complete
    }
    if (auto it = args.options.find("checkpoint-cycles");
        it != args.options.end())
        opts.checkpointCycles = std::stoull(it->second);
    if (auto it = args.options.find("state-dir");
        it != args.options.end())
        opts.snapshotDir = it->second;
    if (opts.checkpointCycles && opts.snapshotDir.empty())
        scsim_fatal("--checkpoint-cycles needs --state-dir DIR for "
                    "the snapshot files");
    if (opts.checkpointCycles && !opts.isolate)
        scsim_fatal("--checkpoint-cycles only applies to isolated "
                    "sweeps (add --isolate)");

    SweepEngine engine(opts);
    SweepResult res = engine.run(spec);

    if (auto it = args.options.find("out"); it != args.options.end())
        writeFile(it->second, jsonManifest(spec, res));
    if (auto it = args.options.find("csv"); it != args.options.end())
        writeFile(it->second, csvManifest(spec, res));

    printSpeedupTable(sel, res);
    std::fprintf(stderr, "%s\n", summaryLine(res, opts.jobs).c_str());
    return res.allOk() ? 0 : 1;
}

/**
 * `run-job`: the isolated-sweep worker.  One scsim-job record on
 * stdin, one scsim-jobres record on stdout, exit 0.  Simulation
 * failures (including hangs) are *results*, not process errors —
 * they come back inside the record; a nonzero exit means the
 * protocol itself broke (or the process died, which is the point).
 *
 * With `--checkpoint-cycles N --state-dir DIR` the worker writes a
 * snapshot of the running simulation every N cycles (atomic rename
 * into `DIR/<job-key>.snap`) and, on startup, resumes from any valid
 * snapshot a killed previous attempt left behind.  Damaged or
 * version-skewed snapshots are quarantined as `.corrupt` and the run
 * starts cold — recovery data can never fail the job.  ENOSPC/EDQUOT
 * on a snapshot write degrades to running without checkpoints after
 * one warning.
 */
int
cmdRunJob(const Args &args)
{
    using namespace scsim::runner;

    ignoreSigpipe();

    if (const char *crash = std::getenv("SCSIM_FAULT_CRASH"))
        if (!FaultInjector::instance().armCrashFromEnv(crash))
            scsim_warn("ignoring unparsable SCSIM_FAULT_CRASH='%s'",
                       crash);

    // `<marker-path>!<token>[:abort|:<signum>]`: crash exactly one
    // worker.  The first run-job to win the O_EXCL race on the marker
    // arms the crash; every later spawn (the retry of that same job
    // included) runs clean.  This is how tests prove a killed
    // worker's job is rescheduled, not lost.
    if (const char *once = std::getenv("SCSIM_FAULT_CRASH_ONCE")) {
        std::string v = once;
        auto bang = v.find('!');
        if (bang == std::string::npos || bang == 0
            || bang + 1 >= v.size()) {
            scsim_warn("ignoring unparsable SCSIM_FAULT_CRASH_ONCE="
                       "'%s' (want <marker-path>!<token>[:sig])", once);
        } else {
            std::string marker = v.substr(0, bang);
            std::string spec = v.substr(bang + 1);
            int fd = ::open(marker.c_str(), O_CREAT | O_EXCL | O_WRONLY,
                            0644);
            if (fd >= 0) {
                ::close(fd);
                if (!FaultInjector::instance().armCrashFromEnv(
                        spec.c_str()))
                    scsim_warn("ignoring unparsable crash spec '%s'",
                               spec.c_str());
            }
        }
    }

    if (const char *snap = std::getenv("SCSIM_FAULT_SNAPSHOT_WRITE"))
        if (!FaultInjector::instance().armSnapshotWriteFromEnv(snap))
            scsim_warn("ignoring unparsable SCSIM_FAULT_SNAPSHOT_WRITE"
                       "='%s'", snap);

    std::uint64_t ckptCycles = 0;
    std::string stateDir;
    if (auto it = args.options.find("checkpoint-cycles");
        it != args.options.end())
        ckptCycles = std::stoull(it->second);
    if (auto it = args.options.find("state-dir");
        it != args.options.end())
        stateDir = it->second;

    std::string input(std::istreambuf_iterator<char>(std::cin), {});
    SimJob job;
    switch (parseJob(input, job)) {
      case WireDecode::Ok:
        break;
      case WireDecode::VersionSkew:
        scsim_fatal("run-job: job record from another wire version");
      case WireDecode::Corrupt:
        scsim_fatal("run-job: corrupt job record on stdin");
    }

    JobResult r;
    r.key = jobKey(job);

    bool checkpointing = ckptCycles > 0 && !stateDir.empty();
    if (checkpointing && !makeDirs(stateDir)) {
        scsim_warn("run-job: cannot create state dir '%s' (%s); "
                   "running without checkpoints", stateDir.c_str(),
                   std::strerror(errno));
        checkpointing = false;
    }
    const std::string snapPath =
        stateDir + "/" + keyToHex(r.key) + ".snap";

    auto quarantine = [&](const char *why) {
        std::string bad = snapPath + ".corrupt";
        if (std::rename(snapPath.c_str(), bad.c_str()) == 0)
            scsim_warn("run-job: %s snapshot quarantined as '%s'; "
                       "starting cold", why, bad.c_str());
        else
            scsim_warn("run-job: %s snapshot '%s' could not be "
                       "quarantined; starting cold", why,
                       snapPath.c_str());
    };

    // A previous (killed) attempt's snapshot resumes this one.  Any
    // damage — bad checksum, another format version, or a payload the
    // simulator rejects below — is a cold start, never a job failure.
    std::string resumeState;
    if (checkpointing) {
        std::string text;
        if (readFileAll(snapPath, text)) {
            std::uint64_t snapKey = 0;
            switch (decodeSnapshot(text, snapKey, resumeState)) {
              case WireDecode::Ok:
                if (snapKey != r.key) {
                    resumeState.clear();
                    quarantine("foreign-job");
                }
                break;
              case WireDecode::VersionSkew:
                quarantine("version-skewed");
                break;
              case WireDecode::Corrupt:
                quarantine("corrupt");
                break;
            }
        }
    }

    auto start = std::chrono::steady_clock::now();
    try {
        sim::SimEngine engine(job.cfg);
        bool snapshotsDead = false;  // disk trouble: degrade, once
        if (checkpointing) {
            sim::EngineObserver obs;
            obs.onCheckpoint = [&](const std::string &payload, Cycle) {
                if (snapshotsDead)
                    return;
                int err = 0;
                bool failed =
                    FaultInjector::instance().shouldFailSnapshotWrite();
                if (failed)
                    err = ENOSPC;
                else if (!writeFileAtomic(
                             snapPath, serializeSnapshot(r.key, payload),
                             "." + std::to_string(::getpid()), &err))
                    failed = true;
                if (failed) {
                    // One warning, then run on without persistence —
                    // a full disk must cost the checkpoints, not the
                    // job.
                    snapshotsDead = true;
                    scsim_warn("run-job: snapshot write to '%s' failed "
                               "(%s); continuing without checkpoints",
                               snapPath.c_str(),
                               isDiskFull(err) ? "disk full"
                                               : std::strerror(err));
                }
            };
            engine.addObserver(std::move(obs));
            engine.setCheckpointInterval(ckptCycles);
        }
        if (!resumeState.empty()) {
            try {
                r.stats = engine.resumeApp(job.app, job.salt,
                                           resumeState);
            } catch (const CacheError &e) {
                scsim_warn("run-job: snapshot rejected (%s)", e.what());
                quarantine("unusable");
                r.stats = engine.runApp(job.app, job.salt,
                                        job.concurrent);
            }
        } else {
            r.stats = engine.runApp(job.app, job.salt, job.concurrent);
        }
        r.status = JobStatus::Ok;
    } catch (const HangError &e) {
        r.stats = SimStats{};
        r.status = JobStatus::Hang;
        r.error = e.what();
        std::fprintf(stderr, "%s", e.diagnostic().c_str());
    } catch (const std::exception &e) {
        r.stats = SimStats{};
        r.status = JobStatus::Failed;
        r.error = e.what();
    }
    r.wallMs = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start)
                   .count();

    // The job has a definitive result (ok, hang, or failed): its
    // snapshot has served its purpose.
    if (checkpointing)
        ::unlink(snapPath.c_str());

    std::string record = serializeJobResult(r);
    if (std::fwrite(record.data(), 1, record.size(), stdout)
            != record.size()
        || std::fflush(stdout) != 0)
        scsim_fatal("run-job: cannot write result record to stdout");
    return 0;
}

farm::FarmServer *g_server = nullptr;

extern "C" void
serveSignalHandler(int)
{
    if (g_server)
        g_server->stop();  // async-signal-safe: atomic + pipe write
}

extern "C" void
serveDrainHandler(int)
{
    // SIGTERM means "finish what you started, then go": jobs in
    // flight complete and journal, queued work is left for --resume.
    // A second SIGTERM escalates to the immediate stop.
    if (g_server)
        g_server->drain();  // async-signal-safe like stop()
}

/**
 * `serve`: the sweep farm daemon.  Binds the requested endpoints,
 * prints where it is serving (the ephemeral-port line is what scripts
 * parse), and runs until SIGINT/SIGTERM.
 */
int
cmdServe(const Args &args)
{
    ignoreSigpipe();

    farm::FarmServerOptions opts;
    if (auto it = args.options.find("socket"); it != args.options.end())
        opts.socketPath = it->second;
    if (auto it = args.options.find("port"); it != args.options.end())
        opts.tcpPort = std::stoi(it->second);
    if (opts.socketPath.empty() && opts.tcpPort < 0)
        scsim_fatal("serve needs --socket PATH and/or --port N "
                    "(0 = ephemeral)");
    if (auto it = args.options.find("workers"); it != args.options.end())
        opts.workers = std::stoi(it->second);
    if (auto it = args.options.find("cache-dir");
        it != args.options.end())
        opts.cacheDir = it->second;
    if (auto it = args.options.find("cache-max-bytes");
        it != args.options.end())
        opts.cacheMaxBytes = std::stoull(it->second);
    if (auto it = args.options.find("state-dir");
        it != args.options.end())
        opts.stateDir = it->second;
    if (auto it = args.options.find("timeout"); it != args.options.end())
        opts.jobTimeoutSec = std::stod(it->second);
    if (auto it = args.options.find("retries"); it != args.options.end())
        opts.crashAttempts = std::stoi(it->second);
    if (auto it = args.options.find("checkpoint-cycles");
        it != args.options.end())
        opts.checkpointCycles = std::stoull(it->second);
    if (auto it = args.options.find("max-queued-jobs");
        it != args.options.end())
        opts.maxQueuedJobs = std::stoull(it->second);
    if (auto it = args.options.find("max-sweeps-per-client");
        it != args.options.end())
        opts.maxSweepsPerClient = std::stoull(it->second);
    if (auto it = args.options.find("idle-timeout");
        it != args.options.end())
        opts.idleTimeoutSec = std::stod(it->second);
    if (auto it = args.options.find("max-write-buffer-bytes");
        it != args.options.end())
        opts.maxWriteBufferBytes = std::stoull(it->second);
    if (auto it = args.options.find("listen-backlog");
        it != args.options.end())
        opts.listenBacklog = std::stoi(it->second);
    if (auto it = args.options.find("sndbuf-bytes");
        it != args.options.end())
        opts.sndbufBytes = std::stoi(it->second);
    opts.quiet = args.options.count("quiet") > 0;

    std::string socketPath = opts.socketPath;
    farm::FarmServer server(std::move(opts));
    g_server = &server;
    std::signal(SIGINT, serveSignalHandler);
    std::signal(SIGTERM, serveDrainHandler);

    // Intentionally on stdout and flushed: launch scripts read these
    // lines to learn the endpoints (the ephemeral port especially).
    if (!socketPath.empty())
        std::printf("serving on unix socket %s\n", socketPath.c_str());
    if (server.boundTcpPort() >= 0)
        std::printf("serving on tcp port %d\n", server.boundTcpPort());
    std::fflush(stdout);

    server.run();
    g_server = nullptr;
    return 0;
}

farm::FarmClient
connectFarm(const Args &args)
{
    if (auto it = args.options.find("socket"); it != args.options.end())
        return farm::FarmClient::connectUnixSocket(it->second);
    if (auto it = args.options.find("port"); it != args.options.end())
        return farm::FarmClient::connectTcpPort(std::stoi(it->second));
    scsim_fatal("%s needs --socket PATH or --port N to find the daemon",
                args.command.c_str());
}

/**
 * `submit`: run a sweep on the farm.  Same selection flags and same
 * manifests as a local `sweep` — byte-identical, whichever workers
 * (or whose earlier submissions, via the shared cache) produced the
 * results.
 */
int
cmdSubmit(const Args &args)
{
    using namespace scsim::runner;

    SweepSelection sel = selectSweep(args);
    farm::FarmClient client = connectFarm(args);
    if (auto it = args.options.find("busy-retries");
        it != args.options.end()) {
        farm::FarmClient::RetryPolicy p;
        p.maxAttempts = std::stoi(it->second);
        client.setRetryPolicy(p);
    }

    std::string name = "sweep";
    if (auto it = args.options.find("name"); it != args.options.end())
        name = it->second;
    bool resume = args.options.count("resume") > 0;

    if (args.options.count("detach")) {
        farm::AcceptMsg accept =
            client.submitDetached(sel.spec, name, resume);
        std::printf("submitted sweep %llu: %llu jobs (%llu adopted), "
                    "running detached\n",
                    static_cast<unsigned long long>(accept.sweepId),
                    static_cast<unsigned long long>(accept.jobCount),
                    static_cast<unsigned long long>(accept.adopted));
        return 0;
    }

    bool quiet = args.options.count("quiet") > 0;
    std::size_t done = 0;
    auto onJob = [&](const farm::JobDoneMsg &msg) {
        ++done;
        if (quiet)
            return;
        std::size_t i = static_cast<std::size_t>(msg.index);
        const std::string &tag = i < sel.spec.jobs.size()
            ? sel.spec.jobs[i].tag : std::string("?");
        const JobResult &r = msg.result;
        if (r.ok())
            std::fprintf(stderr,
                         "[%3zu/%zu] %-28s %12llu cycles  %s\n", done,
                         sel.spec.jobs.size(), tag.c_str(),
                         static_cast<unsigned long long>(
                             r.stats.cycles),
                         msg.adopted ? "(journal)"
                                     : r.cached ? "(cache)" : "(farm)");
        else
            std::fprintf(stderr, "[%3zu/%zu] %-28s %s: %s\n", done,
                         sel.spec.jobs.size(), tag.c_str(),
                         toString(r.status), r.error.c_str());
    };

    SweepResult res = client.submit(sel.spec, name, resume, onJob);

    if (auto it = args.options.find("out"); it != args.options.end())
        writeFile(it->second, jsonManifest(sel.spec, res));
    if (auto it = args.options.find("csv"); it != args.options.end())
        writeFile(it->second, csvManifest(sel.spec, res));

    printSpeedupTable(sel, res);
    std::fprintf(stderr, "%s\n", summaryLine(res, 0).c_str());
    return res.allOk() ? 0 : 1;
}

/** `status`: one daemon health snapshot, human-readable or JSON. */
int
cmdStatus(const Args &args)
{
    farm::FarmClient client = connectFarm(args);
    farm::FarmStatus st = client.status();

    if (args.options.count("json")) {
        std::fputs(farm::statusToJson(st).c_str(), stdout);
        return 0;
    }
    std::printf("daemon         : build %s, farm protocol v%u, up "
                "%.1fs\n", st.build.c_str(), st.protocol,
                static_cast<double>(st.uptimeMs) / 1e3);
    std::printf("workers        : %d (%d busy)\n", st.workers,
                st.busyWorkers);
    std::printf("queue          : %llu queued, %llu in flight\n",
                static_cast<unsigned long long>(st.queueDepth),
                static_cast<unsigned long long>(st.inFlight));
    std::printf("sessions       : %llu open\n",
                static_cast<unsigned long long>(st.sessions));
    std::printf("sweeps         : %llu active, %llu completed\n",
                static_cast<unsigned long long>(st.sweepsActive),
                static_cast<unsigned long long>(st.sweepsCompleted));
    std::printf("jobs           : %llu completed (%llu failed, %llu "
                "crashed, %llu coalesced)\n",
                static_cast<unsigned long long>(st.jobsCompleted),
                static_cast<unsigned long long>(st.jobsFailed),
                static_cast<unsigned long long>(st.jobsCrashed),
                static_cast<unsigned long long>(st.jobsCoalesced));
    std::printf("cache          : %llu hits / %llu misses (%.1f%%), "
                "%llu quarantined, %llu evicted\n",
                static_cast<unsigned long long>(st.cacheHits),
                static_cast<unsigned long long>(st.cacheMisses),
                100.0 * st.cacheHitRate(),
                static_cast<unsigned long long>(st.cacheQuarantined),
                static_cast<unsigned long long>(st.cacheEvicted));
    if (st.cacheMaxBytes)
        std::printf("cache disk     : %llu of %llu bytes\n",
                    static_cast<unsigned long long>(st.cacheDiskBytes),
                    static_cast<unsigned long long>(st.cacheMaxBytes));
    else
        std::printf("cache disk     : %llu bytes (unbounded)\n",
                    static_cast<unsigned long long>(st.cacheDiskBytes));
    std::printf("limits         : %llu max queued jobs, %llu max "
                "sweeps/client%s\n",
                static_cast<unsigned long long>(st.maxQueuedJobs),
                static_cast<unsigned long long>(st.maxSweepsPerClient),
                st.draining ? " [draining]" : "");
    std::printf("degradations   : %llu submits rejected, %llu idle "
                "disconnects, %llu slow readers shed\n",
                static_cast<unsigned long long>(st.submitsRejected),
                static_cast<unsigned long long>(st.idleDisconnects),
                static_cast<unsigned long long>(
                    st.slowReaderDisconnects));
    std::printf("               : %llu connections shed, %llu accept "
                "failures, %llu stale completions\n",
                static_cast<unsigned long long>(st.connectionsShed),
                static_cast<unsigned long long>(st.acceptFailures),
                static_cast<unsigned long long>(st.staleCompletions));
    return 0;
}

/** `drain`: ask a daemon to finish in-flight work and exit. */
int
cmdDrain(const Args &args)
{
    farm::FarmClient client = connectFarm(args);
    farm::DrainAckMsg ack = client.drain();
    std::printf("draining: %llu job(s) in flight, %llu queued "
                "(abandoned for --resume), %llu sweep(s) active\n",
                static_cast<unsigned long long>(ack.inFlight),
                static_cast<unsigned long long>(ack.abandoned),
                static_cast<unsigned long long>(ack.sweepsActive));
    return 0;
}

/**
 * `version`: every version a farm peer checks during its handshake.
 * When serve and submit refuse each other, running this on both ends
 * shows which number disagrees.
 */
int
cmdVersion()
{
    std::printf("scsim_cli %s\n", farm::buildVersion());
    std::printf("farm protocol  : v%u\n", farm::kFarmProtocolVersion);
    std::printf("job wire       : v%u\n", runner::kJobWireVersion);
    std::printf("result format  : v%u\n", runner::kResultFormatVersion);
    std::printf("manifest       : v%d\n", runner::kManifestVersion);
    std::printf("snapshot format: v%u\n", runner::kSnapshotVersion);
    return 0;
}

/**
 * `checkpoint`: offline snapshot inspection.
 *
 *   checkpoint --file SNAP            show header + run cursor
 *   checkpoint --file SNAP --verify   exit 0 iff the frame decodes
 *   checkpoint --file SNAP --restore  read an scsim-job record on
 *                                     stdin, finish the interrupted
 *                                     run, print the final stats
 *
 * `--restore` is the manual form of what a `run-job` worker does on
 * startup — useful for post-mortems on a quarantined `.corrupt` file
 * (after renaming it back) or for finishing a one-off run by hand.
 */
int
cmdCheckpoint(const Args &args)
{
    using namespace scsim::runner;

    auto it = args.options.find("file");
    if (it == args.options.end())
        scsim_fatal("checkpoint needs --file SNAPSHOT");
    const std::string &path = it->second;

    std::string text;
    if (!readFileAll(path, text))
        scsim_fatal("cannot read '%s': %s", path.c_str(),
                    std::strerror(errno));

    std::uint64_t snapKey = 0;
    std::string simState;
    WireDecode d = decodeSnapshot(text, snapKey, simState);

    if (args.options.count("verify")) {
        switch (d) {
          case WireDecode::Ok:
            std::printf("ok: job %s, %zu state bytes\n",
                        keyToHex(snapKey).c_str(), simState.size());
            return 0;
          case WireDecode::VersionSkew: {
            FrameHeader h;
            if (peekFrameHeader(text, h))
                std::printf("version skew: %s v%u (this build speaks "
                            "v%u)\n", h.magic.c_str(), h.version,
                            kSnapshotVersion);
            else
                std::printf("version skew\n");
            return 1;
          }
          case WireDecode::Corrupt:
            std::printf("corrupt\n");
            return 1;
        }
    }

    if (d != WireDecode::Ok)
        scsim_fatal("'%s' is not a valid v%u snapshot (%s)",
                    path.c_str(), kSnapshotVersion,
                    d == WireDecode::VersionSkew ? "version skew"
                                                 : "corrupt");

    if (args.options.count("restore")) {
        std::string input(std::istreambuf_iterator<char>(std::cin), {});
        SimJob job;
        if (parseJob(input, job) != WireDecode::Ok)
            scsim_fatal("checkpoint --restore: need a valid scsim-job "
                        "record on stdin");
        if (jobKey(job) != snapKey)
            scsim_fatal("snapshot is for job %s, stdin describes job "
                        "%s", keyToHex(snapKey).c_str(),
                        keyToHex(jobKey(job)).c_str());
        sim::SimEngine engine(job.cfg);
        SimStats s = engine.resumeApp(job.app, job.salt, simState);
        std::printf("resumed job %s to completion: %llu cycles, "
                    "fingerprint %s\n", keyToHex(snapKey).c_str(),
                    static_cast<unsigned long long>(s.cycles),
                    sim::statsFingerprintHex(s).c_str());
        return 0;
    }

    // Default: show.  The run cursor is the first few state fields;
    // print them without deserializing the whole machine.
    std::printf("file           : %s\n", path.c_str());
    std::printf("job key        : %s\n", keyToHex(snapKey).c_str());
    std::printf("snapshot format: v%u\n", kSnapshotVersion);
    std::printf("state bytes    : %zu\n", simState.size());
    std::istringstream in(simState);
    std::string line;
    for (int i = 0; i < 5 && std::getline(in, line); ++i)
        std::printf("  %s\n", line.c_str());
    return 0;
}

int
cmdList(const Args &args)
{
    std::vector<AppSpec> apps;
    if (auto it = args.options.find("suite"); it != args.options.end())
        apps = suiteApps(it->second);
    else
        apps = standardSuite();
    std::string last;
    for (const AppSpec &a : apps) {
        if (a.suite != last) {
            std::printf("[%s]\n", a.suite.c_str());
            last = a.suite;
        }
        std::printf("  %-14s blocks=%-4d warps/block=%-3d kernels=%d\n",
                    a.name.c_str(), a.numBlocks, a.warpsPerBlock,
                    a.numKernels);
    }
    return 0;
}

/** `list-designs`: the design catalogue with its config overlays. */
int
cmdListDesigns()
{
    using namespace scsim::runner;

    for (const DesignInfo &info : designCatalog()) {
        std::string delta;
        const DesignOverlay &o = info.overlay;
        auto append = [&](const std::string &part) {
            if (!delta.empty())
                delta += ", ";
            delta += part;
        };
        if (o.scheduler)
            append(std::string("scheduler=") + toString(*o.scheduler));
        if (o.assign)
            append(std::string("assign=") + toString(*o.assign));
        if (o.subCores)
            append("subCores=" + std::to_string(*o.subCores));
        if (o.bankStealing)
            append("bankStealing=1");
        if (o.cusPerSubcore)
            append("CUs/sub-core=" + std::to_string(*o.cusPerSubcore));
        if (delta.empty())
            delta = "(baseline)";
        std::printf("%-16s %-52s [%s]\n", info.name,
                    info.description, delta.c_str());
        if (info.aliases[0] != '\0')
            std::printf("%-16s   aliases: %s\n", "", info.aliases);
    }
    return 0;
}

/** `list-policies`: the scheduler and assignment registries. */
int
cmdListPolicies()
{
    std::printf("warp schedulers:\n%s",
                sim::schedulerRegistry().describe().c_str());
    std::printf("assignment policies:\n%s",
                sim::assignerRegistry().describe().c_str());
    return 0;
}

int
cmdDump(const Args &args)
{
    auto it = args.options.find("out");
    if (it == args.options.end())
        scsim_fatal("dump needs --out <file>");
    Application app = workloadFor(args);
    saveApplication(it->second, app);
    std::printf("wrote %s: %zu kernels, %llu warp instructions\n",
                it->second.c_str(), app.kernels.size(),
                static_cast<unsigned long long>(
                    app.totalWarpInstructions()));
    return 0;
}

int
cmdInfo(const Args &args)
{
    GpuConfig cfg = configFor(args);
    std::printf("numSms=%d subCores=%d scheduler=%s assign=%s\n",
                cfg.numSms, cfg.subCores, toString(cfg.scheduler),
                toString(cfg.assign));
    std::printf("banks/sub-core=%d CUs/sub-core=%d regfile/sub-core=%u "
                "KB\n", cfg.banksPerCluster(), cfg.cusPerCluster(),
                cfg.regFileBytesPerCluster() / 1024);
    std::printf("issueWidth=%d sharedPool=%d bankStealing=%d "
                "migrationOracle=%d rbaLatency=%d hashEntries=%d\n",
                cfg.issueWidthPerScheduler, cfg.sharedWarpPool,
                cfg.bankStealing, cfg.idealWarpMigration,
                cfg.rbaScoreLatency, cfg.hashTableEntries);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // The library layer throws (see common/sim_error.hh); the CLI is
    // the process boundary where that becomes an exit code.
    try {
        Args args = parseArgs(argc, argv);
        if (args.command == "run")
            return cmdRun(args);
        if (args.command == "sweep")
            return cmdSweep(args);
        if (args.command == "run-job")
            return cmdRunJob(args);
        if (args.command == "checkpoint")
            return cmdCheckpoint(args);
        if (args.command == "serve")
            return cmdServe(args);
        if (args.command == "submit")
            return cmdSubmit(args);
        if (args.command == "status")
            return cmdStatus(args);
        if (args.command == "drain")
            return cmdDrain(args);
        if (args.command == "version")
            return cmdVersion();
        if (args.command == "list")
            return cmdList(args);
        if (args.command == "list-designs")
            return cmdListDesigns();
        if (args.command == "list-policies")
            return cmdListPolicies();
        if (args.command == "dump")
            return cmdDump(args);
        if (args.command == "info")
            return cmdInfo(args);
        scsim_fatal("unknown command '%s' (try run/sweep/run-job/"
                    "serve/submit/status/checkpoint/version/list/"
                    "list-designs/list-policies/dump/info)",
                    args.command.c_str());
    } catch (const HangError &e) {
        std::fprintf(stderr, "fatal: %s\n%s", e.what(),
                     e.diagnostic().c_str());
        return 1;
    } catch (const SimError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    }
}
