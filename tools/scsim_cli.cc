/**
 * @file
 * Command-line driver for SubCoreSim.
 *
 *   scsim_cli run  --app tpcU-q8 [--scale 0.5] [--sms 8]
 *                  [--set scheduler=RBA] [--set assign=SRR]
 *                  [--config file.cfg] [--concurrent] [--salt N]
 *   scsim_cli run  --trace app.sctrace [...]
 *   scsim_cli run  --micro fma-unbalanced | imbalance:8 | conflict:3
 *   scsim_cli list [--suite parboil]
 *   scsim_cli dump --app cg-lou --out cg-lou.sctrace [--scale 0.5]
 *   scsim_cli info [--set key=value ...]
 *
 * Exit code 0 on success; configuration or workload errors terminate
 * with a message on stderr (exit 1).
 */

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "gpu/gpu_sim.hh"
#include "trace/trace_io.hh"
#include "workloads/microbench.hh"
#include "workloads/suite.hh"

using namespace scsim;

namespace {

struct Args
{
    std::string command;
    std::map<std::string, std::string> options;
    std::vector<std::string> sets;
};

Args
parseArgs(int argc, char **argv)
{
    Args args;
    if (argc < 2)
        scsim_fatal("usage: scsim_cli <run|list|dump|info> [options]");
    args.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        std::string flag = argv[i];
        if (flag.rfind("--", 0) != 0)
            scsim_fatal("unexpected argument '%s'", flag.c_str());
        flag = flag.substr(2);
        if (flag == "concurrent") {
            args.options[flag] = "1";
            continue;
        }
        if (i + 1 >= argc)
            scsim_fatal("--%s needs a value", flag.c_str());
        std::string value = argv[++i];
        if (flag == "set")
            args.sets.push_back(value);
        else
            args.options[flag] = value;
    }
    return args;
}

GpuConfig
configFor(const Args &args)
{
    GpuConfig cfg = GpuConfig::volta();
    cfg.numSms = 8;
    if (auto it = args.options.find("config"); it != args.options.end())
        cfg.loadFile(it->second);
    if (auto it = args.options.find("sms"); it != args.options.end())
        cfg.set("numSms", it->second);
    for (const std::string &kv : args.sets) {
        auto eq = kv.find('=');
        if (eq == std::string::npos)
            scsim_fatal("--set expects key=value, got '%s'", kv.c_str());
        cfg.set(kv.substr(0, eq), kv.substr(eq + 1));
    }
    cfg.validate();
    return cfg;
}

double
scaleFor(const Args &args)
{
    auto it = args.options.find("scale");
    return it != args.options.end() ? std::stod(it->second) : 0.5;
}

Application
workloadFor(const Args &args)
{
    double scale = scaleFor(args);
    std::uint64_t salt = 0;
    if (auto it = args.options.find("salt"); it != args.options.end())
        salt = std::stoull(it->second);

    if (auto it = args.options.find("app"); it != args.options.end())
        return buildApp(findApp(it->second, scale), salt);
    if (auto it = args.options.find("trace"); it != args.options.end())
        return loadApplication(it->second);
    if (auto it = args.options.find("micro"); it != args.options.end()) {
        const std::string &m = it->second;
        Application app;
        app.name = m;
        app.suite = "micro";
        if (m == "fma-baseline")
            app.kernels.push_back(makeFmaMicro(FmaLayout::Baseline));
        else if (m == "fma-balanced")
            app.kernels.push_back(makeFmaMicro(FmaLayout::Balanced));
        else if (m == "fma-unbalanced")
            app.kernels.push_back(makeFmaMicro(FmaLayout::Unbalanced));
        else if (m.rfind("imbalance:", 0) == 0)
            app.kernels.push_back(
                makeImbalanceMicro(std::stod(m.substr(10))));
        else if (m.rfind("conflict:", 0) == 0)
            app.kernels.push_back(
                makeConflictMicro(std::stoi(m.substr(9))));
        else
            scsim_fatal("unknown micro '%s'", m.c_str());
        return app;
    }
    scsim_fatal("run/dump need --app, --trace or --micro");
}

int
cmdRun(const Args &args)
{
    GpuConfig cfg = configFor(args);
    Application app = workloadFor(args);
    GpuSim sim(cfg);
    bool concurrent = args.options.count("concurrent") > 0;
    SimStats s = concurrent ? sim.runConcurrent(app) : sim.run(app);

    std::printf("app                : %s (%zu kernel%s%s)\n",
                app.name.c_str(), app.kernels.size(),
                app.kernels.size() == 1 ? "" : "s",
                concurrent ? ", concurrent" : "");
    std::printf("config             : %d SMs x %d sub-cores, %s + %s%s\n",
                cfg.numSms, cfg.subCores, toString(cfg.scheduler),
                toString(cfg.assign),
                cfg.idealWarpMigration ? " + migration-oracle" : "");
    std::printf("cycles             : %llu\n",
                static_cast<unsigned long long>(s.cycles));
    std::printf("warp instructions  : %llu (IPC %.3f)\n",
                static_cast<unsigned long long>(s.instructions),
                s.ipc());
    std::printf("blocks / warps done: %llu / %llu\n",
                static_cast<unsigned long long>(s.blocksCompleted),
                static_cast<unsigned long long>(s.warpsCompleted));
    std::printf("RF reads per cycle : %.1f  (conflict-cycles %llu)\n",
                static_cast<double>(s.rfReads)
                    / static_cast<double>(s.cycles),
                static_cast<unsigned long long>(
                    s.rfBankConflictCycles));
    if (s.l1Accesses)
        std::printf("L1 / L2 hit rate   : %.1f%% / %.1f%%\n",
                    100.0 * (1.0 - static_cast<double>(s.l1Misses)
                                       / static_cast<double>(
                                             s.l1Accesses)),
                    s.l2Accesses
                        ? 100.0 * (1.0
                                   - static_cast<double>(s.l2Misses)
                                         / static_cast<double>(
                                               s.l2Accesses))
                        : 0.0);
    std::printf("issue CoV          : %.3f\n", s.issueCov());
    if (s.warpMigrations)
        std::printf("warp migrations    : %llu\n",
                    static_cast<unsigned long long>(s.warpMigrations));
    for (const auto &[name, span] : s.kernelSpans)
        std::printf("  kernel %-24s %llu cycles\n", name.c_str(),
                    static_cast<unsigned long long>(span));
    return 0;
}

int
cmdList(const Args &args)
{
    std::vector<AppSpec> apps;
    if (auto it = args.options.find("suite"); it != args.options.end())
        apps = suiteApps(it->second);
    else
        apps = standardSuite();
    std::string last;
    for (const AppSpec &a : apps) {
        if (a.suite != last) {
            std::printf("[%s]\n", a.suite.c_str());
            last = a.suite;
        }
        std::printf("  %-14s blocks=%-4d warps/block=%-3d kernels=%d\n",
                    a.name.c_str(), a.numBlocks, a.warpsPerBlock,
                    a.numKernels);
    }
    return 0;
}

int
cmdDump(const Args &args)
{
    auto it = args.options.find("out");
    if (it == args.options.end())
        scsim_fatal("dump needs --out <file>");
    Application app = workloadFor(args);
    saveApplication(it->second, app);
    std::printf("wrote %s: %zu kernels, %llu warp instructions\n",
                it->second.c_str(), app.kernels.size(),
                static_cast<unsigned long long>(
                    app.totalWarpInstructions()));
    return 0;
}

int
cmdInfo(const Args &args)
{
    GpuConfig cfg = configFor(args);
    std::printf("numSms=%d subCores=%d scheduler=%s assign=%s\n",
                cfg.numSms, cfg.subCores, toString(cfg.scheduler),
                toString(cfg.assign));
    std::printf("banks/sub-core=%d CUs/sub-core=%d regfile/sub-core=%u "
                "KB\n", cfg.banksPerCluster(), cfg.cusPerCluster(),
                cfg.regFileBytesPerCluster() / 1024);
    std::printf("issueWidth=%d sharedPool=%d bankStealing=%d "
                "migrationOracle=%d rbaLatency=%d hashEntries=%d\n",
                cfg.issueWidthPerScheduler, cfg.sharedWarpPool,
                cfg.bankStealing, cfg.idealWarpMigration,
                cfg.rbaScoreLatency, cfg.hashTableEntries);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args = parseArgs(argc, argv);
    if (args.command == "run")
        return cmdRun(args);
    if (args.command == "list")
        return cmdList(args);
    if (args.command == "dump")
        return cmdDump(args);
    if (args.command == "info")
        return cmdInfo(args);
    scsim_fatal("unknown command '%s' (try run/list/dump/info)",
                args.command.c_str());
}
