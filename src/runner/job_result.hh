/**
 * @file
 * The outcome of one sweep job.
 *
 * Lives in its own header (rather than sweep_engine.hh) because three
 * layers consume it: the engine that fills it in, the wire format
 * (runner/wire.hh) that ships it across the subprocess boundary and
 * into the resume journal, and the manifest writers.
 */

#ifndef SCSIM_RUNNER_JOB_RESULT_HH
#define SCSIM_RUNNER_JOB_RESULT_HH

#include <cstdint>
#include <string>

#include "stats/stats.hh"

namespace scsim::runner {

/** How one job ended. */
enum class JobStatus
{
    Skipped,  //!< never claimed (failFast / maxFailures tripped)
    Ok,       //!< simulated to completion
    Cached,   //!< served from the result cache
    Failed,   //!< threw (workload/config error at runtime)
    Hang,     //!< forward-progress watchdog or cycle budget fired
    Crashed,  //!< isolated worker died (signal, bad exit, or timeout)
};

/** Debug name: "skipped"/"ok"/"cached"/"failed"/"hang"/"crashed". */
const char *toString(JobStatus s);

/**
 * Manifest form of a status.  Cached collapses to "ok": manifests
 * exclude execution-dependent facts, and cache hits are exactly that.
 */
const char *manifestStatus(JobStatus s);

/** Inverse of toString; false when @p name is not a status. */
bool parseJobStatus(const std::string &name, JobStatus &out);

/** Outcome of one job, in spec order. */
struct JobResult
{
    std::uint64_t key = 0;   //!< content hash (see jobKey)
    SimStats stats;          //!< zeros unless status is Ok/Cached
    JobStatus status = JobStatus::Skipped;
    std::string error;       //!< failure detail; empty when ok
    bool cached = false;     //!< served from the result cache
    double wallMs = 0.0;     //!< simulation time; 0 when cached

    // Process-isolation detail (zero unless status is Crashed).
    int exitCode = 0;        //!< worker exit code when it exited
    int termSignal = 0;      //!< signal that killed the worker
    int attempts = 0;        //!< spawn attempts consumed (isolated runs)

    bool ok() const
    {
        return status == JobStatus::Ok || status == JobStatus::Cached;
    }
};

} // namespace scsim::runner

#endif // SCSIM_RUNNER_JOB_RESULT_HH
