/**
 * @file
 * One crash-isolated job execution, shared by every dispatcher.
 *
 * runJobIsolated() is the single place that knows how to turn a
 * SimJob into a `scsim_cli run-job` child and a decoded JobResult:
 * serialize the job over stdin, enforce the wall-clock deadline
 * (SIGTERM, grace, SIGKILL — see runner/subprocess.hh), decode the
 * result record from stdout, and respawn with doubling backoff when
 * the child crashes, times out, or breaches the protocol.  Both the
 * in-process sweep engine (`sweep --isolate`) and the farm dispatcher
 * (`serve`) call it, so a job crashes, retries, and is recorded
 * identically whether it ran locally or on a daemon.
 */

#ifndef SCSIM_RUNNER_ISOLATED_RUN_HH
#define SCSIM_RUNNER_ISOLATED_RUN_HH

#include <string>

#include "runner/job_result.hh"
#include "runner/sweep_spec.hh"

namespace scsim::runner {

/** How to spawn and police one isolated job. */
struct IsolatedRunOptions
{
    /** Binary to exec; empty = the running executable. */
    std::string selfExe;

    /** Per-job wall-clock limit; 0 = none. */
    double timeoutSec = 0.0;

    /** Spawn attempts before a crash is final (>= 1). */
    int attempts = 3;

    /**
     * Snapshot period in simulated cycles; 0 = checkpointing off.
     * When set (with @ref snapshotDir), the worker writes a snapshot
     * at this cadence and a respawned attempt resumes from the newest
     * valid one instead of cycle 0 — the snapshot file outlives the
     * killed process, so the resume needs no parent-side bookkeeping.
     */
    std::uint64_t checkpointCycles = 0;

    /** Directory for `<job-key>.snap` files (created if missing). */
    std::string snapshotDir;
};

/**
 * Run @p job in its own `run-job` subprocess and fill @p r.  Never
 * throws for child-side outcomes: a crash, timeout, or garbled result
 * record becomes JobStatus::Crashed with the fatal signal / exit code
 * and the attempt count.  @p r.key must be set by the caller (the
 * parent-computed identity wins over whatever the child reports).
 */
void runJobIsolated(const SimJob &job, const IsolatedRunOptions &opts,
                    JobResult &r);

} // namespace scsim::runner

#endif // SCSIM_RUNNER_ISOLATED_RUN_HH
