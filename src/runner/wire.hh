/**
 * @file
 * Versioned, checksummed wire records for the sweep subsystem.
 *
 * One framing convention — a header line `<magic> v<version> fnv1a
 * <16-hex checksum>` followed by a line-oriented payload — carries
 * three record kinds:
 *
 *  - `scsim-result`: a SimStats record.  This is the result cache's
 *    on-disk entry format (byte-compatible with pre-wire caches) and
 *    the stats section of the two records below.
 *  - `scsim-job`: a complete SimJob (tag, every config field, every
 *    workload-spec field, salt, mode), sent on stdin to an isolated
 *    `scsim_cli run-job` worker.
 *  - `scsim-jobres`: a complete JobResult (status, error, crash
 *    detail, stats), returned on the worker's stdout and appended to
 *    the sweep resume journal.
 *
 * Every record is round-trippable to the byte: serialize(parse(x))
 * == x, which is what makes a resumed sweep's manifest identical to
 * an uninterrupted run's.  A checksum or parse failure decodes as
 * Corrupt; a well-formed record of another version as VersionSkew —
 * callers decide whether that means quarantine (cache), re-run
 * (journal), or a crashed worker (IPC).
 */

#ifndef SCSIM_RUNNER_WIRE_HH
#define SCSIM_RUNNER_WIRE_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "runner/job_result.hh"
#include "runner/sweep_spec.hh"
#include "stats/stats.hh"

namespace scsim::runner {

/** Outcome of decoding a framed wire record. */
enum class WireDecode
{
    Ok,           //!< checksum verified, payload parsed
    VersionSkew,  //!< well-formed but another format version
    Corrupt,      //!< bad header, checksum mismatch, or parse failure
};

/** Historical name from the result cache; same three outcomes. */
using StatsDecode = WireDecode;

/** Version of the job / job-result wire records (IPC + journal). */
inline constexpr std::uint32_t kJobWireVersion = 1;

/** Version of the mid-run snapshot record (`scsim-snapshot`). */
inline constexpr std::uint32_t kSnapshotVersion = 1;

/** `<magic> v<version> fnv1a <checksum>\n` + payload. */
std::string frameRecord(const char *magic, std::uint32_t version,
                        const std::string &payload);

/**
 * Undo frameRecord: verify magic, version and checksum, leaving the
 * payload in @p payload (untouched unless Ok is returned).
 */
WireDecode unframeRecord(const char *magic, std::uint32_t version,
                         const std::string &text, std::string &payload);

/** The magic and version of a frame, without verifying its body. */
struct FrameHeader
{
    std::string magic;
    std::uint32_t version = 0;
};

/**
 * Read just the `<magic> v<version>` prefix of a framed record.
 * False when even that much is unparsable.  This is how a peer that
 * rejects a record as VersionSkew finds out *which* version the other
 * side speaks, so it can say so instead of reporting a bad checksum.
 */
bool peekFrameHeader(const std::string &text, FrameHeader &out);

// ---- stream transport: incremental frame reassembly -------------------

/**
 * Wrap @p frame for a byte-stream transport (socket, pipe): a
 * `frame <byte-count>\n` envelope line, then the frame verbatim.
 * Framed records are self-checking but not self-delimiting — on a
 * pipe the record ends at EOF, but a socket carries many records, and
 * read() hands them back in arbitrary chunks.
 */
std::string envelopeFrame(const std::string &frame);

/**
 * Reassembles enveloped frames from arbitrary read() chunks: feed()
 * bytes as they arrive — one at a time, split anywhere, including
 * mid-envelope-line or mid-checksum — and next() yields each complete
 * frame exactly once, in order.  A malformed envelope line or a frame
 * larger than the cap poisons the stream (corrupt() stays true and
 * next() yields nothing further): on a byte stream there is no way to
 * resynchronise past unframed garbage.
 */
/** Default FrameAssembler frame-size cap (64 MiB): any peer claiming
 *  a larger frame is poisoning the stream, not speaking the protocol. */
inline constexpr std::size_t kMaxFrameBytes = 64u << 20;

class FrameAssembler
{
  public:
    explicit FrameAssembler(std::size_t maxFrameBytes = kMaxFrameBytes)
        : maxFrameBytes_(maxFrameBytes)
    {
    }

    /** Absorb @p n more transport bytes. */
    void feed(const char *data, std::size_t n);
    void feed(const std::string &chunk) { feed(chunk.data(), chunk.size()); }

    /** Pop the next complete frame into @p frame; false when none. */
    bool next(std::string &frame);

    /** True once the stream is unrecoverably damaged. */
    bool corrupt() const { return corrupt_; }

    /** Bytes buffered awaiting a complete frame. */
    std::size_t buffered() const { return buf_.size(); }

    /** The frame-size cap this assembler enforces. */
    std::size_t maxFrameBytes() const { return maxFrameBytes_; }

  private:
    void poison();

    std::string buf_;
    std::size_t maxFrameBytes_;
    bool corrupt_ = false;
};

// ---- SimStats records (the result-cache entry format) -----------------

/**
 * Deterministic text form of a SimStats record: a header line with
 * format version and payload checksum, then `key value` lines.
 * Kernel names are backslash-escaped so embedded newlines cannot
 * corrupt the line-oriented format.
 */
std::string serializeStats(const SimStats &stats);

/** Decode @p text into @p out; see WireDecode. */
StatsDecode decodeStats(const std::string &text, SimStats &out);

/** Convenience: decodeStats(...) == Ok. */
bool deserializeStats(const std::string &text, SimStats &out);

// ---- SimJob records (parent -> isolated worker) -----------------------

/** Framed record holding everything a worker needs to run @p job. */
std::string serializeJob(const SimJob &job);

/** Decode a serializeJob record.  May throw ConfigError when a
 *  config key/value pair inside an otherwise valid record is
 *  rejected by GpuConfig::set (version-skewed peers). */
WireDecode parseJob(const std::string &text, SimJob &out);

// ---- JobResult records (worker -> parent, and the journal) ------------

/** Framed record holding @p r, including its full stats. */
std::string serializeJobResult(const JobResult &r);

/** Decode a serializeJobResult record into @p out. */
WireDecode decodeJobResult(const std::string &text, JobResult &out);

// ---- Snapshot records (mid-run checkpoint files) ----------------------

/**
 * Framed record holding a mid-run simulator snapshot: the key of the
 * job it belongs to (a resume refuses a snapshot for any other job)
 * plus GpuSim's serialized run state, verbatim.  Like every other
 * record, damage decodes as Corrupt and an older/newer format as
 * VersionSkew — both of which the resume path treats as "no snapshot:
 * start cold", never as a job failure.
 */
std::string serializeSnapshot(std::uint64_t jobKey,
                              const std::string &simState);

/** Decode a serializeSnapshot record; outputs touched only on Ok. */
WireDecode decodeSnapshot(const std::string &text, std::uint64_t &jobKey,
                          std::string &simState);

} // namespace scsim::runner

#endif // SCSIM_RUNNER_WIRE_HH
