#include "runner/wire.hh"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/text_escape.hh"
#include "runner/job_key.hh"
#include "stats/stats_io.hh"

namespace scsim::runner {

namespace {

constexpr const char *kStatsMagic = "scsim-result";
constexpr const char *kJobMagic = "scsim-job";
constexpr const char *kJobResMagic = "scsim-jobres";
constexpr const char *kSnapshotMagic = "scsim-snapshot";

void
putLine(std::string &out, const char *key, const std::string &value)
{
    out += key;
    out += ' ';
    out += value;
    out += '\n';
}

void
putU64(std::string &out, const char *key, std::uint64_t v)
{
    putLine(out, key, detail::format("%" PRIu64, v));
}

void
putInt(std::string &out, const char *key, int v)
{
    putLine(out, key, detail::format("%d", v));
}

void
putDouble(std::string &out, const char *key, double v)
{
    putLine(out, key, detail::format("%.17g", v));
}

/** Rest-of-line value after @p ls's current position, sans one
 *  leading separator space. */
std::string
restOfLine(std::istringstream &ls)
{
    std::string rest;
    std::getline(ls, rest);
    if (!rest.empty() && rest.front() == ' ')
        rest.erase(0, 1);
    return rest;
}

/** Every GpuConfig field as a `cfg <key> <value>` line.  The key set
 *  mirrors canonicalText(GpuConfig) and must stay in lockstep with
 *  it: both enumerate "everything that determines a result". */
void
putConfig(std::string &out, const GpuConfig &cfg)
{
    auto put = [&](const char *key, const std::string &v) {
        out += "cfg ";
        out += key;
        out += ' ';
        out += v;
        out += '\n';
    };
    auto putI = [&](const char *key, int v) {
        put(key, detail::format("%d", v));
    };
    auto putU = [&](const char *key, std::uint64_t v) {
        put(key, detail::format("%" PRIu64, v));
    };
    auto putB = [&](const char *key, bool v) { put(key, v ? "1" : "0"); };
    auto putD = [&](const char *key, double v) {
        put(key, detail::format("%.17g", v));
    };

    putI("numSms", cfg.numSms);
    putI("schedulersPerSm", cfg.schedulersPerSm);
    putI("subCores", cfg.subCores);
    putI("rfBanksPerSm", cfg.rfBanksPerSm);
    putI("collectorUnitsPerSm", cfg.collectorUnitsPerSm);
    putI("maxWarpsPerSm", cfg.maxWarpsPerSm);
    putI("maxWarpsPerScheduler", cfg.maxWarpsPerScheduler);
    putI("maxBlocksPerSm", cfg.maxBlocksPerSm);
    putU("regFileBytesPerSm", cfg.regFileBytesPerSm);
    putU("smemBytesPerSm", cfg.smemBytesPerSm);
    put("scheduler", toString(cfg.scheduler));
    put("assign", toString(cfg.assign));
    putI("hashTableEntries", cfg.hashTableEntries);
    putI("rbaScoreLatency", cfg.rbaScoreLatency);
    putB("bankStealing", cfg.bankStealing);
    putB("idealWarpMigration", cfg.idealWarpMigration);
    putI("issueWidthPerScheduler", cfg.issueWidthPerScheduler);
    putB("sharedWarpPool", cfg.sharedWarpPool);
    putI("spPipesPerScheduler", cfg.spPipesPerScheduler);
    putI("spInitiation", cfg.spInitiation);
    putI("spLatency", cfg.spLatency);
    putI("sfuPipesPerScheduler", cfg.sfuPipesPerScheduler);
    putI("sfuInitiation", cfg.sfuInitiation);
    putI("sfuLatency", cfg.sfuLatency);
    putI("tensorPipesPerScheduler", cfg.tensorPipesPerScheduler);
    putI("tensorInitiation", cfg.tensorInitiation);
    putI("tensorLatency", cfg.tensorLatency);
    putI("ldstPipesPerScheduler", cfg.ldstPipesPerScheduler);
    putI("ldstInitiation", cfg.ldstInitiation);
    putU("l1Bytes", cfg.l1Bytes);
    putI("l1Ways", cfg.l1Ways);
    putI("l1LineBytes", cfg.l1LineBytes);
    putI("l1HitLatency", cfg.l1HitLatency);
    putI("l1PortsPerSm", cfg.l1PortsPerSm);
    putU("l2Bytes", cfg.l2Bytes);
    putI("l2Ways", cfg.l2Ways);
    putI("l2HitLatency", cfg.l2HitLatency);
    putI("dramLatency", cfg.dramLatency);
    putD("l2SectorsPerCyclePerSm", cfg.l2SectorsPerCyclePerSm);
    putD("dramSectorsPerCyclePerSm", cfg.dramSectorsPerCyclePerSm);
    putI("smemLatency", cfg.smemLatency);
    putU("maxCycles", cfg.maxCycles);
    putU("hangWindowCycles", cfg.hangWindowCycles);
    putB("enableIdleSkip", cfg.enableIdleSkip);
    putU("seed", cfg.seed);
    putB("rfTraceEnable", cfg.rfTraceEnable);
    putU("rfTraceWindow", cfg.rfTraceWindow);
}

void
putApp(std::string &out, const AppSpec &app)
{
    putLine(out, "app.name", escapeLine(app.name));
    putLine(out, "app.suite", escapeLine(app.suite));
    putInt(out, "app.numBlocks", app.numBlocks);
    putInt(out, "app.warpsPerBlock", app.warpsPerBlock);
    putInt(out, "app.regsPerThread", app.regsPerThread);
    putU64(out, "app.smemBytesPerBlock", app.smemBytesPerBlock);
    putInt(out, "app.numKernels", app.numKernels);
    putInt(out, "app.baseInsts", app.baseInsts);
    putDouble(out, "app.fmaFrac", app.fmaFrac);
    putDouble(out, "app.sfuFrac", app.sfuFrac);
    putDouble(out, "app.tensorFrac", app.tensorFrac);
    putDouble(out, "app.memFrac", app.memFrac);
    putDouble(out, "app.storeFrac", app.storeFrac);
    putInt(out, "app.ilp", app.ilp);
    putInt(out, "app.regWindow", app.regWindow);
    putDouble(out, "app.conflictBias", app.conflictBias);
    putDouble(out, "app.hotRegFrac", app.hotRegFrac);
    {
        std::string pat = "app.divPattern";
        for (double d : app.divPattern)
            pat += detail::format(" %.17g", d);
        out += pat;
        out += '\n';
    }
    putDouble(out, "app.divNoise", app.divNoise);
    putDouble(out, "app.divKernelFrac", app.divKernelFrac);
    putInt(out, "app.sectors", app.sectors);
    putU64(out, "app.footprintMB", app.footprintMB);
    putLine(out, "app.randomMem", app.randomMem ? "1" : "0");
}

/** Parse one `app.<field> ...` line; Corrupt on a bad value. */
StatsLine
parseAppLine(const std::string &key, std::istringstream &ls, AppSpec &app)
{
    auto num = [&](auto &field) {
        return static_cast<bool>(ls >> field) ? StatsLine::Consumed
                                              : StatsLine::Corrupt;
    };
    if (key == "app.name") {
        app.name = unescapeLine(restOfLine(ls));
        return StatsLine::Consumed;
    }
    if (key == "app.suite") {
        app.suite = unescapeLine(restOfLine(ls));
        return StatsLine::Consumed;
    }
    if (key == "app.numBlocks") return num(app.numBlocks);
    if (key == "app.warpsPerBlock") return num(app.warpsPerBlock);
    if (key == "app.regsPerThread") return num(app.regsPerThread);
    if (key == "app.smemBytesPerBlock") return num(app.smemBytesPerBlock);
    if (key == "app.numKernels") return num(app.numKernels);
    if (key == "app.baseInsts") return num(app.baseInsts);
    if (key == "app.fmaFrac") return num(app.fmaFrac);
    if (key == "app.sfuFrac") return num(app.sfuFrac);
    if (key == "app.tensorFrac") return num(app.tensorFrac);
    if (key == "app.memFrac") return num(app.memFrac);
    if (key == "app.storeFrac") return num(app.storeFrac);
    if (key == "app.ilp") return num(app.ilp);
    if (key == "app.regWindow") return num(app.regWindow);
    if (key == "app.conflictBias") return num(app.conflictBias);
    if (key == "app.hotRegFrac") return num(app.hotRegFrac);
    if (key == "app.divPattern") {
        app.divPattern.clear();
        double d;
        while (ls >> d)
            app.divPattern.push_back(d);
        return StatsLine::Consumed;
    }
    if (key == "app.divNoise") return num(app.divNoise);
    if (key == "app.divKernelFrac") return num(app.divKernelFrac);
    if (key == "app.sectors") return num(app.sectors);
    if (key == "app.footprintMB") return num(app.footprintMB);
    if (key == "app.randomMem") {
        int b;
        if (!(ls >> b))
            return StatsLine::Corrupt;
        app.randomMem = b != 0;
        return StatsLine::Consumed;
    }
    return StatsLine::Unknown;
}

} // namespace

const char *
toString(JobStatus s)
{
    switch (s) {
      case JobStatus::Skipped: return "skipped";
      case JobStatus::Ok:      return "ok";
      case JobStatus::Cached:  return "cached";
      case JobStatus::Failed:  return "failed";
      case JobStatus::Hang:    return "hang";
      case JobStatus::Crashed: return "crashed";
    }
    return "?";
}

const char *
manifestStatus(JobStatus s)
{
    return s == JobStatus::Cached ? "ok" : toString(s);
}

bool
parseJobStatus(const std::string &name, JobStatus &out)
{
    for (JobStatus s : { JobStatus::Skipped, JobStatus::Ok,
                         JobStatus::Cached, JobStatus::Failed,
                         JobStatus::Hang, JobStatus::Crashed })
        if (name == toString(s)) {
            out = s;
            return true;
        }
    return false;
}

std::string
frameRecord(const char *magic, std::uint32_t version,
            const std::string &payload)
{
    char header[96];
    std::snprintf(header, sizeof header, "%s v%u fnv1a %s\n", magic,
                  version, keyToHex(hashString(payload)).c_str());
    return header + payload;
}

WireDecode
unframeRecord(const char *magic, std::uint32_t version,
              const std::string &text, std::string &payload)
{
    auto nl = text.find('\n');
    if (nl == std::string::npos)
        return WireDecode::Corrupt;
    std::istringstream hs(text.substr(0, nl));
    std::string gotMagic, gotVersion, algo, sum;
    if (!(hs >> gotMagic >> gotVersion) || gotMagic != magic)
        return WireDecode::Corrupt;
    if (gotVersion != detail::format("v%u", version))
        return WireDecode::VersionSkew;
    if (!(hs >> algo >> sum) || algo != "fnv1a")
        return WireDecode::Corrupt;

    std::string body = text.substr(nl + 1);
    if (keyToHex(hashString(body)) != sum)
        return WireDecode::Corrupt;
    payload = std::move(body);
    return WireDecode::Ok;
}

bool
peekFrameHeader(const std::string &text, FrameHeader &out)
{
    auto nl = text.find('\n');
    std::istringstream hs(text.substr(
        0, nl == std::string::npos ? text.size() : nl));
    std::string magic, version;
    if (!(hs >> magic >> version))
        return false;
    if (version.size() < 2 || version.front() != 'v')
        return false;
    char *end = nullptr;
    unsigned long v = std::strtoul(version.c_str() + 1, &end, 10);
    if (!end || *end != '\0')
        return false;
    out.magic = std::move(magic);
    out.version = static_cast<std::uint32_t>(v);
    return true;
}

std::string
envelopeFrame(const std::string &frame)
{
    return detail::format("frame %zu\n", frame.size()) + frame;
}

void
FrameAssembler::feed(const char *data, std::size_t n)
{
    if (!corrupt_)
        buf_.append(data, n);
}

void
FrameAssembler::poison()
{
    // A poisoned stream never yields another frame, so whatever is
    // buffered is garbage a hostile peer made us hold — free it now
    // rather than when the connection object dies.
    corrupt_ = true;
    buf_.clear();
    buf_.shrink_to_fit();
}

bool
FrameAssembler::next(std::string &frame)
{
    if (corrupt_)
        return false;

    // Envelope line: `frame <byte-count>\n`.  Longest legal line is
    // "frame " + 20 digits; anything longer without a newline is
    // already garbage — don't wait for one that may never come.
    auto nl = buf_.find('\n');
    if (nl == std::string::npos) {
        if (buf_.size() > 32)
            poison();
        return false;
    }

    std::istringstream hs(buf_.substr(0, nl));
    std::string kw;
    std::uint64_t nbytes = 0;
    std::string trailing;
    if (!(hs >> kw >> nbytes) || kw != "frame" || (hs >> trailing)
        || nbytes > maxFrameBytes_) {
        poison();
        return false;
    }

    if (buf_.size() - (nl + 1) < nbytes)
        return false;  // body still in flight

    frame = buf_.substr(nl + 1, nbytes);
    buf_.erase(0, nl + 1 + nbytes);
    return true;
}

std::string
serializeStats(const SimStats &stats)
{
    return frameRecord(kStatsMagic, kResultFormatVersion,
                       serializeStatsPayload(stats));
}

StatsDecode
decodeStats(const std::string &text, SimStats &out)
{
    std::string payload;
    WireDecode d = unframeRecord(kStatsMagic, kResultFormatVersion,
                                 text, payload);
    if (d != WireDecode::Ok)
        return d;
    return parseStatsPayload(payload, out) ? WireDecode::Ok
                                           : WireDecode::Corrupt;
}

bool
deserializeStats(const std::string &text, SimStats &out)
{
    return decodeStats(text, out) == StatsDecode::Ok;
}

std::string
serializeJob(const SimJob &job)
{
    std::string payload;
    putLine(payload, "tag", escapeLine(job.tag));
    putU64(payload, "salt", job.salt);
    putLine(payload, "concurrent", job.concurrent ? "1" : "0");
    putConfig(payload, job.cfg);
    putApp(payload, job.app);
    return frameRecord(kJobMagic, kJobWireVersion, payload);
}

WireDecode
parseJob(const std::string &text, SimJob &out)
{
    std::string payload;
    WireDecode d = unframeRecord(kJobMagic, kJobWireVersion, text,
                                 payload);
    if (d != WireDecode::Ok)
        return d;

    SimJob job;
    std::istringstream in(payload);
    std::string line;
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string key;
        if (!(ls >> key))
            continue;
        if (key == "tag") {
            job.tag = unescapeLine(restOfLine(ls));
        } else if (key == "salt") {
            if (!(ls >> job.salt))
                return WireDecode::Corrupt;
        } else if (key == "concurrent") {
            int b;
            if (!(ls >> b))
                return WireDecode::Corrupt;
            job.concurrent = b != 0;
        } else if (key == "cfg") {
            std::string cfgKey, cfgValue;
            if (!(ls >> cfgKey >> cfgValue))
                return WireDecode::Corrupt;
            job.cfg.set(cfgKey, cfgValue);  // may throw ConfigError
        } else if (parseAppLine(key, ls, job.app)
                   == StatsLine::Corrupt) {
            return WireDecode::Corrupt;
        }
        // Unknown keys are skipped: forward-compatible within a
        // format version bump.
    }
    out = std::move(job);
    return WireDecode::Ok;
}

std::string
serializeJobResult(const JobResult &r)
{
    std::string payload;
    putLine(payload, "key", keyToHex(r.key));
    putLine(payload, "status", toString(r.status));
    putLine(payload, "error", escapeLine(r.error));
    putDouble(payload, "wallMs", r.wallMs);
    putLine(payload, "cached", r.cached ? "1" : "0");
    putInt(payload, "exitCode", r.exitCode);
    putInt(payload, "termSignal", r.termSignal);
    putInt(payload, "attempts", r.attempts);
    payload += serializeStatsPayload(r.stats);
    return frameRecord(kJobResMagic, kJobWireVersion, payload);
}

WireDecode
decodeJobResult(const std::string &text, JobResult &out)
{
    std::string payload;
    WireDecode d = unframeRecord(kJobResMagic, kJobWireVersion, text,
                                 payload);
    if (d != WireDecode::Ok)
        return d;

    JobResult r;
    std::istringstream in(payload);
    std::string line;
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string key;
        if (!(ls >> key))
            continue;
        if (key == "key") {
            std::string hex;
            if (!(ls >> hex))
                return WireDecode::Corrupt;
            char *end = nullptr;
            r.key = std::strtoull(hex.c_str(), &end, 16);
            if (!end || *end != '\0')
                return WireDecode::Corrupt;
        } else if (key == "status") {
            std::string name;
            if (!(ls >> name) || !parseJobStatus(name, r.status))
                return WireDecode::Corrupt;
        } else if (key == "error") {
            r.error = unescapeLine(restOfLine(ls));
        } else if (key == "wallMs") {
            if (!(ls >> r.wallMs))
                return WireDecode::Corrupt;
        } else if (key == "cached") {
            int b;
            if (!(ls >> b))
                return WireDecode::Corrupt;
            r.cached = b != 0;
        } else if (key == "exitCode") {
            if (!(ls >> r.exitCode))
                return WireDecode::Corrupt;
        } else if (key == "termSignal") {
            if (!(ls >> r.termSignal))
                return WireDecode::Corrupt;
        } else if (key == "attempts") {
            if (!(ls >> r.attempts))
                return WireDecode::Corrupt;
        } else if (parseStatsLine(line, r.stats) == StatsLine::Corrupt) {
            return WireDecode::Corrupt;
        }
    }
    out = std::move(r);
    return WireDecode::Ok;
}

std::string
serializeSnapshot(std::uint64_t jobKey, const std::string &simState)
{
    // First payload line pins the job key; the simulator state (its
    // own line-oriented `key value` text) follows verbatim, so the
    // record round-trips to the byte.
    std::string payload;
    putLine(payload, "key", keyToHex(jobKey));
    payload += simState;
    return frameRecord(kSnapshotMagic, kSnapshotVersion, payload);
}

WireDecode
decodeSnapshot(const std::string &text, std::uint64_t &jobKey,
               std::string &simState)
{
    std::string payload;
    WireDecode d = unframeRecord(kSnapshotMagic, kSnapshotVersion, text,
                                 payload);
    if (d != WireDecode::Ok)
        return d;

    auto nl = payload.find('\n');
    if (nl == std::string::npos)
        return WireDecode::Corrupt;
    std::istringstream ls(payload.substr(0, nl));
    std::string kw, hex;
    std::string trailing;
    if (!(ls >> kw >> hex) || kw != "key" || (ls >> trailing))
        return WireDecode::Corrupt;
    char *end = nullptr;
    std::uint64_t key = std::strtoull(hex.c_str(), &end, 16);
    if (!end || *end != '\0')
        return WireDecode::Corrupt;

    jobKey = key;
    simState = payload.substr(nl + 1);
    return WireDecode::Ok;
}

} // namespace scsim::runner
