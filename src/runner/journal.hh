/**
 * @file
 * Append-only sweep journal: the checkpoint behind `--resume`.
 *
 * One record per finished job (in completion order, not spec order),
 * each an fsync'd append of a framed `scsim-jobres` wire record plus
 * the job's spec index and tag.  The header pins the spec hash and
 * job count, so a journal can never be replayed against a different
 * sweep.  Reads are tolerant of a truncated or corrupt *tail* — the
 * expected wreckage of a SIGKILL mid-append — by keeping every intact
 * record before the damage and dropping the rest; any dropped job
 * simply re-runs.
 *
 * Because every record round-trips to the byte and the engine reports
 * results in spec order, a killed-and-resumed sweep writes a manifest
 * byte-identical to an uninterrupted run at any worker count.
 */

#ifndef SCSIM_RUNNER_JOURNAL_HH
#define SCSIM_RUNNER_JOURNAL_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "runner/job_result.hh"
#include "runner/sweep_spec.hh"

namespace scsim::runner {

/** Spec identity a journal is pinned to: hash of every job's tag and
 *  canonical text.  Any job edit, reorder, insertion or removal
 *  changes it. */
std::uint64_t sweepSpecHash(const SweepSpec &spec);

/** One journal entry, as read back. */
struct JournalRecord
{
    std::size_t index = 0;  //!< position in spec.jobs
    std::string tag;
    JobResult result;
};

/** Everything readJournal() recovered. */
struct JournalContents
{
    std::uint64_t specHash = 0;
    std::uint64_t jobCount = 0;
    std::vector<JournalRecord> records;
    std::uint64_t dropped = 0;  //!< damaged tail records discarded
};

/**
 * Parse a journal file.  Throws CacheError when the file cannot be
 * opened or its header is unusable; a damaged tail is recovered from
 * (see @ref JournalContents::dropped).
 */
JournalContents readJournal(const std::string &path);

/**
 * Appender.  Construction writes (and fsyncs) the header when the
 * file is empty or @p fresh asked for truncation; append() fsyncs
 * every record, so anything this class returned from is on disk.
 * Construction throws CacheError on I/O faults.
 *
 * A full disk (ENOSPC/EDQUOT) mid-sweep must not take the sweep down
 * with it: append() then warns once, stops journaling, and every
 * later append is a silent no-op — the sweep finishes, it just is not
 * resumable past the last durable record.  Other I/O faults still
 * throw CacheError.
 */
class JournalWriter
{
  public:
    JournalWriter(const std::string &path, std::uint64_t specHash,
                  std::uint64_t jobCount, bool fresh);
    ~JournalWriter();

    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    /** Durably append one finished job (no-op after disk-full). */
    void append(std::size_t index, const std::string &tag,
                const JobResult &result);

    /** Has a full disk turned appends into no-ops? */
    bool degraded() const { return dead_; }

  private:
    /** Write all of @p text; returns 0 or the failing errno. */
    int writeAll(const std::string &text);

    std::string path_;
    int fd_ = -1;
    bool dead_ = false;  //!< disk filled up; appends are no-ops now
    std::mutex mutex_;
};

} // namespace scsim::runner

#endif // SCSIM_RUNNER_JOURNAL_HH
