#include "runner/isolated_run.hh"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/logging.hh"
#include "runner/subprocess.hh"
#include "runner/wire.hh"

namespace scsim::runner {

namespace {

/** First line of a (possibly multi-line) error message. */
std::string
firstLine(const std::string &s)
{
    auto nl = s.find('\n');
    return nl == std::string::npos ? s : s.substr(0, nl);
}

} // namespace

void
runJobIsolated(const SimJob &job, const IsolatedRunOptions &opts,
               JobResult &r)
{
    const std::string exe = opts.selfExe.empty()
        ? currentExecutablePath()
        : opts.selfExe;
    const std::string input = serializeJob(job);
    const int attempts = std::max(1, opts.attempts);

    std::vector<std::string> argv{ exe, "run-job" };
    if (opts.checkpointCycles && !opts.snapshotDir.empty()) {
        argv.push_back("--checkpoint-cycles");
        argv.push_back(std::to_string(opts.checkpointCycles));
        argv.push_back("--state-dir");
        argv.push_back(opts.snapshotDir);
    }

    for (int attempt = 1;; ++attempt) {
        SubprocessResult sub = runSubprocess(argv, input,
                                             opts.timeoutSec);
        r.attempts = attempt;
        if (sub.exitedCleanly()) {
            JobResult decoded;
            if (decodeJobResult(sub.stdoutText, decoded)
                == WireDecode::Ok) {
                decoded.key = r.key;  // parent-computed identity wins
                decoded.cached = false;
                decoded.attempts = attempt;
                r = std::move(decoded);
                return;
            }
            // A clean exit with garbage on stdout is a protocol
            // breach; treat it exactly like a crash (retry, then
            // record) so a half-written record cannot pass for ok.
            r.error = "worker exited cleanly without a valid result "
                      "record";
        } else if (sub.timedOut) {
            r.error = detail::format("worker timed out after %.1fs",
                                     opts.timeoutSec);
        } else if (sub.termSignal) {
            r.error = detail::format("worker crashed: signal %d (%s)",
                                     sub.termSignal,
                                     strsignal(sub.termSignal));
        } else {
            r.error = detail::format(
                "worker exited with code %d without a result",
                sub.exitCode);
        }
        r.status = JobStatus::Crashed;
        r.stats = SimStats{};
        r.exitCode = sub.exitCode;
        r.termSignal = sub.termSignal;
        // Crash forensics go to the diagnostics stream, never into
        // the recorded error: a stderr tail can contain addresses,
        // and the recorded text must be identical across re-runs for
        // manifests to stay byte-reproducible.
        if (!sub.stderrTail.empty())
            scsim_warn("job '%s' worker stderr tail:\n%s",
                       job.tag.c_str(), sub.stderrTail.c_str());
        if (attempt >= attempts)
            return;
        scsim_warn("job '%s' %s (attempt %d/%d), respawning",
                   job.tag.c_str(), firstLine(r.error).c_str(),
                   attempt, attempts);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(1LL << attempt));
    }
}

} // namespace scsim::runner
