/**
 * @file
 * Content-addressed simulation result cache.
 *
 * Results are stored twice: an in-memory map for hits within one
 * process, and (when a directory is configured) one text file per key
 * on disk so re-running a figure after an unrelated code change skips
 * every already-computed point.  Disk entries are written to a
 * temporary file and renamed into place, so concurrent writers and
 * torn writes can never corrupt a visible entry; unreadable or
 * version-skewed entries degrade to cache misses, never to errors.
 *
 * Layout: `<dir>/<16-hex-digit key>.stats`, one file per result, in a
 * line-oriented `key value` format (see serializeStats).
 */

#ifndef SCSIM_RUNNER_RESULT_CACHE_HH
#define SCSIM_RUNNER_RESULT_CACHE_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "stats/stats.hh"

namespace scsim::runner {

/** Deterministic text form of a SimStats record. */
std::string serializeStats(const SimStats &stats);

/** Inverse of serializeStats; false on malformed/version-skewed text. */
bool deserializeStats(const std::string &text, SimStats &out);

class ResultCache
{
  public:
    /** Memory-only cache. */
    ResultCache() = default;

    /** Memory + disk cache rooted at @p dir (created if absent). */
    explicit ResultCache(std::string dir);

    /** True (and fills @p out) if @p key is cached in memory or disk. */
    bool lookup(std::uint64_t key, SimStats &out);

    /** Record @p stats under @p key in memory and, if set, on disk. */
    void store(std::uint64_t key, const SimStats &stats);

    const std::string &dir() const { return dir_; }

    // Counters (monotonic, thread-safe via the cache mutex).
    std::uint64_t hits() const;
    std::uint64_t misses() const;

  private:
    std::string pathFor(std::uint64_t key) const;

    std::string dir_;
    mutable std::mutex mutex_;
    std::unordered_map<std::uint64_t, SimStats> memory_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace scsim::runner

#endif // SCSIM_RUNNER_RESULT_CACHE_HH
