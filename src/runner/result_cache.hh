/**
 * @file
 * Content-addressed simulation result cache.
 *
 * Results are stored twice: an in-memory map for hits within one
 * process, and (when a directory is configured) one text file per key
 * on disk so re-running a figure after an unrelated code change skips
 * every already-computed point.  Disk entries are written to a
 * temporary file and renamed into place, so concurrent writers and
 * torn writes can never corrupt a visible entry.
 *
 * Integrity: every entry carries an FNV-1a checksum of its payload in
 * the header line.  A checksum or parse failure quarantines the file
 * to `<key>.corrupt` (with a warning) and degrades to a cache miss,
 * so the job transparently re-runs; a version-skewed entry (written
 * by an older or newer format) is a plain miss.  Transient I/O
 * faults — including injected ones (common/fault_inject.hh) — throw
 * CacheError, which the sweep engine retries with bounded backoff.
 *
 * Layout: `<dir>/<16-hex-digit key>.stats`, one file per result, in a
 * line-oriented `key value` format (see serializeStats in
 * runner/wire.hh, which owns the record framing shared with the
 * subprocess IPC and the sweep resume journal).
 */

#ifndef SCSIM_RUNNER_RESULT_CACHE_HH
#define SCSIM_RUNNER_RESULT_CACHE_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "runner/wire.hh"
#include "stats/stats.hh"

namespace scsim::runner {

class ResultCache
{
  public:
    /** Memory-only cache. */
    ResultCache() = default;

    /**
     * Memory + disk cache rooted at @p dir (created if absent;
     * throws CacheError when creation fails).  @p maxDiskBytes, when
     * nonzero, caps the on-disk footprint: after every store the
     * directory is trimmed back under the cap, evicting
     * least-recently-used entries (by mtime — disk hits touch their
     * entry) and pruning quarantined `.corrupt` files first.  A
     * long-lived daemon can therefore never grow the cache without
     * bound.  The cap governs the disk only; in-memory entries are
     * untouched.
     */
    explicit ResultCache(std::string dir,
                         std::uint64_t maxDiskBytes = 0);

    /**
     * True (and fills @p out) if @p key is cached in memory or disk.
     * Corrupt disk entries are quarantined and read as misses.
     * Throws CacheError on a (possibly transient) disk read fault.
     */
    bool lookup(std::uint64_t key, SimStats &out);

    /**
     * Record @p stats under @p key in memory and, if set, on disk.
     * The in-memory entry is recorded even when the disk write
     * throws CacheError, so a retry only repeats the I/O.
     */
    void store(std::uint64_t key, const SimStats &stats);

    const std::string &dir() const { return dir_; }

    // Counters (monotonic, thread-safe via the cache mutex).
    std::uint64_t hits() const;
    std::uint64_t misses() const;
    std::uint64_t quarantined() const;
    std::uint64_t evicted() const;

    /** Current on-disk footprint (stats + corrupt files), in bytes. */
    std::uint64_t diskBytes() const;

    /** The configured disk cap; 0 = unbounded. */
    std::uint64_t maxDiskBytes() const { return maxDiskBytes_; }

  private:
    std::string pathFor(std::uint64_t key) const;

    /** Re-scan the directory and evict down to the cap (locked). */
    void trimLocked();

    std::string dir_;
    std::uint64_t maxDiskBytes_ = 0;
    mutable std::mutex mutex_;
    std::unordered_map<std::uint64_t, SimStats> memory_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t quarantined_ = 0;
    std::uint64_t evicted_ = 0;
    std::uint64_t diskBytes_ = 0;
};

} // namespace scsim::runner

#endif // SCSIM_RUNNER_RESULT_CACHE_HH
