#include "runner/sweep_engine.hh"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "common/logging.hh"
#include "runner/isolated_run.hh"
#include "runner/job_key.hh"
#include "runner/journal.hh"
#include "runner/wire.hh"
#include "runner/worker_pool.hh"
#include "sim/engine.hh"

namespace scsim::runner {

namespace {

using Clock = std::chrono::steady_clock;

/**
 * Thrown (and caught by the worker pool's catch-all) to count an
 * isolated job's recorded failure toward failFast/maxFailures.
 * Deliberately not a std::exception: the result is already recorded
 * and reported by the time this is thrown, and no catch clause on the
 * way out may mistake it for an unclassified error.
 */
struct IsolatedJobFailure
{
};

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now()
                                                     - start)
        .count();
}

/**
 * Run @p fn, retrying a CacheError up to @p attempts times with
 * doubling backoff.  Exhausting the attempts rethrows; the caller
 * decides whether that degrades (cache misses never fail a sweep).
 */
template <typename Fn>
auto
retryTransient(int attempts, const char *what, Fn &&fn)
    -> decltype(fn())
{
    attempts = std::max(attempts, 1);
    for (int attempt = 1;; ++attempt) {
        try {
            return fn();
        } catch (const CacheError &e) {
            if (attempt >= attempts)
                throw;
            scsim_warn("%s failed (attempt %d/%d), backing off: %s",
                       what, attempt, attempts, e.what());
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1LL << attempt));
        }
    }
}

/** First line of a (possibly multi-line) error message. */
std::string
firstLine(const std::string &s)
{
    auto nl = s.find('\n');
    return nl == std::string::npos ? s : s.substr(0, nl);
}

} // namespace

const SimStats &
SweepResult::stats(const std::string &tag) const
{
    for (std::size_t i = 0; i < tags.size(); ++i)
        if (tags[i] == tag)
            return results[i].stats;
    scsim_throw(ConfigError, "sweep has no job tagged '%s'", tag.c_str());
}

Cycle
SweepResult::cycles(const std::string &tag) const
{
    return stats(tag).cycles;
}

SweepEngine::SweepEngine(SweepOptions opts)
    : opts_(std::move(opts)),
      cache_(opts_.cacheDir, opts_.cacheMaxBytes)
{
}

void
SweepEngine::runIsolated(const SimJob &job, JobResult &r)
{
    IsolatedRunOptions iso;
    iso.selfExe = opts_.selfExe;
    iso.timeoutSec = opts_.jobTimeoutSec;
    iso.attempts = opts_.crashAttempts;
    iso.checkpointCycles = opts_.checkpointCycles;
    iso.snapshotDir = opts_.snapshotDir;
    runJobIsolated(job, iso, r);
}

SweepResult
SweepEngine::run(const SweepSpec &spec)
{
    auto sweepStart = Clock::now();

    // Validate everything before running anything: one pass collects
    // every duplicate tag and invalid config, so a bad 400-point
    // sweep is rejected whole instead of dying mid-flight on job 312.
    {
        std::string problems;
        std::unordered_set<std::string> seen;
        for (const SimJob &job : spec.jobs) {
            if (!seen.insert(job.tag).second)
                problems += detail::format(
                    "  duplicate sweep tag '%s' (app '%s')\n",
                    job.tag.c_str(), job.app.name.c_str());
            try {
                job.cfg.validate();
            } catch (const ConfigError &e) {
                problems += detail::format(
                    "  job '%s' (app '%s'): %s\n", job.tag.c_str(),
                    job.app.name.c_str(), e.what());
            }
        }
        if (!problems.empty())
            scsim_throw(ConfigError,
                        "invalid sweep spec; no jobs were run:\n%s",
                        problems.c_str());
    }

    SweepResult out;
    out.tags.reserve(spec.jobs.size());
    for (const SimJob &job : spec.jobs)
        out.tags.push_back(job.tag);
    out.results.resize(spec.jobs.size());
    for (std::size_t i = 0; i < spec.jobs.size(); ++i)
        out.results[i].key = jobKey(spec.jobs[i]);

    const std::uint64_t specHash = sweepSpecHash(spec);

    // Resume phase: adopt every intact journal record whose identity
    // (spec hash, index, tag) still matches.  Adopted failures count
    // like fresh ones; adopted jobs are never re-run.
    std::vector<char> adopted(spec.jobs.size(), 0);
    if (!opts_.resumePath.empty()) {
        JournalContents j = readJournal(opts_.resumePath);
        if (j.specHash != specHash
            || j.jobCount != spec.jobs.size())
            scsim_throw(ConfigError,
                        "journal '%s' was written for a different "
                        "sweep (spec %s with %" PRIu64 " jobs; this "
                        "spec is %s with %zu jobs)",
                        opts_.resumePath.c_str(),
                        keyToHex(j.specHash).c_str(), j.jobCount,
                        keyToHex(specHash).c_str(), spec.jobs.size());
        for (JournalRecord &rec : j.records) {
            if (rec.index >= spec.jobs.size()
                || rec.tag != spec.jobs[rec.index].tag) {
                scsim_warn("journal '%s': record for unknown job "
                           "'%s' ignored", opts_.resumePath.c_str(),
                           rec.tag.c_str());
                continue;
            }
            if (!adopted[rec.index])
                ++out.resumed;
            adopted[rec.index] = 1;
            out.results[rec.index] = std::move(rec.result);
        }
    }

    // Journal writer.  Always started fresh and re-seeded below with
    // the adopted records (readJournal above already holds the old
    // contents): rewriting scrubs the half-written record a SIGKILL
    // leaves at the tail, which appending would otherwise strand in
    // the middle of the file where it truncates every later read.
    std::unique_ptr<JournalWriter> journal;
    if (!opts_.journalPath.empty())
        journal = std::make_unique<JournalWriter>(
            opts_.journalPath, specHash, spec.jobs.size(),
            /*fresh=*/true);
    auto journalAppend = [&](std::size_t i, const JobResult &r) {
        if (!journal)
            return;
        try {
            retryTransient(opts_.cacheAttempts, "journal append", [&] {
                journal->append(i, spec.jobs[i].tag, r);
            });
        } catch (const CacheError &e) {
            scsim_warn("journal append for '%s' gave up; a resume "
                       "would re-run it: %s", spec.jobs[i].tag.c_str(),
                       e.what());
        }
    };
    if (journal)
        for (std::size_t i = 0; i < spec.jobs.size(); ++i)
            if (adopted[i])
                journalAppend(i, out.results[i]);

    std::FILE *stream = opts_.progressStream ? opts_.progressStream
                                             : stderr;
    std::mutex progressMutex;
    std::size_t done = 0;
    auto report = [&](std::size_t idx, const JobResult &r,
                      const char *how = nullptr) {
        if (!opts_.progress)
            return;
        std::lock_guard lock(progressMutex);
        ++done;
        if (r.ok())
            std::fprintf(
                stream,
                "[%3zu/%zu] %-28s %12llu cycles  ipc %5.2f  %s\n",
                done, spec.jobs.size(), spec.jobs[idx].tag.c_str(),
                static_cast<unsigned long long>(r.stats.cycles),
                r.stats.ipc(),
                how ? how
                    : r.cached
                          ? "(cache)"
                          : detail::format("(%.1fs)", r.wallMs / 1e3)
                                .c_str());
        else
            std::fprintf(stream, "[%3zu/%zu] %-28s %s%s: %s\n", done,
                         spec.jobs.size(), spec.jobs[idx].tag.c_str(),
                         toString(r.status), how ? how : "",
                         firstLine(r.error).c_str());
        std::fflush(stream);
    };

    // Adopted results are final: count and report them now.
    for (std::size_t i = 0; i < spec.jobs.size(); ++i) {
        if (!adopted[i])
            continue;
        const JobResult &r = out.results[i];
        if (r.status == JobStatus::Cached)
            ++out.cacheHits;
        else
            ++out.executed;
        if (!r.ok() && r.status != JobStatus::Skipped)
            ++out.failed;
        report(i, r, r.ok() ? "(journal)" : " (journal)");
    }

    // Phase 1: resolve cache hits and collect the misses.  A cache
    // read that keeps failing is a miss, not a sweep failure.
    std::vector<std::size_t> missIdx;
    for (std::size_t i = 0; i < spec.jobs.size(); ++i) {
        if (adopted[i])
            continue;
        JobResult &r = out.results[i];
        bool hit = false;
        try {
            hit = retryTransient(opts_.cacheAttempts, "cache lookup",
                                 [&] {
                                     return cache_.lookup(r.key,
                                                          r.stats);
                                 });
        } catch (const CacheError &e) {
            scsim_warn("cache lookup for '%s' gave up, treating as "
                       "miss: %s", spec.jobs[i].tag.c_str(), e.what());
        }
        if (hit) {
            r.status = JobStatus::Cached;
            r.cached = true;
            ++out.cacheHits;
            journalAppend(i, r);
            report(i, r);
        } else {
            missIdx.push_back(i);
        }
    }

    // Phase 2: longest expected job first (index tie-break keeps the
    // order reproducible across runs).
    std::stable_sort(missIdx.begin(), missIdx.end(),
                     [&](std::size_t a, std::size_t b) {
                         return spec.jobs[a].expectedCost()
                             > spec.jobs[b].expectedCost();
                     });

    auto stop = [&](std::size_t failures) {
        return (opts_.failFast && failures > 0)
            || (opts_.maxFailures && failures >= opts_.maxFailures);
    };

    // Failures are classified, journaled and reported inside the
    // worker (not after the pool drains) so that a sweep killed
    // mid-flight has every finished job on disk; the rethrow only
    // feeds the failFast/maxFailures accounting.
    std::vector<std::exception_ptr> errors =
        runOrdered(missIdx, opts_.jobs, [&](std::size_t i) {
            const SimJob &job = spec.jobs[i];
            JobResult &r = out.results[i];
            auto jobStart = Clock::now();

            try {
                if (opts_.isolate) {
                    runIsolated(job, r);
                    r.wallMs = msSince(jobStart);
                } else {
                    sim::SimEngine engine(job.cfg);
                    r.stats = engine.runApp(job.app, job.salt,
                                            job.concurrent);
                    r.wallMs = msSince(jobStart);
                    r.status = JobStatus::Ok;
                }
            } catch (const HangError &e) {
                r.stats = SimStats{};
                r.status = JobStatus::Hang;
                r.error = e.what();
                r.wallMs = msSince(jobStart);
                if (opts_.progress) {
                    std::lock_guard lock(progressMutex);
                    std::fprintf(stream, "%s", e.diagnostic().c_str());
                    std::fflush(stream);
                }
                journalAppend(i, r);
                report(i, r);
                throw;
            } catch (const std::exception &e) {
                r.stats = SimStats{};
                r.status = JobStatus::Failed;
                r.error = e.what();
                r.wallMs = msSince(jobStart);
                journalAppend(i, r);
                report(i, r);
                throw;
            }

            if (!r.ok()) {
                // Isolated worker reported a failure (or crashed);
                // already fully recorded in r.
                journalAppend(i, r);
                report(i, r);
                throw IsolatedJobFailure{};
            }

            // A store that keeps failing loses only the disk entry;
            // the computed result stands.
            try {
                retryTransient(opts_.cacheAttempts, "cache store",
                               [&] { cache_.store(r.key, r.stats); });
            } catch (const CacheError &e) {
                scsim_warn("cache store for '%s' gave up, result not "
                           "cached: %s", job.tag.c_str(), e.what());
            }
            journalAppend(i, r);
            report(i, r);
        }, stop);

    // Account for what the pool did.  Every claimed job was already
    // classified, journaled and reported inside the worker.
    for (std::size_t k = 0; k < missIdx.size(); ++k) {
        std::size_t i = missIdx[k];
        JobResult &r = out.results[i];
        if (errors[k]) {
            ++out.failed;
            ++out.executed;
        } else if (r.status == JobStatus::Skipped) {
            r.error = "skipped: failure limit reached";
            ++out.skipped;
        } else {
            ++out.executed;
        }
    }

    out.wallMs = msSince(sweepStart);
    return out;
}

} // namespace scsim::runner
