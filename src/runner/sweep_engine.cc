#include "runner/sweep_engine.hh"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <unordered_set>

#include "common/logging.hh"
#include "gpu/gpu_sim.hh"
#include "runner/job_key.hh"
#include "runner/worker_pool.hh"

namespace scsim::runner {

namespace {

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now()
                                                     - start)
        .count();
}

} // namespace

const SimStats &
SweepResult::stats(const std::string &tag) const
{
    for (std::size_t i = 0; i < tags.size(); ++i)
        if (tags[i] == tag)
            return results[i].stats;
    scsim_fatal("sweep has no job tagged '%s'", tag.c_str());
}

Cycle
SweepResult::cycles(const std::string &tag) const
{
    return stats(tag).cycles;
}

SweepEngine::SweepEngine(SweepOptions opts)
    : opts_(std::move(opts)), cache_(opts_.cacheDir)
{
}

SweepResult
SweepEngine::run(const SweepSpec &spec)
{
    auto sweepStart = Clock::now();

    std::unordered_set<std::string> seen;
    for (const SimJob &job : spec.jobs) {
        if (!seen.insert(job.tag).second)
            scsim_fatal("duplicate sweep tag '%s'", job.tag.c_str());
        job.cfg.validate();
    }

    SweepResult out;
    out.tags.reserve(spec.jobs.size());
    for (const SimJob &job : spec.jobs)
        out.tags.push_back(job.tag);
    out.results.resize(spec.jobs.size());

    std::FILE *stream = opts_.progressStream ? opts_.progressStream
                                             : stderr;
    std::mutex progressMutex;
    std::size_t done = 0;
    auto report = [&](std::size_t idx, const JobResult &r) {
        if (!opts_.progress)
            return;
        std::lock_guard lock(progressMutex);
        ++done;
        std::fprintf(stream,
                     "[%3zu/%zu] %-28s %12llu cycles  ipc %5.2f  %s\n",
                     done, spec.jobs.size(),
                     spec.jobs[idx].tag.c_str(),
                     static_cast<unsigned long long>(r.stats.cycles),
                     r.stats.ipc(),
                     r.cached
                         ? "(cache)"
                         : detail::format("(%.1fs)", r.wallMs / 1e3)
                               .c_str());
        std::fflush(stream);
    };

    // Phase 1: resolve cache hits and collect the misses.
    std::vector<std::size_t> missIdx;
    for (std::size_t i = 0; i < spec.jobs.size(); ++i) {
        JobResult &r = out.results[i];
        r.key = jobKey(spec.jobs[i]);
        if (cache_.lookup(r.key, r.stats)) {
            r.cached = true;
            ++out.cacheHits;
            report(i, r);
        } else {
            missIdx.push_back(i);
        }
    }

    // Phase 2: longest expected job first (index tie-break keeps the
    // order reproducible across runs).
    std::stable_sort(missIdx.begin(), missIdx.end(),
                     [&](std::size_t a, std::size_t b) {
                         return spec.jobs[a].expectedCost()
                             > spec.jobs[b].expectedCost();
                     });

    runOrdered(missIdx, opts_.jobs, [&](std::size_t i) {
        const SimJob &job = spec.jobs[i];
        JobResult &r = out.results[i];
        auto jobStart = Clock::now();

        Application app = buildApp(job.app, job.salt);
        GpuSim sim(job.cfg);
        r.stats = job.concurrent ? sim.runConcurrent(app)
                                 : sim.run(app);
        r.wallMs = msSince(jobStart);

        cache_.store(r.key, r.stats);
        report(i, r);
    });
    out.executed = missIdx.size();

    out.wallMs = msSince(sweepStart);
    return out;
}

} // namespace scsim::runner
