#include "runner/sweep_engine.hh"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "common/logging.hh"
#include "gpu/gpu_sim.hh"
#include "runner/job_key.hh"
#include "runner/worker_pool.hh"

namespace scsim::runner {

namespace {

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now()
                                                     - start)
        .count();
}

/**
 * Run @p fn, retrying a CacheError up to @p attempts times with
 * doubling backoff.  Exhausting the attempts rethrows; the caller
 * decides whether that degrades (cache misses never fail a sweep).
 */
template <typename Fn>
auto
retryTransient(int attempts, const char *what, Fn &&fn)
    -> decltype(fn())
{
    attempts = std::max(attempts, 1);
    for (int attempt = 1;; ++attempt) {
        try {
            return fn();
        } catch (const CacheError &e) {
            if (attempt >= attempts)
                throw;
            scsim_warn("%s failed (attempt %d/%d), backing off: %s",
                       what, attempt, attempts, e.what());
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1LL << attempt));
        }
    }
}

/** First line of a (possibly multi-line) error message. */
std::string
firstLine(const std::string &s)
{
    auto nl = s.find('\n');
    return nl == std::string::npos ? s : s.substr(0, nl);
}

} // namespace

const char *
toString(JobStatus s)
{
    switch (s) {
      case JobStatus::Skipped: return "skipped";
      case JobStatus::Ok:      return "ok";
      case JobStatus::Cached:  return "cached";
      case JobStatus::Failed:  return "failed";
      case JobStatus::Hang:    return "hang";
    }
    return "?";
}

const char *
manifestStatus(JobStatus s)
{
    return s == JobStatus::Cached ? "ok" : toString(s);
}

const SimStats &
SweepResult::stats(const std::string &tag) const
{
    for (std::size_t i = 0; i < tags.size(); ++i)
        if (tags[i] == tag)
            return results[i].stats;
    scsim_throw(ConfigError, "sweep has no job tagged '%s'", tag.c_str());
}

Cycle
SweepResult::cycles(const std::string &tag) const
{
    return stats(tag).cycles;
}

SweepEngine::SweepEngine(SweepOptions opts)
    : opts_(std::move(opts)), cache_(opts_.cacheDir)
{
}

SweepResult
SweepEngine::run(const SweepSpec &spec)
{
    auto sweepStart = Clock::now();

    // Validate everything before running anything: one pass collects
    // every duplicate tag and invalid config, so a bad 400-point
    // sweep is rejected whole instead of dying mid-flight on job 312.
    {
        std::string problems;
        std::unordered_set<std::string> seen;
        for (const SimJob &job : spec.jobs) {
            if (!seen.insert(job.tag).second)
                problems += detail::format(
                    "  duplicate sweep tag '%s' (app '%s')\n",
                    job.tag.c_str(), job.app.name.c_str());
            try {
                job.cfg.validate();
            } catch (const ConfigError &e) {
                problems += detail::format(
                    "  job '%s' (app '%s'): %s\n", job.tag.c_str(),
                    job.app.name.c_str(), e.what());
            }
        }
        if (!problems.empty())
            scsim_throw(ConfigError,
                        "invalid sweep spec; no jobs were run:\n%s",
                        problems.c_str());
    }

    SweepResult out;
    out.tags.reserve(spec.jobs.size());
    for (const SimJob &job : spec.jobs)
        out.tags.push_back(job.tag);
    out.results.resize(spec.jobs.size());

    std::FILE *stream = opts_.progressStream ? opts_.progressStream
                                             : stderr;
    std::mutex progressMutex;
    std::size_t done = 0;
    auto report = [&](std::size_t idx, const JobResult &r) {
        if (!opts_.progress)
            return;
        std::lock_guard lock(progressMutex);
        ++done;
        if (r.ok())
            std::fprintf(
                stream,
                "[%3zu/%zu] %-28s %12llu cycles  ipc %5.2f  %s\n",
                done, spec.jobs.size(), spec.jobs[idx].tag.c_str(),
                static_cast<unsigned long long>(r.stats.cycles),
                r.stats.ipc(),
                r.cached
                    ? "(cache)"
                    : detail::format("(%.1fs)", r.wallMs / 1e3)
                          .c_str());
        else
            std::fprintf(stream, "[%3zu/%zu] %-28s %s: %s\n", done,
                         spec.jobs.size(), spec.jobs[idx].tag.c_str(),
                         toString(r.status),
                         firstLine(r.error).c_str());
        std::fflush(stream);
    };

    // Phase 1: resolve cache hits and collect the misses.  A cache
    // read that keeps failing is a miss, not a sweep failure.
    std::vector<std::size_t> missIdx;
    for (std::size_t i = 0; i < spec.jobs.size(); ++i) {
        JobResult &r = out.results[i];
        r.key = jobKey(spec.jobs[i]);
        bool hit = false;
        try {
            hit = retryTransient(opts_.cacheAttempts, "cache lookup",
                                 [&] {
                                     return cache_.lookup(r.key,
                                                          r.stats);
                                 });
        } catch (const CacheError &e) {
            scsim_warn("cache lookup for '%s' gave up, treating as "
                       "miss: %s", spec.jobs[i].tag.c_str(), e.what());
        }
        if (hit) {
            r.status = JobStatus::Cached;
            r.cached = true;
            ++out.cacheHits;
            report(i, r);
        } else {
            missIdx.push_back(i);
        }
    }

    // Phase 2: longest expected job first (index tie-break keeps the
    // order reproducible across runs).
    std::stable_sort(missIdx.begin(), missIdx.end(),
                     [&](std::size_t a, std::size_t b) {
                         return spec.jobs[a].expectedCost()
                             > spec.jobs[b].expectedCost();
                     });

    auto stop = [&](std::size_t failures) {
        return (opts_.failFast && failures > 0)
            || (opts_.maxFailures && failures >= opts_.maxFailures);
    };

    std::vector<std::exception_ptr> errors =
        runOrdered(missIdx, opts_.jobs, [&](std::size_t i) {
            const SimJob &job = spec.jobs[i];
            JobResult &r = out.results[i];
            auto jobStart = Clock::now();

            Application app = buildApp(job.app, job.salt);
            GpuSim sim(job.cfg);
            r.stats = job.concurrent ? sim.runConcurrent(app)
                                     : sim.run(app);
            r.wallMs = msSince(jobStart);
            r.status = JobStatus::Ok;

            // A store that keeps failing loses only the disk entry;
            // the computed result stands.
            try {
                retryTransient(opts_.cacheAttempts, "cache store",
                               [&] { cache_.store(r.key, r.stats); });
            } catch (const CacheError &e) {
                scsim_warn("cache store for '%s' gave up, result not "
                           "cached: %s", job.tag.c_str(), e.what());
            }
            report(i, r);
        }, stop);

    // Classify whatever escaped the workers.  The HangError
    // diagnostic (per-sub-core issue and collector state) goes to the
    // progress stream; the manifest keeps the one-line summary.
    for (std::size_t k = 0; k < missIdx.size(); ++k) {
        std::size_t i = missIdx[k];
        JobResult &r = out.results[i];
        if (errors[k]) {
            r.stats = SimStats{};
            try {
                std::rethrow_exception(errors[k]);
            } catch (const HangError &e) {
                r.status = JobStatus::Hang;
                r.error = e.what();
                if (opts_.progress) {
                    std::fprintf(stream, "%s", e.diagnostic().c_str());
                    std::fflush(stream);
                }
            } catch (const std::exception &e) {
                r.status = JobStatus::Failed;
                r.error = e.what();
            }
            ++out.failed;
            ++out.executed;
            report(i, r);
        } else if (r.status == JobStatus::Skipped) {
            r.error = "skipped: failure limit reached";
            ++out.skipped;
        } else {
            ++out.executed;
        }
    }

    out.wallMs = msSince(sweepStart);
    return out;
}

} // namespace scsim::runner
