#include "runner/journal.hh"

#include <cerrno>
#include <cinttypes>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "common/fault_inject.hh"
#include "common/io_util.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/text_escape.hh"
#include "runner/job_key.hh"
#include "runner/wire.hh"

namespace scsim::runner {

namespace {

constexpr const char *kJournalMagic = "scsim-journal";
inline constexpr std::uint32_t kJournalVersion = 1;

std::string
headerLine(std::uint64_t specHash, std::uint64_t jobCount)
{
    return detail::format("%s v%u spec %s jobs %" PRIu64 "\n",
                          kJournalMagic, kJournalVersion,
                          keyToHex(specHash).c_str(), jobCount);
}

} // namespace

std::uint64_t
sweepSpecHash(const SweepSpec &spec)
{
    std::string text;
    for (const SimJob &job : spec.jobs) {
        text += job.tag;
        text += '\n';
        text += canonicalText(job);
    }
    return hashString(text);
}

JournalContents
readJournal(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        scsim_throw(CacheError, "cannot open journal '%s'",
                    path.c_str());
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();

    JournalContents out;

    auto nl = text.find('\n');
    if (nl == std::string::npos)
        scsim_throw(CacheError, "journal '%s' has no header",
                    path.c_str());
    {
        std::istringstream hs(text.substr(0, nl));
        std::string magic, version, specKw, specHex, jobsKw;
        if (!(hs >> magic >> version >> specKw >> specHex >> jobsKw
                 >> out.jobCount)
            || magic != kJournalMagic || specKw != "spec"
            || jobsKw != "jobs")
            scsim_throw(CacheError, "journal '%s' has a malformed "
                        "header", path.c_str());
        if (version != detail::format("v%u", kJournalVersion))
            scsim_throw(CacheError, "journal '%s' is format %s; this "
                        "build writes v%u", path.c_str(),
                        version.c_str(), kJournalVersion);
        char *end = nullptr;
        out.specHash = std::strtoull(specHex.c_str(), &end, 16);
        if (!end || *end != '\0')
            scsim_throw(CacheError, "journal '%s' has an unparsable "
                        "spec hash", path.c_str());
    }

    // Records.  Any damage from here on is a truncated tail (the
    // SIGKILL-mid-append case): keep what is intact, drop the rest.
    std::size_t pos = nl + 1;
    while (pos < text.size()) {
        auto lineEnd = text.find('\n', pos);
        if (lineEnd == std::string::npos)
            break;  // half-written record line
        std::istringstream ls(text.substr(pos, lineEnd - pos));
        std::string kw;
        std::size_t index = 0, nbytes = 0;
        if (!(ls >> kw >> index >> nbytes) || kw != "record") {
            ++out.dropped;
            break;
        }
        std::string tag;
        std::getline(ls, tag);
        if (!tag.empty() && tag.front() == ' ')
            tag.erase(0, 1);

        std::size_t payloadStart = lineEnd + 1;
        if (payloadStart + nbytes + 1 > text.size()) {
            ++out.dropped;
            break;  // payload (or its trailing newline) cut short
        }
        JournalRecord rec;
        rec.index = index;
        rec.tag = unescapeLine(tag);
        if (decodeJobResult(text.substr(payloadStart, nbytes),
                            rec.result) != WireDecode::Ok) {
            ++out.dropped;
            break;
        }
        out.records.push_back(std::move(rec));
        pos = payloadStart + nbytes + 1;
    }
    if (out.dropped)
        scsim_warn("journal '%s': dropped damaged tail record; the "
                   "affected job will re-run", path.c_str());
    return out;
}

JournalWriter::JournalWriter(const std::string &path,
                             std::uint64_t specHash,
                             std::uint64_t jobCount, bool fresh)
    : path_(path)
{
    int flags = O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC
        | (fresh ? O_TRUNC : 0);
    fd_ = ::open(path.c_str(), flags, 0644);
    if (fd_ < 0)
        scsim_throw(CacheError, "cannot open journal '%s': %s",
                    path.c_str(), std::strerror(errno));
    off_t size = ::lseek(fd_, 0, SEEK_END);
    if (size == 0) {
        if (int err = writeAll(headerLine(specHash, jobCount)))
            scsim_throw(CacheError, "write to journal '%s' failed: %s",
                        path.c_str(), std::strerror(err));
        if (::fsync(fd_) != 0)
            scsim_throw(CacheError, "fsync of journal '%s' failed: %s",
                        path.c_str(), std::strerror(errno));
    }
}

JournalWriter::~JournalWriter()
{
    if (fd_ >= 0)
        ::close(fd_);
}

int
JournalWriter::writeAll(const std::string &text)
{
    if (!writeFull(fd_, text.data(), text.size()))
        return errno;
    return 0;
}

void
JournalWriter::append(std::size_t index, const std::string &tag,
                      const JobResult &result)
{
    std::string payload = serializeJobResult(result);
    std::string record = detail::format("record %zu %zu ", index,
                                        payload.size())
        + escapeLine(tag) + "\n" + payload + "\n";

    std::lock_guard lock(mutex_);
    if (dead_)
        return;
    int err = FaultInjector::instance().shouldFailJournalWrite()
        ? ENOSPC
        : writeAll(record);
    if (err == 0 && ::fsync(fd_) != 0)
        err = errno;
    if (err == 0)
        return;
    if (isDiskFull(err)) {
        // Persistence is best-effort once the disk fills: warn once,
        // then run the rest of the sweep without a journal rather
        // than poisoning every remaining job with CacheError.
        dead_ = true;
        scsim_warn("journal '%s': %s; continuing without journaling "
                   "(this sweep will not resume past the last durable "
                   "record)", path_.c_str(), std::strerror(err));
        return;
    }
    scsim_throw(CacheError, "write to journal '%s' failed: %s",
                path_.c_str(), std::strerror(err));
}

} // namespace scsim::runner
