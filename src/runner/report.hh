/**
 * @file
 * Structured sweep reporting: JSON and CSV manifests.
 *
 * A manifest records one entry per job, in spec order, containing the
 * job identity (tag, app, content hash, config summary), the job's
 * status ("ok", "failed", "hang", "crashed", "skipped") with its full
 * error message and crash detail (fatal signal / exit code), and the
 * headline statistics.  Manifests deliberately exclude anything
 * execution-dependent — wall-clock, worker count, spawn attempts,
 * cache hit/miss (a cached result reports "ok") — so the same sweep
 * produces byte-identical manifests at any `--jobs N`, whether or
 * not results came from the cache, and whether the sweep ran through
 * or was killed and resumed from a journal.  The one caveat: under
 * `--fail-fast`/`--max-failures` with multiple workers, *which* jobs
 * end up "skipped" depends on scheduling — bounded-abort is
 * inherently an execution-order feature.
 */

#ifndef SCSIM_RUNNER_REPORT_HH
#define SCSIM_RUNNER_REPORT_HH

#include <string>

#include "runner/sweep_engine.hh"
#include "runner/sweep_spec.hh"

namespace scsim::runner {

/** Manifest schema version (bump on field changes).
 *  v3: full (escaped) error text instead of its first line, plus
 *  `signal` and `exitCode` crash-detail columns. */
inline constexpr int kManifestVersion = 3;

/** The sweep manifest as a JSON document. */
std::string jsonManifest(const SweepSpec &spec, const SweepResult &res);

/** The sweep manifest as CSV (header + one row per job). */
std::string csvManifest(const SweepSpec &spec, const SweepResult &res);

/** Write @p text to @p path; fatal on I/O failure. */
void writeFile(const std::string &path, const std::string &text);

/**
 * One-line execution summary (wall clock, cache hits, workers) for
 * the progress stream — execution-dependent, so never in a manifest.
 */
std::string summaryLine(const SweepResult &res, int jobs);

} // namespace scsim::runner

#endif // SCSIM_RUNNER_REPORT_HH
