/**
 * @file
 * Child-process execution with capture, timeout, and kill escalation.
 *
 * runSubprocess() forks/execs an argv, writes a byte string to the
 * child's stdin, and drains stdout fully (the result record) and
 * stderr as a bounded tail (crash forensics — a SIGSEGV banner or
 * sanitizer report is at the *end* of stderr, so the tail is what
 * matters).  A wall-clock deadline is enforced with SIGTERM, a short
 * grace period, then SIGKILL; the child can never outlive its parent's
 * patience.  The exit status is reported exactly as waitpid saw it:
 * exit code when the child exited, the fatal signal when it was
 * killed.
 *
 * This is the mechanism behind `scsim_cli sweep --isolate`: each job
 * runs in its own address space, so a simulator bug that segfaults —
 * or an injected crash (common/fault_inject.hh) — costs one job, not
 * the campaign.
 */

#ifndef SCSIM_RUNNER_SUBPROCESS_HH
#define SCSIM_RUNNER_SUBPROCESS_HH

#include <cstddef>
#include <string>
#include <vector>

namespace scsim::runner {

/** What became of one child process. */
struct SubprocessResult
{
    int exitCode = -1;       //!< WEXITSTATUS when exited; -1 otherwise
    int termSignal = 0;      //!< WTERMSIG when signalled; 0 otherwise
    bool timedOut = false;   //!< deadline fired (termSignal says how)
    std::string stdoutText;  //!< complete stdout
    std::string stderrTail;  //!< last @c tailBytes of stderr

    bool exitedCleanly() const { return termSignal == 0 && exitCode == 0; }
};

/**
 * Execute @p argv (argv[0] is the binary path), feed @p input to its
 * stdin, and wait for exit or @p timeoutSec (0 = no deadline).
 * Throws SimError only for parent-side setup faults (pipe/fork
 * failure); every child-side outcome, including exec failure (exit
 * 127), is reported in the result.
 */
SubprocessResult runSubprocess(const std::vector<std::string> &argv,
                               const std::string &input,
                               double timeoutSec,
                               std::size_t tailBytes = 8192);

/** Absolute path of the running executable (/proc/self/exe). */
std::string currentExecutablePath();

} // namespace scsim::runner

#endif // SCSIM_RUNNER_SUBPROCESS_HH
