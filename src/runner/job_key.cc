#include "runner/job_key.hh"

#include <cinttypes>
#include <sstream>

#include "common/logging.hh"
#include "common/rng.hh"

namespace scsim::runner {

namespace {

/**
 * Builds "key=value;" lists with locale-independent, round-trippable
 * number formatting so the canonical text is stable across hosts.
 */
class Canon
{
  public:
    void
    field(const char *key, double v)
    {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.17g", v);
        raw(key, buf);
    }

    void
    field(const char *key, std::uint64_t v)
    {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%" PRIu64, v);
        raw(key, buf);
    }

    void field(const char *key, std::uint32_t v)
    { field(key, static_cast<std::uint64_t>(v)); }

    void
    field(const char *key, int v)
    {
        char buf[16];
        std::snprintf(buf, sizeof buf, "%d", v);
        raw(key, buf);
    }

    void field(const char *key, bool v) { raw(key, v ? "1" : "0"); }

    void
    raw(const char *key, const std::string &v)
    {
        out_ += key;
        out_ += '=';
        out_ += v;
        out_ += ';';
    }

    std::string take() { return std::move(out_); }

  private:
    std::string out_;
};

} // namespace

std::string
canonicalText(const GpuConfig &cfg)
{
    // Every field of GpuConfig in declaration order.  When a field is
    // added to the struct it must be added here, otherwise two
    // configurations differing only in that field would collide; the
    // test suite cross-checks a couple of representative knobs.
    Canon c;
    c.field("numSms", cfg.numSms);
    c.field("schedulersPerSm", cfg.schedulersPerSm);
    c.field("subCores", cfg.subCores);
    c.field("rfBanksPerSm", cfg.rfBanksPerSm);
    c.field("collectorUnitsPerSm", cfg.collectorUnitsPerSm);
    c.field("maxWarpsPerSm", cfg.maxWarpsPerSm);
    c.field("maxWarpsPerScheduler", cfg.maxWarpsPerScheduler);
    c.field("maxBlocksPerSm", cfg.maxBlocksPerSm);
    c.field("regFileBytesPerSm", cfg.regFileBytesPerSm);
    c.field("smemBytesPerSm", cfg.smemBytesPerSm);
    c.raw("scheduler", toString(cfg.scheduler));
    c.raw("assign", toString(cfg.assign));
    c.field("hashTableEntries", cfg.hashTableEntries);
    c.field("rbaScoreLatency", cfg.rbaScoreLatency);
    c.field("bankStealing", cfg.bankStealing);
    c.field("idealWarpMigration", cfg.idealWarpMigration);
    c.field("issueWidthPerScheduler", cfg.issueWidthPerScheduler);
    c.field("sharedWarpPool", cfg.sharedWarpPool);
    c.field("spPipesPerScheduler", cfg.spPipesPerScheduler);
    c.field("spInitiation", cfg.spInitiation);
    c.field("spLatency", cfg.spLatency);
    c.field("sfuPipesPerScheduler", cfg.sfuPipesPerScheduler);
    c.field("sfuInitiation", cfg.sfuInitiation);
    c.field("sfuLatency", cfg.sfuLatency);
    c.field("tensorPipesPerScheduler", cfg.tensorPipesPerScheduler);
    c.field("tensorInitiation", cfg.tensorInitiation);
    c.field("tensorLatency", cfg.tensorLatency);
    c.field("ldstPipesPerScheduler", cfg.ldstPipesPerScheduler);
    c.field("ldstInitiation", cfg.ldstInitiation);
    c.field("l1Bytes", cfg.l1Bytes);
    c.field("l1Ways", cfg.l1Ways);
    c.field("l1LineBytes", cfg.l1LineBytes);
    c.field("l1HitLatency", cfg.l1HitLatency);
    c.field("l1PortsPerSm", cfg.l1PortsPerSm);
    c.field("l2Bytes", cfg.l2Bytes);
    c.field("l2Ways", cfg.l2Ways);
    c.field("l2HitLatency", cfg.l2HitLatency);
    c.field("dramLatency", cfg.dramLatency);
    c.field("l2SectorsPerCyclePerSm", cfg.l2SectorsPerCyclePerSm);
    c.field("dramSectorsPerCyclePerSm", cfg.dramSectorsPerCyclePerSm);
    c.field("smemLatency", cfg.smemLatency);
    c.field("maxCycles", cfg.maxCycles);
    c.field("hangWindowCycles", cfg.hangWindowCycles);
    c.field("enableIdleSkip", cfg.enableIdleSkip);
    c.field("seed", cfg.seed);
    c.field("rfTraceEnable", cfg.rfTraceEnable);
    c.field("rfTraceWindow", static_cast<std::uint64_t>(cfg.rfTraceWindow));
    return c.take();
}

std::string
canonicalText(const AppSpec &app)
{
    Canon c;
    c.raw("name", app.name);
    c.raw("suite", app.suite);
    c.field("numBlocks", app.numBlocks);
    c.field("warpsPerBlock", app.warpsPerBlock);
    c.field("regsPerThread", app.regsPerThread);
    c.field("smemBytesPerBlock", app.smemBytesPerBlock);
    c.field("numKernels", app.numKernels);
    c.field("baseInsts", app.baseInsts);
    c.field("fmaFrac", app.fmaFrac);
    c.field("sfuFrac", app.sfuFrac);
    c.field("tensorFrac", app.tensorFrac);
    c.field("memFrac", app.memFrac);
    c.field("storeFrac", app.storeFrac);
    c.field("ilp", app.ilp);
    c.field("regWindow", app.regWindow);
    c.field("conflictBias", app.conflictBias);
    c.field("hotRegFrac", app.hotRegFrac);
    {
        std::string pat;
        for (double d : app.divPattern) {
            char buf[64];
            std::snprintf(buf, sizeof buf, "%.17g,", d);
            pat += buf;
        }
        c.raw("divPattern", pat);
    }
    c.field("divNoise", app.divNoise);
    c.field("divKernelFrac", app.divKernelFrac);
    c.field("sectors", app.sectors);
    c.field("footprintMB", app.footprintMB);
    c.field("randomMem", app.randomMem);
    return c.take();
}

std::string
canonicalText(const SimJob &job)
{
    Canon c;
    c.field("format", kResultFormatVersion);
    c.raw("config", canonicalText(job.cfg));
    c.raw("app", canonicalText(job.app));
    c.field("salt", job.salt);
    c.field("concurrent", job.concurrent);
    return c.take();
}

std::uint64_t
jobKey(const SimJob &job)
{
    return hashString(canonicalText(job));
}

std::string
keyToHex(std::uint64_t key)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016" PRIx64, key);
    return buf;
}

double
SimJob::expectedCost() const
{
    double slotMean = 0.0;
    for (double d : app.divPattern)
        slotMean += d;
    if (!app.divPattern.empty())
        slotMean /= static_cast<double>(app.divPattern.size());
    else
        slotMean = 1.0;
    double insts = static_cast<double>(app.numBlocks)
        * app.warpsPerBlock * app.baseInsts * app.numKernels * slotMean;
    // A fully-connected SM simulates the same work noticeably slower
    // (one big cluster, more contention modeling per cycle).
    if (cfg.subCores == 1)
        insts *= 1.3;
    return insts;
}

} // namespace scsim::runner
