#include "runner/result_cache.hh"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/fault_inject.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "runner/job_key.hh"

namespace scsim::runner {

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir))
{
    if (dir_.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec)
        scsim_throw(CacheError, "cannot create cache directory '%s': %s",
                    dir_.c_str(), ec.message().c_str());
}

std::string
ResultCache::pathFor(std::uint64_t key) const
{
    return dir_ + "/" + keyToHex(key) + ".stats";
}

bool
ResultCache::lookup(std::uint64_t key, SimStats &out)
{
    std::lock_guard lock(mutex_);
    if (auto it = memory_.find(key); it != memory_.end()) {
        out = it->second;
        ++hits_;
        return true;
    }
    if (!dir_.empty()) {
        if (FaultInjector::instance().shouldFailCacheRead())
            scsim_throw(CacheError, "injected cache read fault for key %s",
                        keyToHex(key).c_str());
        std::ifstream in(pathFor(key));
        if (in) {
            std::ostringstream text;
            text << in.rdbuf();
            SimStats s;
            switch (decodeStats(text.str(), s)) {
              case StatsDecode::Ok:
                memory_.emplace(key, s);
                out = std::move(s);
                ++hits_;
                return true;
              case StatsDecode::VersionSkew:
                // Another format version: a legitimate miss; the
                // re-run overwrites the stale entry.
                break;
              case StatsDecode::Corrupt: {
                // Move the damaged file aside so the evidence
                // survives and the re-run's write cannot be
                // mistaken for the bad entry.
                std::string quarantine =
                    dir_ + "/" + keyToHex(key) + ".corrupt";
                std::error_code ec;
                std::filesystem::rename(pathFor(key), quarantine, ec);
                if (ec)
                    std::filesystem::remove(pathFor(key), ec);
                ++quarantined_;
                scsim_warn("quarantined corrupt cache entry %s -> %s; "
                           "re-running job", pathFor(key).c_str(),
                           quarantine.c_str());
                break;
              }
            }
        }
    }
    ++misses_;
    return false;
}

void
ResultCache::store(std::uint64_t key, const SimStats &stats)
{
    std::lock_guard lock(mutex_);
    memory_.insert_or_assign(key, stats);
    if (dir_.empty())
        return;
    if (FaultInjector::instance().shouldFailCacheWrite())
        scsim_throw(CacheError, "injected cache write fault for key %s",
                    keyToHex(key).c_str());
    std::string path = pathFor(key);
    std::string tmp = path + ".tmp" + keyToHex(key);
    {
        std::ofstream outFile(tmp, std::ios::trunc);
        if (!outFile)
            scsim_throw(CacheError, "cannot write cache entry %s",
                        tmp.c_str());
        outFile << serializeStats(stats);
        if (!outFile.good())
            scsim_throw(CacheError, "short write to cache entry %s",
                        tmp.c_str());
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::error_code rmEc;
        std::filesystem::remove(tmp, rmEc);
        scsim_throw(CacheError, "cannot finalize cache entry %s: %s",
                    path.c_str(), ec.message().c_str());
    }
}

std::uint64_t
ResultCache::hits() const
{
    std::lock_guard lock(mutex_);
    return hits_;
}

std::uint64_t
ResultCache::misses() const
{
    std::lock_guard lock(mutex_);
    return misses_;
}

std::uint64_t
ResultCache::quarantined() const
{
    std::lock_guard lock(mutex_);
    return quarantined_;
}

} // namespace scsim::runner
