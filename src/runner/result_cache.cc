#include "runner/result_cache.hh"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "runner/job_key.hh"

namespace scsim::runner {

namespace {

constexpr const char *kMagic = "scsim-result";

void
putU64(std::string &out, const char *key, std::uint64_t v)
{
    char buf[96];
    std::snprintf(buf, sizeof buf, "%s %" PRIu64 "\n", key, v);
    out += buf;
}

} // namespace

std::string
serializeStats(const SimStats &stats)
{
    std::string out;
    {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%s v%u\n", kMagic,
                      kResultFormatVersion);
        out += buf;
    }
    putU64(out, "cycles", stats.cycles);
    putU64(out, "instructions", stats.instructions);
    putU64(out, "threadInstructions", stats.threadInstructions);
    putU64(out, "schedCycles", stats.schedCycles);
    putU64(out, "issueSlotsUsed", stats.issueSlotsUsed);
    putU64(out, "stallNoWarp", stats.stallNoWarp);
    putU64(out, "stallScoreboard", stats.stallScoreboard);
    putU64(out, "stallNoCu", stats.stallNoCu);
    putU64(out, "cuTurnaroundSum", stats.cuTurnaroundSum);
    putU64(out, "cuDispatches", stats.cuDispatches);
    putU64(out, "rfReads", stats.rfReads);
    putU64(out, "rfWrites", stats.rfWrites);
    putU64(out, "rfBankConflictCycles", stats.rfBankConflictCycles);
    putU64(out, "collectorFullStalls", stats.collectorFullStalls);
    putU64(out, "execStructuralStalls", stats.execStructuralStalls);
    putU64(out, "l1Accesses", stats.l1Accesses);
    putU64(out, "l1Misses", stats.l1Misses);
    putU64(out, "l2Accesses", stats.l2Accesses);
    putU64(out, "l2Misses", stats.l2Misses);
    putU64(out, "blocksCompleted", stats.blocksCompleted);
    putU64(out, "warpsCompleted", stats.warpsCompleted);
    putU64(out, "assignSpills", stats.assignSpills);
    putU64(out, "warpMigrations", stats.warpMigrations);

    for (const auto &row : stats.issuePerScheduler) {
        out += "issueRow";
        for (std::uint64_t v : row) {
            char buf[32];
            std::snprintf(buf, sizeof buf, " %" PRIu64, v);
            out += buf;
        }
        out += '\n';
    }
    for (const auto &[name, span] : stats.kernelSpans) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%" PRIu64, span);
        out += "kernelSpan ";
        out += buf;
        out += ' ';
        out += name;      // to end of line; names may contain spaces
        out += '\n';
    }
    {
        putU64(out, "rfTraceWindow", stats.rfReadTrace.window());
        out += "rfTraceSamples";
        for (double s : stats.rfReadTrace.samples()) {
            char buf[64];
            std::snprintf(buf, sizeof buf, " %.17g", s);
            out += buf;
        }
        out += '\n';
    }
    return out;
}

bool
deserializeStats(const std::string &text, SimStats &out)
{
    std::istringstream in(text);
    std::string header;
    if (!std::getline(in, header))
        return false;
    {
        char expect[64];
        std::snprintf(expect, sizeof expect, "%s v%u", kMagic,
                      kResultFormatVersion);
        if (header != expect)
            return false;
    }

    SimStats s;
    std::string line;
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string key;
        if (!(ls >> key))
            continue;

        auto u64 = [&](std::uint64_t &field) -> bool {
            return static_cast<bool>(ls >> field);
        };

        if (key == "cycles") { if (!u64(s.cycles)) return false; }
        else if (key == "instructions") { if (!u64(s.instructions)) return false; }
        else if (key == "threadInstructions") { if (!u64(s.threadInstructions)) return false; }
        else if (key == "schedCycles") { if (!u64(s.schedCycles)) return false; }
        else if (key == "issueSlotsUsed") { if (!u64(s.issueSlotsUsed)) return false; }
        else if (key == "stallNoWarp") { if (!u64(s.stallNoWarp)) return false; }
        else if (key == "stallScoreboard") { if (!u64(s.stallScoreboard)) return false; }
        else if (key == "stallNoCu") { if (!u64(s.stallNoCu)) return false; }
        else if (key == "cuTurnaroundSum") { if (!u64(s.cuTurnaroundSum)) return false; }
        else if (key == "cuDispatches") { if (!u64(s.cuDispatches)) return false; }
        else if (key == "rfReads") { if (!u64(s.rfReads)) return false; }
        else if (key == "rfWrites") { if (!u64(s.rfWrites)) return false; }
        else if (key == "rfBankConflictCycles") { if (!u64(s.rfBankConflictCycles)) return false; }
        else if (key == "collectorFullStalls") { if (!u64(s.collectorFullStalls)) return false; }
        else if (key == "execStructuralStalls") { if (!u64(s.execStructuralStalls)) return false; }
        else if (key == "l1Accesses") { if (!u64(s.l1Accesses)) return false; }
        else if (key == "l1Misses") { if (!u64(s.l1Misses)) return false; }
        else if (key == "l2Accesses") { if (!u64(s.l2Accesses)) return false; }
        else if (key == "l2Misses") { if (!u64(s.l2Misses)) return false; }
        else if (key == "blocksCompleted") { if (!u64(s.blocksCompleted)) return false; }
        else if (key == "warpsCompleted") { if (!u64(s.warpsCompleted)) return false; }
        else if (key == "assignSpills") { if (!u64(s.assignSpills)) return false; }
        else if (key == "warpMigrations") { if (!u64(s.warpMigrations)) return false; }
        else if (key == "issueRow") {
            std::vector<std::uint64_t> row;
            std::uint64_t v;
            while (ls >> v)
                row.push_back(v);
            s.issuePerScheduler.push_back(std::move(row));
        } else if (key == "kernelSpan") {
            std::uint64_t span;
            if (!(ls >> span))
                return false;
            std::string name;
            std::getline(ls, name);
            if (!name.empty() && name.front() == ' ')
                name.erase(0, 1);
            s.kernelSpans.emplace_back(std::move(name), span);
        } else if (key == "rfTraceWindow") {
            std::uint64_t w;
            if (!u64(w))
                return false;
            s.rfReadTrace = TimeSeries{ w };
        } else if (key == "rfTraceSamples") {
            std::vector<double> samples;
            double v;
            while (ls >> v)
                samples.push_back(v);
            s.rfReadTrace.restoreSamples(std::move(samples));
        }
        // Unknown keys are skipped: forward-compatible within a
        // format version bump.
    }
    out = std::move(s);
    return true;
}

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir))
{
    if (dir_.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec)
        scsim_fatal("cannot create cache directory '%s': %s",
                    dir_.c_str(), ec.message().c_str());
}

std::string
ResultCache::pathFor(std::uint64_t key) const
{
    return dir_ + "/" + keyToHex(key) + ".stats";
}

bool
ResultCache::lookup(std::uint64_t key, SimStats &out)
{
    std::lock_guard lock(mutex_);
    if (auto it = memory_.find(key); it != memory_.end()) {
        out = it->second;
        ++hits_;
        return true;
    }
    if (!dir_.empty()) {
        std::ifstream in(pathFor(key));
        if (in) {
            std::ostringstream text;
            text << in.rdbuf();
            SimStats s;
            if (deserializeStats(text.str(), s)) {
                memory_.emplace(key, s);
                out = std::move(s);
                ++hits_;
                return true;
            }
            scsim_warn("ignoring unreadable cache entry %s",
                       pathFor(key).c_str());
        }
    }
    ++misses_;
    return false;
}

void
ResultCache::store(std::uint64_t key, const SimStats &stats)
{
    std::lock_guard lock(mutex_);
    memory_.insert_or_assign(key, stats);
    if (dir_.empty())
        return;
    std::string path = pathFor(key);
    std::string tmp = path + ".tmp" + keyToHex(key);
    {
        std::ofstream outFile(tmp, std::ios::trunc);
        if (!outFile) {
            scsim_warn("cannot write cache entry %s", tmp.c_str());
            return;
        }
        outFile << serializeStats(stats);
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        scsim_warn("cannot finalize cache entry %s: %s", path.c_str(),
                   ec.message().c_str());
        std::filesystem::remove(tmp, ec);
    }
}

std::uint64_t
ResultCache::hits() const
{
    std::lock_guard lock(mutex_);
    return hits_;
}

std::uint64_t
ResultCache::misses() const
{
    std::lock_guard lock(mutex_);
    return misses_;
}

} // namespace scsim::runner
