#include "runner/result_cache.hh"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/fault_inject.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "runner/job_key.hh"

namespace scsim::runner {

namespace {

constexpr const char *kMagic = "scsim-result";

void
putU64(std::string &out, const char *key, std::uint64_t v)
{
    char buf[96];
    std::snprintf(buf, sizeof buf, "%s %" PRIu64 "\n", key, v);
    out += buf;
}

/**
 * Kernel names are caller-controlled free text that lands in a
 * line-oriented format: escape the line structure (and the escape
 * character itself) so a name containing '\n' round-trips instead of
 * splitting the record.
 */
std::string
escapeName(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          default:   out += c;
        }
    }
    return out;
}

std::string
unescapeName(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\' || i + 1 == s.size()) {
            out += s[i];
            continue;
        }
        switch (s[++i]) {
          case 'n':  out += '\n'; break;
          case 'r':  out += '\r'; break;
          default:   out += s[i];
        }
    }
    return out;
}

/** The entry payload: every line after the checksum header. */
std::string
serializePayload(const SimStats &stats)
{
    std::string out;
    putU64(out, "cycles", stats.cycles);
    putU64(out, "instructions", stats.instructions);
    putU64(out, "threadInstructions", stats.threadInstructions);
    putU64(out, "schedCycles", stats.schedCycles);
    putU64(out, "issueSlotsUsed", stats.issueSlotsUsed);
    putU64(out, "stallNoWarp", stats.stallNoWarp);
    putU64(out, "stallScoreboard", stats.stallScoreboard);
    putU64(out, "stallNoCu", stats.stallNoCu);
    putU64(out, "cuTurnaroundSum", stats.cuTurnaroundSum);
    putU64(out, "cuDispatches", stats.cuDispatches);
    putU64(out, "rfReads", stats.rfReads);
    putU64(out, "rfWrites", stats.rfWrites);
    putU64(out, "rfBankConflictCycles", stats.rfBankConflictCycles);
    putU64(out, "collectorFullStalls", stats.collectorFullStalls);
    putU64(out, "execStructuralStalls", stats.execStructuralStalls);
    putU64(out, "l1Accesses", stats.l1Accesses);
    putU64(out, "l1Misses", stats.l1Misses);
    putU64(out, "l2Accesses", stats.l2Accesses);
    putU64(out, "l2Misses", stats.l2Misses);
    putU64(out, "blocksCompleted", stats.blocksCompleted);
    putU64(out, "warpsCompleted", stats.warpsCompleted);
    putU64(out, "assignSpills", stats.assignSpills);
    putU64(out, "warpMigrations", stats.warpMigrations);

    for (const auto &row : stats.issuePerScheduler) {
        out += "issueRow";
        for (std::uint64_t v : row) {
            char buf[32];
            std::snprintf(buf, sizeof buf, " %" PRIu64, v);
            out += buf;
        }
        out += '\n';
    }
    for (const auto &[name, span] : stats.kernelSpans) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%" PRIu64, span);
        out += "kernelSpan ";
        out += buf;
        out += ' ';
        out += escapeName(name);  // to end of line; may contain spaces
        out += '\n';
    }
    {
        putU64(out, "rfTraceWindow", stats.rfReadTrace.window());
        out += "rfTraceSamples";
        for (double s : stats.rfReadTrace.samples()) {
            char buf[64];
            std::snprintf(buf, sizeof buf, " %.17g", s);
            out += buf;
        }
        out += '\n';
    }
    return out;
}

StatsDecode
parsePayload(const std::string &payload, SimStats &out)
{
    std::istringstream in(payload);
    SimStats s;
    std::string line;
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string key;
        if (!(ls >> key))
            continue;

        auto u64 = [&](std::uint64_t &field) -> bool {
            return static_cast<bool>(ls >> field);
        };

        if (key == "cycles") { if (!u64(s.cycles)) return StatsDecode::Corrupt; }
        else if (key == "instructions") { if (!u64(s.instructions)) return StatsDecode::Corrupt; }
        else if (key == "threadInstructions") { if (!u64(s.threadInstructions)) return StatsDecode::Corrupt; }
        else if (key == "schedCycles") { if (!u64(s.schedCycles)) return StatsDecode::Corrupt; }
        else if (key == "issueSlotsUsed") { if (!u64(s.issueSlotsUsed)) return StatsDecode::Corrupt; }
        else if (key == "stallNoWarp") { if (!u64(s.stallNoWarp)) return StatsDecode::Corrupt; }
        else if (key == "stallScoreboard") { if (!u64(s.stallScoreboard)) return StatsDecode::Corrupt; }
        else if (key == "stallNoCu") { if (!u64(s.stallNoCu)) return StatsDecode::Corrupt; }
        else if (key == "cuTurnaroundSum") { if (!u64(s.cuTurnaroundSum)) return StatsDecode::Corrupt; }
        else if (key == "cuDispatches") { if (!u64(s.cuDispatches)) return StatsDecode::Corrupt; }
        else if (key == "rfReads") { if (!u64(s.rfReads)) return StatsDecode::Corrupt; }
        else if (key == "rfWrites") { if (!u64(s.rfWrites)) return StatsDecode::Corrupt; }
        else if (key == "rfBankConflictCycles") { if (!u64(s.rfBankConflictCycles)) return StatsDecode::Corrupt; }
        else if (key == "collectorFullStalls") { if (!u64(s.collectorFullStalls)) return StatsDecode::Corrupt; }
        else if (key == "execStructuralStalls") { if (!u64(s.execStructuralStalls)) return StatsDecode::Corrupt; }
        else if (key == "l1Accesses") { if (!u64(s.l1Accesses)) return StatsDecode::Corrupt; }
        else if (key == "l1Misses") { if (!u64(s.l1Misses)) return StatsDecode::Corrupt; }
        else if (key == "l2Accesses") { if (!u64(s.l2Accesses)) return StatsDecode::Corrupt; }
        else if (key == "l2Misses") { if (!u64(s.l2Misses)) return StatsDecode::Corrupt; }
        else if (key == "blocksCompleted") { if (!u64(s.blocksCompleted)) return StatsDecode::Corrupt; }
        else if (key == "warpsCompleted") { if (!u64(s.warpsCompleted)) return StatsDecode::Corrupt; }
        else if (key == "assignSpills") { if (!u64(s.assignSpills)) return StatsDecode::Corrupt; }
        else if (key == "warpMigrations") { if (!u64(s.warpMigrations)) return StatsDecode::Corrupt; }
        else if (key == "issueRow") {
            std::vector<std::uint64_t> row;
            std::uint64_t v;
            while (ls >> v)
                row.push_back(v);
            s.issuePerScheduler.push_back(std::move(row));
        } else if (key == "kernelSpan") {
            std::uint64_t span;
            if (!(ls >> span))
                return StatsDecode::Corrupt;
            std::string name;
            std::getline(ls, name);
            if (!name.empty() && name.front() == ' ')
                name.erase(0, 1);
            s.kernelSpans.emplace_back(unescapeName(name), span);
        } else if (key == "rfTraceWindow") {
            std::uint64_t w;
            if (!u64(w))
                return StatsDecode::Corrupt;
            s.rfReadTrace = TimeSeries{ w };
        } else if (key == "rfTraceSamples") {
            std::vector<double> samples;
            double v;
            while (ls >> v)
                samples.push_back(v);
            s.rfReadTrace.restoreSamples(std::move(samples));
        }
        // Unknown keys are skipped: forward-compatible within a
        // format version bump.
    }
    out = std::move(s);
    return StatsDecode::Ok;
}

} // namespace

std::string
serializeStats(const SimStats &stats)
{
    std::string payload = serializePayload(stats);
    char header[96];
    std::snprintf(header, sizeof header, "%s v%u fnv1a %s\n", kMagic,
                  kResultFormatVersion,
                  keyToHex(hashString(payload)).c_str());
    return header + payload;
}

StatsDecode
decodeStats(const std::string &text, SimStats &out)
{
    auto nl = text.find('\n');
    if (nl == std::string::npos)
        return StatsDecode::Corrupt;
    std::istringstream hs(text.substr(0, nl));
    std::string magic, version, algo, sum;
    if (!(hs >> magic >> version) || magic != kMagic)
        return StatsDecode::Corrupt;
    {
        char expect[16];
        std::snprintf(expect, sizeof expect, "v%u", kResultFormatVersion);
        if (version != expect)
            return StatsDecode::VersionSkew;
    }
    if (!(hs >> algo >> sum) || algo != "fnv1a")
        return StatsDecode::Corrupt;

    std::string payload = text.substr(nl + 1);
    if (keyToHex(hashString(payload)) != sum)
        return StatsDecode::Corrupt;

    return parsePayload(payload, out);
}

bool
deserializeStats(const std::string &text, SimStats &out)
{
    return decodeStats(text, out) == StatsDecode::Ok;
}

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir))
{
    if (dir_.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec)
        scsim_throw(CacheError, "cannot create cache directory '%s': %s",
                    dir_.c_str(), ec.message().c_str());
}

std::string
ResultCache::pathFor(std::uint64_t key) const
{
    return dir_ + "/" + keyToHex(key) + ".stats";
}

bool
ResultCache::lookup(std::uint64_t key, SimStats &out)
{
    std::lock_guard lock(mutex_);
    if (auto it = memory_.find(key); it != memory_.end()) {
        out = it->second;
        ++hits_;
        return true;
    }
    if (!dir_.empty()) {
        if (FaultInjector::instance().shouldFailCacheRead())
            scsim_throw(CacheError, "injected cache read fault for key %s",
                        keyToHex(key).c_str());
        std::ifstream in(pathFor(key));
        if (in) {
            std::ostringstream text;
            text << in.rdbuf();
            SimStats s;
            switch (decodeStats(text.str(), s)) {
              case StatsDecode::Ok:
                memory_.emplace(key, s);
                out = std::move(s);
                ++hits_;
                return true;
              case StatsDecode::VersionSkew:
                // Another format version: a legitimate miss; the
                // re-run overwrites the stale entry.
                break;
              case StatsDecode::Corrupt: {
                // Move the damaged file aside so the evidence
                // survives and the re-run's write cannot be
                // mistaken for the bad entry.
                std::string quarantine =
                    dir_ + "/" + keyToHex(key) + ".corrupt";
                std::error_code ec;
                std::filesystem::rename(pathFor(key), quarantine, ec);
                if (ec)
                    std::filesystem::remove(pathFor(key), ec);
                ++quarantined_;
                scsim_warn("quarantined corrupt cache entry %s -> %s; "
                           "re-running job", pathFor(key).c_str(),
                           quarantine.c_str());
                break;
              }
            }
        }
    }
    ++misses_;
    return false;
}

void
ResultCache::store(std::uint64_t key, const SimStats &stats)
{
    std::lock_guard lock(mutex_);
    memory_.insert_or_assign(key, stats);
    if (dir_.empty())
        return;
    if (FaultInjector::instance().shouldFailCacheWrite())
        scsim_throw(CacheError, "injected cache write fault for key %s",
                    keyToHex(key).c_str());
    std::string path = pathFor(key);
    std::string tmp = path + ".tmp" + keyToHex(key);
    {
        std::ofstream outFile(tmp, std::ios::trunc);
        if (!outFile)
            scsim_throw(CacheError, "cannot write cache entry %s",
                        tmp.c_str());
        outFile << serializeStats(stats);
        if (!outFile.good())
            scsim_throw(CacheError, "short write to cache entry %s",
                        tmp.c_str());
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::error_code rmEc;
        std::filesystem::remove(tmp, rmEc);
        scsim_throw(CacheError, "cannot finalize cache entry %s: %s",
                    path.c_str(), ec.message().c_str());
    }
}

std::uint64_t
ResultCache::hits() const
{
    std::lock_guard lock(mutex_);
    return hits_;
}

std::uint64_t
ResultCache::misses() const
{
    std::lock_guard lock(mutex_);
    return misses_;
}

std::uint64_t
ResultCache::quarantined() const
{
    std::lock_guard lock(mutex_);
    return quarantined_;
}

} // namespace scsim::runner
