#include "runner/result_cache.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/fault_inject.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "runner/job_key.hh"

namespace scsim::runner {

namespace {

namespace fs = std::filesystem;

bool
isCacheFile(const fs::path &p)
{
    return p.extension() == ".stats" || p.extension() == ".corrupt";
}

} // namespace

ResultCache::ResultCache(std::string dir, std::uint64_t maxDiskBytes)
    : dir_(std::move(dir)), maxDiskBytes_(maxDiskBytes)
{
    if (dir_.empty())
        return;
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        scsim_throw(CacheError, "cannot create cache directory '%s': %s",
                    dir_.c_str(), ec.message().c_str());
    std::lock_guard lock(mutex_);
    trimLocked();
}

std::string
ResultCache::pathFor(std::uint64_t key) const
{
    return dir_ + "/" + keyToHex(key) + ".stats";
}

bool
ResultCache::lookup(std::uint64_t key, SimStats &out)
{
    std::lock_guard lock(mutex_);
    if (auto it = memory_.find(key); it != memory_.end()) {
        out = it->second;
        ++hits_;
        return true;
    }
    if (!dir_.empty()) {
        if (FaultInjector::instance().shouldFailCacheRead())
            scsim_throw(CacheError, "injected cache read fault for key %s",
                        keyToHex(key).c_str());
        std::ifstream in(pathFor(key));
        if (in) {
            std::ostringstream text;
            text << in.rdbuf();
            SimStats s;
            switch (decodeStats(text.str(), s)) {
              case StatsDecode::Ok: {
                if (maxDiskBytes_) {
                    // Touch the entry so LRU-by-mtime trimming sees
                    // disk hits as recent use.  Best-effort: a failed
                    // touch only ages the entry.
                    std::error_code ec;
                    std::filesystem::last_write_time(
                        pathFor(key),
                        std::filesystem::file_time_type::clock::now(),
                        ec);
                }
                memory_.emplace(key, s);
                out = std::move(s);
                ++hits_;
                return true;
              }
              case StatsDecode::VersionSkew:
                // Another format version: a legitimate miss; the
                // re-run overwrites the stale entry.
                break;
              case StatsDecode::Corrupt: {
                // Move the damaged file aside so the evidence
                // survives and the re-run's write cannot be
                // mistaken for the bad entry.
                std::string quarantine =
                    dir_ + "/" + keyToHex(key) + ".corrupt";
                std::error_code ec;
                std::filesystem::rename(pathFor(key), quarantine, ec);
                if (ec)
                    std::filesystem::remove(pathFor(key), ec);
                ++quarantined_;
                scsim_warn("quarantined corrupt cache entry %s -> %s; "
                           "re-running job", pathFor(key).c_str(),
                           quarantine.c_str());
                break;
              }
            }
        }
    }
    ++misses_;
    return false;
}

void
ResultCache::store(std::uint64_t key, const SimStats &stats)
{
    std::lock_guard lock(mutex_);
    memory_.insert_or_assign(key, stats);
    if (dir_.empty())
        return;
    if (FaultInjector::instance().shouldFailCacheWrite())
        scsim_throw(CacheError, "injected cache write fault for key %s",
                    keyToHex(key).c_str());
    std::string path = pathFor(key);
    std::string tmp = path + ".tmp" + keyToHex(key);
    {
        std::ofstream outFile(tmp, std::ios::trunc);
        if (!outFile)
            scsim_throw(CacheError, "cannot write cache entry %s",
                        tmp.c_str());
        outFile << serializeStats(stats);
        if (!outFile.good())
            scsim_throw(CacheError, "short write to cache entry %s",
                        tmp.c_str());
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::error_code rmEc;
        std::filesystem::remove(tmp, rmEc);
        scsim_throw(CacheError, "cannot finalize cache entry %s: %s",
                    path.c_str(), ec.message().c_str());
    }
    if (maxDiskBytes_)
        trimLocked();
}

void
ResultCache::trimLocked()
{
    struct Entry
    {
        fs::path path;
        std::uint64_t bytes;
        fs::file_time_type mtime;
        bool corrupt;
    };
    std::vector<Entry> entries;
    std::uint64_t total = 0;

    std::error_code ec;
    for (const auto &de : fs::directory_iterator(dir_, ec)) {
        if (!isCacheFile(de.path()))
            continue;
        std::error_code fec;
        std::uint64_t bytes = de.file_size(fec);
        fs::file_time_type mtime = de.last_write_time(fec);
        if (fec)
            continue;  // vanished between listing and stat
        total += bytes;
        entries.push_back({ de.path(), bytes, mtime,
                            de.path().extension() == ".corrupt" });
    }
    diskBytes_ = total;
    if (!maxDiskBytes_ || total <= maxDiskBytes_)
        return;

    // Evict quarantined wreckage first (its only value is forensic),
    // then least-recently-used live entries.
    std::stable_sort(entries.begin(), entries.end(),
                     [](const Entry &a, const Entry &b) {
                         if (a.corrupt != b.corrupt)
                             return a.corrupt;
                         return a.mtime < b.mtime;
                     });
    for (const Entry &e : entries) {
        if (total <= maxDiskBytes_)
            break;
        std::error_code rmEc;
        if (!fs::remove(e.path, rmEc) || rmEc)
            continue;
        total -= std::min(total, e.bytes);
        ++evicted_;
    }
    diskBytes_ = total;
}

std::uint64_t
ResultCache::hits() const
{
    std::lock_guard lock(mutex_);
    return hits_;
}

std::uint64_t
ResultCache::misses() const
{
    std::lock_guard lock(mutex_);
    return misses_;
}

std::uint64_t
ResultCache::quarantined() const
{
    std::lock_guard lock(mutex_);
    return quarantined_;
}

std::uint64_t
ResultCache::evicted() const
{
    std::lock_guard lock(mutex_);
    return evicted_;
}

std::uint64_t
ResultCache::diskBytes() const
{
    if (dir_.empty())
        return 0;
    std::uint64_t total = 0;
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(dir_, ec)) {
        if (!isCacheFile(de.path()))
            continue;
        std::error_code fec;
        std::uint64_t bytes = de.file_size(fec);
        if (!fec)
            total += bytes;
    }
    return total;
}

} // namespace scsim::runner
