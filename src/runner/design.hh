/**
 * @file
 * Named design points evaluated across the paper's figures.
 *
 * A Design is a delta on top of a baseline GpuConfig: the scheduler /
 * assignment policy combinations of Section IV plus the
 * fully-connected SM and the collector-unit / bank-stealing
 * comparison points.  Lives in the library (rather than the bench
 * harness) so the sweep engine, the CLI and the figure binaries all
 * agree on what "Shuffle+RBA" means.
 *
 * The catalogue is a data table (designCatalog()): one row holds the
 * display name, the command-line aliases, a one-line description, and
 * the config overlay — adding a design point is adding a row, visible
 * at once to `scsim_cli list-designs`, the sweep engine, and every
 * figure binary.
 */

#ifndef SCSIM_RUNNER_DESIGN_HH
#define SCSIM_RUNNER_DESIGN_HH

#include <optional>
#include <string>
#include <vector>

#include "config/gpu_config.hh"

namespace scsim::runner {

/** The design points evaluated across the paper's figures. */
enum class Design
{
    Baseline,        //!< GTO + RR on the partitioned SM
    RBA,
    SRR,
    Shuffle,
    ShuffleRBA,
    FullyConnected,
    FullyConnectedRBA,
    BankStealing,
    Cus4,            //!< 4 CUs per sub-core
    Cus8,
    Cus16,
};

/**
 * The config delta a design point applies to a baseline.  Absent
 * fields leave the baseline untouched, so one overlay composes with
 * any base configuration.
 */
struct DesignOverlay
{
    std::optional<SchedulerPolicy> scheduler;
    std::optional<AssignPolicy> assign;
    std::optional<int> subCores;
    std::optional<bool> bankStealing;
    /** collectorUnitsPerSm = cusPerSubcore * base.subCores. */
    std::optional<int> cusPerSubcore;
};

/** One catalogue row: identity, naming, documentation, overlay. */
struct DesignInfo
{
    Design id;
    const char *name;         //!< display form ("Shuffle+RBA")
    /** Identifier aliases usable on a command line (no '+', ' ', '-'),
     *  space-separated; empty when the display form needs none. */
    const char *aliases;
    const char *description;
    DesignOverlay overlay;
};

/** The full design table, in declaration order (Baseline first). */
const std::vector<DesignInfo> &designCatalog();

const char *toString(Design d);

/**
 * Parse a design name; accepts both the display form ("Shuffle+RBA")
 * and the identifier aliases ("ShuffleRBA", "FC", ...).  Throws
 * ConfigError listing the valid names on unknown input.
 */
Design parseDesign(const std::string &name);

/** Every design point, in declaration order (Baseline first). */
std::vector<Design> allDesigns();

/** Apply one design point's overlay to a baseline configuration. */
GpuConfig applyDesign(GpuConfig cfg, Design d);

/**
 * Name-based form of applyDesign: resolve @p name through the
 * catalogue (ConfigError listing valid names if unknown) and apply its
 * overlay to @p base.  The path the CLI and the bench harness use.
 */
GpuConfig designConfig(GpuConfig base, const std::string &name);

} // namespace scsim::runner

#endif // SCSIM_RUNNER_DESIGN_HH
