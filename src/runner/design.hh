/**
 * @file
 * Named design points evaluated across the paper's figures.
 *
 * A Design is a delta on top of a baseline GpuConfig: the scheduler /
 * assignment policy combinations of Section IV plus the
 * fully-connected SM and the collector-unit / bank-stealing
 * comparison points.  Lives in the library (rather than the bench
 * harness) so the sweep engine, the CLI and the figure binaries all
 * agree on what "Shuffle+RBA" means.
 */

#ifndef SCSIM_RUNNER_DESIGN_HH
#define SCSIM_RUNNER_DESIGN_HH

#include <string>
#include <vector>

#include "config/gpu_config.hh"

namespace scsim::runner {

/** The design points evaluated across the paper's figures. */
enum class Design
{
    Baseline,        //!< GTO + RR on the partitioned SM
    RBA,
    SRR,
    Shuffle,
    ShuffleRBA,
    FullyConnected,
    FullyConnectedRBA,
    BankStealing,
    Cus4,            //!< 4 CUs per sub-core
    Cus8,
    Cus16,
};

const char *toString(Design d);

/**
 * Parse a design name; accepts both the display form ("Shuffle+RBA")
 * and the identifier form ("ShuffleRBA").  Fatal on unknown names.
 */
Design parseDesign(const std::string &name);

/** Every design point, in declaration order (Baseline first). */
std::vector<Design> allDesigns();

/** Apply one design point to a baseline configuration. */
GpuConfig applyDesign(GpuConfig cfg, Design d);

} // namespace scsim::runner

#endif // SCSIM_RUNNER_DESIGN_HH
