#include "runner/report.hh"

#include <cinttypes>
#include <fstream>

#include "common/logging.hh"
#include "common/text_escape.hh"
#include "runner/job_key.hh"
#include "runner/worker_pool.hh"

namespace scsim::runner {

namespace {

std::string
fmtU64(std::uint64_t v)
{
    return detail::format("%" PRIu64, v);
}

std::string
fmtDouble(double v)
{
    return detail::format("%.17g", v);
}

/** The manifest's per-job stat columns, shared by JSON and CSV. */
const std::pair<const char *, std::uint64_t SimStats::*> kCounters[] = {
    { "cycles", &SimStats::cycles },
    { "instructions", &SimStats::instructions },
    { "threadInstructions", &SimStats::threadInstructions },
    { "rfReads", &SimStats::rfReads },
    { "rfWrites", &SimStats::rfWrites },
    { "rfBankConflictCycles", &SimStats::rfBankConflictCycles },
    { "collectorFullStalls", &SimStats::collectorFullStalls },
    { "stallNoWarp", &SimStats::stallNoWarp },
    { "stallScoreboard", &SimStats::stallScoreboard },
    { "stallNoCu", &SimStats::stallNoCu },
    { "l1Accesses", &SimStats::l1Accesses },
    { "l1Misses", &SimStats::l1Misses },
    { "l2Accesses", &SimStats::l2Accesses },
    { "l2Misses", &SimStats::l2Misses },
    { "blocksCompleted", &SimStats::blocksCompleted },
    { "warpsCompleted", &SimStats::warpsCompleted },
    { "assignSpills", &SimStats::assignSpills },
    { "warpMigrations", &SimStats::warpMigrations },
};

} // namespace

std::string
jsonManifest(const SweepSpec &spec, const SweepResult &res)
{
    scsim_assert(spec.jobs.size() == res.results.size(),
                 "manifest spec/result size mismatch");
    std::string out;
    out += "{\n";
    out += detail::format(
        "  \"schema\": \"scsim-sweep-manifest\",\n"
        "  \"version\": %d,\n"
        "  \"jobCount\": %zu,\n"
        "  \"jobs\": [\n",
        kManifestVersion, spec.jobs.size());

    for (std::size_t i = 0; i < spec.jobs.size(); ++i) {
        const SimJob &job = spec.jobs[i];
        const JobResult &r = res.results[i];
        out += "    {\n";
        out += "      \"tag\": \"" + jsonEscape(job.tag) + "\",\n";
        out += "      \"app\": \"" + jsonEscape(job.app.name) + "\",\n";
        out += "      \"suite\": \"" + jsonEscape(job.app.suite)
            + "\",\n";
        out += "      \"key\": \"" + keyToHex(r.key) + "\",\n";
        out += detail::format("      \"status\": \"%s\",\n",
                              manifestStatus(r.status));
        out += "      \"error\": \"" + jsonEscape(r.error) + "\",\n";
        out += detail::format(
            "      \"signal\": %d,\n      \"exitCode\": %d,\n",
            r.termSignal, r.exitCode);
        out += detail::format(
            "      \"config\": {\"numSms\": %d, \"subCores\": %d, "
            "\"scheduler\": \"%s\", \"assign\": \"%s\", "
            "\"salt\": %s, \"concurrent\": %s},\n",
            job.cfg.numSms, job.cfg.subCores,
            toString(job.cfg.scheduler), toString(job.cfg.assign),
            fmtU64(job.salt).c_str(),
            job.concurrent ? "true" : "false");
        out += "      \"stats\": {";
        bool first = true;
        for (const auto &[name, member] : kCounters) {
            if (!first)
                out += ", ";
            first = false;
            out += '"';
            out += name;
            out += "\": " + fmtU64(r.stats.*member);
        }
        out += ", \"ipc\": " + fmtDouble(r.stats.ipc());
        out += ", \"issueCov\": " + fmtDouble(r.stats.issueCov());
        out += "}\n";
        out += i + 1 < spec.jobs.size() ? "    },\n" : "    }\n";
    }
    out += "  ]\n}\n";
    return out;
}

std::string
csvManifest(const SweepSpec &spec, const SweepResult &res)
{
    scsim_assert(spec.jobs.size() == res.results.size(),
                 "manifest spec/result size mismatch");
    std::string out = "tag,app,suite,key,status,error,signal,exitCode,"
                      "numSms,subCores,scheduler,assign,salt,concurrent";
    for (const auto &[name, member] : kCounters) {
        (void)member;
        out += ',';
        out += name;
    }
    out += ",ipc,issueCov\n";

    for (std::size_t i = 0; i < spec.jobs.size(); ++i) {
        const SimJob &job = spec.jobs[i];
        const JobResult &r = res.results[i];
        out += csvField(job.tag) + ',' + csvField(job.app.name) + ','
            + csvField(job.app.suite) + ',' + keyToHex(r.key);
        out += ',';
        out += manifestStatus(r.status);
        out += ',' + csvField(r.error);
        out += detail::format(",%d,%d", r.termSignal, r.exitCode);
        out += detail::format(",%d,%d,%s,%s,%s,%d", job.cfg.numSms,
                              job.cfg.subCores,
                              toString(job.cfg.scheduler),
                              toString(job.cfg.assign),
                              fmtU64(job.salt).c_str(),
                              job.concurrent ? 1 : 0);
        for (const auto &[name, member] : kCounters) {
            (void)name;
            out += ',' + fmtU64(r.stats.*member);
        }
        out += ',' + fmtDouble(r.stats.ipc());
        out += ',' + fmtDouble(r.stats.issueCov());
        out += '\n';
    }
    return out;
}

void
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        scsim_fatal("cannot write '%s'", path.c_str());
    out << text;
    if (!out.good())
        scsim_fatal("short write to '%s'", path.c_str());
}

std::string
summaryLine(const SweepResult &res, int jobs)
{
    std::string line = detail::format(
        "%zu jobs (%" PRIu64 " simulated, %" PRIu64 " cached) in "
        "%.1fs on %d worker%s",
        res.results.size(), res.executed, res.cacheHits,
        res.wallMs / 1e3, resolveJobs(jobs),
        resolveJobs(jobs) == 1 ? "" : "s");
    if (res.resumed)
        line += detail::format(", %" PRIu64 " resumed", res.resumed);
    if (res.failed)
        line += detail::format(", %" PRIu64 " FAILED", res.failed);
    if (res.skipped)
        line += detail::format(", %" PRIu64 " skipped", res.skipped);
    return line;
}

} // namespace scsim::runner
