/**
 * @file
 * The sweep engine: executes a SweepSpec on a worker pool.
 *
 * Execution model: the whole spec is validated first (all problems
 * reported at once, before any job runs), every job's cache key is
 * computed up front, cache hits are resolved immediately, and the
 * remaining jobs are issued to the pool longest-expected-first, which
 * keeps the tail of a sweep from being serialized behind one giant
 * simulation.  Each worker owns its entire GpuSim, so jobs share
 * nothing but the result slots (disjoint per job) and the
 * cache/progress locks.  Results are reported in spec order
 * regardless of completion order, making the merged output — and any
 * manifest derived from it — byte-identical for every worker count.
 *
 * Failure containment: a job that throws (WorkloadError from an
 * unrunnable kernel, HangError from the forward-progress watchdog,
 * anything else unexpected) is recorded in its JobResult and the
 * sweep carries on; `failFast` / `maxFailures` bound how much is
 * attempted after things start going wrong.  Transient cache I/O
 * faults are retried with bounded backoff and can degrade to a
 * miss / unsaved result, but never fail a job.
 *
 * Process isolation (`SweepOptions::isolate`): each job is serialized
 * over a pipe to a `scsim_cli run-job` child and its result record
 * read back, so a crash — SIGSEGV, abort, OOM kill — is contained to
 * one job and recorded as JobStatus::Crashed with the fatal signal or
 * exit code.  Checkpointing (`journalPath` / `resumePath`): finished
 * jobs are durably appended to a journal, and a resumed sweep adopts
 * them instead of re-running, producing a manifest byte-identical to
 * an uninterrupted run.
 */

#ifndef SCSIM_RUNNER_SWEEP_ENGINE_HH
#define SCSIM_RUNNER_SWEEP_ENGINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "runner/job_result.hh"
#include "runner/result_cache.hh"
#include "runner/sweep_spec.hh"
#include "stats/stats.hh"

namespace scsim::runner {

/** Merged outcome of a sweep; results are parallel to spec.jobs. */
struct SweepResult
{
    std::vector<std::string> tags;
    std::vector<JobResult> results;

    double wallMs = 0.0;         //!< whole-sweep wall clock
    std::uint64_t cacheHits = 0;
    std::uint64_t executed = 0;  //!< claimed jobs, including failed
    std::uint64_t failed = 0;    //!< Failed + Hang + Crashed
    std::uint64_t skipped = 0;   //!< never claimed
    std::uint64_t resumed = 0;   //!< adopted from a resume journal

    bool allOk() const { return failed == 0 && skipped == 0; }

    /** Stats for @p tag; throws ConfigError if the sweep had no such job. */
    const SimStats &stats(const std::string &tag) const;

    /** Cycles for @p tag (the common figure-harness access). */
    Cycle cycles(const std::string &tag) const;
};

class SweepEngine
{
  public:
    explicit SweepEngine(SweepOptions opts = {});

    /**
     * Execute @p spec.  Throws ConfigError — before any job runs —
     * listing every duplicate tag and invalid config with the
     * offending job's tag and app.  Per-job runtime failures do not
     * throw; they are recorded in the returned results (see
     * JobStatus) and counted in SweepResult::failed.
     */
    SweepResult run(const SweepSpec &spec);

    ResultCache &cache() { return cache_; }

  private:
    /** Run @p job in a `run-job` child; fills @p r (never throws
     *  for child-side outcomes — a crash becomes JobStatus::Crashed). */
    void runIsolated(const SimJob &job, JobResult &r);

    SweepOptions opts_;
    ResultCache cache_;
};

} // namespace scsim::runner

#endif // SCSIM_RUNNER_SWEEP_ENGINE_HH
