/**
 * @file
 * The sweep engine: executes a SweepSpec on a worker pool.
 *
 * Execution model: the whole spec is validated first (all problems
 * reported at once, before any job runs), every job's cache key is
 * computed up front, cache hits are resolved immediately, and the
 * remaining jobs are issued to the pool longest-expected-first, which
 * keeps the tail of a sweep from being serialized behind one giant
 * simulation.  Each worker owns its entire GpuSim, so jobs share
 * nothing but the result slots (disjoint per job) and the
 * cache/progress locks.  Results are reported in spec order
 * regardless of completion order, making the merged output — and any
 * manifest derived from it — byte-identical for every worker count.
 *
 * Failure containment: a job that throws (WorkloadError from an
 * unrunnable kernel, HangError from the forward-progress watchdog,
 * anything else unexpected) is recorded in its JobResult and the
 * sweep carries on; `failFast` / `maxFailures` bound how much is
 * attempted after things start going wrong.  Transient cache I/O
 * faults are retried with bounded backoff and can degrade to a
 * miss / unsaved result, but never fail a job.
 */

#ifndef SCSIM_RUNNER_SWEEP_ENGINE_HH
#define SCSIM_RUNNER_SWEEP_ENGINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "runner/result_cache.hh"
#include "runner/sweep_spec.hh"
#include "stats/stats.hh"

namespace scsim::runner {

/** How one job ended. */
enum class JobStatus
{
    Skipped,  //!< never claimed (failFast / maxFailures tripped)
    Ok,       //!< simulated to completion
    Cached,   //!< served from the result cache
    Failed,   //!< threw (workload/config error at runtime)
    Hang,     //!< forward-progress watchdog or cycle budget fired
};

/** Debug name: "skipped"/"ok"/"cached"/"failed"/"hang". */
const char *toString(JobStatus s);

/**
 * Manifest form of a status.  Cached collapses to "ok": manifests
 * exclude execution-dependent facts, and cache hits are exactly that.
 */
const char *manifestStatus(JobStatus s);

/** Outcome of one job, in spec order. */
struct JobResult
{
    std::uint64_t key = 0;   //!< content hash (see jobKey)
    SimStats stats;          //!< zeros unless status is Ok/Cached
    JobStatus status = JobStatus::Skipped;
    std::string error;       //!< what() of the failure; empty when ok
    bool cached = false;     //!< served from the result cache
    double wallMs = 0.0;     //!< simulation time; 0 when cached

    bool ok() const
    {
        return status == JobStatus::Ok || status == JobStatus::Cached;
    }
};

/** Merged outcome of a sweep; results are parallel to spec.jobs. */
struct SweepResult
{
    std::vector<std::string> tags;
    std::vector<JobResult> results;

    double wallMs = 0.0;         //!< whole-sweep wall clock
    std::uint64_t cacheHits = 0;
    std::uint64_t executed = 0;  //!< claimed jobs, including failed
    std::uint64_t failed = 0;    //!< Failed + Hang
    std::uint64_t skipped = 0;   //!< never claimed

    bool allOk() const { return failed == 0 && skipped == 0; }

    /** Stats for @p tag; throws ConfigError if the sweep had no such job. */
    const SimStats &stats(const std::string &tag) const;

    /** Cycles for @p tag (the common figure-harness access). */
    Cycle cycles(const std::string &tag) const;
};

class SweepEngine
{
  public:
    explicit SweepEngine(SweepOptions opts = {});

    /**
     * Execute @p spec.  Throws ConfigError — before any job runs —
     * listing every duplicate tag and invalid config with the
     * offending job's tag and app.  Per-job runtime failures do not
     * throw; they are recorded in the returned results (see
     * JobStatus) and counted in SweepResult::failed.
     */
    SweepResult run(const SweepSpec &spec);

    ResultCache &cache() { return cache_; }

  private:
    SweepOptions opts_;
    ResultCache cache_;
};

} // namespace scsim::runner

#endif // SCSIM_RUNNER_SWEEP_ENGINE_HH
