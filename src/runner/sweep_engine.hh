/**
 * @file
 * The sweep engine: executes a SweepSpec on a worker pool.
 *
 * Execution model: every job's cache key is computed up front; cache
 * hits are resolved immediately and the remaining jobs are issued to
 * the pool longest-expected-first, which keeps the tail of a sweep
 * from being serialized behind one giant simulation.  Each worker
 * owns its entire GpuSim, so jobs share nothing but the result slots
 * (disjoint per job) and the cache/progress locks.  Results are
 * reported in spec order regardless of completion order, making the
 * merged output — and any manifest derived from it — byte-identical
 * for every worker count.
 */

#ifndef SCSIM_RUNNER_SWEEP_ENGINE_HH
#define SCSIM_RUNNER_SWEEP_ENGINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "runner/result_cache.hh"
#include "runner/sweep_spec.hh"
#include "stats/stats.hh"

namespace scsim::runner {

/** Outcome of one job, in spec order. */
struct JobResult
{
    std::uint64_t key = 0;   //!< content hash (see jobKey)
    SimStats stats;
    bool cached = false;     //!< served from the result cache
    double wallMs = 0.0;     //!< simulation time; 0 when cached
};

/** Merged outcome of a sweep; results are parallel to spec.jobs. */
struct SweepResult
{
    std::vector<std::string> tags;
    std::vector<JobResult> results;

    double wallMs = 0.0;         //!< whole-sweep wall clock
    std::uint64_t cacheHits = 0;
    std::uint64_t executed = 0;

    /** Stats for @p tag; fatal if the sweep had no such job. */
    const SimStats &stats(const std::string &tag) const;

    /** Cycles for @p tag (the common figure-harness access). */
    Cycle cycles(const std::string &tag) const;
};

class SweepEngine
{
  public:
    explicit SweepEngine(SweepOptions opts = {});

    /** Execute @p spec; fatal on duplicate tags or invalid configs. */
    SweepResult run(const SweepSpec &spec);

    ResultCache &cache() { return cache_; }

  private:
    SweepOptions opts_;
    ResultCache cache_;
};

} // namespace scsim::runner

#endif // SCSIM_RUNNER_SWEEP_ENGINE_HH
