#include "runner/worker_pool.hh"

#include <atomic>
#include <thread>

#include "common/logging.hh"

namespace scsim::runner {

int
resolveJobs(int jobs)
{
    if (jobs < 0)
        scsim_throw(ConfigError, "worker count must be >= 0 (got %d)", jobs);
    if (jobs > 0)
        return jobs;
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

std::vector<std::exception_ptr>
runOrdered(const std::vector<std::size_t> &order, int threads,
           const std::function<void(std::size_t)> &fn,
           const std::function<bool(std::size_t)> &stop)
{
    threads = resolveJobs(threads);
    std::vector<std::exception_ptr> errors(order.size());
    std::atomic<std::size_t> failures{ 0 };

    auto runOne = [&](std::size_t k) {
        try {
            fn(order[k]);
        } catch (...) {
            errors[k] = std::current_exception();
            failures.fetch_add(1, std::memory_order_relaxed);
        }
    };
    auto shouldStop = [&] {
        return stop && stop(failures.load(std::memory_order_relaxed));
    };

    if (threads == 1 || order.size() <= 1) {
        for (std::size_t k = 0; k < order.size(); ++k) {
            if (shouldStop())
                break;
            runOne(k);
        }
        return errors;
    }

    std::atomic<std::size_t> cursor{ 0 };
    auto worker = [&] {
        for (;;) {
            if (shouldStop())
                return;
            std::size_t k = cursor.fetch_add(1,
                                             std::memory_order_relaxed);
            if (k >= order.size())
                return;
            runOne(k);
        }
    };

    {
        std::vector<std::jthread> pool;
        std::size_t n = std::min<std::size_t>(
            static_cast<std::size_t>(threads), order.size());
        pool.reserve(n);
        for (std::size_t t = 0; t < n; ++t)
            pool.emplace_back(worker);
        // jthread joins on destruction.
    }
    return errors;
}

} // namespace scsim::runner
