#include "runner/worker_pool.hh"

#include <atomic>
#include <thread>

#include "common/logging.hh"

namespace scsim::runner {

int
resolveJobs(int jobs)
{
    if (jobs < 0)
        scsim_fatal("worker count must be >= 0 (got %d)", jobs);
    if (jobs > 0)
        return jobs;
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

void
runOrdered(const std::vector<std::size_t> &order, int threads,
           const std::function<void(std::size_t)> &fn)
{
    threads = resolveJobs(threads);
    if (threads == 1 || order.size() <= 1) {
        for (std::size_t idx : order)
            fn(idx);
        return;
    }

    std::atomic<std::size_t> cursor{ 0 };
    auto worker = [&] {
        for (;;) {
            std::size_t i = cursor.fetch_add(1,
                                             std::memory_order_relaxed);
            if (i >= order.size())
                return;
            fn(order[i]);
        }
    };

    std::vector<std::jthread> pool;
    std::size_t n = std::min<std::size_t>(
        static_cast<std::size_t>(threads), order.size());
    pool.reserve(n);
    for (std::size_t t = 0; t < n; ++t)
        pool.emplace_back(worker);
    // jthread joins on destruction.
}

} // namespace scsim::runner
