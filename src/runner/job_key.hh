/**
 * @file
 * Content-addressed job identity.
 *
 * A job's cache key is a 64-bit hash of the *canonical text* of
 * everything that determines its result: every GpuConfig field, every
 * AppSpec field (the workload id plus the scale-dependent geometry),
 * the seed salt, the execution mode, and a format version that is
 * bumped whenever simulator semantics or the serialization change.
 * Two jobs with the same key are guaranteed byte-identical results,
 * so a sweep can skip any point whose key is already cached.
 */

#ifndef SCSIM_RUNNER_JOB_KEY_HH
#define SCSIM_RUNNER_JOB_KEY_HH

#include <cstdint>
#include <string>

#include "runner/sweep_spec.hh"

namespace scsim::runner {

/**
 * Cache format / semantics version.  Bump to invalidate every cached
 * result (e.g. after a change to simulator timing or serialization).
 */
inline constexpr std::uint32_t kResultFormatVersion = 2;

/** Deterministic text form of every simulation-relevant config field. */
std::string canonicalText(const GpuConfig &cfg);

/** Deterministic text form of every workload-spec field. */
std::string canonicalText(const AppSpec &app);

/** Full canonical description of a job (config + app + salt + mode). */
std::string canonicalText(const SimJob &job);

/** 64-bit content hash of a job's canonical description. */
std::uint64_t jobKey(const SimJob &job);

/** Fixed-width lowercase hex form of a key (cache file stem). */
std::string keyToHex(std::uint64_t key);

} // namespace scsim::runner

#endif // SCSIM_RUNNER_JOB_KEY_HH
