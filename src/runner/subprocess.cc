#include "runner/subprocess.hh"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/io_util.hh"
#include "common/logging.hh"

namespace scsim::runner {

namespace {

using Clock = std::chrono::steady_clock;

/** Grace between SIGTERM and SIGKILL when the deadline fires. */
constexpr auto kKillGrace = std::chrono::seconds(2);

void
setNonblocking(int fd)
{
    int flags = fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void
closeFd(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

struct Pipe
{
    int fds[2] = { -1, -1 };

    ~Pipe()
    {
        closeFd(fds[0]);
        closeFd(fds[1]);
    }

    void
    open()
    {
        if (pipe2(fds, O_CLOEXEC) != 0)
            scsim_throw(SimError, "pipe2 failed: %s",
                        std::strerror(errno));
    }

    int &rd() { return fds[0]; }
    int &wr() { return fds[1]; }
};

void
appendTail(std::string &tail, const char *buf, std::size_t n,
           std::size_t cap)
{
    tail.append(buf, n);
    if (tail.size() > cap)
        tail.erase(0, tail.size() - cap);
}

} // namespace

std::string
currentExecutablePath()
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n <= 0)
        scsim_throw(SimError, "cannot resolve /proc/self/exe: %s",
                    std::strerror(errno));
    return std::string(buf, static_cast<std::size_t>(n));
}

SubprocessResult
runSubprocess(const std::vector<std::string> &argv,
              const std::string &input, double timeoutSec,
              std::size_t tailBytes)
{
    if (argv.empty())
        scsim_throw(SimError, "runSubprocess needs a non-empty argv");
    ignoreSigpipe();

    Pipe in, out, err;
    in.open();
    out.open();
    err.open();

    // Everything the child needs, prepared before fork: no allocation
    // may happen between fork and exec.
    std::vector<char *> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string &a : argv)
        cargv.push_back(const_cast<char *>(a.c_str()));
    cargv.push_back(nullptr);

    pid_t pid = ::fork();
    if (pid < 0)
        scsim_throw(SimError, "fork failed: %s", std::strerror(errno));

    if (pid == 0) {
        // Child: wire the pipes to stdio and exec.  Only
        // async-signal-safe calls from here on.
        if (::dup2(in.rd(), STDIN_FILENO) < 0
            || ::dup2(out.wr(), STDOUT_FILENO) < 0
            || ::dup2(err.wr(), STDERR_FILENO) < 0)
            ::_exit(127);
        ::execv(cargv[0], cargv.data());
        ::_exit(127);  // exec failed; 127 is the shell convention
    }

    // Parent: close the child's ends, then pump all three pipes from
    // one poll loop so a chatty child can never deadlock against a
    // large stdin payload.
    closeFd(in.rd());
    closeFd(out.wr());
    closeFd(err.wr());
    setNonblocking(in.wr());
    setNonblocking(out.rd());
    setNonblocking(err.rd());

    SubprocessResult res;
    std::size_t written = 0;
    bool sentTerm = false, sentKill = false;
    bool reaped = false;
    int status = 0;

    auto start = Clock::now();
    auto deadline = timeoutSec > 0
        ? start + std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double>(timeoutSec))
        : Clock::time_point::max();

    auto escalate = [&] {
        auto now = Clock::now();
        if (!sentTerm && now >= deadline) {
            res.timedOut = true;
            ::kill(pid, SIGTERM);
            sentTerm = true;
        } else if (sentTerm && !sentKill && now >= deadline + kKillGrace) {
            ::kill(pid, SIGKILL);
            sentKill = true;
        }
    };

    while (in.wr() >= 0 || out.rd() >= 0 || err.rd() >= 0) {
        struct pollfd fds[3];
        int nfds = 0;
        int inSlot = -1, outSlot = -1, errSlot = -1;
        if (in.wr() >= 0) {
            inSlot = nfds;
            fds[nfds++] = { in.wr(), POLLOUT, 0 };
        }
        if (out.rd() >= 0) {
            outSlot = nfds;
            fds[nfds++] = { out.rd(), POLLIN, 0 };
        }
        if (err.rd() >= 0) {
            errSlot = nfds;
            fds[nfds++] = { err.rd(), POLLIN, 0 };
        }

        int rc = ::poll(fds, static_cast<nfds_t>(nfds), 100);
        if (rc < 0 && errno != EINTR)
            break;
        escalate();
        if (!reaped && ::waitpid(pid, &status, WNOHANG) == pid)
            reaped = true;
        if (rc <= 0) {
            // The child is dead and a whole poll interval passed with
            // nothing to read: any pipe still open is held by an
            // orphaned grandchild (`sh -c` leaves one when killed),
            // and nobody is waiting for its output.
            if (reaped)
                break;
            continue;
        }

        if (inSlot >= 0 && (fds[inSlot].revents & (POLLOUT | POLLERR))) {
            if (written >= input.size()) {
                closeFd(in.wr());  // EOF tells the child "record done"
            } else {
                ssize_t n = ::write(in.wr(), input.data() + written,
                                    input.size() - written);
                if (n > 0)
                    written += static_cast<std::size_t>(n);
                else if (n < 0 && errno != EAGAIN && errno != EINTR)
                    closeFd(in.wr());  // EPIPE: child is gone
                if (written >= input.size())
                    closeFd(in.wr());
            }
        }

        char buf[8192];
        if (outSlot >= 0
            && (fds[outSlot].revents & (POLLIN | POLLHUP | POLLERR))) {
            ssize_t n = ::read(out.rd(), buf, sizeof buf);
            if (n > 0)
                res.stdoutText.append(buf, static_cast<std::size_t>(n));
            else if (n == 0 || (n < 0 && errno != EAGAIN && errno != EINTR))
                closeFd(out.rd());
        }
        if (errSlot >= 0
            && (fds[errSlot].revents & (POLLIN | POLLHUP | POLLERR))) {
            ssize_t n = ::read(err.rd(), buf, sizeof buf);
            if (n > 0)
                appendTail(res.stderrTail, buf,
                           static_cast<std::size_t>(n), tailBytes);
            else if (n == 0 || (n < 0 && errno != EAGAIN && errno != EINTR))
                closeFd(err.rd());
        }
    }

    // Pipes are done with; reap the child if the loop didn't already,
    // still enforcing the deadline for one that holds no pipe but
    // refuses to exit.
    while (!reaped) {
        pid_t w = ::waitpid(pid, &status, WNOHANG);
        if (w == pid)
            break;
        if (w < 0 && errno != EINTR) {
            status = 0;
            break;
        }
        escalate();
        ::poll(nullptr, 0, 20);
    }

    if (WIFEXITED(status))
        res.exitCode = WEXITSTATUS(status);
    else if (WIFSIGNALED(status))
        res.termSignal = WTERMSIG(status);
    return res;
}

} // namespace scsim::runner
