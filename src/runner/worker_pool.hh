/**
 * @file
 * Minimal fixed-size worker pool for independent simulation jobs.
 *
 * The pool executes a pre-ordered list of job indices on N
 * std::jthread workers.  There is deliberately no work queue object
 * to synchronize on beyond a single atomic cursor: jobs are
 * independent by construction (each worker owns its entire GpuSim),
 * so the only shared state is the cursor, the failure counter, and
 * whatever the callback itself locks.
 *
 * Error containment: an exception escaping the callback is captured
 * into the returned slot for that position instead of tearing down
 * the process, so one failed job can never take out its siblings.
 */

#ifndef SCSIM_RUNNER_WORKER_POOL_HH
#define SCSIM_RUNNER_WORKER_POOL_HH

#include <cstddef>
#include <exception>
#include <functional>
#include <vector>

namespace scsim::runner {

/** Worker-thread count for `jobs` requested (0 = hardware threads). */
int resolveJobs(int jobs);

/**
 * Run `fn(order[i])` for every i, distributing indices over
 * @p threads workers in the given order.  Returns when all claimed
 * jobs are done.  With threads == 1 the calling thread runs
 * everything itself, so a single-threaded sweep has no scheduling
 * noise at all.
 *
 * The returned vector is parallel to @p order: null for a position
 * that completed (or was never claimed), the captured exception
 * otherwise.
 *
 * @p stop, when set, is polled with the failure count so far before
 * each claim; once it returns true no further indices are claimed
 * (in-flight jobs still finish).  Positions never claimed keep a
 * null slot — the caller distinguishes them by whatever state @p fn
 * did not get to write.
 */
std::vector<std::exception_ptr>
runOrdered(const std::vector<std::size_t> &order, int threads,
           const std::function<void(std::size_t)> &fn,
           const std::function<bool(std::size_t failures)> &stop = {});

} // namespace scsim::runner

#endif // SCSIM_RUNNER_WORKER_POOL_HH
