/**
 * @file
 * Minimal fixed-size worker pool for independent simulation jobs.
 *
 * The pool executes a pre-ordered list of job indices on N
 * std::jthread workers.  There is deliberately no work queue object
 * to synchronize on beyond a single atomic cursor: jobs are
 * independent by construction (each worker owns its entire GpuSim),
 * so the only shared state is the cursor and whatever the callback
 * itself locks.  Exceptions are not expected (the simulator reports
 * errors via scsim_fatal); std::terminate on escape is acceptable.
 */

#ifndef SCSIM_RUNNER_WORKER_POOL_HH
#define SCSIM_RUNNER_WORKER_POOL_HH

#include <cstddef>
#include <functional>
#include <vector>

namespace scsim::runner {

/** Worker-thread count for `jobs` requested (0 = hardware threads). */
int resolveJobs(int jobs);

/**
 * Run `fn(order[i])` for every i, distributing indices over
 * @p threads workers in the given order.  Returns when all are done.
 * With threads == 1 the calling thread runs everything itself, so a
 * single-threaded sweep has no scheduling noise at all.
 */
void runOrdered(const std::vector<std::size_t> &order, int threads,
                const std::function<void(std::size_t)> &fn);

} // namespace scsim::runner

#endif // SCSIM_RUNNER_WORKER_POOL_HH
