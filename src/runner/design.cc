#include "runner/design.hh"

#include <cstring>
#include <sstream>

#include "common/logging.hh"

namespace scsim::runner {

namespace {

DesignOverlay
overlay(std::optional<SchedulerPolicy> scheduler,
        std::optional<AssignPolicy> assign,
        std::optional<int> subCores = std::nullopt,
        std::optional<bool> bankStealing = std::nullopt,
        std::optional<int> cusPerSubcore = std::nullopt)
{
    return DesignOverlay{ scheduler, assign, subCores, bankStealing,
                          cusPerSubcore };
}

/** True when @p name appears in the space-separated @p aliases. */
bool
matchesAlias(const char *aliases, const std::string &name)
{
    const char *p = aliases;
    while (*p != '\0') {
        const char *end = std::strchr(p, ' ');
        std::size_t len = end ? static_cast<std::size_t>(end - p)
                              : std::strlen(p);
        if (name.size() == len && name.compare(0, len, p, len) == 0)
            return true;
        p += len + (end ? 1 : 0);
    }
    return false;
}

} // namespace

const std::vector<DesignInfo> &
designCatalog()
{
    static const std::vector<DesignInfo> table = {
        { Design::Baseline, "Baseline", "",
          "GTO + RR on the partitioned SM",
          overlay(std::nullopt, std::nullopt) },
        { Design::RBA, "RBA", "",
          "register-bank-aware warp scheduler",
          overlay(SchedulerPolicy::RBA, std::nullopt) },
        { Design::SRR, "SRR", "",
          "skewed-round-robin warp-to-subcore assignment",
          overlay(std::nullopt, AssignPolicy::SRR) },
        { Design::Shuffle, "Shuffle", "",
          "shuffled warp-to-subcore assignment",
          overlay(std::nullopt, AssignPolicy::Shuffle) },
        { Design::ShuffleRBA, "Shuffle+RBA", "ShuffleRBA",
          "shuffled assignment + RBA scheduler (the paper's proposal)",
          overlay(SchedulerPolicy::RBA, AssignPolicy::Shuffle) },
        { Design::FullyConnected, "Fully-Connected",
          "FullyConnected FC",
          "unpartitioned SM: one sub-core spans the register file",
          overlay(std::nullopt, std::nullopt, 1) },
        { Design::FullyConnectedRBA, "FC+RBA",
          "FullyConnectedRBA FCRBA",
          "unpartitioned SM + RBA scheduler",
          overlay(SchedulerPolicy::RBA, std::nullopt, 1) },
        { Design::BankStealing, "BankStealing", "",
          "operand collectors may steal idle remote bank ports",
          overlay(std::nullopt, std::nullopt, std::nullopt, true) },
        { Design::Cus4, "4 CUs", "Cus4",
          "4 collector units per sub-core",
          overlay(std::nullopt, std::nullopt, std::nullopt,
                  std::nullopt, 4) },
        { Design::Cus8, "8 CUs", "Cus8",
          "8 collector units per sub-core",
          overlay(std::nullopt, std::nullopt, std::nullopt,
                  std::nullopt, 8) },
        { Design::Cus16, "16 CUs", "Cus16",
          "16 collector units per sub-core",
          overlay(std::nullopt, std::nullopt, std::nullopt,
                  std::nullopt, 16) },
    };
    return table;
}

const char *
toString(Design d)
{
    for (const DesignInfo &info : designCatalog())
        if (info.id == d)
            return info.name;
    return "?";
}

Design
parseDesign(const std::string &name)
{
    for (const DesignInfo &info : designCatalog())
        if (name == info.name || matchesAlias(info.aliases, name))
            return info.id;
    std::ostringstream valid;
    const char *sep = "";
    for (const DesignInfo &info : designCatalog()) {
        valid << sep << info.name;
        sep = ", ";
    }
    scsim_throw(ConfigError, "unknown design '%s' (valid: %s)",
                name.c_str(), valid.str().c_str());
}

std::vector<Design>
allDesigns()
{
    std::vector<Design> out;
    out.reserve(designCatalog().size());
    for (const DesignInfo &info : designCatalog())
        out.push_back(info.id);
    return out;
}

GpuConfig
applyDesign(GpuConfig cfg, Design d)
{
    for (const DesignInfo &info : designCatalog()) {
        if (info.id != d)
            continue;
        const DesignOverlay &o = info.overlay;
        if (o.scheduler)
            cfg.scheduler = *o.scheduler;
        if (o.assign)
            cfg.assign = *o.assign;
        if (o.cusPerSubcore)
            cfg.collectorUnitsPerSm = *o.cusPerSubcore * cfg.subCores;
        if (o.subCores)
            cfg.subCores = *o.subCores;
        if (o.bankStealing)
            cfg.bankStealing = *o.bankStealing;
        return cfg;
    }
    scsim_panic("design %d missing from the catalogue",
                static_cast<int>(d));
}

GpuConfig
designConfig(GpuConfig base, const std::string &name)
{
    return applyDesign(std::move(base), parseDesign(name));
}

} // namespace scsim::runner
