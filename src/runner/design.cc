#include "runner/design.hh"

#include "common/logging.hh"

namespace scsim::runner {

const char *
toString(Design d)
{
    switch (d) {
      case Design::Baseline:          return "Baseline";
      case Design::RBA:               return "RBA";
      case Design::SRR:               return "SRR";
      case Design::Shuffle:           return "Shuffle";
      case Design::ShuffleRBA:        return "Shuffle+RBA";
      case Design::FullyConnected:    return "Fully-Connected";
      case Design::FullyConnectedRBA: return "FC+RBA";
      case Design::BankStealing:      return "BankStealing";
      case Design::Cus4:              return "4 CUs";
      case Design::Cus8:              return "8 CUs";
      case Design::Cus16:             return "16 CUs";
    }
    return "?";
}

Design
parseDesign(const std::string &name)
{
    for (Design d : allDesigns())
        if (name == toString(d))
            return d;
    // Identifier aliases usable on a command line (no '+', ' ', '-').
    if (name == "ShuffleRBA")        return Design::ShuffleRBA;
    if (name == "FullyConnected")    return Design::FullyConnected;
    if (name == "FC")                return Design::FullyConnected;
    if (name == "FullyConnectedRBA") return Design::FullyConnectedRBA;
    if (name == "FCRBA")             return Design::FullyConnectedRBA;
    if (name == "Cus4")              return Design::Cus4;
    if (name == "Cus8")              return Design::Cus8;
    if (name == "Cus16")             return Design::Cus16;
    scsim_fatal("unknown design '%s'", name.c_str());
}

std::vector<Design>
allDesigns()
{
    return { Design::Baseline, Design::RBA, Design::SRR,
             Design::Shuffle, Design::ShuffleRBA,
             Design::FullyConnected, Design::FullyConnectedRBA,
             Design::BankStealing, Design::Cus4, Design::Cus8,
             Design::Cus16 };
}

GpuConfig
applyDesign(GpuConfig cfg, Design d)
{
    switch (d) {
      case Design::Baseline:
        break;
      case Design::RBA:
        cfg.scheduler = SchedulerPolicy::RBA;
        break;
      case Design::SRR:
        cfg.assign = AssignPolicy::SRR;
        break;
      case Design::Shuffle:
        cfg.assign = AssignPolicy::Shuffle;
        break;
      case Design::ShuffleRBA:
        cfg.scheduler = SchedulerPolicy::RBA;
        cfg.assign = AssignPolicy::Shuffle;
        break;
      case Design::FullyConnected:
        cfg.subCores = 1;
        break;
      case Design::FullyConnectedRBA:
        cfg.subCores = 1;
        cfg.scheduler = SchedulerPolicy::RBA;
        break;
      case Design::BankStealing:
        cfg.bankStealing = true;
        break;
      case Design::Cus4:
        cfg.collectorUnitsPerSm = 4 * cfg.subCores;
        break;
      case Design::Cus8:
        cfg.collectorUnitsPerSm = 8 * cfg.subCores;
        break;
      case Design::Cus16:
        cfg.collectorUnitsPerSm = 16 * cfg.subCores;
        break;
    }
    return cfg;
}

} // namespace scsim::runner
