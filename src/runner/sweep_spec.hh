/**
 * @file
 * Sweep descriptions: what to simulate, not how.
 *
 * A SimJob is one independent simulation point — a configuration, a
 * synthetic workload spec, and a salt — identified by a caller-chosen
 * tag that keys its row in the merged results.  A SweepSpec is an
 * ordered set of jobs; SweepOptions say how to execute them (thread
 * count, cache directory, progress reporting).  All types are plain
 * data so figure harnesses can build sweeps declaratively.
 */

#ifndef SCSIM_RUNNER_SWEEP_SPEC_HH
#define SCSIM_RUNNER_SWEEP_SPEC_HH

#include <cstdio>
#include <string>
#include <vector>

#include "config/gpu_config.hh"
#include "workloads/suite.hh"

namespace scsim::runner {

/** One simulation point of a sweep. */
struct SimJob
{
    /** Unique key for this job's row in the merged results. */
    std::string tag;

    GpuConfig cfg;
    AppSpec app;

    /** Extra workload-synthesis seed salt (forwarded to buildApp). */
    std::uint64_t salt = 0;

    /** Run the app's kernels concurrently instead of back-to-back. */
    bool concurrent = false;

    /**
     * Relative wall-clock estimate used for longest-expected-job-first
     * ordering: dynamic warp instructions across the grid, scaled by
     * the divergence pattern's mean slot length.
     */
    double expectedCost() const;
};

/** An ordered set of jobs; tags must be unique across the sweep. */
struct SweepSpec
{
    std::vector<SimJob> jobs;

    /** Append a job; returns it for field tweaks. */
    SimJob &
    add(std::string tag, GpuConfig cfg, AppSpec app)
    {
        jobs.push_back(SimJob{ std::move(tag), std::move(cfg),
                               std::move(app), 0, false });
        return jobs.back();
    }
};

/** Execution knobs for a sweep. */
struct SweepOptions
{
    /** Worker threads; 0 = one per hardware thread. */
    int jobs = 0;

    /** On-disk result cache directory; empty = in-memory only. */
    std::string cacheDir;

    /**
     * Disk-footprint cap for the result cache; 0 = unbounded.  When
     * set, the cache trims itself back under the cap after every
     * store, least-recently-used entries first (see ResultCache).
     */
    std::uint64_t cacheMaxBytes = 0;

    /** Stream one line per completed job to @ref progressStream. */
    bool progress = false;

    /** Where progress lines go (never the manifest); default stderr. */
    std::FILE *progressStream = nullptr;

    /**
     * Stop claiming new jobs after the first failure.  In-flight jobs
     * finish; unclaimed jobs are reported as skipped.
     */
    bool failFast = false;

    /** Stop claiming new jobs after this many failures; 0 = no limit. */
    std::uint64_t maxFailures = 0;

    /**
     * Attempts per cache I/O operation before a transient CacheError
     * is given up on (the cache degrades to a miss / unsaved result,
     * never a failed job).  Backoff doubles between attempts.
     */
    int cacheAttempts = 3;

    /**
     * Run each job in its own `scsim_cli run-job` subprocess so a
     * crash (or injected fault) costs one job, not the sweep.
     */
    bool isolate = false;

    /**
     * Binary to spawn for isolated jobs; empty = the running
     * executable (/proc/self/exe).  Exists so tests can point the
     * engine at the CLI from a test binary.
     */
    std::string selfExe;

    /** Per-job wall-clock limit for isolated jobs; 0 = none. */
    double jobTimeoutSec = 0.0;

    /**
     * Spawn attempts per isolated job before its crash is final.
     * Retries cover flaky infrastructure (OOM kills, fork pressure);
     * a deterministic crash just fails this many times quickly.
     */
    int crashAttempts = 3;

    /**
     * Snapshot period (simulated cycles) for isolated workers; 0 =
     * checkpointing off.  A crashed/timed-out attempt then resumes
     * from its last snapshot instead of cycle 0.  Needs
     * @ref snapshotDir.
     */
    std::uint64_t checkpointCycles = 0;

    /** Directory for worker snapshot files (created if missing). */
    std::string snapshotDir;

    /**
     * Append every finished job to this journal (see runner/journal.hh)
     * so an interrupted sweep can resume.  Empty = no journal.
     */
    std::string journalPath;

    /**
     * Resume from this journal: jobs it holds are adopted instead of
     * re-run.  Usually the same file as @ref journalPath, which is
     * then rewritten complete (adopted records re-seeded, any damaged
     * tail scrubbed).  Empty = fresh sweep.
     */
    std::string resumePath;
};

} // namespace scsim::runner

#endif // SCSIM_RUNNER_SWEEP_SPEC_HH
