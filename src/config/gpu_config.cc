#include "config/gpu_config.hh"

#include <cstdlib>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>

#include "common/logging.hh"

namespace scsim {

const char *
toString(SchedulerPolicy p)
{
    switch (p) {
      case SchedulerPolicy::LRR: return "LRR";
      case SchedulerPolicy::GTO: return "GTO";
      case SchedulerPolicy::RBA: return "RBA";
    }
    return "?";
}

const char *
toString(AssignPolicy p)
{
    switch (p) {
      case AssignPolicy::RoundRobin:  return "RR";
      case AssignPolicy::SRR:         return "SRR";
      case AssignPolicy::Shuffle:     return "Shuffle";
      case AssignPolicy::HashSRR:     return "HashSRR";
      case AssignPolicy::HashShuffle: return "HashShuffle";
    }
    return "?";
}

void
GpuConfig::validate() const
{
    if (numSms < 1)
        scsim_throw(ConfigError, "numSms must be >= 1 (got %d)", numSms);
    if (subCores < 1)
        scsim_throw(ConfigError, "subCores must be >= 1 (got %d)", subCores);
    if (schedulersPerSm % subCores != 0)
        scsim_throw(ConfigError, "schedulersPerSm (%d) not divisible by subCores (%d)",
                    schedulersPerSm, subCores);
    if (rfBanksPerSm % subCores != 0)
        scsim_throw(ConfigError, "rfBanksPerSm (%d) not divisible by subCores (%d)",
                    rfBanksPerSm, subCores);
    if (collectorUnitsPerSm % subCores != 0)
        scsim_throw(ConfigError, "collectorUnitsPerSm (%d) not divisible by "
                    "subCores (%d)", collectorUnitsPerSm, subCores);
    if (banksPerCluster() < 1)
        scsim_throw(ConfigError, "need at least one register bank per sub-core");
    if (cusPerCluster() < 1)
        scsim_throw(ConfigError, "need at least one collector unit per sub-core");
    if (sharedWarpPool && subCores != 1)
        scsim_throw(ConfigError, "sharedWarpPool requires a monolithic SM");
    if (maxWarpsPerScheduler * schedulersPerSm < maxWarpsPerSm)
        scsim_throw(ConfigError, "scheduler tables (%d x %d) cannot hold "
                    "maxWarpsPerSm (%d)", schedulersPerSm,
                    maxWarpsPerScheduler, maxWarpsPerSm);
    if (hashTableEntries != 4 && hashTableEntries != 16)
        scsim_throw(ConfigError, "hashTableEntries must be 4 or 16 (got %d)",
                    hashTableEntries);
    if (rbaScoreLatency < 0 || rbaScoreLatency > 64)
        scsim_throw(ConfigError, "rbaScoreLatency out of range [0,64]: %d",
                    rbaScoreLatency);
    if (l1LineBytes <= 0 || (l1LineBytes & (l1LineBytes - 1)) != 0)
        scsim_throw(ConfigError, "l1LineBytes must be a power of two");
}

namespace {

template <typename T>
T
parseNumber(const std::string &key, const std::string &value)
{
    std::istringstream iss(value);
    T out{};
    iss >> out;
    if (iss.fail() || !iss.eof())
        scsim_throw(ConfigError, "cannot parse value '%s' for key '%s'",
                    value.c_str(), key.c_str());
    return out;
}

bool
parseBool(const std::string &key, const std::string &value)
{
    if (value == "1" || value == "true" || value == "on")
        return true;
    if (value == "0" || value == "false" || value == "off")
        return false;
    scsim_throw(ConfigError, "cannot parse bool '%s' for key '%s'",
                value.c_str(), key.c_str());
}

SchedulerPolicy
parseScheduler(const std::string &value)
{
    if (value == "LRR") return SchedulerPolicy::LRR;
    if (value == "GTO") return SchedulerPolicy::GTO;
    if (value == "RBA") return SchedulerPolicy::RBA;
    scsim_throw(ConfigError, "unknown scheduler policy '%s'", value.c_str());
}

AssignPolicy
parseAssign(const std::string &value)
{
    if (value == "RR")          return AssignPolicy::RoundRobin;
    if (value == "SRR")         return AssignPolicy::SRR;
    if (value == "Shuffle")     return AssignPolicy::Shuffle;
    if (value == "HashSRR")     return AssignPolicy::HashSRR;
    if (value == "HashShuffle") return AssignPolicy::HashShuffle;
    scsim_throw(ConfigError, "unknown assignment policy '%s'", value.c_str());
}

} // namespace

void
GpuConfig::set(const std::string &key, const std::string &value)
{
    using Setter = std::function<void(GpuConfig &, const std::string &)>;
    #define SCSIM_NUM(field) \
        { #field, [](GpuConfig &c, const std::string &v) { \
              c.field = parseNumber<decltype(c.field)>(#field, v); } }
    #define SCSIM_BOOL(field) \
        { #field, [](GpuConfig &c, const std::string &v) { \
              c.field = parseBool(#field, v); } }
    static const std::map<std::string, Setter> setters = {
        SCSIM_NUM(numSms), SCSIM_NUM(schedulersPerSm), SCSIM_NUM(subCores),
        SCSIM_NUM(rfBanksPerSm), SCSIM_NUM(collectorUnitsPerSm),
        SCSIM_NUM(maxWarpsPerSm), SCSIM_NUM(maxWarpsPerScheduler),
        SCSIM_NUM(maxBlocksPerSm), SCSIM_NUM(regFileBytesPerSm),
        SCSIM_NUM(smemBytesPerSm), SCSIM_NUM(hashTableEntries),
        SCSIM_NUM(rbaScoreLatency),
        SCSIM_NUM(issueWidthPerScheduler),
        SCSIM_NUM(spPipesPerScheduler), SCSIM_NUM(spInitiation),
        SCSIM_NUM(spLatency), SCSIM_NUM(sfuPipesPerScheduler),
        SCSIM_NUM(sfuInitiation), SCSIM_NUM(sfuLatency),
        SCSIM_NUM(tensorPipesPerScheduler), SCSIM_NUM(tensorInitiation),
        SCSIM_NUM(tensorLatency), SCSIM_NUM(ldstPipesPerScheduler),
        SCSIM_NUM(ldstInitiation),
        SCSIM_NUM(l1Bytes), SCSIM_NUM(l1Ways), SCSIM_NUM(l1LineBytes),
        SCSIM_NUM(l1HitLatency), SCSIM_NUM(l1PortsPerSm),
        SCSIM_NUM(l2Bytes), SCSIM_NUM(l2Ways), SCSIM_NUM(l2HitLatency),
        SCSIM_NUM(dramLatency), SCSIM_NUM(l2SectorsPerCyclePerSm),
        SCSIM_NUM(dramSectorsPerCyclePerSm), SCSIM_NUM(smemLatency),
        SCSIM_NUM(maxCycles), SCSIM_NUM(hangWindowCycles),
        SCSIM_NUM(seed), SCSIM_NUM(rfTraceWindow),
        SCSIM_BOOL(bankStealing), SCSIM_BOOL(enableIdleSkip),
        SCSIM_BOOL(sharedWarpPool), SCSIM_BOOL(idealWarpMigration),
        SCSIM_BOOL(rfTraceEnable),
        { "scheduler", [](GpuConfig &c, const std::string &v) {
              c.scheduler = parseScheduler(v); } },
        { "assign", [](GpuConfig &c, const std::string &v) {
              c.assign = parseAssign(v); } },
    };
    #undef SCSIM_NUM
    #undef SCSIM_BOOL

    auto it = setters.find(key);
    if (it == setters.end())
        scsim_throw(ConfigError, "unknown configuration key '%s'", key.c_str());
    it->second(*this, value);
}

void
GpuConfig::loadFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        scsim_throw(ConfigError, "cannot open config file '%s'", path.c_str());
    std::string line;
    int lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        // trim
        auto first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos)
            continue;
        auto last = line.find_last_not_of(" \t\r");
        line = line.substr(first, last - first + 1);
        auto eq = line.find('=');
        if (eq == std::string::npos)
            scsim_throw(ConfigError, "%s:%d: expected key=value", path.c_str(), lineNo);
        auto strip = [](std::string s) {
            auto b = s.find_first_not_of(" \t");
            auto e = s.find_last_not_of(" \t");
            return b == std::string::npos ? std::string()
                                          : s.substr(b, e - b + 1);
        };
        set(strip(line.substr(0, eq)), strip(line.substr(eq + 1)));
    }
}

GpuConfig
GpuConfig::volta()
{
    return GpuConfig{};
}

GpuConfig
GpuConfig::voltaFullyConnected()
{
    GpuConfig c;
    c.subCores = 1;
    return c;
}

GpuConfig
GpuConfig::keplerLike()
{
    GpuConfig c;
    c.subCores = 1;
    // Pre-partitioned architectures kept four-plus banks per
    // scheduler (Sec. III-A) over a 256 KB register file, fully
    // shared, with a correspondingly larger operand collector.
    c.rfBanksPerSm = 32;
    c.collectorUnitsPerSm = 16;
    c.regFileBytesPerSm = 256 * 1024;
    // SMX: 192 FP32 lanes shared by 4 schedulers -> 6 full-width pipes.
    c.spPipesPerScheduler = 1;   // x4 schedulers in the single cluster
    c.spInitiation = 1;          // 32-wide units
    c.spLatency = 9;
    c.issueWidthPerScheduler = 2;   // Kepler dual-issue
    c.sharedWarpPool = true;
    c.numSms = 8;
    return c;
}

GpuConfig
GpuConfig::a100Like()
{
    GpuConfig c;
    c.numSms = 108;
    c.l2Bytes = 40 * 1024 * 1024;
    c.l2Ways = 40;
    return c;
}

} // namespace scsim
