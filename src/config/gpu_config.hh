/**
 * @file
 * Simulator configuration: the Table II parameter set plus the design
 * knobs studied in the paper (scheduler choice, sub-core count,
 * collector-unit scaling, assignment hashing, RBA score staleness).
 *
 * The SM is modeled as a set of identical *issue clusters*; a cluster
 * owns schedulers, register-file banks, collector units and execution
 * pipes.  A partitioned Volta SM is 4 clusters of {1 scheduler, 2
 * banks, 2 CUs}; the hypothetical fully-connected SM is 1 cluster of
 * {4 schedulers, 8 banks, 8 CUs} — identical totals, shared freely.
 */

#ifndef SCSIM_CONFIG_GPU_CONFIG_HH
#define SCSIM_CONFIG_GPU_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace scsim {

/** Warp issue scheduling policy (Section IV-A). */
enum class SchedulerPolicy
{
    LRR,        //!< loose round robin
    GTO,        //!< greedy-then-oldest (paper baseline)
    RBA,        //!< register-bank-aware: min {score, ~age}
};

/** Warp -> sub-core assignment policy (Section IV-B). */
enum class AssignPolicy
{
    RoundRobin, //!< hardware baseline
    SRR,        //!< skewed round robin, eq. (1)
    Shuffle,    //!< random, per-sub-core counts within +/-1
    HashSRR,    //!< SRR realized through the Fig 7 hash-table engine
    HashShuffle,//!< random permutations programmed into the hash table
};

const char *toString(SchedulerPolicy p);
const char *toString(AssignPolicy p);

/** Full simulator configuration.  Defaults reproduce Table II. */
struct GpuConfig
{
    // ---- chip topology ----------------------------------------------
    int numSms = 80;
    int schedulersPerSm = 4;
    /** Issue clusters per SM; 1 == fully-connected / monolithic. */
    int subCores = 4;

    // ---- per-SM issue resources (divided among clusters) ------------
    int rfBanksPerSm = 8;          //!< 2 per sub-core in Volta
    int collectorUnitsPerSm = 8;   //!< 2 per sub-core in Volta
    int maxWarpsPerSm = 64;
    int maxWarpsPerScheduler = 16;
    int maxBlocksPerSm = 32;
    std::uint32_t regFileBytesPerSm = 4 * 64 * 1024;
    std::uint32_t smemBytesPerSm = 96 * 1024;

    // ---- scheduling policies ----------------------------------------
    SchedulerPolicy scheduler = SchedulerPolicy::GTO;
    AssignPolicy assign = AssignPolicy::RoundRobin;
    /** Entries in the Fig 7 hash-function table (4 or 16). */
    int hashTableEntries = 4;
    /** Staleness of bank-queue lengths seen by RBA, in cycles. */
    int rbaScoreLatency = 0;
    /** Enable the bank-stealing comparison model [36]. */
    bool bankStealing = false;
    /** Idealized warp-migration oracle (Sec. VII): a sub-core with no
     *  runnable warp may steal one from a loaded sibling at zero cost
     *  (register state teleports).  An upper bound on what any
     *  work-stealing hardware could achieve — not a real design. */
    bool idealWarpMigration = false;

    // ---- execution pipes (per scheduler's share) ---------------------
    /** Warp instructions one scheduler may issue per cycle (Kepler: 2). */
    int issueWidthPerScheduler = 1;
    /** Monolithic (pre-Maxwell) SMs issue from one shared warp pool:
     *  every scheduler slot may pick any ready warp in the cluster. */
    bool sharedWarpPool = false;
    int spPipesPerScheduler = 1;
    int spInitiation = 2;          //!< 16-wide FP32 -> 2 cycles / warp
    int spLatency = 4;
    int sfuPipesPerScheduler = 1;
    int sfuInitiation = 8;
    int sfuLatency = 20;
    int tensorPipesPerScheduler = 1;
    int tensorInitiation = 4;
    int tensorLatency = 16;
    int ldstPipesPerScheduler = 1;
    int ldstInitiation = 1;

    // ---- memory system ------------------------------------------------
    std::uint32_t l1Bytes = 128 * 1024;
    int l1Ways = 8;
    int l1LineBytes = 128;
    int l1HitLatency = 28;
    int l1PortsPerSm = 4;          //!< LDST accesses accepted / cycle
    std::uint32_t l2Bytes = 6 * 1024 * 1024;
    int l2Ways = 24;
    int l2HitLatency = 190;
    int dramLatency = 330;
    /** Sectors (32B) of L2 bandwidth per cycle, per SM (autoscales). */
    double l2SectorsPerCyclePerSm = 0.70;
    /** Sectors (32B) of DRAM bandwidth per cycle, per SM. */
    double dramSectorsPerCyclePerSm = 0.25;
    int smemLatency = 24;

    // ---- simulation control -------------------------------------------
    /** Cycle budget; exceeding it throws HangError.  0 = unlimited. */
    std::uint64_t maxCycles = 200'000'000;
    /**
     * Forward-progress watchdog: if the simulation retires nothing
     * (no issue, no writeback, no warp/block completion) for this
     * many consecutive cycles, it is declared hung and HangError is
     * thrown with a machine-state diagnostic.  0 = disabled.  The
     * default is far beyond any legitimate stall (the longest
     * memory round-trip is ~10^3 cycles).
     */
    std::uint64_t hangWindowCycles = 1'000'000;
    bool enableIdleSkip = true;
    std::uint64_t seed = 1;
    bool rfTraceEnable = false;    //!< collect the Fig 14 time series
    Cycle rfTraceWindow = 512;

    // ---- derived helpers ----------------------------------------------
    int clusterCount() const { return subCores; }
    int schedulersPerCluster() const { return schedulersPerSm / subCores; }
    int banksPerCluster() const { return rfBanksPerSm / subCores; }
    int cusPerCluster() const { return collectorUnitsPerSm / subCores; }
    std::uint32_t
    regFileBytesPerCluster() const
    {
        return regFileBytesPerSm / static_cast<std::uint32_t>(subCores);
    }

    /** Throws ConfigError on an inconsistent configuration. */
    void validate() const;

    /**
     * Apply one "key=value" override; throws ConfigError on unknown
     * key or unparsable value.  Keys use the field names above.
     */
    void set(const std::string &key, const std::string &value);

    /** Parse a whole file of '#'-commented key=value lines. */
    void loadFile(const std::string &path);

    // ---- presets --------------------------------------------------------
    /** Table II Volta V100: 4 sub-cores, 2 banks + 2 CUs each, GTO+RR. */
    static GpuConfig volta();
    /** Same totals as volta() but one fully-connected cluster. */
    static GpuConfig voltaFullyConnected();
    /** Kepler-like monolithic SMX: shared pipes, deeper FMA latency. */
    static GpuConfig keplerLike();
    /** Ampere A100-like: Volta sub-core layout, 108 SMs. */
    static GpuConfig a100Like();
};

} // namespace scsim

#endif // SCSIM_CONFIG_GPU_CONFIG_HH
