/**
 * @file
 * Issue cluster: the unit of SM partitioning.
 *
 * A cluster owns warp schedulers, a banked register file with its
 * arbiter, an operand collector, and execution pipes.  A partitioned
 * Volta SM instantiates four clusters of {1 scheduler, 2 banks, 2
 * CUs}; the hypothetical fully-connected SM instantiates one cluster
 * holding all four schedulers and the pooled banks/CUs/pipes.
 *
 * Per-cycle sequence (driven by SmCore): dispatch ready collector
 * units to pipes -> arbitrate register banks -> issue from each
 * scheduler -> snapshot bank-queue lengths for the RBA staleness
 * model.
 */

#ifndef SCSIM_CORE_ISSUE_CLUSTER_HH
#define SCSIM_CORE_ISSUE_CLUSTER_HH

#include <memory>
#include <vector>

#include "config/gpu_config.hh"
#include "core/exec_unit.hh"
#include "core/operand_collector.hh"
#include "core/reg_file.hh"
#include "core/scheduler.hh"

namespace scsim {

class SmCore;
class StateReader;
class StateWriter;

class IssueCluster
{
  public:
    IssueCluster(const GpuConfig &cfg, int clusterId);

    int id() const { return id_; }
    int numSchedulers() const { return static_cast<int>(scheds_.size()); }

    RegFileArbiter &arbiter() { return arbiter_; }
    const RegFileArbiter &arbiter() const { return arbiter_; }
    OperandCollector &collector() { return collector_; }
    const OperandCollector &collector() const { return collector_; }

    /** Warps currently bound to scheduler @p sched of this cluster. */
    const std::vector<WarpSlot> &
    warpsOf(int sched) const
    {
        return schedWarps_[static_cast<std::size_t>(sched)];
    }

    int warpCount(int sched) const;
    int totalWarpCount() const;

    /** Bind a warp to a scheduler table; returns its age rank.
     *  @p unchecked bypasses the table-capacity assert (used only by
     *  the ideal-migration oracle, which treats scheduler entries as
     *  free bookkeeping). */
    std::uint32_t addWarp(int sched, WarpSlot slot,
                          bool unchecked = false);

    /** Unbind (block completed). */
    void removeWarp(int sched, WarpSlot slot);

    /**
     * Advance one cycle.  @p sm provides warp state and callbacks.
     * @return true when the cluster did or could still do work this
     * cycle (issued, has queued bank requests, or holds busy CUs) —
     * used by the idle-skip logic.
     */
    bool cycle(Cycle now, SmCore &sm);

    /** Idle cycles were skipped; queue history collapses to empty. */
    void onIdleSkip();

    /** Anything in flight or issuable right now? */
    bool hasImmediateWork(const SmCore &sm) const;

    void reset();

    /** Checkpointing: tables, arbiter/collector/pipes, queue ring. */
    void saveState(StateWriter &w) const;
    void loadState(StateReader &r);

  private:
    void dispatch(Cycle now, SmCore &sm);
    void applyGrants(Cycle now, SmCore &sm);
    int issue(Cycle now, SmCore &sm);   //!< returns instructions issued
    void snapshotQueues();

    /** Ready-to-issue test for one warp's next instruction. */
    bool candidateReady(const WarpContext &warp) const;

    /**
     * candidateReady with the collector-free test hoisted out: within
     * one candidate scan no CU is allocated, so callers evaluate
     * collector_.hasFree() once instead of per warp.
     */
    bool candidateReadyWith(const WarpContext &warp, bool cuFree) const;

    /** Queue lengths as seen by the scheduler (staleness applied). */
    const int *staleQueueView() const;

    void issueTo(Cycle now, SmCore &sm, int sched, WarpSlot slot);

    const GpuConfig &cfg_;
    int id_;
    RegFileArbiter arbiter_;
    OperandCollector collector_;
    PipeSet pipes_;
    std::vector<std::unique_ptr<WarpScheduler>> scheds_;
    std::vector<std::vector<WarpSlot>> schedWarps_;
    std::vector<std::uint32_t> ageCounter_;

    /**
     * Ring of bank-queue-length snapshots, newest row at head_.  Flat
     * row-major storage (ringDepth_ rows of numBanks_ ints) so the
     * per-cycle snapshot write and the stale view read touch one
     * contiguous allocation instead of chasing per-row vectors.
     */
    std::vector<int> qlenRing_;
    std::size_t ringDepth_ = 1;
    std::size_t numBanks_ = 0;
    std::size_t head_ = 0;

    ArbGrants grants_;
    std::vector<WarpSlot> candidates_;   //!< scratch, reused per cycle
};

} // namespace scsim

#endif // SCSIM_CORE_ISSUE_CLUSTER_HH
