#include "core/reg_file.hh"

#include "common/logging.hh"

namespace scsim {

RegFileArbiter::RegFileArbiter(int numBanks)
    : numBanks_(numBanks),
      readQ_(static_cast<std::size_t>(numBanks)),
      writeQ_(static_cast<std::size_t>(numBanks))
{
    scsim_assert(numBanks > 0, "register file needs at least one bank");
}

void
RegFileArbiter::pushRead(int bank, ReadRequest req)
{
    readQ_[static_cast<std::size_t>(bank)].push_back(req);
    ++pendingOps_;
}

void
RegFileArbiter::pushWrite(int bank, WriteRequest req)
{
    writeQ_[static_cast<std::size_t>(bank)].push_back(req);
    ++pendingOps_;
}

void
RegFileArbiter::arbitrate(ArbGrants &out)
{
    for (int b = 0; b < numBanks_; ++b) {
        auto &wq = writeQ_[static_cast<std::size_t>(b)];
        auto &rq = readQ_[static_cast<std::size_t>(b)];
        // Each bank sustains one read and one write per cycle
        // (separate result-bus write port, as in the V100 model).
        if (!wq.empty()) {
            out.writes.push_back(wq.front());
            wq.pop_front();
            --pendingOps_;
        }
        if (!rq.empty()) {
            out.reads.push_back(rq.front());
            rq.pop_front();
            --pendingOps_;
        }
        // A reader still waiting after this bank's single read grant
        // is a bank-conflict cycle (throughput lost to banking).
        if (!rq.empty())
            ++out.conflictCycles;
    }
}

void
RegFileArbiter::reset()
{
    for (auto &q : readQ_)
        q.clear();
    for (auto &q : writeQ_)
        q.clear();
    pendingOps_ = 0;
}

} // namespace scsim
