#include "core/reg_file.hh"

#include "common/logging.hh"
#include "common/state_io.hh"

namespace scsim {

RegFileArbiter::RegFileArbiter(int numBanks)
    : numBanks_(numBanks),
      readQ_(static_cast<std::size_t>(numBanks)),
      writeQ_(static_cast<std::size_t>(numBanks))
{
    scsim_assert(numBanks > 0, "register file needs at least one bank");
}

void
RegFileArbiter::pushRead(int bank, ReadRequest req)
{
    readQ_[static_cast<std::size_t>(bank)].push_back(req);
    ++pendingOps_;
}

void
RegFileArbiter::pushWrite(int bank, WriteRequest req)
{
    writeQ_[static_cast<std::size_t>(bank)].push_back(req);
    ++pendingOps_;
}

void
RegFileArbiter::arbitrate(ArbGrants &out)
{
    for (int b = 0; b < numBanks_; ++b) {
        auto &wq = writeQ_[static_cast<std::size_t>(b)];
        auto &rq = readQ_[static_cast<std::size_t>(b)];
        // Each bank sustains one read and one write per cycle
        // (separate result-bus write port, as in the V100 model).
        if (!wq.empty()) {
            out.writes.push_back(wq.front());
            wq.pop_front();
            --pendingOps_;
        }
        if (!rq.empty()) {
            out.reads.push_back(rq.front());
            rq.pop_front();
            --pendingOps_;
        }
        // A reader still waiting after this bank's single read grant
        // is a bank-conflict cycle (throughput lost to banking).
        if (!rq.empty())
            ++out.conflictCycles;
    }
}

void
RegFileArbiter::reset()
{
    for (auto &q : readQ_)
        q.clear();
    for (auto &q : writeQ_)
        q.clear();
    pendingOps_ = 0;
}

void
RegFileArbiter::saveState(StateWriter &w) const
{
    for (const auto &q : readQ_) {
        w.u64("rf.readq", q.size());
        for (const ReadRequest &req : q) {
            w.i64("rf.read.cu", req.cu);
            w.u64("rf.read.mask", req.operandMask);
        }
    }
    for (const auto &q : writeQ_) {
        w.u64("rf.writeq", q.size());
        for (const WriteRequest &req : q) {
            w.i64("rf.write.warp", req.warp);
            w.i64("rf.write.reg", req.reg);
        }
    }
    w.u64("rf.pendingOps", pendingOps_);
}

void
RegFileArbiter::loadState(StateReader &r)
{
    for (auto &q : readQ_) {
        q.clear();
        std::uint64_t n = r.u64("rf.readq");
        for (std::uint64_t i = 0; i < n; ++i) {
            ReadRequest req;
            req.cu = static_cast<int>(r.i64("rf.read.cu"));
            req.operandMask =
                static_cast<std::uint32_t>(r.u64("rf.read.mask"));
            q.push_back(req);
        }
    }
    for (auto &q : writeQ_) {
        q.clear();
        std::uint64_t n = r.u64("rf.writeq");
        for (std::uint64_t i = 0; i < n; ++i) {
            WriteRequest req;
            req.warp = static_cast<WarpSlot>(r.i64("rf.write.warp"));
            req.reg = static_cast<RegIndex>(r.i64("rf.write.reg"));
            q.push_back(req);
        }
    }
    pendingOps_ = r.u64("rf.pendingOps");
}

} // namespace scsim
