#include "core/issue_cluster.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/state_io.hh"
#include "core/sm_core.hh"

namespace scsim {

IssueCluster::IssueCluster(const GpuConfig &cfg, int clusterId)
    : cfg_(cfg),
      id_(clusterId),
      arbiter_(cfg.banksPerCluster()),
      collector_(cfg.cusPerCluster()),
      pipes_(cfg, cfg.schedulersPerCluster())
{
    int nsched = cfg.schedulersPerCluster();
    for (int s = 0; s < nsched; ++s)
        scheds_.push_back(makeScheduler(cfg));
    schedWarps_.resize(static_cast<std::size_t>(nsched));
    ageCounter_.assign(static_cast<std::size_t>(nsched), 0);

    ringDepth_ = static_cast<std::size_t>(cfg.rbaScoreLatency) + 1;
    numBanks_ = static_cast<std::size_t>(cfg.banksPerCluster());
    qlenRing_.assign(ringDepth_ * numBanks_, 0);

    // Worst-case candidate count: every warp of every scheduler table
    // (the shared-pool path scans them all); reserving it up front
    // keeps the per-cycle scratch list allocation-free.
    candidates_.reserve(static_cast<std::size_t>(nsched)
                        * static_cast<std::size_t>(
                              cfg.maxWarpsPerScheduler));
}

int
IssueCluster::warpCount(int sched) const
{
    return static_cast<int>(
        schedWarps_[static_cast<std::size_t>(sched)].size());
}

int
IssueCluster::totalWarpCount() const
{
    int n = 0;
    for (const auto &list : schedWarps_)
        n += static_cast<int>(list.size());
    return n;
}

std::uint32_t
IssueCluster::addWarp(int sched, WarpSlot slot, bool unchecked)
{
    auto idx = static_cast<std::size_t>(sched);
    scsim_assert(unchecked
                     || static_cast<int>(schedWarps_[idx].size())
                            < cfg_.maxWarpsPerScheduler,
                 "scheduler table overflow");
    schedWarps_[idx].push_back(slot);
    return ageCounter_[idx]++;
}

void
IssueCluster::removeWarp(int sched, WarpSlot slot)
{
    auto &list = schedWarps_[static_cast<std::size_t>(sched)];
    auto it = std::find(list.begin(), list.end(), slot);
    scsim_assert(it != list.end(), "removing unbound warp");
    list.erase(it);
}

bool
IssueCluster::cycle(Cycle now, SmCore &sm)
{
    // Dispatch first (CUs filled by last cycle's grants), then issue
    // into the freed CUs; newly pushed reads may be granted in the
    // same cycle, giving a 2-cycle best-case collector turnaround.
    dispatch(now, sm);
    int issued = issue(now, sm);
    applyGrants(now, sm);
    snapshotQueues();
    // Grants landing after the issue phase ready warps (writes) or
    // CUs (reads) for the *next* cycle, so they count as work even
    // when nothing issued this cycle.
    if (issued > 0 || arbiter_.anyPending() || !grants_.writes.empty()
        || !grants_.reads.empty())
        return true;
    for (int i = 0; i < collector_.size(); ++i)
        if (collector_.unit(i).busy)
            return true;
    return false;
}

void
IssueCluster::dispatch(Cycle now, SmCore &sm)
{
    WarpContext *warps = sm.warpTable();
    int n = collector_.size();
    // Rotate the scan start so no CU is structurally favored.
    int start = static_cast<int>(now % static_cast<Cycle>(n));
    for (int k = 0; k < n; ++k) {
        int idx = (start + k) % n;
        const CollectorUnit &cu = collector_.unit(idx);
        if (!cu.ready())
            continue;
        UnitKind kind = unitOf(cu.inst.op);
        bool isGlobalMem = kind == UnitKind::LdSt
            && cu.inst.mem.space == MemSpace::Global;
        ExecPipe *pipe = pipes_.findFree(kind, now);
        if (!pipe) {
            ++sm.stats().execStructuralStalls;
            continue;
        }
        if (isGlobalMem && !sm.tryConsumeL1Port()) {
            ++sm.stats().execStructuralStalls;
            continue;
        }
        pipe->accept(now);
        sm.stats().cuTurnaroundSum += now + 1 - cu.allocCycle;
        ++sm.stats().cuDispatches;
        WarpContext &warp = warps[cu.warp];
        if (kind == UnitKind::LdSt) {
            Cycle done = sm.issueMemory(warp, cu.inst, now);
            if (isLoad(cu.inst.op))
                sm.scheduleRegWrite(done, cu.warp, cu.inst.dst);
        } else if (cu.inst.dst != kNoReg) {
            sm.scheduleRegWrite(now + static_cast<Cycle>(pipe->latency()),
                                cu.warp, cu.inst.dst);
        }
        collector_.release(idx);
    }
}

void
IssueCluster::applyGrants(Cycle now, SmCore &sm)
{
    grants_.clear();
    arbiter_.arbitrate(grants_);
    for (const ReadRequest &grant : grants_.reads)
        collector_.operandArrived(grant.cu, grant.operandMask);
    for (const WriteRequest &grant : grants_.writes)
        sm.completeRegWrite(grant.warp, grant.reg);

    SimStats &stats = sm.stats();
    stats.rfReads += static_cast<std::uint64_t>(grants_.reads.size())
        * kWarpSize;
    stats.rfWrites += static_cast<std::uint64_t>(grants_.writes.size())
        * kWarpSize;
    stats.rfBankConflictCycles +=
        static_cast<std::uint64_t>(grants_.conflictCycles);
    if (!grants_.reads.empty())
        sm.noteRfReads(now, static_cast<int>(grants_.reads.size()));
}

bool
IssueCluster::candidateReady(const WarpContext &warp) const
{
    return candidateReadyWith(warp, collector_.hasFree());
}

bool
IssueCluster::candidateReadyWith(const WarpContext &warp,
                                 bool cuFree) const
{
    if (!warp.schedulable())
        return false;
    const Instruction &inst = warp.nextInst();
    if (inst.op == Opcode::EXIT || inst.op == Opcode::BAR) {
        // Drain in-flight writes before leaving the pipeline.
        return !warp.scoreboard.anyPending();
    }
    if (!warp.scoreboard.ready(inst))
        return false;
    if (inst.usesCollector() && !cuFree)
        return false;
    return true;
}

const int *
IssueCluster::staleQueueView() const
{
    // head_ holds the snapshot taken at the *start* of this issue
    // phase (latency 0); older snapshots sit behind it.
    std::size_t lag = static_cast<std::size_t>(cfg_.rbaScoreLatency);
    std::size_t idx = (head_ + ringDepth_ - lag % ringDepth_)
        % ringDepth_;
    return qlenRing_.data() + idx * numBanks_;
}

int
IssueCluster::issue(Cycle now, SmCore &sm)
{
    int issued = 0;
    // Record the live queue lengths as this cycle's snapshot, then let
    // schedulers see the view rbaScoreLatency cycles behind it.
    int *snap = qlenRing_.data() + head_ * numBanks_;
    for (int b = 0; b < arbiter_.numBanks(); ++b)
        snap[b] = arbiter_.readQueueLen(b);

    WarpContext *warps = sm.warpTable();
    PickContext ctx;
    ctx.now = now;
    ctx.warps = warps;
    ctx.bankQueueLen = staleQueueView();
    ctx.numBanks = arbiter_.numBanks();

    int nsched = numSchedulers();
    if (cfg_.sharedWarpPool) {
        // Monolithic (pre-Maxwell) issue: every scheduler slot may
        // pick any ready warp in the cluster; a warp may issue more
        // than once per cycle (dual issue of independent instructions
        // from one warp).
        auto &policy = *scheds_[0];
        sm.stats().schedCycles += static_cast<std::uint64_t>(nsched);
        int slots = nsched * cfg_.issueWidthPerScheduler;
        for (int k = 0; k < slots; ++k) {
            candidates_.clear();
            // No CU is allocated during the scan itself, so the
            // collector-free test is loop-invariant.
            const bool cuFree = collector_.hasFree();
            for (const auto &list : schedWarps_)
                for (WarpSlot slot : list) {
                    WarpContext &w = warps[slot];
                    if (!w.sbBlocked && candidateReadyWith(w, cuFree))
                        candidates_.push_back(slot);
                }
            if (candidates_.empty())
                break;
            WarpSlot chosen = policy.pick(candidates_, ctx);
            issueTo(now, sm, warps[chosen].schedInCluster, chosen);
            policy.notifyIssued(chosen, now);
            ++issued;
            ++sm.stats().issueSlotsUsed;
        }
        head_ = (head_ + 1) % ringDepth_;
        return issued;
    }
    int start = static_cast<int>(now % static_cast<Cycle>(nsched));
    for (int k = 0; k < nsched; ++k) {
        int s = (start + k) % nsched;
        auto &policy = *scheds_[static_cast<std::size_t>(s)];
        ++sm.stats().schedCycles;
        for (int slotIssue = 0; slotIssue < cfg_.issueWidthPerScheduler;
             ++slotIssue) {
            candidates_.clear();
            bool sawHazard = false, sawNoCu = false, sawWarp = false;
            // Loop-invariant: issue happens after the scan, so CU
            // availability cannot change while collecting candidates.
            const bool cuFree = collector_.hasFree();
            for (WarpSlot slot
                 : schedWarps_[static_cast<std::size_t>(s)]) {
                WarpContext &w = warps[slot];
                if (w.sbBlocked || !w.schedulable()) {
                    sawWarp = sawWarp || w.sbBlocked;
                    continue;
                }
                sawWarp = true;
                const Instruction &inst = w.nextInst();
                bool drainOp = inst.op == Opcode::EXIT
                    || inst.op == Opcode::BAR;
                if (drainOp ? w.scoreboard.anyPending()
                            : !w.scoreboard.ready(inst)) {
                    w.sbBlocked = true;
                    sawHazard = true;
                    continue;
                }
                if (!drainOp && inst.usesCollector() && !cuFree) {
                    sawNoCu = true;
                    continue;
                }
                candidates_.push_back(slot);
            }
            if (candidates_.empty()) {
                if (slotIssue == 0) {
                    if (sawNoCu) {
                        ++sm.stats().stallNoCu;
                        ++sm.stats().collectorFullStalls;
                    } else if (sawHazard) {
                        ++sm.stats().stallScoreboard;
                    } else if (!sawWarp) {
                        ++sm.stats().stallNoWarp;
                    } else {
                        ++sm.stats().stallScoreboard;
                    }
                }
                break;
            }
            ++sm.stats().issueSlotsUsed;
            WarpSlot chosen = policy.pick(candidates_, ctx);
            issueTo(now, sm, s, chosen);
            policy.notifyIssued(chosen, now);
            ++issued;
        }
        if (cfg_.bankStealing) {
            // Bank stealing [36]: opportunistically place one extra
            // instruction whose source banks are all idle into a free
            // CU, ahead of normal issue order.
            candidates_.clear();
            const bool cuFree = collector_.hasFree();
            for (WarpSlot slot : schedWarps_[static_cast<std::size_t>(s)]) {
                const WarpContext &w = warps[slot];
                if (!candidateReadyWith(w, cuFree))
                    continue;
                const Instruction &inst = w.nextInst();
                if (!inst.usesCollector())
                    continue;
                if (cuFree
                    && collector_.banksIdle(slot, inst, arbiter_)) {
                    candidates_.push_back(slot);
                }
            }
            if (!candidates_.empty()) {
                // Oldest eligible warp steals the idle banks.
                WarpSlot chosen = candidates_.front();
                for (WarpSlot slot : candidates_)
                    if (warps[slot].ageRank < warps[chosen].ageRank)
                        chosen = slot;
                issueTo(now, sm, s, chosen);
                ++issued;
                ++sm.stats().issueSlotsUsed;
            }
        }
    }

    head_ = (head_ + 1) % ringDepth_;
    return issued;
}

void
IssueCluster::issueTo(Cycle now, SmCore &sm, int sched, WarpSlot slot)
{
    WarpContext &warp = sm.warpTable()[slot];
    const Instruction &inst = warp.nextInst();
    warp.lastIssue = now;
    ++warp.pc;
    sm.noteIssue(id_, sched);

    switch (inst.op) {
      case Opcode::BAR:
        sm.warpBarrier(slot);
        return;
      case Opcode::EXIT:
        sm.warpExit(slot, now);
        return;
      default:
        break;
    }

    int cu = collector_.allocate(slot, inst, arbiter_, now);
    scsim_assert(cu >= 0, "issue without a free collector unit");
    warp.scoreboard.markIssue(inst);
}

void
IssueCluster::snapshotQueues()
{
    // Snapshots are taken at the start of issue(); nothing to do here.
}

void
IssueCluster::onIdleSkip()
{
    std::fill(qlenRing_.begin(), qlenRing_.end(), 0);
}

bool
IssueCluster::hasImmediateWork(const SmCore &sm) const
{
    if (arbiter_.anyPending())
        return true;
    for (int i = 0; i < collector_.size(); ++i)
        if (collector_.unit(i).busy)
            return true;
    const WarpContext *warps = sm.warpTable();
    const bool cuFree = collector_.hasFree();
    for (const auto &list : schedWarps_)
        for (WarpSlot slot : list)
            if (candidateReadyWith(warps[slot], cuFree))
                return true;
    return false;
}

void
IssueCluster::reset()
{
    arbiter_.reset();
    collector_.reset();
    pipes_.reset();
    for (auto &sched : scheds_)
        sched->reset();
    for (auto &list : schedWarps_)
        list.clear();
    std::fill(ageCounter_.begin(), ageCounter_.end(), 0u);
    onIdleSkip();
    head_ = 0;
}

void
IssueCluster::saveState(StateWriter &w) const
{
    // grants_ and candidates_ are per-cycle scratch (cleared before
    // every use) and are deliberately not part of the snapshot.
    arbiter_.saveState(w);
    collector_.saveState(w);
    pipes_.saveState(w);
    for (const auto &sched : scheds_)
        sched->saveState(w);
    for (const auto &list : schedWarps_) {
        w.u64("ic.warps", list.size());
        for (WarpSlot slot : list)
            w.i64("ic.slot", slot);
    }
    for (std::uint32_t age : ageCounter_)
        w.u64("ic.age", age);
    for (int qlen : qlenRing_)
        w.i64("ic.qlen", qlen);
    w.u64("ic.head", head_);
}

void
IssueCluster::loadState(StateReader &r)
{
    arbiter_.loadState(r);
    collector_.loadState(r);
    pipes_.loadState(r);
    for (auto &sched : scheds_)
        sched->loadState(r);
    for (auto &list : schedWarps_) {
        list.clear();
        std::uint64_t n = r.u64("ic.warps");
        for (std::uint64_t i = 0; i < n; ++i)
            list.push_back(static_cast<WarpSlot>(r.i64("ic.slot")));
    }
    for (std::uint32_t &age : ageCounter_)
        age = static_cast<std::uint32_t>(r.u64("ic.age"));
    for (int &qlen : qlenRing_)
        qlen = static_cast<int>(r.i64("ic.qlen"));
    head_ = r.u64("ic.head");
    if (head_ >= ringDepth_)
        scsim_throw(CacheError, "snapshot: ring head %zu out of range",
                    head_);
}

} // namespace scsim
