#include "core/assign.hh"

#include <numeric>

#include "common/logging.hh"
#include "common/state_io.hh"

namespace scsim {

int
RoundRobinAssigner::nextSubcore()
{
    return static_cast<int>(w_++ % static_cast<std::uint64_t>(n_));
}

int
SrrAssigner::nextSubcore()
{
    std::uint64_t n = static_cast<std::uint64_t>(n_);
    int sub = static_cast<int>((w_ + w_ / n) % n);
    ++w_;
    return sub;
}

void
RoundRobinAssigner::saveState(StateWriter &w) const
{
    w.u64("assign.w", w_);
}

void
RoundRobinAssigner::loadState(StateReader &r)
{
    w_ = r.u64("assign.w");
}

void
SrrAssigner::saveState(StateWriter &w) const
{
    w.u64("assign.w", w_);
}

void
SrrAssigner::loadState(StateReader &r)
{
    w_ = r.u64("assign.w");
}

ShuffleAssigner::ShuffleAssigner(int numSubcores, std::uint64_t seed)
    : SubcoreAssigner(numSubcores), seed_(seed), rng_(seed)
{
    refill();
}

void
ShuffleAssigner::refill()
{
    perm_.resize(static_cast<std::size_t>(n_));
    std::iota(perm_.begin(), perm_.end(), 0);
    rng_.shuffle(perm_);
    pos_ = 0;
}

int
ShuffleAssigner::nextSubcore()
{
    if (pos_ == perm_.size())
        refill();
    return perm_[pos_++];
}

void
ShuffleAssigner::reset()
{
    rng_ = Rng(seed_);
    refill();
}

void
ShuffleAssigner::saveState(StateWriter &w) const
{
    Rng::State st = rng_.state();
    for (std::uint64_t word : st.s)
        w.u64("assign.rng", word);
    for (int p : perm_)
        w.i64("assign.perm", p);
    w.u64("assign.pos", pos_);
}

void
ShuffleAssigner::loadState(StateReader &r)
{
    Rng::State st;
    for (std::uint64_t &word : st.s)
        word = r.u64("assign.rng");
    rng_.setState(st);
    perm_.resize(static_cast<std::size_t>(n_));
    for (int &p : perm_)
        p = static_cast<int>(r.i64("assign.perm"));
    pos_ = r.u64("assign.pos");
    if (pos_ > perm_.size())
        scsim_throw(CacheError, "snapshot: shuffle pos %zu out of range",
                    pos_);
}

HashTableAssigner::HashTableAssigner(int numSubcores, int entries)
    : SubcoreAssigner(numSubcores),
      table_(static_cast<std::size_t>(entries), 0)
{
    scsim_assert(numSubcores == 4,
                 "the hash-table engine drives a 4:1 mux (2 selects)");
    scsim_assert(entries == 4 || entries == 16,
                 "hash table holds 4 or 16 entries");
}

std::uint8_t
HashTableAssigner::encodeEntry(const int subcores[4])
{
    std::uint8_t upper = 0;   // select line 0 (bit 0 of the sub-core id)
    std::uint8_t lower = 0;   // select line 1 (bit 1 of the sub-core id)
    for (int j = 0; j < 4; ++j) {
        upper = static_cast<std::uint8_t>(
            upper | ((subcores[j] & 1) << j));
        lower = static_cast<std::uint8_t>(
            lower | (((subcores[j] >> 1) & 1) << j));
    }
    return static_cast<std::uint8_t>((upper << 4) | lower);
}

int
HashTableAssigner::nextSubcore()
{
    std::uint64_t group = (w_ / 4) % table_.size();
    int j = static_cast<int>(w_ % 4);
    ++w_;
    std::uint8_t e = table_[group];
    int sel0 = (e >> (4 + j)) & 1;
    int sel1 = (e >> j) & 1;
    return (sel1 << 1) | sel0;
}

void
HashTableAssigner::saveState(StateWriter &w) const
{
    w.u64("assign.w", w_);
    // The table is programmed deterministically at construction, but a
    // test may have repatched it through setEntry — persist it too.
    for (std::uint8_t e : table_)
        w.u64("assign.entry", e);
}

void
HashTableAssigner::loadState(StateReader &r)
{
    w_ = r.u64("assign.w");
    for (std::uint8_t &e : table_)
        e = static_cast<std::uint8_t>(r.u64("assign.entry"));
}

void
HashTableAssigner::programSrr()
{
    // SRR for N=4 reduces to: group g assigns [g, g+1, g+2, g+3] mod 4.
    for (std::size_t g = 0; g < table_.size(); ++g) {
        int subs[4];
        for (int j = 0; j < 4; ++j)
            subs[j] = static_cast<int>((g + static_cast<std::size_t>(j))
                                       % 4);
        table_[g] = encodeEntry(subs);
    }
}

void
HashTableAssigner::programShuffle(Rng &rng)
{
    for (std::size_t g = 0; g < table_.size(); ++g) {
        std::vector<int> perm(4);
        std::iota(perm.begin(), perm.end(), 0);
        rng.shuffle(perm);
        int subs[4] = { perm[0], perm[1], perm[2], perm[3] };
        table_[g] = encodeEntry(subs);
    }
}

sim::Registry<sim::AssignerFactory> &
sim::assignerRegistry()
{
    // Seeded on first use with the built-in policies; hash-table sizing
    // comes from the config, per-SM subcore count and seed from the
    // AssignerContext of the constructing SM.
    static Registry<AssignerFactory> reg = [] {
        Registry<AssignerFactory> r("assignment policy");
        r.add("RR", "round robin: subcore = W mod N (hardware baseline)",
              [](const GpuConfig &, const AssignerContext &ctx) {
                  return std::make_unique<RoundRobinAssigner>(
                      ctx.numSubcores);
              });
        r.add("SRR", "skewed round robin: (W + floor(W/N)) mod N",
              [](const GpuConfig &, const AssignerContext &ctx) {
                  return std::make_unique<SrrAssigner>(ctx.numSubcores);
              });
        r.add("Shuffle", "random permutation per group of N warps",
              [](const GpuConfig &, const AssignerContext &ctx) {
                  return std::make_unique<ShuffleAssigner>(
                      ctx.numSubcores, ctx.seed);
              });
        r.add("HashSRR", "Fig 7 hash-table engine, SRR program",
              [](const GpuConfig &cfg, const AssignerContext &ctx)
                  -> std::unique_ptr<SubcoreAssigner> {
                  auto a = std::make_unique<HashTableAssigner>(
                      ctx.numSubcores, cfg.hashTableEntries);
                  a->programSrr();
                  return a;
              });
        r.add("HashShuffle", "Fig 7 hash-table engine, random program",
              [](const GpuConfig &cfg, const AssignerContext &ctx)
                  -> std::unique_ptr<SubcoreAssigner> {
                  auto a = std::make_unique<HashTableAssigner>(
                      ctx.numSubcores, cfg.hashTableEntries);
                  Rng rng(ctx.seed);
                  a->programShuffle(rng);
                  return a;
              });
        return r;
    }();
    return reg;
}

std::unique_ptr<SubcoreAssigner>
makeAssigner(const GpuConfig &cfg, int numSubcores, std::uint64_t seed)
{
    sim::AssignerContext ctx;
    ctx.numSubcores = numSubcores;
    ctx.seed = seed;
    return sim::assignerRegistry().lookup(toString(cfg.assign))(cfg, ctx);
}

std::unique_ptr<SubcoreAssigner>
makeAssigner(AssignPolicy policy, int numSubcores, int hashEntries,
             std::uint64_t seed)
{
    GpuConfig cfg;
    cfg.assign = policy;
    cfg.hashTableEntries = hashEntries;
    return makeAssigner(cfg, numSubcores, seed);
}

} // namespace scsim
