/**
 * @file
 * Warp issue schedulers (Section IV-A).
 *
 * The scheduler picks one warp per cycle among the ready candidates of
 * its scheduler table.  Three policies:
 *
 *  - LRR: loose round robin.
 *  - GTO: greedy-then-oldest (paper baseline) — stay on the last
 *    issued warp while it remains ready, else the oldest ready warp.
 *  - RBA: register-bank-aware — order by the concatenated key
 *    {RBA score, complement(age)} and pick the minimum, i.e. lowest
 *    bank-contention score with age (oldest-first) breaking ties.
 *    The score of an instruction is the sum over its source operands
 *    of the (possibly stale) read-queue length of each operand's bank,
 *    clamped to 5 bits exactly as the hardware table stores it.
 */

#ifndef SCSIM_CORE_SCHEDULER_HH
#define SCSIM_CORE_SCHEDULER_HH

#include <memory>
#include <vector>

#include "config/gpu_config.hh"
#include "core/warp.hh"
#include "sim/registry.hh"

namespace scsim {

class StateReader;
class StateWriter;

/** Everything a policy may inspect when picking. */
struct PickContext
{
    Cycle now = 0;
    /** SM warp table, indexed by WarpSlot. */
    const WarpContext *warps = nullptr;
    /** Read-queue length per bank (staleness already applied). */
    const int *bankQueueLen = nullptr;
    int numBanks = 0;
};

class WarpScheduler
{
  public:
    virtual ~WarpScheduler() = default;

    /**
     * Choose a warp among @p ready (never empty); returns its slot.
     */
    virtual WarpSlot pick(const std::vector<WarpSlot> &ready,
                          const PickContext &ctx) = 0;

    /** Feedback after the chosen warp actually issued. */
    virtual void notifyIssued(WarpSlot, Cycle) {}

    virtual void reset() {}

    /** Checkpointing; stateless policies keep the empty default. */
    virtual void saveState(StateWriter &) const {}
    virtual void loadState(StateReader &) {}
};

/** 5-bit clamped RBA score of @p inst for warp @p slot (eq. in IV-A). */
int rbaScore(const Instruction &inst, WarpSlot slot,
             const int *bankQueueLen, int numBanks);

class LrrScheduler : public WarpScheduler
{
  public:
    WarpSlot pick(const std::vector<WarpSlot> &ready,
                  const PickContext &ctx) override;
    void notifyIssued(WarpSlot slot, Cycle now) override;
    void reset() override { lastIssued_ = kNoWarp; }
    void saveState(StateWriter &w) const override;
    void loadState(StateReader &r) override;

  private:
    WarpSlot lastIssued_ = kNoWarp;
};

class GtoScheduler : public WarpScheduler
{
  public:
    WarpSlot pick(const std::vector<WarpSlot> &ready,
                  const PickContext &ctx) override;
    void notifyIssued(WarpSlot slot, Cycle now) override;
    void reset() override { greedyWarp_ = kNoWarp; }
    void saveState(StateWriter &w) const override;
    void loadState(StateReader &r) override;

  private:
    WarpSlot greedyWarp_ = kNoWarp;
};

class RbaScheduler : public WarpScheduler
{
  public:
    WarpSlot pick(const std::vector<WarpSlot> &ready,
                  const PickContext &ctx) override;
};

/**
 * Instantiate @p cfg's scheduler policy through the registry
 * (sim/registry.hh) — the one wiring path; throws ConfigError if the
 * policy name is not registered.
 */
std::unique_ptr<WarpScheduler> makeScheduler(const GpuConfig &cfg);

/** Enum convenience over the registry path (tests, call sites with no
 *  full config at hand). */
std::unique_ptr<WarpScheduler> makeScheduler(SchedulerPolicy policy);

} // namespace scsim

#endif // SCSIM_CORE_SCHEDULER_HH
