#include "core/exec_unit.hh"

#include "common/state_io.hh"

namespace scsim {

PipeSet::PipeSet(const GpuConfig &cfg, int schedulers)
{
    auto addPipes = [&](UnitKind kind, int perSched, int init, int lat) {
        for (int i = 0; i < perSched * schedulers; ++i)
            pipes_.emplace_back(kind, init, lat);
    };
    addPipes(UnitKind::SP, cfg.spPipesPerScheduler, cfg.spInitiation,
             cfg.spLatency);
    addPipes(UnitKind::SFU, cfg.sfuPipesPerScheduler, cfg.sfuInitiation,
             cfg.sfuLatency);
    addPipes(UnitKind::Tensor, cfg.tensorPipesPerScheduler,
             cfg.tensorInitiation, cfg.tensorLatency);
    addPipes(UnitKind::LdSt, cfg.ldstPipesPerScheduler,
             cfg.ldstInitiation, 0);
}

ExecPipe *
PipeSet::findFree(UnitKind kind, Cycle now)
{
    for (auto &pipe : pipes_)
        if (pipe.kind() == kind && pipe.canAccept(now))
            return &pipe;
    return nullptr;
}

void
PipeSet::reset()
{
    for (auto &pipe : pipes_)
        pipe.reset();
}

void
PipeSet::saveState(StateWriter &w) const
{
    for (const ExecPipe &pipe : pipes_)
        w.u64("pipe.busyUntil", pipe.busyUntil());
}

void
PipeSet::loadState(StateReader &r)
{
    for (ExecPipe &pipe : pipes_)
        pipe.setBusyUntil(r.u64("pipe.busyUntil"));
}

} // namespace scsim
