#include "core/sm_core.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/state_io.hh"
#include "trace/kernel.hh"

namespace scsim {

namespace {

int
ceilShare(int warps, int schedulers)
{
    return (warps + schedulers - 1) / schedulers;
}

} // namespace

SmCore::SmCore(const GpuConfig &cfg, int smId, MemSystem &mem,
               SimStats &stats)
    : cfg_(cfg), smId_(smId), mem_(mem), stats_(stats)
{
    warps_.resize(static_cast<std::size_t>(cfg.maxWarpsPerSm));
    freeSlots_.reserve(warps_.size());
    for (int i = cfg.maxWarpsPerSm - 1; i >= 0; --i)
        freeSlots_.push_back(i);
    blocks_.resize(static_cast<std::size_t>(cfg.maxBlocksPerSm));
    for (int c = 0; c < cfg.clusterCount(); ++c)
        clusters_.push_back(std::make_unique<IssueCluster>(cfg, c));
    regBytesUsed_.assign(static_cast<std::size_t>(cfg.clusterCount()), 0);

    std::uint64_t seed = cfg.seed
        ^ (0x51ed2701a3c5e091ULL * static_cast<std::uint64_t>(smId + 1));
    assigner_ = makeAssigner(cfg, cfg.schedulersPerSm, seed);
    rfTrace_ = cfg.rfTraceEnable && smId == 0;
}

void
SmCore::checkKernelFits(const GpuConfig &cfg, const KernelDesc &kernel)
{
    if (kernel.warpsPerBlock > cfg.maxWarpsPerSm)
        scsim_throw(WorkloadError, "kernel '%s': block of %d warps exceeds SM capacity "
                    "%d", kernel.name.c_str(), kernel.warpsPerBlock,
                    cfg.maxWarpsPerSm);
    int share = ceilShare(kernel.warpsPerBlock, cfg.schedulersPerSm);
    if (share > cfg.maxWarpsPerScheduler)
        scsim_throw(WorkloadError, "kernel '%s': %d warps/scheduler exceeds table size "
                    "%d", kernel.name.c_str(), share,
                    cfg.maxWarpsPerScheduler);
    if (kernel.smemBytesPerBlock > cfg.smemBytesPerSm)
        scsim_throw(WorkloadError, "kernel '%s': %u B shared memory exceeds SM's %u B",
                    kernel.name.c_str(), kernel.smemBytesPerBlock,
                    cfg.smemBytesPerSm);
    std::uint32_t clusterRegs =
        static_cast<std::uint32_t>(share)
        * static_cast<std::uint32_t>(cfg.schedulersPerCluster())
        * kernel.regBytesPerWarp();
    if (clusterRegs > cfg.regFileBytesPerCluster())
        scsim_throw(WorkloadError, "kernel '%s': needs %u reg bytes per sub-core, "
                    "file holds %u", kernel.name.c_str(), clusterRegs,
                    cfg.regFileBytesPerCluster());
}

bool
SmCore::canAccept(const KernelDesc &kernel) const
{
    if (activeBlocks_ >= cfg_.maxBlocksPerSm)
        return false;
    if (smemUsed_ + kernel.smemBytesPerBlock > cfg_.smemBytesPerSm)
        return false;
    if (static_cast<int>(freeSlots_.size()) < kernel.warpsPerBlock)
        return false;

    int share = ceilShare(kernel.warpsPerBlock, cfg_.schedulersPerSm);
    for (const auto &cluster : clusters_) {
        for (int s = 0; s < cluster->numSchedulers(); ++s) {
            if (cluster->warpCount(s) + share > cfg_.maxWarpsPerScheduler)
                return false;
        }
    }
    std::uint32_t clusterRegs =
        static_cast<std::uint32_t>(share)
        * static_cast<std::uint32_t>(cfg_.schedulersPerCluster())
        * kernel.regBytesPerWarp();
    for (std::uint32_t used : regBytesUsed_)
        if (used + clusterRegs > cfg_.regFileBytesPerCluster())
            return false;
    return true;
}

int
SmCore::pickSpillScheduler(std::uint32_t regBytes) const
{
    int best = -1;
    int bestCount = 0;
    for (int g = 0; g < cfg_.schedulersPerSm; ++g) {
        int c = g / cfg_.schedulersPerCluster();
        int s = g % cfg_.schedulersPerCluster();
        const IssueCluster &cluster = *clusters_[static_cast<std::size_t>(c)];
        if (cluster.warpCount(s) >= cfg_.maxWarpsPerScheduler)
            continue;
        if (regBytesUsed_[static_cast<std::size_t>(c)] + regBytes
                > cfg_.regFileBytesPerCluster())
            continue;
        if (best < 0 || cluster.warpCount(s) < bestCount) {
            best = g;
            bestCount = cluster.warpCount(s);
        }
    }
    return best;
}

void
SmCore::acceptBlock(const KernelDesc &kernel, int blockId, Cycle now)
{
    // Claim a block-table entry.
    BlockState *block = nullptr;
    int blockSeq = -1;
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
        if (!blocks_[i].live) {
            block = &blocks_[i];
            blockSeq = static_cast<int>(i);
            break;
        }
    }
    scsim_assert(block != nullptr, "acceptBlock without canAccept");
    *block = BlockState{};
    block->live = true;
    block->blockId = blockId;
    block->kernel = &kernel;
    block->warpsTotal = kernel.warpsPerBlock;
    smemUsed_ += kernel.smemBytesPerBlock;
    ++activeBlocks_;

    std::uint32_t regBytes = kernel.regBytesPerWarp();
    for (int w = 0; w < kernel.warpsPerBlock; ++w) {
        int g = assigner_->nextSubcore();
        int c = g / cfg_.schedulersPerCluster();
        int s = g % cfg_.schedulersPerCluster();
        IssueCluster *cluster = clusters_[static_cast<std::size_t>(c)].get();
        bool fits = cluster->warpCount(s) < cfg_.maxWarpsPerScheduler
            && regBytesUsed_[static_cast<std::size_t>(c)] + regBytes
                   <= cfg_.regFileBytesPerCluster();
        if (!fits) {
            g = pickSpillScheduler(regBytes);
            scsim_assert(g >= 0, "no scheduler can hold a spilled warp");
            c = g / cfg_.schedulersPerCluster();
            s = g % cfg_.schedulersPerCluster();
            cluster = clusters_[static_cast<std::size_t>(c)].get();
            ++stats_.assignSpills;
        }

        scsim_assert(!freeSlots_.empty(), "warp slots exhausted");
        WarpSlot slot = freeSlots_.back();
        freeSlots_.pop_back();

        WarpContext &warp = warps_[static_cast<std::size_t>(slot)];
        warp.reset();
        warp.slot = slot;
        warp.blockSeq = blockSeq;
        warp.warpInBlock = w;
        warp.gwid = static_cast<std::uint64_t>(blockId)
            * static_cast<std::uint64_t>(kernel.warpsPerBlock)
            + static_cast<std::uint64_t>(w);
        warp.prog = &kernel.programOf(w);
        warp.cluster = c;
        warp.schedInCluster = s;
        warp.active = true;
        warp.lastIssue = now;
        warp.ageRank = cluster->addWarp(s, slot);
        warp.regBytes = regBytes;
        regBytesUsed_[static_cast<std::size_t>(c)] += regBytes;
        block->slots.push_back(slot);
    }
    hadWork_ = true;
}

void
SmCore::processEvents(Cycle now)
{
    while (!events_.empty() && events_.front().when <= now) {
        std::pop_heap(events_.begin(), events_.end(),
                      std::greater<RegWriteEvent>());
        RegWriteEvent ev = events_.back();
        events_.pop_back();
        scsim_assert(ev.when == now,
                     "missed a writeback event (idle skip overshoot)");
        const WarpContext &warp = warps_[static_cast<std::size_t>(ev.warp)];
        IssueCluster &cluster =
            *clusters_[static_cast<std::size_t>(warp.cluster)];
        int bank = cluster.arbiter().bankOf(ev.reg, ev.warp);
        cluster.arbiter().pushWrite(bank, WriteRequest{ ev.warp, ev.reg });
    }
}

void
SmCore::cycle(Cycle now)
{
    l1PortsLeft_ = cfg_.l1PortsPerSm;
    processEvents(now);
    if (cfg_.idealWarpMigration)
        migrateForBalance();
    bool active = false;
    for (auto &cluster : clusters_)
        active = cluster->cycle(now, *this) || active;
    hadWork_ = active;
}

void
SmCore::migrateForBalance()
{
    int nsched = cfg_.schedulersPerSm;
    int perCluster = cfg_.schedulersPerCluster();
    // Runnable warps per global scheduler.
    std::vector<int> runnable(static_cast<std::size_t>(nsched), 0);
    for (int g = 0; g < nsched; ++g) {
        const IssueCluster &cluster =
            *clusters_[static_cast<std::size_t>(g / perCluster)];
        for (WarpSlot slot : cluster.warpsOf(g % perCluster)) {
            const WarpContext &w = warps_[static_cast<std::size_t>(slot)];
            if (w.schedulable() && !w.sbBlocked)
                ++runnable[static_cast<std::size_t>(g)];
        }
    }
    for (int g = 0; g < nsched; ++g) {
        if (runnable[static_cast<std::size_t>(g)] != 0)
            continue;
        int gc = g / perCluster;
        IssueCluster &dstCluster =
            *clusters_[static_cast<std::size_t>(gc)];
        // Donor: the most loaded scheduler with at least two runnable.
        int donor = -1;
        for (int d = 0; d < nsched; ++d)
            if (runnable[static_cast<std::size_t>(d)] >= 2
                && (donor < 0
                    || runnable[static_cast<std::size_t>(d)]
                           > runnable[static_cast<std::size_t>(donor)]))
                donor = d;
        if (donor < 0)
            break;
        int dc = donor / perCluster;
        IssueCluster &srcCluster =
            *clusters_[static_cast<std::size_t>(dc)];
        WarpSlot victim = kNoWarp;
        for (WarpSlot slot : srcCluster.warpsOf(donor % perCluster)) {
            const WarpContext &w = warps_[static_cast<std::size_t>(slot)];
            if (w.schedulable() && !w.sbBlocked)
                victim = slot;   // youngest runnable
        }
        if (victim == kNoWarp)
            continue;
        WarpContext &w = warps_[static_cast<std::size_t>(victim)];
        if (dc != gc
            && regBytesUsed_[static_cast<std::size_t>(gc)] + w.regBytes
                   > cfg_.regFileBytesPerCluster())
            continue;
        srcCluster.removeWarp(donor % perCluster, victim);
        if (dc != gc) {
            regBytesUsed_[static_cast<std::size_t>(dc)] -= w.regBytes;
            regBytesUsed_[static_cast<std::size_t>(gc)] += w.regBytes;
        }
        w.cluster = gc;
        w.schedInCluster = g % perCluster;
        // The oracle ignores table capacity (entries are bookkeeping);
        // register storage remains a hard constraint above.
        w.ageRank = dstCluster.addWarp(g % perCluster, victim,
                                       /*unchecked=*/true);
        --runnable[static_cast<std::size_t>(donor)];
        ++runnable[static_cast<std::size_t>(g)];
        ++stats_.warpMigrations;
        hadWork_ = true;
    }
}

bool
SmCore::busy() const
{
    return activeBlocks_ > 0 || !events_.empty();
}

Cycle
SmCore::nextWake(Cycle now) const
{
    if (!busy())
        return kNoCycle;
    if (hadWork_)
        return now + 1;
    if (!events_.empty())
        return events_.front().when;
    scsim_panic("SM %d is busy with no runnable work and no events "
                "(simulator deadlock)", smId_);
}

void
SmCore::onIdleSkip()
{
    for (auto &cluster : clusters_)
        cluster->onIdleSkip();
}

bool
SmCore::tryConsumeL1Port()
{
    if (l1PortsLeft_ <= 0)
        return false;
    --l1PortsLeft_;
    return true;
}

Cycle
SmCore::issueMemory(WarpContext &warp, const Instruction &inst, Cycle now)
{
    return mem_.access(smId_, inst.mem, warp.gwid, warp.memIter++, now);
}

void
SmCore::scheduleRegWrite(Cycle when, WarpSlot warp, RegIndex reg)
{
    scsim_assert(when > 0, "writeback scheduled in the past");
    events_.push_back(RegWriteEvent{ when, warp, reg });
    std::push_heap(events_.begin(), events_.end(),
                   std::greater<RegWriteEvent>());
}

void
SmCore::completeRegWrite(WarpSlot warp, RegIndex reg)
{
    WarpContext &w = warps_[static_cast<std::size_t>(warp)];
    w.scoreboard.completeWrite(reg);
    w.sbBlocked = false;
}

void
SmCore::releaseBarrier(BlockState &block)
{
    for (WarpSlot slot : block.slots) {
        WarpContext &warp = warps_[static_cast<std::size_t>(slot)];
        warp.atBarrier = false;
    }
    block.barrierArrived = 0;
    // Released warps in already-cycled clusters are runnable now.
    hadWork_ = true;
}

void
SmCore::warpBarrier(WarpSlot slot)
{
    WarpContext &warp = warps_[static_cast<std::size_t>(slot)];
    BlockState &block = blocks_[static_cast<std::size_t>(warp.blockSeq)];
    warp.atBarrier = true;
    ++block.barrierArrived;
    if (block.barrierArrived == block.warpsTotal - block.warpsExited)
        releaseBarrier(block);
}

void
SmCore::completeBlock(BlockState &block)
{
    std::uint32_t regBytes = block.kernel->regBytesPerWarp();
    for (WarpSlot slot : block.slots) {
        WarpContext &warp = warps_[static_cast<std::size_t>(slot)];
        clusters_[static_cast<std::size_t>(warp.cluster)]
            ->removeWarp(warp.schedInCluster, slot);
        regBytesUsed_[static_cast<std::size_t>(warp.cluster)] -= regBytes;
        warp.reset();
        freeSlots_.push_back(slot);
    }
    smemUsed_ -= block.kernel->smemBytesPerBlock;
    --activeBlocks_;
    ++stats_.blocksCompleted;
    block = BlockState{};
}

void
SmCore::warpExit(WarpSlot slot, Cycle)
{
    WarpContext &warp = warps_[static_cast<std::size_t>(slot)];
    BlockState &block = blocks_[static_cast<std::size_t>(warp.blockSeq)];
    warp.exited = true;
    ++block.warpsExited;
    ++stats_.warpsCompleted;
    // The barrier threshold shrank; a waiting barrier may now release.
    if (block.barrierArrived > 0
        && block.barrierArrived == block.warpsTotal - block.warpsExited)
        releaseBarrier(block);
    if (block.warpsExited == block.warpsTotal)
        completeBlock(block);
}

void
SmCore::noteIssue(int cluster, int schedInCluster)
{
    int global = cluster * cfg_.schedulersPerCluster() + schedInCluster;
    auto &perSm = stats_.issuePerScheduler[static_cast<std::size_t>(smId_)];
    ++perSm[static_cast<std::size_t>(global)];
    ++stats_.instructions;
    stats_.threadInstructions += kWarpSize;
}

void
SmCore::noteRfReads(Cycle now, int grants)
{
    if (rfTrace_)
        stats_.rfReadTrace.add(now, static_cast<double>(grants)
                                        * kWarpSize);
}

int
SmCore::residentWarps() const
{
    int n = 0;
    for (const auto &warp : warps_)
        if (warp.active)
            ++n;
    return n;
}

void
SmCore::reset()
{
    for (auto &warp : warps_)
        warp.reset();
    freeSlots_.clear();
    for (int i = cfg_.maxWarpsPerSm - 1; i >= 0; --i)
        freeSlots_.push_back(i);
    for (auto &block : blocks_)
        block = BlockState{};
    for (auto &cluster : clusters_)
        cluster->reset();
    std::fill(regBytesUsed_.begin(), regBytesUsed_.end(), 0u);
    smemUsed_ = 0;
    activeBlocks_ = 0;
    events_.clear();
    assigner_->reset();
    hadWork_ = false;
}

namespace {

int
kernelIndexOf(const Application &app, const KernelDesc *kernel)
{
    if (!kernel)
        return -1;
    for (std::size_t i = 0; i < app.kernels.size(); ++i)
        if (&app.kernels[i] == kernel)
            return static_cast<int>(i);
    scsim_panic("block references a kernel outside the application");
}

const KernelDesc *
kernelAt(const Application &app, std::int64_t idx)
{
    if (idx < 0)
        return nullptr;
    if (idx >= static_cast<std::int64_t>(app.kernels.size()))
        scsim_throw(CacheError,
                    "snapshot: kernel index %lld out of range (%zu "
                    "kernels)",
                    static_cast<long long>(idx), app.kernels.size());
    return &app.kernels[static_cast<std::size_t>(idx)];
}

} // namespace

void
SmCore::saveState(StateWriter &w, const Application &app) const
{
    // l1PortsLeft_ is reset at the top of every cycle() and rfTrace_
    // is derived from the config; neither is snapshotted.
    for (const WarpContext &warp : warps_) {
        w.i64("warp.slot", warp.slot);
        w.i64("warp.blockSeq", warp.blockSeq);
        w.i64("warp.inBlock", warp.warpInBlock);
        w.u64("warp.gwid", warp.gwid);
        w.i64("warp.cluster", warp.cluster);
        w.i64("warp.sched", warp.schedInCluster);
        w.u64("warp.ageRank", warp.ageRank);
        w.u64("warp.regBytes", warp.regBytes);
        w.b("warp.active", warp.active);
        w.b("warp.exited", warp.exited);
        w.b("warp.atBarrier", warp.atBarrier);
        w.u64("warp.pc", warp.pc);
        w.u64("warp.memIter", warp.memIter);
        w.u64("warp.lastIssue", warp.lastIssue);
        w.b("warp.sbBlocked", warp.sbBlocked);
        warp.scoreboard.saveState(w);
    }
    w.u64("sm.freeSlots", freeSlots_.size());
    for (WarpSlot slot : freeSlots_)
        w.i64("sm.freeSlot", slot);
    for (const BlockState &block : blocks_) {
        w.b("blk.live", block.live);
        w.i64("blk.id", block.blockId);
        w.i64("blk.kernel", kernelIndexOf(app, block.kernel));
        w.i64("blk.warpsTotal", block.warpsTotal);
        w.i64("blk.warpsExited", block.warpsExited);
        w.i64("blk.barrier", block.barrierArrived);
        w.u64("blk.slots", block.slots.size());
        for (WarpSlot slot : block.slots)
            w.i64("blk.slot", slot);
    }
    for (const auto &cluster : clusters_)
        cluster->saveState(w);
    assigner_->saveState(w);
    for (std::uint32_t used : regBytesUsed_)
        w.u64("sm.regBytesUsed", used);
    w.u64("sm.smemUsed", smemUsed_);
    w.i64("sm.activeBlocks", activeBlocks_);
    // The writeback min-heap is serialized as its backing array, so a
    // restore reproduces the exact pop order of equal-cycle events.
    w.u64("sm.events", events_.size());
    for (const RegWriteEvent &ev : events_) {
        w.u64("ev.when", ev.when);
        w.i64("ev.warp", ev.warp);
        w.i64("ev.reg", ev.reg);
    }
    w.b("sm.hadWork", hadWork_);
}

void
SmCore::loadState(StateReader &r, const Application &app)
{
    for (WarpContext &warp : warps_) {
        warp.slot = static_cast<WarpSlot>(r.i64("warp.slot"));
        warp.blockSeq = static_cast<int>(r.i64("warp.blockSeq"));
        warp.warpInBlock = static_cast<int>(r.i64("warp.inBlock"));
        warp.gwid = r.u64("warp.gwid");
        warp.cluster = static_cast<int>(r.i64("warp.cluster"));
        warp.schedInCluster = static_cast<int>(r.i64("warp.sched"));
        warp.ageRank = static_cast<std::uint32_t>(r.u64("warp.ageRank"));
        warp.regBytes =
            static_cast<std::uint32_t>(r.u64("warp.regBytes"));
        warp.active = r.b("warp.active");
        warp.exited = r.b("warp.exited");
        warp.atBarrier = r.b("warp.atBarrier");
        warp.pc = static_cast<std::uint32_t>(r.u64("warp.pc"));
        warp.memIter = r.u64("warp.memIter");
        warp.lastIssue = r.u64("warp.lastIssue");
        warp.sbBlocked = r.b("warp.sbBlocked");
        warp.scoreboard.loadState(r);
        warp.prog = nullptr;   // re-resolved from the block table below
    }
    freeSlots_.clear();
    std::uint64_t nFree = r.u64("sm.freeSlots");
    for (std::uint64_t i = 0; i < nFree; ++i)
        freeSlots_.push_back(static_cast<WarpSlot>(r.i64("sm.freeSlot")));
    for (BlockState &block : blocks_) {
        block.live = r.b("blk.live");
        block.blockId = static_cast<int>(r.i64("blk.id"));
        block.kernel = kernelAt(app, r.i64("blk.kernel"));
        block.warpsTotal = static_cast<int>(r.i64("blk.warpsTotal"));
        block.warpsExited = static_cast<int>(r.i64("blk.warpsExited"));
        block.barrierArrived = static_cast<int>(r.i64("blk.barrier"));
        block.slots.clear();
        std::uint64_t nSlots = r.u64("blk.slots");
        for (std::uint64_t i = 0; i < nSlots; ++i)
            block.slots.push_back(
                static_cast<WarpSlot>(r.i64("blk.slot")));
        if (block.live && !block.kernel)
            scsim_throw(CacheError,
                        "snapshot: live block without a kernel");
    }
    // Re-resolve warp program pointers through their blocks.
    for (const BlockState &block : blocks_) {
        if (!block.live)
            continue;
        for (WarpSlot slot : block.slots) {
            if (slot < 0
                || slot >= static_cast<WarpSlot>(warps_.size()))
                scsim_throw(CacheError,
                            "snapshot: warp slot %d out of range", slot);
            WarpContext &warp = warps_[static_cast<std::size_t>(slot)];
            if (warp.warpInBlock < 0
                || warp.warpInBlock >= block.kernel->warpsPerBlock)
                scsim_throw(CacheError,
                            "snapshot: warp-in-block %d out of range",
                            warp.warpInBlock);
            warp.prog = &block.kernel->programOf(warp.warpInBlock);
        }
    }
    for (auto &cluster : clusters_)
        cluster->loadState(r);
    assigner_->loadState(r);
    for (std::uint32_t &used : regBytesUsed_)
        used = static_cast<std::uint32_t>(r.u64("sm.regBytesUsed"));
    smemUsed_ = static_cast<std::uint32_t>(r.u64("sm.smemUsed"));
    activeBlocks_ = static_cast<int>(r.i64("sm.activeBlocks"));
    events_.clear();
    std::uint64_t nEvents = r.u64("sm.events");
    for (std::uint64_t i = 0; i < nEvents; ++i) {
        RegWriteEvent ev;
        ev.when = r.u64("ev.when");
        ev.warp = static_cast<WarpSlot>(r.i64("ev.warp"));
        ev.reg = static_cast<RegIndex>(r.i64("ev.reg"));
        events_.push_back(ev);
    }
    hadWork_ = r.b("sm.hadWork");
}

} // namespace scsim
