/**
 * @file
 * Operand collector: the staging structure between warp issue and
 * execution-unit dispatch (Fig 2 of the paper).
 *
 * Each collector unit (CU) holds one warp instruction while its source
 * operands are fetched from the banked register file.  Allocation
 * pushes one read request per *distinct* source register (repeated
 * registers share a single read); when every operand is ready the CU
 * may dispatch and is then freed.
 */

#ifndef SCSIM_CORE_OPERAND_COLLECTOR_HH
#define SCSIM_CORE_OPERAND_COLLECTOR_HH

#include <vector>

#include "core/reg_file.hh"
#include "isa/instruction.hh"

namespace scsim {

struct CollectorUnit
{
    bool busy = false;
    WarpSlot warp = kNoWarp;
    Instruction inst;
    std::uint32_t pendingOperands = 0;   //!< bitmask of unread operands
    Cycle allocCycle = 0;

    bool ready() const { return busy && pendingOperands == 0; }
};

class OperandCollector
{
  public:
    explicit OperandCollector(int numCus);

    int size() const { return static_cast<int>(cus_.size()); }
    int freeCount() const { return freeCount_; }
    bool hasFree() const { return freeCount_ > 0; }

    const CollectorUnit &
    unit(int idx) const
    {
        return cus_[static_cast<std::size_t>(idx)];
    }

    /**
     * Allocate a CU for @p inst of warp @p warp, enqueueing its
     * register reads with @p arbiter.
     * @return the CU index, or -1 when all CUs are busy.
     */
    int allocate(WarpSlot warp, const Instruction &inst,
                 RegFileArbiter &arbiter, Cycle now);

    /** A granted read fills the operand slots in @p operandMask. */
    void operandArrived(int cu, std::uint32_t operandMask);

    /** Dispatch happened; return the CU to the free pool. */
    void release(int cu);

    /**
     * Would every source-register bank of @p inst be idle right now?
     * Used by the bank-stealing model to find free bandwidth.
     */
    bool banksIdle(WarpSlot warp, const Instruction &inst,
                   const RegFileArbiter &arbiter) const;

    void reset();

    /** Checkpointing: every CU, including its staged instruction. */
    void saveState(StateWriter &w) const;
    void loadState(StateReader &r);

  private:
    std::vector<CollectorUnit> cus_;
    int freeCount_;
};

} // namespace scsim

#endif // SCSIM_CORE_OPERAND_COLLECTOR_HH
