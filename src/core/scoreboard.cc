#include "core/scoreboard.hh"

#include "common/logging.hh"
#include "common/state_io.hh"

namespace scsim {

bool
Scoreboard::ready(const Instruction &inst) const
{
    if (count_ == 0)
        return true;
    if (inst.dst != kNoReg && pending_[static_cast<std::size_t>(inst.dst)])
        return false;
    for (RegIndex r : inst.srcs)
        if (r != kNoReg && pending_[static_cast<std::size_t>(r)])
            return false;
    return true;
}

void
Scoreboard::markIssue(const Instruction &inst)
{
    if (inst.dst == kNoReg)
        return;
    auto idx = static_cast<std::size_t>(inst.dst);
    scsim_assert(!pending_[idx], "WAW hazard slipped past ready()");
    pending_.set(idx);
    ++count_;
}

void
Scoreboard::completeWrite(RegIndex reg)
{
    scsim_assert(reg != kNoReg, "completing write to no register");
    auto idx = static_cast<std::size_t>(reg);
    scsim_assert(pending_[idx], "completing a write that never issued");
    pending_.reset(idx);
    --count_;
}

bool
Scoreboard::pending(RegIndex reg) const
{
    return reg != kNoReg && pending_[static_cast<std::size_t>(reg)];
}

void
Scoreboard::reset()
{
    pending_.reset();
    count_ = 0;
}

void
Scoreboard::saveState(StateWriter &w) const
{
    for (int word = 0; word < kMaxRegs / 64; ++word) {
        std::uint64_t bits = 0;
        for (int b = 0; b < 64; ++b)
            if (pending_[static_cast<std::size_t>(word * 64 + b)])
                bits |= std::uint64_t(1) << b;
        w.u64("sb.word", bits);
    }
}

void
Scoreboard::loadState(StateReader &r)
{
    pending_.reset();
    count_ = 0;
    for (int word = 0; word < kMaxRegs / 64; ++word) {
        std::uint64_t bits = r.u64("sb.word");
        for (int b = 0; b < 64; ++b) {
            if (bits & (std::uint64_t(1) << b)) {
                pending_.set(static_cast<std::size_t>(word * 64 + b));
                ++count_;
            }
        }
    }
}

} // namespace scsim
