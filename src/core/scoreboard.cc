#include "core/scoreboard.hh"

#include "common/logging.hh"

namespace scsim {

bool
Scoreboard::ready(const Instruction &inst) const
{
    if (count_ == 0)
        return true;
    if (inst.dst != kNoReg && pending_[static_cast<std::size_t>(inst.dst)])
        return false;
    for (RegIndex r : inst.srcs)
        if (r != kNoReg && pending_[static_cast<std::size_t>(r)])
            return false;
    return true;
}

void
Scoreboard::markIssue(const Instruction &inst)
{
    if (inst.dst == kNoReg)
        return;
    auto idx = static_cast<std::size_t>(inst.dst);
    scsim_assert(!pending_[idx], "WAW hazard slipped past ready()");
    pending_.set(idx);
    ++count_;
}

void
Scoreboard::completeWrite(RegIndex reg)
{
    scsim_assert(reg != kNoReg, "completing write to no register");
    auto idx = static_cast<std::size_t>(reg);
    scsim_assert(pending_[idx], "completing a write that never issued");
    pending_.reset(idx);
    --count_;
}

bool
Scoreboard::pending(RegIndex reg) const
{
    return reg != kNoReg && pending_[static_cast<std::size_t>(reg)];
}

void
Scoreboard::reset()
{
    pending_.reset();
    count_ = 0;
}

} // namespace scsim
