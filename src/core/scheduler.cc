#include "core/scheduler.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/state_io.hh"

namespace scsim {

int
rbaScore(const Instruction &inst, WarpSlot slot,
         const int *bankQueueLen, int numBanks)
{
    int score = 0;
    for (RegIndex reg : inst.srcs) {
        if (reg == kNoReg)
            continue;
        int bank = static_cast<int>(
            (static_cast<unsigned>(reg) + 7u
             * static_cast<unsigned>(slot))
            % static_cast<unsigned>(numBanks));
        score += bankQueueLen[bank];
    }
    return std::min(score, 31);   // 5-bit field in the warp PC table
}

WarpSlot
LrrScheduler::pick(const std::vector<WarpSlot> &ready,
                   const PickContext &)
{
    scsim_assert(!ready.empty(), "pick() with no candidates");
    // First candidate strictly after the last issued slot.
    WarpSlot best = ready.front();
    for (WarpSlot s : ready) {
        if (s > lastIssued_) {
            best = s;
            break;
        }
    }
    return best;
}

void
LrrScheduler::notifyIssued(WarpSlot slot, Cycle)
{
    lastIssued_ = slot;
}

void
LrrScheduler::saveState(StateWriter &w) const
{
    w.i64("lrr.lastIssued", lastIssued_);
}

void
LrrScheduler::loadState(StateReader &r)
{
    lastIssued_ = static_cast<WarpSlot>(r.i64("lrr.lastIssued"));
}

WarpSlot
GtoScheduler::pick(const std::vector<WarpSlot> &ready,
                   const PickContext &ctx)
{
    scsim_assert(!ready.empty(), "pick() with no candidates");
    if (greedyWarp_ != kNoWarp) {
        for (WarpSlot s : ready)
            if (s == greedyWarp_)
                return s;
    }
    // Oldest ready warp: smallest age rank within this scheduler.
    WarpSlot best = ready.front();
    std::uint32_t bestAge = ctx.warps[best].ageRank;
    for (WarpSlot s : ready) {
        std::uint32_t age = ctx.warps[s].ageRank;
        if (age < bestAge) {
            best = s;
            bestAge = age;
        }
    }
    return best;
}

void
GtoScheduler::notifyIssued(WarpSlot slot, Cycle)
{
    greedyWarp_ = slot;
}

void
GtoScheduler::saveState(StateWriter &w) const
{
    w.i64("gto.greedyWarp", greedyWarp_);
}

void
GtoScheduler::loadState(StateReader &r)
{
    greedyWarp_ = static_cast<WarpSlot>(r.i64("gto.greedyWarp"));
}

WarpSlot
RbaScheduler::pick(const std::vector<WarpSlot> &ready,
                   const PickContext &ctx)
{
    scsim_assert(!ready.empty(), "pick() with no candidates");
    scsim_assert(ctx.bankQueueLen != nullptr,
                 "RBA needs bank queue lengths");
    // Hierarchical comparator over {score, ~age}: minimum score wins,
    // oldest (smallest ageRank) on ties.
    WarpSlot best = kNoWarp;
    long bestKey = 0;
    for (WarpSlot s : ready) {
        const WarpContext &w = ctx.warps[s];
        int score = rbaScore(w.nextInst(), s, ctx.bankQueueLen,
                             ctx.numBanks);
        long key = (static_cast<long>(score) << 32)
            | static_cast<long>(w.ageRank);
        if (best == kNoWarp || key < bestKey) {
            best = s;
            bestKey = key;
        }
    }
    return best;
}

sim::Registry<sim::SchedulerFactory> &
sim::schedulerRegistry()
{
    // Seeded on first use with the built-in policies — the registration
    // lines below *are* the catalogue (there is no enum switch left).
    static Registry<SchedulerFactory> reg = [] {
        Registry<SchedulerFactory> r("scheduler");
        r.add("LRR", "loose round robin",
              [](const GpuConfig &) {
                  return std::make_unique<LrrScheduler>();
              });
        r.add("GTO", "greedy-then-oldest (paper baseline)",
              [](const GpuConfig &) {
                  return std::make_unique<GtoScheduler>();
              });
        r.add("RBA", "register-bank-aware: min bank score, oldest ties",
              [](const GpuConfig &) {
                  return std::make_unique<RbaScheduler>();
              });
        return r;
    }();
    return reg;
}

std::unique_ptr<WarpScheduler>
makeScheduler(const GpuConfig &cfg)
{
    return sim::schedulerRegistry().lookup(toString(cfg.scheduler))(cfg);
}

std::unique_ptr<WarpScheduler>
makeScheduler(SchedulerPolicy policy)
{
    GpuConfig cfg;
    cfg.scheduler = policy;
    return makeScheduler(cfg);
}

} // namespace scsim
