/**
 * @file
 * Per-warp execution context held in an SM warp slot.
 */

#ifndef SCSIM_CORE_WARP_HH
#define SCSIM_CORE_WARP_HH

#include <cstdint>

#include "core/scoreboard.hh"
#include "trace/kernel.hh"

namespace scsim {

struct WarpContext
{
    // ---- identity (set at block dispatch) -----------------------------
    WarpSlot slot = kNoWarp;
    int blockSeq = -1;            //!< index into the SM's block table
    int warpInBlock = 0;
    std::uint64_t gwid = 0;       //!< global warp id (addresses, swizzle)
    const WarpProgram *prog = nullptr;

    int cluster = -1;             //!< sub-core this warp is bound to
    int schedInCluster = 0;
    std::uint32_t ageRank = 0;    //!< issue-age within its scheduler
    std::uint32_t regBytes = 0;   //!< register allocation footprint

    // ---- dynamic state -------------------------------------------------
    bool active = false;          //!< slot holds a live warp
    bool exited = false;
    bool atBarrier = false;
    std::uint32_t pc = 0;
    std::uint64_t memIter = 0;    //!< dynamic memory access counter
    Cycle lastIssue = 0;
    /** Sticky hazard marker: the next instruction was seen blocked on
     *  the scoreboard; cleared when any of this warp's writes retires.
     *  Pure scan optimization — never affects scheduling order. */
    bool sbBlocked = false;
    Scoreboard scoreboard;

    bool
    hasNextInst() const
    {
        return prog && pc < prog->code.size();
    }

    const Instruction &
    nextInst() const
    {
        return prog->code[pc];
    }

    /** Eligible to be considered by the warp scheduler this cycle. */
    bool
    schedulable() const
    {
        return active && !exited && !atBarrier && hasNextInst();
    }

    void
    reset()
    {
        *this = WarpContext{};
    }
};

} // namespace scsim

#endif // SCSIM_CORE_WARP_HH
