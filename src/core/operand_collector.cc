#include "core/operand_collector.hh"

#include "common/logging.hh"
#include "common/state_io.hh"

namespace scsim {

OperandCollector::OperandCollector(int numCus)
    : cus_(static_cast<std::size_t>(numCus)), freeCount_(numCus)
{
    scsim_assert(numCus > 0, "need at least one collector unit");
}

int
OperandCollector::allocate(WarpSlot warp, const Instruction &inst,
                           RegFileArbiter &arbiter, Cycle now)
{
    if (freeCount_ == 0)
        return -1;
    int idx = -1;
    for (std::size_t i = 0; i < cus_.size(); ++i) {
        if (!cus_[i].busy) {
            idx = static_cast<int>(i);
            break;
        }
    }
    scsim_assert(idx >= 0, "freeCount_ out of sync with CU array");

    CollectorUnit &cu = cus_[static_cast<std::size_t>(idx)];
    cu.busy = true;
    cu.warp = warp;
    cu.inst = inst;
    cu.pendingOperands = 0;
    cu.allocCycle = now;
    --freeCount_;

    // One read per distinct register; duplicates share the grant.
    for (int s = 0; s < 3; ++s) {
        RegIndex reg = inst.srcs[static_cast<std::size_t>(s)];
        if (reg == kNoReg)
            continue;
        bool dup = false;
        std::uint32_t mask = 1u << s;
        for (int p = 0; p < s; ++p) {
            if (inst.srcs[static_cast<std::size_t>(p)] == reg) {
                dup = true;
                break;
            }
        }
        if (dup)
            continue;
        // Extend the mask over any later duplicates of this register.
        for (int p = s + 1; p < 3; ++p)
            if (inst.srcs[static_cast<std::size_t>(p)] == reg)
                mask |= 1u << p;
        cu.pendingOperands |= mask;
        arbiter.pushRead(arbiter.bankOf(reg, warp),
                         ReadRequest{ idx, mask });
    }
    return idx;
}

void
OperandCollector::operandArrived(int cu, std::uint32_t operandMask)
{
    CollectorUnit &unit = cus_[static_cast<std::size_t>(cu)];
    scsim_assert(unit.busy, "operand arrived at a free CU");
    scsim_assert((unit.pendingOperands & operandMask) == operandMask,
                 "operand arrived twice");
    unit.pendingOperands &= ~operandMask;
}

void
OperandCollector::release(int cu)
{
    CollectorUnit &unit = cus_[static_cast<std::size_t>(cu)];
    scsim_assert(unit.busy, "releasing a free CU");
    scsim_assert(unit.pendingOperands == 0,
                 "releasing a CU with pending operands");
    unit.busy = false;
    unit.warp = kNoWarp;
    ++freeCount_;
}

bool
OperandCollector::banksIdle(WarpSlot warp, const Instruction &inst,
                            const RegFileArbiter &arbiter) const
{
    for (RegIndex reg : inst.srcs) {
        if (reg == kNoReg)
            continue;
        if (!arbiter.readIdle(arbiter.bankOf(reg, warp)))
            return false;
    }
    return true;
}

void
OperandCollector::reset()
{
    for (auto &cu : cus_)
        cu = CollectorUnit{};
    freeCount_ = static_cast<int>(cus_.size());
}

void
OperandCollector::saveState(StateWriter &w) const
{
    for (const CollectorUnit &cu : cus_) {
        w.b("cu.busy", cu.busy);
        w.i64("cu.warp", cu.warp);
        w.u64("cu.pending", cu.pendingOperands);
        w.u64("cu.alloc", cu.allocCycle);
        saveInstructionState(w, cu.inst);
    }
}

void
OperandCollector::loadState(StateReader &r)
{
    freeCount_ = 0;
    for (CollectorUnit &cu : cus_) {
        cu.busy = r.b("cu.busy");
        cu.warp = static_cast<WarpSlot>(r.i64("cu.warp"));
        cu.pendingOperands =
            static_cast<std::uint32_t>(r.u64("cu.pending"));
        cu.allocCycle = r.u64("cu.alloc");
        cu.inst = loadInstructionState(r);
        if (!cu.busy)
            ++freeCount_;
    }
}

} // namespace scsim
