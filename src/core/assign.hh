/**
 * @file
 * Warp -> sub-core assignment policies (Section IV-B).
 *
 * Assignment happens once, when a thread block's warps are loaded into
 * the sub-cores' warp PC tables, and is never revisited — the source
 * of the issue-imbalance pathology.  The assignment counter W is
 * per-SM state that continues across blocks, exactly like the
 * hardware's 2-bit up-counter.
 *
 * Policies:
 *  - RoundRobin: subcore = W mod N (hardware baseline).
 *  - SRR: subcore = (W + floor(W/N)) mod N (paper eq. 1) — spreads a
 *    "one long warp every N" pattern perfectly.
 *  - Shuffle: random permutation per group of N warps, so per-sub-core
 *    counts never differ by more than one.
 *  - HashTable: the Fig 7 hardware engine — a T-entry x 8-bit table
 *    whose nibbles drive the two select lines of the sub-core mux
 *    through two 4-bit shift registers; one entry covers 4 consecutive
 *    warps and the table wraps after 4*T warps.  Can be programmed
 *    with the SRR pattern or with random permutations (Shuffle).
 */

#ifndef SCSIM_CORE_ASSIGN_HH
#define SCSIM_CORE_ASSIGN_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "config/gpu_config.hh"
#include "sim/registry.hh"

namespace scsim {

class StateReader;
class StateWriter;

class SubcoreAssigner
{
  public:
    explicit SubcoreAssigner(int numSubcores) : n_(numSubcores) {}
    virtual ~SubcoreAssigner() = default;

    /** Sub-core for the next warp loaded into this SM. */
    virtual int nextSubcore() = 0;

    virtual void reset() = 0;

    /** Checkpointing; stateless policies keep the empty default. */
    virtual void saveState(StateWriter &) const {}
    virtual void loadState(StateReader &) {}

    int numSubcores() const { return n_; }

  protected:
    int n_;
};

class RoundRobinAssigner : public SubcoreAssigner
{
  public:
    using SubcoreAssigner::SubcoreAssigner;
    int nextSubcore() override;
    void reset() override { w_ = 0; }
    void saveState(StateWriter &w) const override;
    void loadState(StateReader &r) override;

  private:
    std::uint64_t w_ = 0;
};

class SrrAssigner : public SubcoreAssigner
{
  public:
    using SubcoreAssigner::SubcoreAssigner;
    int nextSubcore() override;
    void reset() override { w_ = 0; }
    void saveState(StateWriter &w) const override;
    void loadState(StateReader &r) override;

  private:
    std::uint64_t w_ = 0;
};

class ShuffleAssigner : public SubcoreAssigner
{
  public:
    ShuffleAssigner(int numSubcores, std::uint64_t seed);
    int nextSubcore() override;
    void reset() override;
    void saveState(StateWriter &w) const override;
    void loadState(StateReader &r) override;

  private:
    void refill();

    std::uint64_t seed_;
    Rng rng_;
    std::vector<int> perm_;
    std::size_t pos_ = 0;
};

class HashTableAssigner : public SubcoreAssigner
{
  public:
    /**
     * @param entries  table size (4 or 16)
     * Only 4 sub-cores are supported: the hardware mux has exactly two
     * select lines.
     */
    HashTableAssigner(int numSubcores, int entries);

    int nextSubcore() override;
    void reset() override { w_ = 0; }
    void saveState(StateWriter &w) const override;
    void loadState(StateReader &r) override;

    /** Load the SRR pattern (repeats every 16 warps; 4 entries). */
    void programSrr();

    /** Load one random permutation of {0..3} per entry. */
    void programShuffle(Rng &rng);

    /** Raw table access (tests and exotic hash functions). */
    void
    setEntry(int idx, std::uint8_t value)
    {
        table_[static_cast<std::size_t>(idx)] = value;
    }
    std::uint8_t
    entry(int idx) const
    {
        return table_[static_cast<std::size_t>(idx)];
    }
    int entries() const { return static_cast<int>(table_.size()); }

    /** Encode 4 consecutive assignments into one table entry. */
    static std::uint8_t encodeEntry(const int subcores[4]);

  private:
    std::vector<std::uint8_t> table_;
    std::uint64_t w_ = 0;
};

/**
 * Build @p cfg's assignment policy through the registry
 * (sim/registry.hh); throws ConfigError if the policy name is not
 * registered.  @p seed feeds Shuffle's RNG (and the per-SM hash-table
 * programming for HashShuffle); the hash-table size comes from
 * cfg.hashTableEntries.
 */
std::unique_ptr<SubcoreAssigner>
makeAssigner(const GpuConfig &cfg, int numSubcores, std::uint64_t seed);

/** Enum convenience over the registry path (tests). */
std::unique_ptr<SubcoreAssigner>
makeAssigner(AssignPolicy policy, int numSubcores, int hashEntries,
             std::uint64_t seed);

} // namespace scsim

#endif // SCSIM_CORE_ASSIGN_HH
