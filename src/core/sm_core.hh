/**
 * @file
 * Streaming multiprocessor model.
 *
 * Owns the warp table, the thread-block table (with block-granularity
 * resource release — the root cause of sub-core issue imbalance), the
 * issue clusters, the warp -> scheduler assignment engine, and the
 * writeback event queue.
 */

#ifndef SCSIM_CORE_SM_CORE_HH
#define SCSIM_CORE_SM_CORE_HH

#include <memory>
#include <vector>

#include "config/gpu_config.hh"
#include "core/assign.hh"
#include "core/issue_cluster.hh"
#include "core/warp.hh"
#include "mem/mem_system.hh"
#include "stats/stats.hh"

namespace scsim {

class StateReader;
class StateWriter;
struct Application;

class SmCore
{
  public:
    SmCore(const GpuConfig &cfg, int smId, MemSystem &mem,
           SimStats &stats);

    int smId() const { return smId_; }

    /** Could one more block of @p kernel be resident right now? */
    bool canAccept(const KernelDesc &kernel) const;

    /** A kernel's block must fit in an *empty* SM, or it never runs. */
    static void checkKernelFits(const GpuConfig &cfg,
                                const KernelDesc &kernel);

    /** Place block @p blockId of @p kernel (caller checked canAccept). */
    void acceptBlock(const KernelDesc &kernel, int blockId, Cycle now);

    void cycle(Cycle now);

    /** Any resident block or in-flight event? */
    bool busy() const;

    /**
     * Earliest future cycle at which this SM can make progress, given
     * the current cycle just executed; kNoCycle when idle.
     */
    Cycle nextWake(Cycle now) const;

    /** Idle skip notification (collapses RBA queue history). */
    void onIdleSkip();

    void reset();

    /**
     * Checkpointing.  Kernel pointers (block table, warp programs)
     * are serialized as indices into @p app and re-resolved on load,
     * so a snapshot is only valid against the identical application —
     * the surrounding frame pins the job key to enforce that.
     */
    void saveState(StateWriter &w, const Application &app) const;
    void loadState(StateReader &r, const Application &app);

    // ---- callbacks used by IssueCluster -------------------------------
    WarpContext *warpTable() { return warps_.data(); }
    const WarpContext *warpTable() const { return warps_.data(); }

    bool tryConsumeL1Port();
    Cycle issueMemory(WarpContext &warp, const Instruction &inst,
                      Cycle now);
    void scheduleRegWrite(Cycle when, WarpSlot warp, RegIndex reg);
    void completeRegWrite(WarpSlot warp, RegIndex reg);
    void warpBarrier(WarpSlot slot);
    void warpExit(WarpSlot slot, Cycle now);
    void noteIssue(int cluster, int schedInCluster);
    void noteRfReads(Cycle now, int grants);
    SimStats &stats() { return stats_; }

    // ---- introspection -------------------------------------------------
    int activeBlocks() const { return activeBlocks_; }
    int residentWarps() const;
    const IssueCluster &
    cluster(int i) const
    {
        return *clusters_[static_cast<std::size_t>(i)];
    }
    int numClusters() const { return static_cast<int>(clusters_.size()); }

  private:
    struct BlockState
    {
        bool live = false;
        int blockId = -1;
        const KernelDesc *kernel = nullptr;
        int warpsTotal = 0;
        int warpsExited = 0;
        int barrierArrived = 0;
        std::vector<WarpSlot> slots;
    };

    struct RegWriteEvent
    {
        Cycle when;
        WarpSlot warp;
        RegIndex reg;
        bool
        operator>(const RegWriteEvent &o) const
        {
            return when > o.when;
        }
    };

    void processEvents(Cycle now);
    /** Ideal-migration oracle: rebalance runnable warps (Sec. VII). */
    void migrateForBalance();
    void releaseBarrier(BlockState &block);
    void completeBlock(BlockState &block);
    int pickSpillScheduler(std::uint32_t regBytes) const;

    const GpuConfig &cfg_;
    int smId_;
    MemSystem &mem_;
    SimStats &stats_;

    std::vector<WarpContext> warps_;
    std::vector<WarpSlot> freeSlots_;
    std::vector<BlockState> blocks_;
    std::vector<std::unique_ptr<IssueCluster>> clusters_;
    std::unique_ptr<SubcoreAssigner> assigner_;

    /** Register bytes in use, per cluster. */
    std::vector<std::uint32_t> regBytesUsed_;
    std::uint32_t smemUsed_ = 0;
    int activeBlocks_ = 0;

    /**
     * Pending writeback events as an explicit min-heap on `when`
     * (push_heap/pop_heap with std::greater, i.e. exactly the
     * std::priority_queue discipline).  Keeping the backing vector
     * visible makes the heap — including its tie-order-determining
     * array layout — serializable verbatim, so a restored run pops
     * equal-cycle events in the same order as the original.
     */
    std::vector<RegWriteEvent> events_;

    int l1PortsLeft_ = 0;
    bool rfTrace_ = false;
    /** Did the last executed cycle leave immediately actionable work?
     *  (Set by cycle(); also forced by block arrival and barrier
     *  release, which create readiness without a writeback event.) */
    bool hadWork_ = false;
};

} // namespace scsim

#endif // SCSIM_CORE_SM_CORE_HH
