/**
 * @file
 * Execution pipelines.
 *
 * A pipe accepts one warp instruction per @c initiation cycles and
 * produces its result @c latency cycles after dispatch.  A cluster
 * owns one PipeSet whose pipe counts scale with the number of
 * schedulers sharing the cluster (so a fully-connected SM pools the
 * pipes of all four sub-cores).
 */

#ifndef SCSIM_CORE_EXEC_UNIT_HH
#define SCSIM_CORE_EXEC_UNIT_HH

#include <vector>

#include "config/gpu_config.hh"
#include "isa/instruction.hh"

namespace scsim {

class StateReader;
class StateWriter;

class ExecPipe
{
  public:
    ExecPipe(UnitKind kind, int initiation, int latency)
        : kind_(kind), initiation_(initiation), latency_(latency)
    {}

    UnitKind kind() const { return kind_; }
    int latency() const { return latency_; }
    bool canAccept(Cycle now) const { return now >= busyUntil_; }

    void
    accept(Cycle now)
    {
        busyUntil_ = now + static_cast<Cycle>(initiation_);
    }

    void reset() { busyUntil_ = 0; }

    Cycle busyUntil() const { return busyUntil_; }
    void setBusyUntil(Cycle c) { busyUntil_ = c; }

  private:
    UnitKind kind_;
    int initiation_;
    int latency_;
    Cycle busyUntil_ = 0;
};

class PipeSet
{
  public:
    /** Build the pipes for a cluster hosting @p schedulers schedulers. */
    PipeSet(const GpuConfig &cfg, int schedulers);

    /** A free pipe of @p kind, or nullptr. */
    ExecPipe *findFree(UnitKind kind, Cycle now);

    const std::vector<ExecPipe> &pipes() const { return pipes_; }

    void reset();

    /** Checkpointing: only busyUntil_ is dynamic; shape is config. */
    void saveState(StateWriter &w) const;
    void loadState(StateReader &r);

  private:
    std::vector<ExecPipe> pipes_;
};

} // namespace scsim

#endif // SCSIM_CORE_EXEC_UNIT_HH
