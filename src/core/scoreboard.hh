/**
 * @file
 * Per-warp scoreboard tracking in-flight register writes.
 *
 * An instruction may issue only when none of its source or destination
 * registers has a pending write (RAW and WAW protection; warps issue
 * in order so WAR cannot occur).
 */

#ifndef SCSIM_CORE_SCOREBOARD_HH
#define SCSIM_CORE_SCOREBOARD_HH

#include <bitset>

#include "isa/instruction.hh"

namespace scsim {

class StateReader;
class StateWriter;

class Scoreboard
{
  public:
    /** May @p inst issue without a data hazard? */
    bool ready(const Instruction &inst) const;

    /** Record @p inst 's destination as pending. */
    void markIssue(const Instruction &inst);

    /** A write to @p reg retired (writeback granted). */
    void completeWrite(RegIndex reg);

    bool anyPending() const { return count_ != 0; }
    int pendingCount() const { return count_; }
    bool pending(RegIndex reg) const;

    void reset();

    /** Checkpointing: the pending mask as four u64 words. */
    void saveState(StateWriter &w) const;
    void loadState(StateReader &r);

  private:
    static constexpr int kMaxRegs = 256;
    std::bitset<kMaxRegs> pending_;
    int count_ = 0;
};

} // namespace scsim

#endif // SCSIM_CORE_SCOREBOARD_HH
