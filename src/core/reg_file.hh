/**
 * @file
 * Banked register file with a per-bank request arbiter.
 *
 * One cluster's register file exposes B banks.  Collector units push
 * read requests (one per distinct source register); execution-unit
 * writebacks push write requests.  Each cycle a bank grants one read
 * and one write (the write port rides the execution-unit result bus).
 * The read-queue lengths are exported for the RBA scheduler's scoring
 * logic.
 */

#ifndef SCSIM_CORE_REG_FILE_HH
#define SCSIM_CORE_REG_FILE_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.hh"

namespace scsim {

class StateReader;
class StateWriter;

/** A pending operand read for collector unit @c cu. */
struct ReadRequest
{
    int cu = -1;
    std::uint32_t operandMask = 0;   //!< operand slots this read fills
};

/** A pending result write for warp @c warp, register @c reg. */
struct WriteRequest
{
    WarpSlot warp = kNoWarp;
    RegIndex reg = kNoReg;
};

/** Output of one arbitration cycle. */
struct ArbGrants
{
    std::vector<ReadRequest> reads;
    std::vector<WriteRequest> writes;
    int conflictCycles = 0;     //!< banks left with waiting readers
    void
    clear()
    {
        reads.clear();
        writes.clear();
        conflictCycles = 0;
    }
};

class RegFileArbiter
{
  public:
    explicit RegFileArbiter(int numBanks);

    int numBanks() const { return numBanks_; }

    /** Compiler/hardware swizzle: operand @p reg of warp slot @p w.
     *  The slot is spread by an odd multiplier so adjacent slots do
     *  not alias their hot registers onto neighbouring banks (mod 2 it
     *  reduces to the plain parity swizzle of the 2-bank sub-core). */
    int
    bankOf(RegIndex reg, WarpSlot w) const
    {
        return static_cast<int>(
            (static_cast<unsigned>(reg) + 7u * static_cast<unsigned>(w))
            % static_cast<unsigned>(numBanks_));
    }

    void pushRead(int bank, ReadRequest req);
    void pushWrite(int bank, WriteRequest req);

    /**
     * Grant at most one read and one write per bank, appending grants
     * to @p out.
     */
    void arbitrate(ArbGrants &out);

    /** Current read-queue length of @p bank (ground truth, no delay). */
    int
    readQueueLen(int bank) const
    {
        return static_cast<int>(
            readQ_[static_cast<std::size_t>(bank)].size());
    }

    bool anyPending() const { return pendingOps_ != 0; }

    /** Banks whose read queue is currently empty (bank stealing). */
    bool
    readIdle(int bank) const
    {
        return readQ_[static_cast<std::size_t>(bank)].empty();
    }

    void reset();

    /** Checkpointing: per-bank queues in FIFO order. */
    void saveState(StateWriter &w) const;
    void loadState(StateReader &r);

  private:
    int numBanks_;
    std::vector<std::deque<ReadRequest>> readQ_;
    std::vector<std::deque<WriteRequest>> writeQ_;
    std::uint64_t pendingOps_ = 0;
};

} // namespace scsim

#endif // SCSIM_CORE_REG_FILE_HH
