/**
 * @file
 * The sweep farm daemon behind `scsim_cli serve`.
 *
 * One poll() loop owns every socket: the Unix/TCP listeners, each
 * client session, and a self-pipe the dispatcher's worker threads (and
 * signal handlers) write to.  All protocol work — frame reassembly,
 * submission validation, journal appends, result streaming — happens
 * on this one thread, so sweeps, sessions and journals need no locks
 * of their own; only the dispatcher's completion queue crosses the
 * thread boundary.
 *
 * Sweep lifecycle: a submit is validated whole (exactly like a local
 * SweepEngine run — every duplicate tag and invalid config reported at
 * once, before any job runs), adopted from its spec-hash-pinned
 * journal in the state directory when the client asked to resume,
 * acknowledged with scsim-accept, and its remaining jobs handed to the
 * shared dispatcher.  Every finished job is durably journaled before
 * its scsim-jobdone is streamed, so a daemon crash or SIGKILL'd sweep
 * resumes from the last fsync.  A client that disconnects mid-sweep
 * detaches it — the jobs keep running and keep journaling, which is
 * also exactly what `submit --detach` asks for from the start.
 *
 * Shutdown (stop(), async-signal-safe): in-flight jobs finish and are
 * journaled; unclaimed jobs are abandoned for a later `--resume`.
 */

#ifndef SCSIM_FARM_FARM_SERVER_HH
#define SCSIM_FARM_FARM_SERVER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "farm/dispatcher.hh"
#include "farm/protocol.hh"
#include "farm/socket.hh"
#include "runner/journal.hh"
#include "runner/wire.hh"

namespace scsim::farm {

struct FarmServerOptions
{
    std::string socketPath;  //!< Unix socket; empty = no Unix listener
    int tcpPort = -1;        //!< loopback TCP; -1 = none, 0 = ephemeral

    int workers = 4;
    std::string cacheDir;            //!< shared result cache
    std::uint64_t cacheMaxBytes = 0; //!< disk cap; 0 = unbounded

    /** Journal directory (one `<spec-hash>.journal` per sweep spec);
     *  empty disables journaling and `--resume`. */
    std::string stateDir;

    double jobTimeoutSec = 0.0;  //!< per-job deadline; 0 = none
    int crashAttempts = 3;       //!< spawns before a crash is final
    std::string selfExe;         //!< run-job binary; empty = self
    bool quiet = false;          //!< suppress per-event inform lines

    /**
     * Worker snapshot period (simulated cycles); 0 = off.  Snapshots
     * land in `<stateDir>/snapshots`, so checkpointing requires a
     * state directory; a daemon restart or killed worker then resumes
     * an in-flight job from its snapshot instead of cycle 0.
     */
    std::uint64_t checkpointCycles = 0;

    // ---- admission control & liveness ---------------------------------

    /**
     * Cap on jobs queued + in flight across all sweeps; a submission
     * that would push past it gets scsim-busy ("queue-full") instead
     * of being admitted.  0 = unbounded (the pre-v2 behaviour).
     */
    std::uint64_t maxQueuedJobs = 0;

    /** Cap on concurrently active sweeps submitted by one connection;
     *  over it, scsim-busy ("client-cap").  0 = unbounded. */
    std::uint64_t maxSweepsPerClient = 0;

    /**
     * Disconnect a connection that owns no active sweep and has been
     * silent this long (slow-loris defense: a peer that connects and
     * trickles or sends nothing cannot hold an fd forever).  0 = off.
     */
    double idleTimeoutSec = 0.0;

    /**
     * Cap on bytes buffered for one session awaiting POLLOUT.  A
     * client that stops reading while its results stream would
     * otherwise grow this without bound; at the cap the session is
     * disconnected and its sweeps detach (jobs keep running and
     * journaling — `submit --resume` recovers them).  0 = unbounded.
     */
    std::uint64_t maxWriteBufferBytes = 32u << 20;

    /** listen(2) backlog for both listeners. */
    int listenBacklog = kDefaultListenBacklog;

    /** Kernel SO_SNDBUF for accepted sessions; 0 = OS default.  An
     *  ops/test knob: shrinking it makes maxWriteBufferBytes — not
     *  megabytes of kernel buffering — decide when a slow reader is
     *  shed. */
    int sndbufBytes = 0;
};

class FarmServer
{
  public:
    /** Binds the listeners and starts the worker pool; throws
     *  SimError when the socket path or port is unusable. */
    explicit FarmServer(FarmServerOptions opts);
    ~FarmServer();

    FarmServer(const FarmServer &) = delete;
    FarmServer &operator=(const FarmServer &) = delete;

    /** Serve until stop(); returns after the workers are joined. */
    void run();

    /**
     * Request shutdown.  Safe to call from any thread and from a
     * signal handler (it only flips an atomic and writes one byte to
     * the wake pipe).
     */
    void stop();

    /**
     * Request a graceful drain: stop admitting sweeps, let in-flight
     * jobs finish and journal, notify attached clients, then return
     * from run().  Async-signal-safe like stop().  A second drain()
     * escalates to stop() — two SIGTERMs mean "now".
     */
    void drain();

    /** The TCP port actually bound (ephemeral resolution); -1 if none. */
    int boundTcpPort() const { return tcpPort_; }

    /** One consistent health snapshot (what scsim-status serves). */
    FarmStatus snapshot() const;

  private:
    struct Session
    {
        std::uint64_t id = 0;
        Fd fd;
        runner::FrameAssembler in;
        std::string out;          //!< bytes awaiting POLLOUT
        bool helloDone = false;
        bool closing = false;     //!< flush out, then close
        /** Last accept/read/write progress; idle deadlines key off it. */
        std::chrono::steady_clock::time_point lastActivity;
    };

    struct ActiveSweep
    {
        std::uint64_t id = 0;
        std::uint64_t owner = 0;  //!< session id; 0 = detached
        /** Session that submitted it (kept after detach; session ids
         *  are never reused, so a dead submitter counts against no
         *  one).  The per-client sweep cap counts these. */
        std::uint64_t submitter = 0;
        std::string name;
        std::uint64_t specHash = 0;
        std::vector<std::string> tags;
        std::uint64_t pending = 0;  //!< jobs not yet completed
        SweepDoneMsg tally;
        std::unique_ptr<runner::JournalWriter> journal;
    };

    struct CompletionEvent
    {
        std::uint64_t sweepId = 0;
        std::size_t index = 0;
        runner::JobResult result;
    };

    void onCompletion(std::uint64_t sweepId, std::size_t index,
                      runner::JobResult r);
    void drainCompletions();
    void acceptOn(Fd &listener);
    void handleReadable(Session &s);
    void handleFrame(Session &s, const std::string &frame);
    void handleSubmit(Session &s, SubmitMsg msg);
    void finishSweepIfDone(ActiveSweep &sw);
    void sendFrame(Session &s, const std::string &frame);
    void flushOut(Session &s);
    void closeSession(std::uint64_t id);
    Session *sessionById(std::uint64_t id);

    bool ownsSweep(std::uint64_t sessionId) const;
    std::uint64_t oldestIdleSession() const;
    void sendBusy(Session &s, const char *reason,
                  std::uint64_t retryAfterMs);
    int pollTimeoutMs(std::chrono::steady_clock::time_point now) const;
    void enforceIdleDeadlines(std::chrono::steady_clock::time_point now);
    void performDrain();

    FarmServerOptions opts_;
    Fd unixListener_;
    Fd tcpListener_;
    int tcpPort_ = -1;
    int wakeRead_ = -1;
    int wakeWrite_ = -1;
    std::atomic<bool> stopRequested_{ false };
    std::atomic<bool> drainRequested_{ false };
    bool draining_ = false;  //!< poll thread latched the drain
    std::chrono::steady_clock::time_point start_;
    std::chrono::steady_clock::time_point acceptPausedUntil_{};

    // Degradation counters (poll thread only; see FarmStatus).
    std::uint64_t submitsRejected_ = 0;
    std::uint64_t idleDisconnects_ = 0;
    std::uint64_t slowReaderDisconnects_ = 0;
    std::uint64_t connectionsShed_ = 0;
    std::uint64_t acceptFailures_ = 0;
    std::uint64_t staleCompletions_ = 0;
    bool staleWarned_ = false;
    std::set<int> warnedAcceptErrnos_;

    std::unique_ptr<Dispatcher> dispatcher_;
    std::mutex completionsMutex_;
    std::deque<CompletionEvent> completions_;

    std::uint64_t nextSessionId_ = 1;
    std::uint64_t nextSweepId_ = 1;
    std::vector<std::unique_ptr<Session>> sessions_;
    std::map<std::uint64_t, ActiveSweep> sweeps_;
    std::uint64_t sweepsCompleted_ = 0;
};

} // namespace scsim::farm

#endif // SCSIM_FARM_FARM_SERVER_HH
