/**
 * @file
 * The sweep farm daemon behind `scsim_cli serve`.
 *
 * One poll() loop owns every socket: the Unix/TCP listeners, each
 * client session, and a self-pipe the dispatcher's worker threads (and
 * signal handlers) write to.  All protocol work — frame reassembly,
 * submission validation, journal appends, result streaming — happens
 * on this one thread, so sweeps, sessions and journals need no locks
 * of their own; only the dispatcher's completion queue crosses the
 * thread boundary.
 *
 * Sweep lifecycle: a submit is validated whole (exactly like a local
 * SweepEngine run — every duplicate tag and invalid config reported at
 * once, before any job runs), adopted from its spec-hash-pinned
 * journal in the state directory when the client asked to resume,
 * acknowledged with scsim-accept, and its remaining jobs handed to the
 * shared dispatcher.  Every finished job is durably journaled before
 * its scsim-jobdone is streamed, so a daemon crash or SIGKILL'd sweep
 * resumes from the last fsync.  A client that disconnects mid-sweep
 * detaches it — the jobs keep running and keep journaling, which is
 * also exactly what `submit --detach` asks for from the start.
 *
 * Shutdown (stop(), async-signal-safe): in-flight jobs finish and are
 * journaled; unclaimed jobs are abandoned for a later `--resume`.
 */

#ifndef SCSIM_FARM_FARM_SERVER_HH
#define SCSIM_FARM_FARM_SERVER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "farm/dispatcher.hh"
#include "farm/protocol.hh"
#include "farm/socket.hh"
#include "runner/journal.hh"
#include "runner/wire.hh"

namespace scsim::farm {

struct FarmServerOptions
{
    std::string socketPath;  //!< Unix socket; empty = no Unix listener
    int tcpPort = -1;        //!< loopback TCP; -1 = none, 0 = ephemeral

    int workers = 4;
    std::string cacheDir;            //!< shared result cache
    std::uint64_t cacheMaxBytes = 0; //!< disk cap; 0 = unbounded

    /** Journal directory (one `<spec-hash>.journal` per sweep spec);
     *  empty disables journaling and `--resume`. */
    std::string stateDir;

    double jobTimeoutSec = 0.0;  //!< per-job deadline; 0 = none
    int crashAttempts = 3;       //!< spawns before a crash is final
    std::string selfExe;         //!< run-job binary; empty = self
    bool quiet = false;          //!< suppress per-event inform lines

    /**
     * Worker snapshot period (simulated cycles); 0 = off.  Snapshots
     * land in `<stateDir>/snapshots`, so checkpointing requires a
     * state directory; a daemon restart or killed worker then resumes
     * an in-flight job from its snapshot instead of cycle 0.
     */
    std::uint64_t checkpointCycles = 0;
};

class FarmServer
{
  public:
    /** Binds the listeners and starts the worker pool; throws
     *  SimError when the socket path or port is unusable. */
    explicit FarmServer(FarmServerOptions opts);
    ~FarmServer();

    FarmServer(const FarmServer &) = delete;
    FarmServer &operator=(const FarmServer &) = delete;

    /** Serve until stop(); returns after the workers are joined. */
    void run();

    /**
     * Request shutdown.  Safe to call from any thread and from a
     * signal handler (it only flips an atomic and writes one byte to
     * the wake pipe).
     */
    void stop();

    /** The TCP port actually bound (ephemeral resolution); -1 if none. */
    int boundTcpPort() const { return tcpPort_; }

    /** One consistent health snapshot (what scsim-status serves). */
    FarmStatus snapshot() const;

  private:
    struct Session
    {
        std::uint64_t id = 0;
        Fd fd;
        runner::FrameAssembler in;
        std::string out;          //!< bytes awaiting POLLOUT
        bool helloDone = false;
        bool closing = false;     //!< flush out, then close
    };

    struct ActiveSweep
    {
        std::uint64_t id = 0;
        std::uint64_t owner = 0;  //!< session id; 0 = detached
        std::string name;
        std::uint64_t specHash = 0;
        std::vector<std::string> tags;
        std::uint64_t pending = 0;  //!< jobs not yet completed
        SweepDoneMsg tally;
        std::unique_ptr<runner::JournalWriter> journal;
    };

    struct CompletionEvent
    {
        std::uint64_t sweepId = 0;
        std::size_t index = 0;
        runner::JobResult result;
    };

    void onCompletion(std::uint64_t sweepId, std::size_t index,
                      runner::JobResult r);
    void drainCompletions();
    void acceptOn(Fd &listener);
    void handleReadable(Session &s);
    void handleFrame(Session &s, const std::string &frame);
    void handleSubmit(Session &s, SubmitMsg msg);
    void finishSweepIfDone(ActiveSweep &sw);
    void sendFrame(Session &s, const std::string &frame);
    void flushOut(Session &s);
    void closeSession(std::uint64_t id);
    Session *sessionById(std::uint64_t id);

    FarmServerOptions opts_;
    Fd unixListener_;
    Fd tcpListener_;
    int tcpPort_ = -1;
    int wakeRead_ = -1;
    int wakeWrite_ = -1;
    std::atomic<bool> stopRequested_{ false };
    std::chrono::steady_clock::time_point start_;

    std::unique_ptr<Dispatcher> dispatcher_;
    std::mutex completionsMutex_;
    std::deque<CompletionEvent> completions_;

    std::uint64_t nextSessionId_ = 1;
    std::uint64_t nextSweepId_ = 1;
    std::vector<std::unique_ptr<Session>> sessions_;
    std::map<std::uint64_t, ActiveSweep> sweeps_;
    std::uint64_t sweepsCompleted_ = 0;
};

} // namespace scsim::farm

#endif // SCSIM_FARM_FARM_SERVER_HH
