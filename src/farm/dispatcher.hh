/**
 * @file
 * The farm's job dispatcher: a shared, work-stealing worker pool over
 * crash-isolated subprocesses.
 *
 * Every submitted sweep contributes its jobs to one ready pool
 * ordered longest-expected-first; the N worker threads steal the
 * costliest runnable job regardless of which sweep (or client) it
 * came from, so a small interactive submission is never serialized
 * behind a big batch, and the tail of every sweep shortens.  Each
 * claimed job runs through runner/runJobIsolated(): its own `run-job`
 * subprocess, wall-clock deadline with SIGTERM -> SIGKILL escalation,
 * spawn retries with doubling backoff — a SIGKILL'd worker's job is
 * respawned, not lost, and a deterministic crash is recorded as
 * JobStatus::Crashed after its attempts run out.  That containment
 * contract (PR2/PR3) is the farm's SLO story: one poisoned job
 * degrades one result, never the daemon.
 *
 * Deduplication: results flow through the shared content-addressed
 * ResultCache, so identical configs across clients are computed once.
 * A claimed job whose key is already *in flight* is parked instead of
 * run; when the computation lands, every parked duplicate is
 * completed from it (counted as coalesced).  A key that already
 * finished is a plain cache hit.
 *
 * Threading: enqueue() and the completion callback may race with the
 * workers; the callback is invoked from worker threads and must do
 * its own synchronization (the server pushes to a queue and wakes its
 * poll loop).
 */

#ifndef SCSIM_FARM_DISPATCHER_HH
#define SCSIM_FARM_DISPATCHER_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "runner/job_result.hh"
#include "runner/result_cache.hh"
#include "runner/sweep_spec.hh"

namespace scsim::farm {

class Dispatcher
{
  public:
    struct Options
    {
        int workers = 4;          //!< worker threads (>= 1)
        std::string selfExe;      //!< run-job binary; empty = self
        double jobTimeoutSec = 0; //!< per-job deadline; 0 = none
        int crashAttempts = 3;    //!< spawns before a crash is final
        std::string cacheDir;     //!< shared result cache; "" = memory
        std::uint64_t cacheMaxBytes = 0;  //!< disk cap; 0 = unbounded

        /** Worker snapshot period (cycles); 0 = checkpointing off. */
        std::uint64_t checkpointCycles = 0;

        /** Directory for worker snapshot files; "" = off. */
        std::string snapshotDir;
    };

    /** Called (from a worker thread) once per enqueued job. */
    using Completion = std::function<void(
        std::uint64_t sweepId, std::size_t index,
        runner::JobResult result)>;

    Dispatcher(Options opts, Completion onComplete);
    ~Dispatcher();

    Dispatcher(const Dispatcher &) = delete;
    Dispatcher &operator=(const Dispatcher &) = delete;

    /** Add one job; the completion fires exactly once for it. */
    void enqueue(std::uint64_t sweepId, std::size_t index,
                 const runner::SimJob &job);

    /**
     * Stop claiming without waiting: wakes every worker so each
     * finishes its in-flight job and exits.  Completions still fire.
     * A later stop() joins the threads; until then queueDepth() shows
     * the abandoned jobs (--resume picks them up after restart).
     */
    void beginDrain();

    /** Stop claiming; finish in-flight jobs; join the workers. */
    void stop();

    runner::ResultCache &cache() { return cache_; }

    // ---- introspection (thread-safe) ----------------------------------
    int workers() const { return static_cast<int>(threads_.size()); }
    int busyWorkers() const;
    std::uint64_t queueDepth() const;  //!< ready + parked duplicates
    std::uint64_t inFlight() const;
    std::uint64_t completed() const;
    std::uint64_t failedJobs() const;   //!< Failed + Hang
    std::uint64_t crashedJobs() const;
    std::uint64_t coalesced() const;

  private:
    struct Queued
    {
        std::uint64_t sweepId;
        std::size_t index;
        runner::SimJob job;
        std::uint64_t key;
        double cost;
    };

    void workerLoop();
    bool claim(Queued &out);
    void finish(Queued q, runner::JobResult r);

    Options opts_;
    Completion onComplete_;
    runner::ResultCache cache_;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
    std::vector<Queued> ready_;  //!< max-heap by cost
    std::unordered_map<std::uint64_t, std::vector<Queued>> parked_;
    std::unordered_set<std::uint64_t> inFlightKeys_;
    std::uint64_t parkedCount_ = 0;
    std::uint64_t inFlight_ = 0;
    int busy_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t failed_ = 0;
    std::uint64_t crashed_ = 0;
    std::uint64_t coalesced_ = 0;

    std::vector<std::thread> threads_;
};

} // namespace scsim::farm

#endif // SCSIM_FARM_DISPATCHER_HH
