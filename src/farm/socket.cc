#include "farm/socket.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/logging.hh"

namespace scsim::farm {

namespace {

void
fillUnixAddr(const std::string &path, sockaddr_un &addr)
{
    if (path.size() >= sizeof addr.sun_path)
        scsim_throw(SimError, "socket path too long (%zu bytes): %s",
                    path.size(), path.c_str());
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
}

} // namespace

void
Fd::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Fd
listenUnix(const std::string &path, int backlog)
{
    sockaddr_un addr;
    fillUnixAddr(path, addr);

    Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd.valid())
        scsim_throw(SimError, "socket(AF_UNIX) failed: %s",
                    std::strerror(errno));

    if (::bind(fd.get(), reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0) {
        if (errno != EADDRINUSE)
            scsim_throw(SimError, "cannot bind '%s': %s", path.c_str(),
                        std::strerror(errno));
        // A socket file already exists.  If a daemon answers on it,
        // refuse; if it's the corpse of a dead one, reclaim the path.
        Fd probe(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
        if (probe.valid()
            && ::connect(probe.get(), reinterpret_cast<sockaddr *>(&addr),
                         sizeof addr) == 0)
            scsim_throw(SimError,
                        "another daemon is already serving on '%s'",
                        path.c_str());
        ::unlink(path.c_str());
        if (::bind(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                   sizeof addr) != 0)
            scsim_throw(SimError, "cannot rebind '%s': %s",
                        path.c_str(), std::strerror(errno));
    }
    if (::listen(fd.get(), backlog) != 0)
        scsim_throw(SimError, "listen on '%s' failed: %s", path.c_str(),
                    std::strerror(errno));
    return fd;
}

Fd
listenTcp(int port, int &boundPort, int backlog)
{
    Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd.valid())
        scsim_throw(SimError, "socket(AF_INET) failed: %s",
                    std::strerror(errno));
    int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(fd.get(), reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0)
        scsim_throw(SimError, "cannot bind 127.0.0.1:%d: %s", port,
                    std::strerror(errno));
    if (::listen(fd.get(), backlog) != 0)
        scsim_throw(SimError, "listen on port %d failed: %s", port,
                    std::strerror(errno));

    socklen_t len = sizeof addr;
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0)
        scsim_throw(SimError, "getsockname failed: %s",
                    std::strerror(errno));
    boundPort = ntohs(addr.sin_port);
    return fd;
}

Fd
connectUnix(const std::string &path)
{
    sockaddr_un addr;
    fillUnixAddr(path, addr);

    Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd.valid())
        scsim_throw(SimError, "socket(AF_UNIX) failed: %s",
                    std::strerror(errno));
    if (::connect(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0)
        scsim_throw(SimError,
                    "cannot connect to daemon at '%s': %s — is "
                    "'scsim_cli serve' running?",
                    path.c_str(), std::strerror(errno));
    return fd;
}

Fd
connectTcp(int port)
{
    Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd.valid())
        scsim_throw(SimError, "socket(AF_INET) failed: %s",
                    std::strerror(errno));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0)
        scsim_throw(SimError,
                    "cannot connect to daemon at 127.0.0.1:%d: %s — "
                    "is 'scsim_cli serve' running?",
                    port, std::strerror(errno));
    return fd;
}

bool
sendAll(int fd, const std::string &data)
{
    std::size_t done = 0;
    while (done < data.size()) {
        ssize_t n = ::send(fd, data.data() + done, data.size() - done,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                struct pollfd p = { fd, POLLOUT, 0 };
                ::poll(&p, 1, 1000);
                continue;
            }
            return false;
        }
        done += static_cast<std::size_t>(n);
    }
    return true;
}

long
readSome(int fd, std::string &out)
{
    char buf[16384];
    for (;;) {
        ssize_t n = ::read(fd, buf, sizeof buf);
        if (n < 0 && errno == EINTR)
            continue;
        if (n > 0)
            out.append(buf, static_cast<std::size_t>(n));
        return static_cast<long>(n);
    }
}

void
setNonblocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void
setSendBufferSize(int fd, int bytes)
{
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof bytes);
}

} // namespace scsim::farm
