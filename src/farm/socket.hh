/**
 * @file
 * Thin POSIX socket wrappers for the farm: Unix-domain and loopback
 * TCP, listen and connect, with RAII ownership and the two blocking
 * primitives a simple client needs (sendAll / one read).  The server
 * runs its own nonblocking poll loop over raw fds; these helpers only
 * get it a bound listener.
 *
 * Errors are SimError (setup faults — a missing socket path, a port
 * in use); per-connection I/O failures are returned, not thrown,
 * because a dying peer is business as usual for a daemon.
 */

#ifndef SCSIM_FARM_SOCKET_HH
#define SCSIM_FARM_SOCKET_HH

#include <string>

namespace scsim::farm {

/** An owned file descriptor (closed on destruction, movable). */
class Fd
{
  public:
    Fd() = default;
    explicit Fd(int fd) : fd_(fd) {}
    ~Fd() { close(); }

    Fd(Fd &&other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Fd &
    operator=(Fd &&other) noexcept
    {
        if (this != &other) {
            close();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }
    Fd(const Fd &) = delete;
    Fd &operator=(const Fd &) = delete;

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }
    int release()
    {
        int fd = fd_;
        fd_ = -1;
        return fd;
    }
    void close();

  private:
    int fd_ = -1;
};

/** Default listen(2) backlog for the farm listeners. */
inline constexpr int kDefaultListenBacklog = 64;

/**
 * Bind + listen on a Unix-domain socket at @p path.  An existing
 * socket file that nothing answers on (a previous daemon's remains)
 * is removed and rebound; a live one throws SimError — two daemons
 * must not fight over one path.  @p backlog is the listen(2) queue
 * depth (ServerOptions exposes it; see FarmServerOptions).
 */
Fd listenUnix(const std::string &path,
              int backlog = kDefaultListenBacklog);

/**
 * Bind + listen on loopback TCP @p port (0 = ephemeral).  The port
 * actually bound is written back through @p boundPort.
 */
Fd listenTcp(int port, int &boundPort,
             int backlog = kDefaultListenBacklog);

/** Connect to a Unix-domain socket; throws SimError on failure. */
Fd connectUnix(const std::string &path);

/** Connect to loopback TCP; throws SimError on failure. */
Fd connectTcp(int port);

/** Write all of @p data (blocking); false when the peer went away. */
bool sendAll(int fd, const std::string &data);

/**
 * One blocking read into @p out (appended).  Returns the byte count,
 * 0 on orderly shutdown, -1 on error.
 */
long readSome(int fd, std::string &out);

/** Mark @p fd nonblocking (server loop fds). */
void setNonblocking(int fd);

/**
 * Shrink @p fd's kernel send buffer to roughly @p bytes (the kernel
 * clamps to its minimum).  The server applies this to accepted
 * sessions when FarmServerOptions::sndbufBytes is set, so the
 * write-buffer cap — not megabytes of kernel buffering — decides when
 * a slow reader is shed.  Failure is ignored: it only loosens the
 * bound.
 */
void setSendBufferSize(int fd, int bytes);

} // namespace scsim::farm

#endif // SCSIM_FARM_SOCKET_HH
