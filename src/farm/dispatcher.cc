#include "farm/dispatcher.hh"

#include <algorithm>
#include <chrono>

#include "common/logging.hh"
#include "runner/isolated_run.hh"
#include "runner/job_key.hh"

namespace scsim::farm {

using runner::JobResult;
using runner::JobStatus;

Dispatcher::Dispatcher(Options opts, Completion onComplete)
    : opts_(std::move(opts)), onComplete_(std::move(onComplete)),
      cache_(opts_.cacheDir, opts_.cacheMaxBytes)
{
    int n = std::max(1, opts_.workers);
    threads_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

Dispatcher::~Dispatcher()
{
    stop();
}

void
Dispatcher::beginDrain()
{
    {
        std::lock_guard lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
}

void
Dispatcher::stop()
{
    beginDrain();
    // Idempotent: join() is guarded, so a second stop() (or stop()
    // after beginDrain()) still waits for the workers instead of
    // returning while jobs are in flight.
    for (std::thread &t : threads_)
        if (t.joinable())
            t.join();
}

void
Dispatcher::enqueue(std::uint64_t sweepId, std::size_t index,
                    const runner::SimJob &job)
{
    Queued q{ sweepId, index, job, runner::jobKey(job),
              job.expectedCost() };
    {
        std::lock_guard lock(mutex_);
        ready_.push_back(std::move(q));
        std::push_heap(ready_.begin(), ready_.end(),
                       [](const Queued &a, const Queued &b) {
                           return a.cost < b.cost;
                       });
    }
    cv_.notify_one();
}

bool
Dispatcher::claim(Queued &out)
{
    std::unique_lock lock(mutex_);
    for (;;) {
        // On stop, unclaimed jobs are abandoned (the journal has the
        // finished ones; --resume picks up the rest), so a shutdown
        // waits only for in-flight work.
        if (stopping_)
            return false;
        // Steal the costliest job whose key is not already being
        // computed; duplicates of an in-flight key are parked and
        // completed from that computation when it lands.
        while (!ready_.empty()) {
            std::pop_heap(ready_.begin(), ready_.end(),
                          [](const Queued &a, const Queued &b) {
                              return a.cost < b.cost;
                          });
            Queued q = std::move(ready_.back());
            ready_.pop_back();
            if (inFlightKeys_.count(q.key)) {
                parked_[q.key].push_back(std::move(q));
                ++parkedCount_;
                continue;
            }
            inFlightKeys_.insert(q.key);
            ++inFlight_;
            ++busy_;
            out = std::move(q);
            return true;
        }
        cv_.wait(lock);
    }
}

void
Dispatcher::finish(Queued q, JobResult r)
{
    std::vector<Queued> waiters;
    {
        std::lock_guard lock(mutex_);
        inFlightKeys_.erase(q.key);
        --inFlight_;
        --busy_;
        if (auto it = parked_.find(q.key); it != parked_.end()) {
            waiters = std::move(it->second);
            parked_.erase(it);
            parkedCount_ -= waiters.size();
            coalesced_ += waiters.size();
        }
        auto account = [&](const JobResult &res) {
            ++completed_;
            if (res.status == JobStatus::Failed
                || res.status == JobStatus::Hang)
                ++failed_;
            else if (res.status == JobStatus::Crashed)
                ++crashed_;
        };
        account(r);
        for (std::size_t i = 0; i < waiters.size(); ++i)
            account(r);
    }

    // A parked duplicate is served from the just-landed computation:
    // semantically a cache hit (same key, same bytes), so it is
    // recorded as one.
    for (Queued &w : waiters) {
        JobResult dup = r;
        dup.key = w.key;
        if (dup.ok()) {
            dup.status = JobStatus::Cached;
            dup.cached = true;
            dup.wallMs = 0.0;
            dup.attempts = 0;
        }
        onComplete_(w.sweepId, w.index, std::move(dup));
    }
    onComplete_(q.sweepId, q.index, std::move(r));
}

void
Dispatcher::workerLoop()
{
    Queued q;
    while (claim(q)) {
        JobResult r;
        r.key = q.key;

        bool hit = false;
        try {
            hit = cache_.lookup(r.key, r.stats);
        } catch (const CacheError &e) {
            scsim_warn("farm cache lookup for '%s' failed, treating "
                       "as miss: %s", q.job.tag.c_str(), e.what());
        }
        if (hit) {
            r.status = JobStatus::Cached;
            r.cached = true;
        } else {
            runner::IsolatedRunOptions iso;
            iso.selfExe = opts_.selfExe;
            iso.timeoutSec = opts_.jobTimeoutSec;
            iso.attempts = opts_.crashAttempts;
            iso.checkpointCycles = opts_.checkpointCycles;
            iso.snapshotDir = opts_.snapshotDir;
            auto start = std::chrono::steady_clock::now();
            runJobIsolated(q.job, iso, r);
            r.wallMs = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - start)
                           .count();
            if (r.ok()) {
                try {
                    cache_.store(r.key, r.stats);
                } catch (const CacheError &e) {
                    scsim_warn("farm cache store for '%s' failed, "
                               "result not cached: %s",
                               q.job.tag.c_str(), e.what());
                }
            }
        }
        finish(std::move(q), std::move(r));
    }
}

int
Dispatcher::busyWorkers() const
{
    std::lock_guard lock(mutex_);
    return busy_;
}

std::uint64_t
Dispatcher::queueDepth() const
{
    std::lock_guard lock(mutex_);
    return ready_.size() + parkedCount_;
}

std::uint64_t
Dispatcher::inFlight() const
{
    std::lock_guard lock(mutex_);
    return inFlight_;
}

std::uint64_t
Dispatcher::completed() const
{
    std::lock_guard lock(mutex_);
    return completed_;
}

std::uint64_t
Dispatcher::failedJobs() const
{
    std::lock_guard lock(mutex_);
    return failed_;
}

std::uint64_t
Dispatcher::crashedJobs() const
{
    std::lock_guard lock(mutex_);
    return crashed_;
}

std::uint64_t
Dispatcher::coalesced() const
{
    std::lock_guard lock(mutex_);
    return coalesced_;
}

} // namespace scsim::farm
