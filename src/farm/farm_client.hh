/**
 * @file
 * Client side of the sweep farm: connect, shake hands, submit a
 * SweepSpec, and reassemble the streamed results into exactly the
 * SweepResult a local SweepEngine::run would have returned — which is
 * what makes `scsim_cli submit`'s manifests byte-identical to a local
 * `sweep` run's.
 *
 * All I/O is blocking; the daemon streams one scsim-jobdone per
 * finished job (the per-job progress event) and the client surfaces
 * each through an optional callback before folding it into the result.
 * An scsim-error from the daemon is rethrown here as ConfigError with
 * the daemon's message; a protocol-version-skewed record throws a
 * ConfigError naming both versions (see protocol.hh).
 */

#ifndef SCSIM_FARM_FARM_CLIENT_HH
#define SCSIM_FARM_FARM_CLIENT_HH

#include <functional>
#include <string>

#include "farm/protocol.hh"
#include "farm/socket.hh"
#include "runner/sweep_engine.hh"
#include "runner/wire.hh"

namespace scsim::farm {

class FarmClient
{
  public:
    /** Connect + hello handshake; throws SimError/ConfigError. */
    static FarmClient connectUnixSocket(const std::string &path);
    static FarmClient connectTcpPort(int port);

    /**
     * How to behave when the daemon answers a submission with
     * scsim-busy (queue full, per-client cap, draining): retry with
     * jittered exponential backoff, honouring the daemon's
     * retry-after hint as a floor.  The jitter stream is seeded, so a
     * given client's backoff schedule is reproducible.  maxAttempts
     * counts submissions, so 1 means "no retries".
     */
    struct RetryPolicy
    {
        int maxAttempts = 8;
        double baseDelayMs = 250.0;
        double maxDelayMs = 10000.0;
        std::uint64_t seed = 0x5eed;
    };

    void setRetryPolicy(RetryPolicy p) { retry_ = p; }
    const RetryPolicy &retryPolicy() const { return retry_; }

    /** Per-job progress: fired for every streamed jobdone, in
     *  completion order, before it is folded into the SweepResult. */
    using ProgressFn = std::function<void(const JobDoneMsg &)>;

    /**
     * Submit @p spec and block until the sweep completes, returning
     * the assembled SweepResult (parallel to spec.jobs, like a local
     * run).  @p resume asks the daemon to adopt this spec's journal.
     */
    runner::SweepResult submit(const runner::SweepSpec &spec,
                               const std::string &name, bool resume,
                               const ProgressFn &onJob = {});

    /** Fire-and-forget submission; returns the daemon's accept. */
    AcceptMsg submitDetached(const runner::SweepSpec &spec,
                             const std::string &name, bool resume);

    /** One health snapshot from the daemon. */
    FarmStatus status();

    /** Ask the daemon to drain (finish in-flight work, then exit);
     *  returns its ack describing what is left to do. */
    DrainAckMsg drain();

    /** The server's hello (build/version info), for display. */
    const HelloMsg &serverHello() const { return server_; }

  private:
    explicit FarmClient(Fd fd);

    void sendFrame(const std::string &frame);
    /** Next complete frame (blocking); throws SimError on EOF or
     *  transport corruption, ConfigError on an scsim-error record. */
    std::string readFrame();
    AcceptMsg sendSubmit(const runner::SweepSpec &spec,
                         const std::string &name, bool detach,
                         bool resume);

    Fd fd_;
    runner::FrameAssembler in_;
    HelloMsg server_;
    RetryPolicy retry_;
};

} // namespace scsim::farm

#endif // SCSIM_FARM_FARM_CLIENT_HH
