#include "farm/farm_server.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <unordered_set>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"
#include "runner/job_key.hh"

namespace scsim::farm {

using runner::JobResult;
using runner::JobStatus;
using runner::WireDecode;

FarmServer::FarmServer(FarmServerOptions opts) : opts_(std::move(opts))
{
    if (opts_.socketPath.empty() && opts_.tcpPort < 0)
        scsim_throw(SimError,
                    "farm server needs a Unix socket path or a TCP "
                    "port to listen on");
    // Nonblocking listeners: acceptOn() drains every pending
    // connection after a POLLIN and must get EAGAIN, not block, when
    // the backlog is empty.
    if (!opts_.socketPath.empty()) {
        unixListener_ = listenUnix(opts_.socketPath);
        setNonblocking(unixListener_.get());
    }
    if (opts_.tcpPort >= 0) {
        tcpListener_ = listenTcp(opts_.tcpPort, tcpPort_);
        setNonblocking(tcpListener_.get());
    }

    if (!opts_.stateDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(opts_.stateDir, ec);
        if (ec)
            scsim_throw(SimError, "cannot create state dir '%s': %s",
                        opts_.stateDir.c_str(), ec.message().c_str());
    }

    int pipefd[2];
    if (::pipe2(pipefd, O_CLOEXEC | O_NONBLOCK) != 0)
        scsim_throw(SimError, "pipe2 failed: %s", std::strerror(errno));
    wakeRead_ = pipefd[0];
    wakeWrite_ = pipefd[1];

    start_ = std::chrono::steady_clock::now();

    Dispatcher::Options d;
    d.workers = opts_.workers;
    d.selfExe = opts_.selfExe;
    d.jobTimeoutSec = opts_.jobTimeoutSec;
    d.crashAttempts = opts_.crashAttempts;
    d.cacheDir = opts_.cacheDir;
    d.cacheMaxBytes = opts_.cacheMaxBytes;
    if (opts_.checkpointCycles) {
        if (opts_.stateDir.empty())
            scsim_throw(SimError,
                        "checkpointing needs a state directory "
                        "(--state-dir) to hold worker snapshots");
        d.checkpointCycles = opts_.checkpointCycles;
        d.snapshotDir = opts_.stateDir + "/snapshots";
    }
    dispatcher_ = std::make_unique<Dispatcher>(
        std::move(d), [this](std::uint64_t sweepId, std::size_t index,
                             JobResult r) {
            onCompletion(sweepId, index, std::move(r));
        });
}

FarmServer::~FarmServer()
{
    dispatcher_->stop();
    if (wakeRead_ >= 0)
        ::close(wakeRead_);
    if (wakeWrite_ >= 0)
        ::close(wakeWrite_);
    if (!opts_.socketPath.empty())
        ::unlink(opts_.socketPath.c_str());
}

void
FarmServer::stop()
{
    stopRequested_.store(true, std::memory_order_relaxed);
    // One byte to the wake pipe: the only other thing needed here,
    // and the reason this is callable from a signal handler.
    char c = 'q';
    [[maybe_unused]] ssize_t n = ::write(wakeWrite_, &c, 1);
}

void
FarmServer::onCompletion(std::uint64_t sweepId, std::size_t index,
                         JobResult r)
{
    {
        std::lock_guard lock(completionsMutex_);
        completions_.push_back(
            CompletionEvent{ sweepId, index, std::move(r) });
    }
    char c = 'c';
    [[maybe_unused]] ssize_t n = ::write(wakeWrite_, &c, 1);
}

FarmServer::Session *
FarmServer::sessionById(std::uint64_t id)
{
    for (auto &s : sessions_)
        if (s->id == id)
            return s.get();
    return nullptr;
}

void
FarmServer::sendFrame(Session &s, const std::string &frame)
{
    if (s.closing)
        return;
    s.out += runner::envelopeFrame(frame);
    flushOut(s);
}

void
FarmServer::flushOut(Session &s)
{
    while (!s.out.empty()) {
        ssize_t n = ::send(s.fd.get(), s.out.data(), s.out.size(),
                           MSG_NOSIGNAL);
        if (n > 0) {
            s.out.erase(0, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return;  // poll for POLLOUT
        // Peer is gone; drop the backlog and let the loop reap us.
        s.out.clear();
        s.closing = true;
        return;
    }
}

void
FarmServer::closeSession(std::uint64_t id)
{
    // A disconnected client's sweeps keep running detached; their
    // results stay journaled for a later `submit --resume`.
    for (auto &[sweepId, sw] : sweeps_)
        if (sw.owner == id)
            sw.owner = 0;
    sessions_.erase(std::remove_if(sessions_.begin(), sessions_.end(),
                                   [&](const auto &s) {
                                       return s->id == id;
                                   }),
                    sessions_.end());
}

void
FarmServer::acceptOn(Fd &listener)
{
    for (;;) {
        int fd = ::accept(listener.get(), nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return;  // EAGAIN or transient accept failure
        }
        setNonblocking(fd);
        auto s = std::make_unique<Session>();
        s->id = nextSessionId_++;
        s->fd = Fd(fd);
        sessions_.push_back(std::move(s));
    }
}

void
FarmServer::handleReadable(Session &s)
{
    std::string chunk;
    long n = readSome(s.fd.get(), chunk);
    if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
        s.closing = true;
        s.out.clear();
        return;
    }
    if (n < 0)
        return;
    s.in.feed(chunk);
    std::string frame;
    while (!s.closing && s.in.next(frame))
        handleFrame(s, frame);
    if (s.in.corrupt() && !s.closing) {
        sendFrame(s, serializeError(
                         "unrecoverable transport corruption: stream "
                         "is not a sequence of enveloped farm frames"));
        s.closing = true;
    }
}

void
FarmServer::handleFrame(Session &s, const std::string &frame)
{
    try {
        runner::FrameHeader hdr;
        if (!runner::peekFrameHeader(frame, hdr))
            scsim_throw(ConfigError,
                        "unparsable record header (%zu bytes)",
                        frame.size());

        if (!s.helloDone) {
            HelloMsg peer;
            requireRecord(parseHello(frame, peer), frame, "hello");
            requireCompatibleHello(peer);
            s.helloDone = true;
            sendFrame(s, serializeHello(localHello("server")));
            return;
        }
        if (hdr.magic == kSubmitMagic) {
            SubmitMsg msg;
            requireRecord(parseSubmit(frame, msg), frame, "submit");
            handleSubmit(s, std::move(msg));
            return;
        }
        if (hdr.magic == kStatusReqMagic) {
            requireRecord(parseStatusReq(frame), frame,
                          "status request");
            sendFrame(s, serializeStatus(snapshot()));
            return;
        }
        scsim_throw(ConfigError,
                    "unexpected %s record (client must send submit or "
                    "status-req after the handshake)",
                    hdr.magic.c_str());
    } catch (const SimError &e) {
        sendFrame(s, serializeError(e.what()));
        s.closing = true;
    }
}

void
FarmServer::handleSubmit(Session &s, SubmitMsg msg)
{
    // Same whole-spec validation as a local SweepEngine run: every
    // duplicate tag and invalid config reported at once, before any
    // job is queued.
    {
        std::string problems;
        std::unordered_set<std::string> seen;
        for (const runner::SimJob &job : msg.spec.jobs) {
            if (!seen.insert(job.tag).second)
                problems += detail::format(
                    "  duplicate sweep tag '%s' (app '%s')\n",
                    job.tag.c_str(), job.app.name.c_str());
            try {
                job.cfg.validate();
            } catch (const ConfigError &e) {
                problems += detail::format(
                    "  job '%s' (app '%s'): %s\n", job.tag.c_str(),
                    job.app.name.c_str(), e.what());
            }
        }
        if (!problems.empty())
            scsim_throw(ConfigError,
                        "invalid sweep spec; no jobs were queued:\n%s",
                        problems.c_str());
    }

    const std::uint64_t specHash = runner::sweepSpecHash(msg.spec);
    const std::size_t jobCount = msg.spec.jobs.size();

    ActiveSweep sw;
    sw.id = nextSweepId_++;
    sw.owner = msg.detach ? 0 : s.id;
    sw.name = msg.name;
    sw.specHash = specHash;
    sw.tags.reserve(jobCount);
    for (const runner::SimJob &job : msg.spec.jobs)
        sw.tags.push_back(job.tag);
    sw.pending = jobCount;

    // Resume: adopt every intact record of this spec's journal.  The
    // journal file is named by the spec hash, so a stale or foreign
    // file simply fails the pinned-identity check and is ignored.
    std::vector<char> adopted(jobCount, 0);
    std::vector<JobResult> adoptedResults(jobCount);
    std::string journalPath;
    if (!opts_.stateDir.empty())
        journalPath = opts_.stateDir + "/" + runner::keyToHex(specHash)
            + ".journal";
    if (msg.resume && !journalPath.empty()
        && std::filesystem::exists(journalPath)) {
        try {
            runner::JournalContents j = runner::readJournal(journalPath);
            if (j.specHash == specHash && j.jobCount == jobCount) {
                for (runner::JournalRecord &rec : j.records) {
                    if (rec.index >= jobCount
                        || rec.tag != sw.tags[rec.index])
                        continue;
                    adopted[rec.index] = 1;
                    adoptedResults[rec.index] = std::move(rec.result);
                }
            } else {
                scsim_warn("journal '%s' pins a different sweep; "
                           "resuming nothing", journalPath.c_str());
            }
        } catch (const CacheError &e) {
            scsim_warn("cannot read journal '%s'; resuming nothing: %s",
                       journalPath.c_str(), e.what());
        }
    }

    // Fresh journal, re-seeded with the adopted records: rewriting
    // scrubs any half-written tail a SIGKILL left behind.
    if (!journalPath.empty()) {
        try {
            sw.journal = std::make_unique<runner::JournalWriter>(
                journalPath, specHash, jobCount, /*fresh=*/true);
        } catch (const CacheError &e) {
            scsim_warn("cannot open journal '%s'; sweep will not be "
                       "resumable: %s", journalPath.c_str(), e.what());
        }
    }

    AcceptMsg accept;
    accept.sweepId = sw.id;
    accept.specHash = specHash;
    accept.jobCount = jobCount;
    for (std::size_t i = 0; i < jobCount; ++i)
        if (adopted[i])
            ++accept.adopted;
    sendFrame(s, serializeAccept(accept));

    if (!opts_.quiet)
        std::fprintf(stderr,
                     "farm: sweep %llu '%s': %zu jobs (%llu adopted)%s\n",
                     static_cast<unsigned long long>(sw.id),
                     sw.name.c_str(), jobCount,
                     static_cast<unsigned long long>(accept.adopted),
                     msg.detach ? " [detached]" : "");

    auto [it, inserted] = sweeps_.emplace(sw.id, std::move(sw));
    ActiveSweep &active = it->second;
    (void)inserted;

    for (std::size_t i = 0; i < jobCount; ++i) {
        if (!adopted[i])
            continue;
        JobResult &r = adoptedResults[i];
        if (active.journal) {
            try {
                active.journal->append(i, active.tags[i], r);
            } catch (const CacheError &e) {
                scsim_warn("journal append for '%s' failed; a resume "
                           "would re-run it: %s",
                           active.tags[i].c_str(), e.what());
            }
        }
        if (r.status == JobStatus::Cached)
            ++active.tally.cacheHits;
        else
            ++active.tally.executed;
        if (!r.ok() && r.status != JobStatus::Skipped)
            ++active.tally.failed;
        ++active.tally.resumed;
        --active.pending;
        if (active.owner) {
            JobDoneMsg done;
            done.index = i;
            done.adopted = true;
            done.result = std::move(r);
            if (Session *owner = sessionById(active.owner))
                sendFrame(*owner, serializeJobDone(done));
        }
    }

    for (std::size_t i = 0; i < jobCount; ++i)
        if (!adopted[i])
            dispatcher_->enqueue(active.id, i, msg.spec.jobs[i]);

    finishSweepIfDone(active);
}

void
FarmServer::finishSweepIfDone(ActiveSweep &sw)
{
    if (sw.pending != 0)
        return;
    if (sw.owner)
        if (Session *owner = sessionById(sw.owner))
            sendFrame(*owner, serializeSweepDone(sw.tally));
    if (!opts_.quiet)
        std::fprintf(
            stderr,
            "farm: sweep %llu '%s' done: %llu run, %llu cached, "
            "%llu failed, %llu resumed\n",
            static_cast<unsigned long long>(sw.id), sw.name.c_str(),
            static_cast<unsigned long long>(sw.tally.executed),
            static_cast<unsigned long long>(sw.tally.cacheHits),
            static_cast<unsigned long long>(sw.tally.failed),
            static_cast<unsigned long long>(sw.tally.resumed));
    ++sweepsCompleted_;
    sweeps_.erase(sw.id);
}

void
FarmServer::drainCompletions()
{
    std::deque<CompletionEvent> batch;
    {
        std::lock_guard lock(completionsMutex_);
        batch.swap(completions_);
    }
    for (CompletionEvent &ev : batch) {
        auto it = sweeps_.find(ev.sweepId);
        if (it == sweeps_.end())
            continue;  // sweep already finished (cannot happen today)
        ActiveSweep &sw = it->second;

        // Journal before streaming: anything the client saw is on
        // disk, so a daemon crash never loses an acknowledged job.
        if (sw.journal) {
            try {
                sw.journal->append(ev.index, sw.tags[ev.index],
                                   ev.result);
            } catch (const CacheError &e) {
                scsim_warn("journal append for '%s' failed; a resume "
                           "would re-run it: %s",
                           sw.tags[ev.index].c_str(), e.what());
            }
        }
        if (ev.result.cached)
            ++sw.tally.cacheHits;
        else
            ++sw.tally.executed;
        if (!ev.result.ok()
            && ev.result.status != JobStatus::Skipped)
            ++sw.tally.failed;
        --sw.pending;

        if (sw.owner) {
            JobDoneMsg done;
            done.index = ev.index;
            done.adopted = false;
            done.result = std::move(ev.result);
            if (Session *owner = sessionById(sw.owner))
                sendFrame(*owner, serializeJobDone(done));
        }
        finishSweepIfDone(sw);
    }
}

FarmStatus
FarmServer::snapshot() const
{
    FarmStatus st;
    st.build = buildVersion();
    st.protocol = kFarmProtocolVersion;
    st.uptimeMs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
    st.workers = dispatcher_->workers();
    st.busyWorkers = dispatcher_->busyWorkers();
    st.queueDepth = dispatcher_->queueDepth();
    st.inFlight = dispatcher_->inFlight();
    st.sessions = sessions_.size();
    st.sweepsActive = sweeps_.size();
    st.sweepsCompleted = sweepsCompleted_;
    st.jobsCompleted = dispatcher_->completed();
    st.jobsFailed = dispatcher_->failedJobs();
    st.jobsCrashed = dispatcher_->crashedJobs();
    st.jobsCoalesced = dispatcher_->coalesced();
    runner::ResultCache &cache = dispatcher_->cache();
    st.cacheHits = cache.hits();
    st.cacheMisses = cache.misses();
    st.cacheQuarantined = cache.quarantined();
    st.cacheEvicted = cache.evicted();
    st.cacheDiskBytes = cache.diskBytes();
    st.cacheMaxBytes = cache.maxDiskBytes();
    return st;
}

void
FarmServer::run()
{
    while (!stopRequested_.load(std::memory_order_relaxed)) {
        std::vector<struct pollfd> fds;
        fds.push_back({ wakeRead_, POLLIN, 0 });
        if (unixListener_.valid())
            fds.push_back({ unixListener_.get(), POLLIN, 0 });
        if (tcpListener_.valid())
            fds.push_back({ tcpListener_.get(), POLLIN, 0 });
        std::size_t firstSession = fds.size();
        for (auto &s : sessions_) {
            short events = s->closing ? 0 : POLLIN;
            if (!s->out.empty())
                events |= POLLOUT;
            fds.push_back({ s->fd.get(), events, 0 });
        }

        int rc = ::poll(fds.data(), fds.size(), -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            scsim_warn("farm poll failed: %s", std::strerror(errno));
            break;
        }

        if (fds[0].revents & POLLIN) {
            char buf[256];
            while (::read(wakeRead_, buf, sizeof buf) > 0) {
            }
        }
        drainCompletions();

        std::size_t li = 1;
        if (unixListener_.valid()) {
            if (fds[li].revents & POLLIN)
                acceptOn(unixListener_);
            ++li;
        }
        if (tcpListener_.valid() && (fds[li].revents & POLLIN))
            acceptOn(tcpListener_);

        // Sessions may be added during this pass (never removed until
        // the reap below), so iterate the snapshot we polled.
        for (std::size_t k = firstSession; k < fds.size(); ++k) {
            Session *s = nullptr;
            for (auto &cand : sessions_)
                if (cand->fd.get() == fds[k].fd) {
                    s = cand.get();
                    break;
                }
            if (!s)
                continue;
            if (fds[k].revents & POLLOUT)
                flushOut(*s);
            if (!s->closing
                && (fds[k].revents & (POLLIN | POLLHUP | POLLERR)))
                handleReadable(*s);
        }

        std::vector<std::uint64_t> dead;
        for (auto &s : sessions_)
            if (s->closing && s->out.empty())
                dead.push_back(s->id);
        for (std::uint64_t id : dead)
            closeSession(id);
    }

    // Shutdown: in-flight jobs finish (and get journaled below);
    // unclaimed jobs are abandoned for `--resume`.
    dispatcher_->stop();
    drainCompletions();
    for (auto &s : sessions_)
        flushOut(*s);
    sessions_.clear();
}

} // namespace scsim::farm
