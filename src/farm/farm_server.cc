#include "farm/farm_server.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <unordered_set>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"
#include "runner/job_key.hh"

namespace scsim::farm {

using runner::JobResult;
using runner::JobStatus;
using runner::WireDecode;

FarmServer::FarmServer(FarmServerOptions opts) : opts_(std::move(opts))
{
    if (opts_.socketPath.empty() && opts_.tcpPort < 0)
        scsim_throw(SimError,
                    "farm server needs a Unix socket path or a TCP "
                    "port to listen on");
    // Nonblocking listeners: acceptOn() drains every pending
    // connection after a POLLIN and must get EAGAIN, not block, when
    // the backlog is empty.
    if (!opts_.socketPath.empty()) {
        unixListener_ = listenUnix(opts_.socketPath,
                                   opts_.listenBacklog);
        setNonblocking(unixListener_.get());
    }
    if (opts_.tcpPort >= 0) {
        tcpListener_ = listenTcp(opts_.tcpPort, tcpPort_,
                                 opts_.listenBacklog);
        setNonblocking(tcpListener_.get());
    }

    if (!opts_.stateDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(opts_.stateDir, ec);
        if (ec)
            scsim_throw(SimError, "cannot create state dir '%s': %s",
                        opts_.stateDir.c_str(), ec.message().c_str());
    }

    int pipefd[2];
    if (::pipe2(pipefd, O_CLOEXEC | O_NONBLOCK) != 0)
        scsim_throw(SimError, "pipe2 failed: %s", std::strerror(errno));
    wakeRead_ = pipefd[0];
    wakeWrite_ = pipefd[1];

    start_ = std::chrono::steady_clock::now();

    Dispatcher::Options d;
    d.workers = opts_.workers;
    d.selfExe = opts_.selfExe;
    d.jobTimeoutSec = opts_.jobTimeoutSec;
    d.crashAttempts = opts_.crashAttempts;
    d.cacheDir = opts_.cacheDir;
    d.cacheMaxBytes = opts_.cacheMaxBytes;
    if (opts_.checkpointCycles) {
        if (opts_.stateDir.empty())
            scsim_throw(SimError,
                        "checkpointing needs a state directory "
                        "(--state-dir) to hold worker snapshots");
        d.checkpointCycles = opts_.checkpointCycles;
        d.snapshotDir = opts_.stateDir + "/snapshots";
    }
    dispatcher_ = std::make_unique<Dispatcher>(
        std::move(d), [this](std::uint64_t sweepId, std::size_t index,
                             JobResult r) {
            onCompletion(sweepId, index, std::move(r));
        });
}

FarmServer::~FarmServer()
{
    dispatcher_->stop();
    if (wakeRead_ >= 0)
        ::close(wakeRead_);
    if (wakeWrite_ >= 0)
        ::close(wakeWrite_);
    if (!opts_.socketPath.empty())
        ::unlink(opts_.socketPath.c_str());
}

void
FarmServer::stop()
{
    stopRequested_.store(true, std::memory_order_relaxed);
    // One byte to the wake pipe: the only other thing needed here,
    // and the reason this is callable from a signal handler.
    char c = 'q';
    [[maybe_unused]] ssize_t n = ::write(wakeWrite_, &c, 1);
}

void
FarmServer::drain()
{
    // Same async-signal-safety contract as stop(): one atomic, one
    // pipe byte.  A repeat request means the operator is impatient —
    // escalate to the hard stop.
    if (drainRequested_.exchange(true, std::memory_order_relaxed)) {
        stop();
        return;
    }
    char c = 'd';
    [[maybe_unused]] ssize_t n = ::write(wakeWrite_, &c, 1);
}

void
FarmServer::onCompletion(std::uint64_t sweepId, std::size_t index,
                         JobResult r)
{
    {
        std::lock_guard lock(completionsMutex_);
        completions_.push_back(
            CompletionEvent{ sweepId, index, std::move(r) });
    }
    char c = 'c';
    [[maybe_unused]] ssize_t n = ::write(wakeWrite_, &c, 1);
}

FarmServer::Session *
FarmServer::sessionById(std::uint64_t id)
{
    for (auto &s : sessions_)
        if (s->id == id)
            return s.get();
    return nullptr;
}

void
FarmServer::sendFrame(Session &s, const std::string &frame)
{
    if (s.closing)
        return;
    s.out += runner::envelopeFrame(frame);
    flushOut(s);
    if (opts_.maxWriteBufferBytes && !s.closing
        && s.out.size() > opts_.maxWriteBufferBytes) {
        // The peer stopped reading while we stream to it.  Dropping
        // the session detaches its sweeps — the jobs keep running and
        // journaling, so `submit --resume` recovers every result.
        scsim_warn("farm: session %llu buffered %zu bytes (cap %llu); "
                   "disconnecting slow reader — its sweeps continue "
                   "detached",
                   static_cast<unsigned long long>(s.id),
                   s.out.size(),
                   static_cast<unsigned long long>(
                       opts_.maxWriteBufferBytes));
        s.out.clear();
        s.closing = true;
        ++slowReaderDisconnects_;
    }
}

void
FarmServer::flushOut(Session &s)
{
    while (!s.out.empty()) {
        ssize_t n = ::send(s.fd.get(), s.out.data(), s.out.size(),
                           MSG_NOSIGNAL);
        if (n > 0) {
            s.out.erase(0, static_cast<std::size_t>(n));
            s.lastActivity = std::chrono::steady_clock::now();
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return;  // poll for POLLOUT
        // Peer is gone; drop the backlog and let the loop reap us.
        s.out.clear();
        s.closing = true;
        return;
    }
}

void
FarmServer::closeSession(std::uint64_t id)
{
    // A disconnected client's sweeps keep running detached; their
    // results stay journaled for a later `submit --resume`.
    for (auto &[sweepId, sw] : sweeps_)
        if (sw.owner == id)
            sw.owner = 0;
    sessions_.erase(std::remove_if(sessions_.begin(), sessions_.end(),
                                   [&](const auto &s) {
                                       return s->id == id;
                                   }),
                    sessions_.end());
}

bool
FarmServer::ownsSweep(std::uint64_t sessionId) const
{
    for (const auto &[id, sw] : sweeps_)
        if (sw.owner == sessionId)
            return true;
    return false;
}

std::uint64_t
FarmServer::oldestIdleSession() const
{
    // "Idle" = owns no active sweep: not waiting for results, just
    // holding an fd.  Oldest activity first — the likeliest corpse.
    std::uint64_t victim = 0;
    std::chrono::steady_clock::time_point oldest;
    for (const auto &s : sessions_) {
        if (ownsSweep(s->id))
            continue;
        if (!victim || s->lastActivity < oldest) {
            victim = s->id;
            oldest = s->lastActivity;
        }
    }
    return victim;
}

void
FarmServer::acceptOn(Fd &listener)
{
    for (;;) {
        int fd = ::accept(listener.get(), nullptr, nullptr);
        if (fd < 0) {
            int err = errno;
            if (err == EINTR)
                continue;
            if (err == EAGAIN || err == EWOULDBLOCK)
                return;
            ++acceptFailures_;
            if (err == EMFILE || err == ENFILE || err == ENOBUFS
                || err == ENOMEM) {
                // Out of fds (or kernel memory).  Never die: shed the
                // oldest idle connection and retry; with nothing to
                // shed, pause accepting so the loop doesn't spin on a
                // hot listener we cannot service.
                if (std::uint64_t victim = oldestIdleSession()) {
                    ++connectionsShed_;
                    scsim_warn("farm: accept failed (%s); shedding "
                               "idle session %llu to free a "
                               "descriptor",
                               std::strerror(err),
                               static_cast<unsigned long long>(victim));
                    closeSession(victim);
                    continue;
                }
                acceptPausedUntil_ = std::chrono::steady_clock::now()
                    + std::chrono::seconds(1);
                if (warnedAcceptErrnos_.insert(err).second)
                    scsim_warn("farm: accept failed (%s) with no "
                               "sheddable session; pausing accepts "
                               "(counted in status as "
                               "acceptFailures)", std::strerror(err));
                return;
            }
            if (warnedAcceptErrnos_.insert(err).second)
                scsim_warn("farm: accept failed: %s (counted in "
                           "status as acceptFailures; warned once per "
                           "errno)", std::strerror(err));
            return;
        }
        setNonblocking(fd);
        if (opts_.sndbufBytes > 0)
            setSendBufferSize(fd, opts_.sndbufBytes);
        auto s = std::make_unique<Session>();
        s->id = nextSessionId_++;
        s->fd = Fd(fd);
        s->lastActivity = std::chrono::steady_clock::now();
        sessions_.push_back(std::move(s));
    }
}

void
FarmServer::handleReadable(Session &s)
{
    std::string chunk;
    long n = readSome(s.fd.get(), chunk);
    if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
        s.closing = true;
        s.out.clear();
        return;
    }
    if (n < 0)
        return;
    s.lastActivity = std::chrono::steady_clock::now();
    s.in.feed(chunk);
    std::string frame;
    while (!s.closing && s.in.next(frame))
        handleFrame(s, frame);
    if (s.in.corrupt() && !s.closing) {
        sendFrame(s, serializeError(
                         "unrecoverable transport corruption: stream "
                         "is not a sequence of enveloped farm frames"));
        s.closing = true;
    }
}

void
FarmServer::handleFrame(Session &s, const std::string &frame)
{
    try {
        runner::FrameHeader hdr;
        if (!runner::peekFrameHeader(frame, hdr))
            scsim_throw(ConfigError,
                        "unparsable record header (%zu bytes)",
                        frame.size());

        if (!s.helloDone) {
            HelloMsg peer;
            requireRecord(parseHello(frame, peer), frame, "hello");
            requireCompatibleHello(peer);
            s.helloDone = true;
            sendFrame(s, serializeHello(localHello("server")));
            return;
        }
        if (hdr.magic == kSubmitMagic) {
            SubmitMsg msg;
            requireRecord(parseSubmit(frame, msg), frame, "submit");
            handleSubmit(s, std::move(msg));
            return;
        }
        if (hdr.magic == kStatusReqMagic) {
            requireRecord(parseStatusReq(frame), frame,
                          "status request");
            sendFrame(s, serializeStatus(snapshot()));
            return;
        }
        if (hdr.magic == kDrainReqMagic) {
            requireRecord(parseDrainReq(frame), frame,
                          "drain request");
            DrainAckMsg ack;
            ack.inFlight = dispatcher_->inFlight();
            ack.abandoned = dispatcher_->queueDepth();
            ack.sweepsActive = sweeps_.size();
            sendFrame(s, serializeDrainAck(ack));
            // Latched, not immediate: run() checks before its next
            // poll, so this ack is queued (and usually flushed) first.
            drainRequested_.store(true, std::memory_order_relaxed);
            return;
        }
        scsim_throw(ConfigError,
                    "unexpected %s record (client must send submit, "
                    "status-req or drain-req after the handshake)",
                    hdr.magic.c_str());
    } catch (const SimError &e) {
        sendFrame(s, serializeError(e.what()));
        s.closing = true;
    }
}

void
FarmServer::sendBusy(Session &s, const char *reason,
                     std::uint64_t retryAfterMs)
{
    BusyMsg b;
    b.reason = reason;
    b.retryAfterMs = retryAfterMs;
    b.queueDepth = dispatcher_->queueDepth() + dispatcher_->inFlight();
    ++submitsRejected_;
    // Explicitly retryable: the session stays open so the client can
    // back off and resubmit on the same connection.
    sendFrame(s, serializeBusy(b));
}

void
FarmServer::handleSubmit(Session &s, SubmitMsg msg)
{
    // Admission control comes before validation: a refused submission
    // costs the daemon nothing but this reply.
    if (draining_ || drainRequested_.load(std::memory_order_relaxed)) {
        sendBusy(s, "draining", 0);
        return;
    }
    if (opts_.maxSweepsPerClient) {
        std::uint64_t mine = 0;
        for (const auto &[id, sw] : sweeps_)
            if (sw.submitter == s.id)
                ++mine;
        if (mine >= opts_.maxSweepsPerClient) {
            sendBusy(s, "client-cap", 500);
            return;
        }
    }
    if (opts_.maxQueuedJobs) {
        std::uint64_t load = dispatcher_->queueDepth()
            + dispatcher_->inFlight();
        if (load + msg.spec.jobs.size() > opts_.maxQueuedJobs) {
            sendBusy(s, "queue-full", 500);
            return;
        }
    }

    // Same whole-spec validation as a local SweepEngine run: every
    // duplicate tag and invalid config reported at once, before any
    // job is queued.
    {
        std::string problems;
        std::unordered_set<std::string> seen;
        for (const runner::SimJob &job : msg.spec.jobs) {
            if (!seen.insert(job.tag).second)
                problems += detail::format(
                    "  duplicate sweep tag '%s' (app '%s')\n",
                    job.tag.c_str(), job.app.name.c_str());
            try {
                job.cfg.validate();
            } catch (const ConfigError &e) {
                problems += detail::format(
                    "  job '%s' (app '%s'): %s\n", job.tag.c_str(),
                    job.app.name.c_str(), e.what());
            }
        }
        if (!problems.empty())
            scsim_throw(ConfigError,
                        "invalid sweep spec; no jobs were queued:\n%s",
                        problems.c_str());
    }

    const std::uint64_t specHash = runner::sweepSpecHash(msg.spec);
    const std::size_t jobCount = msg.spec.jobs.size();

    ActiveSweep sw;
    sw.id = nextSweepId_++;
    sw.owner = msg.detach ? 0 : s.id;
    sw.submitter = s.id;
    sw.name = msg.name;
    sw.specHash = specHash;
    sw.tags.reserve(jobCount);
    for (const runner::SimJob &job : msg.spec.jobs)
        sw.tags.push_back(job.tag);
    sw.pending = jobCount;

    // Resume: adopt every intact record of this spec's journal.  The
    // journal file is named by the spec hash, so a stale or foreign
    // file simply fails the pinned-identity check and is ignored.
    std::vector<char> adopted(jobCount, 0);
    std::vector<JobResult> adoptedResults(jobCount);
    std::string journalPath;
    if (!opts_.stateDir.empty())
        journalPath = opts_.stateDir + "/" + runner::keyToHex(specHash)
            + ".journal";
    if (msg.resume && !journalPath.empty()
        && std::filesystem::exists(journalPath)) {
        try {
            runner::JournalContents j = runner::readJournal(journalPath);
            if (j.specHash == specHash && j.jobCount == jobCount) {
                for (runner::JournalRecord &rec : j.records) {
                    if (rec.index >= jobCount
                        || rec.tag != sw.tags[rec.index])
                        continue;
                    adopted[rec.index] = 1;
                    adoptedResults[rec.index] = std::move(rec.result);
                }
            } else {
                scsim_warn("journal '%s' pins a different sweep; "
                           "resuming nothing", journalPath.c_str());
            }
        } catch (const CacheError &e) {
            scsim_warn("cannot read journal '%s'; resuming nothing: %s",
                       journalPath.c_str(), e.what());
        }
    }

    // Fresh journal, re-seeded with the adopted records: rewriting
    // scrubs any half-written tail a SIGKILL left behind.
    if (!journalPath.empty()) {
        try {
            sw.journal = std::make_unique<runner::JournalWriter>(
                journalPath, specHash, jobCount, /*fresh=*/true);
        } catch (const CacheError &e) {
            scsim_warn("cannot open journal '%s'; sweep will not be "
                       "resumable: %s", journalPath.c_str(), e.what());
        }
    }

    AcceptMsg accept;
    accept.sweepId = sw.id;
    accept.specHash = specHash;
    accept.jobCount = jobCount;
    for (std::size_t i = 0; i < jobCount; ++i)
        if (adopted[i])
            ++accept.adopted;
    sendFrame(s, serializeAccept(accept));

    if (!opts_.quiet)
        std::fprintf(stderr,
                     "farm: sweep %llu '%s': %zu jobs (%llu adopted)%s\n",
                     static_cast<unsigned long long>(sw.id),
                     sw.name.c_str(), jobCount,
                     static_cast<unsigned long long>(accept.adopted),
                     msg.detach ? " [detached]" : "");

    auto [it, inserted] = sweeps_.emplace(sw.id, std::move(sw));
    ActiveSweep &active = it->second;
    (void)inserted;

    for (std::size_t i = 0; i < jobCount; ++i) {
        if (!adopted[i])
            continue;
        JobResult &r = adoptedResults[i];
        if (active.journal) {
            try {
                active.journal->append(i, active.tags[i], r);
            } catch (const CacheError &e) {
                scsim_warn("journal append for '%s' failed; a resume "
                           "would re-run it: %s",
                           active.tags[i].c_str(), e.what());
            }
        }
        if (r.status == JobStatus::Cached)
            ++active.tally.cacheHits;
        else
            ++active.tally.executed;
        if (!r.ok() && r.status != JobStatus::Skipped)
            ++active.tally.failed;
        ++active.tally.resumed;
        --active.pending;
        if (active.owner) {
            JobDoneMsg done;
            done.index = i;
            done.adopted = true;
            done.result = std::move(r);
            if (Session *owner = sessionById(active.owner))
                sendFrame(*owner, serializeJobDone(done));
        }
    }

    for (std::size_t i = 0; i < jobCount; ++i)
        if (!adopted[i])
            dispatcher_->enqueue(active.id, i, msg.spec.jobs[i]);

    finishSweepIfDone(active);
}

void
FarmServer::finishSweepIfDone(ActiveSweep &sw)
{
    if (sw.pending != 0)
        return;
    if (sw.owner)
        if (Session *owner = sessionById(sw.owner))
            sendFrame(*owner, serializeSweepDone(sw.tally));
    if (!opts_.quiet)
        std::fprintf(
            stderr,
            "farm: sweep %llu '%s' done: %llu run, %llu cached, "
            "%llu failed, %llu resumed\n",
            static_cast<unsigned long long>(sw.id), sw.name.c_str(),
            static_cast<unsigned long long>(sw.tally.executed),
            static_cast<unsigned long long>(sw.tally.cacheHits),
            static_cast<unsigned long long>(sw.tally.failed),
            static_cast<unsigned long long>(sw.tally.resumed));
    ++sweepsCompleted_;
    sweeps_.erase(sw.id);
}

void
FarmServer::drainCompletions()
{
    std::deque<CompletionEvent> batch;
    {
        std::lock_guard lock(completionsMutex_);
        batch.swap(completions_);
    }
    for (CompletionEvent &ev : batch) {
        auto it = sweeps_.find(ev.sweepId);
        if (it == sweeps_.end()) {
            // A completion for a sweep we no longer track.  Nothing
            // reaches here through any path we know of — which is why
            // it must be counted and said out loud, not swallowed: if
            // the accounting invariant breaks, status shows it.
            ++staleCompletions_;
            if (!staleWarned_) {
                staleWarned_ = true;
                scsim_warn("farm: dropped a completion for unknown "
                           "sweep %llu (counted in status as "
                           "staleCompletions; warned once)",
                           static_cast<unsigned long long>(ev.sweepId));
            }
            continue;
        }
        ActiveSweep &sw = it->second;

        // Journal before streaming: anything the client saw is on
        // disk, so a daemon crash never loses an acknowledged job.
        if (sw.journal) {
            try {
                sw.journal->append(ev.index, sw.tags[ev.index],
                                   ev.result);
            } catch (const CacheError &e) {
                scsim_warn("journal append for '%s' failed; a resume "
                           "would re-run it: %s",
                           sw.tags[ev.index].c_str(), e.what());
            }
        }
        if (ev.result.cached)
            ++sw.tally.cacheHits;
        else
            ++sw.tally.executed;
        if (!ev.result.ok()
            && ev.result.status != JobStatus::Skipped)
            ++sw.tally.failed;
        --sw.pending;

        if (sw.owner) {
            JobDoneMsg done;
            done.index = ev.index;
            done.adopted = false;
            done.result = std::move(ev.result);
            if (Session *owner = sessionById(sw.owner))
                sendFrame(*owner, serializeJobDone(done));
        }
        finishSweepIfDone(sw);
    }
}

FarmStatus
FarmServer::snapshot() const
{
    FarmStatus st;
    st.build = buildVersion();
    st.protocol = kFarmProtocolVersion;
    st.uptimeMs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
    st.workers = dispatcher_->workers();
    st.busyWorkers = dispatcher_->busyWorkers();
    st.queueDepth = dispatcher_->queueDepth();
    st.inFlight = dispatcher_->inFlight();
    st.sessions = sessions_.size();
    st.sweepsActive = sweeps_.size();
    st.sweepsCompleted = sweepsCompleted_;
    st.jobsCompleted = dispatcher_->completed();
    st.jobsFailed = dispatcher_->failedJobs();
    st.jobsCrashed = dispatcher_->crashedJobs();
    st.jobsCoalesced = dispatcher_->coalesced();
    runner::ResultCache &cache = dispatcher_->cache();
    st.cacheHits = cache.hits();
    st.cacheMisses = cache.misses();
    st.cacheQuarantined = cache.quarantined();
    st.cacheEvicted = cache.evicted();
    st.cacheDiskBytes = cache.diskBytes();
    st.cacheMaxBytes = cache.maxDiskBytes();
    st.draining = draining_
        || drainRequested_.load(std::memory_order_relaxed);
    st.maxQueuedJobs = opts_.maxQueuedJobs;
    st.maxSweepsPerClient = opts_.maxSweepsPerClient;
    st.submitsRejected = submitsRejected_;
    st.idleDisconnects = idleDisconnects_;
    st.slowReaderDisconnects = slowReaderDisconnects_;
    st.connectionsShed = connectionsShed_;
    st.acceptFailures = acceptFailures_;
    st.staleCompletions = staleCompletions_;
    return st;
}

int
FarmServer::pollTimeoutMs(std::chrono::steady_clock::time_point now)
    const
{
    using namespace std::chrono;
    steady_clock::time_point next{};
    bool have = false;
    auto consider = [&](steady_clock::time_point tp) {
        if (!have || tp < next) {
            next = tp;
            have = true;
        }
    };
    if (opts_.idleTimeoutSec > 0) {
        auto idle = duration_cast<steady_clock::duration>(
            duration<double>(opts_.idleTimeoutSec));
        for (const auto &s : sessions_)
            if (!s->closing && !ownsSweep(s->id))
                consider(s->lastActivity + idle);
    }
    if (acceptPausedUntil_ > now)
        consider(acceptPausedUntil_);
    if (!have)
        return -1;
    auto ms = duration_cast<milliseconds>(next - now).count();
    return ms < 0 ? 0 : static_cast<int>(std::min<long long>(
                            ms + 1, 60'000));
}

void
FarmServer::enforceIdleDeadlines(
    std::chrono::steady_clock::time_point now)
{
    using namespace std::chrono;
    if (opts_.idleTimeoutSec <= 0)
        return;
    auto idle = duration_cast<steady_clock::duration>(
        duration<double>(opts_.idleTimeoutSec));
    for (auto &s : sessions_) {
        if (s->closing || ownsSweep(s->id))
            continue;
        if (now - s->lastActivity < idle)
            continue;
        // Best-effort goodbye; a peer too slow to read even this gets
        // the buffer dropped — holding its fd is the one thing the
        // deadline exists to prevent.
        sendFrame(*s, serializeError(detail::format(
                          "idle timeout: no activity for %.1fs; "
                          "reconnect to continue",
                          opts_.idleTimeoutSec)));
        s->out.clear();
        s->closing = true;
        ++idleDisconnects_;
    }
}

void
FarmServer::performDrain()
{
    draining_ = true;
    if (!opts_.quiet)
        std::fprintf(stderr,
                     "farm: draining: %llu job(s) in flight, %llu "
                     "queued (abandoned for --resume), %zu sweep(s) "
                     "active\n",
                     static_cast<unsigned long long>(
                         dispatcher_->inFlight()),
                     static_cast<unsigned long long>(
                         dispatcher_->queueDepth()),
                     sweeps_.size());

    // Join the workers here, on the poll thread, rather than polling
    // inFlight()==0: the dispatcher decrements its in-flight count
    // before the completion callback queues, so a count-based wait
    // could observe zero with the final result still unqueued.  After
    // the join, every completion is in the queue; drain it once and
    // every finished job is journaled and streamed.
    dispatcher_->stop();
    drainCompletions();

    // Sweeps still pending lost their queued jobs to the drain: tell
    // each attached client exactly where it stands.
    for (auto &[id, sw] : sweeps_) {
        if (!sw.owner)
            continue;
        Session *owner = sessionById(sw.owner);
        if (!owner)
            continue;
        std::size_t total = sw.tags.size();
        sendFrame(*owner,
                  serializeError(detail::format(
                      "daemon draining: sweep '%s' interrupted with "
                      "%zu of %zu jobs journaled; resubmit with "
                      "--resume after the daemon restarts",
                      sw.name.c_str(),
                      total - static_cast<std::size_t>(sw.pending),
                      total)));
    }

    // Patient flush: give slow-but-alive readers a bounded window to
    // take delivery of the tail (jobdones, sweepdones, the goodbyes).
    auto deadline = std::chrono::steady_clock::now()
        + std::chrono::seconds(3);
    for (;;) {
        std::vector<struct pollfd> fds;
        for (auto &s : sessions_) {
            flushOut(*s);
            if (!s->out.empty())
                fds.push_back({ s->fd.get(), POLLOUT, 0 });
        }
        if (fds.empty() || std::chrono::steady_clock::now() >= deadline)
            break;
        ::poll(fds.data(), fds.size(), 100);
    }
    sessions_.clear();
    if (!opts_.quiet)
        std::fprintf(stderr, "farm: drain complete\n");
}

void
FarmServer::run()
{
    while (!stopRequested_.load(std::memory_order_relaxed)) {
        if (drainRequested_.load(std::memory_order_relaxed)) {
            performDrain();
            return;
        }

        auto now = std::chrono::steady_clock::now();
        bool acceptPaused = acceptPausedUntil_ > now;

        std::vector<struct pollfd> fds;
        fds.push_back({ wakeRead_, POLLIN, 0 });
        std::size_t unixIdx = 0, tcpIdx = 0;
        if (unixListener_.valid() && !acceptPaused) {
            unixIdx = fds.size();
            fds.push_back({ unixListener_.get(), POLLIN, 0 });
        }
        if (tcpListener_.valid() && !acceptPaused) {
            tcpIdx = fds.size();
            fds.push_back({ tcpListener_.get(), POLLIN, 0 });
        }
        std::size_t firstSession = fds.size();
        for (auto &s : sessions_) {
            short events = s->closing ? 0 : POLLIN;
            if (!s->out.empty())
                events |= POLLOUT;
            fds.push_back({ s->fd.get(), events, 0 });
        }

        int rc = ::poll(fds.data(), fds.size(), pollTimeoutMs(now));
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            scsim_warn("farm poll failed: %s", std::strerror(errno));
            break;
        }

        if (fds[0].revents & POLLIN) {
            char buf[256];
            while (::read(wakeRead_, buf, sizeof buf) > 0) {
            }
        }
        drainCompletions();

        if (unixIdx && (fds[unixIdx].revents & POLLIN))
            acceptOn(unixListener_);
        if (tcpIdx && (fds[tcpIdx].revents & POLLIN))
            acceptOn(tcpListener_);

        // Sessions may be added during this pass (never removed until
        // the reap below), so iterate the snapshot we polled.
        for (std::size_t k = firstSession; k < fds.size(); ++k) {
            Session *s = nullptr;
            for (auto &cand : sessions_)
                if (cand->fd.get() == fds[k].fd) {
                    s = cand.get();
                    break;
                }
            if (!s)
                continue;
            if (fds[k].revents & POLLOUT)
                flushOut(*s);
            if (!s->closing
                && (fds[k].revents & (POLLIN | POLLHUP | POLLERR)))
                handleReadable(*s);
        }

        enforceIdleDeadlines(std::chrono::steady_clock::now());

        std::vector<std::uint64_t> dead;
        for (auto &s : sessions_)
            if (s->closing && s->out.empty())
                dead.push_back(s->id);
        for (std::uint64_t id : dead)
            closeSession(id);
    }

    // Shutdown: in-flight jobs finish (and get journaled below);
    // unclaimed jobs are abandoned for `--resume`.
    dispatcher_->stop();
    drainCompletions();
    for (auto &s : sessions_)
        flushOut(*s);
    sessions_.clear();
}

} // namespace scsim::farm
