#include "farm/farm_client.hh"

#include <algorithm>
#include <chrono>
#include <random>
#include <thread>

#include "common/logging.hh"
#include "runner/job_key.hh"

namespace scsim::farm {

using runner::JobResult;
using runner::JobStatus;
using runner::SweepResult;
using runner::SweepSpec;
using runner::WireDecode;

FarmClient::FarmClient(Fd fd) : fd_(std::move(fd))
{
    sendFrame(serializeHello(localHello("client")));
    std::string frame = readFrame();
    requireRecord(parseHello(frame, server_), frame, "server hello");
    requireCompatibleHello(server_);
}

FarmClient
FarmClient::connectUnixSocket(const std::string &path)
{
    return FarmClient(connectUnix(path));
}

FarmClient
FarmClient::connectTcpPort(int port)
{
    return FarmClient(connectTcp(port));
}

void
FarmClient::sendFrame(const std::string &frame)
{
    if (!sendAll(fd_.get(), runner::envelopeFrame(frame)))
        scsim_throw(SimError, "daemon connection lost while sending");
}

std::string
FarmClient::readFrame()
{
    std::string frame;
    for (;;) {
        if (in_.next(frame))
            break;
        if (in_.corrupt())
            scsim_throw(ConfigError,
                        "transport corruption from daemon: stream is "
                        "not a sequence of enveloped farm frames");
        std::string chunk;
        long n = readSome(fd_.get(), chunk);
        if (n == 0)
            scsim_throw(SimError,
                        "daemon closed the connection mid-conversation");
        if (n < 0)
            scsim_throw(SimError, "read from daemon failed");
        in_.feed(chunk);
    }

    // A daemon-side rejection arrives as an error record wherever a
    // reply was expected; surface it as the user-level error it is.
    runner::FrameHeader hdr;
    if (runner::peekFrameHeader(frame, hdr)
        && hdr.magic == kErrorMagic) {
        ErrorMsg err;
        requireRecord(parseError(frame, err), frame, "daemon error");
        scsim_throw(ConfigError, "daemon: %s", err.message.c_str());
    }
    return frame;
}

AcceptMsg
FarmClient::sendSubmit(const SweepSpec &spec, const std::string &name,
                       bool detach, bool resume)
{
    SubmitMsg msg;
    msg.name = name;
    msg.detach = detach;
    msg.resume = resume;
    msg.spec = spec;
    const std::string wire = serializeSubmit(msg);

    // Deterministic jitter: the same client (same seed) backs off on
    // the same schedule every run, so a flaky-looking retry path is
    // reproducible in a test or a bug report.
    std::minstd_rand rng(
        static_cast<std::uint32_t>(retry_.seed ^ (retry_.seed >> 32)));
    int attempts = retry_.maxAttempts > 0 ? retry_.maxAttempts : 1;

    for (int attempt = 1;; ++attempt) {
        sendFrame(wire);
        std::string frame = readFrame();

        runner::FrameHeader hdr;
        if (runner::peekFrameHeader(frame, hdr)
            && hdr.magic == kBusyMagic) {
            BusyMsg busy;
            requireRecord(parseBusy(frame, busy), frame, "busy");
            if (attempt >= attempts)
                scsim_throw(SimError,
                            "daemon busy (%s, %llu jobs queued) after "
                            "%d attempt(s); try again later or raise "
                            "--busy-retries",
                            busy.reason.c_str(),
                            static_cast<unsigned long long>(
                                busy.queueDepth),
                            attempt);
            double delay = retry_.baseDelayMs
                * static_cast<double>(1u << std::min(attempt - 1, 20));
            std::uniform_real_distribution<double> jitter(0.5, 1.0);
            delay *= jitter(rng);
            delay = std::max(delay,
                             static_cast<double>(busy.retryAfterMs));
            delay = std::min(delay, retry_.maxDelayMs);
            scsim_warn("daemon busy (%s); retrying submission in "
                       "%.0f ms (attempt %d of %d)",
                       busy.reason.c_str(), delay, attempt, attempts);
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(delay));
            continue;
        }

        AcceptMsg accept;
        requireRecord(parseAccept(frame, accept), frame, "accept");
        if (accept.jobCount != spec.jobs.size())
            scsim_throw(ConfigError,
                        "daemon accepted %llu jobs for a %zu-job spec",
                        static_cast<unsigned long long>(
                            accept.jobCount),
                        spec.jobs.size());
        return accept;
    }
}

SweepResult
FarmClient::submit(const SweepSpec &spec, const std::string &name,
                   bool resume, const ProgressFn &onJob)
{
    auto start = std::chrono::steady_clock::now();
    sendSubmit(spec, name, /*detach=*/false, resume);

    SweepResult out;
    out.tags.reserve(spec.jobs.size());
    for (const runner::SimJob &job : spec.jobs)
        out.tags.push_back(job.tag);
    out.results.resize(spec.jobs.size());
    for (std::size_t i = 0; i < spec.jobs.size(); ++i)
        out.results[i].key = runner::jobKey(spec.jobs[i]);

    std::vector<char> seen(spec.jobs.size(), 0);
    std::size_t received = 0;
    for (;;) {
        std::string frame = readFrame();
        runner::FrameHeader hdr;
        if (!runner::peekFrameHeader(frame, hdr))
            scsim_throw(ConfigError,
                        "unparsable record from daemon (%zu bytes)",
                        frame.size());
        if (hdr.magic == kJobDoneMagic) {
            JobDoneMsg done;
            requireRecord(parseJobDone(frame, done), frame, "jobdone");
            if (done.index >= spec.jobs.size())
                scsim_throw(ConfigError,
                            "daemon reported job %llu of a %zu-job "
                            "sweep",
                            static_cast<unsigned long long>(done.index),
                            spec.jobs.size());
            if (onJob)
                onJob(done);
            std::size_t i = static_cast<std::size_t>(done.index);
            if (!seen[i]) {
                seen[i] = 1;
                ++received;
            }
            out.results[i] = std::move(done.result);
            continue;
        }
        if (hdr.magic == kSweepDoneMagic) {
            SweepDoneMsg fin;
            requireRecord(parseSweepDone(frame, fin), frame,
                          "sweepdone");
            if (received != spec.jobs.size())
                scsim_throw(ConfigError,
                            "daemon finished the sweep after %zu of "
                            "%zu results",
                            received, spec.jobs.size());
            out.executed = fin.executed;
            out.cacheHits = fin.cacheHits;
            out.failed = fin.failed;
            out.resumed = fin.resumed;
            break;
        }
        scsim_throw(ConfigError,
                    "unexpected %s record while streaming results",
                    hdr.magic.c_str());
    }

    out.wallMs = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count();
    return out;
}

AcceptMsg
FarmClient::submitDetached(const SweepSpec &spec,
                           const std::string &name, bool resume)
{
    return sendSubmit(spec, name, /*detach=*/true, resume);
}

FarmStatus
FarmClient::status()
{
    sendFrame(serializeStatusReq());
    std::string frame = readFrame();
    FarmStatus st;
    requireRecord(parseStatus(frame, st), frame, "status");
    return st;
}

DrainAckMsg
FarmClient::drain()
{
    sendFrame(serializeDrainReq());
    std::string frame = readFrame();
    DrainAckMsg ack;
    requireRecord(parseDrainAck(frame, ack), frame, "drain ack");
    return ack;
}

} // namespace scsim::farm
