/**
 * @file
 * The farm wire protocol: what a client and a `scsim_cli serve`
 * daemon say to each other.
 *
 * Every message is a versioned, checksummed record (runner/wire.hh
 * framing, `kFarmProtocolVersion`) wrapped in a transport envelope
 * (`envelopeFrame`) so a socket can carry any number of them and a
 * FrameAssembler can reassemble them from arbitrary read() chunks.
 *
 * A session is strictly client-speaks-first:
 *
 *   client                          server
 *   ------                          ------
 *   scsim-hello          ->
 *                        <-         scsim-hello
 *   scsim-submit         ->
 *                        <-         scsim-accept
 *                        <-         scsim-jobdone   (one per job, in
 *                        <-         scsim-jobdone    completion order)
 *                        <-         scsim-sweepdone
 *
 * or `scsim-status-req` -> `scsim-status` for the monitoring
 * endpoint.  Any server-side rejection (validation failure, version
 * skew in an embedded job record) is an `scsim-error` whose message
 * the client rethrows as the matching SimError.  A version-skewed
 * *protocol* record is answered with an error naming both versions —
 * never a silent checksum failure — which requireRecord() turns into
 * a ConfigError on whichever side sees it.
 *
 * Identity note: a jobdone record carries the complete JobResult
 * (byte-round-trippable, see runner/wire.hh), so a client that
 * assembles them in spec order holds exactly what a local sweep
 * engine would have produced — manifests come out byte-identical.
 */

#ifndef SCSIM_FARM_PROTOCOL_HH
#define SCSIM_FARM_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "runner/job_result.hh"
#include "runner/sweep_spec.hh"
#include "runner/wire.hh"

namespace scsim::farm {

/** Farm protocol version; bump on any message-shape change.
 *  v2: scsim-busy admission replies, scsim-drain-req/-drain-ack, and
 *  the FarmStatus degradation counters. */
inline constexpr std::uint32_t kFarmProtocolVersion = 2;

/** Human-readable build version (CMake project version). */
const char *buildVersion();

// Record magics (exposed for tests that hand-craft frames).
inline constexpr const char *kHelloMagic = "scsim-hello";
inline constexpr const char *kSubmitMagic = "scsim-submit";
inline constexpr const char *kAcceptMagic = "scsim-accept";
inline constexpr const char *kJobDoneMagic = "scsim-jobdone";
inline constexpr const char *kSweepDoneMagic = "scsim-sweepdone";
inline constexpr const char *kStatusReqMagic = "scsim-status-req";
inline constexpr const char *kStatusMagic = "scsim-status";
inline constexpr const char *kErrorMagic = "scsim-error";
inline constexpr const char *kBusyMagic = "scsim-busy";
inline constexpr const char *kDrainReqMagic = "scsim-drain-req";
inline constexpr const char *kDrainAckMagic = "scsim-drain-ack";

// ---- handshake --------------------------------------------------------

/** First message in each direction: who speaks what. */
struct HelloMsg
{
    std::string role;   //!< "client" or "server"
    std::string build;  //!< human-readable build version
    std::uint32_t jobWire = 0;       //!< runner::kJobWireVersion
    std::uint32_t resultFormat = 0;  //!< runner::kResultFormatVersion
};

/** A hello describing this build, with @p role filled in. */
HelloMsg localHello(const char *role);

std::string serializeHello(const HelloMsg &m);
runner::WireDecode parseHello(const std::string &frame, HelloMsg &out);

/**
 * Reject a peer whose embedded-record versions differ from this
 * build's: throws ConfigError naming both sides.  The protocol
 * version itself is checked by the frame header (see requireRecord).
 */
void requireCompatibleHello(const HelloMsg &peer);

// ---- submit -----------------------------------------------------------

/** A sweep submission: the complete spec plus delivery options. */
struct SubmitMsg
{
    std::string name;    //!< client-chosen label (status/debug only)
    bool detach = false; //!< fire-and-forget: no jobdone streaming
    bool resume = false; //!< adopt journaled results for this spec
    runner::SweepSpec spec;
};

std::string serializeSubmit(const SubmitMsg &m);
runner::WireDecode parseSubmit(const std::string &frame, SubmitMsg &out);

/** The server's acknowledgement of a submission. */
struct AcceptMsg
{
    std::uint64_t sweepId = 0;   //!< server-assigned, unique per run
    std::uint64_t specHash = 0;  //!< runner::sweepSpecHash of the spec
    std::uint64_t jobCount = 0;
    std::uint64_t adopted = 0;   //!< jobs resumed from the journal
};

std::string serializeAccept(const AcceptMsg &m);
runner::WireDecode parseAccept(const std::string &frame, AcceptMsg &out);

// ---- streamed results -------------------------------------------------

/** One finished job: the progress event and the result in one. */
struct JobDoneMsg
{
    std::uint64_t index = 0;  //!< position in the submitted spec
    bool adopted = false;     //!< came from the resume journal
    runner::JobResult result;
};

std::string serializeJobDone(const JobDoneMsg &m);
runner::WireDecode parseJobDone(const std::string &frame, JobDoneMsg &out);

/** End of a sweep's stream: the server-side tallies. */
struct SweepDoneMsg
{
    std::uint64_t executed = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t failed = 0;
    std::uint64_t resumed = 0;
};

std::string serializeSweepDone(const SweepDoneMsg &m);
runner::WireDecode parseSweepDone(const std::string &frame,
                                  SweepDoneMsg &out);

// ---- admission control ------------------------------------------------

/**
 * The server's "not now" to a submission: the daemon is alive and the
 * spec may be fine, but admission control refused it — the job queue
 * is full, the client is at its concurrent-sweep cap, or the daemon
 * is draining.  Unlike scsim-error this is explicitly retryable; the
 * client backs off and resubmits (see FarmClient::RetryPolicy).
 */
struct BusyMsg
{
    std::string reason;  //!< "queue-full", "client-cap", "draining"
    std::uint64_t retryAfterMs = 0;  //!< server's backoff hint
    std::uint64_t queueDepth = 0;    //!< jobs queued+running right now
};

std::string serializeBusy(const BusyMsg &m);
runner::WireDecode parseBusy(const std::string &frame, BusyMsg &out);

// ---- drain ------------------------------------------------------------

/**
 * Ask the daemon to drain: stop admitting sweeps, finish and journal
 * everything in flight, notify attached clients, then exit.  The ack
 * is a snapshot of what the daemon still has to do before it goes.
 */
std::string serializeDrainReq();
runner::WireDecode parseDrainReq(const std::string &frame);

struct DrainAckMsg
{
    std::uint64_t inFlight = 0;   //!< jobs running when drain began
    std::uint64_t abandoned = 0;  //!< queued jobs that will not run
    std::uint64_t sweepsActive = 0;
};

std::string serializeDrainAck(const DrainAckMsg &m);
runner::WireDecode parseDrainAck(const std::string &frame,
                                 DrainAckMsg &out);

// ---- status -----------------------------------------------------------

/** The `status --json` payload: one snapshot of daemon health. */
struct FarmStatus
{
    std::string build;
    std::uint32_t protocol = 0;
    std::uint64_t uptimeMs = 0;

    int workers = 0;         //!< configured worker threads
    int busyWorkers = 0;     //!< currently running a job
    std::uint64_t queueDepth = 0;   //!< submitted, not yet claimed
    std::uint64_t inFlight = 0;     //!< claimed, still running
    std::uint64_t sessions = 0;     //!< open client connections
    std::uint64_t sweepsActive = 0;
    std::uint64_t sweepsCompleted = 0;

    std::uint64_t jobsCompleted = 0;  //!< any terminal status
    std::uint64_t jobsFailed = 0;     //!< failed + hang
    std::uint64_t jobsCrashed = 0;
    std::uint64_t jobsCoalesced = 0;  //!< duplicates folded in flight

    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t cacheQuarantined = 0;
    std::uint64_t cacheEvicted = 0;
    std::uint64_t cacheDiskBytes = 0;
    std::uint64_t cacheMaxBytes = 0;

    // Robustness: configured limits and degradation counters.  Each
    // counter names one defensive action the daemon took instead of
    // failing; a healthy farm shows all zeros.
    bool draining = false;          //!< no longer admitting sweeps
    std::uint64_t maxQueuedJobs = 0;      //!< 0 = unbounded
    std::uint64_t maxSweepsPerClient = 0; //!< 0 = unbounded
    std::uint64_t submitsRejected = 0;    //!< scsim-busy replies sent
    std::uint64_t idleDisconnects = 0;    //!< idle-deadline closes
    std::uint64_t slowReaderDisconnects = 0;  //!< write-cap closes
    std::uint64_t connectionsShed = 0;    //!< closed to free an fd
    std::uint64_t acceptFailures = 0;     //!< accept() errno events
    std::uint64_t staleCompletions = 0;   //!< completions w/o a sweep

    /** Hit fraction in [0,1]; 0 when nothing was looked up. */
    double cacheHitRate() const;
};

std::string serializeStatusReq();
runner::WireDecode parseStatusReq(const std::string &frame);

std::string serializeStatus(const FarmStatus &s);
runner::WireDecode parseStatus(const std::string &frame, FarmStatus &out);

/** The status snapshot as a JSON object (for `status --json`). */
std::string statusToJson(const FarmStatus &s);

// ---- errors -----------------------------------------------------------

struct ErrorMsg
{
    std::string message;
};

std::string serializeError(const std::string &message);
runner::WireDecode parseError(const std::string &frame, ErrorMsg &out);

// ---- decode policy ----------------------------------------------------

/**
 * Enforce that @p frame decoded Ok.  On VersionSkew, peeks the frame
 * header and throws ConfigError naming the peer's protocol version
 * and this build's; on Corrupt, throws ConfigError describing the
 * breach.  @p context names the conversation step for the message.
 */
void requireRecord(runner::WireDecode d, const std::string &frame,
                   const char *context);

} // namespace scsim::farm

#endif // SCSIM_FARM_PROTOCOL_HH
