#include "farm/protocol.hh"

#include <cinttypes>
#include <cstdlib>
#include <sstream>

#include "common/logging.hh"
#include "common/text_escape.hh"
#include "runner/job_key.hh"

#ifndef SCSIM_VERSION
#define SCSIM_VERSION "dev"
#endif

namespace scsim::farm {

using runner::WireDecode;

namespace {

void
putLine(std::string &out, const char *key, const std::string &value)
{
    out += key;
    out += ' ';
    out += value;
    out += '\n';
}

void
putU64(std::string &out, const char *key, std::uint64_t v)
{
    putLine(out, key, detail::format("%" PRIu64, v));
}

void
putBool(std::string &out, const char *key, bool v)
{
    putLine(out, key, v ? "1" : "0");
}

std::string
restOfLine(std::istringstream &ls)
{
    std::string rest;
    std::getline(ls, rest);
    if (!rest.empty() && rest.front() == ' ')
        rest.erase(0, 1);
    return rest;
}

/**
 * Unframe a farm record and hand each `key value` payload line to
 * @p fn (false from fn = corrupt).  Shared by every fixed-shape
 * message; submit/jobdone parse by hand because they embed sized
 * binary blocks.
 */
template <typename Fn>
WireDecode
parseLines(const char *magic, const std::string &frame, Fn &&fn)
{
    std::string payload;
    WireDecode d = runner::unframeRecord(magic, kFarmProtocolVersion,
                                         frame, payload);
    if (d != WireDecode::Ok)
        return d;
    std::istringstream in(payload);
    std::string line;
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string key;
        if (!(ls >> key))
            continue;
        if (!fn(key, ls))
            return WireDecode::Corrupt;
    }
    return WireDecode::Ok;
}

} // namespace

const char *
buildVersion()
{
    return SCSIM_VERSION;
}

// ---- hello ------------------------------------------------------------

HelloMsg
localHello(const char *role)
{
    HelloMsg m;
    m.role = role;
    m.build = SCSIM_VERSION;
    m.jobWire = runner::kJobWireVersion;
    m.resultFormat = runner::kResultFormatVersion;
    return m;
}

std::string
serializeHello(const HelloMsg &m)
{
    std::string payload;
    putLine(payload, "role", escapeLine(m.role));
    putLine(payload, "build", escapeLine(m.build));
    putU64(payload, "jobwire", m.jobWire);
    putU64(payload, "resultformat", m.resultFormat);
    return runner::frameRecord(kHelloMagic, kFarmProtocolVersion,
                               payload);
}

WireDecode
parseHello(const std::string &frame, HelloMsg &out)
{
    HelloMsg m;
    WireDecode d = parseLines(
        kHelloMagic, frame, [&](const std::string &key,
                                std::istringstream &ls) {
            if (key == "role")
                m.role = unescapeLine(restOfLine(ls));
            else if (key == "build")
                m.build = unescapeLine(restOfLine(ls));
            else if (key == "jobwire")
                return static_cast<bool>(ls >> m.jobWire);
            else if (key == "resultformat")
                return static_cast<bool>(ls >> m.resultFormat);
            return true;  // unknown keys: forward-compatible
        });
    if (d == WireDecode::Ok)
        out = std::move(m);
    return d;
}

void
requireCompatibleHello(const HelloMsg &peer)
{
    if (peer.jobWire != runner::kJobWireVersion)
        scsim_throw(ConfigError,
                    "wire version mismatch: peer (%s, build %s) sends "
                    "job records v%u, this build (%s) speaks v%u — "
                    "run 'scsim_cli version' on both ends",
                    peer.role.c_str(), peer.build.c_str(),
                    peer.jobWire, SCSIM_VERSION,
                    runner::kJobWireVersion);
    if (peer.resultFormat != runner::kResultFormatVersion)
        scsim_throw(ConfigError,
                    "result format mismatch: peer (%s, build %s) uses "
                    "v%u, this build (%s) uses v%u — run 'scsim_cli "
                    "version' on both ends",
                    peer.role.c_str(), peer.build.c_str(),
                    peer.resultFormat, SCSIM_VERSION,
                    runner::kResultFormatVersion);
}

// ---- submit -----------------------------------------------------------

std::string
serializeSubmit(const SubmitMsg &m)
{
    std::string payload;
    putLine(payload, "name", escapeLine(m.name));
    putBool(payload, "detach", m.detach);
    putBool(payload, "resume", m.resume);
    putU64(payload, "njobs", m.spec.jobs.size());
    for (std::size_t i = 0; i < m.spec.jobs.size(); ++i) {
        std::string job = runner::serializeJob(m.spec.jobs[i]);
        payload += detail::format("job %zu %zu\n", i, job.size());
        payload += job;
    }
    return runner::frameRecord(kSubmitMagic, kFarmProtocolVersion,
                               payload);
}

WireDecode
parseSubmit(const std::string &frame, SubmitMsg &out)
{
    std::string payload;
    WireDecode d = runner::unframeRecord(
        kSubmitMagic, kFarmProtocolVersion, frame, payload);
    if (d != WireDecode::Ok)
        return d;

    SubmitMsg m;
    std::uint64_t njobs = 0;
    std::size_t pos = 0;
    while (pos < payload.size()) {
        auto lineEnd = payload.find('\n', pos);
        if (lineEnd == std::string::npos)
            return WireDecode::Corrupt;
        std::istringstream ls(payload.substr(pos, lineEnd - pos));
        pos = lineEnd + 1;
        std::string key;
        if (!(ls >> key))
            continue;
        if (key == "name") {
            m.name = unescapeLine(restOfLine(ls));
        } else if (key == "detach") {
            int b;
            if (!(ls >> b))
                return WireDecode::Corrupt;
            m.detach = b != 0;
        } else if (key == "resume") {
            int b;
            if (!(ls >> b))
                return WireDecode::Corrupt;
            m.resume = b != 0;
        } else if (key == "njobs") {
            if (!(ls >> njobs))
                return WireDecode::Corrupt;
        } else if (key == "job") {
            std::size_t index = 0, nbytes = 0;
            if (!(ls >> index >> nbytes)
                || index != m.spec.jobs.size()
                || pos + nbytes > payload.size())
                return WireDecode::Corrupt;
            runner::SimJob job;
            // parseJob may throw ConfigError for a config key the
            // peer knows and we don't — let it propagate; the caller
            // reports it as a rejection, not silent corruption.
            if (runner::parseJob(payload.substr(pos, nbytes), job)
                != WireDecode::Ok)
                return WireDecode::Corrupt;
            m.spec.jobs.push_back(std::move(job));
            pos += nbytes;
        }
    }
    if (m.spec.jobs.size() != njobs)
        return WireDecode::Corrupt;
    out = std::move(m);
    return WireDecode::Ok;
}

// ---- accept -----------------------------------------------------------

std::string
serializeAccept(const AcceptMsg &m)
{
    std::string payload;
    putU64(payload, "sweep", m.sweepId);
    putLine(payload, "spec", runner::keyToHex(m.specHash));
    putU64(payload, "njobs", m.jobCount);
    putU64(payload, "adopted", m.adopted);
    return runner::frameRecord(kAcceptMagic, kFarmProtocolVersion,
                               payload);
}

WireDecode
parseAccept(const std::string &frame, AcceptMsg &out)
{
    AcceptMsg m;
    WireDecode d = parseLines(
        kAcceptMagic, frame, [&](const std::string &key,
                                 std::istringstream &ls) {
            if (key == "sweep")
                return static_cast<bool>(ls >> m.sweepId);
            if (key == "spec") {
                std::string hex;
                if (!(ls >> hex))
                    return false;
                char *end = nullptr;
                m.specHash = std::strtoull(hex.c_str(), &end, 16);
                return end && *end == '\0';
            }
            if (key == "njobs")
                return static_cast<bool>(ls >> m.jobCount);
            if (key == "adopted")
                return static_cast<bool>(ls >> m.adopted);
            return true;
        });
    if (d == WireDecode::Ok)
        out = std::move(m);
    return d;
}

// ---- jobdone ----------------------------------------------------------

std::string
serializeJobDone(const JobDoneMsg &m)
{
    std::string payload;
    putU64(payload, "index", m.index);
    putBool(payload, "adopted", m.adopted);
    std::string res = runner::serializeJobResult(m.result);
    payload += detail::format("result %zu\n", res.size());
    payload += res;
    return runner::frameRecord(kJobDoneMagic, kFarmProtocolVersion,
                               payload);
}

WireDecode
parseJobDone(const std::string &frame, JobDoneMsg &out)
{
    std::string payload;
    WireDecode d = runner::unframeRecord(
        kJobDoneMagic, kFarmProtocolVersion, frame, payload);
    if (d != WireDecode::Ok)
        return d;

    JobDoneMsg m;
    bool haveResult = false;
    std::size_t pos = 0;
    while (pos < payload.size()) {
        auto lineEnd = payload.find('\n', pos);
        if (lineEnd == std::string::npos)
            return WireDecode::Corrupt;
        std::istringstream ls(payload.substr(pos, lineEnd - pos));
        pos = lineEnd + 1;
        std::string key;
        if (!(ls >> key))
            continue;
        if (key == "index") {
            if (!(ls >> m.index))
                return WireDecode::Corrupt;
        } else if (key == "adopted") {
            int b;
            if (!(ls >> b))
                return WireDecode::Corrupt;
            m.adopted = b != 0;
        } else if (key == "result") {
            std::size_t nbytes = 0;
            if (!(ls >> nbytes) || pos + nbytes > payload.size())
                return WireDecode::Corrupt;
            if (runner::decodeJobResult(payload.substr(pos, nbytes),
                                        m.result) != WireDecode::Ok)
                return WireDecode::Corrupt;
            haveResult = true;
            pos += nbytes;
        }
    }
    if (!haveResult)
        return WireDecode::Corrupt;
    out = std::move(m);
    return WireDecode::Ok;
}

// ---- sweepdone --------------------------------------------------------

std::string
serializeSweepDone(const SweepDoneMsg &m)
{
    std::string payload;
    putU64(payload, "executed", m.executed);
    putU64(payload, "cachehits", m.cacheHits);
    putU64(payload, "failed", m.failed);
    putU64(payload, "resumed", m.resumed);
    return runner::frameRecord(kSweepDoneMagic, kFarmProtocolVersion,
                               payload);
}

WireDecode
parseSweepDone(const std::string &frame, SweepDoneMsg &out)
{
    SweepDoneMsg m;
    WireDecode d = parseLines(
        kSweepDoneMagic, frame, [&](const std::string &key,
                                    std::istringstream &ls) {
            if (key == "executed")
                return static_cast<bool>(ls >> m.executed);
            if (key == "cachehits")
                return static_cast<bool>(ls >> m.cacheHits);
            if (key == "failed")
                return static_cast<bool>(ls >> m.failed);
            if (key == "resumed")
                return static_cast<bool>(ls >> m.resumed);
            return true;
        });
    if (d == WireDecode::Ok)
        out = std::move(m);
    return d;
}

// ---- admission control ------------------------------------------------

std::string
serializeBusy(const BusyMsg &m)
{
    std::string payload;
    putLine(payload, "reason", escapeLine(m.reason));
    putU64(payload, "retryafterms", m.retryAfterMs);
    putU64(payload, "queuedepth", m.queueDepth);
    return runner::frameRecord(kBusyMagic, kFarmProtocolVersion,
                               payload);
}

WireDecode
parseBusy(const std::string &frame, BusyMsg &out)
{
    BusyMsg m;
    WireDecode d = parseLines(
        kBusyMagic, frame, [&](const std::string &key,
                               std::istringstream &ls) {
            if (key == "reason") {
                m.reason = unescapeLine(restOfLine(ls));
                return true;
            }
            if (key == "retryafterms")
                return static_cast<bool>(ls >> m.retryAfterMs);
            if (key == "queuedepth")
                return static_cast<bool>(ls >> m.queueDepth);
            return true;
        });
    if (d == WireDecode::Ok)
        out = std::move(m);
    return d;
}

// ---- drain ------------------------------------------------------------

std::string
serializeDrainReq()
{
    return runner::frameRecord(kDrainReqMagic, kFarmProtocolVersion,
                               "");
}

WireDecode
parseDrainReq(const std::string &frame)
{
    std::string payload;
    return runner::unframeRecord(kDrainReqMagic, kFarmProtocolVersion,
                                 frame, payload);
}

std::string
serializeDrainAck(const DrainAckMsg &m)
{
    std::string payload;
    putU64(payload, "inflight", m.inFlight);
    putU64(payload, "abandoned", m.abandoned);
    putU64(payload, "sweepsactive", m.sweepsActive);
    return runner::frameRecord(kDrainAckMagic, kFarmProtocolVersion,
                               payload);
}

WireDecode
parseDrainAck(const std::string &frame, DrainAckMsg &out)
{
    DrainAckMsg m;
    WireDecode d = parseLines(
        kDrainAckMagic, frame, [&](const std::string &key,
                                   std::istringstream &ls) {
            if (key == "inflight")
                return static_cast<bool>(ls >> m.inFlight);
            if (key == "abandoned")
                return static_cast<bool>(ls >> m.abandoned);
            if (key == "sweepsactive")
                return static_cast<bool>(ls >> m.sweepsActive);
            return true;
        });
    if (d == WireDecode::Ok)
        out = std::move(m);
    return d;
}

// ---- status -----------------------------------------------------------

double
FarmStatus::cacheHitRate() const
{
    std::uint64_t total = cacheHits + cacheMisses;
    return total ? static_cast<double>(cacheHits)
                       / static_cast<double>(total)
                 : 0.0;
}

std::string
serializeStatusReq()
{
    return runner::frameRecord(kStatusReqMagic, kFarmProtocolVersion,
                               "");
}

WireDecode
parseStatusReq(const std::string &frame)
{
    std::string payload;
    return runner::unframeRecord(kStatusReqMagic, kFarmProtocolVersion,
                                 frame, payload);
}

std::string
serializeStatus(const FarmStatus &s)
{
    std::string payload;
    putLine(payload, "build", escapeLine(s.build));
    putU64(payload, "protocol", s.protocol);
    putU64(payload, "uptimems", s.uptimeMs);
    putU64(payload, "workers", static_cast<std::uint64_t>(s.workers));
    putU64(payload, "busyworkers",
           static_cast<std::uint64_t>(s.busyWorkers));
    putU64(payload, "queuedepth", s.queueDepth);
    putU64(payload, "inflight", s.inFlight);
    putU64(payload, "sessions", s.sessions);
    putU64(payload, "sweepsactive", s.sweepsActive);
    putU64(payload, "sweepscompleted", s.sweepsCompleted);
    putU64(payload, "jobscompleted", s.jobsCompleted);
    putU64(payload, "jobsfailed", s.jobsFailed);
    putU64(payload, "jobscrashed", s.jobsCrashed);
    putU64(payload, "jobscoalesced", s.jobsCoalesced);
    putU64(payload, "cachehits", s.cacheHits);
    putU64(payload, "cachemisses", s.cacheMisses);
    putU64(payload, "cachequarantined", s.cacheQuarantined);
    putU64(payload, "cacheevicted", s.cacheEvicted);
    putU64(payload, "cachediskbytes", s.cacheDiskBytes);
    putU64(payload, "cachemaxbytes", s.cacheMaxBytes);
    putBool(payload, "draining", s.draining);
    putU64(payload, "maxqueuedjobs", s.maxQueuedJobs);
    putU64(payload, "maxsweepsperclient", s.maxSweepsPerClient);
    putU64(payload, "submitsrejected", s.submitsRejected);
    putU64(payload, "idledisconnects", s.idleDisconnects);
    putU64(payload, "slowreaderdisconnects", s.slowReaderDisconnects);
    putU64(payload, "connectionsshed", s.connectionsShed);
    putU64(payload, "acceptfailures", s.acceptFailures);
    putU64(payload, "stalecompletions", s.staleCompletions);
    return runner::frameRecord(kStatusMagic, kFarmProtocolVersion,
                               payload);
}

WireDecode
parseStatus(const std::string &frame, FarmStatus &out)
{
    FarmStatus s;
    WireDecode d = parseLines(
        kStatusMagic, frame, [&](const std::string &key,
                                 std::istringstream &ls) {
            if (key == "build") {
                s.build = unescapeLine(restOfLine(ls));
                return true;
            }
            if (key == "protocol")
                return static_cast<bool>(ls >> s.protocol);
            if (key == "uptimems")
                return static_cast<bool>(ls >> s.uptimeMs);
            if (key == "workers")
                return static_cast<bool>(ls >> s.workers);
            if (key == "busyworkers")
                return static_cast<bool>(ls >> s.busyWorkers);
            if (key == "queuedepth")
                return static_cast<bool>(ls >> s.queueDepth);
            if (key == "inflight")
                return static_cast<bool>(ls >> s.inFlight);
            if (key == "sessions")
                return static_cast<bool>(ls >> s.sessions);
            if (key == "sweepsactive")
                return static_cast<bool>(ls >> s.sweepsActive);
            if (key == "sweepscompleted")
                return static_cast<bool>(ls >> s.sweepsCompleted);
            if (key == "jobscompleted")
                return static_cast<bool>(ls >> s.jobsCompleted);
            if (key == "jobsfailed")
                return static_cast<bool>(ls >> s.jobsFailed);
            if (key == "jobscrashed")
                return static_cast<bool>(ls >> s.jobsCrashed);
            if (key == "jobscoalesced")
                return static_cast<bool>(ls >> s.jobsCoalesced);
            if (key == "cachehits")
                return static_cast<bool>(ls >> s.cacheHits);
            if (key == "cachemisses")
                return static_cast<bool>(ls >> s.cacheMisses);
            if (key == "cachequarantined")
                return static_cast<bool>(ls >> s.cacheQuarantined);
            if (key == "cacheevicted")
                return static_cast<bool>(ls >> s.cacheEvicted);
            if (key == "cachediskbytes")
                return static_cast<bool>(ls >> s.cacheDiskBytes);
            if (key == "cachemaxbytes")
                return static_cast<bool>(ls >> s.cacheMaxBytes);
            if (key == "draining") {
                int b;
                if (!(ls >> b))
                    return false;
                s.draining = b != 0;
                return true;
            }
            if (key == "maxqueuedjobs")
                return static_cast<bool>(ls >> s.maxQueuedJobs);
            if (key == "maxsweepsperclient")
                return static_cast<bool>(ls >> s.maxSweepsPerClient);
            if (key == "submitsrejected")
                return static_cast<bool>(ls >> s.submitsRejected);
            if (key == "idledisconnects")
                return static_cast<bool>(ls >> s.idleDisconnects);
            if (key == "slowreaderdisconnects")
                return static_cast<bool>(ls >> s.slowReaderDisconnects);
            if (key == "connectionsshed")
                return static_cast<bool>(ls >> s.connectionsShed);
            if (key == "acceptfailures")
                return static_cast<bool>(ls >> s.acceptFailures);
            if (key == "stalecompletions")
                return static_cast<bool>(ls >> s.staleCompletions);
            return true;
        });
    if (d == WireDecode::Ok)
        out = std::move(s);
    return d;
}

std::string
statusToJson(const FarmStatus &s)
{
    std::string out;
    out += "{\n";
    out += "  \"build\": \"" + jsonEscape(s.build) + "\",\n";
    out += detail::format("  \"protocol\": %u,\n", s.protocol);
    out += detail::format("  \"uptimeMs\": %" PRIu64 ",\n", s.uptimeMs);
    out += detail::format("  \"workers\": %d,\n", s.workers);
    out += detail::format("  \"busyWorkers\": %d,\n", s.busyWorkers);
    out += detail::format("  \"queueDepth\": %" PRIu64 ",\n",
                          s.queueDepth);
    out += detail::format("  \"inFlight\": %" PRIu64 ",\n", s.inFlight);
    out += detail::format("  \"sessions\": %" PRIu64 ",\n", s.sessions);
    out += detail::format("  \"sweepsActive\": %" PRIu64 ",\n",
                          s.sweepsActive);
    out += detail::format("  \"sweepsCompleted\": %" PRIu64 ",\n",
                          s.sweepsCompleted);
    out += detail::format("  \"jobsCompleted\": %" PRIu64 ",\n",
                          s.jobsCompleted);
    out += detail::format("  \"jobsFailed\": %" PRIu64 ",\n",
                          s.jobsFailed);
    out += detail::format("  \"jobsCrashed\": %" PRIu64 ",\n",
                          s.jobsCrashed);
    out += detail::format("  \"jobsCoalesced\": %" PRIu64 ",\n",
                          s.jobsCoalesced);
    out += detail::format("  \"cacheHits\": %" PRIu64 ",\n",
                          s.cacheHits);
    out += detail::format("  \"cacheMisses\": %" PRIu64 ",\n",
                          s.cacheMisses);
    out += detail::format("  \"cacheHitRate\": %.4f,\n",
                          s.cacheHitRate());
    out += detail::format("  \"cacheQuarantined\": %" PRIu64 ",\n",
                          s.cacheQuarantined);
    out += detail::format("  \"cacheEvicted\": %" PRIu64 ",\n",
                          s.cacheEvicted);
    out += detail::format("  \"cacheDiskBytes\": %" PRIu64 ",\n",
                          s.cacheDiskBytes);
    out += detail::format("  \"cacheMaxBytes\": %" PRIu64 ",\n",
                          s.cacheMaxBytes);
    out += detail::format("  \"draining\": %s,\n",
                          s.draining ? "true" : "false");
    out += detail::format("  \"maxQueuedJobs\": %" PRIu64 ",\n",
                          s.maxQueuedJobs);
    out += detail::format("  \"maxSweepsPerClient\": %" PRIu64 ",\n",
                          s.maxSweepsPerClient);
    out += detail::format("  \"submitsRejected\": %" PRIu64 ",\n",
                          s.submitsRejected);
    out += detail::format("  \"idleDisconnects\": %" PRIu64 ",\n",
                          s.idleDisconnects);
    out += detail::format("  \"slowReaderDisconnects\": %" PRIu64 ",\n",
                          s.slowReaderDisconnects);
    out += detail::format("  \"connectionsShed\": %" PRIu64 ",\n",
                          s.connectionsShed);
    out += detail::format("  \"acceptFailures\": %" PRIu64 ",\n",
                          s.acceptFailures);
    out += detail::format("  \"staleCompletions\": %" PRIu64 "\n",
                          s.staleCompletions);
    out += "}\n";
    return out;
}

// ---- errors -----------------------------------------------------------

std::string
serializeError(const std::string &message)
{
    std::string payload;
    putLine(payload, "message", escapeLine(message));
    return runner::frameRecord(kErrorMagic, kFarmProtocolVersion,
                               payload);
}

WireDecode
parseError(const std::string &frame, ErrorMsg &out)
{
    ErrorMsg m;
    WireDecode d = parseLines(
        kErrorMagic, frame, [&](const std::string &key,
                                std::istringstream &ls) {
            if (key == "message")
                m.message = unescapeLine(restOfLine(ls));
            return true;
        });
    if (d == WireDecode::Ok)
        out = std::move(m);
    return d;
}

// ---- decode policy ----------------------------------------------------

void
requireRecord(runner::WireDecode d, const std::string &frame,
              const char *context)
{
    if (d == WireDecode::Ok)
        return;
    runner::FrameHeader hdr;
    if (d == WireDecode::VersionSkew
        && runner::peekFrameHeader(frame, hdr))
        scsim_throw(ConfigError,
                    "farm protocol version mismatch at %s: peer sent "
                    "%s v%u, this build (%s) speaks v%u — run "
                    "'scsim_cli version' on both ends",
                    context, hdr.magic.c_str(), hdr.version,
                    SCSIM_VERSION, kFarmProtocolVersion);
    scsim_throw(ConfigError,
                "corrupt or unexpected farm record at %s (%zu bytes)",
                context, frame.size());
}

} // namespace scsim::farm
