/**
 * @file
 * Shared low-level I/O helpers: signal-safe full reads/writes and
 * atomic whole-file replacement.
 *
 * Every blocking read()/write() loop in the repo — farm sockets,
 * subprocess pipes, journal appends, snapshot files — must retry
 * EINTR (any signal delivery otherwise turns into a spurious short
 * read) and must not die on SIGPIPE (a peer hanging up is an error
 * return, not process death).  These helpers centralize both rules
 * so the call sites cannot drift apart.
 *
 * writeFileAtomic() is the snapshot/cache durability idiom: write to
 * a same-directory temp file, fsync, rename over the target.  Readers
 * therefore only ever observe either the old complete file or the new
 * complete file, never a torn write — which is what lets crash
 * recovery trust any snapshot it finds on disk (modulo the wire-layer
 * checksum).
 */

#ifndef SCSIM_COMMON_IO_UTIL_HH
#define SCSIM_COMMON_IO_UTIL_HH

#include <cstddef>
#include <string>
#include <string_view>

namespace scsim {

/**
 * Read exactly @p n bytes from @p fd, retrying EINTR and short
 * reads.  Returns the number of bytes actually read: n on success,
 * fewer on EOF, and on error returns the bytes read so far with
 * errno set (errno == 0 means clean EOF).
 */
std::size_t readFull(int fd, void *buf, std::size_t n);

/**
 * Write exactly @p n bytes to @p fd, retrying EINTR and short
 * writes.  Returns true when all bytes were written; false with
 * errno set otherwise (EPIPE included — call ignoreSigpipe() first).
 */
bool writeFull(int fd, const void *buf, std::size_t n);

/**
 * Ignore SIGPIPE process-wide (idempotent, thread-safe).  Daemons
 * and workers call this once at startup so a hung-up socket or pipe
 * surfaces as EPIPE from write() instead of killing the process.
 */
void ignoreSigpipe();

/** Is @p err the errno of a full disk (ENOSPC) or quota (EDQUOT)? */
bool isDiskFull(int err);

/**
 * Read the whole of @p path into @p out.  Returns false (with @p out
 * unspecified) if the file cannot be opened or read.
 */
bool readFileAll(const std::string &path, std::string &out);

/**
 * Atomically replace @p path with @p data: write `path + ".tmp" +
 * suffix`, fsync, rename.  On failure the temp file is removed and
 * false is returned with the failing errno in @p errnoOut (0 when
 * the cause carried no errno).  Never throws.
 */
bool writeFileAtomic(const std::string &path, std::string_view data,
                     const std::string &tmpSuffix, int *errnoOut);

/**
 * mkdir -p: create @p path and any missing parents (mode 0755).
 * Returns true when the directory exists afterwards; false with
 * errno set otherwise.
 */
bool makeDirs(const std::string &path);

} // namespace scsim

#endif // SCSIM_COMMON_IO_UTIL_HH
