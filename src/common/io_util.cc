#include "common/io_util.hh"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <mutex>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace scsim {

std::size_t
readFull(int fd, void *buf, std::size_t n)
{
    char *p = static_cast<char *>(buf);
    std::size_t done = 0;
    while (done < n) {
        ssize_t r = ::read(fd, p + done, n - done);
        if (r > 0) {
            done += static_cast<std::size_t>(r);
            continue;
        }
        if (r == 0) {           // clean EOF
            errno = 0;
            break;
        }
        if (errno == EINTR)
            continue;
        break;                  // hard error, errno set
    }
    return done;
}

bool
writeFull(int fd, const void *buf, std::size_t n)
{
    const char *p = static_cast<const char *>(buf);
    std::size_t done = 0;
    while (done < n) {
        ssize_t r = ::write(fd, p + done, n - done);
        if (r >= 0) {
            done += static_cast<std::size_t>(r);
            continue;
        }
        if (errno == EINTR)
            continue;
        return false;
    }
    return true;
}

void
ignoreSigpipe()
{
    static std::once_flag once;
    std::call_once(once, [] { std::signal(SIGPIPE, SIG_IGN); });
}

bool
isDiskFull(int err)
{
#ifdef EDQUOT
    if (err == EDQUOT)
        return true;
#endif
    return err == ENOSPC;
}

bool
readFileAll(const std::string &path, std::string &out)
{
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        return false;
    out.clear();
    char buf[1 << 16];
    bool ok = true;
    for (;;) {
        ssize_t r = ::read(fd, buf, sizeof(buf));
        if (r > 0) {
            out.append(buf, static_cast<std::size_t>(r));
            continue;
        }
        if (r == 0)
            break;
        if (errno == EINTR)
            continue;
        ok = false;
        break;
    }
    ::close(fd);
    return ok;
}

bool
writeFileAtomic(const std::string &path, std::string_view data,
                const std::string &tmpSuffix, int *errnoOut)
{
    if (errnoOut)
        *errnoOut = 0;
    std::string tmp = path + ".tmp" + tmpSuffix;
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                    0644);
    if (fd < 0) {
        if (errnoOut)
            *errnoOut = errno;
        return false;
    }
    bool ok = writeFull(fd, data.data(), data.size());
    int savedErrno = ok ? 0 : errno;
    if (ok && ::fsync(fd) != 0) {
        ok = false;
        savedErrno = errno;
    }
    if (::close(fd) != 0 && ok) {
        ok = false;
        savedErrno = errno;
    }
    if (ok && std::rename(tmp.c_str(), path.c_str()) != 0) {
        ok = false;
        savedErrno = errno;
    }
    if (!ok) {
        ::unlink(tmp.c_str());
        if (errnoOut)
            *errnoOut = savedErrno;
    }
    return ok;
}

bool
makeDirs(const std::string &path)
{
    if (path.empty())
        return false;
    std::string prefix;
    std::size_t pos = 0;
    while (pos <= path.size()) {
        std::size_t slash = path.find('/', pos);
        if (slash == std::string::npos)
            slash = path.size();
        prefix = path.substr(0, slash);
        pos = slash + 1;
        if (prefix.empty() || prefix == ".")
            continue;
        if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST)
            return false;
    }
    struct stat st;
    return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

} // namespace scsim
