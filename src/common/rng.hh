/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic decision in the simulator (Shuffle sub-core
 * assignment, synthetic workload generation) draws from an Rng seeded
 * from the configuration so runs are exactly reproducible.  The
 * generator is xoshiro256** seeded through splitmix64, which is both
 * fast and statistically strong enough for workload synthesis.
 */

#ifndef SCSIM_COMMON_RNG_HH
#define SCSIM_COMMON_RNG_HH

#include <cstdint>
#include <string_view>
#include <vector>

namespace scsim {

/** splitmix64 step; also useful as a standalone integer hash. */
std::uint64_t splitmix64(std::uint64_t &state);

/** Stable 64-bit hash of a string (FNV-1a), for per-app seeds. */
std::uint64_t hashString(std::string_view s);

/**
 * xoshiro256** generator.  Satisfies the essentials of
 * UniformRandomBitGenerator so it can feed <random> adaptors, though
 * the convenience members below cover every use in the simulator.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type(0); }

    /** Next raw 64-bit draw. */
    result_type operator()();

    /** Uniform integer in [0, bound), bound > 0.  Debiased. */
    std::uint64_t next(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability p of true. */
    bool chance(double p);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = next(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Raw generator state, for checkpointing. */
    struct State
    {
        std::uint64_t s[4];
    };

    State
    state() const
    {
        return State{{s_[0], s_[1], s_[2], s_[3]}};
    }

    void
    setState(const State &st)
    {
        for (int i = 0; i < 4; ++i)
            s_[i] = st.s[i];
    }

  private:
    std::uint64_t s_[4];
};

} // namespace scsim

#endif // SCSIM_COMMON_RNG_HH
