/**
 * @file
 * Deterministic fault injection for robustness tests.
 *
 * A process-wide, thread-safe hook that lets tests exercise every
 * failure-containment path on demand:
 *
 *  - fail the Nth result-cache disk write / read (ResultCache throws
 *    CacheError, which the sweep engine retries with bounded backoff
 *    and then degrades from);
 *  - force a synthetic hang in any workload whose run-loop label
 *    contains an armed token (GpuSim's loop then never terminates on
 *    its own, so the forward-progress watchdog must fire);
 *  - kill the process with a real signal mid-kernel (after the first
 *    simulated cycle of a matching run loop), so `sweep --isolate`
 *    can prove crash containment against an actual SIGSEGV/SIGABRT
 *    death rather than a thrown exception.
 *
 * Everything is disarmed by default and the disarmed checks are one
 * relaxed atomic load, so production sweeps pay nothing.  Tests arm
 * faults through instance() and must reset() when done (the
 * robustness suite does this in a fixture).
 */

#ifndef SCSIM_COMMON_FAULT_INJECT_HH
#define SCSIM_COMMON_FAULT_INJECT_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace scsim {

class FaultInjector
{
  public:
    /** The process-wide injector (tests arm it, library code polls). */
    static FaultInjector &instance();

    /** Disarm everything and zero the attempt counters. */
    void reset();

    // ---- result-cache I/O faults --------------------------------------
    /**
     * Make cache disk-write attempts [nth, nth+count) fail (1-based,
     * counted across the whole process since the last reset).
     * count = a huge number simulates a persistently broken disk.
     */
    void armCacheWriteFaults(std::uint64_t nth, std::uint64_t count = 1);

    /** Same, for cache disk-read attempts. */
    void armCacheReadFaults(std::uint64_t nth, std::uint64_t count = 1);

    /** Called by ResultCache before each disk write; true = fail it. */
    bool shouldFailCacheWrite();

    /** Called by ResultCache before each disk read; true = fail it. */
    bool shouldFailCacheRead();

    std::uint64_t cacheWriteAttempts() const;
    std::uint64_t cacheReadAttempts() const;

    // ---- snapshot / journal write faults ------------------------------
    /**
     * Make snapshot-file write attempts [nth, nth+count) fail as if
     * the disk were full (ENOSPC).  Exercises the "degrade to running
     * without checkpoints" path.
     */
    void armSnapshotWriteFaults(std::uint64_t nth,
                                std::uint64_t count = 1);

    /** Called before each snapshot file write; true = fail it. */
    bool shouldFailSnapshotWrite();

    std::uint64_t snapshotWriteAttempts() const;

    /**
     * Arm snapshot-write faults from an `SCSIM_FAULT_SNAPSHOT_WRITE`
     * value: `<nth>` or `<nth>:<count>` (1-based attempt numbers).
     * False when @p value is null/empty/bad.  Exists so tests can arm
     * the fault inside a `run-job` subprocess.
     */
    bool armSnapshotWriteFromEnv(const char *value);

    /** Same fail-Nth treatment for sweep-journal record appends. */
    void armJournalWriteFaults(std::uint64_t nth,
                               std::uint64_t count = 1);

    /** Called before each journal record append; true = fail it. */
    bool shouldFailJournalWrite();

    std::uint64_t journalWriteAttempts() const;

    // ---- synthetic hang -----------------------------------------------
    /**
     * Force any simulation whose run-loop label (kernel or application
     * name) contains @p token to spin without retiring work, so the
     * watchdog must contain it.  Only one token may be armed at a time.
     */
    void armHang(std::string token);

    /** True when a hang is armed and @p label contains the token. */
    bool hangArmedFor(const char *label) const;

    // ---- synthetic crash ----------------------------------------------
    /**
     * Kill the process with @p sig mid-kernel in any simulation whose
     * run-loop label contains @p token.  An empty token disarms.
     */
    void raiseSignalInKernel(std::string token, int sig);

    /** The armed signal when @p label matches; 0 when disarmed. */
    int crashSignalFor(const char *label) const;

    /**
     * Arm a crash from an `SCSIM_FAULT_CRASH`-style value:
     * `<token>`, `<token>:abort`, or `<token>:<signum>` (the bare
     * form means SIGSEGV).  False when @p value is null/empty/bad.
     */
    bool armCrashFromEnv(const char *value);

    /**
     * Die by @p sig right now: restore the default disposition first
     * (defeating sanitizer handlers that would turn signal death into
     * exit(1)), raise, and — should the signal somehow not be fatal —
     * exit with the shell's 128+sig convention.
     */
    [[noreturn]] static void raiseNow(int sig);

  private:
    FaultInjector() = default;

    mutable std::mutex mutex_;
    std::atomic<bool> cacheFaultsArmed_{ false };
    std::atomic<bool> snapshotFaultsArmed_{ false };
    std::atomic<bool> journalFaultsArmed_{ false };
    std::atomic<bool> hangArmed_{ false };
    std::atomic<bool> crashArmed_{ false };

    std::uint64_t writeAttempts_ = 0;
    std::uint64_t writeFailFirst_ = 0;   //!< 1-based; 0 = disarmed
    std::uint64_t writeFailLast_ = 0;    //!< inclusive
    std::uint64_t readAttempts_ = 0;
    std::uint64_t readFailFirst_ = 0;
    std::uint64_t readFailLast_ = 0;
    std::uint64_t snapAttempts_ = 0;
    std::uint64_t snapFailFirst_ = 0;
    std::uint64_t snapFailLast_ = 0;
    std::uint64_t journalAttempts_ = 0;
    std::uint64_t journalFailFirst_ = 0;
    std::uint64_t journalFailLast_ = 0;
    std::string hangToken_;
    std::string crashToken_;
    int crashSignal_ = 0;
};

} // namespace scsim

#endif // SCSIM_COMMON_FAULT_INJECT_HH
