/**
 * @file
 * Recoverable simulation errors.
 *
 * scsim_fatal terminates the process and is reserved for the CLI
 * surface, where "print a message and exit 1" is the contract.  Code
 * that can be called from inside a sweep — configuration parsing,
 * workload synthesis, the simulator core — reports user-level errors
 * by throwing one of these types instead (via scsim_throw), so a
 * single bad job degrades to a failed JobResult rather than killing a
 * multi-hour campaign.  scsim_panic remains abort-on-bug: simulator
 * invariant violations are never converted to exceptions.
 *
 * The hierarchy is deliberately shallow:
 *
 *   SimError            any recoverable simulation error
 *    +- ConfigError     inconsistent or unparsable configuration
 *    +- WorkloadError   workload that cannot run (bad kernel, unknown
 *                       app, block that can never fit)
 *    +- HangError       forward-progress watchdog fired; carries a
 *                       machine-state diagnostic dump
 *    +- CacheError      result-cache I/O fault (possibly transient;
 *                       the sweep engine retries with backoff)
 */

#ifndef SCSIM_COMMON_SIM_ERROR_HH
#define SCSIM_COMMON_SIM_ERROR_HH

#include <stdexcept>
#include <string>
#include <utility>

namespace scsim {

class SimError : public std::runtime_error
{
  public:
    explicit SimError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** The configuration is inconsistent or could not be parsed. */
class ConfigError : public SimError
{
  public:
    using SimError::SimError;
};

/** The workload is malformed or impossible on this configuration. */
class WorkloadError : public SimError
{
  public:
    using SimError::SimError;
};

/** Result-cache I/O fault; may be transient (callers retry). */
class CacheError : public SimError
{
  public:
    using SimError::SimError;
};

/**
 * The forward-progress watchdog fired: the simulation exceeded its
 * cycle budget or retired nothing for a whole no-progress window.
 * diagnostic() holds a multi-line machine-state dump (per-sub-core
 * issue state, scoreboard occupancy, collector-unit status) captured
 * at the moment the watchdog tripped.
 */
class HangError : public SimError
{
  public:
    HangError(const std::string &what, std::string diagnostic)
        : SimError(what), diagnostic_(std::move(diagnostic))
    {
    }

    const std::string &diagnostic() const { return diagnostic_; }

  private:
    std::string diagnostic_;
};

} // namespace scsim

#endif // SCSIM_COMMON_SIM_ERROR_HH
