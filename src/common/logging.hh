/**
 * @file
 * gem5-style status and error reporting.
 *
 * fatal(): the process cannot continue because of a user error at the
 * CLI surface (unusable command line, unwritable output).  Exits with
 * code 1.  Library code reachable from inside a sweep must use
 * scsim_throw instead so one bad job cannot kill a whole campaign —
 * see common/sim_error.hh for the policy.
 *
 * throw(): a recoverable user-level error (bad configuration,
 * impossible workload, hung simulation).  Throws the named SimError
 * subclass with the source location appended, to be contained by the
 * sweep engine or reported by the CLI's top-level handler.
 *
 * panic(): something happened that should never happen regardless of
 * user input, i.e. a simulator bug.  Aborts.
 *
 * warn()/inform(): non-terminating status messages.
 */

#ifndef SCSIM_COMMON_LOGGING_HH
#define SCSIM_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/sim_error.hh"

namespace scsim {

/** Verbosity control: messages below this level are suppressed. */
enum class LogLevel { Silent = 0, Warn = 1, Inform = 2 };

/** Process-wide log level (defaults to Warn so benches stay quiet). */
LogLevel logLevel();

/** Set the process-wide log level. */
void setLogLevel(LogLevel level);

namespace detail {

[[noreturn]] void fatalImpl(const char *file, int line, std::string msg);
[[noreturn]] void panicImpl(const char *file, int line, std::string msg);
void warnImpl(std::string msg);
void informImpl(std::string msg);

/** Minimal printf-style formatter into std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

} // namespace scsim

/** Terminate with a user-facing error (exit code 1). */
#define scsim_fatal(...) \
    ::scsim::detail::fatalImpl(__FILE__, __LINE__, \
                               ::scsim::detail::format(__VA_ARGS__))

/**
 * Throw @p ErrType (a SimError subclass from common/sim_error.hh)
 * with a printf-formatted message and the source location appended.
 */
#define scsim_throw(ErrType, ...) \
    throw ErrType(::scsim::detail::format(__VA_ARGS__) \
                  + ::scsim::detail::format(" (%s:%d)", __FILE__, \
                                            __LINE__))

/** Terminate with an internal-bug error (abort). */
#define scsim_panic(...) \
    ::scsim::detail::panicImpl(__FILE__, __LINE__, \
                               ::scsim::detail::format(__VA_ARGS__))

/** Non-fatal warning. */
#define scsim_warn(...) \
    ::scsim::detail::warnImpl(::scsim::detail::format(__VA_ARGS__))

/** Informational status message. */
#define scsim_inform(...) \
    ::scsim::detail::informImpl(::scsim::detail::format(__VA_ARGS__))

/** Always-on invariant check; panics (simulator bug) on failure. */
#define scsim_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::scsim::detail::panicImpl(__FILE__, __LINE__, \
                "assertion failed: " #cond " " \
                + ::scsim::detail::format(__VA_ARGS__)); \
        } \
    } while (0)

#endif // SCSIM_COMMON_LOGGING_HH
