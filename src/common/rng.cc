#include "common/rng.hh"

#include "common/logging.hh"

namespace scsim {

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
hashString(std::string_view s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::next(std::uint64_t bound)
{
    scsim_assert(bound > 0, "next() bound must be positive");
    // Lemire-style rejection to remove modulo bias.
    std::uint64_t threshold = (~bound + 1) % bound;
    for (;;) {
        std::uint64_t r = (*this)();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    scsim_assert(lo <= hi, "range() requires lo <= hi");
    return lo + static_cast<std::int64_t>(
        next(static_cast<std::uint64_t>(hi - lo) + 1));
}

double
Rng::nextDouble()
{
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

} // namespace scsim
