#include "common/fault_inject.hh"

#include <cstring>

namespace scsim {

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

void
FaultInjector::reset()
{
    std::lock_guard lock(mutex_);
    writeAttempts_ = writeFailFirst_ = writeFailLast_ = 0;
    readAttempts_ = readFailFirst_ = readFailLast_ = 0;
    hangToken_.clear();
    cacheFaultsArmed_.store(false, std::memory_order_relaxed);
    hangArmed_.store(false, std::memory_order_relaxed);
}

void
FaultInjector::armCacheWriteFaults(std::uint64_t nth, std::uint64_t count)
{
    std::lock_guard lock(mutex_);
    writeFailFirst_ = nth;
    writeFailLast_ = count ? nth + count - 1 : 0;
    cacheFaultsArmed_.store(true, std::memory_order_relaxed);
}

void
FaultInjector::armCacheReadFaults(std::uint64_t nth, std::uint64_t count)
{
    std::lock_guard lock(mutex_);
    readFailFirst_ = nth;
    readFailLast_ = count ? nth + count - 1 : 0;
    cacheFaultsArmed_.store(true, std::memory_order_relaxed);
}

bool
FaultInjector::shouldFailCacheWrite()
{
    if (!cacheFaultsArmed_.load(std::memory_order_relaxed))
        return false;
    std::lock_guard lock(mutex_);
    ++writeAttempts_;
    return writeFailFirst_ && writeAttempts_ >= writeFailFirst_
        && writeAttempts_ <= writeFailLast_;
}

bool
FaultInjector::shouldFailCacheRead()
{
    if (!cacheFaultsArmed_.load(std::memory_order_relaxed))
        return false;
    std::lock_guard lock(mutex_);
    ++readAttempts_;
    return readFailFirst_ && readAttempts_ >= readFailFirst_
        && readAttempts_ <= readFailLast_;
}

std::uint64_t
FaultInjector::cacheWriteAttempts() const
{
    std::lock_guard lock(mutex_);
    return writeAttempts_;
}

std::uint64_t
FaultInjector::cacheReadAttempts() const
{
    std::lock_guard lock(mutex_);
    return readAttempts_;
}

void
FaultInjector::armHang(std::string token)
{
    std::lock_guard lock(mutex_);
    hangToken_ = std::move(token);
    hangArmed_.store(!hangToken_.empty(), std::memory_order_relaxed);
}

bool
FaultInjector::hangArmedFor(const char *label) const
{
    if (!hangArmed_.load(std::memory_order_relaxed))
        return false;
    std::lock_guard lock(mutex_);
    return label && !hangToken_.empty()
        && std::strstr(label, hangToken_.c_str()) != nullptr;
}

} // namespace scsim
