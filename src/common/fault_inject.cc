#include "common/fault_inject.hh"

#include <csignal>
#include <cstdlib>
#include <cstring>

namespace scsim {

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

void
FaultInjector::reset()
{
    std::lock_guard lock(mutex_);
    writeAttempts_ = writeFailFirst_ = writeFailLast_ = 0;
    readAttempts_ = readFailFirst_ = readFailLast_ = 0;
    snapAttempts_ = snapFailFirst_ = snapFailLast_ = 0;
    journalAttempts_ = journalFailFirst_ = journalFailLast_ = 0;
    hangToken_.clear();
    crashToken_.clear();
    crashSignal_ = 0;
    cacheFaultsArmed_.store(false, std::memory_order_relaxed);
    snapshotFaultsArmed_.store(false, std::memory_order_relaxed);
    journalFaultsArmed_.store(false, std::memory_order_relaxed);
    hangArmed_.store(false, std::memory_order_relaxed);
    crashArmed_.store(false, std::memory_order_relaxed);
}

void
FaultInjector::armCacheWriteFaults(std::uint64_t nth, std::uint64_t count)
{
    std::lock_guard lock(mutex_);
    writeFailFirst_ = nth;
    writeFailLast_ = count ? nth + count - 1 : 0;
    cacheFaultsArmed_.store(true, std::memory_order_relaxed);
}

void
FaultInjector::armCacheReadFaults(std::uint64_t nth, std::uint64_t count)
{
    std::lock_guard lock(mutex_);
    readFailFirst_ = nth;
    readFailLast_ = count ? nth + count - 1 : 0;
    cacheFaultsArmed_.store(true, std::memory_order_relaxed);
}

bool
FaultInjector::shouldFailCacheWrite()
{
    if (!cacheFaultsArmed_.load(std::memory_order_relaxed))
        return false;
    std::lock_guard lock(mutex_);
    ++writeAttempts_;
    return writeFailFirst_ && writeAttempts_ >= writeFailFirst_
        && writeAttempts_ <= writeFailLast_;
}

bool
FaultInjector::shouldFailCacheRead()
{
    if (!cacheFaultsArmed_.load(std::memory_order_relaxed))
        return false;
    std::lock_guard lock(mutex_);
    ++readAttempts_;
    return readFailFirst_ && readAttempts_ >= readFailFirst_
        && readAttempts_ <= readFailLast_;
}

std::uint64_t
FaultInjector::cacheWriteAttempts() const
{
    std::lock_guard lock(mutex_);
    return writeAttempts_;
}

std::uint64_t
FaultInjector::cacheReadAttempts() const
{
    std::lock_guard lock(mutex_);
    return readAttempts_;
}

void
FaultInjector::armSnapshotWriteFaults(std::uint64_t nth,
                                      std::uint64_t count)
{
    std::lock_guard lock(mutex_);
    snapFailFirst_ = nth;
    snapFailLast_ = count ? nth + count - 1 : 0;
    snapshotFaultsArmed_.store(true, std::memory_order_relaxed);
}

bool
FaultInjector::shouldFailSnapshotWrite()
{
    if (!snapshotFaultsArmed_.load(std::memory_order_relaxed))
        return false;
    std::lock_guard lock(mutex_);
    ++snapAttempts_;
    return snapFailFirst_ && snapAttempts_ >= snapFailFirst_
        && snapAttempts_ <= snapFailLast_;
}

std::uint64_t
FaultInjector::snapshotWriteAttempts() const
{
    std::lock_guard lock(mutex_);
    return snapAttempts_;
}

bool
FaultInjector::armSnapshotWriteFromEnv(const char *value)
{
    if (!value || !*value)
        return false;
    std::string spec(value);
    std::uint64_t count = 1;
    if (auto colon = spec.rfind(':'); colon != std::string::npos) {
        char *end = nullptr;
        unsigned long long n =
            std::strtoull(spec.c_str() + colon + 1, &end, 10);
        if (!end || *end != '\0' || n == 0)
            return false;
        count = n;
        spec.erase(colon);
    }
    char *end = nullptr;
    unsigned long long nth = std::strtoull(spec.c_str(), &end, 10);
    if (!end || *end != '\0' || nth == 0)
        return false;
    armSnapshotWriteFaults(nth, count);
    return true;
}

void
FaultInjector::armJournalWriteFaults(std::uint64_t nth,
                                     std::uint64_t count)
{
    std::lock_guard lock(mutex_);
    journalFailFirst_ = nth;
    journalFailLast_ = count ? nth + count - 1 : 0;
    journalFaultsArmed_.store(true, std::memory_order_relaxed);
}

bool
FaultInjector::shouldFailJournalWrite()
{
    if (!journalFaultsArmed_.load(std::memory_order_relaxed))
        return false;
    std::lock_guard lock(mutex_);
    ++journalAttempts_;
    return journalFailFirst_ && journalAttempts_ >= journalFailFirst_
        && journalAttempts_ <= journalFailLast_;
}

std::uint64_t
FaultInjector::journalWriteAttempts() const
{
    std::lock_guard lock(mutex_);
    return journalAttempts_;
}

void
FaultInjector::armHang(std::string token)
{
    std::lock_guard lock(mutex_);
    hangToken_ = std::move(token);
    hangArmed_.store(!hangToken_.empty(), std::memory_order_relaxed);
}

bool
FaultInjector::hangArmedFor(const char *label) const
{
    if (!hangArmed_.load(std::memory_order_relaxed))
        return false;
    std::lock_guard lock(mutex_);
    return label && !hangToken_.empty()
        && std::strstr(label, hangToken_.c_str()) != nullptr;
}

void
FaultInjector::raiseSignalInKernel(std::string token, int sig)
{
    std::lock_guard lock(mutex_);
    crashToken_ = std::move(token);
    crashSignal_ = sig;
    crashArmed_.store(!crashToken_.empty() && sig > 0,
                      std::memory_order_relaxed);
}

int
FaultInjector::crashSignalFor(const char *label) const
{
    if (!crashArmed_.load(std::memory_order_relaxed))
        return 0;
    std::lock_guard lock(mutex_);
    if (!label || crashToken_.empty()
        || std::strstr(label, crashToken_.c_str()) == nullptr)
        return 0;
    return crashSignal_;
}

bool
FaultInjector::armCrashFromEnv(const char *value)
{
    if (!value || !*value)
        return false;
    std::string spec(value);
    std::string token = spec;
    int sig = SIGSEGV;
    if (auto colon = spec.rfind(':'); colon != std::string::npos) {
        token = spec.substr(0, colon);
        std::string how = spec.substr(colon + 1);
        if (how == "abort") {
            sig = SIGABRT;
        } else {
            char *end = nullptr;
            long n = std::strtol(how.c_str(), &end, 10);
            if (!end || *end != '\0' || n <= 0)
                return false;
            sig = static_cast<int>(n);
        }
    }
    if (token.empty())
        return false;
    raiseSignalInKernel(std::move(token), sig);
    return true;
}

void
FaultInjector::raiseNow(int sig)
{
    // A sanitizer's handler would report and exit(1), turning signal
    // death into a clean-looking exit; the default disposition makes
    // the kernel deliver the real thing.
    std::signal(sig, SIG_DFL);
    ::raise(sig);
    std::_Exit(128 + sig);
}

} // namespace scsim
