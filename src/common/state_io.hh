/**
 * @file
 * Key-checked text serialization for simulator state snapshots.
 *
 * A snapshot payload is a sequence of `key value\n` lines.  Writers
 * emit them in a fixed order; readers consume them in the *same*
 * order, and every read names the key it expects.  A mismatch —
 * wrong key, malformed number, truncated payload — throws CacheError
 * immediately, naming both the expected key and what was found, so a
 * version-skewed or damaged snapshot fails loudly at the first
 * divergent field instead of silently misassigning state.
 *
 * The format is deliberately textual: snapshots are framed and
 * FNV-checksummed at the wire layer (runner/wire.hh), so this layer
 * optimizes for debuggability (`scsim_cli checkpoint show` prints the
 * payload as-is) over density.  Doubles use %.17g, which round-trips
 * IEEE-754 binary64 exactly.
 */

#ifndef SCSIM_COMMON_STATE_IO_HH
#define SCSIM_COMMON_STATE_IO_HH

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "common/logging.hh"
#include "common/text_escape.hh"

namespace scsim {

/** Appends `key value` lines to a growing payload. */
class StateWriter
{
  public:
    void
    u64(const char *key, std::uint64_t v)
    {
        char tmp[32];
        std::snprintf(tmp, sizeof(tmp), "%" PRIu64, v);
        line(key, tmp);
    }

    void
    i64(const char *key, std::int64_t v)
    {
        char tmp[32];
        std::snprintf(tmp, sizeof(tmp), "%" PRId64, v);
        line(key, tmp);
    }

    void b(const char *key, bool v) { u64(key, v ? 1 : 0); }

    void
    f64(const char *key, double v)
    {
        char tmp[64];
        std::snprintf(tmp, sizeof(tmp), "%.17g", v);
        line(key, tmp);
    }

    /** Free text; newlines and backslashes are escaped to one line. */
    void
    str(const char *key, const std::string &v)
    {
        line(key, escapeLine(v));
    }

    const std::string &payload() const { return buf_; }
    std::string take() { return std::move(buf_); }

  private:
    void
    line(const char *key, std::string_view value)
    {
        buf_ += key;
        buf_ += ' ';
        buf_ += value;
        buf_ += '\n';
    }

    std::string buf_;
};

/**
 * Sequential reader over a StateWriter payload.  Every accessor
 * names the key it expects and throws CacheError when the payload
 * disagrees.
 */
class StateReader
{
  public:
    explicit StateReader(std::string_view payload)
        : data_(payload)
    {
    }

    std::uint64_t
    u64(const char *key)
    {
        std::string v = value(key);
        char *end = nullptr;
        errno = 0;
        unsigned long long r = std::strtoull(v.c_str(), &end, 10);
        if (errno != 0 || end == v.c_str() || *end != '\0')
            scsim_throw(CacheError,
                        "snapshot field '%s': bad u64 value '%s'", key,
                        v.c_str());
        return static_cast<std::uint64_t>(r);
    }

    std::int64_t
    i64(const char *key)
    {
        std::string v = value(key);
        char *end = nullptr;
        errno = 0;
        long long r = std::strtoll(v.c_str(), &end, 10);
        if (errno != 0 || end == v.c_str() || *end != '\0')
            scsim_throw(CacheError,
                        "snapshot field '%s': bad i64 value '%s'", key,
                        v.c_str());
        return static_cast<std::int64_t>(r);
    }

    bool
    b(const char *key)
    {
        std::uint64_t v = u64(key);
        if (v > 1)
            scsim_throw(CacheError,
                        "snapshot field '%s': bad bool value %" PRIu64,
                        key, v);
        return v != 0;
    }

    double
    f64(const char *key)
    {
        std::string v = value(key);
        char *end = nullptr;
        errno = 0;
        double r = std::strtod(v.c_str(), &end);
        if (end == v.c_str() || *end != '\0')
            scsim_throw(CacheError,
                        "snapshot field '%s': bad f64 value '%s'", key,
                        v.c_str());
        return r;
    }

    std::string
    str(const char *key)
    {
        return unescapeLine(value(key));
    }

    bool atEnd() const { return pos_ >= data_.size(); }

    /** Whole payload consumed?  Trailing data is corruption. */
    void
    expectEnd() const
    {
        if (!atEnd())
            scsim_throw(CacheError,
                        "snapshot payload has %zu trailing bytes",
                        data_.size() - pos_);
    }

  private:
    /** Next line's value, after checking its key is @p key. */
    std::string
    value(const char *key)
    {
        if (pos_ >= data_.size())
            scsim_throw(CacheError,
                        "snapshot truncated: expected field '%s'", key);
        std::size_t eol = data_.find('\n', pos_);
        if (eol == std::string_view::npos)
            scsim_throw(CacheError,
                        "snapshot field '%s': unterminated line", key);
        std::string_view line = data_.substr(pos_, eol - pos_);
        pos_ = eol + 1;
        std::size_t sp = line.find(' ');
        if (sp == std::string_view::npos)
            scsim_throw(CacheError,
                        "snapshot field '%s': malformed line '%.*s'",
                        key, static_cast<int>(line.size()),
                        line.data());
        std::string_view gotKey = line.substr(0, sp);
        if (gotKey != key)
            scsim_throw(CacheError,
                        "snapshot field mismatch: expected '%s', found "
                        "'%.*s'",
                        key, static_cast<int>(gotKey.size()),
                        gotKey.data());
        return std::string(line.substr(sp + 1));
    }

    std::string_view data_;
    std::size_t pos_ = 0;
};

} // namespace scsim

#endif // SCSIM_COMMON_STATE_IO_HH
