#include "common/text_escape.hh"

#include "common/logging.hh"

namespace scsim {

std::string
escapeLine(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          default:   out += c;
        }
    }
    return out;
}

std::string
unescapeLine(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\' || i + 1 == s.size()) {
            out += s[i];
            continue;
        }
        switch (s[++i]) {
          case 'n':  out += '\n'; break;
          case 'r':  out += '\r'; break;
          default:   out += s[i];
        }
    }
    return out;
}

std::string
csvField(const std::string &s)
{
    std::string flat = escapeLine(s);
    bool quote = false;
    for (char c : flat)
        if (c == ',' || c == '"') {
            quote = true;
            break;
        }
    if (!flat.empty() && (flat.front() == ' ' || flat.back() == ' '))
        quote = true;
    if (!quote)
        return flat;
    std::string out = "\"";
    for (char c : flat) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

bool
splitCsvRow(const std::string &row, std::vector<std::string> &out)
{
    out.clear();
    std::string field;
    bool inQuotes = false;
    for (std::size_t i = 0; i < row.size(); ++i) {
        char c = row[i];
        if (inQuotes) {
            if (c == '"') {
                if (i + 1 < row.size() && row[i + 1] == '"') {
                    field += '"';
                    ++i;
                } else {
                    inQuotes = false;
                }
            } else {
                field += c;
            }
        } else if (c == '"' && field.empty()) {
            inQuotes = true;
        } else if (c == ',') {
            out.push_back(std::move(field));
            field.clear();
        } else {
            field += c;
        }
    }
    if (inQuotes)
        return false;
    out.push_back(std::move(field));
    return true;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += detail::format("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

} // namespace scsim
