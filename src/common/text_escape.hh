/**
 * @file
 * Shared escaping for the repo's line- and comma-oriented text
 * formats.
 *
 * Three surfaces hold caller-controlled free text — result-cache
 * entries (kernel names), sweep journals and wire records (error
 * messages, tags), and CSV/JSON manifests (stderr tails, signal
 * messages) — and all of them are framed by newlines or commas that
 * the payload may itself contain.  Keeping one escaper here means a
 * string survives any chain of these formats unchanged instead of
 * each writer growing its own slightly-wrong variant.
 *
 *  - escapeLine/unescapeLine: backslash-escape '\n', '\r' and '\\'
 *    so a multi-line value occupies exactly one line of a
 *    line-oriented record.
 *  - csvField/splitCsvRow: RFC-4180-style quoting (quote when the
 *    value contains a comma or quote, double internal quotes) applied
 *    *after* escapeLine, so rows stay one physical line and still
 *    round-trip embedded newlines.
 *  - jsonEscape: the manifest's JSON string escaper.
 */

#ifndef SCSIM_COMMON_TEXT_ESCAPE_HH
#define SCSIM_COMMON_TEXT_ESCAPE_HH

#include <string>
#include <vector>

namespace scsim {

/** One-line form of @p s: '\\', '\n', '\r' become escape pairs. */
std::string escapeLine(const std::string &s);

/** Inverse of escapeLine (unknown escapes pass through verbatim). */
std::string unescapeLine(const std::string &s);

/**
 * One CSV field holding @p s: newlines are backslash-escaped first
 * (rows must stay one physical line), then the field is quoted iff it
 * contains a comma, quote, or leading/trailing space, with internal
 * quotes doubled.  Round-trip with splitCsvRow + unescapeLine.
 */
std::string csvField(const std::string &s);

/**
 * Split one CSV row (no trailing newline) produced by csvField-style
 * writers into raw fields, undoing the quoting but not the backslash
 * escapes.  Returns false on malformed quoting (unterminated quote).
 */
bool splitCsvRow(const std::string &row, std::vector<std::string> &out);

/** JSON string-literal body for @p s (no surrounding quotes). */
std::string jsonEscape(const std::string &s);

} // namespace scsim

#endif // SCSIM_COMMON_TEXT_ESCAPE_HH
