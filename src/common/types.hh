/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

#ifndef SCSIM_COMMON_TYPES_HH
#define SCSIM_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace scsim {

/** Simulation time, measured in core clock cycles. */
using Cycle = std::uint64_t;

/** Sentinel for "no cycle" / "not scheduled". */
inline constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::max();

/** Architectural register index within a warp's register window. */
using RegIndex = std::int16_t;

/** Sentinel register index meaning "no register operand". */
inline constexpr RegIndex kNoReg = -1;

/** Warp-slot index inside an SM (0 .. maxWarpsPerSm-1). */
using WarpSlot = std::int32_t;

/** Sentinel warp slot. */
inline constexpr WarpSlot kNoWarp = -1;

/** Threads per warp; fixed at 32 across every modeled generation. */
inline constexpr int kWarpSize = 32;

/** Bytes per architectural register per thread. */
inline constexpr int kRegBytes = 4;

/** Device memory address. */
using Addr = std::uint64_t;

} // namespace scsim

#endif // SCSIM_COMMON_TYPES_HH
