#include "gpu/block_scheduler.hh"

#include "common/logging.hh"

namespace scsim {

void
BlockScheduler::launch(const KernelDesc &kernel)
{
    queues_.push_back(KernelQueue{ &kernel, 0 });
}

bool
BlockScheduler::pending() const
{
    for (const auto &q : queues_)
        if (q.nextBlock < q.kernel->numBlocks)
            return true;
    return false;
}

void
BlockScheduler::dispatch(Cycle now)
{
    if (!pending())
        return;
    std::size_t nSms = sms_.size();
    std::size_t nKernels = queues_.size();
    for (std::size_t i = 0; i < nSms; ++i) {
        SmCore &sm = *sms_[(rrSm_ + i) % nSms];
        // One block per SM per cycle, kernels tried round-robin.
        for (std::size_t k = 0; k < nKernels; ++k) {
            KernelQueue &q = queues_[(rrKernel_ + k) % nKernels];
            if (q.nextBlock >= q.kernel->numBlocks)
                continue;
            if (sm.canAccept(*q.kernel)) {
                sm.acceptBlock(*q.kernel, q.nextBlock++, now);
                rrKernel_ = (rrKernel_ + k + 1) % nKernels;
                break;
            }
        }
    }
    rrSm_ = (rrSm_ + 1) % nSms;
}

bool
BlockScheduler::anyCanAccept() const
{
    for (const auto &q : queues_) {
        if (q.nextBlock >= q.kernel->numBlocks)
            continue;
        for (const auto &sm : sms_)
            if (sm->canAccept(*q.kernel))
                return true;
    }
    return false;
}

void
BlockScheduler::reset()
{
    queues_.clear();
    rrSm_ = 0;
    rrKernel_ = 0;
}

} // namespace scsim
