#include "gpu/block_scheduler.hh"

#include "common/logging.hh"
#include "common/state_io.hh"
#include "trace/kernel.hh"

namespace scsim {

void
BlockScheduler::launch(const KernelDesc &kernel)
{
    queues_.push_back(KernelQueue{ &kernel, 0 });
}

bool
BlockScheduler::pending() const
{
    for (const auto &q : queues_)
        if (q.nextBlock < q.kernel->numBlocks)
            return true;
    return false;
}

void
BlockScheduler::dispatch(Cycle now)
{
    if (!pending())
        return;
    std::size_t nSms = sms_.size();
    std::size_t nKernels = queues_.size();
    for (std::size_t i = 0; i < nSms; ++i) {
        SmCore &sm = *sms_[(rrSm_ + i) % nSms];
        // One block per SM per cycle, kernels tried round-robin.
        for (std::size_t k = 0; k < nKernels; ++k) {
            KernelQueue &q = queues_[(rrKernel_ + k) % nKernels];
            if (q.nextBlock >= q.kernel->numBlocks)
                continue;
            if (sm.canAccept(*q.kernel)) {
                sm.acceptBlock(*q.kernel, q.nextBlock++, now);
                rrKernel_ = (rrKernel_ + k + 1) % nKernels;
                break;
            }
        }
    }
    rrSm_ = (rrSm_ + 1) % nSms;
}

bool
BlockScheduler::anyCanAccept() const
{
    for (const auto &q : queues_) {
        if (q.nextBlock >= q.kernel->numBlocks)
            continue;
        for (const auto &sm : sms_)
            if (sm->canAccept(*q.kernel))
                return true;
    }
    return false;
}

void
BlockScheduler::reset()
{
    queues_.clear();
    rrSm_ = 0;
    rrKernel_ = 0;
}

void
BlockScheduler::saveState(StateWriter &w, const Application &app) const
{
    w.u64("bs.queues", queues_.size());
    for (const KernelQueue &q : queues_) {
        int idx = -1;
        for (std::size_t i = 0; i < app.kernels.size(); ++i)
            if (&app.kernels[i] == q.kernel)
                idx = static_cast<int>(i);
        scsim_assert(idx >= 0, "queued kernel not in the application");
        w.i64("bs.kernel", idx);
        w.i64("bs.nextBlock", q.nextBlock);
    }
    w.u64("bs.rrSm", rrSm_);
    w.u64("bs.rrKernel", rrKernel_);
}

void
BlockScheduler::loadState(StateReader &r, const Application &app)
{
    queues_.clear();
    std::uint64_t n = r.u64("bs.queues");
    for (std::uint64_t i = 0; i < n; ++i) {
        std::int64_t idx = r.i64("bs.kernel");
        if (idx < 0 || idx >= static_cast<std::int64_t>(
                           app.kernels.size()))
            scsim_throw(CacheError,
                        "snapshot: queued kernel index %lld out of "
                        "range",
                        static_cast<long long>(idx));
        KernelQueue q;
        q.kernel = &app.kernels[static_cast<std::size_t>(idx)];
        q.nextBlock = static_cast<int>(r.i64("bs.nextBlock"));
        queues_.push_back(q);
    }
    rrSm_ = r.u64("bs.rrSm");
    rrKernel_ = r.u64("bs.rrKernel");
}

} // namespace scsim
