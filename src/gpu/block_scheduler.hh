/**
 * @file
 * GPU-level thread block scheduler.
 *
 * Dispatches pending thread blocks to SMs in round-robin order, at
 * most one block per SM per cycle, whenever an SM's resources
 * (warp-slot tables, per-sub-core register space, shared memory,
 * block slots) can hold one more block.  Multiple kernels may be
 * active at once (concurrent-kernel execution); their blocks
 * interleave round-robin across kernels, modeling the register-
 * capacity-diversity effect of Section I (effect #4).
 */

#ifndef SCSIM_GPU_BLOCK_SCHEDULER_HH
#define SCSIM_GPU_BLOCK_SCHEDULER_HH

#include <memory>
#include <vector>

#include "core/sm_core.hh"

namespace scsim {

class BlockScheduler
{
  public:
    explicit BlockScheduler(
        std::vector<std::unique_ptr<SmCore>> &sms)
        : sms_(sms)
    {}

    /** Begin dispatching @p kernel (may be called for several
     *  kernels to run them concurrently). */
    void launch(const KernelDesc &kernel);

    bool pending() const;
    int activeKernels() const { return static_cast<int>(queues_.size()); }

    /** Try to place blocks; at most one per SM per call. */
    void dispatch(Cycle now);

    /** Could any SM take one more block right now? */
    bool anyCanAccept() const;

    void reset();

    /** Checkpointing: kernel queues (as app indices) + RR cursors. */
    void saveState(StateWriter &w, const Application &app) const;
    void loadState(StateReader &r, const Application &app);

  private:
    struct KernelQueue
    {
        const KernelDesc *kernel = nullptr;
        int nextBlock = 0;
    };

    std::vector<std::unique_ptr<SmCore>> &sms_;
    std::vector<KernelQueue> queues_;
    std::size_t rrSm_ = 0;
    std::size_t rrKernel_ = 0;
};

} // namespace scsim

#endif // SCSIM_GPU_BLOCK_SCHEDULER_HH
