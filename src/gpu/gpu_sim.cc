#include "gpu/gpu_sim.hh"

#include <algorithm>
#include <utility>

#include "common/fault_inject.hh"
#include "common/logging.hh"
#include "common/state_io.hh"
#include "core/issue_cluster.hh"
#include "core/operand_collector.hh"
#include "core/warp.hh"
#include "stats/stats_io.hh"

namespace scsim {

GpuSim::GpuSim(const GpuConfig &cfg)
    : cfg_(cfg), mem_(cfg_), blockSched_(sms_)
{
    cfg_.validate();
    stats_.issuePerScheduler.assign(
        static_cast<std::size_t>(cfg_.numSms),
        std::vector<std::uint64_t>(
            static_cast<std::size_t>(cfg_.schedulersPerSm), 0));
    stats_.rfReadTrace = TimeSeries(cfg_.rfTraceWindow);
    for (int i = 0; i < cfg_.numSms; ++i)
        sms_.push_back(std::make_unique<SmCore>(cfg_, i, mem_, stats_));
}

void
GpuSim::resetState()
{
    stats_ = SimStats{};
    stats_.issuePerScheduler.assign(
        static_cast<std::size_t>(cfg_.numSms),
        std::vector<std::uint64_t>(
            static_cast<std::size_t>(cfg_.schedulersPerSm), 0));
    stats_.rfReadTrace = TimeSeries(cfg_.rfTraceWindow);
    mem_.reset();
    for (auto &sm : sms_)
        sm->reset();
}

Cycle
GpuSim::simulateKernel(const KernelDesc &kernel, Cycle now)
{
    SmCore::checkKernelFits(cfg_, kernel);
    blockSched_.reset();
    blockSched_.launch(kernel);
    kernelStart_ = now;
    lastProgress_ = now;
    now = runLoop(now, kernel.name.c_str());
    stats_.kernelSpans.emplace_back(kernel.name, now - kernelStart_);
    return now;
}

Cycle
GpuSim::runLoop(Cycle now, const char *what)
{
    auto anySmBusy = [&] {
        for (const auto &sm : sms_)
            if (sm->busy())
                return true;
        return false;
    };

    // Retirement fingerprint for the no-progress watchdog: any issue,
    // writeback, or warp/block completion changes it.  A loop cycling
    // with this frozen is livelocked — the longest legitimate quiet
    // stretch is one memory round-trip, orders of magnitude below the
    // window.
    auto retired = [&] {
        return stats_.instructions + stats_.rfWrites
            + stats_.warpsCompleted + stats_.blocksCompleted;
    };
    // lastProgress_ is a member set by the caller (kernel entry or
    // snapshot restore); the retirement counter is recomputable, so a
    // resume re-derives it here and observes the same watchdog
    // deadline an uninterrupted run would.
    std::uint64_t lastRetired = retired();

    // Test hook: an armed synthetic hang keeps the loop alive after
    // the workload drains, so the watchdog path can be exercised
    // deterministically.
    const bool forcedHang = FaultInjector::instance().hangArmedFor(what);
    // Test hook: an armed crash kills the process with a real signal
    // after the first simulated cycle — mid-kernel, exactly what
    // `sweep --isolate` must contain.
    const int forcedCrash = FaultInjector::instance().crashSignalFor(what);

    while (blockSched_.pending() || anySmBusy() || forcedHang) {
        // Checkpoint at the iteration top, before any state mutation:
        // a resume re-enters this loop at the saved `now` and replays
        // the exact same dispatch/cycle sequence.  saveRunState is
        // const, so installing a sink cannot perturb the simulation.
        if (ckptEvery_ && ckptSink_ && now >= ckptNext_) {
            ckptSink_(saveRunState(now), now);
            ckptNext_ = now + ckptEvery_;
        }
        blockSched_.dispatch(now);
        for (auto &sm : sms_)
            sm->cycle(now);
        if (forcedCrash)
            FaultInjector::raiseNow(forcedCrash);

        Cycle next = now + 1;
        if (cfg_.enableIdleSkip) {
            Cycle wake = kNoCycle;
            for (const auto &sm : sms_)
                wake = std::min(wake, sm->nextWake(now));
            if (blockSched_.anyCanAccept())
                wake = now + 1;
            if (wake != kNoCycle)
                next = std::max(wake, now + 1);
        }
        if (next > now + 1)
            for (auto &sm : sms_)
                sm->onIdleSkip();
        now = next;

        if (cfg_.maxCycles && now >= cfg_.maxCycles)
            throw HangError(
                detail::format(
                    "'%s' exceeded maxCycles (%llu); likely a "
                    "too-large workload for this configuration",
                    what,
                    static_cast<unsigned long long>(cfg_.maxCycles)),
                dumpState(now));

        if (cfg_.hangWindowCycles) {
            if (std::uint64_t r = retired(); r != lastRetired) {
                lastRetired = r;
                lastProgress_ = now;
            } else if (now - lastProgress_ >= cfg_.hangWindowCycles) {
                throw HangError(
                    detail::format(
                        "'%s' hung: no forward progress in %llu "
                        "cycles (cycle %llu)", what,
                        static_cast<unsigned long long>(
                            cfg_.hangWindowCycles),
                        static_cast<unsigned long long>(now)),
                    dumpState(now));
            }
        }
    }
    return now;
}

std::string
GpuSim::dumpState(Cycle now) const
{
    std::string out = detail::format(
        "hang diagnostic at cycle %llu: %d SMs, blocks pending=%s, "
        "active kernels=%d\n",
        static_cast<unsigned long long>(now),
        static_cast<int>(sms_.size()),
        blockSched_.pending() ? "yes" : "no",
        blockSched_.activeKernels());
    for (const auto &smPtr : sms_) {
        const SmCore &sm = *smPtr;
        out += detail::format(
            "  sm %d: blocks=%d residentWarps=%d\n", sm.smId(),
            sm.activeBlocks(), sm.residentWarps());
        const WarpContext *warps = sm.warpTable();
        for (int c = 0; c < sm.numClusters(); ++c) {
            const IssueCluster &cluster = sm.cluster(c);
            for (int s = 0; s < cluster.numSchedulers(); ++s) {
                int schedulable = 0, atBarrier = 0, sbPending = 0;
                for (WarpSlot slot : cluster.warpsOf(s)) {
                    const WarpContext &w =
                        warps[static_cast<std::size_t>(slot)];
                    if (w.schedulable())
                        ++schedulable;
                    if (w.atBarrier)
                        ++atBarrier;
                    sbPending += w.scoreboard.pendingCount();
                }
                out += detail::format(
                    "    sub-core %d sched %d: warps=%d "
                    "schedulable=%d atBarrier=%d "
                    "scoreboardPending=%d\n",
                    c, s, cluster.warpCount(s), schedulable,
                    atBarrier, sbPending);
            }
            const OperandCollector &oc = cluster.collector();
            int busy = 0, ready = 0;
            Cycle oldest = kNoCycle;
            for (int u = 0; u < oc.size(); ++u) {
                const CollectorUnit &cu = oc.unit(u);
                if (!cu.busy)
                    continue;
                ++busy;
                if (cu.ready())
                    ++ready;
                oldest = std::min(oldest, cu.allocCycle);
            }
            out += detail::format(
                "    sub-core %d collector: cus=%d busy=%d ready=%d",
                c, oc.size(), busy, ready);
            if (busy)
                out += detail::format(
                    " oldestAlloc=%llu",
                    static_cast<unsigned long long>(oldest));
            out += '\n';
        }
    }
    return out;
}

void
GpuSim::setCheckpoint(Cycle everyCycles, CheckpointSink sink)
{
    ckptEvery_ = everyCycles;
    ckptSink_ = std::move(sink);
}

SimStats
GpuSim::finishRun(Cycle now)
{
    stats_.cycles = now;
    stats_.rfReadTrace.finalize(now);
    mem_.exportStats(stats_);
    app_ = nullptr;
    return stats_;
}

SimStats
GpuSim::runConcurrent(const Application &app)
{
    app.validate();
    resetState();
    app_ = &app;
    concurrent_ = true;
    kernelIdx_ = 0;
    kernelStart_ = 0;
    lastProgress_ = 0;
    ckptNext_ = ckptEvery_;  // skip the useless cycle-0 snapshot
    blockSched_.reset();
    for (const auto &kernel : app.kernels) {
        SmCore::checkKernelFits(cfg_, kernel);
        blockSched_.launch(kernel);
    }
    Cycle now = runLoop(0, app.name.c_str());
    return finishRun(now);
}

SimStats
GpuSim::run(const Application &app)
{
    app.validate();
    resetState();
    app_ = &app;
    concurrent_ = false;
    ckptNext_ = ckptEvery_;
    Cycle now = 0;
    for (std::size_t i = 0; i < app.kernels.size(); ++i) {
        kernelIdx_ = i;
        now = simulateKernel(app.kernels[i], now);
    }
    return finishRun(now);
}

std::string
GpuSim::saveRunState(Cycle now) const
{
    scsim_assert(app_ != nullptr,
                 "saveRunState outside a run() / resume()");
    StateWriter w;
    w.b("run.concurrent", concurrent_);
    w.u64("run.kernelIdx", kernelIdx_);
    w.u64("run.kernelStart", kernelStart_);
    w.u64("run.now", now);
    w.u64("run.lastProgress", lastProgress_);
    // SimStats rides along as one escaped line of its own wire text;
    // the two trace fields below cover the partially filled trailing
    // window the stats payload (completed samples only) omits.
    w.str("run.stats", serializeStatsPayload(stats_));
    w.u64("run.traceStart", stats_.rfReadTrace.curWindowStart());
    w.f64("run.traceSum", stats_.rfReadTrace.curSum());
    mem_.saveState(w);
    blockSched_.saveState(w, *app_);
    for (const auto &sm : sms_)
        sm->saveState(w, *app_);
    return w.take();
}

SimStats
GpuSim::resume(const Application &app, const std::string &payload)
{
    app.validate();
    resetState();
    app_ = &app;

    StateReader r(payload);
    concurrent_ = r.b("run.concurrent");
    kernelIdx_ = r.u64("run.kernelIdx");
    kernelStart_ = r.u64("run.kernelStart");
    Cycle now = r.u64("run.now");
    lastProgress_ = r.u64("run.lastProgress");

    std::string statsPayload = r.str("run.stats");
    SimStats restored;
    if (!parseStatsPayload(statsPayload, restored))
        scsim_throw(CacheError, "snapshot: malformed stats payload");
    stats_ = std::move(restored);
    if (stats_.issuePerScheduler.size()
            != static_cast<std::size_t>(cfg_.numSms)
        || (cfg_.numSms > 0
            && stats_.issuePerScheduler[0].size()
                   != static_cast<std::size_t>(cfg_.schedulersPerSm)))
        scsim_throw(CacheError,
                    "snapshot: issue matrix shape does not match the "
                    "configuration");
    Cycle traceStart = r.u64("run.traceStart");
    double traceSum = r.f64("run.traceSum");
    stats_.rfReadTrace.restoreState(stats_.rfReadTrace.samples(),
                                    traceStart, traceSum);

    mem_.loadState(r);
    blockSched_.loadState(r, app);
    for (auto &sm : sms_)
        sm->loadState(r, app);
    r.expectEnd();

    ckptNext_ = ckptEvery_ ? now + ckptEvery_ : 0;

    if (concurrent_) {
        now = runLoop(now, app.name.c_str());
        return finishRun(now);
    }
    if (kernelIdx_ >= app.kernels.size())
        scsim_throw(CacheError,
                    "snapshot: kernel index %zu out of range (%zu "
                    "kernels)",
                    kernelIdx_, app.kernels.size());
    const KernelDesc &current = app.kernels[kernelIdx_];
    now = runLoop(now, current.name.c_str());
    stats_.kernelSpans.emplace_back(current.name, now - kernelStart_);
    for (std::size_t i = kernelIdx_ + 1; i < app.kernels.size(); ++i) {
        kernelIdx_ = i;
        now = simulateKernel(app.kernels[i], now);
    }
    return finishRun(now);
}

SimStats
GpuSim::run(const KernelDesc &kernel)
{
    Application app;
    app.name = kernel.name;
    app.kernels.push_back(kernel);
    return run(app);
}

SimStats
simulate(const GpuConfig &cfg, const Application &app)
{
    GpuSim sim(cfg);
    return sim.run(app);
}

SimStats
simulate(const GpuConfig &cfg, const KernelDesc &kernel)
{
    GpuSim sim(cfg);
    return sim.run(kernel);
}

} // namespace scsim
