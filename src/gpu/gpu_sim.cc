#include "gpu/gpu_sim.hh"

#include <algorithm>

#include "common/logging.hh"

namespace scsim {

GpuSim::GpuSim(const GpuConfig &cfg)
    : cfg_(cfg), mem_(cfg_), blockSched_(sms_)
{
    cfg_.validate();
    stats_.issuePerScheduler.assign(
        static_cast<std::size_t>(cfg_.numSms),
        std::vector<std::uint64_t>(
            static_cast<std::size_t>(cfg_.schedulersPerSm), 0));
    stats_.rfReadTrace = TimeSeries(cfg_.rfTraceWindow);
    for (int i = 0; i < cfg_.numSms; ++i)
        sms_.push_back(std::make_unique<SmCore>(cfg_, i, mem_, stats_));
}

void
GpuSim::resetState()
{
    stats_ = SimStats{};
    stats_.issuePerScheduler.assign(
        static_cast<std::size_t>(cfg_.numSms),
        std::vector<std::uint64_t>(
            static_cast<std::size_t>(cfg_.schedulersPerSm), 0));
    stats_.rfReadTrace = TimeSeries(cfg_.rfTraceWindow);
    mem_.reset();
    for (auto &sm : sms_)
        sm->reset();
}

Cycle
GpuSim::simulateKernel(const KernelDesc &kernel, Cycle now)
{
    SmCore::checkKernelFits(cfg_, kernel);
    blockSched_.reset();
    blockSched_.launch(kernel);
    Cycle start = now;
    now = runLoop(now, kernel.name.c_str());
    stats_.kernelSpans.emplace_back(kernel.name, now - start);
    return now;
}

Cycle
GpuSim::runLoop(Cycle now, const char *what)
{
    auto anySmBusy = [&] {
        for (const auto &sm : sms_)
            if (sm->busy())
                return true;
        return false;
    };

    while (blockSched_.pending() || anySmBusy()) {
        blockSched_.dispatch(now);
        for (auto &sm : sms_)
            sm->cycle(now);

        Cycle next = now + 1;
        if (cfg_.enableIdleSkip) {
            Cycle wake = kNoCycle;
            for (const auto &sm : sms_)
                wake = std::min(wake, sm->nextWake(now));
            if (blockSched_.anyCanAccept())
                wake = now + 1;
            if (wake != kNoCycle)
                next = std::max(wake, now + 1);
        }
        if (next > now + 1)
            for (auto &sm : sms_)
                sm->onIdleSkip();
        now = next;
        if (now >= cfg_.maxCycles)
            scsim_fatal("'%s' exceeded maxCycles (%llu); likely a "
                        "too-large workload for this configuration",
                        what,
                        static_cast<unsigned long long>(cfg_.maxCycles));
    }
    return now;
}

SimStats
GpuSim::runConcurrent(const Application &app)
{
    app.validate();
    resetState();
    blockSched_.reset();
    for (const auto &kernel : app.kernels) {
        SmCore::checkKernelFits(cfg_, kernel);
        blockSched_.launch(kernel);
    }
    Cycle now = runLoop(0, app.name.c_str());
    stats_.cycles = now;
    stats_.rfReadTrace.finalize(now);
    mem_.exportStats(stats_);
    return stats_;
}

SimStats
GpuSim::run(const Application &app)
{
    app.validate();
    resetState();
    Cycle now = 0;
    for (const auto &kernel : app.kernels)
        now = simulateKernel(kernel, now);
    stats_.cycles = now;
    stats_.rfReadTrace.finalize(now);
    mem_.exportStats(stats_);
    return stats_;
}

SimStats
GpuSim::run(const KernelDesc &kernel)
{
    Application app;
    app.name = kernel.name;
    app.kernels.push_back(kernel);
    return run(app);
}

SimStats
simulate(const GpuConfig &cfg, const Application &app)
{
    GpuSim sim(cfg);
    return sim.run(app);
}

SimStats
simulate(const GpuConfig &cfg, const KernelDesc &kernel)
{
    GpuSim sim(cfg);
    return sim.run(kernel);
}

} // namespace scsim
