/**
 * @file
 * Top-level simulation driver.
 *
 * Owns the memory system, the SMs, and the block scheduler; runs
 * applications (kernel sequences) to completion and returns the
 * aggregated statistics.  Supports idle-cycle skipping: when no SM has
 * immediately actionable work, time jumps to the next writeback
 * event, which is exact because all state changes in between would
 * have been no-ops.
 *
 * A two-part watchdog contains runaway simulations: exceeding the
 * cfg.maxCycles budget, or retiring nothing for cfg.hangWindowCycles
 * consecutive cycles (a livelock, e.g. a barrier that can never be
 * satisfied), throws HangError carrying a per-sub-core machine-state
 * diagnostic instead of spinning forever.  Either check can be
 * disabled by setting its knob to 0.
 */

#ifndef SCSIM_GPU_GPU_SIM_HH
#define SCSIM_GPU_GPU_SIM_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "gpu/block_scheduler.hh"
#include "mem/mem_system.hh"
#include "stats/stats.hh"
#include "trace/kernel.hh"

namespace scsim {

class GpuSim
{
  public:
    explicit GpuSim(const GpuConfig &cfg);

    /** Run all kernels of @p app back-to-back; returns run stats. */
    SimStats run(const Application &app);

    /** Convenience: run a single kernel. */
    SimStats run(const KernelDesc &kernel);

    /**
     * Run all kernels of @p app *concurrently*: every kernel's grid
     * is live from cycle 0 and the block scheduler interleaves their
     * blocks (the multi-kernel setting behind the paper's
     * register-capacity-diversity effect).
     */
    SimStats runConcurrent(const Application &app);

    const GpuConfig &config() const { return cfg_; }

    /** SM inspection (tests). */
    const SmCore &
    sm(int i) const
    {
        return *sms_[static_cast<std::size_t>(i)];
    }

    /**
     * Multi-line machine-state snapshot used by the hang watchdog:
     * block-scheduler backlog and, per SM and sub-core, scheduler
     * warp counts, schedulable warps, scoreboard occupancy, and
     * collector-unit status.
     */
    std::string dumpState(Cycle now) const;

    /**
     * Checkpointing.  When an interval is set, the sink is invoked at
     * the top of the run loop every @p everyCycles simulated cycles
     * with a serialized mid-run state payload.  Saving is strictly
     * read-only: simulation results are bit-identical whether or not
     * a sink is installed.
     */
    using CheckpointSink =
        std::function<void(const std::string &payload, Cycle now)>;
    void setCheckpoint(Cycle everyCycles, CheckpointSink sink);

    /**
     * Resume a run from a payload produced by a checkpoint sink.
     * @p app must be the same application (same config, same kernel
     * list) that produced the snapshot; any structural mismatch or
     * damaged field throws CacheError, which callers treat as "start
     * cold".  Completes the interrupted run and returns final stats
     * identical to an uninterrupted run(app)/runConcurrent(app).
     */
    SimStats resume(const Application &app, const std::string &payload);

  private:
    void resetState();
    Cycle simulateKernel(const KernelDesc &kernel, Cycle now);
    Cycle runLoop(Cycle now, const char *what);
    std::string saveRunState(Cycle now) const;
    SimStats finishRun(Cycle now);

    GpuConfig cfg_;
    MemSystem mem_;
    SimStats stats_;
    std::vector<std::unique_ptr<SmCore>> sms_;
    BlockScheduler blockSched_;

    // Checkpoint policy + run cursor (members so a snapshot taken
    // inside runLoop can capture, and a resume can restore, the
    // position within the kernel sequence and the watchdog state).
    Cycle ckptEvery_ = 0;
    Cycle ckptNext_ = 0;
    CheckpointSink ckptSink_;
    const Application *app_ = nullptr;
    bool concurrent_ = false;
    std::size_t kernelIdx_ = 0;
    Cycle kernelStart_ = 0;
    Cycle lastProgress_ = 0;
};

/** One-shot helper used throughout the bench harness. */
SimStats simulate(const GpuConfig &cfg, const Application &app);
SimStats simulate(const GpuConfig &cfg, const KernelDesc &kernel);

} // namespace scsim

#endif // SCSIM_GPU_GPU_SIM_HH
