#include "trace/reg_realloc.hh"

#include <algorithm>
#include <map>
#include <vector>

#include "common/logging.hh"

namespace scsim {

namespace {

/** Distinct source registers of one instruction (up to 3). */
int
distinctSrcs(const Instruction &inst, RegIndex out[3])
{
    int n = 0;
    for (RegIndex r : inst.srcs) {
        if (r == kNoReg)
            continue;
        bool dup = false;
        for (int i = 0; i < n; ++i)
            dup = dup || out[i] == r;
        if (!dup)
            out[n++] = r;
    }
    return n;
}

} // namespace

ConflictProfile
profileConflicts(const WarpProgram &prog, int banks)
{
    ConflictProfile p;
    std::vector<int> perBank(static_cast<std::size_t>(banks));
    for (const Instruction &inst : prog.code) {
        if (!inst.usesCollector())
            continue;
        ++p.instructions;
        std::fill(perBank.begin(), perBank.end(), 0);
        RegIndex srcs[3];
        int n = distinctSrcs(inst, srcs);
        for (int i = 0; i < n; ++i)
            ++perBank[static_cast<std::size_t>(
                static_cast<unsigned>(srcs[i])
                % static_cast<unsigned>(banks))];
        for (int b = 0; b < banks; ++b)
            if (perBank[static_cast<std::size_t>(b)] > 1)
                p.sameInstConflicts += static_cast<std::uint64_t>(
                    perBank[static_cast<std::size_t>(b)] - 1);
    }
    return p;
}

WarpProgram
reallocateRegisters(const WarpProgram &prog, int regWindow, int banks)
{
    scsim_assert(banks >= 1, "need at least one bank");
    scsim_assert(regWindow >= 1, "empty register window");

    // Pairwise "wants a different bank" weights between source
    // registers that appear in the same instruction.
    std::map<std::pair<RegIndex, RegIndex>, std::uint64_t> wantApart;
    std::vector<std::uint64_t> weight(
        static_cast<std::size_t>(regWindow), 0);
    std::vector<bool> used(static_cast<std::size_t>(regWindow), false);

    for (const Instruction &inst : prog.code) {
        auto touch = [&](RegIndex r) {
            if (r != kNoReg) {
                scsim_assert(r < regWindow, "register out of window");
                used[static_cast<std::size_t>(r)] = true;
            }
        };
        touch(inst.dst);
        for (RegIndex r : inst.srcs)
            touch(r);
        if (!inst.usesCollector())
            continue;
        RegIndex srcs[3];
        int n = distinctSrcs(inst, srcs);
        for (int i = 0; i < n; ++i)
            for (int j = i + 1; j < n; ++j) {
                auto key = std::minmax(srcs[i], srcs[j]);
                ++wantApart[{ key.first, key.second }];
                ++weight[static_cast<std::size_t>(srcs[i])];
                ++weight[static_cast<std::size_t>(srcs[j])];
            }
    }

    // Free id pool per bank class (class of id = id mod banks).
    std::vector<std::vector<RegIndex>> freeIds(
        static_cast<std::size_t>(banks));
    for (int id = regWindow - 1; id >= 0; --id)
        freeIds[static_cast<std::size_t>(id % banks)].push_back(
            static_cast<RegIndex>(id));

    // Process registers by falling conflict weight.
    std::vector<RegIndex> order;
    for (int r = 0; r < regWindow; ++r)
        if (used[static_cast<std::size_t>(r)])
            order.push_back(static_cast<RegIndex>(r));
    std::stable_sort(order.begin(), order.end(),
                     [&](RegIndex a, RegIndex b) {
                         return weight[static_cast<std::size_t>(a)]
                             > weight[static_cast<std::size_t>(b)];
                     });

    std::vector<int> classOf(static_cast<std::size_t>(regWindow), -1);
    std::vector<RegIndex> newId(static_cast<std::size_t>(regWindow),
                                kNoReg);
    for (RegIndex reg : order) {
        int bestClass = -1;
        std::uint64_t bestCost = 0;
        for (int c = 0; c < banks; ++c) {
            if (freeIds[static_cast<std::size_t>(c)].empty())
                continue;
            std::uint64_t cost = 0;
            for (RegIndex other : order) {
                if (other == reg
                    || classOf[static_cast<std::size_t>(other)] != c)
                    continue;
                auto key = std::minmax(reg, other);
                auto it = wantApart.find({ key.first, key.second });
                if (it != wantApart.end())
                    cost += it->second;
            }
            if (bestClass < 0 || cost < bestCost) {
                bestClass = c;
                bestCost = cost;
            }
        }
        scsim_assert(bestClass >= 0, "register ids exhausted");
        classOf[static_cast<std::size_t>(reg)] = bestClass;
        newId[static_cast<std::size_t>(reg)] =
            freeIds[static_cast<std::size_t>(bestClass)].back();
        freeIds[static_cast<std::size_t>(bestClass)].pop_back();
    }

    WarpProgram out;
    out.code.reserve(prog.code.size());
    for (const Instruction &inst : prog.code) {
        Instruction renamed = inst;
        auto rename = [&](RegIndex r) {
            return r == kNoReg ? kNoReg
                               : newId[static_cast<std::size_t>(r)];
        };
        renamed.dst = rename(inst.dst);
        for (std::size_t i = 0; i < renamed.srcs.size(); ++i)
            renamed.srcs[i] = rename(inst.srcs[i]);
        out.code.push_back(renamed);
    }
    return out;
}

KernelDesc
reallocateRegisters(const KernelDesc &kernel, int banks)
{
    KernelDesc out = kernel;
    out.name = kernel.name + "-realloc";
    for (auto &shape : out.shapes)
        shape = reallocateRegisters(shape, kernel.regsPerThread, banks);
    out.validate();
    return out;
}

} // namespace scsim
