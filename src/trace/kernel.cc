#include "trace/kernel.hh"

#include "common/logging.hh"

namespace scsim {

std::uint64_t
KernelDesc::totalWarpInstructions() const
{
    std::uint64_t perBlock = 0;
    for (int w = 0; w < warpsPerBlock; ++w)
        perBlock += programOf(w).length();
    return perBlock * static_cast<std::uint64_t>(numBlocks);
}

void
KernelDesc::validate() const
{
    if (numBlocks < 1)
        scsim_throw(WorkloadError, "kernel '%s': numBlocks must be >= 1", name.c_str());
    if (warpsPerBlock < 1 || warpsPerBlock > 64)
        scsim_throw(WorkloadError, "kernel '%s': warpsPerBlock %d out of [1,64]",
                    name.c_str(), warpsPerBlock);
    if (regsPerThread < 1 || regsPerThread > 256)
        scsim_throw(WorkloadError, "kernel '%s': regsPerThread %d out of [1,256]",
                    name.c_str(), regsPerThread);
    if (shapeOfWarp.size() != static_cast<std::size_t>(warpsPerBlock))
        scsim_throw(WorkloadError, "kernel '%s': shapeOfWarp has %zu entries, "
                    "expected %d", name.c_str(), shapeOfWarp.size(),
                    warpsPerBlock);
    if (shapes.empty())
        scsim_throw(WorkloadError, "kernel '%s': no shapes", name.c_str());
    for (std::uint16_t s : shapeOfWarp) {
        if (s >= shapes.size())
            scsim_throw(WorkloadError, "kernel '%s': shape index %u out of range",
                        name.c_str(), s);
    }
    for (std::size_t si = 0; si < shapes.size(); ++si) {
        const auto &code = shapes[si].code;
        if (code.empty() || code.back().op != Opcode::EXIT)
            scsim_throw(WorkloadError, "kernel '%s': shape %zu must end in EXIT",
                        name.c_str(), si);
        for (std::size_t pc = 0; pc < code.size(); ++pc) {
            const Instruction &inst = code[pc];
            if (inst.op == Opcode::EXIT && pc + 1 != code.size())
                scsim_throw(WorkloadError, "kernel '%s': shape %zu has EXIT mid-stream",
                            name.c_str(), si);
            auto checkReg = [&](RegIndex r) {
                if (r != kNoReg && (r < 0 || r >= regsPerThread))
                    scsim_throw(WorkloadError, "kernel '%s': shape %zu pc %zu register "
                                "%d out of window [0,%d)", name.c_str(),
                                si, pc, r, regsPerThread);
            };
            checkReg(inst.dst);
            for (RegIndex r : inst.srcs)
                checkReg(r);
            if (isMemory(inst.op) && inst.mem.footprintBytes == 0)
                scsim_throw(WorkloadError, "kernel '%s': shape %zu pc %zu memory "
                            "footprint is zero", name.c_str(), si, pc);
        }
    }
}

std::uint64_t
Application::totalWarpInstructions() const
{
    std::uint64_t total = 0;
    for (const auto &k : kernels)
        total += k.totalWarpInstructions();
    return total;
}

void
Application::validate() const
{
    if (kernels.empty())
        scsim_throw(WorkloadError, "application '%s' has no kernels", name.c_str());
    for (const auto &k : kernels)
        k.validate();
}

} // namespace scsim
