#include "trace/trace_io.hh"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace scsim {

namespace {

void
writeInstruction(std::ostream &os, const Instruction &inst)
{
    os << toString(inst.op) << ' ' << inst.dst;
    for (RegIndex r : inst.srcs)
        os << ' ' << r;
    if (isMemory(inst.op)) {
        const MemInfo &m = inst.mem;
        os << " space=" << (m.space == MemSpace::Global ? "G" : "S")
           << " region=" << static_cast<int>(m.region)
           << " sectors=" << static_cast<int>(m.sectors)
           << " stride=" << m.strideBytes
           << " step=" << m.stepBytes
           << " fp=" << m.footprintBytes
           << " random=" << (m.randomAccess ? 1 : 0);
    }
    os << '\n';
}

Instruction
parseInstruction(const std::string &line, int lineNo)
{
    std::istringstream iss(line);
    std::string mnemonic;
    iss >> mnemonic;
    Instruction inst;
    inst.op = opcodeFromString(mnemonic);
    int dst;
    iss >> dst;
    inst.dst = static_cast<RegIndex>(dst);
    for (auto &src : inst.srcs) {
        int r;
        iss >> r;
        src = static_cast<RegIndex>(r);
    }
    if (iss.fail())
        scsim_fatal("trace line %d: malformed operands", lineNo);
    if (isMemory(inst.op)) {
        std::string kv;
        while (iss >> kv) {
            auto eq = kv.find('=');
            if (eq == std::string::npos)
                scsim_fatal("trace line %d: bad attribute '%s'",
                            lineNo, kv.c_str());
            std::string key = kv.substr(0, eq);
            std::string val = kv.substr(eq + 1);
            MemInfo &m = inst.mem;
            if (key == "space") {
                m.space = (val == "G") ? MemSpace::Global
                                       : MemSpace::Shared;
            } else if (key == "region") {
                m.region = static_cast<std::uint8_t>(std::stoul(val));
            } else if (key == "sectors") {
                m.sectors = static_cast<std::uint8_t>(std::stoul(val));
            } else if (key == "stride") {
                m.strideBytes = static_cast<std::uint32_t>(std::stoul(val));
            } else if (key == "step") {
                m.stepBytes = static_cast<std::uint32_t>(std::stoul(val));
            } else if (key == "fp") {
                m.footprintBytes = std::stoull(val);
            } else if (key == "random") {
                m.randomAccess = (val == "1");
            } else {
                scsim_fatal("trace line %d: unknown attribute '%s'",
                            lineNo, key.c_str());
            }
        }
    }
    return inst;
}

/** Read the next non-empty, non-comment line; false on EOF. */
bool
nextLine(std::istream &is, std::string &line, int &lineNo)
{
    while (std::getline(is, line)) {
        ++lineNo;
        auto first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos)
            continue;
        if (line[first] == '#')
            continue;
        auto last = line.find_last_not_of(" \t\r");
        line = line.substr(first, last - first + 1);
        return true;
    }
    return false;
}

} // namespace

void
writeApplication(std::ostream &os, const Application &app)
{
    os << "# subcoresim trace v1\n";
    os << "app " << app.name << ' ' << app.suite << '\n';
    for (const auto &k : app.kernels) {
        os << "kernel " << k.name
           << " blocks=" << k.numBlocks
           << " warps=" << k.warpsPerBlock
           << " regs=" << k.regsPerThread
           << " smem=" << k.smemBytesPerBlock << '\n';
        for (const auto &shape : k.shapes) {
            os << "shape " << shape.code.size() << '\n';
            for (const auto &inst : shape.code)
                writeInstruction(os, inst);
        }
        os << "map";
        for (std::uint16_t s : k.shapeOfWarp)
            os << ' ' << s;
        os << "\nendkernel\n";
    }
    os << "endapp\n";
}

Application
readApplication(std::istream &is)
{
    Application app;
    std::string line;
    int lineNo = 0;

    if (!nextLine(is, line, lineNo) || line.rfind("app ", 0) != 0)
        scsim_fatal("trace line %d: expected 'app <name> <suite>'",
                    lineNo);
    {
        std::istringstream iss(line);
        std::string tag;
        iss >> tag >> app.name >> app.suite;
    }

    while (nextLine(is, line, lineNo)) {
        if (line == "endapp")
            break;
        if (line.rfind("kernel ", 0) != 0)
            scsim_fatal("trace line %d: expected kernel/endapp, got '%s'",
                        lineNo, line.c_str());
        KernelDesc k;
        {
            std::istringstream iss(line);
            std::string tag, kv;
            iss >> tag >> k.name;
            while (iss >> kv) {
                auto eq = kv.find('=');
                std::string key = kv.substr(0, eq);
                long val = std::stol(kv.substr(eq + 1));
                if (key == "blocks") k.numBlocks = static_cast<int>(val);
                else if (key == "warps")
                    k.warpsPerBlock = static_cast<int>(val);
                else if (key == "regs")
                    k.regsPerThread = static_cast<int>(val);
                else if (key == "smem")
                    k.smemBytesPerBlock =
                        static_cast<std::uint32_t>(val);
                else
                    scsim_fatal("trace line %d: unknown kernel attr '%s'",
                                lineNo, key.c_str());
            }
        }
        // shapes and map
        while (nextLine(is, line, lineNo)) {
            if (line == "endkernel")
                break;
            if (line.rfind("shape ", 0) == 0) {
                std::size_t n = std::stoul(line.substr(6));
                WarpProgram prog;
                prog.code.reserve(n);
                for (std::size_t i = 0; i < n; ++i) {
                    if (!nextLine(is, line, lineNo))
                        scsim_fatal("trace: EOF inside shape");
                    prog.code.push_back(parseInstruction(line, lineNo));
                }
                k.shapes.push_back(std::move(prog));
            } else if (line.rfind("map", 0) == 0) {
                std::istringstream iss(line.substr(3));
                unsigned s;
                while (iss >> s)
                    k.shapeOfWarp.push_back(
                        static_cast<std::uint16_t>(s));
            } else {
                scsim_fatal("trace line %d: unexpected '%s'", lineNo,
                            line.c_str());
            }
        }
        k.validate();
        app.kernels.push_back(std::move(k));
    }
    app.validate();
    return app;
}

void
saveApplication(const std::string &path, const Application &app)
{
    std::ofstream out(path);
    if (!out)
        scsim_fatal("cannot open '%s' for writing", path.c_str());
    writeApplication(out, app);
}

Application
loadApplication(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        scsim_fatal("cannot open trace '%s'", path.c_str());
    return readApplication(in);
}

} // namespace scsim
