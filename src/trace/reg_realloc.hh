/**
 * @file
 * Compiler-style register re-allocation.
 *
 * Section IV-A observes that sub-core partitioning "increased pressure
 * on the compiler to avoid register bank conflicts".  This pass is
 * that compiler fix: it renames a kernel's architectural registers (a
 * bijection within each shape's register window) to minimize
 * *same-instruction* bank conflicts on a given bank count.
 *
 * What it cannot fix — and what motivates RBA — is cross-warp
 * contention: the issue interleaving of other warps is unknown at
 * compile time, so two warps can still collide on a bank no matter how
 * each one's operands are laid out.  The `sens_compiler_swizzle` bench
 * quantifies exactly this gap.
 */

#ifndef SCSIM_TRACE_REG_REALLOC_HH
#define SCSIM_TRACE_REG_REALLOC_HH

#include "trace/kernel.hh"

namespace scsim {

/** Conflict metrics of one instruction stream for @p banks banks. */
struct ConflictProfile
{
    std::uint64_t instructions = 0;   //!< collector instructions
    /** Same-instruction same-bank source pairs (excess reads). */
    std::uint64_t sameInstConflicts = 0;

    double
    conflictsPerInst() const
    {
        return instructions
            ? static_cast<double>(sameInstConflicts)
                  / static_cast<double>(instructions)
            : 0.0;
    }
};

/** Count same-instruction bank conflicts of @p prog (slot 0 view —
 *  the metric is slot independent because the swizzle only rotates
 *  the mapping). */
ConflictProfile profileConflicts(const WarpProgram &prog, int banks);

/**
 * Rename @p prog 's registers to reduce same-instruction bank
 * conflicts for @p banks banks.  Greedy: registers are processed in
 * falling co-occurrence weight and pinned to the bank class that
 * minimizes conflict weight against already-placed registers, subject
 * to per-class id capacity inside [0, regWindow).
 *
 * @param regWindow  size of the register window (ids stay below it)
 * @return the renamed program (same length, same opcodes/semantics)
 */
WarpProgram reallocateRegisters(const WarpProgram &prog, int regWindow,
                                int banks);

/** Apply reallocateRegisters to every shape of @p kernel. */
KernelDesc reallocateRegisters(const KernelDesc &kernel, int banks);

} // namespace scsim

#endif // SCSIM_TRACE_REG_REALLOC_HH
