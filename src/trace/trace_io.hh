/**
 * @file
 * Text (de)serialization of applications.
 *
 * A small line-oriented format stands in for Accel-Sim SASS traces:
 * kernels, their warp shapes, and per-warp shape maps round-trip
 * exactly.  Useful for archiving generated workloads and for feeding
 * externally produced traces into the simulator.
 */

#ifndef SCSIM_TRACE_TRACE_IO_HH
#define SCSIM_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "trace/kernel.hh"

namespace scsim {

/** Serialize an application to the text trace format. */
void writeApplication(std::ostream &os, const Application &app);

/** Parse one application; fatal on malformed input. */
Application readApplication(std::istream &is);

/** Convenience file wrappers. */
void saveApplication(const std::string &path, const Application &app);
Application loadApplication(const std::string &path);

} // namespace scsim

#endif // SCSIM_TRACE_TRACE_IO_HH
