/**
 * @file
 * Kernel and application descriptions.
 *
 * A kernel is a grid of identical thread blocks.  Each warp slot in
 * the block executes one of a small set of *shapes* (instruction
 * streams); the shapeOfWarp table maps warp-in-block -> shape.  This
 * factorization keeps memory bounded while expressing arbitrary
 * inter-warp divergence (warp-specialized kernels are simply blocks
 * whose warps map to shapes of very different lengths).
 */

#ifndef SCSIM_TRACE_KERNEL_HH
#define SCSIM_TRACE_KERNEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace scsim {

/** A straight-line warp instruction stream. */
struct WarpProgram
{
    std::vector<Instruction> code;

    /** Dynamic warp-instruction count (== static; no control flow). */
    std::size_t length() const { return code.size(); }
};

/** One kernel launch. */
struct KernelDesc
{
    std::string name = "kernel";
    int numBlocks = 1;
    int warpsPerBlock = 1;
    int regsPerThread = 32;
    std::uint32_t smemBytesPerBlock = 0;

    std::vector<WarpProgram> shapes;
    /** shape index per warp-in-block; size == warpsPerBlock. */
    std::vector<std::uint16_t> shapeOfWarp;

    /** Register bytes one warp occupies in its sub-core's file. */
    std::uint32_t
    regBytesPerWarp() const
    {
        return static_cast<std::uint32_t>(regsPerThread) * kWarpSize
            * kRegBytes;
    }

    const WarpProgram &
    programOf(int warpInBlock) const
    {
        return shapes[shapeOfWarp[static_cast<std::size_t>(warpInBlock)]];
    }

    /** Total dynamic warp instructions across the grid. */
    std::uint64_t totalWarpInstructions() const;

    /** Fatal on structural inconsistencies (shape refs, reg bounds). */
    void validate() const;
};

/** An application: kernels launched back-to-back (e.g. a TPC-H query). */
struct Application
{
    std::string name = "app";
    std::string suite = "misc";
    std::vector<KernelDesc> kernels;

    std::uint64_t totalWarpInstructions() const;
    void validate() const;
};

} // namespace scsim

#endif // SCSIM_TRACE_KERNEL_HH
