/**
 * @file
 * Warp-level instruction representation.
 *
 * The simulator is trace-driven at warp granularity, mirroring
 * Accel-Sim's SASS mode: each instruction carries its compiler-
 * assigned register operands (so bank mappings are faithful) and, for
 * memory operations, a synthetic address-pattern descriptor that
 * substitutes for recorded addresses.
 */

#ifndef SCSIM_ISA_INSTRUCTION_HH
#define SCSIM_ISA_INSTRUCTION_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hh"

namespace scsim {

/** Opcode classes; enough resolution to steer unit/latency choice. */
enum class Opcode : std::uint8_t
{
    FMA,     //!< fused multiply-add (FP32)
    FADD,    //!< FP32 add
    FMUL,    //!< FP32 multiply
    IADD,    //!< integer ALU
    IMAD,    //!< integer multiply-add
    MOV,     //!< register move
    SFU,     //!< transcendental (rcp/sqrt/sin...)
    TENSOR,  //!< tensor-core MMA
    LDG,     //!< load from global memory
    STG,     //!< store to global memory
    LDS,     //!< load from shared memory
    STS,     //!< store to shared memory
    BAR,     //!< thread-block-wide barrier
    EXIT,    //!< warp termination
    NumOpcodes
};

/** Execution pipe classes. */
enum class UnitKind : std::uint8_t { SP, SFU, Tensor, LdSt, None };

/** Memory space targeted by a memory instruction. */
enum class MemSpace : std::uint8_t { Global, Shared };

const char *toString(Opcode op);
const char *toString(UnitKind k);

/** Parse an opcode mnemonic; fatal on unknown string. */
Opcode opcodeFromString(const std::string &s);

/** Which execution pipe retires this opcode. */
UnitKind unitOf(Opcode op);

/** True for LDG/STG/LDS/STS. */
bool isMemory(Opcode op);

/** True for LDG/LDS (produce a register value from memory). */
bool isLoad(Opcode op);

/**
 * Synthetic memory-access descriptor.
 *
 * Addresses are generated as
 *   region<<40 | (base + gwid*stride + iter*step) % footprint   (strided)
 *   region<<40 | hash(gwid, iter, seed) % footprint             (random)
 * where gwid is the global warp id and iter counts this warp's
 * dynamic accesses.  @c sectors models intra-warp coalescing: the
 * number of 32-byte transactions the access splits into (1 =
 * perfectly coalesced, 32 = fully scattered).
 */
struct MemInfo
{
    MemSpace space = MemSpace::Global;
    std::uint8_t region = 0;
    std::uint8_t sectors = 4;     //!< 128B line = 4 sectors per warp
    std::uint32_t strideBytes = 128;
    std::uint32_t stepBytes = 128;
    std::uint64_t footprintBytes = 1ULL << 24;
    bool randomAccess = false;
};

/**
 * One warp instruction.  Register indices are per-thread architectural
 * registers; kNoReg marks an unused slot.
 */
struct Instruction
{
    Opcode op = Opcode::IADD;
    RegIndex dst = kNoReg;
    std::array<RegIndex, 3> srcs = { kNoReg, kNoReg, kNoReg };
    MemInfo mem;                  //!< valid iff isMemory(op)

    int numSrcs() const;

    /** Does this opcode read operands through a collector unit? */
    bool
    usesCollector() const
    {
        return op != Opcode::BAR && op != Opcode::EXIT;
    }

    // ---- convenience constructors ------------------------------------
    static Instruction
    alu(Opcode op, RegIndex dst, RegIndex a = kNoReg,
        RegIndex b = kNoReg, RegIndex c = kNoReg)
    {
        Instruction i;
        i.op = op;
        i.dst = dst;
        i.srcs = { a, b, c };
        return i;
    }

    static Instruction
    load(Opcode op, RegIndex dst, RegIndex addrReg, MemInfo mem)
    {
        Instruction i;
        i.op = op;
        i.dst = dst;
        i.srcs = { addrReg, kNoReg, kNoReg };
        i.mem = mem;
        return i;
    }

    static Instruction
    store(Opcode op, RegIndex addrReg, RegIndex dataReg, MemInfo mem)
    {
        Instruction i;
        i.op = op;
        i.srcs = { addrReg, dataReg, kNoReg };
        i.mem = mem;
        return i;
    }

    static Instruction
    barrier()
    {
        Instruction i;
        i.op = Opcode::BAR;
        return i;
    }

    static Instruction
    exit()
    {
        Instruction i;
        i.op = Opcode::EXIT;
        return i;
    }
};

class StateReader;
class StateWriter;

/** Serialize every field of @p inst for checkpointing. */
void saveInstructionState(StateWriter &w, const Instruction &inst);

/** Inverse of saveInstructionState; throws CacheError on bad data. */
Instruction loadInstructionState(StateReader &r);

} // namespace scsim

#endif // SCSIM_ISA_INSTRUCTION_HH
