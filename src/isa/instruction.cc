#include "isa/instruction.hh"

#include "common/logging.hh"
#include "common/state_io.hh"

namespace scsim {

const char *
toString(Opcode op)
{
    switch (op) {
      case Opcode::FMA:    return "FMA";
      case Opcode::FADD:   return "FADD";
      case Opcode::FMUL:   return "FMUL";
      case Opcode::IADD:   return "IADD";
      case Opcode::IMAD:   return "IMAD";
      case Opcode::MOV:    return "MOV";
      case Opcode::SFU:    return "SFU";
      case Opcode::TENSOR: return "TENSOR";
      case Opcode::LDG:    return "LDG";
      case Opcode::STG:    return "STG";
      case Opcode::LDS:    return "LDS";
      case Opcode::STS:    return "STS";
      case Opcode::BAR:    return "BAR";
      case Opcode::EXIT:   return "EXIT";
      case Opcode::NumOpcodes: break;
    }
    return "?";
}

const char *
toString(UnitKind k)
{
    switch (k) {
      case UnitKind::SP:     return "SP";
      case UnitKind::SFU:    return "SFU";
      case UnitKind::Tensor: return "Tensor";
      case UnitKind::LdSt:   return "LdSt";
      case UnitKind::None:   return "None";
    }
    return "?";
}

Opcode
opcodeFromString(const std::string &s)
{
    for (int i = 0; i < static_cast<int>(Opcode::NumOpcodes); ++i) {
        auto op = static_cast<Opcode>(i);
        if (s == toString(op))
            return op;
    }
    scsim_fatal("unknown opcode mnemonic '%s'", s.c_str());
}

UnitKind
unitOf(Opcode op)
{
    switch (op) {
      case Opcode::FMA:
      case Opcode::FADD:
      case Opcode::FMUL:
      case Opcode::IADD:
      case Opcode::IMAD:
      case Opcode::MOV:
        return UnitKind::SP;
      case Opcode::SFU:
        return UnitKind::SFU;
      case Opcode::TENSOR:
        return UnitKind::Tensor;
      case Opcode::LDG:
      case Opcode::STG:
      case Opcode::LDS:
      case Opcode::STS:
        return UnitKind::LdSt;
      case Opcode::BAR:
      case Opcode::EXIT:
      case Opcode::NumOpcodes:
        return UnitKind::None;
    }
    return UnitKind::None;
}

bool
isMemory(Opcode op)
{
    return op == Opcode::LDG || op == Opcode::STG || op == Opcode::LDS
        || op == Opcode::STS;
}

bool
isLoad(Opcode op)
{
    return op == Opcode::LDG || op == Opcode::LDS;
}

int
Instruction::numSrcs() const
{
    int n = 0;
    for (RegIndex r : srcs)
        if (r != kNoReg)
            ++n;
    return n;
}

void
saveInstructionState(StateWriter &w, const Instruction &inst)
{
    w.u64("inst.op", static_cast<std::uint64_t>(inst.op));
    w.i64("inst.dst", inst.dst);
    for (RegIndex r : inst.srcs)
        w.i64("inst.src", r);
    w.u64("inst.mem.space", static_cast<std::uint64_t>(inst.mem.space));
    w.u64("inst.mem.region", inst.mem.region);
    w.u64("inst.mem.sectors", inst.mem.sectors);
    w.u64("inst.mem.stride", inst.mem.strideBytes);
    w.u64("inst.mem.step", inst.mem.stepBytes);
    w.u64("inst.mem.footprint", inst.mem.footprintBytes);
    w.b("inst.mem.random", inst.mem.randomAccess);
}

Instruction
loadInstructionState(StateReader &r)
{
    Instruction inst;
    std::uint64_t op = r.u64("inst.op");
    if (op >= static_cast<std::uint64_t>(Opcode::NumOpcodes))
        scsim_throw(CacheError, "snapshot: bad opcode %llu",
                    static_cast<unsigned long long>(op));
    inst.op = static_cast<Opcode>(op);
    inst.dst = static_cast<RegIndex>(r.i64("inst.dst"));
    for (RegIndex &reg : inst.srcs)
        reg = static_cast<RegIndex>(r.i64("inst.src"));
    std::uint64_t space = r.u64("inst.mem.space");
    if (space > static_cast<std::uint64_t>(MemSpace::Shared))
        scsim_throw(CacheError, "snapshot: bad memory space %llu",
                    static_cast<unsigned long long>(space));
    inst.mem.space = static_cast<MemSpace>(space);
    inst.mem.region = static_cast<std::uint8_t>(r.u64("inst.mem.region"));
    inst.mem.sectors =
        static_cast<std::uint8_t>(r.u64("inst.mem.sectors"));
    inst.mem.strideBytes =
        static_cast<std::uint32_t>(r.u64("inst.mem.stride"));
    inst.mem.stepBytes =
        static_cast<std::uint32_t>(r.u64("inst.mem.step"));
    inst.mem.footprintBytes = r.u64("inst.mem.footprint");
    inst.mem.randomAccess = r.b("inst.mem.random");
    return inst;
}

} // namespace scsim
