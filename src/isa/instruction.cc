#include "isa/instruction.hh"

#include "common/logging.hh"

namespace scsim {

const char *
toString(Opcode op)
{
    switch (op) {
      case Opcode::FMA:    return "FMA";
      case Opcode::FADD:   return "FADD";
      case Opcode::FMUL:   return "FMUL";
      case Opcode::IADD:   return "IADD";
      case Opcode::IMAD:   return "IMAD";
      case Opcode::MOV:    return "MOV";
      case Opcode::SFU:    return "SFU";
      case Opcode::TENSOR: return "TENSOR";
      case Opcode::LDG:    return "LDG";
      case Opcode::STG:    return "STG";
      case Opcode::LDS:    return "LDS";
      case Opcode::STS:    return "STS";
      case Opcode::BAR:    return "BAR";
      case Opcode::EXIT:   return "EXIT";
      case Opcode::NumOpcodes: break;
    }
    return "?";
}

const char *
toString(UnitKind k)
{
    switch (k) {
      case UnitKind::SP:     return "SP";
      case UnitKind::SFU:    return "SFU";
      case UnitKind::Tensor: return "Tensor";
      case UnitKind::LdSt:   return "LdSt";
      case UnitKind::None:   return "None";
    }
    return "?";
}

Opcode
opcodeFromString(const std::string &s)
{
    for (int i = 0; i < static_cast<int>(Opcode::NumOpcodes); ++i) {
        auto op = static_cast<Opcode>(i);
        if (s == toString(op))
            return op;
    }
    scsim_fatal("unknown opcode mnemonic '%s'", s.c_str());
}

UnitKind
unitOf(Opcode op)
{
    switch (op) {
      case Opcode::FMA:
      case Opcode::FADD:
      case Opcode::FMUL:
      case Opcode::IADD:
      case Opcode::IMAD:
      case Opcode::MOV:
        return UnitKind::SP;
      case Opcode::SFU:
        return UnitKind::SFU;
      case Opcode::TENSOR:
        return UnitKind::Tensor;
      case Opcode::LDG:
      case Opcode::STG:
      case Opcode::LDS:
      case Opcode::STS:
        return UnitKind::LdSt;
      case Opcode::BAR:
      case Opcode::EXIT:
      case Opcode::NumOpcodes:
        return UnitKind::None;
    }
    return UnitKind::None;
}

bool
isMemory(Opcode op)
{
    return op == Opcode::LDG || op == Opcode::STG || op == Opcode::LDS
        || op == Opcode::STS;
}

bool
isLoad(Opcode op)
{
    return op == Opcode::LDG || op == Opcode::LDS;
}

int
Instruction::numSrcs() const
{
    int n = 0;
    for (RegIndex r : srcs)
        if (r != kNoReg)
            ++n;
    return n;
}

} // namespace scsim
