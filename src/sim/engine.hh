/**
 * @file
 * SimEngine: the library facade every driver builds a simulation
 * through.
 *
 * The CLI, the sweep engine, and the figure binaries used to each
 * carry their own copy of the same four lines — synthesize the
 * workload, construct a GpuSim, pick run vs runConcurrent, collect
 * stats.  SimEngine is that wiring, once: build from a (validated)
 * config, run a workload, and optionally observe the run from hook
 * points.  Policy construction underneath goes through the string
 * registries (sim/registry.hh), so an engine-built simulator and the
 * legacy enum path are the same path.
 *
 * The facade also owns the *stats fingerprint*: a 64-bit FNV-1a hash
 * of the canonical stats payload (stats/stats_io.hh).  Two runs are
 * behaviorally identical iff their fingerprints match — the golden
 * equivalence tests (ctest label `engine`) pin the fingerprints of
 * all design points against seed behavior, which is what lets the
 * wiring refactor prove it changed nothing.
 */

#ifndef SCSIM_SIM_ENGINE_HH
#define SCSIM_SIM_ENGINE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "config/gpu_config.hh"
#include "gpu/gpu_sim.hh"
#include "workloads/suite.hh"

namespace scsim::sim {

/**
 * Observer hook points around one workload run.  Every callback is
 * optional; observers fire in registration order.  Used for progress
 * reporting and instrumentation without threading callbacks through
 * the simulator core.
 */
struct EngineObserver
{
    /** Before the simulation starts. */
    std::function<void(const GpuConfig &, const Application &)> onRunStart;
    /** After the simulation finished, with its stats. */
    std::function<void(const Application &, const SimStats &)> onRunEnd;
    /**
     * Mid-run checkpoint: a serialized GpuSim run-state payload,
     * fired every setCheckpointInterval() simulated cycles.  Only
     * observes — the simulation is bit-identical with or without it.
     */
    std::function<void(const std::string &payload, Cycle now)> onCheckpoint;
};

class SimEngine
{
  public:
    /**
     * Build a simulator from @p cfg.  Validates the configuration
     * (throws ConfigError) and constructs the GpuSim — policies are
     * resolved through the registries at this point, so an unknown
     * policy name fails here, not mid-run.
     */
    explicit SimEngine(const GpuConfig &cfg);
    ~SimEngine();

    SimEngine(SimEngine &&) noexcept;
    SimEngine &operator=(SimEngine &&) noexcept;

    const GpuConfig &config() const;

    /** The underlying simulator (tests, state dumps). */
    GpuSim &sim() { return *sim_; }
    const GpuSim &sim() const { return *sim_; }

    void addObserver(EngineObserver obs);

    /** Run @p app's kernels back-to-back. */
    SimStats run(const Application &app);

    /** Run a single kernel. */
    SimStats run(const KernelDesc &kernel);

    /** Run @p app's kernels concurrently (multi-kernel setting). */
    SimStats runConcurrent(const Application &app);

    /**
     * Synthesize @p spec (with @p salt) and run it; @p concurrent
     * selects the multi-kernel mode.  The one call the sweep engine
     * and the `run-job` worker both reduce to.
     */
    SimStats runApp(const AppSpec &spec, std::uint64_t salt = 0,
                    bool concurrent = false);

    /**
     * Snapshot period in simulated cycles; 0 (the default) disables
     * checkpointing.  When set, every run invokes each observer's
     * onCheckpoint with the serialized run state at that cadence.
     */
    void setCheckpointInterval(Cycle everyCycles);

    /**
     * Resume an interrupted runApp() from a checkpoint payload:
     * synthesizes the same workload, restores the simulator, and
     * finishes the run.  The payload's own `concurrent` flag governs
     * the mode; final stats are identical to an uninterrupted run.
     * Throws CacheError on any damaged or mismatched payload.
     */
    SimStats resumeApp(const AppSpec &spec, std::uint64_t salt,
                       const std::string &payload);

  private:
    SimStats dispatch(const Application &app, bool concurrent);

    std::unique_ptr<GpuSim> sim_;
    std::vector<EngineObserver> observers_;
};

/**
 * 64-bit FNV-1a hash of the canonical stats payload: the behavioral
 * identity of a run.  Byte-identical stats <=> equal fingerprints.
 */
std::uint64_t statsFingerprint(const SimStats &stats);

/** Fixed-width lowercase hex form of statsFingerprint. */
std::string statsFingerprintHex(const SimStats &stats);

} // namespace scsim::sim

#endif // SCSIM_SIM_ENGINE_HH
