#include "sim/engine.hh"

#include <cinttypes>
#include <cstdio>

#include "common/rng.hh"
#include "stats/stats_io.hh"

namespace scsim::sim {

SimEngine::SimEngine(const GpuConfig &cfg)
{
    cfg.validate();
    sim_ = std::make_unique<GpuSim>(cfg);
}

SimEngine::~SimEngine() = default;
SimEngine::SimEngine(SimEngine &&) noexcept = default;
SimEngine &SimEngine::operator=(SimEngine &&) noexcept = default;

const GpuConfig &
SimEngine::config() const
{
    return sim_->config();
}

void
SimEngine::addObserver(EngineObserver obs)
{
    observers_.push_back(std::move(obs));
}

void
SimEngine::setCheckpointInterval(Cycle everyCycles)
{
    sim_->setCheckpoint(
        everyCycles, [this](const std::string &payload, Cycle now) {
            for (const EngineObserver &o : observers_)
                if (o.onCheckpoint)
                    o.onCheckpoint(payload, now);
        });
}

SimStats
SimEngine::dispatch(const Application &app, bool concurrent)
{
    for (const EngineObserver &o : observers_)
        if (o.onRunStart)
            o.onRunStart(sim_->config(), app);
    SimStats stats = concurrent ? sim_->runConcurrent(app) : sim_->run(app);
    for (const EngineObserver &o : observers_)
        if (o.onRunEnd)
            o.onRunEnd(app, stats);
    return stats;
}

SimStats
SimEngine::resumeApp(const AppSpec &spec, std::uint64_t salt,
                     const std::string &payload)
{
    Application app = buildApp(spec, salt);
    for (const EngineObserver &o : observers_)
        if (o.onRunStart)
            o.onRunStart(sim_->config(), app);
    SimStats stats = sim_->resume(app, payload);
    for (const EngineObserver &o : observers_)
        if (o.onRunEnd)
            o.onRunEnd(app, stats);
    return stats;
}

SimStats
SimEngine::run(const Application &app)
{
    return dispatch(app, /*concurrent=*/false);
}

SimStats
SimEngine::run(const KernelDesc &kernel)
{
    Application app;
    app.name = kernel.name;
    app.kernels.push_back(kernel);
    return dispatch(app, /*concurrent=*/false);
}

SimStats
SimEngine::runConcurrent(const Application &app)
{
    return dispatch(app, /*concurrent=*/true);
}

SimStats
SimEngine::runApp(const AppSpec &spec, std::uint64_t salt, bool concurrent)
{
    return dispatch(buildApp(spec, salt), concurrent);
}

std::uint64_t
statsFingerprint(const SimStats &stats)
{
    return hashString(serializeStatsPayload(stats));
}

std::string
statsFingerprintHex(const SimStats &stats)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016" PRIx64, statsFingerprint(stats));
    return buf;
}

} // namespace scsim::sim
