/**
 * @file
 * String-keyed factory registries: the one wiring path from a policy
 * name to a constructed policy object.
 *
 * Every warp-scheduler and sub-core-assignment policy is registered
 * here under its configuration name ("GTO", "SRR", ...) together with
 * a one-line description and a factory.  The enum switches that used
 * to live in core/scheduler.cc and core/assign.cc are now
 * registrations against these registries, so adding a policy is one
 * registration line — immediately visible to the CLI
 * (`scsim_cli list-policies`), the sweep engine, and every figure
 * binary, with no other layer to edit.
 *
 * Registry semantics (DESIGN.md §10):
 *  - registration order is preserved and is the enumeration order;
 *  - duplicate names are rejected with ConfigError (a duplicate is a
 *    wiring bug, but it is caused by code outside the simulator core,
 *    so it throws rather than panics);
 *  - unknown-name lookup throws ConfigError listing every valid name,
 *    so a CLI typo produces the menu, not a stack trace.
 *
 * The registries themselves are defined next to the policies they
 * construct (core/scheduler.cc, core/assign.cc): the registry is the
 * mechanism, the policy files own their catalogue.
 */

#ifndef SCSIM_SIM_REGISTRY_HH
#define SCSIM_SIM_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace scsim {

struct GpuConfig;
class WarpScheduler;
class SubcoreAssigner;

namespace sim {

/**
 * Non-template core of Registry: the named, described, stably-ordered
 * entry list.  Kept out of the template so the lookup/duplicate error
 * paths compile once.
 */
class RegistryBase
{
  public:
    struct Entry
    {
        std::string name;
        std::string description;
    };

    /** @p kind names the registry in error messages ("scheduler"). */
    explicit RegistryBase(std::string kind) : kind_(std::move(kind)) {}

    const std::string &kind() const { return kind_; }

    /** Entries in registration order (stable enumeration order). */
    const std::vector<Entry> &entries() const { return entries_; }

    std::vector<std::string> names() const;

    bool contains(const std::string &name) const;

    /** One aligned "name  description" line per entry. */
    std::string describe() const;

  protected:
    /** Append an entry; throws ConfigError on a duplicate name. */
    std::size_t addEntry(std::string name, std::string description);

    /** Index of @p name; throws ConfigError listing valid names. */
    std::size_t indexOf(const std::string &name) const;

  private:
    std::string kind_;
    std::vector<Entry> entries_;
};

/**
 * A string-keyed factory registry.  @p Factory is any callable type
 * (typically a std::function); the registry owns one per entry,
 * parallel to the base-class entry list.
 */
template <typename Factory>
class Registry : public RegistryBase
{
  public:
    using RegistryBase::RegistryBase;

    /** Register @p make under @p name; ConfigError on duplicates. */
    void
    add(std::string name, std::string description, Factory make)
    {
        addEntry(std::move(name), std::move(description));
        factories_.push_back(std::move(make));
    }

    /** Factory for @p name; ConfigError (listing names) if unknown. */
    const Factory &
    lookup(const std::string &name) const
    {
        return factories_[indexOf(name)];
    }

  private:
    std::vector<Factory> factories_;
};

/** Builds a warp scheduler for one scheduler slot of a cluster. */
using SchedulerFactory =
    std::function<std::unique_ptr<WarpScheduler>(const GpuConfig &)>;

/** Per-SM inputs an assigner factory needs beyond the config. */
struct AssignerContext
{
    /** Scheduler count the assigner multiplexes over (per SM). */
    int numSubcores = 4;
    /** Per-SM RNG seed (Shuffle permutations, hash-table programs). */
    std::uint64_t seed = 0;
};

using AssignerFactory = std::function<std::unique_ptr<SubcoreAssigner>(
    const GpuConfig &, const AssignerContext &)>;

/**
 * The process-wide registries.  Defined (and seeded with the built-in
 * policies) in core/scheduler.cc and core/assign.cc respectively.
 */
Registry<SchedulerFactory> &schedulerRegistry();
Registry<AssignerFactory> &assignerRegistry();

} // namespace sim
} // namespace scsim

#endif // SCSIM_SIM_REGISTRY_HH
