#include "sim/registry.hh"

#include <algorithm>

#include "common/logging.hh"

namespace scsim::sim {

std::vector<std::string>
RegistryBase::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const Entry &e : entries_)
        out.push_back(e.name);
    return out;
}

bool
RegistryBase::contains(const std::string &name) const
{
    for (const Entry &e : entries_)
        if (e.name == name)
            return true;
    return false;
}

std::string
RegistryBase::describe() const
{
    std::size_t width = 0;
    for (const Entry &e : entries_)
        width = std::max(width, e.name.size());
    std::string out;
    for (const Entry &e : entries_) {
        out += "  ";
        out += e.name;
        out.append(width + 2 - e.name.size(), ' ');
        out += e.description;
        out += '\n';
    }
    return out;
}

std::size_t
RegistryBase::addEntry(std::string name, std::string description)
{
    if (contains(name))
        scsim_throw(ConfigError, "duplicate %s registration '%s'",
                    kind_.c_str(), name.c_str());
    entries_.push_back(Entry{ std::move(name), std::move(description) });
    return entries_.size() - 1;
}

std::size_t
RegistryBase::indexOf(const std::string &name) const
{
    for (std::size_t i = 0; i < entries_.size(); ++i)
        if (entries_[i].name == name)
            return i;
    std::string valid;
    for (const Entry &e : entries_) {
        if (!valid.empty())
            valid += ", ";
        valid += e.name;
    }
    scsim_throw(ConfigError, "unknown %s '%s' (valid: %s)",
                kind_.c_str(), name.c_str(), valid.c_str());
}

} // namespace scsim::sim
