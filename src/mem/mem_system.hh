/**
 * @file
 * GPU memory hierarchy: per-SM sector L1s, shared L2, DRAM.
 *
 * Latency + bandwidth model: every global access is split into 32-byte
 * sectors; each sector probes the issuing SM's L1, on miss consumes an
 * L2 bandwidth slot (and on L2 miss a DRAM slot), accumulating queuing
 * delay behind earlier traffic.  The access completes when its slowest
 * sector returns.  Shared-memory accesses are serviced locally with a
 * fixed latency plus bank-conflict serialization.
 *
 * Bandwidth is expressed per SM so scaled-down simulations (fewer SMs
 * than the 80 of the real V100) retain a representative
 * compute-to-bandwidth ratio.
 */

#ifndef SCSIM_MEM_MEM_SYSTEM_HH
#define SCSIM_MEM_MEM_SYSTEM_HH

#include <cstdint>
#include <vector>

#include "config/gpu_config.hh"
#include "isa/instruction.hh"
#include "mem/cache.hh"
#include "stats/stats.hh"

namespace scsim {

/** Deterministic synthetic address for a memory instruction. */
Addr genAddress(const MemInfo &mem, std::uint64_t gwid,
                std::uint64_t iter, std::uint64_t seed);

class MemSystem
{
  public:
    explicit MemSystem(const GpuConfig &cfg);

    /**
     * Issue one warp-level access.
     * @param smId  issuing SM (selects the L1)
     * @param mem   access descriptor
     * @param gwid  global warp id (address generation)
     * @param iter  the warp's dynamic memory-access counter
     * @param now   issue cycle
     * @return cycle at which the access (all sectors) completes
     */
    Cycle access(int smId, const MemInfo &mem, std::uint64_t gwid,
                 std::uint64_t iter, Cycle now);

    /** Fold cache counters into @p stats. */
    void exportStats(SimStats &stats) const;

    void reset();

    /** Checkpointing: caches, bandwidth clocks, L1 counters. */
    void saveState(StateWriter &w) const;
    void loadState(StateReader &r);

  private:
    const GpuConfig &cfg_;
    std::vector<Cache> l1s_;
    Cache l2_;
    double l2Free_ = 0.0;     //!< next free L2 bandwidth slot (cycles)
    double dramFree_ = 0.0;
    double l2SectorTime_;     //!< cycles per sector of L2 bandwidth
    double dramSectorTime_;
    std::uint64_t seed_;

    std::uint64_t l1Accesses_ = 0;
    std::uint64_t l1Misses_ = 0;
};

} // namespace scsim

#endif // SCSIM_MEM_MEM_SYSTEM_HH
