#include "mem/mem_system.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/state_io.hh"

namespace scsim {

Addr
genAddress(const MemInfo &mem, std::uint64_t gwid, std::uint64_t iter,
           std::uint64_t seed)
{
    Addr offset;
    if (mem.randomAccess) {
        std::uint64_t h = seed ^ (gwid * 0x9e3779b97f4a7c15ULL)
            ^ (iter * 0xbf58476d1ce4e5b9ULL)
            ^ (static_cast<std::uint64_t>(mem.region) << 56);
        std::uint64_t s = h;
        offset = splitmix64(s) % mem.footprintBytes;
        offset &= ~Addr(31);   // sector aligned
    } else {
        offset = (gwid * mem.strideBytes + iter * mem.stepBytes)
            % mem.footprintBytes;
    }
    return (static_cast<Addr>(mem.region) << 40) | offset;
}

MemSystem::MemSystem(const GpuConfig &cfg)
    : cfg_(cfg),
      l2_(cfg.l2Bytes, cfg.l1LineBytes, cfg.l2Ways),
      seed_(cfg.seed * 0x2545f4914f6cdd1dULL + 0x9e3779b97f4a7c15ULL)
{
    l1s_.reserve(static_cast<std::size_t>(cfg.numSms));
    for (int i = 0; i < cfg.numSms; ++i)
        l1s_.emplace_back(cfg.l1Bytes, cfg.l1LineBytes, cfg.l1Ways);

    double sms = static_cast<double>(cfg.numSms);
    l2SectorTime_ = 1.0 / (cfg.l2SectorsPerCyclePerSm * sms);
    dramSectorTime_ = 1.0 / (cfg.dramSectorsPerCyclePerSm * sms);
}

Cycle
MemSystem::access(int smId, const MemInfo &mem, std::uint64_t gwid,
                  std::uint64_t iter, Cycle now)
{
    if (mem.space == MemSpace::Shared) {
        // Local scratchpad: latency plus bank-conflict serialization.
        int conflicts = std::max<int>(1, mem.sectors);
        return now + static_cast<Cycle>(cfg_.smemLatency)
            + static_cast<Cycle>(conflicts - 1);
    }

    Cache &l1 = l1s_[static_cast<std::size_t>(smId)];
    Addr base = genAddress(mem, gwid, iter, seed_);
    int sectors = std::max<int>(1, mem.sectors);
    double worst = static_cast<double>(cfg_.l1HitLatency);
    double nowD = static_cast<double>(now);

    for (int s = 0; s < sectors; ++s) {
        Addr addr;
        if (mem.randomAccess && sectors > 1) {
            // Scattered lanes: each sector lands on its own line.
            MemInfo scat = mem;
            addr = genAddress(scat, gwid * 131 + static_cast<Addr>(s),
                              iter, seed_ ^ 0xabcdefULL);
        } else {
            addr = base + static_cast<Addr>(s) * 32;
        }
        ++l1Accesses_;
        if (l1.access(addr))
            continue;
        ++l1Misses_;

        // L2 bandwidth slot.
        double t2 = std::max(l2Free_, nowD);
        l2Free_ = t2 + l2SectorTime_;
        double lat;
        if (l2_.access(addr)) {
            lat = (t2 - nowD) + static_cast<double>(cfg_.l2HitLatency);
        } else {
            double td = std::max(dramFree_, t2);
            dramFree_ = td + dramSectorTime_;
            lat = (td - nowD) + static_cast<double>(cfg_.dramLatency);
        }
        worst = std::max(worst, lat);
    }
    return now + static_cast<Cycle>(worst + 0.999);
}

void
MemSystem::exportStats(SimStats &stats) const
{
    stats.l1Accesses = l1Accesses_;
    stats.l1Misses = l1Misses_;
    stats.l2Accesses = l2_.accesses();
    stats.l2Misses = l2_.misses();
}

void
MemSystem::reset()
{
    for (auto &l1 : l1s_)
        l1.reset();
    l2_.reset();
    l2Free_ = dramFree_ = 0.0;
    l1Accesses_ = l1Misses_ = 0;
}

void
MemSystem::saveState(StateWriter &w) const
{
    for (const Cache &l1 : l1s_)
        l1.saveState(w);
    l2_.saveState(w);
    w.f64("mem.l2Free", l2Free_);
    w.f64("mem.dramFree", dramFree_);
    w.u64("mem.l1Accesses", l1Accesses_);
    w.u64("mem.l1Misses", l1Misses_);
}

void
MemSystem::loadState(StateReader &r)
{
    for (Cache &l1 : l1s_)
        l1.loadState(r);
    l2_.loadState(r);
    l2Free_ = r.f64("mem.l2Free");
    dramFree_ = r.f64("mem.dramFree");
    l1Accesses_ = r.u64("mem.l1Accesses");
    l1Misses_ = r.u64("mem.l1Misses");
}

} // namespace scsim
