#include "mem/cache.hh"

#include <bit>

#include "common/logging.hh"
#include "common/state_io.hh"

namespace scsim {

Cache::Cache(std::uint64_t bytes, int lineBytes, int ways)
{
    scsim_assert(lineBytes > 0 && std::has_single_bit(
                     static_cast<unsigned>(lineBytes)),
                 "line size must be a power of two");
    lineShift_ = std::countr_zero(static_cast<unsigned>(lineBytes));
    std::uint64_t numLines = bytes / static_cast<std::uint64_t>(lineBytes);
    scsim_assert(numLines > 0, "cache smaller than one line");
    numWays_ = static_cast<int>(
        std::min<std::uint64_t>(static_cast<std::uint64_t>(ways),
                                numLines));
    numSets_ = static_cast<int>(
        numLines / static_cast<std::uint64_t>(numWays_));
    if (numSets_ == 0)
        numSets_ = 1;
    lines_.resize(static_cast<std::size_t>(numSets_)
                  * static_cast<std::size_t>(numWays_));
}

bool
Cache::access(Addr addr)
{
    ++accesses_;
    ++tick_;
    Addr lineAddr = addr >> lineShift_;
    std::size_t set = static_cast<std::size_t>(
        lineAddr % static_cast<Addr>(numSets_));
    Line *base = &lines_[set * static_cast<std::size_t>(numWays_)];

    Line *victim = base;
    for (int w = 0; w < numWays_; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == lineAddr) {
            line.lastUse = tick_;
            return true;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lastUse < victim->lastUse) {
            victim = &line;
        }
    }
    ++misses_;
    victim->valid = true;
    victim->tag = lineAddr;
    victim->lastUse = tick_;
    return false;
}

bool
Cache::contains(Addr addr) const
{
    Addr lineAddr = addr >> lineShift_;
    std::size_t set = static_cast<std::size_t>(
        lineAddr % static_cast<Addr>(numSets_));
    const Line *base = &lines_[set * static_cast<std::size_t>(numWays_)];
    for (int w = 0; w < numWays_; ++w)
        if (base[w].valid && base[w].tag == lineAddr)
            return true;
    return false;
}

void
Cache::reset()
{
    for (auto &line : lines_)
        line = Line{};
    tick_ = accesses_ = misses_ = 0;
}

void
Cache::saveState(StateWriter &w) const
{
    w.u64("cache.tick", tick_);
    w.u64("cache.accesses", accesses_);
    w.u64("cache.misses", misses_);
    for (const Line &line : lines_) {
        w.b("line.valid", line.valid);
        w.u64("line.tag", line.tag);
        w.u64("line.lastUse", line.lastUse);
    }
}

void
Cache::loadState(StateReader &r)
{
    tick_ = r.u64("cache.tick");
    accesses_ = r.u64("cache.accesses");
    misses_ = r.u64("cache.misses");
    for (Line &line : lines_) {
        line.valid = r.b("line.valid");
        line.tag = r.u64("line.tag");
        line.lastUse = r.u64("line.lastUse");
    }
}

} // namespace scsim
