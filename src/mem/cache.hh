/**
 * @file
 * Set-associative cache model with true-LRU replacement.
 *
 * Only tag state is modeled (the simulator never carries data).  Used
 * for both the per-SM L1 sector lookups and the shared L2.
 */

#ifndef SCSIM_MEM_CACHE_HH
#define SCSIM_MEM_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace scsim {

class StateReader;
class StateWriter;

class Cache
{
  public:
    /**
     * @param bytes      total capacity
     * @param lineBytes  line size (power of two)
     * @param ways       associativity; capped to the line count
     */
    Cache(std::uint64_t bytes, int lineBytes, int ways);

    /**
     * Look up @p addr, allocating its line on miss (LRU victim).
     * @return true on hit.
     */
    bool access(Addr addr);

    /** Probe without side effects. */
    bool contains(Addr addr) const;

    void reset();

    int numSets() const { return numSets_; }
    int numWays() const { return numWays_; }
    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t misses() const { return misses_; }

    /** Checkpointing: tag array + LRU clock + counters. */
    void saveState(StateWriter &w) const;
    void loadState(StateReader &r);

  private:
    struct Line
    {
        Addr tag = ~Addr(0);
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    int lineShift_;
    int numSets_;
    int numWays_;
    std::uint64_t tick_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
    std::vector<Line> lines_;   //!< [set * numWays + way]
};

} // namespace scsim

#endif // SCSIM_MEM_CACHE_HH
