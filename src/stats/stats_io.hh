/**
 * @file
 * Wire serialization of SimStats (and its embedded TimeSeries).
 *
 * The payload is a deterministic, line-oriented `key value` text:
 * every counter, the per-scheduler issue matrix, the kernel spans
 * (names backslash-escaped so embedded newlines cannot split a
 * record), and the RF read trace with its window.  Numbers are
 * emitted locale-independently (`%.17g` for doubles) so a
 * serialize→parse→serialize round trip is byte-identical across
 * hosts — the property the result cache, the sweep journal, and the
 * subprocess IPC all rely on for byte-identical manifests.
 *
 * Framing (magic, format version, checksum) is deliberately *not*
 * here: callers wrap the payload with runner/wire.hh's record frame.
 * Unknown keys are skipped on parse, so adding a field is
 * forward-compatible within one format version.
 */

#ifndef SCSIM_STATS_STATS_IO_HH
#define SCSIM_STATS_STATS_IO_HH

#include <string>

#include "stats/stats.hh"

namespace scsim {

/** Deterministic `key value` text of every SimStats field. */
std::string serializeStatsPayload(const SimStats &stats);

/** Outcome of feeding one line to parseStatsLine. */
enum class StatsLine
{
    Consumed,  //!< recognized key, value parsed into the record
    Unknown,   //!< not a stats key (caller may handle it itself)
    Corrupt,   //!< recognized key with an unparsable value
};

/** Parse one payload line into @p s; see StatsLine. */
StatsLine parseStatsLine(const std::string &line, SimStats &s);

/**
 * Parse a whole payload into @p out.  Unknown keys are skipped
 * (forward compatibility); a malformed value for a known key fails
 * the parse.  @p out is untouched on failure.
 */
bool parseStatsPayload(const std::string &payload, SimStats &out);

} // namespace scsim

#endif // SCSIM_STATS_STATS_IO_HH
