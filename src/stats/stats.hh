/**
 * @file
 * Statistics primitives: scalar accumulators, distributions,
 * time series samplers, and summary math used by the bench harness
 * (means, geometric means, coefficient of variation).
 */

#ifndef SCSIM_STATS_STATS_HH
#define SCSIM_STATS_STATS_HH

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace scsim {

/**
 * Streaming accumulator for a sampled quantity.  Tracks count, sum,
 * min, max and the second moment (Welford) so mean / stddev / cov are
 * O(1) to read at any point.
 */
class Distribution
{
  public:
    void add(double x);
    void merge(const Distribution &other);
    void reset();

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const;
    double variance() const;
    double stddev() const;
    /** Coefficient of variation sigma/mu; 0 when mean is 0. */
    double cov() const;
    double min() const { return min_; }
    double max() const { return max_; }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-window time series: accumulates a per-cycle quantity and emits
 * one averaged sample per window.  Used for the Fig 14 register-file
 * reads/cycle traces.
 */
class TimeSeries
{
  public:
    explicit TimeSeries(Cycle window = 1024) : window_(window) {}

    /** Add @p amount at absolute cycle @p now. */
    void add(Cycle now, double amount);

    /** Flush the partially filled trailing window. */
    void finalize(Cycle now);

    /**
     * Append @p other's completed samples after this series' own,
     * i.e. concatenate two finalized traces of consecutive run
     * segments recorded with the same window.
     */
    void merge(const TimeSeries &other);

    /** Replace the sample vector (result-cache deserialization). */
    void restoreSamples(std::vector<double> samples);

    /**
     * Restore full mid-run sampler state (snapshot restore): the
     * completed samples plus the partially accumulated trailing
     * window, exactly as read back through curWindowStart()/curSum().
     */
    void restoreState(std::vector<double> samples, Cycle curWindowStart,
                      double curSum);

    Cycle window() const { return window_; }
    const std::vector<double> &samples() const { return samples_; }

    /** Start cycle of the partially filled window (checkpointing). */
    Cycle curWindowStart() const { return curWindowStart_; }

    /** Accumulated sum of the partially filled window. */
    double curSum() const { return curSum_; }

    /** Average over all completed samples. */
    double average() const;

  private:
    void rollTo(Cycle now);

    Cycle window_;
    Cycle curWindowStart_ = 0;
    double curSum_ = 0.0;
    std::vector<double> samples_;
};

/** Arithmetic mean of a span; 0 for empty input. */
double mean(std::span<const double> xs);

/** Geometric mean of a span of positive values; 0 for empty input. */
double geomean(std::span<const double> xs);

/** Coefficient of variation (population) of a span. */
double coefficientOfVariation(std::span<const double> xs);

/**
 * End-of-run summary emitted by GpuSim.  Plain data so every layer can
 * fill in its slice without coupling to simulator internals.
 */
struct SimStats
{
    Cycle cycles = 0;
    std::uint64_t instructions = 0;   //!< warp instructions issued
    std::uint64_t threadInstructions = 0;

    /** Instructions issued per scheduler, indexed [sm][scheduler]. */
    std::vector<std::vector<std::uint64_t>> issuePerScheduler;

    // Per-scheduler-cycle issue outcome breakdown.
    std::uint64_t schedCycles = 0;       //!< scheduler-cycles observed
    std::uint64_t issueSlotsUsed = 0;    //!< instructions issued
    std::uint64_t stallNoWarp = 0;       //!< no schedulable warp at all
    std::uint64_t stallScoreboard = 0;   //!< data hazard on every warp
    std::uint64_t stallNoCu = 0;         //!< ready warp, collector full
    std::uint64_t cuTurnaroundSum = 0;   //!< cycles CU held per dispatch
    std::uint64_t cuDispatches = 0;

    std::uint64_t rfReads = 0;        //!< 4-byte register reads
    std::uint64_t rfWrites = 0;
    std::uint64_t rfBankConflictCycles = 0;
    std::uint64_t collectorFullStalls = 0;
    std::uint64_t execStructuralStalls = 0;

    std::uint64_t l1Accesses = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Misses = 0;

    std::uint64_t blocksCompleted = 0;
    std::uint64_t warpsCompleted = 0;
    std::uint64_t assignSpills = 0;   //!< warps redirected on full sub-core

    /** Fig 14 trace: aggregated RF reads/cycle on SM 0. */
    TimeSeries rfReadTrace { 512 };

    /** Per-kernel wall-cycle spans for sequential runs. */
    std::vector<std::pair<std::string, Cycle>> kernelSpans;

    std::uint64_t warpMigrations = 0;   //!< ideal-migration oracle

    double ipc() const;

    /**
     * Coefficient of variation of per-scheduler issued instructions,
     * averaged over SMs that issued anything (Fig 17 metric).
     */
    double issueCov() const;

    /**
     * Fold @p other into this record with run-concatenation
     * semantics: counters sum, cycles accumulate as if @p other's
     * kernels ran back-to-back after ours, the per-scheduler issue
     * matrix adds element-wise (growing to cover the larger shape),
     * kernel spans append, and the RF read trace concatenates.
     * Merging shards of a partitioned run therefore reproduces the
     * single-pass accumulation GpuSim performs itself.
     */
    void merge(const SimStats &other);
};

} // namespace scsim

#endif // SCSIM_STATS_STATS_HH
