#include "stats/stats_io.hh"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "common/text_escape.hh"

namespace scsim {

namespace {

void
putU64(std::string &out, const char *key, std::uint64_t v)
{
    char buf[96];
    std::snprintf(buf, sizeof buf, "%s %" PRIu64 "\n", key, v);
    out += buf;
}

} // namespace

std::string
serializeStatsPayload(const SimStats &stats)
{
    std::string out;
    putU64(out, "cycles", stats.cycles);
    putU64(out, "instructions", stats.instructions);
    putU64(out, "threadInstructions", stats.threadInstructions);
    putU64(out, "schedCycles", stats.schedCycles);
    putU64(out, "issueSlotsUsed", stats.issueSlotsUsed);
    putU64(out, "stallNoWarp", stats.stallNoWarp);
    putU64(out, "stallScoreboard", stats.stallScoreboard);
    putU64(out, "stallNoCu", stats.stallNoCu);
    putU64(out, "cuTurnaroundSum", stats.cuTurnaroundSum);
    putU64(out, "cuDispatches", stats.cuDispatches);
    putU64(out, "rfReads", stats.rfReads);
    putU64(out, "rfWrites", stats.rfWrites);
    putU64(out, "rfBankConflictCycles", stats.rfBankConflictCycles);
    putU64(out, "collectorFullStalls", stats.collectorFullStalls);
    putU64(out, "execStructuralStalls", stats.execStructuralStalls);
    putU64(out, "l1Accesses", stats.l1Accesses);
    putU64(out, "l1Misses", stats.l1Misses);
    putU64(out, "l2Accesses", stats.l2Accesses);
    putU64(out, "l2Misses", stats.l2Misses);
    putU64(out, "blocksCompleted", stats.blocksCompleted);
    putU64(out, "warpsCompleted", stats.warpsCompleted);
    putU64(out, "assignSpills", stats.assignSpills);
    putU64(out, "warpMigrations", stats.warpMigrations);

    for (const auto &row : stats.issuePerScheduler) {
        out += "issueRow";
        for (std::uint64_t v : row) {
            char buf[32];
            std::snprintf(buf, sizeof buf, " %" PRIu64, v);
            out += buf;
        }
        out += '\n';
    }
    for (const auto &[name, span] : stats.kernelSpans) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%" PRIu64, span);
        out += "kernelSpan ";
        out += buf;
        out += ' ';
        out += escapeLine(name);  // to end of line; may contain spaces
        out += '\n';
    }
    {
        putU64(out, "rfTraceWindow", stats.rfReadTrace.window());
        out += "rfTraceSamples";
        for (double s : stats.rfReadTrace.samples()) {
            char buf[64];
            std::snprintf(buf, sizeof buf, " %.17g", s);
            out += buf;
        }
        out += '\n';
    }
    return out;
}

StatsLine
parseStatsLine(const std::string &line, SimStats &s)
{
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key))
        return StatsLine::Unknown;

    auto u64 = [&](std::uint64_t &field) {
        return static_cast<bool>(ls >> field) ? StatsLine::Consumed
                                              : StatsLine::Corrupt;
    };

    if (key == "cycles") return u64(s.cycles);
    if (key == "instructions") return u64(s.instructions);
    if (key == "threadInstructions") return u64(s.threadInstructions);
    if (key == "schedCycles") return u64(s.schedCycles);
    if (key == "issueSlotsUsed") return u64(s.issueSlotsUsed);
    if (key == "stallNoWarp") return u64(s.stallNoWarp);
    if (key == "stallScoreboard") return u64(s.stallScoreboard);
    if (key == "stallNoCu") return u64(s.stallNoCu);
    if (key == "cuTurnaroundSum") return u64(s.cuTurnaroundSum);
    if (key == "cuDispatches") return u64(s.cuDispatches);
    if (key == "rfReads") return u64(s.rfReads);
    if (key == "rfWrites") return u64(s.rfWrites);
    if (key == "rfBankConflictCycles") return u64(s.rfBankConflictCycles);
    if (key == "collectorFullStalls") return u64(s.collectorFullStalls);
    if (key == "execStructuralStalls") return u64(s.execStructuralStalls);
    if (key == "l1Accesses") return u64(s.l1Accesses);
    if (key == "l1Misses") return u64(s.l1Misses);
    if (key == "l2Accesses") return u64(s.l2Accesses);
    if (key == "l2Misses") return u64(s.l2Misses);
    if (key == "blocksCompleted") return u64(s.blocksCompleted);
    if (key == "warpsCompleted") return u64(s.warpsCompleted);
    if (key == "assignSpills") return u64(s.assignSpills);
    if (key == "warpMigrations") return u64(s.warpMigrations);

    if (key == "issueRow") {
        std::vector<std::uint64_t> row;
        std::uint64_t v;
        while (ls >> v)
            row.push_back(v);
        s.issuePerScheduler.push_back(std::move(row));
        return StatsLine::Consumed;
    }
    if (key == "kernelSpan") {
        std::uint64_t span;
        if (!(ls >> span))
            return StatsLine::Corrupt;
        std::string name;
        std::getline(ls, name);
        if (!name.empty() && name.front() == ' ')
            name.erase(0, 1);
        s.kernelSpans.emplace_back(unescapeLine(name), span);
        return StatsLine::Consumed;
    }
    if (key == "rfTraceWindow") {
        std::uint64_t w;
        if (!(ls >> w))
            return StatsLine::Corrupt;
        s.rfReadTrace = TimeSeries{ w };
        return StatsLine::Consumed;
    }
    if (key == "rfTraceSamples") {
        std::vector<double> samples;
        double v;
        while (ls >> v)
            samples.push_back(v);
        s.rfReadTrace.restoreSamples(std::move(samples));
        return StatsLine::Consumed;
    }
    return StatsLine::Unknown;
}

bool
parseStatsPayload(const std::string &payload, SimStats &out)
{
    std::istringstream in(payload);
    SimStats s;
    std::string line;
    while (std::getline(in, line))
        if (parseStatsLine(line, s) == StatsLine::Corrupt)
            return false;
    out = std::move(s);
    return true;
}

} // namespace scsim
