#include "stats/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace scsim {

void
Distribution::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void
Distribution::merge(const Distribution &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    double delta = other.mean_ - mean_;
    std::uint64_t n = count_ + other.count_;
    double na = static_cast<double>(count_);
    double nb = static_cast<double>(other.count_);
    m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
    mean_ = (na * mean_ + nb * other.mean_) / static_cast<double>(n);
    count_ = n;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
Distribution::reset()
{
    *this = Distribution();
}

double
Distribution::mean() const
{
    return count_ ? mean_ : 0.0;
}

double
Distribution::variance() const
{
    return count_ ? m2_ / static_cast<double>(count_) : 0.0;
}

double
Distribution::stddev() const
{
    return std::sqrt(variance());
}

double
Distribution::cov() const
{
    double mu = mean();
    return mu != 0.0 ? stddev() / mu : 0.0;
}

void
TimeSeries::rollTo(Cycle now)
{
    while (now >= curWindowStart_ + window_) {
        samples_.push_back(curSum_ / static_cast<double>(window_));
        curSum_ = 0.0;
        curWindowStart_ += window_;
    }
}

void
TimeSeries::add(Cycle now, double amount)
{
    rollTo(now);
    curSum_ += amount;
}

void
TimeSeries::finalize(Cycle now)
{
    rollTo(now);
    Cycle tail = now - curWindowStart_;
    if (tail > 0) {
        samples_.push_back(curSum_ / static_cast<double>(tail));
        curSum_ = 0.0;
        curWindowStart_ = now;
    }
}

void
TimeSeries::merge(const TimeSeries &other)
{
    if (other.samples_.empty())
        return;
    if (samples_.empty())
        window_ = other.window_;   // adopt the recording window
    scsim_assert(window_ == other.window_,
                 "cannot merge TimeSeries with windows %llu and %llu",
                 static_cast<unsigned long long>(window_),
                 static_cast<unsigned long long>(other.window_));
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    curWindowStart_ = window_ * samples_.size();
}

void
TimeSeries::restoreSamples(std::vector<double> samples)
{
    samples_ = std::move(samples);
    curSum_ = 0.0;
    curWindowStart_ = window_ * samples_.size();
}

void
TimeSeries::restoreState(std::vector<double> samples,
                         Cycle curWindowStart, double curSum)
{
    samples_ = std::move(samples);
    curWindowStart_ = curWindowStart;
    curSum_ = curSum;
}

double
TimeSeries::average() const
{
    if (samples_.empty())
        return 0.0;
    double s = 0.0;
    for (double x : samples_)
        s += x;
    return s / static_cast<double>(samples_.size());
}

double
mean(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
geomean(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    double logSum = 0.0;
    for (double x : xs) {
        scsim_assert(x > 0.0, "geomean requires positive values");
        logSum += std::log(x);
    }
    return std::exp(logSum / static_cast<double>(xs.size()));
}

double
coefficientOfVariation(std::span<const double> xs)
{
    Distribution d;
    for (double x : xs)
        d.add(x);
    return d.cov();
}

double
SimStats::ipc() const
{
    return cycles ? static_cast<double>(instructions)
                        / static_cast<double>(cycles)
                  : 0.0;
}

void
SimStats::merge(const SimStats &other)
{
    cycles += other.cycles;
    instructions += other.instructions;
    threadInstructions += other.threadInstructions;

    if (issuePerScheduler.size() < other.issuePerScheduler.size())
        issuePerScheduler.resize(other.issuePerScheduler.size());
    for (std::size_t sm = 0; sm < other.issuePerScheduler.size(); ++sm) {
        const auto &theirs = other.issuePerScheduler[sm];
        auto &ours = issuePerScheduler[sm];
        if (ours.size() < theirs.size())
            ours.resize(theirs.size(), 0);
        for (std::size_t s = 0; s < theirs.size(); ++s)
            ours[s] += theirs[s];
    }

    schedCycles += other.schedCycles;
    issueSlotsUsed += other.issueSlotsUsed;
    stallNoWarp += other.stallNoWarp;
    stallScoreboard += other.stallScoreboard;
    stallNoCu += other.stallNoCu;
    cuTurnaroundSum += other.cuTurnaroundSum;
    cuDispatches += other.cuDispatches;

    rfReads += other.rfReads;
    rfWrites += other.rfWrites;
    rfBankConflictCycles += other.rfBankConflictCycles;
    collectorFullStalls += other.collectorFullStalls;
    execStructuralStalls += other.execStructuralStalls;

    l1Accesses += other.l1Accesses;
    l1Misses += other.l1Misses;
    l2Accesses += other.l2Accesses;
    l2Misses += other.l2Misses;

    blocksCompleted += other.blocksCompleted;
    warpsCompleted += other.warpsCompleted;
    assignSpills += other.assignSpills;

    rfReadTrace.merge(other.rfReadTrace);

    kernelSpans.insert(kernelSpans.end(), other.kernelSpans.begin(),
                       other.kernelSpans.end());

    warpMigrations += other.warpMigrations;
}

double
SimStats::issueCov() const
{
    Distribution perSm;
    for (const auto &sched : issuePerScheduler) {
        std::vector<double> xs(sched.begin(), sched.end());
        double total = 0.0;
        for (double x : xs)
            total += x;
        if (total > 0.0)
            perSm.add(coefficientOfVariation(xs));
    }
    return perSm.mean();
}

} // namespace scsim
