/**
 * @file
 * Collector-unit count validation (Section V).
 *
 * The paper correlates Accel-Sim against silicon cycle counts of seven
 * register-bank-conflict microbenchmarks to pick CUs/sub-core, finding
 * 2 CUs minimizes mean absolute error.  Lacking silicon, we substitute
 * an *analytical oracle*: a closed-form first-order throughput model
 * of a sub-core whose collector has the silicon's 2 CUs.  The oracle
 * analyzes the generated instruction stream itself (operand counts,
 * per-bank pressure, dependence distance) so it is independent of the
 * cycle-level simulator's scheduling decisions.
 */

#ifndef SCSIM_WORKLOADS_CALIBRATION_HH
#define SCSIM_WORKLOADS_CALIBRATION_HH

#include "config/gpu_config.hh"
#include "trace/kernel.hh"

namespace scsim {

/** First-order characteristics of a warp instruction stream. */
struct ProgramProfile
{
    double computeInsts = 0;      //!< non-BAR/EXIT instructions
    double readsPerInst = 0;      //!< distinct source registers
    double worstBankReads = 0;    //!< per-inst max reads on one bank
    double maxBankLoad = 0;       //!< stream-wide reads/inst, busiest bank
    double depDistance = 1;       //!< mean dst-reuse distance (ILP)
};

/**
 * Analyze @p prog against a cluster with @p banks register banks
 * (bank = (reg + warpSlot) % banks; the per-warp pattern is slot
 * independent for the worst-bank metric).
 */
ProgramProfile analyzeProgram(const WarpProgram &prog, int banks);

/**
 * Analytical cycle count for @p kernel on silicon-like hardware with
 * @p siliconCus collector units per sub-core (2 for Volta).
 */
double siliconOracleCycles(const GpuConfig &cfg, const KernelDesc &kernel,
                           int siliconCus = 2);

} // namespace scsim

#endif // SCSIM_WORKLOADS_CALIBRATION_HH
