/**
 * @file
 * Synthetic application suite.
 *
 * Substitutes the paper's 112 applications from 8 benchmark suites
 * with parameterized synthetic kernels.  Each AppSpec captures the
 * warp-level structure that drives the studied effects:
 *
 *  - instruction mix and operand patterns  -> register bank pressure
 *  - dependence distance (ILP)             -> issue pressure
 *  - per-warp-slot length pattern          -> inter-warp divergence
 *    (TPC-H: one long-running warp every four; compressed queries add
 *    a heavily warp-specialized decompression kernel)
 *  - memory intensity / coalescing / footprint -> memory boundedness
 *
 * See DESIGN.md for the substitution rationale.
 */

#ifndef SCSIM_WORKLOADS_SUITE_HH
#define SCSIM_WORKLOADS_SUITE_HH

#include <string>
#include <vector>

#include "trace/kernel.hh"

namespace scsim {

struct AppSpec
{
    std::string name;
    std::string suite;

    // ---- launch geometry ----------------------------------------------
    int numBlocks = 64;
    int warpsPerBlock = 8;
    int regsPerThread = 32;
    std::uint32_t smemBytesPerBlock = 0;
    int numKernels = 1;

    // ---- per-warp work ---------------------------------------------------
    int baseInsts = 600;          //!< instructions per short warp
    double fmaFrac = 0.45;
    double sfuFrac = 0.0;
    double tensorFrac = 0.0;
    double memFrac = 0.12;        //!< remainder is integer ALU
    double storeFrac = 0.25;      //!< stores, as a fraction of memFrac

    // ---- register pressure ----------------------------------------------
    int ilp = 4;                  //!< independent accumulator chains
    int regWindow = 16;           //!< live register window
    double conflictBias = 0.3;    //!< P(source operands share a bank)
    /** P(first source is the current phase's "hot" register) — models
     *  kernels that re-read a few registers constantly (cuGraph),
     *  which more banks cannot help but smarter scheduling can. */
    double hotRegFrac = 0.0;

    // ---- inter-warp divergence -------------------------------------------
    /** Length multiplier per warp slot, cycled across the block. */
    std::vector<double> divPattern { 1.0 };
    double divNoise = 0.05;       //!< relative jitter on warp lengths
    /** Fraction of kernels that follow divPattern (rest balanced). */
    double divKernelFrac = 1.0;

    // ---- memory behaviour --------------------------------------------------
    int sectors = 4;              //!< 32B transactions per warp access
    std::uint64_t footprintMB = 64;
    bool randomMem = false;
};

/** Materialize the synthetic application for @p spec. */
Application buildApp(const AppSpec &spec, std::uint64_t seedSalt = 0);

/**
 * The full 112-application table across all 8 suites.
 * @param scale  multiplies grid sizes (use < 1 for quick runs)
 */
std::vector<AppSpec> standardSuite(double scale = 1.0);

/** Apps from one suite: "tpch-c", "tpch-u", "parboil", "rodinia",
 *  "cugraph", "polybench", "deepbench", "cutlass". */
std::vector<AppSpec> suiteApps(const std::string &suite,
                               double scale = 1.0);

/** The partitioning-sensitive subset highlighted in Table III. */
std::vector<AppSpec> sensitiveApps(double scale = 1.0);

/** Register-file-sensitive subset used by Figs 11, 12 and 14. */
std::vector<AppSpec> rfSensitiveApps(double scale = 1.0);

/** Look up an application by name; fatal if absent. */
AppSpec findApp(const std::string &name, double scale = 1.0);

} // namespace scsim

#endif // SCSIM_WORKLOADS_SUITE_HH
