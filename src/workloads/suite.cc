#include "workloads/suite.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace scsim {

namespace {

/** Generate one warp shape of @p len instructions for @p spec. */
WarpProgram
genShape(int len, const AppSpec &spec, std::uint8_t region, Rng &rng)
{
    WarpProgram prog;
    prog.code.reserve(static_cast<std::size_t>(len) + 2);

    int nAcc = std::clamp(spec.ilp, 1, spec.regWindow - 4);
    RegIndex poolBase = static_cast<RegIndex>(nAcc);
    int poolSize = spec.regWindow - nAcc;
    // Keep the pool even-sized so parity-preserving picks stay in it.
    int parityPool = poolSize & ~1;

    auto pickPool = [&] {
        return static_cast<RegIndex>(
            poolBase + static_cast<RegIndex>(
                rng.next(static_cast<std::uint64_t>(poolSize))));
    };
    // Compiler register allocation produces *phases*: stretches of
    // code whose operands cluster in one half of the register ids
    // (one bank of a 2-bank sub-core file).  The compiler cannot
    // coordinate these phases across warps (Sec. III-A), which is the
    // contention RBA exploits.  With conflictBias probability a source
    // is drawn from the current phase's parity class.
    const int phaseLen = 48;
    const int phase0 = static_cast<int>(rng.next(2));
    // The phase's hot register: re-read by a large fraction of
    // instructions in kernels with tight operand reuse.
    auto hotReg = [&](int i) {
        int idx = ((i / phaseLen) * 7 + phase0) % poolSize;
        return static_cast<RegIndex>(poolBase + idx);
    };
    auto pickParity = [&](int parity) {
        // Registers of the wanted parity inside the pool.
        int first = (static_cast<int>(poolBase) % 2 == parity) ? 0 : 1;
        int count = (parityPool - first + 1) / 2;
        int k = static_cast<int>(rng.next(
            static_cast<std::uint64_t>(count)));
        return static_cast<RegIndex>(poolBase + first + 2 * k);
    };

    double memCut = spec.memFrac;
    double fmaCut = memCut + spec.fmaFrac;
    double sfuCut = fmaCut + spec.sfuFrac;
    double tensorCut = sfuCut + spec.tensorFrac;

    for (int i = 0; i < len; ++i) {
        // During a conflict-biased instruction, the whole operand set
        // (accumulator included) sits in the phase's parity class, so
        // on a 2-bank sub-core every read of this instruction lands in
        // one bank.
        bool phased = parityPool >= 4 && nAcc >= 2
            && rng.chance(spec.conflictBias);
        int parity = ((i / phaseLen) + phase0) & 1;
        RegIndex acc = phased
            ? static_cast<RegIndex>(2 * (i % (nAcc / 2)) + parity)
            : static_cast<RegIndex>(i % nAcc);
        double r = rng.nextDouble();
        if (r < memCut) {
            bool shared = spec.smemBytesPerBlock > 0 && rng.chance(0.5);
            MemInfo m;
            if (shared) {
                m.space = MemSpace::Shared;
                m.sectors = static_cast<std::uint8_t>(
                    1 + rng.next(2));   // mild smem bank conflicts
                m.footprintBytes = std::max<std::uint64_t>(
                    spec.smemBytesPerBlock, 1024);
            } else {
                m.space = MemSpace::Global;
                m.region = region;
                m.sectors = static_cast<std::uint8_t>(spec.sectors);
                m.footprintBytes = spec.footprintMB << 20;
                m.randomAccess = spec.randomMem;
                m.strideBytes = 128;
                m.stepBytes = 128;
            }
            RegIndex addr = pickPool();
            if (!shared && rng.chance(spec.storeFrac)) {
                prog.code.push_back(Instruction::store(
                    Opcode::STG, addr, acc, m));
            } else {
                prog.code.push_back(Instruction::load(
                    shared ? Opcode::LDS : Opcode::LDG, acc, addr, m));
            }
        } else if (r < fmaCut) {
            RegIndex s1 = rng.chance(spec.hotRegFrac) ? hotReg(i)
                : phased ? pickParity(parity) : pickPool();
            RegIndex s2 = phased ? pickParity(parity) : pickPool();
            prog.code.push_back(
                Instruction::alu(Opcode::FMA, acc, acc, s1, s2));
        } else if (r < sfuCut) {
            prog.code.push_back(
                Instruction::alu(Opcode::SFU, acc, acc));
        } else if (r < tensorCut) {
            RegIndex s1 = phased ? pickParity(parity) : pickPool();
            RegIndex s2 = phased ? pickParity(parity) : pickPool();
            prog.code.push_back(
                Instruction::alu(Opcode::TENSOR, acc, acc, s1, s2));
        } else {
            RegIndex s1 = rng.chance(spec.hotRegFrac) ? hotReg(i)
                : phased ? pickParity(parity) : pickPool();
            if (rng.chance(0.5)) {
                RegIndex s2 = phased ? pickParity(parity) : pickPool();
                prog.code.push_back(
                    Instruction::alu(Opcode::IMAD, acc, acc, s1, s2));
            } else {
                prog.code.push_back(
                    Instruction::alu(Opcode::IADD, acc, acc, s1));
            }
        }
    }
    prog.code.push_back(Instruction::barrier());
    prog.code.push_back(Instruction::exit());
    return prog;
}

} // namespace

Application
buildApp(const AppSpec &spec, std::uint64_t seedSalt)
{
    scsim_assert(spec.regWindow >= 6, "register window too small");
    scsim_assert(spec.numKernels >= 1, "app needs at least one kernel");

    Application app;
    app.name = spec.name;
    app.suite = spec.suite;
    Rng rng(hashString(spec.name) ^ seedSalt
            ^ 0x9d3f8a25c41e67b9ULL);

    int nDivergent = static_cast<int>(std::lround(
        spec.divKernelFrac * spec.numKernels));
    for (int k = 0; k < spec.numKernels; ++k) {
        bool divergent = k < nDivergent;
        double kernelScale = 0.75 + 0.5 * rng.nextDouble();

        // Divergent kernels model compute-heavy warp-specialized work
        // (decompression, hash probing): the long warps are dominated
        // by ALU work, which is what makes piling them onto one
        // sub-core expensive.
        AppSpec kspec = spec;
        if (divergent)
            kspec.memFrac *= 0.3;

        KernelDesc kd;
        kd.name = spec.name + "-k" + std::to_string(k);
        kd.numBlocks = spec.numBlocks;
        kd.warpsPerBlock = spec.warpsPerBlock;
        kd.regsPerThread = std::max(spec.regsPerThread, spec.regWindow);
        kd.smemBytesPerBlock = spec.smemBytesPerBlock;

        for (int w = 0; w < spec.warpsPerBlock; ++w) {
            double mult = divergent
                ? spec.divPattern[static_cast<std::size_t>(w)
                                  % spec.divPattern.size()]
                : 1.0;
            double jitter = 1.0
                + (rng.nextDouble() * 2.0 - 1.0) * spec.divNoise;
            int len = std::max(8, static_cast<int>(std::lround(
                spec.baseInsts * mult * jitter * kernelScale)));
            kd.shapes.push_back(genShape(
                len, kspec, static_cast<std::uint8_t>(k % 4), rng));
            kd.shapeOfWarp.push_back(static_cast<std::uint16_t>(w));
        }
        kd.validate();
        app.kernels.push_back(std::move(kd));
    }
    return app;
}

namespace {

int
scaled(int blocks, double scale)
{
    return std::max(8, static_cast<int>(std::lround(blocks * scale)));
}

/** TPC-H query spec; compressed adds the warp-specialized kernel. */
AppSpec
tpchQuery(int q, bool compressed, double scale)
{
    AppSpec a;
    a.suite = compressed ? "tpch-c" : "tpch-u";
    a.name = (compressed ? "tpcC-q" : "tpcU-q") + std::to_string(q);
    a.numBlocks = scaled(80, scale);
    a.warpsPerBlock = 8;
    a.regsPerThread = 32;
    a.smemBytesPerBlock = 8 * 1024;
    a.numKernels = 4 + q % 3;
    a.baseInsts = 320 + 40 * (q % 7);
    a.fmaFrac = 0.15;
    a.memFrac = 0.28 + 0.01 * (q % 5);
    a.sectors = (q % 2) ? 8 : 4;
    a.randomMem = (q % 3) != 0;
    a.footprintMB = 256;
    a.ilp = 4;
    a.regWindow = 16;
    a.conflictBias = 0.15;
    // One long-running warp every four (Sec. VI-C); compressed queries
    // carry the snappy-decompression warp-specialization (Sec. VI).
    double amp = compressed ? 4.4 + 0.7 * (q % 5)
                            : 3.8 + 0.4 * (q % 6);
    a.divPattern = { amp, 1.0, 1.0, 1.0 };
    a.divNoise = 0.15;
    a.divKernelFrac = compressed ? 0.8 : 0.65;
    return a;
}

void
addTpch(std::vector<AppSpec> &out, bool compressed, double scale)
{
    for (int q = 1; q <= 22; ++q)
        out.push_back(tpchQuery(q, compressed, scale));
}

void
addParboil(std::vector<AppSpec> &out, double scale)
{
    auto base = [&](const char *name) {
        AppSpec a;
        a.suite = "parboil";
        a.name = std::string("pb-") + name;
        a.numBlocks = scaled(96, scale);
        a.warpsPerBlock = 8;
        a.baseInsts = 700;
        return a;
    };
    {   // MRI-Q: FMA-dense, heavily bank-conflict-prone (RF bound).
        AppSpec a = base("mriq");
        a.fmaFrac = 0.80; a.memFrac = 0.02; a.sfuFrac = 0.06;
        a.ilp = 6; a.regWindow = 24; a.conflictBias = 0.92;
        a.baseInsts = 900; a.footprintMB = 4;
        out.push_back(a);
    }
    {   // MRI-Gridding.
        AppSpec a = base("mrig");
        a.fmaFrac = 0.68; a.memFrac = 0.08; a.sfuFrac = 0.05;
        a.ilp = 5; a.regWindow = 20; a.conflictBias = 0.70;
        a.footprintMB = 8;
        out.push_back(a);
    }
    {   // SAD: integer + memory.
        AppSpec a = base("sad");
        a.fmaFrac = 0.10; a.memFrac = 0.25; a.sectors = 8;
        a.conflictBias = 0.45; a.regWindow = 20;
        out.push_back(a);
    }
    {   // SGEMM: FMA + shared-memory tiles.
        AppSpec a = base("sgemm");
        a.fmaFrac = 0.65; a.memFrac = 0.15;
        a.smemBytesPerBlock = 16 * 1024;
        a.ilp = 6; a.regWindow = 28; a.conflictBias = 0.60;
        a.baseInsts = 1000; a.footprintMB = 8;
        out.push_back(a);
    }
    {   // CUTCP: FMA + transcendental.
        AppSpec a = base("cutcp");
        a.fmaFrac = 0.60; a.sfuFrac = 0.15; a.memFrac = 0.08;
        a.ilp = 4; a.regWindow = 20; a.conflictBias = 0.55;
        a.footprintMB = 8;
        out.push_back(a);
    }
    {   // Stencil.
        AppSpec a = base("stencil");
        a.fmaFrac = 0.40; a.memFrac = 0.30; a.sectors = 4;
        a.conflictBias = 0.35; a.footprintMB = 256;
        out.push_back(a);
    }
    {   // SpMV.
        AppSpec a = base("spmv");
        a.fmaFrac = 0.25; a.memFrac = 0.35; a.randomMem = true;
        a.sectors = 12; a.footprintMB = 256;
        out.push_back(a);
    }
    {   // LBM.
        AppSpec a = base("lbm");
        a.fmaFrac = 0.30; a.memFrac = 0.40; a.sectors = 4;
        a.footprintMB = 512;
        out.push_back(a);
    }
    {   // Histogramming.
        AppSpec a = base("histo");
        a.fmaFrac = 0.05; a.memFrac = 0.30; a.randomMem = true;
        a.sectors = 16; a.footprintMB = 64;
        out.push_back(a);
    }
    {   // TPACF.
        AppSpec a = base("tpacf");
        a.fmaFrac = 0.50; a.sfuFrac = 0.20; a.memFrac = 0.08;
        a.regWindow = 20; a.conflictBias = 0.40;
        a.footprintMB = 8;
        out.push_back(a);
    }
    {   // BFS: irregular, mildly divergent.
        AppSpec a = base("bfs");
        a.fmaFrac = 0.05; a.memFrac = 0.35; a.randomMem = true;
        a.sectors = 12; a.divPattern = { 2.0, 1.0, 1.0, 1.0 };
        a.divNoise = 0.30;
        out.push_back(a);
    }
}

void
addRodinia(std::vector<AppSpec> &out, double scale)
{
    auto base = [&](const char *name) {
        AppSpec a;
        a.suite = "rodinia";
        a.name = std::string("rod-") + name;
        a.numBlocks = scaled(80, scale);
        a.warpsPerBlock = 8;
        a.baseInsts = 650;
        return a;
    };
    {   // lavaMD: particle potential, collector-pressure heavy.
        AppSpec a = base("lavaMD");
        a.fmaFrac = 0.70; a.memFrac = 0.05; a.sfuFrac = 0.05;
        a.ilp = 3; a.regWindow = 28; a.conflictBias = 0.88;
        a.baseInsts = 900; a.footprintMB = 4;
        out.push_back(a);
    }
    {   // Back propagation.
        AppSpec a = base("bp");
        a.fmaFrac = 0.55; a.memFrac = 0.12;
        a.smemBytesPerBlock = 8 * 1024;
        a.ilp = 4; a.regWindow = 20; a.conflictBias = 0.65;
        a.footprintMB = 8;
        out.push_back(a);
    }
    {   // SRAD: RBA beats fully-connected here (Fig 14).
        AppSpec a = base("srad");
        a.fmaFrac = 0.60; a.memFrac = 0.10; a.sfuFrac = 0.05;
        a.ilp = 5; a.regWindow = 24; a.conflictBias = 0.85;
        a.hotRegFrac = 0.30;
        a.baseInsts = 800; a.footprintMB = 8;
        out.push_back(a);
    }
    {   // Hotspot 3D.
        AppSpec a = base("htsp");
        a.fmaFrac = 0.45; a.memFrac = 0.28; a.sectors = 4;
        a.conflictBias = 0.50; a.regWindow = 20;
        a.footprintMB = 256;
        out.push_back(a);
    }
    struct Simple { const char *name; double fma, mem, sfu; int ilp,
                    window; double conflict; bool random; int sectors;
                    std::uint32_t smem; };
    const Simple rest[] = {
        { "hotspot", 0.45, 0.25, 0.00, 4, 18, 0.45, false, 4, 4096 },
        { "nw",      0.05, 0.25, 0.00, 2, 12, 0.30, false, 4, 8192 },
        { "kmeans",  0.40, 0.30, 0.00, 4, 16, 0.40, false, 4, 0 },
        { "strmcl",  0.35, 0.35, 0.00, 4, 16, 0.35, false, 8, 0 },
        { "bfs",     0.05, 0.35, 0.00, 2, 12, 0.20, true, 12, 0 },
        { "gaussian",0.50, 0.20, 0.00, 4, 18, 0.50, false, 4, 0 },
        { "lud",     0.55, 0.15, 0.00, 4, 20, 0.55, false, 4, 16384 },
        { "cfd",     0.60, 0.25, 0.05, 5, 24, 0.50, false, 4, 0 },
        { "myocyte", 0.50, 0.05, 0.30, 1, 20, 0.40, false, 4, 0 },
        { "hrtwall", 0.45, 0.20, 0.10, 3, 20, 0.45, false, 8, 0 },
        { "leuko",   0.60, 0.15, 0.10, 4, 22, 0.55, false, 4, 0 },
        { "prtclf",  0.35, 0.20, 0.20, 3, 16, 0.35, true, 8, 0 },
        { "pathf",   0.10, 0.25, 0.00, 3, 12, 0.25, false, 4, 8192 },
        { "nn",      0.30, 0.40, 0.00, 4, 14, 0.30, false, 4, 0 },
        { "dwt2d",   0.50, 0.20, 0.00, 4, 18, 0.45, false, 4, 4096 },
        { "btree",   0.05, 0.35, 0.00, 2, 12, 0.20, true, 12, 0 },
    };
    for (const Simple &s : rest) {
        AppSpec a = base(s.name);
        a.fmaFrac = s.fma; a.memFrac = s.mem; a.sfuFrac = s.sfu;
        a.ilp = s.ilp; a.regWindow = s.window;
        a.conflictBias = s.conflict; a.randomMem = s.random;
        a.sectors = s.sectors; a.smemBytesPerBlock = s.smem;
        if (s.random)
            a.footprintMB = 256;
        out.push_back(a);
    }
}

void
addCugraph(std::vector<AppSpec> &out, double scale)
{
    // Register-intensive with a tight reuse window: many RF accesses
    // over few distinct registers, so RBA helps more than the extra
    // banks of a fully-connected SM (Sec. VI-B1).
    const char *names[] = { "lou", "bfs", "sssp", "pgrnk", "wcc",
                            "katz", "hits" };
    int i = 0;
    for (const char *n : names) {
        AppSpec a;
        a.suite = "cugraph";
        a.name = std::string("cg-") + n;
        a.numBlocks = scaled(96, scale);
        a.warpsPerBlock = 8;
        a.baseInsts = 750 + 50 * (i % 3);
        a.fmaFrac = 0.45;
        a.memFrac = 0.08 + 0.02 * (i % 3);
        a.randomMem = true;
        a.sectors = 4;
        a.footprintMB = 16;
        a.ilp = 4;
        a.regWindow = 12;         // tight reuse
        a.conflictBias = 0.95;
        a.hotRegFrac = 0.50;
        a.divPattern = { 1.6, 1.0, 1.0, 1.0 };
        a.divNoise = 0.20;
        a.divKernelFrac = 0.5;
        a.numKernels = 2;
        out.push_back(a);
        ++i;
    }
}

void
addPolybench(std::vector<AppSpec> &out, double scale)
{
    struct Poly { const char *name; double fma, mem, conflict;
                  int ilp, window; };
    const Poly apps[] = {
        { "2Dcon", 0.55, 0.22, 0.88, 6, 20 },
        { "3Dcon", 0.55, 0.25, 0.82, 6, 22 },
        { "gemm",  0.60, 0.18, 0.55, 6, 24 },
        { "2mm",   0.58, 0.20, 0.55, 6, 24 },
        { "3mm",   0.58, 0.20, 0.55, 6, 24 },
        { "atax",  0.45, 0.30, 0.45, 4, 16 },
        { "bicg",  0.45, 0.30, 0.45, 4, 16 },
        { "mvt",   0.45, 0.28, 0.45, 4, 16 },
        { "syrk",  0.55, 0.20, 0.50, 5, 20 },
        { "syr2k", 0.55, 0.22, 0.50, 5, 20 },
        { "gesummv", 0.45, 0.30, 0.40, 4, 16 },
        { "grmschm", 0.50, 0.25, 0.45, 4, 18 },
        { "corr",  0.50, 0.25, 0.45, 4, 18 },
        { "covar", 0.50, 0.25, 0.45, 4, 18 },
        { "fdtd2d", 0.50, 0.28, 0.45, 4, 18 },
    };
    for (const Poly &p : apps) {
        AppSpec a;
        a.suite = "polybench";
        a.name = std::string("ply-") + p.name;
        a.numBlocks = scaled(72, scale);
        a.warpsPerBlock = 8;
        a.baseInsts = 700;
        a.fmaFrac = p.fma;
        a.memFrac = p.mem;
        a.conflictBias = p.conflict;
        a.ilp = p.ilp;
        a.regWindow = p.window;
        a.sectors = 4;
        bool resident = std::string(p.name).find("con") == 0
            || std::string(p.name).find("mm") != std::string::npos
            || std::string(p.name).find("syr") == 0
            || std::string(p.name) == "gemm";
        a.footprintMB = resident ? 12 : 128;
        out.push_back(a);
    }
}

void
addDeepbench(std::vector<AppSpec> &out, double scale)
{
    struct Db { const char *name; double tensor, fma, sfu, mem; };
    const Db apps[] = {
        { "conv-tr",  0.35, 0.30, 0.00, 0.18 },
        { "conv-inf", 0.40, 0.28, 0.00, 0.16 },
        { "rnn-tr",   0.10, 0.50, 0.10, 0.15 },
        { "rnn-inf",  0.12, 0.52, 0.10, 0.14 },
        { "gemm-tr",  0.40, 0.30, 0.00, 0.14 },
        { "gemm-inf", 0.42, 0.30, 0.00, 0.12 },
        { "lstm-tr",  0.10, 0.48, 0.14, 0.15 },
        { "lstm-inf", 0.12, 0.50, 0.14, 0.14 },
    };
    for (const Db &d : apps) {
        AppSpec a;
        a.suite = "deepbench";
        a.name = std::string("db-") + d.name;
        a.numBlocks = scaled(64, scale);
        a.warpsPerBlock = 8;
        a.baseInsts = 800;
        a.tensorFrac = d.tensor;
        a.fmaFrac = d.fma;
        a.sfuFrac = d.sfu;
        a.memFrac = d.mem;
        a.smemBytesPerBlock = 16 * 1024;
        a.ilp = 5;
        a.regWindow = 24;
        a.conflictBias = 0.55;
        a.footprintMB = 16;
        out.push_back(a);
    }
}

void
addCutlass(std::vector<AppSpec> &out, double scale)
{
    const char *names[] = { "256", "512", "1024", "2048", "4096",
                            "splitk", "conv" };
    int i = 0;
    for (const char *n : names) {
        AppSpec a;
        a.suite = "cutlass";
        a.name = std::string("cutlass-") + n;
        a.numBlocks = scaled(48 + 12 * (i % 4), scale);
        a.warpsPerBlock = 8;
        a.baseInsts = 950;
        a.tensorFrac = 0.40;
        a.fmaFrac = 0.28;
        a.memFrac = 0.12;
        a.smemBytesPerBlock = 32 * 1024;
        a.ilp = 6;
        a.regWindow = 28;
        a.conflictBias = (i == 4) ? 0.70 : 0.40;   // 4096 is RF-bound
        a.footprintMB = 16;
        out.push_back(a);
        ++i;
    }
}

} // namespace

std::vector<AppSpec>
standardSuite(double scale)
{
    std::vector<AppSpec> out;
    out.reserve(112);
    addTpch(out, /*compressed=*/false, scale);
    addTpch(out, /*compressed=*/true, scale);
    addParboil(out, scale);
    addRodinia(out, scale);
    addCugraph(out, scale);
    addPolybench(out, scale);
    addDeepbench(out, scale);
    addCutlass(out, scale);
    scsim_assert(out.size() == 112, "suite table must hold 112 apps");
    return out;
}

std::vector<AppSpec>
suiteApps(const std::string &suite, double scale)
{
    std::vector<AppSpec> all = standardSuite(scale);
    std::vector<AppSpec> out;
    for (auto &a : all)
        if (a.suite == suite)
            out.push_back(std::move(a));
    if (out.empty())
        scsim_throw(WorkloadError, "unknown suite '%s'", suite.c_str());
    return out;
}

std::vector<AppSpec>
sensitiveApps(double scale)
{
    static const char *names[] = {
        "tpcU-q8", "tpcC-q9", "pb-mriq", "pb-mrig", "pb-sad",
        "pb-sgemm", "pb-cutcp", "cutlass-4096", "rod-lavaMD", "rod-bp",
        "rod-srad", "rod-htsp", "cg-lou", "cg-bfs", "cg-sssp",
        "cg-pgrnk", "cg-wcc", "cg-katz", "cg-hits", "ply-2Dcon",
        "ply-3Dcon", "db-conv-tr", "db-conv-inf", "db-rnn-tr",
        "db-rnn-inf",
    };
    std::vector<AppSpec> out;
    for (const char *n : names)
        out.push_back(findApp(n, scale));
    return out;
}

std::vector<AppSpec>
rfSensitiveApps(double scale)
{
    static const char *names[] = {
        "pb-mriq", "pb-mrig", "pb-sgemm", "pb-cutcp", "rod-lavaMD",
        "rod-bp", "rod-srad", "rod-htsp", "cg-lou", "cg-bfs",
        "cg-sssp", "cg-pgrnk", "cg-wcc", "cg-katz", "cg-hits",
        "ply-2Dcon", "ply-3Dcon", "cutlass-4096",
    };
    std::vector<AppSpec> out;
    for (const char *n : names)
        out.push_back(findApp(n, scale));
    return out;
}

AppSpec
findApp(const std::string &name, double scale)
{
    for (auto &a : standardSuite(scale))
        if (a.name == name)
            return a;
    scsim_throw(WorkloadError, "unknown application '%s'", name.c_str());
}

} // namespace scsim
