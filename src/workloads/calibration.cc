#include "workloads/calibration.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.hh"

namespace scsim {

ProgramProfile
analyzeProgram(const WarpProgram &prog, int banks)
{
    ProgramProfile p;
    double readSum = 0, worstSum = 0, distSum = 0;
    std::vector<int> bankReads(static_cast<std::size_t>(banks));
    std::vector<double> bankLoad(static_cast<std::size_t>(banks));

    const auto &code = prog.code;
    for (std::size_t i = 0; i < code.size(); ++i) {
        const Instruction &inst = code[i];
        if (!inst.usesCollector())
            continue;
        p.computeInsts += 1;

        std::fill(bankReads.begin(), bankReads.end(), 0);
        int reads = 0;
        for (int s = 0; s < 3; ++s) {
            RegIndex r = inst.srcs[static_cast<std::size_t>(s)];
            if (r == kNoReg)
                continue;
            bool dup = false;
            for (int q = 0; q < s; ++q)
                if (inst.srcs[static_cast<std::size_t>(q)] == r)
                    dup = true;
            if (dup)
                continue;
            ++reads;
            ++bankReads[static_cast<std::size_t>(
                static_cast<unsigned>(r) % static_cast<unsigned>(banks))];
        }
        readSum += reads;
        worstSum += *std::max_element(bankReads.begin(), bankReads.end());
        for (int b = 0; b < banks; ++b)
            bankLoad[static_cast<std::size_t>(b)] +=
                bankReads[static_cast<std::size_t>(b)];

        if (inst.dst != kNoReg) {
            // Distance until the destination is next touched.
            std::size_t dist = code.size() - i;
            for (std::size_t j = i + 1; j < code.size(); ++j) {
                const Instruction &later = code[j];
                bool touches = later.dst == inst.dst;
                for (RegIndex r : later.srcs)
                    touches = touches || r == inst.dst;
                if (touches) {
                    dist = j - i;
                    break;
                }
            }
            distSum += static_cast<double>(
                std::min<std::size_t>(dist, 16));
        } else {
            distSum += 16;   // no dependent consumer
        }
    }
    if (p.computeInsts > 0) {
        p.readsPerInst = readSum / p.computeInsts;
        p.worstBankReads = worstSum / p.computeInsts;
        p.maxBankLoad = *std::max_element(bankLoad.begin(),
                                          bankLoad.end())
            / p.computeInsts;
        p.depDistance = distSum / p.computeInsts;
    }
    return p;
}

double
siliconOracleCycles(const GpuConfig &cfg, const KernelDesc &kernel,
                    int siliconCus)
{
    // Aggregate stream profile across warp slots (weighted by shape).
    ProgramProfile agg;
    double totalInsts = 0;
    for (int w = 0; w < kernel.warpsPerBlock; ++w) {
        ProgramProfile p = analyzeProgram(kernel.programOf(w),
                                          cfg.banksPerCluster());
        agg.readsPerInst += p.readsPerInst * p.computeInsts;
        agg.worstBankReads += p.worstBankReads * p.computeInsts;
        agg.maxBankLoad += p.maxBankLoad * p.computeInsts;
        agg.depDistance += p.depDistance * p.computeInsts;
        totalInsts += p.computeInsts;
    }
    scsim_assert(totalInsts > 0, "oracle on an empty kernel");
    agg.readsPerInst /= totalInsts;
    agg.worstBankReads /= totalInsts;
    agg.maxBankLoad /= totalInsts;
    agg.depDistance /= totalInsts;

    // Resident warps per scheduler at steady state.
    int blocksPerSm = std::min(
        { cfg.maxBlocksPerSm,
          cfg.maxWarpsPerSm / kernel.warpsPerBlock,
          (kernel.numBlocks + cfg.numSms - 1) / cfg.numSms });
    blocksPerSm = std::max(blocksPerSm, 1);
    double warpsPerSched =
        static_cast<double>(blocksPerSm * kernel.warpsPerBlock)
        / static_cast<double>(cfg.schedulersPerSm);

    // Per-scheduler issue throughput bounds (warp instructions/cycle).
    double collect = std::max(agg.worstBankReads, 1.0);
    double banksPerSched = static_cast<double>(cfg.rfBanksPerSm)
        / static_cast<double>(cfg.schedulersPerSm);
    double issueBound = static_cast<double>(cfg.issueWidthPerScheduler);
    double iiBound = static_cast<double>(cfg.spPipesPerScheduler)
        / static_cast<double>(cfg.spInitiation);
    double bankBound = agg.readsPerInst > 0
        ? banksPerSched / agg.readsPerInst
        : issueBound;
    // A bank grants one read per cycle: the busiest bank's stream-wide
    // load is a hard serialization bound.
    double serialBound = agg.maxBankLoad > 0
        ? 1.0 / agg.maxBankLoad
        : issueBound;
    // Silicon's collector: each instruction holds a CU for alloc (1)
    // plus its worst-bank grant cycles, and with 2 CUs in flight the
    // second CU's conflicts stretch residency further.
    double residency = 1.0 + collect
        + 0.5 * (collect - 1.0) * (siliconCus > 1 ? 1.0 : 0.0);
    double cuBound = static_cast<double>(siliconCus)
        / std::max(residency, 1.0);
    double interval = collect + 2.0 + static_cast<double>(cfg.spLatency);
    double latBound = warpsPerSched * agg.depDistance / interval;

    double throughput = std::min({ issueBound, iiBound, bankBound,
                                   serialBound, cuBound, latBound });
    scsim_assert(throughput > 0, "degenerate oracle throughput");

    // Work per SM, spread over the SM's schedulers.
    double blocksOnBusiestSm = std::ceil(
        static_cast<double>(kernel.numBlocks)
        / static_cast<double>(cfg.numSms));
    double instsPerSched = blocksOnBusiestSm * totalInsts
        / static_cast<double>(cfg.schedulersPerSm);

    // Waves of block residency serialize.
    double waves = std::ceil(blocksOnBusiestSm
                             / static_cast<double>(blocksPerSm));
    double drain = waves * (interval + 30.0);
    return instsPerSched / throughput + drain;
}

} // namespace scsim
