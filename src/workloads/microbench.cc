#include "workloads/microbench.hh"

#include <algorithm>

#include "common/logging.hh"

namespace scsim {

const char *
toString(FmaLayout layout)
{
    switch (layout) {
      case FmaLayout::Baseline:   return "baseline";
      case FmaLayout::Balanced:   return "balanced";
      case FmaLayout::Unbalanced: return "unbalanced";
    }
    return "?";
}

namespace {

/**
 * Dependent-FMA compute shape: four accumulator chains per thread
 * (the standard FLOPs-microbenchmark unrolling), ending at the block
 * barrier.
 */
WarpProgram
fmaComputeShape(int fmaPerThread)
{
    WarpProgram prog;
    prog.code.reserve(static_cast<std::size_t>(fmaPerThread) + 2);
    // r0..r3: accumulators; r4, r5: multiplicands.
    for (int i = 0; i < fmaPerThread; ++i) {
        RegIndex acc = static_cast<RegIndex>(i % 4);
        prog.code.push_back(Instruction::alu(Opcode::FMA, acc, acc, 4, 5));
    }
    prog.code.push_back(Instruction::barrier());
    prog.code.push_back(Instruction::exit());
    return prog;
}

/** Empty-warp shape: wait at the barrier, then exit (Fig 4 green). */
WarpProgram
emptyShape()
{
    WarpProgram prog;
    prog.code.push_back(Instruction::barrier());
    prog.code.push_back(Instruction::exit());
    return prog;
}

} // namespace

KernelDesc
makeFmaMicro(FmaLayout layout, int fmaPerThread, int numBlocks)
{
    KernelDesc k;
    k.name = std::string("fma-") + toString(layout);
    k.numBlocks = numBlocks;
    k.regsPerThread = 8;
    k.shapes.push_back(fmaComputeShape(fmaPerThread));   // shape 0
    k.shapes.push_back(emptyShape());                    // shape 1

    switch (layout) {
      case FmaLayout::Baseline:
        k.warpsPerBlock = 8;
        k.shapeOfWarp.assign(8, 0);
        break;
      case FmaLayout::Balanced:
        // Compute warps first: round-robin puts two on each sub-core.
        k.warpsPerBlock = 32;
        k.shapeOfWarp.assign(32, 1);
        for (int w = 0; w < 8; ++w)
            k.shapeOfWarp[static_cast<std::size_t>(w)] = 0;
        break;
      case FmaLayout::Unbalanced:
        // Compute warps every 4th slot: round-robin piles all eight
        // onto sub-core 0 (Fig 4's red column).
        k.warpsPerBlock = 32;
        k.shapeOfWarp.assign(32, 1);
        for (int w = 0; w < 32; w += 4)
            k.shapeOfWarp[static_cast<std::size_t>(w)] = 0;
        break;
    }
    k.validate();
    return k;
}

KernelDesc
makeHangMicro(int fmaPerThread, int numBlocks)
{
    KernelDesc k;
    k.name = "hang-micro";
    k.numBlocks = numBlocks;
    k.warpsPerBlock = 4;
    k.regsPerThread = 8;
    k.shapes.push_back(fmaComputeShape(fmaPerThread));
    k.shapeOfWarp.assign(4, 0);
    k.validate();
    return k;
}

KernelDesc
makeCrashMicro(int fmaPerThread, int numBlocks)
{
    KernelDesc k;
    k.name = "crash-micro";
    k.numBlocks = numBlocks;
    k.warpsPerBlock = 4;
    k.regsPerThread = 8;
    k.shapes.push_back(fmaComputeShape(fmaPerThread));
    k.shapeOfWarp.assign(4, 0);
    k.validate();
    return k;
}

KernelDesc
makeImbalanceMicro(double imbalance, int baseFma, int numBlocks)
{
    scsim_assert(imbalance >= 1.0, "imbalance factor must be >= 1");
    KernelDesc k;
    k.name = "fma-imbalance";
    k.numBlocks = numBlocks;
    k.warpsPerBlock = 32;
    k.regsPerThread = 8;
    int longFma = static_cast<int>(
        static_cast<double>(baseFma) * imbalance + 0.5);
    k.shapes.push_back(fmaComputeShape(longFma));   // shape 0: long
    k.shapes.push_back(fmaComputeShape(baseFma));   // shape 1: short
    k.shapeOfWarp.assign(32, 1);
    for (int w = 0; w < 32; w += 4)
        k.shapeOfWarp[static_cast<std::size_t>(w)] = 0;
    k.validate();
    return k;
}

KernelDesc
makeConflictMicro(int variant, int instsPerWarp, int numBlocks)
{
    scsim_assert(variant >= 0 && variant < kNumConflictMicros,
                 "conflict micro variant out of range");
    WarpProgram prog;
    prog.code.reserve(static_cast<std::size_t>(instsPerWarp) + 2);

    auto evenAcc = [](int i, int n) {
        return static_cast<RegIndex>(2 * (i % n));   // r0, r2, ...
    };

    for (int i = 0; i < instsPerWarp; ++i) {
        Instruction inst;
        switch (variant) {
          case 0: {
            // 3-src FMA, all operands even: one bank soaks every read.
            RegIndex acc = evenAcc(i, 4);            // r0,r2,r4,r6
            inst = Instruction::alu(Opcode::FMA, acc, acc, 8, 10);
            break;
          }
          case 1: {
            // 3-src FMA, operands spread over both banks.
            RegIndex acc = static_cast<RegIndex>(i % 4);  // r0..r3
            inst = Instruction::alu(Opcode::FMA, acc, acc, 4, 5);
            break;
          }
          case 2: {
            // 2-src FMUL, both operands in the same bank.
            RegIndex acc = evenAcc(i, 4);
            inst = Instruction::alu(Opcode::FMUL, acc, acc, 8);
            break;
          }
          case 3: {
            // 2-src FADD, spread, eight independent chains.
            RegIndex acc = static_cast<RegIndex>(i % 8);
            RegIndex other = static_cast<RegIndex>(8 + (i % 2));
            inst = Instruction::alu(Opcode::FADD, acc, acc, other);
            break;
          }
          case 4: {
            // Single serial chain: latency bound, conflicts moot.
            inst = Instruction::alu(Opcode::FMA, 0, 0, 1, 2);
            break;
          }
          case 5: {
            // Alternating FMA / IADD sharing operand registers.
            if (i % 2 == 0)
                inst = Instruction::alu(Opcode::FMA, 0, 0, 4, 6);
            else
                inst = Instruction::alu(Opcode::IADD, 1, 1, 5);
            break;
          }
          case 6: {
            // Wide window, pseudo-random operand registers.
            RegIndex acc = static_cast<RegIndex>(i % 6);
            RegIndex s1 = static_cast<RegIndex>(8 + (i * 7 + 3) % 24);
            RegIndex s2 = static_cast<RegIndex>(8 + (i * 13 + 5) % 24);
            inst = Instruction::alu(Opcode::FMA, acc, acc, s1, s2);
            break;
          }
          default:
            scsim_panic("unreachable");
        }
        prog.code.push_back(inst);
    }
    prog.code.push_back(Instruction::barrier());
    prog.code.push_back(Instruction::exit());

    KernelDesc k;
    k.name = "conflict-micro-" + std::to_string(variant);
    k.numBlocks = numBlocks;
    k.warpsPerBlock = 8;
    k.regsPerThread = 40;
    k.shapes.push_back(std::move(prog));
    k.shapeOfWarp.assign(8, 0);
    k.validate();
    return k;
}

} // namespace scsim
