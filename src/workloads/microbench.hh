/**
 * @file
 * Hardware-correlation microbenchmarks from Sections III and V.
 *
 * The FMA microbenchmark family reproduces Fig 4's thread-block
 * layouts: 8 compute warps running dependent FMA chains (two
 * accumulators per thread, as a FLOPs microbenchmark would unroll),
 * optionally padded with 24 "empty" warps that only hit the block
 * barrier and exit.  Under round-robin sub-core assignment the
 * *unbalanced* layout puts every compute warp on the same sub-core.
 *
 * The bank-conflict micros (seven variants) stress the operand
 * collector with different operand/bank patterns and are used to
 * validate the collector-unit count against the analytical "silicon"
 * oracle (Section V's CU-count calibration).
 */

#ifndef SCSIM_WORKLOADS_MICROBENCH_HH
#define SCSIM_WORKLOADS_MICROBENCH_HH

#include "trace/kernel.hh"

namespace scsim {

/** Fig 4 thread-block layouts. */
enum class FmaLayout
{
    Baseline,    //!< 8 compute warps, no padding
    Balanced,    //!< compute warps 0..7 (+24 empty): 2 per sub-core
    Unbalanced,  //!< compute warps 0,4,..,28 (+24 empty): all on one
};

const char *toString(FmaLayout layout);

/**
 * The Fig 3/4 FMA microbenchmark.
 * @param layout        block layout
 * @param fmaPerThread  dependent FMA count per thread (paper: 4096)
 * @param numBlocks     grid size
 */
KernelDesc makeFmaMicro(FmaLayout layout, int fmaPerThread = 4096,
                        int numBlocks = 16);

/**
 * Fig 8 workload: 32 warps per block, every 4th warp executes
 * @p imbalance times the FMA work of the others (the TPC-H-like
 * "one long-running warp every four" shape).
 */
KernelDesc makeImbalanceMicro(double imbalance, int baseFma = 512,
                              int numBlocks = 16);

/**
 * Robustness-harness target: a small FMA kernel named "hang-micro".
 * On its own it completes normally; with
 * FaultInjector::armHang("hang-micro") the run loop is pinned alive
 * after the work drains, so the forward-progress watchdog must
 * contain it.  Used by the robustness tests and `--micro hang`.
 */
KernelDesc makeHangMicro(int fmaPerThread = 64, int numBlocks = 2);

/**
 * Robustness-harness target: a small FMA kernel named "crash-micro".
 * On its own it completes normally; with
 * FaultInjector::raiseSignalInKernel("crash-micro", sig) the process
 * dies by that signal after its first simulated cycle, so
 * `sweep --isolate` can prove crash containment.  Used by
 * `--micro crash` / `--micro crash:abort`.
 */
KernelDesc makeCrashMicro(int fmaPerThread = 64, int numBlocks = 2);

/** Number of bank-conflict calibration variants. */
inline constexpr int kNumConflictMicros = 7;

/**
 * Bank-conflict microbenchmark @p variant in [0, kNumConflictMicros):
 *  0: 3-source FMA, all operands in one bank (worst case)
 *  1: 3-source FMA, operands spread across banks
 *  2: 2-source FMUL, same bank
 *  3: 2-source FADD, spread, high ILP
 *  4: serial dependent chain (latency bound)
 *  5: mixed FMA/IADD with shared operands
 *  6: wide register window, pseudo-random operands
 */
KernelDesc makeConflictMicro(int variant, int instsPerWarp = 2048,
                             int numBlocks = 8);

} // namespace scsim

#endif // SCSIM_WORKLOADS_MICROBENCH_HH
