#include "power/cost_model.hh"

namespace scsim {

namespace {

// Calibration coefficients (normalized cost units).  With the Volta
// baseline sub-core (2 banks, 2 CUs, GTO) the total is exactly 1.0 for
// both area and power, and the Fig 13 anchors hold:
//   4 CUs:  area = 1 + 2*(kCuArea + 2*kXbarArea)  = 1.27
//   4 CUs:  power = 1 + 2*(kCuPower + 2*kXbarPower) = 1.60
//   RBA:    area/power = ~1.01
constexpr double kRfBitsArea = 0.550;     // 64 KB SRAM macro
constexpr double kRfBankPeriphArea = 0.035;  // per bank (decoders, IO)
constexpr double kSchedArea = 0.110;      // PC table + comparator tree
constexpr double kCuArea = 0.095;         // per CU (vector storage)
constexpr double kXbarArea = 0.020;       // per CU-port x bank crosspoint

constexpr double kRfBitsPower = 0.250;
constexpr double kRfBankPeriphPower = 0.025;  // per bank
constexpr double kSchedPower = 0.100;
constexpr double kCuPower = 0.220;        // per CU (reads/writes vectors)
constexpr double kXbarPower = 0.040;

// RBA additions, sized from the paper: 80 bits of score storage next
// to a ~1.6 kbit PC table, a 5-bit widening of the 15-comparator tree,
// and the per-bank queue-length adders.
constexpr double kRbaArea = 0.010;
constexpr double kRbaPower = 0.010;

} // namespace

int
CostModel::cuStorageBits()
{
    // 3 operands x 32 threads x 32 bits, plus ready/valid/regid tags.
    return 3 * 32 * 32 + 3 * 12;
}

int
CostModel::rbaScoreBits()
{
    return 16 * 5;
}

CostBreakdown
CostModel::breakdown(const GpuConfig &cfg)
{
    CostBreakdown b;
    double banks = static_cast<double>(cfg.banksPerCluster());
    double cus = static_cast<double>(cfg.cusPerCluster());
    bool rba = cfg.scheduler == SchedulerPolicy::RBA;

    b.rfArea = kRfBitsArea + kRfBankPeriphArea * banks;
    b.schedArea = kSchedArea;
    b.cuArea = kCuArea * cus;
    b.xbarArea = kXbarArea * cus * banks;
    b.rbaArea = rba ? kRbaArea : 0.0;

    b.rfPower = kRfBitsPower + kRfBankPeriphPower * banks;
    b.schedPower = kSchedPower;
    b.cuPower = kCuPower * cus;
    b.xbarPower = kXbarPower * cus * banks;
    b.rbaPower = rba ? kRbaPower : 0.0;
    return b;
}

CostEstimate
CostModel::subcore(const GpuConfig &cfg)
{
    CostBreakdown b = breakdown(cfg);
    return CostEstimate{ b.area(), b.power() };
}

} // namespace scsim
