/**
 * @file
 * Analytical area/energy model of one sub-core's issue stage:
 * register-file SRAM, warp scheduler (PC table + comparator network),
 * collector units, and the operand crossbar (Fig 13 substitute for
 * the paper's Cadence Genus + OpenRAM 45nm synthesis).
 *
 * Structure follows the paper's own cost narrative (Sec. VI-B2):
 *  - each CU stores 3 operands x 32 threads x 32 bits (vector
 *    storage dominates CU cost);
 *  - the operand crossbar scales with collector ports x banks;
 *  - RBA adds only 16 entries x 5 bits of score storage, a 5-bit
 *    widening of the comparator tree, and small adders.
 *
 * Coefficients are calibrated so the baseline (2 CUs, 2 banks, GTO)
 * is 1.0/1.0 and the paper's anchor points hold: 4 CUs => +27% area,
 * +60% power; RBA => ~+1% both.
 */

#ifndef SCSIM_POWER_COST_MODEL_HH
#define SCSIM_POWER_COST_MODEL_HH

#include "config/gpu_config.hh"

namespace scsim {

/** Per-component normalized costs of one sub-core's issue stage. */
struct CostBreakdown
{
    double rfArea = 0, schedArea = 0, cuArea = 0, xbarArea = 0,
           rbaArea = 0;
    double rfPower = 0, schedPower = 0, cuPower = 0, xbarPower = 0,
           rbaPower = 0;

    double
    area() const
    {
        return rfArea + schedArea + cuArea + xbarArea + rbaArea;
    }
    double
    power() const
    {
        return rfPower + schedPower + cuPower + xbarPower + rbaPower;
    }
};

struct CostEstimate
{
    double area = 0;    //!< normalized to the Volta baseline sub-core
    double power = 0;
};

class CostModel
{
  public:
    /** Cost of one sub-core configured per @p cfg. */
    static CostEstimate subcore(const GpuConfig &cfg);

    static CostBreakdown breakdown(const GpuConfig &cfg);

    // ---- structural parameters (bits), for documentation/tests ------
    /** Vector operand storage bits per collector unit. */
    static int cuStorageBits();
    /** RBA score storage bits per sub-core (16 entries x 5 bits). */
    static int rbaScoreBits();
};

} // namespace scsim

#endif // SCSIM_POWER_COST_MODEL_HH
