# Empty dependencies file for scsim_trace.
# This may be replaced when dependencies are built.
