file(REMOVE_RECURSE
  "libscsim_trace.a"
)
