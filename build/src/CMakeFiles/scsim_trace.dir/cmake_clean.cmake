file(REMOVE_RECURSE
  "CMakeFiles/scsim_trace.dir/trace/kernel.cc.o"
  "CMakeFiles/scsim_trace.dir/trace/kernel.cc.o.d"
  "CMakeFiles/scsim_trace.dir/trace/reg_realloc.cc.o"
  "CMakeFiles/scsim_trace.dir/trace/reg_realloc.cc.o.d"
  "CMakeFiles/scsim_trace.dir/trace/trace_io.cc.o"
  "CMakeFiles/scsim_trace.dir/trace/trace_io.cc.o.d"
  "libscsim_trace.a"
  "libscsim_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scsim_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
