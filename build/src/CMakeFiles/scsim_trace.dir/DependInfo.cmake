
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/kernel.cc" "src/CMakeFiles/scsim_trace.dir/trace/kernel.cc.o" "gcc" "src/CMakeFiles/scsim_trace.dir/trace/kernel.cc.o.d"
  "/root/repo/src/trace/reg_realloc.cc" "src/CMakeFiles/scsim_trace.dir/trace/reg_realloc.cc.o" "gcc" "src/CMakeFiles/scsim_trace.dir/trace/reg_realloc.cc.o.d"
  "/root/repo/src/trace/trace_io.cc" "src/CMakeFiles/scsim_trace.dir/trace/trace_io.cc.o" "gcc" "src/CMakeFiles/scsim_trace.dir/trace/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/scsim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
