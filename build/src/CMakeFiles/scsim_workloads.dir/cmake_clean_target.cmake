file(REMOVE_RECURSE
  "libscsim_workloads.a"
)
