# Empty dependencies file for scsim_workloads.
# This may be replaced when dependencies are built.
