file(REMOVE_RECURSE
  "CMakeFiles/scsim_workloads.dir/workloads/calibration.cc.o"
  "CMakeFiles/scsim_workloads.dir/workloads/calibration.cc.o.d"
  "CMakeFiles/scsim_workloads.dir/workloads/microbench.cc.o"
  "CMakeFiles/scsim_workloads.dir/workloads/microbench.cc.o.d"
  "CMakeFiles/scsim_workloads.dir/workloads/suite.cc.o"
  "CMakeFiles/scsim_workloads.dir/workloads/suite.cc.o.d"
  "libscsim_workloads.a"
  "libscsim_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scsim_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
