# Empty dependencies file for scsim_mem.
# This may be replaced when dependencies are built.
