file(REMOVE_RECURSE
  "CMakeFiles/scsim_mem.dir/mem/cache.cc.o"
  "CMakeFiles/scsim_mem.dir/mem/cache.cc.o.d"
  "CMakeFiles/scsim_mem.dir/mem/mem_system.cc.o"
  "CMakeFiles/scsim_mem.dir/mem/mem_system.cc.o.d"
  "libscsim_mem.a"
  "libscsim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scsim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
