file(REMOVE_RECURSE
  "libscsim_mem.a"
)
