file(REMOVE_RECURSE
  "CMakeFiles/scsim_common.dir/common/logging.cc.o"
  "CMakeFiles/scsim_common.dir/common/logging.cc.o.d"
  "CMakeFiles/scsim_common.dir/common/rng.cc.o"
  "CMakeFiles/scsim_common.dir/common/rng.cc.o.d"
  "libscsim_common.a"
  "libscsim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scsim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
