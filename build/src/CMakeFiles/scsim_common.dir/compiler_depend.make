# Empty compiler generated dependencies file for scsim_common.
# This may be replaced when dependencies are built.
