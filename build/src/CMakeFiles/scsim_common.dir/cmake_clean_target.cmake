file(REMOVE_RECURSE
  "libscsim_common.a"
)
