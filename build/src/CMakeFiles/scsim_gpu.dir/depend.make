# Empty dependencies file for scsim_gpu.
# This may be replaced when dependencies are built.
