file(REMOVE_RECURSE
  "CMakeFiles/scsim_gpu.dir/gpu/block_scheduler.cc.o"
  "CMakeFiles/scsim_gpu.dir/gpu/block_scheduler.cc.o.d"
  "CMakeFiles/scsim_gpu.dir/gpu/gpu_sim.cc.o"
  "CMakeFiles/scsim_gpu.dir/gpu/gpu_sim.cc.o.d"
  "libscsim_gpu.a"
  "libscsim_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scsim_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
