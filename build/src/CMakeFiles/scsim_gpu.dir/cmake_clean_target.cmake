file(REMOVE_RECURSE
  "libscsim_gpu.a"
)
