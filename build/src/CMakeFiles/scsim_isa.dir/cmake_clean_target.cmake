file(REMOVE_RECURSE
  "libscsim_isa.a"
)
