# Empty dependencies file for scsim_isa.
# This may be replaced when dependencies are built.
