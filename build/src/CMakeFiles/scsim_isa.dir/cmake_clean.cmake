file(REMOVE_RECURSE
  "CMakeFiles/scsim_isa.dir/isa/instruction.cc.o"
  "CMakeFiles/scsim_isa.dir/isa/instruction.cc.o.d"
  "libscsim_isa.a"
  "libscsim_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scsim_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
