
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/assign.cc" "src/CMakeFiles/scsim_core.dir/core/assign.cc.o" "gcc" "src/CMakeFiles/scsim_core.dir/core/assign.cc.o.d"
  "/root/repo/src/core/exec_unit.cc" "src/CMakeFiles/scsim_core.dir/core/exec_unit.cc.o" "gcc" "src/CMakeFiles/scsim_core.dir/core/exec_unit.cc.o.d"
  "/root/repo/src/core/issue_cluster.cc" "src/CMakeFiles/scsim_core.dir/core/issue_cluster.cc.o" "gcc" "src/CMakeFiles/scsim_core.dir/core/issue_cluster.cc.o.d"
  "/root/repo/src/core/operand_collector.cc" "src/CMakeFiles/scsim_core.dir/core/operand_collector.cc.o" "gcc" "src/CMakeFiles/scsim_core.dir/core/operand_collector.cc.o.d"
  "/root/repo/src/core/reg_file.cc" "src/CMakeFiles/scsim_core.dir/core/reg_file.cc.o" "gcc" "src/CMakeFiles/scsim_core.dir/core/reg_file.cc.o.d"
  "/root/repo/src/core/scheduler.cc" "src/CMakeFiles/scsim_core.dir/core/scheduler.cc.o" "gcc" "src/CMakeFiles/scsim_core.dir/core/scheduler.cc.o.d"
  "/root/repo/src/core/scoreboard.cc" "src/CMakeFiles/scsim_core.dir/core/scoreboard.cc.o" "gcc" "src/CMakeFiles/scsim_core.dir/core/scoreboard.cc.o.d"
  "/root/repo/src/core/sm_core.cc" "src/CMakeFiles/scsim_core.dir/core/sm_core.cc.o" "gcc" "src/CMakeFiles/scsim_core.dir/core/sm_core.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/scsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scsim_config.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scsim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
