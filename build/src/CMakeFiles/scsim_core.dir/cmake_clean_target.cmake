file(REMOVE_RECURSE
  "libscsim_core.a"
)
