# Empty dependencies file for scsim_core.
# This may be replaced when dependencies are built.
