file(REMOVE_RECURSE
  "CMakeFiles/scsim_core.dir/core/assign.cc.o"
  "CMakeFiles/scsim_core.dir/core/assign.cc.o.d"
  "CMakeFiles/scsim_core.dir/core/exec_unit.cc.o"
  "CMakeFiles/scsim_core.dir/core/exec_unit.cc.o.d"
  "CMakeFiles/scsim_core.dir/core/issue_cluster.cc.o"
  "CMakeFiles/scsim_core.dir/core/issue_cluster.cc.o.d"
  "CMakeFiles/scsim_core.dir/core/operand_collector.cc.o"
  "CMakeFiles/scsim_core.dir/core/operand_collector.cc.o.d"
  "CMakeFiles/scsim_core.dir/core/reg_file.cc.o"
  "CMakeFiles/scsim_core.dir/core/reg_file.cc.o.d"
  "CMakeFiles/scsim_core.dir/core/scheduler.cc.o"
  "CMakeFiles/scsim_core.dir/core/scheduler.cc.o.d"
  "CMakeFiles/scsim_core.dir/core/scoreboard.cc.o"
  "CMakeFiles/scsim_core.dir/core/scoreboard.cc.o.d"
  "CMakeFiles/scsim_core.dir/core/sm_core.cc.o"
  "CMakeFiles/scsim_core.dir/core/sm_core.cc.o.d"
  "libscsim_core.a"
  "libscsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
