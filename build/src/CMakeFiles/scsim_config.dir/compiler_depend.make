# Empty compiler generated dependencies file for scsim_config.
# This may be replaced when dependencies are built.
