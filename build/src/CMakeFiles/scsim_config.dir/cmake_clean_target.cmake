file(REMOVE_RECURSE
  "libscsim_config.a"
)
