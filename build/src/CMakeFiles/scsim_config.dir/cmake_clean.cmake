file(REMOVE_RECURSE
  "CMakeFiles/scsim_config.dir/config/gpu_config.cc.o"
  "CMakeFiles/scsim_config.dir/config/gpu_config.cc.o.d"
  "libscsim_config.a"
  "libscsim_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scsim_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
