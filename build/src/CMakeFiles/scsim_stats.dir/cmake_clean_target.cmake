file(REMOVE_RECURSE
  "libscsim_stats.a"
)
