file(REMOVE_RECURSE
  "CMakeFiles/scsim_stats.dir/stats/stats.cc.o"
  "CMakeFiles/scsim_stats.dir/stats/stats.cc.o.d"
  "libscsim_stats.a"
  "libscsim_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scsim_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
