# Empty compiler generated dependencies file for scsim_stats.
# This may be replaced when dependencies are built.
