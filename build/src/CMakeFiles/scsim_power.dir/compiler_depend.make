# Empty compiler generated dependencies file for scsim_power.
# This may be replaced when dependencies are built.
