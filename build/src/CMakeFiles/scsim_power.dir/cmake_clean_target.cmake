file(REMOVE_RECURSE
  "libscsim_power.a"
)
