file(REMOVE_RECURSE
  "CMakeFiles/scsim_power.dir/power/cost_model.cc.o"
  "CMakeFiles/scsim_power.dir/power/cost_model.cc.o.d"
  "libscsim_power.a"
  "libscsim_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scsim_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
