# Empty dependencies file for warp_specialization.
# This may be replaced when dependencies are built.
