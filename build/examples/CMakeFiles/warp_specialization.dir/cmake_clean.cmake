file(REMOVE_RECURSE
  "CMakeFiles/warp_specialization.dir/warp_specialization.cpp.o"
  "CMakeFiles/warp_specialization.dir/warp_specialization.cpp.o.d"
  "warp_specialization"
  "warp_specialization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warp_specialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
