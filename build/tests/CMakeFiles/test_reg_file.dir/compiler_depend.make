# Empty compiler generated dependencies file for test_reg_file.
# This may be replaced when dependencies are built.
