file(REMOVE_RECURSE
  "CMakeFiles/test_reg_file.dir/test_reg_file.cc.o"
  "CMakeFiles/test_reg_file.dir/test_reg_file.cc.o.d"
  "test_reg_file"
  "test_reg_file.pdb"
  "test_reg_file[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reg_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
