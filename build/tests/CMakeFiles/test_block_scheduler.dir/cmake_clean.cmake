file(REMOVE_RECURSE
  "CMakeFiles/test_block_scheduler.dir/test_block_scheduler.cc.o"
  "CMakeFiles/test_block_scheduler.dir/test_block_scheduler.cc.o.d"
  "test_block_scheduler"
  "test_block_scheduler.pdb"
  "test_block_scheduler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_block_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
