# Empty dependencies file for test_block_scheduler.
# This may be replaced when dependencies are built.
