# Empty dependencies file for test_scoreboard.
# This may be replaced when dependencies are built.
