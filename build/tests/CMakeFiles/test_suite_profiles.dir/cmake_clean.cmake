file(REMOVE_RECURSE
  "CMakeFiles/test_suite_profiles.dir/test_suite_profiles.cc.o"
  "CMakeFiles/test_suite_profiles.dir/test_suite_profiles.cc.o.d"
  "test_suite_profiles"
  "test_suite_profiles.pdb"
  "test_suite_profiles[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_suite_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
