# Empty dependencies file for test_suite_profiles.
# This may be replaced when dependencies are built.
