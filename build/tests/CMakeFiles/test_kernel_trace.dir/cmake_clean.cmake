file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_trace.dir/test_kernel_trace.cc.o"
  "CMakeFiles/test_kernel_trace.dir/test_kernel_trace.cc.o.d"
  "test_kernel_trace"
  "test_kernel_trace.pdb"
  "test_kernel_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
