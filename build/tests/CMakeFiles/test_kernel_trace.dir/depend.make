# Empty dependencies file for test_kernel_trace.
# This may be replaced when dependencies are built.
