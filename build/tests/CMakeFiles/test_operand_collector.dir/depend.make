# Empty dependencies file for test_operand_collector.
# This may be replaced when dependencies are built.
