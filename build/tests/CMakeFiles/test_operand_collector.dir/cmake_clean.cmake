file(REMOVE_RECURSE
  "CMakeFiles/test_operand_collector.dir/test_operand_collector.cc.o"
  "CMakeFiles/test_operand_collector.dir/test_operand_collector.cc.o.d"
  "test_operand_collector"
  "test_operand_collector.pdb"
  "test_operand_collector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_operand_collector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
