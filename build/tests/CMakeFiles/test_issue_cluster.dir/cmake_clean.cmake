file(REMOVE_RECURSE
  "CMakeFiles/test_issue_cluster.dir/test_issue_cluster.cc.o"
  "CMakeFiles/test_issue_cluster.dir/test_issue_cluster.cc.o.d"
  "test_issue_cluster"
  "test_issue_cluster.pdb"
  "test_issue_cluster[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_issue_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
