file(REMOVE_RECURSE
  "CMakeFiles/test_reg_realloc.dir/test_reg_realloc.cc.o"
  "CMakeFiles/test_reg_realloc.dir/test_reg_realloc.cc.o.d"
  "test_reg_realloc"
  "test_reg_realloc.pdb"
  "test_reg_realloc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reg_realloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
