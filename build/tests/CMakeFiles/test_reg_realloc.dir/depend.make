# Empty dependencies file for test_reg_realloc.
# This may be replaced when dependencies are built.
