# Empty dependencies file for test_exec_unit.
# This may be replaced when dependencies are built.
