file(REMOVE_RECURSE
  "CMakeFiles/test_exec_unit.dir/test_exec_unit.cc.o"
  "CMakeFiles/test_exec_unit.dir/test_exec_unit.cc.o.d"
  "test_exec_unit"
  "test_exec_unit.pdb"
  "test_exec_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exec_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
