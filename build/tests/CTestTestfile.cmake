# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_config[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_kernel_trace[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_scoreboard[1]_include.cmake")
include("/root/repo/build/tests/test_reg_file[1]_include.cmake")
include("/root/repo/build/tests/test_operand_collector[1]_include.cmake")
include("/root/repo/build/tests/test_scheduler[1]_include.cmake")
include("/root/repo/build/tests/test_assign[1]_include.cmake")
include("/root/repo/build/tests/test_exec_unit[1]_include.cmake")
include("/root/repo/build/tests/test_sm_core[1]_include.cmake")
include("/root/repo/build/tests/test_gpu_sim[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_calibration[1]_include.cmake")
include("/root/repo/build/tests/test_integration_paper[1]_include.cmake")
include("/root/repo/build/tests/test_concurrent[1]_include.cmake")
include("/root/repo/build/tests/test_block_scheduler[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_reg_realloc[1]_include.cmake")
include("/root/repo/build/tests/test_issue_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_suite_profiles[1]_include.cmake")
