# Empty dependencies file for scsim_cli.
# This may be replaced when dependencies are built.
