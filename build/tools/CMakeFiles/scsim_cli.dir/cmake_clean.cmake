file(REMOVE_RECURSE
  "CMakeFiles/scsim_cli.dir/scsim_cli.cc.o"
  "CMakeFiles/scsim_cli.dir/scsim_cli.cc.o.d"
  "scsim_cli"
  "scsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
