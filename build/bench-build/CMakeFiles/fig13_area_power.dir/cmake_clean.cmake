file(REMOVE_RECURSE
  "../bench/fig13_area_power"
  "../bench/fig13_area_power.pdb"
  "CMakeFiles/fig13_area_power.dir/fig13_area_power.cc.o"
  "CMakeFiles/fig13_area_power.dir/fig13_area_power.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_area_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
