file(REMOVE_RECURSE
  "../bench/perf_simulator"
  "../bench/perf_simulator.pdb"
  "CMakeFiles/perf_simulator.dir/perf_simulator.cc.o"
  "CMakeFiles/perf_simulator.dir/perf_simulator.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
