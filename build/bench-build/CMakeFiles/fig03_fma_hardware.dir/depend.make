# Empty dependencies file for fig03_fma_hardware.
# This may be replaced when dependencies are built.
