file(REMOVE_RECURSE
  "../bench/fig03_fma_hardware"
  "../bench/fig03_fma_hardware.pdb"
  "CMakeFiles/fig03_fma_hardware.dir/fig03_fma_hardware.cc.o"
  "CMakeFiles/fig03_fma_hardware.dir/fig03_fma_hardware.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_fma_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
