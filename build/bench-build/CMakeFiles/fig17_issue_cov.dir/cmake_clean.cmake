file(REMOVE_RECURSE
  "../bench/fig17_issue_cov"
  "../bench/fig17_issue_cov.pdb"
  "CMakeFiles/fig17_issue_cov.dir/fig17_issue_cov.cc.o"
  "CMakeFiles/fig17_issue_cov.dir/fig17_issue_cov.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_issue_cov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
