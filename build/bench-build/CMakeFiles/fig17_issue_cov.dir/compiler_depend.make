# Empty compiler generated dependencies file for fig17_issue_cov.
# This may be replaced when dependencies are built.
