# Empty compiler generated dependencies file for fig11_rba_fully_connected.
# This may be replaced when dependencies are built.
