file(REMOVE_RECURSE
  "../bench/fig11_rba_fully_connected"
  "../bench/fig11_rba_fully_connected.pdb"
  "CMakeFiles/fig11_rba_fully_connected.dir/fig11_rba_fully_connected.cc.o"
  "CMakeFiles/fig11_rba_fully_connected.dir/fig11_rba_fully_connected.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_rba_fully_connected.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
