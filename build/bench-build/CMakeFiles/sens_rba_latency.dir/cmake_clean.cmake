file(REMOVE_RECURSE
  "../bench/sens_rba_latency"
  "../bench/sens_rba_latency.pdb"
  "CMakeFiles/sens_rba_latency.dir/sens_rba_latency.cc.o"
  "CMakeFiles/sens_rba_latency.dir/sens_rba_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sens_rba_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
