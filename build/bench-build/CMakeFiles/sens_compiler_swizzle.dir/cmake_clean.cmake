file(REMOVE_RECURSE
  "../bench/sens_compiler_swizzle"
  "../bench/sens_compiler_swizzle.pdb"
  "CMakeFiles/sens_compiler_swizzle.dir/sens_compiler_swizzle.cc.o"
  "CMakeFiles/sens_compiler_swizzle.dir/sens_compiler_swizzle.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sens_compiler_swizzle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
