# Empty compiler generated dependencies file for sens_compiler_swizzle.
# This may be replaced when dependencies are built.
