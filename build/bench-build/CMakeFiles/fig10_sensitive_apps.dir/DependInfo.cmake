
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig10_sensitive_apps.cc" "bench-build/CMakeFiles/fig10_sensitive_apps.dir/fig10_sensitive_apps.cc.o" "gcc" "bench-build/CMakeFiles/fig10_sensitive_apps.dir/fig10_sensitive_apps.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/scsim_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scsim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scsim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scsim_power.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scsim_config.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
