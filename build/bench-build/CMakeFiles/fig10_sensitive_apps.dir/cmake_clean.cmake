file(REMOVE_RECURSE
  "../bench/fig10_sensitive_apps"
  "../bench/fig10_sensitive_apps.pdb"
  "CMakeFiles/fig10_sensitive_apps.dir/fig10_sensitive_apps.cc.o"
  "CMakeFiles/fig10_sensitive_apps.dir/fig10_sensitive_apps.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_sensitive_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
