# Empty dependencies file for fig10_sensitive_apps.
# This may be replaced when dependencies are built.
