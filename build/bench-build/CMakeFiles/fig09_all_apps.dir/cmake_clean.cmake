file(REMOVE_RECURSE
  "../bench/fig09_all_apps"
  "../bench/fig09_all_apps.pdb"
  "CMakeFiles/fig09_all_apps.dir/fig09_all_apps.cc.o"
  "CMakeFiles/fig09_all_apps.dir/fig09_all_apps.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_all_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
