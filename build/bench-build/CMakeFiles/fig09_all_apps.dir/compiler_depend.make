# Empty compiler generated dependencies file for fig09_all_apps.
# This may be replaced when dependencies are built.
