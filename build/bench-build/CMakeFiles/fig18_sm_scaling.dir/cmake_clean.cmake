file(REMOVE_RECURSE
  "../bench/fig18_sm_scaling"
  "../bench/fig18_sm_scaling.pdb"
  "CMakeFiles/fig18_sm_scaling.dir/fig18_sm_scaling.cc.o"
  "CMakeFiles/fig18_sm_scaling.dir/fig18_sm_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_sm_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
