# Empty compiler generated dependencies file for fig18_sm_scaling.
# This may be replaced when dependencies are built.
