file(REMOVE_RECURSE
  "../bench/sens_rba_banks"
  "../bench/sens_rba_banks.pdb"
  "CMakeFiles/sens_rba_banks.dir/sens_rba_banks.cc.o"
  "CMakeFiles/sens_rba_banks.dir/sens_rba_banks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sens_rba_banks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
