# Empty compiler generated dependencies file for sens_rba_banks.
# This may be replaced when dependencies are built.
