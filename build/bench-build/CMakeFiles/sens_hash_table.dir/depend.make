# Empty dependencies file for sens_hash_table.
# This may be replaced when dependencies are built.
