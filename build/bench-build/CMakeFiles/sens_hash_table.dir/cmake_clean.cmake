file(REMOVE_RECURSE
  "../bench/sens_hash_table"
  "../bench/sens_hash_table.pdb"
  "CMakeFiles/sens_hash_table.dir/sens_hash_table.cc.o"
  "CMakeFiles/sens_hash_table.dir/sens_hash_table.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sens_hash_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
