file(REMOVE_RECURSE
  "../bench/tab_cu_validation"
  "../bench/tab_cu_validation.pdb"
  "CMakeFiles/tab_cu_validation.dir/tab_cu_validation.cc.o"
  "CMakeFiles/tab_cu_validation.dir/tab_cu_validation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_cu_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
