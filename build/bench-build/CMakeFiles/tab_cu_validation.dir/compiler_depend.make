# Empty compiler generated dependencies file for tab_cu_validation.
# This may be replaced when dependencies are built.
