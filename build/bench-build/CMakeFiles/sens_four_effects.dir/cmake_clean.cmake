file(REMOVE_RECURSE
  "../bench/sens_four_effects"
  "../bench/sens_four_effects.pdb"
  "CMakeFiles/sens_four_effects.dir/sens_four_effects.cc.o"
  "CMakeFiles/sens_four_effects.dir/sens_four_effects.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sens_four_effects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
