# Empty compiler generated dependencies file for sens_four_effects.
# This may be replaced when dependencies are built.
