file(REMOVE_RECURSE
  "../bench/fig14_rf_timeseries"
  "../bench/fig14_rf_timeseries.pdb"
  "CMakeFiles/fig14_rf_timeseries.dir/fig14_rf_timeseries.cc.o"
  "CMakeFiles/fig14_rf_timeseries.dir/fig14_rf_timeseries.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_rf_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
