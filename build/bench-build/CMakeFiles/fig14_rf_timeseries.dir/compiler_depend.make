# Empty compiler generated dependencies file for fig14_rf_timeseries.
# This may be replaced when dependencies are built.
