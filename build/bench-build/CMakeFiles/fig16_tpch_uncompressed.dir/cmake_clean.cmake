file(REMOVE_RECURSE
  "../bench/fig16_tpch_uncompressed"
  "../bench/fig16_tpch_uncompressed.pdb"
  "CMakeFiles/fig16_tpch_uncompressed.dir/fig16_tpch_uncompressed.cc.o"
  "CMakeFiles/fig16_tpch_uncompressed.dir/fig16_tpch_uncompressed.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_tpch_uncompressed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
