# Empty compiler generated dependencies file for fig16_tpch_uncompressed.
# This may be replaced when dependencies are built.
