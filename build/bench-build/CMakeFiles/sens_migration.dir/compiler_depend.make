# Empty compiler generated dependencies file for sens_migration.
# This may be replaced when dependencies are built.
