# Empty dependencies file for sens_migration.
# This may be replaced when dependencies are built.
