file(REMOVE_RECURSE
  "../bench/sens_migration"
  "../bench/sens_migration.pdb"
  "CMakeFiles/sens_migration.dir/sens_migration.cc.o"
  "CMakeFiles/sens_migration.dir/sens_migration.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sens_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
