# Empty dependencies file for fig08_imbalance_scaling.
# This may be replaced when dependencies are built.
