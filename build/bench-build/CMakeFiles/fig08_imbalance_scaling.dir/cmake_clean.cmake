file(REMOVE_RECURSE
  "../bench/fig08_imbalance_scaling"
  "../bench/fig08_imbalance_scaling.pdb"
  "CMakeFiles/fig08_imbalance_scaling.dir/fig08_imbalance_scaling.cc.o"
  "CMakeFiles/fig08_imbalance_scaling.dir/fig08_imbalance_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_imbalance_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
