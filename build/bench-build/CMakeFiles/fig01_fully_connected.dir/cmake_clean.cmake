file(REMOVE_RECURSE
  "../bench/fig01_fully_connected"
  "../bench/fig01_fully_connected.pdb"
  "CMakeFiles/fig01_fully_connected.dir/fig01_fully_connected.cc.o"
  "CMakeFiles/fig01_fully_connected.dir/fig01_fully_connected.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_fully_connected.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
