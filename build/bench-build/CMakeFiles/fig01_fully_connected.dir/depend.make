# Empty dependencies file for fig01_fully_connected.
# This may be replaced when dependencies are built.
