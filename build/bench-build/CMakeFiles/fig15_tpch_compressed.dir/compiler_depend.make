# Empty compiler generated dependencies file for fig15_tpch_compressed.
# This may be replaced when dependencies are built.
