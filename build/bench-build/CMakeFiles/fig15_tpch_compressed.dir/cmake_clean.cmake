file(REMOVE_RECURSE
  "../bench/fig15_tpch_compressed"
  "../bench/fig15_tpch_compressed.pdb"
  "CMakeFiles/fig15_tpch_compressed.dir/fig15_tpch_compressed.cc.o"
  "CMakeFiles/fig15_tpch_compressed.dir/fig15_tpch_compressed.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_tpch_compressed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
