/**
 * @file
 * Quickstart: build a small kernel by hand, run it on the Volta model,
 * and read the statistics.
 *
 *   ./examples/quickstart
 *
 * The kernel is a block of 8 warps; each warp runs a short
 * multiply-accumulate loop over values streamed from global memory,
 * then synchronizes at the block barrier and exits.
 */

#include <cstdio>

#include "gpu/gpu_sim.hh"

using namespace scsim;

namespace {

KernelDesc
makeSaxpyLikeKernel()
{
    // One shape shared by all warps: LDG x -> FMA acc += a*x -> STG.
    WarpProgram prog;
    MemInfo vec;
    vec.region = 0;
    vec.sectors = 4;               // fully coalesced 128B access
    vec.strideBytes = 128;
    vec.stepBytes = 128;
    vec.footprintBytes = 8ull << 20;

    for (int i = 0; i < 64; ++i) {
        // r0: accumulator, r1: loaded value, r2: scale, r3: address.
        prog.code.push_back(Instruction::load(Opcode::LDG, 1, 3, vec));
        prog.code.push_back(Instruction::alu(Opcode::FMA, 0, 0, 1, 2));
        prog.code.push_back(Instruction::alu(Opcode::IADD, 3, 3));
    }
    prog.code.push_back(Instruction::store(Opcode::STG, 3, 0, vec));
    prog.code.push_back(Instruction::barrier());
    prog.code.push_back(Instruction::exit());

    KernelDesc k;
    k.name = "saxpy-like";
    k.numBlocks = 64;
    k.warpsPerBlock = 8;
    k.regsPerThread = 16;
    k.shapes.push_back(std::move(prog));
    k.shapeOfWarp.assign(8, 0);
    k.validate();
    return k;
}

} // namespace

int
main()
{
    // Table II Volta configuration, scaled to 4 SMs for a quick run.
    GpuConfig cfg = GpuConfig::volta();
    cfg.numSms = 4;

    GpuSim sim(cfg);
    KernelDesc kernel = makeSaxpyLikeKernel();
    SimStats stats = sim.run(kernel);

    std::printf("kernel           : %s\n", kernel.name.c_str());
    std::printf("blocks x warps   : %d x %d\n", kernel.numBlocks,
                kernel.warpsPerBlock);
    std::printf("cycles           : %llu\n",
                static_cast<unsigned long long>(stats.cycles));
    std::printf("warp instructions: %llu  (IPC %.2f)\n",
                static_cast<unsigned long long>(stats.instructions),
                stats.ipc());
    std::printf("RF reads/writes  : %llu / %llu\n",
                static_cast<unsigned long long>(stats.rfReads),
                static_cast<unsigned long long>(stats.rfWrites));
    std::printf("bank conflicts   : %llu conflict-cycles\n",
                static_cast<unsigned long long>(
                    stats.rfBankConflictCycles));
    std::printf("L1 hit rate      : %.1f%%\n",
                100.0 * (1.0 - static_cast<double>(stats.l1Misses)
                                   / static_cast<double>(
                                         stats.l1Accesses)));
    std::printf("per-sub-core issue CoV: %.3f\n", stats.issueCov());

    // Re-run with the paper's combined design: Shuffle + RBA.
    cfg.scheduler = SchedulerPolicy::RBA;
    cfg.assign = AssignPolicy::Shuffle;
    GpuSim designSim(cfg);
    SimStats design = designSim.run(kernel);
    std::printf("\nShuffle+RBA speedup: %.3fx\n",
                static_cast<double>(stats.cycles)
                    / static_cast<double>(design.cycles));
    return 0;
}
