/**
 * @file
 * Warp-specialized programming and sub-core imbalance.
 *
 * Builds a producer/consumer kernel in the style of warp-specialized
 * libraries (one "leader" warp per group of four does the heavy
 * decompression-like work, the others do light bookkeeping), then
 * shows how the static warp -> sub-core binding turns that imbalance
 * into whole-sub-core idling, and how SRR / Shuffle assignment fix it.
 *
 *   ./examples/warp_specialization [work_ratio]
 */

#include <cstdio>
#include <cstdlib>

#include "gpu/gpu_sim.hh"

using namespace scsim;

namespace {

WarpProgram
workerShape(int insts)
{
    WarpProgram p;
    for (int i = 0; i < insts; ++i) {
        // Integer-dominated decompression-like inner loop.
        RegIndex acc = static_cast<RegIndex>(i % 4);
        if (i % 5 == 0)
            p.code.push_back(Instruction::alu(Opcode::IMAD, acc, acc,
                                              4, 5));
        else
            p.code.push_back(Instruction::alu(Opcode::IADD, acc, acc,
                                              6));
    }
    p.code.push_back(Instruction::barrier());
    p.code.push_back(Instruction::exit());
    return p;
}

KernelDesc
warpSpecializedKernel(double ratio)
{
    KernelDesc k;
    k.name = "warp-specialized";
    k.numBlocks = 48;
    k.warpsPerBlock = 16;
    k.regsPerThread = 16;
    k.smemBytesPerBlock = 16 * 1024;   // staging buffers
    k.shapes.push_back(workerShape(
        static_cast<int>(300 * ratio)));          // leader
    k.shapes.push_back(workerShape(300));         // follower
    for (int w = 0; w < 16; ++w)
        k.shapeOfWarp.push_back(w % 4 == 0 ? 0 : 1);
    k.validate();
    return k;
}

} // namespace

int
main(int argc, char **argv)
{
    double ratio = argc > 1 ? std::atof(argv[1]) : 8.0;
    KernelDesc kernel = warpSpecializedKernel(ratio);

    std::printf("Warp-specialized kernel: leader warp does %.0fx the "
                "work of followers (every 4th warp)\n\n", ratio);
    std::printf("%-12s %10s %10s %14s\n", "assignment", "cycles",
                "speedup", "issue CoV");

    Cycle base = 0;
    for (AssignPolicy p : { AssignPolicy::RoundRobin, AssignPolicy::SRR,
                            AssignPolicy::Shuffle,
                            AssignPolicy::HashShuffle }) {
        GpuConfig cfg = GpuConfig::volta();
        cfg.numSms = 4;
        cfg.assign = p;
        SimStats s = simulate(cfg, kernel);
        if (p == AssignPolicy::RoundRobin)
            base = s.cycles;
        std::printf("%-12s %10llu %9.3fx %14.3f\n", toString(p),
                    static_cast<unsigned long long>(s.cycles),
                    static_cast<double>(base)
                        / static_cast<double>(s.cycles),
                    s.issueCov());
    }

    std::printf("\nWhy round robin fails here: warp w of each block "
                "lands on sub-core w %% 4,\nso every leader warp piles "
                "onto sub-core 0 while sub-cores 1-3 wait at the\n"
                "block barrier with nothing to issue.  SRR's skewed "
                "pattern rotates the\nleaders across sub-cores; "
                "Shuffle randomizes them.\n");
    return 0;
}
