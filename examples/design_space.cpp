/**
 * @file
 * Design-space exploration: sweep the partitioning axis (sub-cores per
 * SM), the collector-unit count, and the scheduling/assignment designs
 * over one application, reporting performance next to issue-stage
 * area/power from the cost model.  Demonstrates config files and the
 * trace round-trip as well.
 *
 *   ./examples/design_space [app-name] [scale]
 */

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "gpu/gpu_sim.hh"
#include "power/cost_model.hh"
#include "trace/trace_io.hh"
#include "workloads/suite.hh"

using namespace scsim;

int
main(int argc, char **argv)
{
    const char *name = argc > 1 ? argv[1] : "rod-srad";
    double scale = argc > 2 ? std::atof(argv[2]) : 0.25;

    Application app = buildApp(findApp(name, scale));
    std::printf("application: %s (%llu warp instructions)\n\n",
                app.name.c_str(),
                static_cast<unsigned long long>(
                    app.totalWarpInstructions()));

    // The trace round-trips through the text format losslessly.
    {
        std::stringstream ss;
        writeApplication(ss, app);
        Application back = readApplication(ss);
        std::printf("trace round-trip: %zu kernels, %llu instructions "
                    "preserved\n\n", back.kernels.size(),
                    static_cast<unsigned long long>(
                        back.totalWarpInstructions()));
    }

    std::printf("--- partitioning sweep (GTO + RR) ---\n");
    std::printf("%-10s %10s %8s %7s %7s\n", "sub-cores", "cycles",
                "speedup", "area", "power");
    Cycle fourSub = 0;
    for (int subCores : { 4, 2, 1 }) {
        GpuConfig cfg = GpuConfig::volta();
        cfg.numSms = 4;
        cfg.subCores = subCores;
        SimStats s = simulate(cfg, app);
        if (subCores == 4)
            fourSub = s.cycles;
        CostEstimate cost = CostModel::subcore(cfg);
        std::printf("%-10d %10llu %7.3fx %7.2f %7.2f\n", subCores,
                    static_cast<unsigned long long>(s.cycles),
                    static_cast<double>(fourSub)
                        / static_cast<double>(s.cycles),
                    cost.area, cost.power);
    }

    std::printf("\n--- design sweep on the 4-sub-core SM ---\n");
    std::printf("%-22s %10s %8s\n", "design", "cycles", "speedup");
    struct Design { const char *name; const char *key;
                    const char *value; };
    const Design designs[] = {
        { "GTO + RR (baseline)", "scheduler", "GTO" },
        { "RBA", "scheduler", "RBA" },
        { "SRR assignment", "assign", "SRR" },
        { "Shuffle assignment", "assign", "Shuffle" },
        { "Hashed shuffle (HW)", "assign", "HashShuffle" },
    };
    for (const Design &d : designs) {
        GpuConfig cfg = GpuConfig::volta();
        cfg.numSms = 4;
        cfg.set(d.key, d.value);   // the key=value config interface
        SimStats s = simulate(cfg, app);
        std::printf("%-22s %10llu %7.3fx\n", d.name,
                    static_cast<unsigned long long>(s.cycles),
                    static_cast<double>(fourSub)
                        / static_cast<double>(s.cycles));
    }

    std::printf("\n--- collector-unit sweep (perf per issue-stage "
                "area) ---\n");
    std::printf("%-8s %10s %8s %7s %12s\n", "CUs", "cycles", "speedup",
                "area", "perf/area");
    for (int cus : { 1, 2, 4, 8 }) {
        GpuConfig cfg = GpuConfig::volta();
        cfg.numSms = 4;
        cfg.collectorUnitsPerSm = cus * cfg.subCores;
        SimStats s = simulate(cfg, app);
        double speedup = static_cast<double>(fourSub)
            / static_cast<double>(s.cycles);
        double area = CostModel::subcore(cfg).area;
        std::printf("%-8d %10llu %7.3fx %7.2f %12.3f\n", cus,
                    static_cast<unsigned long long>(s.cycles),
                    speedup, area, speedup / area);
    }
    return 0;
}
