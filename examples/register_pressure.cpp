/**
 * @file
 * Register bank conflicts and the RBA scheduler.
 *
 * Builds a compute kernel whose instruction stream goes through
 * compiler-like "phases" of bank-skewed operands — the pattern that
 * saturates one of the sub-core's two register banks — and compares
 * the GTO baseline against RBA, collector-unit scaling, and the
 * fully-connected SM.
 *
 *   ./examples/register_pressure
 */

#include <cstdio>

#include "gpu/gpu_sim.hh"
#include "power/cost_model.hh"
#include "workloads/suite.hh"

using namespace scsim;

int
main()
{
    // A conflict-heavy synthetic app from the suite generator: dial
    // the knobs directly instead of picking a named application.
    AppSpec spec;
    spec.name = "bank-pressure-demo";
    spec.suite = "examples";
    spec.numBlocks = 48;
    spec.warpsPerBlock = 8;
    spec.baseInsts = 800;
    spec.fmaFrac = 0.75;
    spec.memFrac = 0.03;
    spec.ilp = 6;
    spec.regWindow = 24;
    spec.conflictBias = 0.85;   // operands cluster in one bank per phase
    spec.footprintMB = 4;
    Application app = buildApp(spec);

    struct Variant
    {
        const char *name;
        GpuConfig cfg;
    };
    GpuConfig base = GpuConfig::volta();
    base.numSms = 4;
    GpuConfig rba = base;
    rba.scheduler = SchedulerPolicy::RBA;
    GpuConfig cu4 = base;
    cu4.collectorUnitsPerSm = 4 * cu4.subCores;
    GpuConfig fc = base;
    fc.subCores = 1;
    const Variant variants[] = {
        { "GTO (baseline)", base },
        { "RBA", rba },
        { "4 CUs/sub-core", cu4 },
        { "Fully-connected", fc },
    };

    std::printf("%-18s %10s %8s %12s %12s %7s %7s\n", "design",
                "cycles", "speedup", "conflicts/kc", "RF reads/c",
                "area", "power");
    Cycle baseCycles = 0;
    for (const Variant &v : variants) {
        SimStats s = simulate(v.cfg, app);
        if (baseCycles == 0)
            baseCycles = s.cycles;
        CostEstimate cost = CostModel::subcore(v.cfg);
        std::printf("%-18s %10llu %7.3fx %12.1f %12.1f %7.2f %7.2f\n",
                    v.name,
                    static_cast<unsigned long long>(s.cycles),
                    static_cast<double>(baseCycles)
                        / static_cast<double>(s.cycles),
                    1000.0 * static_cast<double>(
                        s.rfBankConflictCycles)
                        / static_cast<double>(s.cycles),
                    static_cast<double>(s.rfReads)
                        / static_cast<double>(s.cycles),
                    cost.area, cost.power);
    }

    std::printf("\nRBA reads the per-bank request-queue lengths and "
                "issues the warp whose\noperands sit in the least "
                "contended banks — the 4-CU design buys similar\n"
                "throughput with ~27%% more area and ~60%% more power "
                "in the issue stage\n(Fig 13), while RBA costs ~1%%.\n");
    return 0;
}
