/**
 * @file
 * Section VI-B4: RBA score-update latency sensitivity.
 *
 * The RBA score may be computed from bank-queue lengths up to 20
 * cycles stale (to keep it off the critical path).  Paper: across the
 * top RBA applications the average loss is <0.1% up to 20 cycles;
 * only ply-2Dcon degrades noticeably (speedup 24.2% -> 19.2%).
 */

#include "bench_common.hh"

using namespace scsim;
using namespace scsim::bench;

int
main(int argc, char **argv)
{
    double scale = argc > 1 ? std::atof(argv[1]) : 0.35;
    std::printf("RBA score staleness sweep (speedup vs GTO "
                "baseline)\n");
    std::printf("Paper: <0.1%% average loss from 0 to 20 cycles\n\n");

    const int lats[] = { 0, 1, 2, 5, 10, 20 };
    std::vector<std::string> cols;
    for (int l : lats)
        cols.emplace_back("lat" + std::to_string(l));
    printHeader("app", cols);

    GpuConfig base = baseConfig(6);
    std::vector<std::vector<double>> perLat(std::size(lats));
    for (const AppSpec &spec : rfSensitiveApps(scale)) {
        Cycle b = runApp(base, spec).cycles;
        std::vector<double> row;
        for (std::size_t i = 0; i < std::size(lats); ++i) {
            GpuConfig cfg = designConfig(base, Design::RBA);
            cfg.rbaScoreLatency = lats[i];
            double s = speedup(b, runApp(cfg, spec).cycles);
            row.push_back(s);
            perLat[i].push_back(s);
        }
        printRow(spec.name, row);
    }
    std::printf("\n");
    std::vector<double> means;
    for (auto &v : perLat)
        means.push_back(mean(v));
    printRow("MEAN", means);
    return 0;
}
