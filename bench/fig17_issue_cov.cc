/**
 * @file
 * Figure 17: coefficient of variation of total instructions issued
 * from each sub-core's scheduler, uncompressed TPC-H.
 *
 * Paper: the SRR hashing function reduces the average CoV from 0.80
 * (round robin) to 0.11; Shuffle lands close to SRR; query 8 has the
 * largest baseline CoV (1.01).
 */

#include "bench_common.hh"

using namespace scsim;
using namespace scsim::bench;

int
main(int argc, char **argv)
{
    double scale = argc > 1 ? std::atof(argv[1]) : 0.35;
    std::printf("Figure 17: per-sub-core issue CoV, uncompressed "
                "TPC-H\n");
    std::printf("Paper: RR avg 0.80 -> SRR avg 0.11\n\n");

    GpuConfig base = baseConfig(6);
    GpuConfig srr = designConfig(base, Design::SRR);
    GpuConfig shuffle = designConfig(base, Design::Shuffle);

    printHeader("query", { "RR", "SRR", "Shuffle" });
    std::vector<double> c0, c1, c2;
    for (const AppSpec &spec : suiteApps("tpch-u", scale)) {
        double v0 = runApp(base, spec).issueCov();
        double v1 = runApp(srr, spec).issueCov();
        double v2 = runApp(shuffle, spec).issueCov();
        printRow(spec.name, { v0, v1, v2 });
        c0.push_back(v0);
        c1.push_back(v1);
        c2.push_back(v2);
    }
    std::printf("\n");
    printRow("MEAN", { mean(c0), mean(c1), mean(c2) });
    return 0;
}
