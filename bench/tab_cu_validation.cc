/**
 * @file
 * Section V's collector-unit validation: correlate simulated cycle
 * counts of the seven register-bank-conflict microbenchmarks against
 * the silicon-substitute oracle while sweeping CUs per sub-core.
 *
 * Paper: 2 CUs/sub-core minimizes mean absolute error vs a V100
 * (16.2%), the worst configuration reaches ~43%, motivating the
 * 2-CU baseline used throughout.
 */

#include <cmath>

#include "bench_common.hh"
#include "workloads/calibration.hh"
#include "workloads/microbench.hh"

using namespace scsim;
using namespace scsim::bench;

int
main()
{
    std::printf("CU-count validation: sim cycles vs analytical "
                "silicon oracle (2 CUs), 7 conflict micros\n");
    std::printf("Paper: MAE minimized at 2 CUs/sub-core (16.2%%); "
                "worst config ~43%%\n\n");

    GpuConfig base = baseConfig(2);
    printHeader("micro", { "oracle", "1CU", "2CU", "3CU", "4CU" });

    const int cuCounts[] = { 1, 2, 3, 4 };
    double absErr[4] = { 0, 0, 0, 0 };
    for (int v = 0; v < kNumConflictMicros; ++v) {
        KernelDesc k = makeConflictMicro(v, 1024, 16);
        double oracle = siliconOracleCycles(base, k, 2);
        std::vector<double> row { oracle };
        for (int i = 0; i < 4; ++i) {
            GpuConfig cfg = base;
            cfg.collectorUnitsPerSm = cuCounts[i] * cfg.subCores;
            double cycles = static_cast<double>(
                runSim(cfg, k).cycles);
            row.push_back(cycles);
            absErr[i] += std::abs(cycles - oracle) / oracle;
        }
        printRow("micro-" + std::to_string(v), row);
    }

    std::printf("\n");
    printHeader("CUs/sub-core", { "MAE%" });
    for (int i = 0; i < 4; ++i)
        printRow(std::to_string(cuCounts[i]),
                 { 100.0 * absErr[i] / kNumConflictMicros });
    return 0;
}
