/**
 * @file
 * Section VII ablation: how close do the paper's zero-cost assignment
 * hashes come to an *idealized* warp-migration (work-stealing) oracle
 * that re-binds warps to idle sub-cores for free?
 *
 * The paper argues real work stealing is prohibitively expensive
 * (register state would have to move); this bench quantifies the
 * remaining headroom the hashes leave on the table.
 */

#include "bench_common.hh"
#include "workloads/microbench.hh"

using namespace scsim;
using namespace scsim::bench;

int
main(int argc, char **argv)
{
    double scale = argc > 1 ? std::atof(argv[1]) : 0.35;
    std::printf("Assignment hashes vs the ideal-migration oracle "
                "(speedup vs GTO+RR)\n\n");

    GpuConfig base = baseConfig(6);
    GpuConfig srr = designConfig(base, Design::SRR);
    GpuConfig shuffle = designConfig(base, Design::Shuffle);
    GpuConfig oracle = base;
    oracle.idealWarpMigration = true;

    printHeader("workload", { "SRR", "Shuffle", "Oracle", "migr/kc" });
    const char *apps[] = { "tpcU-q8", "tpcC-q9", "tpcC-q14",
                           "cg-pgrnk", "pb-mriq" };
    for (const char *name : apps) {
        Application app = buildApp(findApp(name, scale));
        Cycle b = runSim(base, app).cycles;
        SimStats o = runSim(oracle, app);
        printRow(name, {
            speedup(b, runSim(srr, app).cycles),
            speedup(b, runSim(shuffle, app).cycles),
            speedup(b, o.cycles),
            1000.0 * static_cast<double>(o.warpMigrations)
                / static_cast<double>(o.cycles),
        });
    }

    // The pathological microbenchmark: the oracle's best case.
    KernelDesc micro = makeImbalanceMicro(16.0, 384, 24);
    Cycle b = runSim(base, micro).cycles;
    SimStats o = runSim(oracle, micro);
    printRow("imbalance-16x", {
        speedup(b, runSim(srr, micro).cycles),
        speedup(b, runSim(shuffle, micro).cycles),
        speedup(b, o.cycles),
        1000.0 * static_cast<double>(o.warpMigrations)
            / static_cast<double>(o.cycles),
    });
    return 0;
}
