/**
 * @file
 * Figure 8: performance of the unbalanced FMA microbenchmark as the
 * amount of inter-warp divergence scales, for the three sub-core
 * assignment designs.
 *
 * The workload has one long-running warp every four (the TPC-H
 * shape); the x axis scales the long warps' instruction count.
 * Paper: RR (baseline) degrades steeply; SRR balances it perfectly
 * (it was crafted for this 1-in-4 pattern); Random Shuffle sits in
 * between and falls behind SRR as imbalance grows.
 */

#include "bench_common.hh"
#include "workloads/microbench.hh"

using namespace scsim;
using namespace scsim::bench;

int
main()
{
    std::printf("Figure 8: unbalanced FMA normalized runtime vs "
                "imbalance factor\n");
    std::printf("Paper: SRR flat ~1.0, Shuffle increasingly behind "
                "SRR, RR worst\n\n");

    GpuConfig rr = baseConfig(2);
    GpuConfig srr = rr;
    srr.assign = AssignPolicy::SRR;
    GpuConfig shuffle = rr;
    shuffle.assign = AssignPolicy::Shuffle;

    printHeader("imbalance", { "RR", "SRR", "Shuffle" });
    for (double imbalance : { 1.0, 2.0, 4.0, 8.0, 16.0, 32.0 }) {
        KernelDesc k = makeImbalanceMicro(imbalance, 256, 16);
        // Normalize each design to the ideal: total work spread
        // perfectly, i.e. the SRR runtime at imbalance 1.
        Cycle t0 = runSim(srr, makeImbalanceMicro(1.0, 256, 16)).cycles;
        double work = (8.0 * imbalance + 24.0) / 32.0;
        double ideal = static_cast<double>(t0) * work;
        printRow(std::to_string(imbalance), {
            static_cast<double>(runSim(rr, k).cycles) / ideal,
            static_cast<double>(runSim(srr, k).cycles) / ideal,
            static_cast<double>(runSim(shuffle, k).cycles) / ideal,
        });
    }
    return 0;
}
