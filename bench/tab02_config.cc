/**
 * @file
 * Table II: baseline simulator configuration parameters.
 */

#include <cstdio>

#include "config/gpu_config.hh"

using namespace scsim;

int
main()
{
    GpuConfig c = GpuConfig::volta();
    c.validate();
    std::printf("Table II: baseline simulator configuration\n\n");
    std::printf("%-34s %s\n", "Number of SMs",
                "80 (20 for TPC-H)");
    std::printf("%-34s %d\n", "Sub-Cores per SM", c.subCores);
    std::printf("%-34s %s\n", "Warp Scheduler Algorithm",
                toString(c.scheduler));
    std::printf("%-34s %d\n", "Max Warps per SM", c.maxWarpsPerSm);
    std::printf("%-34s %s\n", "Sub-core Assignment",
                toString(c.assign));
    std::printf("%-34s %u KB\n", "Register File per Sub-core",
                c.regFileBytesPerCluster() / 1024);
    std::printf("%-34s %d\n", "RF Banks per Sub-core",
                c.banksPerCluster());
    std::printf("%-34s %d\n", "CUs per Sub-core", c.cusPerCluster());
    std::printf("%-34s %u KB\n", "L1 / Shared Memory Cache",
                c.l1Bytes / 1024);
    std::printf("%-34s %d-way %u MB\n", "L2 Cache", c.l2Ways,
                c.l2Bytes / (1024 * 1024));
    std::printf("%-34s %d / %d / %d\n",
                "L1 / L2 / DRAM latency (cycles)", c.l1HitLatency,
                c.l2HitLatency, c.dramLatency);
    std::printf("%-34s %.2f / %.2f\n",
                "L2 / DRAM sectors per cycle per SM",
                c.l2SectorsPerCyclePerSm, c.dramSectorsPerCyclePerSm);
    std::printf("%-34s %d (II %d, lat %d)\n",
                "FP32 pipes per scheduler", c.spPipesPerScheduler,
                c.spInitiation, c.spLatency);
    return 0;
}
