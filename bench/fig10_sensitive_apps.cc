/**
 * @file
 * Figure 10: summary design performance on the applications sensitive
 * to SM subdivision (the Table III subset), including the
 * register-bank-stealing [36] comparison and doubled collector units.
 *
 * Runs on the parallel sweep engine: `fig10_sensitive_apps [scale]
 * [jobs] [cache-dir]`.
 *
 * Paper: RBA +11.1% average (beats doubling CUs at +4.1% with ~1%
 * area/power); bank stealing <1%; SRR/Shuffle preserve performance on
 * balanced apps and fix the TPC-H imbalance.
 */

#include "bench_common.hh"

using namespace scsim;
using namespace scsim::bench;

int
main(int argc, char **argv)
{
    double scale = argc > 1 ? std::atof(argv[1]) : 0.35;
    int jobs;
    std::string cacheDir;
    parseSweepArgs(argc, argv, 2, jobs, cacheDir);

    const Design designs[] = { Design::RBA, Design::Cus4,
                               Design::BankStealing, Design::SRR,
                               Design::Shuffle, Design::ShuffleRBA,
                               Design::FullyConnected };

    std::printf("Figure 10: design speedups on partitioning-sensitive "
                "applications\n");
    std::printf("Paper: RBA ~1.11 avg, 2x CUs ~1.04, bank stealing "
                "<1.01, overall sensitive-app gain ~1.19\n\n");

    std::vector<std::string> cols;
    for (Design d : designs)
        cols.emplace_back(toString(d));
    printHeader("app", cols);

    GpuConfig base = baseConfig(6);
    std::vector<AppSpec> apps = sensitiveApps(scale);
    runner::SweepResult res =
        runDesignSweep(base, apps, designs, jobs, cacheDir);

    std::vector<std::vector<double>> perDesign(std::size(designs));
    for (const AppSpec &spec : apps) {
        Cycle b = res.cycles(jobTag(spec, Design::Baseline));
        std::vector<double> row;
        for (std::size_t i = 0; i < std::size(designs); ++i) {
            double s = speedup(b, res.cycles(jobTag(spec, designs[i])));
            row.push_back(s);
            perDesign[i].push_back(s);
        }
        printRow(spec.name, row);
    }

    std::printf("\n");
    std::vector<double> means;
    for (auto &v : perDesign)
        means.push_back(mean(v));
    printRow("MEAN (arith)", means);
    return 0;
}
