/**
 * @file
 * Section III-A / IV-A ablation: how much of the partitioned register
 * file's conflict problem can the *compiler* fix by re-allocating
 * registers, and how much genuinely needs run-time scheduling (RBA)?
 *
 * "The compiler can reduce bank conflicts through carefully selected
 * register assignment, however register access requests from other
 * warps on the sub-core compete for register bank access, and their
 * issue ordering is unknown at compile time." (Sec. III-A)
 *
 * We run each RF-sensitive app (a) as generated, (b) after the
 * register re-allocation pass, (c) with RBA, and (d) with both.
 */

#include "bench_common.hh"
#include "trace/reg_realloc.hh"

using namespace scsim;
using namespace scsim::bench;

namespace {

Application
realloc2Banks(const Application &app)
{
    Application out;
    out.name = app.name + "-realloc";
    out.suite = app.suite;
    for (const auto &k : app.kernels)
        out.kernels.push_back(reallocateRegisters(k, 2));
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    double scale = argc > 1 ? std::atof(argv[1]) : 0.35;
    std::printf("Compiler register re-allocation vs RBA (speedup over "
                "GTO on the as-generated code)\n\n");

    GpuConfig base = baseConfig(6);
    GpuConfig rba = designConfig(base, Design::RBA);

    printHeader("app", { "realloc", "RBA", "both" });
    std::vector<double> sRe, sRba, sBoth;
    for (const AppSpec &spec : rfSensitiveApps(scale)) {
        Application app = buildApp(spec);
        Application re = realloc2Banks(app);
        Cycle b = runSim(base, app).cycles;
        double v1 = speedup(b, runSim(base, re).cycles);
        double v2 = speedup(b, runSim(rba, app).cycles);
        double v3 = speedup(b, runSim(rba, re).cycles);
        printRow(spec.name, { v1, v2, v3 });
        sRe.push_back(v1);
        sRba.push_back(v2);
        sBoth.push_back(v3);
    }
    std::printf("\n");
    printRow("MEAN", { mean(sRe), mean(sRba), mean(sBoth) });
    std::printf("\nThe compiler pass removes same-instruction "
                "conflicts but cannot see other\nwarps' requests; RBA "
                "recovers the cross-warp share on top of it.\n");
    return 0;
}
