/**
 * @file
 * Section IV-B3: hash-function-table size sensitivity.
 *
 * The Fig 7 engine stores one byte per 4 warps; a 16-entry table can
 * encode a unique assignment for all 64 warp slots, a 4-entry table
 * wraps every 16 warps.  Paper: a 16-entry Random-Shuffle table stays
 * within 2% of the 4-entry table across all suites — so the small
 * table suffices.  The SRR pattern repeats every 16 warps, so for SRR
 * the two tables are *identical* by construction.
 */

#include "bench_common.hh"

using namespace scsim;
using namespace scsim::bench;

int
main(int argc, char **argv)
{
    double scale = argc > 1 ? std::atof(argv[1]) : 0.35;
    std::printf("Hash-table size: HashShuffle 4 vs 16 entries, and "
                "HashSRR 4 vs 16 (speedup vs GTO+RR)\n");
    std::printf("Paper: 16-entry Shuffle within 2%% of 4-entry\n\n");

    std::vector<AppSpec> apps;
    for (const char *n : { "tpcC-q2", "tpcC-q9", "tpcC-q14",
                           "tpcU-q8", "tpcU-q17", "pb-mriq",
                           "rod-srad", "cg-pgrnk" })
        apps.push_back(findApp(n, scale));

    printHeader("app", { "shuf4", "shuf16", "srr4", "srr16" });
    std::vector<double> a4, a16;
    GpuConfig base = baseConfig(6);
    for (const AppSpec &spec : apps) {
        Cycle b = runApp(base, spec).cycles;
        std::vector<double> row;
        for (auto [policy, entries] :
             std::initializer_list<std::pair<AssignPolicy, int>>{
                 { AssignPolicy::HashShuffle, 4 },
                 { AssignPolicy::HashShuffle, 16 },
                 { AssignPolicy::HashSRR, 4 },
                 { AssignPolicy::HashSRR, 16 } }) {
            GpuConfig cfg = base;
            cfg.assign = policy;
            cfg.hashTableEntries = entries;
            row.push_back(speedup(b, runApp(cfg, spec).cycles));
        }
        printRow(spec.name, row);
        a4.push_back(row[0]);
        a16.push_back(row[1]);
    }
    std::printf("\n");
    printRow("shufMEAN", { mean(a4), mean(a16) });
    std::printf("max |4 vs 16| gap: %.3f\n", [&] {
        double gap = 0;
        for (std::size_t i = 0; i < a4.size(); ++i)
            gap = std::max(gap, std::abs(a4[i] - a16[i]));
        return gap;
    }());
    return 0;
}
