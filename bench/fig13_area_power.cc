/**
 * @file
 * Figure 13: area and power of scaling collector units per sub-core,
 * versus the RBA design, from the analytical cost model (substitute
 * for the paper's Cadence Genus + OpenRAM 45nm synthesis).
 *
 * Paper anchors: 4 CUs => +27% area, +60% power; RBA => ~+1% both.
 * All designs include the warp issue scheduler, operand collector and
 * two register file banks; normalized to the 2-CU GTO baseline.
 */

#include "bench_common.hh"
#include "power/cost_model.hh"

using namespace scsim;
using namespace scsim::bench;

int
main()
{
    std::printf("Figure 13: issue-stage area/power, normalized to "
                "2 CUs + GTO\n");
    std::printf("Paper: 4 CUs = 1.27x area / 1.60x power; RBA = "
                "~1.01x both\n\n");

    GpuConfig base = GpuConfig::volta();
    CostEstimate ref = CostModel::subcore(base);

    printHeader("design", { "area", "power" });
    for (int cus : { 2, 4, 8, 16 }) {
        GpuConfig cfg = base;
        cfg.collectorUnitsPerSm = cus * cfg.subCores;
        CostEstimate e = CostModel::subcore(cfg);
        printRow(std::to_string(cus) + " CUs",
                 { e.area / ref.area, e.power / ref.power });
    }
    GpuConfig rba = base;
    rba.scheduler = SchedulerPolicy::RBA;
    CostEstimate e = CostModel::subcore(rba);
    printRow("RBA (2 CUs)", { e.area / ref.area, e.power / ref.power });

    std::printf("\nComponent breakdown (baseline):\n");
    CostBreakdown b = CostModel::breakdown(base);
    printHeader("component", { "area", "power" });
    printRow("reg file", { b.rfArea, b.rfPower });
    printRow("scheduler", { b.schedArea, b.schedPower });
    printRow("collectors", { b.cuArea, b.cuPower });
    printRow("crossbar", { b.xbarArea, b.xbarPower });
    std::printf("\nRBA storage: %d score bits vs %d bits per CU of "
                "operand storage\n", CostModel::rbaScoreBits(),
                CostModel::cuStorageBits());
    return 0;
}
