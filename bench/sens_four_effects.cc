/**
 * @file
 * Section I ablation: the four orthogonal sub-core partitioning
 * effects, each isolated by a purpose-built workload and measured as
 * the fully-connected SM's speedup over the partitioned baseline.
 *
 * Each workload here is a deliberate worst case for its effect, so
 * all four register clearly; the paper's point (Sec. I) is that in
 * *real* suites only effects 1 (register bank conflicts) and 2 (issue
 * imbalance) arise with significant magnitude — effects 3
 * (execution-unit diversity) and 4 (register-capacity diversity under
 * concurrent kernels) require warp/kernel mixes that the 112
 * applications rarely exhibit.
 */

#include "bench_common.hh"
#include "workloads/microbench.hh"

using namespace scsim;
using namespace scsim::bench;

namespace {

/** Effect 1: bank-conflict-prone balanced compute. */
Application
effect1()
{
    Application app;
    app.name = "e1-bank-conflicts";
    app.kernels.push_back(makeConflictMicro(0, 1024, 24));
    return app;
}

/** Effect 2: issue imbalance (one long warp in four). */
Application
effect2()
{
    Application app;
    app.name = "e2-issue-imbalance";
    app.kernels.push_back(makeImbalanceMicro(8.0, 512, 24));
    return app;
}

/** Effect 3: warps with disjoint execution-unit demands. */
Application
effect3()
{
    WarpProgram tensorShape, sfuShape;
    for (int i = 0; i < 768; ++i) {
        RegIndex acc = static_cast<RegIndex>(i % 4);
        tensorShape.code.push_back(
            Instruction::alu(Opcode::TENSOR, acc, acc, 4, 5));
        sfuShape.code.push_back(
            Instruction::alu(Opcode::SFU, acc, acc));
    }
    for (WarpProgram *p : { &tensorShape, &sfuShape }) {
        p->code.push_back(Instruction::barrier());
        p->code.push_back(Instruction::exit());
    }
    KernelDesc k;
    k.name = "unit-diverse";
    k.numBlocks = 24;
    k.warpsPerBlock = 8;
    k.regsPerThread = 8;
    k.shapes.push_back(std::move(tensorShape));
    k.shapes.push_back(std::move(sfuShape));
    // Round robin sends all tensor warps to sub-cores 0/1 and all SFU
    // warps to 2/3: each sub-core's other pipe idles.
    for (int w = 0; w < 8; ++w)
        k.shapeOfWarp.push_back(w % 4 < 2 ? 0 : 1);
    k.validate();
    Application app;
    app.name = "e3-unit-diversity";
    app.kernels.push_back(k);
    return app;
}

/** Effect 4: concurrent kernels with disparate register demands. */
Application
effect4()
{
    auto computeKernel = [](const char *name, int regs, int insts) {
        WarpProgram p;
        for (int i = 0; i < insts; ++i) {
            RegIndex acc = static_cast<RegIndex>(i % 4);
            p.code.push_back(Instruction::alu(Opcode::FMA, acc, acc,
                                              4, 5));
        }
        p.code.push_back(Instruction::barrier());
        p.code.push_back(Instruction::exit());
        KernelDesc k;
        k.name = name;
        k.numBlocks = 24;
        k.warpsPerBlock = 8;
        k.regsPerThread = regs;
        k.shapes.push_back(std::move(p));
        k.shapeOfWarp.assign(8, 0);
        k.validate();
        return k;
    };
    Application app;
    app.name = "e4-reg-capacity";
    app.kernels.push_back(computeKernel("fat-regs", 128, 768));
    app.kernels.push_back(computeKernel("thin-regs", 16, 768));
    return app;
}

} // namespace

int
main()
{
    std::printf("Four-effects ablation: fully-connected speedup over "
                "partitioned, worst-case workload per effect\n");
    std::printf("Paper: in real suites only effects 1 and 2 arise "
                "with significant magnitude\n\n");

    GpuConfig part = baseConfig(4);
    GpuConfig fc = designConfig(part, Design::FullyConnected);

    printHeader("effect", { "FC/part" });
    struct Case { Application app; bool concurrent; };
    Case cases[] = {
        { effect1(), false },
        { effect2(), false },
        { effect3(), false },
        { effect4(), true },
    };
    for (Case &c : cases) {
        auto cyclesOn = [&](const GpuConfig &cfg) {
            sim::SimEngine engine(cfg);
            SimStats s = c.concurrent ? engine.runConcurrent(c.app)
                                      : engine.run(c.app);
            return s.cycles;
        };
        printRow(c.app.name,
                 { speedup(cyclesOn(part), cyclesOn(fc)) });
    }
    return 0;
}
