/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: cycle
 * throughput of the SM model and the cost of its hot structures.
 * Useful when optimizing the simulator, not part of the paper.
 */

#include <benchmark/benchmark.h>

#include "core/assign.hh"
#include "core/reg_file.hh"
#include "core/scoreboard.hh"
#include "gpu/gpu_sim.hh"
#include "workloads/microbench.hh"
#include "workloads/suite.hh"

namespace {

using namespace scsim;

void
BM_FmaMicroSim(benchmark::State &state)
{
    GpuConfig cfg = GpuConfig::volta();
    cfg.numSms = 1;
    KernelDesc k = makeFmaMicro(FmaLayout::Baseline, 512, 4);
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        SimStats s = simulate(cfg, k);
        cycles += s.cycles;
        benchmark::DoNotOptimize(s.cycles);
    }
    state.counters["sim_cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FmaMicroSim)->Unit(benchmark::kMillisecond);

void
BM_SuiteAppSim(benchmark::State &state)
{
    GpuConfig cfg = GpuConfig::volta();
    cfg.numSms = 2;
    Application app = buildApp(findApp("rod-hotspot", 0.1));
    for (auto _ : state) {
        SimStats s = simulate(cfg, app);
        benchmark::DoNotOptimize(s.cycles);
    }
}
BENCHMARK(BM_SuiteAppSim)->Unit(benchmark::kMillisecond);

void
BM_ScoreboardReady(benchmark::State &state)
{
    Scoreboard sb;
    Instruction pending = Instruction::alu(Opcode::FMA, 7, 7, 8, 9);
    sb.markIssue(pending);
    Instruction probe = Instruction::alu(Opcode::FMA, 1, 1, 2, 3);
    for (auto _ : state)
        benchmark::DoNotOptimize(sb.ready(probe));
}
BENCHMARK(BM_ScoreboardReady);

void
BM_ArbiterCycle(benchmark::State &state)
{
    RegFileArbiter arb(2);
    ArbGrants grants;
    for (auto _ : state) {
        arb.pushRead(0, ReadRequest{ 0, 1 });
        arb.pushRead(0, ReadRequest{ 1, 1 });
        arb.pushRead(1, ReadRequest{ 0, 2 });
        grants.clear();
        arb.arbitrate(grants);
        grants.clear();
        arb.arbitrate(grants);
        benchmark::DoNotOptimize(grants.reads.size());
    }
}
BENCHMARK(BM_ArbiterCycle);

void
BM_ShuffleAssign(benchmark::State &state)
{
    ShuffleAssigner assigner(4, 42);
    for (auto _ : state)
        benchmark::DoNotOptimize(assigner.nextSubcore());
}
BENCHMARK(BM_ShuffleAssign);

void
BM_BuildApp(benchmark::State &state)
{
    AppSpec spec = findApp("tpcU-q1", 0.2);
    for (auto _ : state) {
        Application app = buildApp(spec);
        benchmark::DoNotOptimize(app.kernels.size());
    }
}
BENCHMARK(BM_BuildApp)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
