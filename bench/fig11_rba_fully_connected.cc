/**
 * @file
 * Figure 11: RBA also improves the *fully-connected* SM in register-
 * file-sensitive applications.
 *
 * Paper: on apps where RBA beats fully-connected, adding RBA to the
 * fully-connected SM raises its geomean speedup from 1.061 to 1.196.
 */

#include "bench_common.hh"

using namespace scsim;
using namespace scsim::bench;

int
main(int argc, char **argv)
{
    double scale = argc > 1 ? std::atof(argv[1]) : 0.35;
    std::printf("Figure 11: fully-connected SM with and without RBA, "
                "RF-sensitive apps (speedup vs partitioned GTO+RR)\n");
    std::printf("Paper: geomean FC 1.061 -> FC+RBA 1.196 on this "
                "subset\n\n");

    GpuConfig base = baseConfig(6);
    GpuConfig fc = designConfig(base, Design::FullyConnected);
    GpuConfig fcRba = designConfig(base, Design::FullyConnectedRBA);
    GpuConfig rba = designConfig(base, Design::RBA);

    printHeader("app", { "RBA", "FC", "FC+RBA" });
    std::vector<double> rbaS, fcS, fcRbaS;
    for (const AppSpec &spec : rfSensitiveApps(scale)) {
        Cycle b = runApp(base, spec).cycles;
        double s1 = speedup(b, runApp(rba, spec).cycles);
        double s2 = speedup(b, runApp(fc, spec).cycles);
        double s3 = speedup(b, runApp(fcRba, spec).cycles);
        printRow(spec.name, { s1, s2, s3 });
        rbaS.push_back(s1);
        fcS.push_back(s2);
        fcRbaS.push_back(s3);
    }
    std::printf("\n");
    printRow("GEOMEAN", { geomean(rbaS), geomean(fcS),
                          geomean(fcRbaS) });
    return 0;
}
