/**
 * @file
 * Shared helpers for the figure/table regeneration harness.
 *
 * Every bench binary prints the series the paper's figure reports,
 * one row per application/configuration, with the paper's headline
 * values quoted alongside for comparison.  Speedups are normalized
 * the way the paper normalizes: GTO warp scheduler + round-robin
 * sub-core assignment on the partitioned SM.
 */

#ifndef SCSIM_BENCH_BENCH_COMMON_HH
#define SCSIM_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "config/gpu_config.hh"
#include "runner/design.hh"
#include "runner/report.hh"
#include "runner/sweep_engine.hh"
#include "sim/engine.hh"
#include "stats/stats.hh"
#include "workloads/suite.hh"

namespace scsim::bench {

// The design-point vocabulary lives in the library (src/runner) so
// the sweep engine and the CLI share it; re-exported here for the
// figure binaries.
using runner::Design;
using runner::toString;

/**
 * Configuration for design point @p d on top of @p base, resolved
 * through the library's design catalogue by name — the figure
 * binaries carry no policy-wiring logic of their own.
 */
inline GpuConfig
designConfig(const GpuConfig &base, Design d)
{
    return runner::designConfig(base, toString(d));
}

/** Scaled-down Volta baseline used by the harness (see DESIGN.md). */
inline GpuConfig
baseConfig(int numSms = 8)
{
    GpuConfig cfg = GpuConfig::volta();
    cfg.numSms = numSms;
    return cfg;
}

/** Results key for one (application, design) sweep point. */
inline std::string
jobTag(const AppSpec &app, Design d)
{
    return app.name + "|" + toString(d);
}

/**
 * Run baseline + @p designs over @p apps on the sweep engine.  Worker
 * count and cache directory come from the harness command line
 * (`<bench> [scale] [jobs] [cache-dir]`); jobs == 0 means one worker
 * per hardware thread, matching `scsim_cli sweep` defaults.
 */
inline runner::SweepResult
runDesignSweep(const GpuConfig &base, const std::vector<AppSpec> &apps,
               std::span<const Design> designs, int jobs = 0,
               const std::string &cacheDir = {})
{
    runner::SweepSpec spec;
    for (const AppSpec &app : apps) {
        spec.add(jobTag(app, Design::Baseline), base, app);
        for (Design d : designs)
            if (d != Design::Baseline)
                spec.add(jobTag(app, d), designConfig(base, d), app);
    }
    runner::SweepOptions opts;
    opts.jobs = jobs;
    opts.cacheDir = cacheDir;
    opts.progress = true;
    runner::SweepEngine engine(opts);
    runner::SweepResult res = engine.run(spec);
    std::fprintf(stderr, "%s\n",
                 runner::summaryLine(res, jobs).c_str());
    return res;
}

/** Parse the shared trailing harness args: [jobs] [cache-dir]. */
inline void
parseSweepArgs(int argc, char **argv, int firstIdx, int &jobs,
               std::string &cacheDir)
{
    jobs = argc > firstIdx ? std::atoi(argv[firstIdx]) : 0;
    cacheDir = argc > firstIdx + 1 ? argv[firstIdx + 1] : "";
}

/** Cycles for @p app under @p cfg (one engine per call). */
inline SimStats
runApp(const GpuConfig &cfg, const AppSpec &spec)
{
    return sim::SimEngine(cfg).runApp(spec);
}

/** One-shot engine run of a built Application or a single kernel. */
inline SimStats
runSim(const GpuConfig &cfg, const Application &app)
{
    return sim::SimEngine(cfg).run(app);
}

inline SimStats
runSim(const GpuConfig &cfg, const KernelDesc &kernel)
{
    return sim::SimEngine(cfg).run(kernel);
}

inline double
speedup(Cycle baseline, Cycle design)
{
    return static_cast<double>(baseline) / static_cast<double>(design);
}

/** Print one table row: name then fixed-precision values. */
inline void
printRow(const std::string &name,
         const std::vector<double> &values)
{
    std::printf("%-16s", name.c_str());
    for (double v : values)
        std::printf(" %8.3f", v);
    std::printf("\n");
}

inline void
printHeader(const std::string &first,
            const std::vector<std::string> &cols)
{
    std::printf("%-16s", first.c_str());
    for (const auto &c : cols)
        std::printf(" %8s", c.c_str());
    std::printf("\n");
}

} // namespace scsim::bench

#endif // SCSIM_BENCH_BENCH_COMMON_HH
