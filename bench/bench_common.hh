/**
 * @file
 * Shared helpers for the figure/table regeneration harness.
 *
 * Every bench binary prints the series the paper's figure reports,
 * one row per application/configuration, with the paper's headline
 * values quoted alongside for comparison.  Speedups are normalized
 * the way the paper normalizes: GTO warp scheduler + round-robin
 * sub-core assignment on the partitioned SM.
 */

#ifndef SCSIM_BENCH_BENCH_COMMON_HH
#define SCSIM_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "config/gpu_config.hh"
#include "gpu/gpu_sim.hh"
#include "stats/stats.hh"
#include "workloads/suite.hh"

namespace scsim::bench {

/** The design points evaluated across the paper's figures. */
enum class Design
{
    Baseline,        //!< GTO + RR on the partitioned SM
    RBA,
    SRR,
    Shuffle,
    ShuffleRBA,
    FullyConnected,
    FullyConnectedRBA,
    BankStealing,
    Cus4,            //!< 4 CUs per sub-core
    Cus8,
    Cus16,
};

inline const char *
toString(Design d)
{
    switch (d) {
      case Design::Baseline:          return "Baseline";
      case Design::RBA:               return "RBA";
      case Design::SRR:               return "SRR";
      case Design::Shuffle:           return "Shuffle";
      case Design::ShuffleRBA:        return "Shuffle+RBA";
      case Design::FullyConnected:    return "Fully-Connected";
      case Design::FullyConnectedRBA: return "FC+RBA";
      case Design::BankStealing:      return "BankStealing";
      case Design::Cus4:              return "4 CUs";
      case Design::Cus8:              return "8 CUs";
      case Design::Cus16:             return "16 CUs";
    }
    return "?";
}

/** Scaled-down Volta baseline used by the harness (see DESIGN.md). */
inline GpuConfig
baseConfig(int numSms = 8)
{
    GpuConfig cfg = GpuConfig::volta();
    cfg.numSms = numSms;
    return cfg;
}

/** Apply one design point to a baseline configuration. */
inline GpuConfig
applyDesign(GpuConfig cfg, Design d)
{
    switch (d) {
      case Design::Baseline:
        break;
      case Design::RBA:
        cfg.scheduler = SchedulerPolicy::RBA;
        break;
      case Design::SRR:
        cfg.assign = AssignPolicy::SRR;
        break;
      case Design::Shuffle:
        cfg.assign = AssignPolicy::Shuffle;
        break;
      case Design::ShuffleRBA:
        cfg.scheduler = SchedulerPolicy::RBA;
        cfg.assign = AssignPolicy::Shuffle;
        break;
      case Design::FullyConnected:
        cfg.subCores = 1;
        break;
      case Design::FullyConnectedRBA:
        cfg.subCores = 1;
        cfg.scheduler = SchedulerPolicy::RBA;
        break;
      case Design::BankStealing:
        cfg.bankStealing = true;
        break;
      case Design::Cus4:
        cfg.collectorUnitsPerSm = 4 * cfg.subCores;
        break;
      case Design::Cus8:
        cfg.collectorUnitsPerSm = 8 * cfg.subCores;
        break;
      case Design::Cus16:
        cfg.collectorUnitsPerSm = 16 * cfg.subCores;
        break;
    }
    return cfg;
}

/** Cycles for @p app under @p cfg. */
inline SimStats
runApp(const GpuConfig &cfg, const AppSpec &spec)
{
    return simulate(cfg, buildApp(spec));
}

inline double
speedup(Cycle baseline, Cycle design)
{
    return static_cast<double>(baseline) / static_cast<double>(design);
}

/** Print one table row: name then fixed-precision values. */
inline void
printRow(const std::string &name,
         const std::vector<double> &values)
{
    std::printf("%-16s", name.c_str());
    for (double v : values)
        std::printf(" %8.3f", v);
    std::printf("\n");
}

inline void
printHeader(const std::string &first,
            const std::vector<std::string> &cols)
{
    std::printf("%-16s", first.c_str());
    for (const auto &c : cols)
        std::printf(" %8s", c.c_str());
    std::printf("\n");
}

} // namespace scsim::bench

#endif // SCSIM_BENCH_BENCH_COMMON_HH
