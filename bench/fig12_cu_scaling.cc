/**
 * @file
 * Figure 12: speedup from scaling collector units per sub-core
 * (banks held at 2), with the fully-connected SM and RBA as
 * references.
 *
 * Paper: 4/8/16 CUs per sub-core give +4.1% / +7.1% / +9.6% average;
 * RBA reaches +11.9% on the same subset at ~1% cost; diminishing
 * returns beyond 8 CUs (+2.5% from 8 to 16).
 */

#include "bench_common.hh"

using namespace scsim;
using namespace scsim::bench;

int
main(int argc, char **argv)
{
    double scale = argc > 1 ? std::atof(argv[1]) : 0.35;
    const Design designs[] = { Design::Cus4, Design::Cus8, Design::Cus16,
                               Design::RBA, Design::FullyConnected };

    std::printf("Figure 12: CU scaling speedup, normalized to 2 CUs "
                "per sub-core\n");
    std::printf("Paper: 4 CUs +4.1%%, 8 CUs +7.1%%, 16 CUs +9.6%%, "
                "RBA +11.9%% on this subset\n\n");

    std::vector<std::string> cols;
    for (Design d : designs)
        cols.emplace_back(toString(d));
    printHeader("app", cols);

    GpuConfig base = baseConfig(6);
    std::vector<std::vector<double>> perDesign(std::size(designs));
    for (const AppSpec &spec : rfSensitiveApps(scale)) {
        Cycle b = runApp(base, spec).cycles;
        std::vector<double> row;
        for (std::size_t i = 0; i < std::size(designs); ++i) {
            double s = speedup(b, runApp(designConfig(base, designs[i]),
                                         spec).cycles);
            row.push_back(s);
            perDesign[i].push_back(s);
        }
        printRow(spec.name, row);
    }
    std::printf("\n");
    std::vector<double> means;
    for (auto &v : perDesign)
        means.push_back(mean(v));
    printRow("MEAN (arith)", means);
    return 0;
}
