/**
 * @file
 * Figure 3: FMA microbenchmark slowdown from sub-core issue imbalance
 * across GPU generations.
 *
 * Paper (silicon): the unbalanced layout runs ~3.9x longer than
 * baseline on the A100, similarly on V100; balanced == baseline; the
 * monolithic Kepler shows no difference across layouts.
 *
 * We substitute simulator configurations for the three generations
 * (see DESIGN.md): Volta-like and A100-like partitioned SMs (4
 * sub-cores) and a Kepler-like monolithic SMX (shared pipes,
 * dual-issue schedulers, deeper FMA latency).
 */

#include "bench_common.hh"
#include "workloads/microbench.hh"

using namespace scsim;
using namespace scsim::bench;

namespace {

double
normalizedTime(const GpuConfig &cfg, FmaLayout layout)
{
    KernelDesc k = makeFmaMicro(layout, 2048, 32);
    Cycle base = runSim(cfg, makeFmaMicro(FmaLayout::Baseline, 2048,
                                            32)).cycles;
    Cycle t = runSim(cfg, k).cycles;
    return static_cast<double>(t) / static_cast<double>(base);
}

} // namespace

int
main()
{
    std::printf("Figure 3: FMA microbenchmark, normalized execution "
                "time vs baseline layout\n");
    std::printf("Paper: A100 unbalanced ~3.9x, V100 similar, Kepler "
                "~1.0x; balanced ~1.0x everywhere\n\n");

    struct Gen { const char *name; GpuConfig cfg; };
    GpuConfig volta = GpuConfig::volta();
    volta.numSms = 4;
    GpuConfig a100 = GpuConfig::a100Like();
    a100.numSms = 4;
    GpuConfig kepler = GpuConfig::keplerLike();
    kepler.numSms = 4;
    const Gen gens[] = {
        { "V100 (4 sub)", volta },
        { "A100 (4 sub)", a100 },
        { "Kepler (mono)", kepler },
    };

    printHeader("GPU", { "baseline", "balanced", "unbal" });
    for (const Gen &g : gens) {
        printRow(g.name, {
            1.0,
            normalizedTime(g.cfg, FmaLayout::Balanced),
            normalizedTime(g.cfg, FmaLayout::Unbalanced),
        });
    }
    return 0;
}
