/**
 * @file
 * Figure 16: per-query speedup on the uncompressed TPC-H benchmark
 * for SRR and Shuffle sub-core assignment.
 *
 * Paper: SRR averages +17.5%, Shuffle +13.9%; query 8 (largest
 * baseline issue imbalance, CoV 1.01) gains the most (+30.8%).
 */

#include "bench_common.hh"

using namespace scsim;
using namespace scsim::bench;

int
main(int argc, char **argv)
{
    double scale = argc > 1 ? std::atof(argv[1]) : 0.35;
    std::printf("Figure 16: uncompressed TPC-H speedups vs GTO+RR\n");
    std::printf("Paper: SRR avg 1.175, Shuffle avg 1.139\n\n");

    GpuConfig base = baseConfig(6);
    GpuConfig srr = designConfig(base, Design::SRR);
    GpuConfig shuffle = designConfig(base, Design::Shuffle);

    printHeader("query", { "SRR", "Shuffle" });
    std::vector<double> s1, s2;
    for (const AppSpec &spec : suiteApps("tpch-u", scale)) {
        Cycle b = runApp(base, spec).cycles;
        double v1 = speedup(b, runApp(srr, spec).cycles);
        double v2 = speedup(b, runApp(shuffle, spec).cycles);
        printRow(spec.name, { v1, v2 });
        s1.push_back(v1);
        s2.push_back(v2);
    }
    std::printf("\n");
    printRow("MEAN (arith)", { mean(s1), mean(s2) });
    return 0;
}
