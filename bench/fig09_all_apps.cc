/**
 * @file
 * Figure 9: design performance on all 112 applications — speedups of
 * RBA, SRR, Shuffle, Shuffle+RBA and the fully-connected SM,
 * normalized to the GTO + round-robin partitioned baseline.
 *
 * Runs on the parallel sweep engine: `fig09_all_apps [scale] [jobs]
 * [cache-dir]` (jobs 0 = one worker per hardware thread).  The rows
 * are byte-identical for any worker count.
 *
 * Paper: Shuffle+RBA averages +10.6%, fully-connected +13.2%; the
 * combined designs capture ~81% of the loss from sub-division.
 */

#include "bench_common.hh"

using namespace scsim;
using namespace scsim::bench;

int
main(int argc, char **argv)
{
    double scale = argc > 1 ? std::atof(argv[1]) : 0.3;
    int jobs;
    std::string cacheDir;
    parseSweepArgs(argc, argv, 2, jobs, cacheDir);

    const Design designs[] = { Design::RBA, Design::SRR, Design::Shuffle,
                               Design::ShuffleRBA,
                               Design::FullyConnected };

    std::printf("Figure 9: design speedups over GTO+RR baseline, all "
                "applications\n");
    std::printf("Paper: Shuffle+RBA avg 1.106, Fully-Connected avg "
                "1.132\n\n");

    std::vector<std::string> cols;
    for (Design d : designs)
        cols.emplace_back(toString(d));
    printHeader("app", cols);

    GpuConfig base = baseConfig(6);
    std::vector<AppSpec> apps = standardSuite(scale);
    runner::SweepResult res =
        runDesignSweep(base, apps, designs, jobs, cacheDir);

    std::vector<std::vector<double>> perDesign(std::size(designs));
    for (const AppSpec &spec : apps) {
        Cycle b = res.cycles(jobTag(spec, Design::Baseline));
        std::vector<double> row;
        for (std::size_t i = 0; i < std::size(designs); ++i) {
            double s = speedup(b, res.cycles(jobTag(spec, designs[i])));
            row.push_back(s);
            perDesign[i].push_back(s);
        }
        printRow(spec.name, row);
    }

    std::printf("\n");
    std::vector<double> means, geos;
    for (auto &v : perDesign) {
        means.push_back(mean(v));
        geos.push_back(geomean(v));
    }
    printRow("MEAN (arith)", means);
    printRow("MEAN (geo)", geos);
    std::printf("\nPaper reference means: RBA-family ~1.11 on "
                "sensitive apps; Shuffle+RBA 1.106 and FC 1.132 over "
                "all apps\n");
    return 0;
}
