/**
 * @file
 * Figure 1: speedup of a hypothetical fully-connected SM over the
 * 4-way partitioned Volta SM, across the full 112-application suite.
 *
 * Paper: per-app speedups mostly between 1.0x and ~1.6x, averaging
 * ~13.2% (quoted in Sec. VI as the fully-connected average).
 */

#include "bench_common.hh"

using namespace scsim;
using namespace scsim::bench;

int
main(int argc, char **argv)
{
    double scale = argc > 1 ? std::atof(argv[1]) : 0.3;
    std::printf("Figure 1: fully-connected SM speedup over 4-way "
                "partitioned, 112 applications\n");
    std::printf("Paper: mean ~1.132x across the suite\n\n");

    GpuConfig base = baseConfig(6);
    GpuConfig fc = designConfig(base, Design::FullyConnected);

    std::vector<double> all;
    std::string curSuite;
    std::vector<double> suiteVals;
    auto flushSuite = [&] {
        if (!suiteVals.empty()) {
            printRow("  [" + curSuite + "]",
                     { geomean(suiteVals),
                       static_cast<double>(suiteVals.size()) });
            suiteVals.clear();
        }
    };

    for (const AppSpec &spec : standardSuite(scale)) {
        if (spec.suite != curSuite) {
            flushSuite();
            curSuite = spec.suite;
        }
        Cycle b = runApp(base, spec).cycles;
        Cycle f = runApp(fc, spec).cycles;
        double s = speedup(b, f);
        printRow(spec.name, { s });
        all.push_back(s);
        suiteVals.push_back(s);
    }
    flushSuite();

    std::printf("\n");
    printRow("MEAN (arith)", { mean(all) });
    printRow("MEAN (geo)", { geomean(all) });
    std::printf("Paper reference: ~1.132 (13.2%% average speedup)\n");
    return 0;
}
