/**
 * @file
 * Figure 14: register-file reads per cycle over the execution of
 * pb-mriq and rod-srad, for baseline / RBA / fully-connected, on a
 * single SM (peak 256 reads/cycle = 8 banks x 32 lanes).
 *
 * Paper: RBA raises the average reads/cycle and thins out the
 * low-utilization cycles; in rod-srad RBA's *average* utilization
 * (27.1 reads/cycle) beats even fully-connected (23.4) despite a
 * lower peak — baseline is 22.2.
 */

#include "bench_common.hh"

using namespace scsim;
using namespace scsim::bench;

namespace {

void
traceApp(const char *name, double scale)
{
    std::printf("--- %s ---\n", name);
    AppSpec spec = findApp(name, scale);
    printHeader("design", { "avg rd/c", "peak", "p<85/all" });
    for (Design d : { Design::Baseline, Design::RBA,
                      Design::FullyConnected }) {
        GpuConfig cfg = designConfig(baseConfig(1), d);
        cfg.rfTraceEnable = true;
        cfg.rfTraceWindow = 64;
        SimStats s = runApp(cfg, spec);
        const auto &xs = s.rfReadTrace.samples();
        double peak = 0, low = 0;
        for (double x : xs) {
            peak = std::max(peak, x);
            if (x < 85.0)
                low += 1;
        }
        printRow(toString(d), {
            s.rfReadTrace.average(), peak,
            xs.empty() ? 0.0 : low / static_cast<double>(xs.size()) });

        // Downsampled series (40 points) — the figure's trace.
        std::printf("    series:");
        std::size_t step = std::max<std::size_t>(1, xs.size() / 40);
        for (std::size_t i = 0; i < xs.size(); i += step)
            std::printf(" %.0f", xs[i]);
        std::printf("\n");
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    double scale = argc > 1 ? std::atof(argv[1]) : 0.2;
    std::printf("Figure 14: RF reads/cycle traces (single SM, peak "
                "256)\n");
    std::printf("Paper rod-srad averages: baseline 22.2, RBA 27.1, "
                "FC 23.4\n\n");
    traceApp("pb-mriq", scale);
    traceApp("rod-srad", scale);
    return 0;
}
