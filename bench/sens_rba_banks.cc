/**
 * @file
 * Section VI-B5: RBA benefit as banks per sub-core scale.
 *
 * Paper: doubling banks per sub-core from 2 to 4 reduces RBA's
 * average benefit from 19.3% to 15.4% — more banks leave fewer
 * read-operand bottlenecks for RBA to fix.
 */

#include "bench_common.hh"

using namespace scsim;
using namespace scsim::bench;

int
main(int argc, char **argv)
{
    double scale = argc > 1 ? std::atof(argv[1]) : 0.35;
    std::printf("RBA speedup vs banks per sub-core (each normalized "
                "to GTO at the same bank count)\n");
    std::printf("Paper: RBA benefit 19.3%% at 2 banks -> 15.4%% at 4 "
                "banks\n\n");

    printHeader("app", { "2banks", "4banks" });
    std::vector<double> s2, s4;
    for (const AppSpec &spec : rfSensitiveApps(scale)) {
        std::vector<double> row;
        for (int banks : { 2, 4 }) {
            GpuConfig base = baseConfig(6);
            base.rfBanksPerSm = banks * base.subCores;
            GpuConfig rba = base;
            rba.scheduler = SchedulerPolicy::RBA;
            double s = speedup(runApp(base, spec).cycles,
                               runApp(rba, spec).cycles);
            row.push_back(s);
            (banks == 2 ? s2 : s4).push_back(s);
        }
        printRow(spec.name, row);
    }
    std::printf("\n");
    printRow("MEAN", { mean(s2), mean(s4) });
    return 0;
}
