/**
 * @file
 * Figure 18: trading fewer fully-connected SMs against more
 * partitioned SMs, on compute-bound applications.
 *
 * Paper: ~100 partitioned SMs match 80 fully-connected SMs; with
 * RBA+Shuffle only ~84 partitioned SMs are needed.  We sweep at
 * 1/10th chip scale (8 fully-connected SMs as the reference) and
 * report the interpolated crossing points.
 */

#include "bench_common.hh"

using namespace scsim;
using namespace scsim::bench;

namespace {

/** Compute-bound subset that scales with SM count. */
std::vector<AppSpec>
computeBound(double scale)
{
    std::vector<AppSpec> out;
    for (const char *n : { "pb-mriq", "pb-sgemm", "rod-lavaMD",
                           "rod-srad", "ply-2Dcon", "ply-gemm",
                           "db-gemm-tr", "cutlass-4096" })
        out.push_back(findApp(n, scale));
    return out;
}

double
meanCycles(const GpuConfig &cfg, const std::vector<AppSpec> &apps)
{
    double sum = 0;
    for (const AppSpec &spec : apps)
        sum += static_cast<double>(runApp(cfg, spec).cycles);
    return sum / static_cast<double>(apps.size());
}

} // namespace

int
main(int argc, char **argv)
{
    double scale = argc > 1 ? std::atof(argv[1]) : 0.6;
    std::printf("Figure 18: partitioned SM count needed to match 8 "
                "fully-connected SMs (1/10th of the paper's 80)\n");
    std::printf("Paper (at 80-SM scale): baseline needs ~100, our "
                "techniques ~84\n\n");

    std::vector<AppSpec> apps = computeBound(scale);

    GpuConfig fcCfg = designConfig(baseConfig(8),
                                  Design::FullyConnected);
    double fcTime = meanCycles(fcCfg, apps);

    printHeader("partSMs", { "base/FC8", "ShufRBA/FC8" });
    const int counts[] = { 7, 8, 9, 10, 11, 12 };
    double prevBase = 0, prevDesign = 0;
    double crossBase = -1, crossDesign = -1;
    int prevN = 0;
    for (int n : counts) {
        GpuConfig part = baseConfig(n);
        GpuConfig design = designConfig(part, Design::ShuffleRBA);
        double rBase = fcTime / meanCycles(part, apps);
        double rDesign = fcTime / meanCycles(design, apps);
        printRow(std::to_string(n), { rBase, rDesign });
        auto cross = [&](double prev, double cur) {
            // Linear interpolation for ratio == 1.0.
            return prevN + (1.0 - prev) / (cur - prev)
                * (n - prevN);
        };
        if (crossBase < 0 && prevBase > 0 && prevBase < 1.0
            && rBase >= 1.0)
            crossBase = cross(prevBase, rBase);
        if (crossDesign < 0 && prevDesign > 0 && prevDesign < 1.0
            && rDesign >= 1.0)
            crossDesign = cross(prevDesign, rDesign);
        prevBase = rBase;
        prevDesign = rDesign;
        prevN = n;
    }
    std::printf("\nCrossing (ratio=1.0): baseline %.1f SMs, "
                "Shuffle+RBA %.1f SMs (scale to x10 for the paper's "
                "80-SM chip)\n",
                crossBase, crossDesign);
    return 0;
}
