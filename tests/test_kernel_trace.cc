/** @file Tests for kernel descriptions and the text trace format. */

#include <sstream>

#include <gtest/gtest.h>

#include "expect_throw.hh"
#include "trace/kernel.hh"
#include "trace/trace_io.hh"
#include "workloads/microbench.hh"
#include "workloads/suite.hh"

namespace scsim {
namespace {

KernelDesc
tinyKernel()
{
    KernelDesc k;
    k.name = "tiny";
    k.numBlocks = 2;
    k.warpsPerBlock = 2;
    k.regsPerThread = 8;
    WarpProgram p;
    p.code.push_back(Instruction::alu(Opcode::FMA, 0, 0, 1, 2));
    MemInfo m;
    m.region = 3;
    m.sectors = 8;
    m.randomAccess = true;
    m.footprintBytes = 1 << 20;
    p.code.push_back(Instruction::load(Opcode::LDG, 1, 2, m));
    p.code.push_back(Instruction::store(Opcode::STG, 2, 1, m));
    p.code.push_back(Instruction::barrier());
    p.code.push_back(Instruction::exit());
    k.shapes.push_back(p);
    k.shapeOfWarp = { 0, 0 };
    return k;
}

TEST(KernelDesc, TotalInstructionsCountsGrid)
{
    KernelDesc k = tinyKernel();
    EXPECT_EQ(k.totalWarpInstructions(), 2u * 2u * 5u);
}

TEST(KernelDesc, RegBytesPerWarp)
{
    KernelDesc k = tinyKernel();
    EXPECT_EQ(k.regBytesPerWarp(), 8u * 32u * 4u);
}

TEST(KernelDescThrow, ValidateCatchesMissingExit)
{
    KernelDesc k = tinyKernel();
    k.shapes[0].code.pop_back();
    EXPECT_THROW_WITH(k.validate(), WorkloadError, "must end in EXIT");
}

TEST(KernelDescThrow, ValidateCatchesRegisterOverflow)
{
    KernelDesc k = tinyKernel();
    k.regsPerThread = 2;
    EXPECT_THROW_WITH(k.validate(), WorkloadError, "out of window");
}

TEST(KernelDescThrow, ValidateCatchesBadShapeIndex)
{
    KernelDesc k = tinyKernel();
    k.shapeOfWarp[1] = 7;
    EXPECT_THROW_WITH(k.validate(), WorkloadError, "out of range");
}

TEST(KernelDescThrow, ValidateCatchesShapeMapSizeMismatch)
{
    KernelDesc k = tinyKernel();
    k.warpsPerBlock = 3;
    EXPECT_THROW_WITH(k.validate(), WorkloadError, "shapeOfWarp");
}

TEST(TraceIo, RoundTripPreservesEverything)
{
    Application app;
    app.name = "roundtrip";
    app.suite = "testsuite";
    app.kernels.push_back(tinyKernel());
    app.kernels.push_back(makeFmaMicro(FmaLayout::Unbalanced, 16, 2));

    std::stringstream ss;
    writeApplication(ss, app);
    Application back = readApplication(ss);

    EXPECT_EQ(back.name, app.name);
    EXPECT_EQ(back.suite, app.suite);
    ASSERT_EQ(back.kernels.size(), app.kernels.size());
    for (std::size_t k = 0; k < app.kernels.size(); ++k) {
        const KernelDesc &a = app.kernels[k];
        const KernelDesc &b = back.kernels[k];
        EXPECT_EQ(b.name, a.name);
        EXPECT_EQ(b.numBlocks, a.numBlocks);
        EXPECT_EQ(b.warpsPerBlock, a.warpsPerBlock);
        EXPECT_EQ(b.regsPerThread, a.regsPerThread);
        EXPECT_EQ(b.smemBytesPerBlock, a.smemBytesPerBlock);
        EXPECT_EQ(b.shapeOfWarp, a.shapeOfWarp);
        ASSERT_EQ(b.shapes.size(), a.shapes.size());
        for (std::size_t s = 0; s < a.shapes.size(); ++s) {
            const auto &ca = a.shapes[s].code;
            const auto &cb = b.shapes[s].code;
            ASSERT_EQ(cb.size(), ca.size());
            for (std::size_t i = 0; i < ca.size(); ++i) {
                EXPECT_EQ(cb[i].op, ca[i].op);
                EXPECT_EQ(cb[i].dst, ca[i].dst);
                EXPECT_EQ(cb[i].srcs, ca[i].srcs);
                if (isMemory(ca[i].op)) {
                    EXPECT_EQ(cb[i].mem.space, ca[i].mem.space);
                    EXPECT_EQ(cb[i].mem.region, ca[i].mem.region);
                    EXPECT_EQ(cb[i].mem.sectors, ca[i].mem.sectors);
                    EXPECT_EQ(cb[i].mem.footprintBytes,
                              ca[i].mem.footprintBytes);
                    EXPECT_EQ(cb[i].mem.randomAccess,
                              ca[i].mem.randomAccess);
                }
            }
        }
    }
}

TEST(TraceIo, RoundTripSyntheticSuiteApp)
{
    Application app = buildApp(findApp("tpcU-q3", 0.1));
    std::stringstream ss;
    writeApplication(ss, app);
    Application back = readApplication(ss);
    EXPECT_EQ(back.totalWarpInstructions(),
              app.totalWarpInstructions());
    EXPECT_EQ(back.kernels.size(), app.kernels.size());
}

TEST(TraceIoDeath, RejectsGarbageHeader)
{
    std::stringstream ss("not a trace\n");
    EXPECT_EXIT(readApplication(ss), ::testing::ExitedWithCode(1),
                "expected 'app");
}

TEST(TraceIoDeath, RejectsTruncatedShape)
{
    std::stringstream ss(
        "app x y\nkernel k blocks=1 warps=1 regs=8 smem=0\n"
        "shape 3\nEXIT -1 -1 -1 -1\n");
    EXPECT_EXIT(readApplication(ss), ::testing::ExitedWithCode(1),
                "EOF inside shape");
}

TEST(Application, ValidateThrowsOnEmpty)
{
    Application app;
    app.name = "empty";
    EXPECT_THROW_WITH(app.validate(), WorkloadError, "no kernels");
}

} // namespace
} // namespace scsim
