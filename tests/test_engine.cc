/**
 * @file
 * Engine & registry tests (ctest label `engine`).
 *
 * Covers the registry contract (stable order, duplicate rejection,
 * unknown-name ConfigError listing the valid names), the design
 * catalogue, the SimEngine facade (observer hooks, fingerprints), and
 * the golden equivalence matrix: every design point on the micro
 * workloads must produce a SimStats fingerprint byte-identical to the
 * pre-refactor enum path (goldens captured from seed behavior in
 * tests/goldens/engine_fingerprints.txt).
 */

#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "expect_throw.hh"
#include "runner/design.hh"
#include "sim/engine.hh"
#include "sim/registry.hh"
#include "workloads/microbench.hh"

namespace scsim {
namespace {

using runner::Design;
using sim::AssignerContext;
using sim::Registry;
using sim::SimEngine;

using CountFactory = std::function<int()>;

// ---- registry mechanism ---------------------------------------------------

TEST(Registry, PreservesRegistrationOrder)
{
    Registry<CountFactory> reg("widget");
    reg.add("c", "third? no — first", [] { return 0; });
    reg.add("a", "second", [] { return 1; });
    reg.add("b", "third", [] { return 2; });
    EXPECT_EQ(reg.names(), (std::vector<std::string>{ "c", "a", "b" }));
    EXPECT_EQ(reg.lookup("a")(), 1);
}

TEST(Registry, RejectsDuplicateNames)
{
    Registry<CountFactory> reg("widget");
    reg.add("dup", "", [] { return 0; });
    EXPECT_THROW_WITH(reg.add("dup", "", [] { return 1; }), ConfigError,
                      "duplicate widget registration 'dup'");
    // The failed add must not have corrupted the registry.
    EXPECT_EQ(reg.names().size(), 1u);
    EXPECT_EQ(reg.lookup("dup")(), 0);
}

TEST(Registry, UnknownLookupListsValidNames)
{
    Registry<CountFactory> reg("widget");
    reg.add("left", "", [] { return 0; });
    reg.add("right", "", [] { return 1; });
    EXPECT_THROW_WITH(reg.lookup("middle"), ConfigError,
                      "unknown widget 'middle' (valid: left, right)");
    EXPECT_FALSE(reg.contains("middle"));
    EXPECT_TRUE(reg.contains("right"));
}

TEST(Registry, DescribeAlignsEntries)
{
    Registry<CountFactory> reg("widget");
    reg.add("x", "short name", [] { return 0; });
    reg.add("longer", "long name", [] { return 1; });
    std::string text = reg.describe();
    EXPECT_NE(text.find("  x       short name\n"), std::string::npos);
    EXPECT_NE(text.find("  longer  long name\n"), std::string::npos);
}

// ---- built-in policy registries -------------------------------------------

TEST(PolicyRegistries, BuiltinsRegisteredInEnumOrder)
{
    EXPECT_EQ(sim::schedulerRegistry().names(),
              (std::vector<std::string>{ "LRR", "GTO", "RBA" }));
    EXPECT_EQ(sim::assignerRegistry().names(),
              (std::vector<std::string>{ "RR", "SRR", "Shuffle",
                                         "HashSRR", "HashShuffle" }));
}

TEST(PolicyRegistries, FactoriesBuildTheRegisteredPolicy)
{
    GpuConfig cfg = GpuConfig::volta();
    auto sched = sim::schedulerRegistry().lookup("GTO")(cfg);
    ASSERT_NE(sched, nullptr);
    AssignerContext ctx;
    ctx.numSubcores = 4;
    ctx.seed = 7;
    auto assigner = sim::assignerRegistry().lookup("SRR")(cfg, ctx);
    ASSERT_NE(assigner, nullptr);
    EXPECT_EQ(assigner->numSubcores(), 4);
    // SRR: subcore = (W + floor(W/N)) mod N.
    EXPECT_EQ(assigner->nextSubcore(), 0);
    EXPECT_EQ(assigner->nextSubcore(), 1);
    EXPECT_EQ(assigner->nextSubcore(), 2);
    EXPECT_EQ(assigner->nextSubcore(), 3);
    EXPECT_EQ(assigner->nextSubcore(), 1);
}

TEST(PolicyRegistries, UnknownPolicyNameThrowsConfigError)
{
    GpuConfig cfg = GpuConfig::volta();
    EXPECT_THROW_WITH(sim::schedulerRegistry().lookup("FIFO")(cfg),
                      ConfigError, "unknown scheduler 'FIFO'");
}

// ---- design catalogue ------------------------------------------------------

TEST(DesignCatalog, AllDesignsOrderStable)
{
    // The catalogue order is part of the figure / manifest contract:
    // Baseline first, then the paper's Section IV points, then the
    // comparison points.
    std::vector<std::string> names;
    for (Design d : runner::allDesigns())
        names.push_back(runner::toString(d));
    EXPECT_EQ(names,
              (std::vector<std::string>{
                  "Baseline", "RBA", "SRR", "Shuffle", "Shuffle+RBA",
                  "Fully-Connected", "FC+RBA", "BankStealing", "4 CUs",
                  "8 CUs", "16 CUs" }));
    EXPECT_EQ(runner::designCatalog().size(), names.size());
}

TEST(DesignCatalog, ParseAcceptsDisplayNamesAndAliases)
{
    EXPECT_EQ(runner::parseDesign("Shuffle+RBA"), Design::ShuffleRBA);
    EXPECT_EQ(runner::parseDesign("ShuffleRBA"), Design::ShuffleRBA);
    EXPECT_EQ(runner::parseDesign("FC"), Design::FullyConnected);
    EXPECT_EQ(runner::parseDesign("FCRBA"), Design::FullyConnectedRBA);
    EXPECT_EQ(runner::parseDesign("Cus16"), Design::Cus16);
    EXPECT_EQ(runner::parseDesign("16 CUs"), Design::Cus16);
}

TEST(DesignCatalog, ParseUnknownThrowsConfigErrorListingNames)
{
    EXPECT_THROW_WITH(runner::parseDesign("Turbo"), ConfigError,
                      "unknown design 'Turbo' (valid: Baseline");
}

TEST(DesignCatalog, OverlaysMatchTheSeedSemantics)
{
    GpuConfig base = GpuConfig::volta();
    GpuConfig rba = runner::applyDesign(base, Design::RBA);
    EXPECT_EQ(rba.scheduler, SchedulerPolicy::RBA);
    EXPECT_EQ(rba.assign, base.assign);

    GpuConfig fc = runner::designConfig(base, "Fully-Connected");
    EXPECT_EQ(fc.subCores, 1);
    EXPECT_EQ(fc.scheduler, base.scheduler);

    GpuConfig cus8 = runner::designConfig(base, "Cus8");
    // CU scaling multiplies against the *base* sub-core count.
    EXPECT_EQ(cus8.collectorUnitsPerSm, 8 * base.subCores);
    EXPECT_EQ(cus8.subCores, base.subCores);

    GpuConfig steal = runner::designConfig(base, "BankStealing");
    EXPECT_TRUE(steal.bankStealing);
}

// ---- SimEngine facade -----------------------------------------------------

KernelDesc
microWorkload(const std::string &name)
{
    if (name == "fma-unbalanced")
        return makeFmaMicro(FmaLayout::Unbalanced, 512, 8);
    if (name == "imbalance:4")
        return makeImbalanceMicro(4.0, 256, 8);
    if (name == "conflict:0")
        return makeConflictMicro(0, 512, 4);
    ADD_FAILURE() << "unknown micro workload " << name;
    return {};
}

GpuConfig
goldenBase()
{
    GpuConfig cfg = GpuConfig::volta();
    cfg.numSms = 2;
    return cfg;
}

TEST(SimEngine, RejectsInvalidConfigAtConstruction)
{
    GpuConfig cfg = GpuConfig::volta();
    cfg.subCores = 3;   // must divide schedulersPerSm
    EXPECT_THROW(SimEngine{ cfg }, ConfigError);
}

TEST(SimEngine, ObserversFireAroundEachRun)
{
    SimEngine engine(goldenBase());
    int starts = 0, ends = 0;
    std::uint64_t seenCycles = 0;
    sim::EngineObserver obs;
    obs.onRunStart = [&](const GpuConfig &cfg, const Application &app) {
        ++starts;
        EXPECT_EQ(cfg.numSms, 2);
        EXPECT_FALSE(app.kernels.empty());
    };
    obs.onRunEnd = [&](const Application &, const SimStats &s) {
        ++ends;
        seenCycles = s.cycles;
    };
    engine.addObserver(std::move(obs));

    SimStats s = engine.run(microWorkload("conflict:0"));
    EXPECT_EQ(starts, 1);
    EXPECT_EQ(ends, 1);
    EXPECT_EQ(seenCycles, s.cycles);
    engine.run(microWorkload("conflict:0"));
    EXPECT_EQ(starts, 2);
    EXPECT_EQ(ends, 2);
}

TEST(SimEngine, FingerprintSeparatesBehaviors)
{
    SimStats a = SimEngine(goldenBase()).run(microWorkload("conflict:0"));
    SimStats b = SimEngine(goldenBase()).run(microWorkload("conflict:0"));
    EXPECT_EQ(sim::statsFingerprint(a), sim::statsFingerprint(b))
        << "same config + workload must be deterministic";
    SimStats c = SimEngine(goldenBase()).run(
        microWorkload("fma-unbalanced"));
    EXPECT_NE(sim::statsFingerprint(a), sim::statsFingerprint(c));
    EXPECT_EQ(sim::statsFingerprintHex(a).size(), 16u);
}

// ---- golden equivalence matrix --------------------------------------------

/** design name -> workload name -> seed fingerprint (hex). */
std::map<std::string, std::map<std::string, std::string>>
loadGoldens()
{
    std::ifstream in(SCSIM_ENGINE_GOLDENS);
    EXPECT_TRUE(in.good()) << "missing goldens: " SCSIM_ENGINE_GOLDENS;
    std::map<std::string, std::map<std::string, std::string>> out;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::istringstream ls(line);
        std::string design, workload, hex;
        std::getline(ls, design, '\t');
        std::getline(ls, workload, '\t');
        std::getline(ls, hex, '\t');
        out[design][workload] = hex;
    }
    return out;
}

TEST(EngineEquivalence, RegistryPathMatchesSeedFingerprints)
{
    auto goldens = loadGoldens();
    ASSERT_EQ(goldens.size(), runner::designCatalog().size())
        << "golden file must cover every design point";

    const char *workloads[] = { "fma-unbalanced", "imbalance:4",
                                "conflict:0" };
    GpuConfig base = goldenBase();
    for (Design d : runner::allDesigns()) {
        std::string name = runner::toString(d);
        ASSERT_TRUE(goldens.count(name)) << "no goldens for " << name;
        for (const char *w : workloads) {
            SimEngine engine(runner::designConfig(base, name));
            SimStats s = engine.run(microWorkload(w));
            EXPECT_EQ(sim::statsFingerprintHex(s), goldens[name][w])
                << "design '" << name << "' workload '" << w
                << "' diverged from seed behavior";
        }
    }
}

} // namespace
} // namespace scsim
