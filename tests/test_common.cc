/** @file Unit tests for the common substrate: RNG, hashing, logging. */

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"

namespace scsim {
namespace {

TEST(SplitMix, DeterministicSequence)
{
    std::uint64_t s1 = 42, s2 = 42;
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(splitmix64(s1), splitmix64(s2));
}

TEST(SplitMix, AdvancesState)
{
    std::uint64_t s = 7;
    std::uint64_t a = splitmix64(s);
    std::uint64_t b = splitmix64(s);
    EXPECT_NE(a, b);
}

TEST(HashString, StableAndDistinct)
{
    EXPECT_EQ(hashString("pb-mriq"), hashString("pb-mriq"));
    EXPECT_NE(hashString("pb-mriq"), hashString("pb-mrig"));
    EXPECT_NE(hashString(""), hashString("a"));
}

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a() == b());
    EXPECT_LT(same, 4);
}

TEST(Rng, NextRespectsBound)
{
    Rng rng(99);
    for (std::uint64_t bound : { 1ULL, 2ULL, 3ULL, 10ULL, 1000ULL }) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.next(bound), bound);
    }
}

TEST(Rng, NextCoversRange)
{
    Rng rng(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 400; ++i)
        seen.insert(rng.next(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(17);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 500; ++i) {
        std::int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        sawLo = sawLo || v == -3;
        sawHi = sawHi || v == 3;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, ChanceEdges)
{
    Rng rng(11);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng rng(23);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.25);
    double p = static_cast<double>(hits) / n;
    EXPECT_NEAR(p, 0.25, 0.02);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(31);
    std::vector<int> v { 0, 1, 2, 3, 4, 5, 6, 7 };
    rng.shuffle(v);
    std::vector<int> sorted = v;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(Rng, ShuffleActuallyShuffles)
{
    Rng rng(37);
    std::vector<int> v(32);
    for (int i = 0; i < 32; ++i)
        v[static_cast<std::size_t>(i)] = i;
    auto orig = v;
    rng.shuffle(v);
    EXPECT_NE(v, orig);
}

TEST(Logging, FormatBasics)
{
    EXPECT_EQ(detail::format("x=%d", 42), "x=42");
    EXPECT_EQ(detail::format("%s-%s", "a", "b"), "a-b");
    EXPECT_EQ(detail::format("plain"), "plain");
}

TEST(Logging, LevelRoundTrip)
{
    LogLevel old = logLevel();
    setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    setLogLevel(old);
}

TEST(LoggingDeath, FatalExitsWithOne)
{
    EXPECT_EXIT(scsim_fatal("boom %d", 1),
                ::testing::ExitedWithCode(1), "boom 1");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(scsim_panic("bug"), "bug");
}

TEST(LoggingDeath, AssertFiresOnFalse)
{
    EXPECT_DEATH(scsim_assert(1 == 2, "math broke"), "math broke");
}

} // namespace
} // namespace scsim
