/** @file Direct tests of issue-cluster behaviour through a minimal
 *  SmCore harness: issue width, shared warp pool, bank stealing, and
 *  RBA score staleness. */

#include <gtest/gtest.h>

#include "core/sm_core.hh"
#include "expect_throw.hh"
#include "gpu/gpu_sim.hh"

namespace scsim {
namespace {

/** A kernel whose single warp holds @p chains independent FMA chains. */
KernelDesc
chainKernel(int chains, int insts, int warps = 1)
{
    WarpProgram p;
    for (int i = 0; i < insts; ++i) {
        RegIndex acc = static_cast<RegIndex>(i % chains);
        p.code.push_back(Instruction::alu(Opcode::FMA, acc, acc,
                                          10, 11));
    }
    p.code.push_back(Instruction::barrier());
    p.code.push_back(Instruction::exit());
    KernelDesc k;
    k.name = "chains";
    k.numBlocks = 1;
    k.warpsPerBlock = warps;
    k.regsPerThread = 16;
    k.shapes.push_back(std::move(p));
    k.shapeOfWarp.assign(static_cast<std::size_t>(warps), 0);
    k.validate();
    return k;
}

TEST(IssueWidth, DualIssueBeatsSingleWhenIssueBound)
{
    // Two schedulers feeding four wide pipes: with issue width 1 the
    // front-end (2 slots/cycle) starves the back-end; width 2 feeds
    // it.  Sixteen ILP-4 warps supply ample demand.
    KernelDesc k = chainKernel(4, 512, 16);
    GpuConfig narrow = GpuConfig::keplerLike();
    narrow.numSms = 1;
    narrow.schedulersPerSm = 2;
    narrow.maxWarpsPerSm = 32;   // 2 tables x 16 entries
    narrow.spPipesPerScheduler = 2;
    narrow.issueWidthPerScheduler = 1;
    GpuConfig wide = narrow;
    wide.issueWidthPerScheduler = 2;
    Cycle one = simulate(narrow, k).cycles;
    Cycle two = simulate(wide, k).cycles;
    EXPECT_LT(two, one);
}

TEST(SharedWarpPool, ServesWarpsFromForeignTables)
{
    // Eight warps all land on distinct schedulers under RR; with the
    // shared pool, even if one scheduler's table held them all the
    // others could issue them.  Compare against the partitioned
    // unbalanced case: pool must be markedly faster.
    KernelDesc k = chainKernel(4, 512, 8);
    // Force every warp onto scheduler 0 via an unbalanced-style
    // pattern: 8 warps, RR spreads them 2 per scheduler, so instead
    // use the monolithic preset both times and toggle only the pool.
    GpuConfig pooled = GpuConfig::keplerLike();
    pooled.numSms = 1;
    GpuConfig bound = pooled;
    bound.sharedWarpPool = false;
    Cycle tPool = simulate(pooled, k).cycles;
    Cycle tBound = simulate(bound, k).cycles;
    // With balanced RR assignment both are close; the pool never
    // hurts.
    EXPECT_LE(tPool, tBound + tBound / 10);
}

TEST(SharedWarpPool, RequiresMonolithicSm)
{
    GpuConfig cfg = GpuConfig::volta();
    cfg.sharedWarpPool = true;   // but subCores == 4
    EXPECT_THROW_WITH(cfg.validate(), ConfigError, "monolithic");
}

TEST(BankStealing, IssuesExtraWorkOnIdleBanks)
{
    // Plenty of ILP and idle banks: stealing should lift IPC above
    // the single-issue baseline on a 1-warp-per-scheduler workload.
    KernelDesc k = chainKernel(6, 1024, 4);
    GpuConfig base = GpuConfig::volta();
    base.numSms = 1;
    GpuConfig steal = base;
    steal.bankStealing = true;
    SimStats sBase = simulate(base, k);
    SimStats sSteal = simulate(steal, k);
    EXPECT_LE(sSteal.cycles, sBase.cycles);
    // Stealing counts as extra issue slots used.
    EXPECT_GE(sSteal.issueSlotsUsed, sBase.issueSlotsUsed);
}

TEST(RbaStaleness, LongLatencyStillCorrectAndClose)
{
    KernelDesc k = chainKernel(6, 1024, 8);
    for (int lat : { 0, 1, 5, 20 }) {
        GpuConfig cfg = GpuConfig::volta();
        cfg.numSms = 1;
        cfg.scheduler = SchedulerPolicy::RBA;
        cfg.rbaScoreLatency = lat;
        SimStats s = simulate(cfg, k);
        EXPECT_EQ(s.blocksCompleted, 1u) << "lat " << lat;
        EXPECT_EQ(s.instructions, k.totalWarpInstructions());
    }
}

TEST(RbaStaleness, StaleScoresChangeDecisionsNotResultsMuch)
{
    KernelDesc k = chainKernel(6, 2048, 8);
    GpuConfig fresh = GpuConfig::volta();
    fresh.numSms = 1;
    fresh.scheduler = SchedulerPolicy::RBA;
    GpuConfig stale = fresh;
    stale.rbaScoreLatency = 20;
    double ratio = static_cast<double>(simulate(stale, k).cycles)
        / static_cast<double>(simulate(fresh, k).cycles);
    EXPECT_GT(ratio, 0.85);
    EXPECT_LT(ratio, 1.15);
}

TEST(Cluster, WarpBookkeepingRoundTrips)
{
    GpuConfig cfg = GpuConfig::volta();
    IssueCluster cluster(cfg, 0);
    EXPECT_EQ(cluster.numSchedulers(), 1);
    EXPECT_EQ(cluster.totalWarpCount(), 0);
    std::uint32_t age0 = cluster.addWarp(0, 5);
    std::uint32_t age1 = cluster.addWarp(0, 9);
    EXPECT_LT(age0, age1);
    EXPECT_EQ(cluster.warpCount(0), 2);
    EXPECT_EQ(cluster.warpsOf(0).size(), 2u);
    cluster.removeWarp(0, 5);
    EXPECT_EQ(cluster.warpCount(0), 1);
    EXPECT_EQ(cluster.warpsOf(0).front(), 9);
}

TEST(ClusterDeath, RemoveUnknownWarpPanics)
{
    GpuConfig cfg = GpuConfig::volta();
    IssueCluster cluster(cfg, 0);
    EXPECT_DEATH(cluster.removeWarp(0, 3), "unbound");
}

TEST(ClusterDeath, TableOverflowPanicsWhenChecked)
{
    GpuConfig cfg = GpuConfig::volta();
    IssueCluster cluster(cfg, 0);
    for (int i = 0; i < cfg.maxWarpsPerScheduler; ++i)
        cluster.addWarp(0, i);
    EXPECT_DEATH(cluster.addWarp(0, 63), "overflow");
    // The oracle's unchecked path accepts the same warp.
    EXPECT_NO_FATAL_FAILURE(cluster.addWarp(0, 63, true));
}

TEST(FullyConnected, SingleClusterHoldsAllSchedulers)
{
    GpuConfig cfg = GpuConfig::voltaFullyConnected();
    cfg.numSms = 1;
    MemSystem mem(cfg);
    SimStats stats;
    stats.issuePerScheduler.assign(1, std::vector<std::uint64_t>(4, 0));
    SmCore sm(cfg, 0, mem, stats);
    EXPECT_EQ(sm.numClusters(), 1);
    EXPECT_EQ(sm.cluster(0).numSchedulers(), 4);
    EXPECT_EQ(sm.cluster(0).arbiter().numBanks(), 8);
}

} // namespace
} // namespace scsim
