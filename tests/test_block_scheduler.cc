/** @file Unit tests driving the GPU-level block scheduler directly. */

#include <gtest/gtest.h>

#include "gpu/block_scheduler.hh"
#include "workloads/microbench.hh"

namespace scsim {
namespace {

class BlockSchedulerTest : public ::testing::Test
{
  protected:
    BlockSchedulerTest()
    {
        cfg_ = GpuConfig::volta();
        cfg_.numSms = 2;
        cfg_.validate();
        mem_ = std::make_unique<MemSystem>(cfg_);
        stats_.issuePerScheduler.assign(
            static_cast<std::size_t>(cfg_.numSms),
            std::vector<std::uint64_t>(
                static_cast<std::size_t>(cfg_.schedulersPerSm), 0));
        for (int i = 0; i < cfg_.numSms; ++i)
            sms_.push_back(std::make_unique<SmCore>(cfg_, i, *mem_,
                                                    stats_));
        sched_ = std::make_unique<BlockScheduler>(sms_);
    }

    int
    residentBlocks() const
    {
        int n = 0;
        for (const auto &sm : sms_)
            n += sm->activeBlocks();
        return n;
    }

    GpuConfig cfg_;
    std::unique_ptr<MemSystem> mem_;
    SimStats stats_;
    std::vector<std::unique_ptr<SmCore>> sms_;
    std::unique_ptr<BlockScheduler> sched_;
};

TEST_F(BlockSchedulerTest, StartsEmpty)
{
    EXPECT_FALSE(sched_->pending());
    EXPECT_FALSE(sched_->anyCanAccept());
    EXPECT_EQ(sched_->activeKernels(), 0);
}

TEST_F(BlockSchedulerTest, DispatchesOnePerSmPerCycle)
{
    KernelDesc k = makeFmaMicro(FmaLayout::Baseline, 64, 10);
    sched_->launch(k);
    EXPECT_TRUE(sched_->pending());
    sched_->dispatch(0);
    EXPECT_EQ(residentBlocks(), 2);   // one per SM
    sched_->dispatch(1);
    EXPECT_EQ(residentBlocks(), 4);
}

TEST_F(BlockSchedulerTest, StopsWhenSmsFill)
{
    // 32-warp blocks: each SM holds two.
    KernelDesc k = makeFmaMicro(FmaLayout::Balanced, 64, 10);
    sched_->launch(k);
    for (Cycle c = 0; c < 10; ++c)
        sched_->dispatch(c);
    EXPECT_EQ(residentBlocks(), 4);
    EXPECT_TRUE(sched_->pending());
    EXPECT_FALSE(sched_->anyCanAccept());
}

TEST_F(BlockSchedulerTest, SpreadsBlocksAcrossSms)
{
    KernelDesc k = makeFmaMicro(FmaLayout::Baseline, 64, 6);
    sched_->launch(k);
    for (Cycle c = 0; c < 3; ++c)
        sched_->dispatch(c);
    EXPECT_EQ(sms_[0]->activeBlocks(), 3);
    EXPECT_EQ(sms_[1]->activeBlocks(), 3);
    EXPECT_FALSE(sched_->pending());
}

TEST_F(BlockSchedulerTest, InterleavesConcurrentKernels)
{
    KernelDesc a = makeFmaMicro(FmaLayout::Baseline, 64, 4);
    a.name = "a";
    KernelDesc b = makeFmaMicro(FmaLayout::Baseline, 64, 4);
    b.name = "b";
    sched_->launch(a);
    sched_->launch(b);
    EXPECT_EQ(sched_->activeKernels(), 2);
    for (Cycle c = 0; c < 4; ++c)
        sched_->dispatch(c);
    EXPECT_EQ(residentBlocks(), 8);
    EXPECT_FALSE(sched_->pending());
    // Both SMs should hold blocks from both kernels (interleaving).
    // Verified indirectly: all 8 blocks fit although a alone has 4.
}

TEST_F(BlockSchedulerTest, ResetForgetsQueues)
{
    KernelDesc k = makeFmaMicro(FmaLayout::Baseline, 64, 10);
    sched_->launch(k);
    sched_->dispatch(0);
    sched_->reset();
    EXPECT_FALSE(sched_->pending());
    EXPECT_EQ(sched_->activeKernels(), 0);
    // Residency is untouched by reset (blocks drain on their own).
    EXPECT_EQ(residentBlocks(), 2);
}

} // namespace
} // namespace scsim
