/** @file Tests for the analytical area/power model (Fig 13 anchors). */

#include <gtest/gtest.h>

#include "power/cost_model.hh"

namespace scsim {
namespace {

TEST(CostModel, BaselineNormalizesToUnity)
{
    CostEstimate e = CostModel::subcore(GpuConfig::volta());
    EXPECT_NEAR(e.area, 1.0, 1e-9);
    EXPECT_NEAR(e.power, 1.0, 1e-9);
}

TEST(CostModel, FourCuAnchor)
{
    GpuConfig cfg = GpuConfig::volta();
    cfg.collectorUnitsPerSm = 4 * cfg.subCores;
    CostEstimate e = CostModel::subcore(cfg);
    EXPECT_NEAR(e.area, 1.27, 1e-9);
    EXPECT_NEAR(e.power, 1.60, 1e-9);
}

TEST(CostModel, RbaAnchor)
{
    GpuConfig cfg = GpuConfig::volta();
    cfg.scheduler = SchedulerPolicy::RBA;
    CostEstimate e = CostModel::subcore(cfg);
    EXPECT_NEAR(e.area, 1.01, 1e-9);
    EXPECT_NEAR(e.power, 1.01, 1e-9);
}

TEST(CostModel, MonotoneInCollectorUnits)
{
    double prevArea = 0, prevPower = 0;
    for (int cus : { 1, 2, 4, 8, 16 }) {
        GpuConfig cfg = GpuConfig::volta();
        cfg.collectorUnitsPerSm = cus * cfg.subCores;
        CostEstimate e = CostModel::subcore(cfg);
        EXPECT_GT(e.area, prevArea);
        EXPECT_GT(e.power, prevPower);
        prevArea = e.area;
        prevPower = e.power;
    }
}

TEST(CostModel, MonotoneInBanks)
{
    GpuConfig two = GpuConfig::volta();
    GpuConfig four = two;
    four.rfBanksPerSm = 4 * four.subCores;
    EXPECT_GT(CostModel::subcore(four).area,
              CostModel::subcore(two).area);
    EXPECT_GT(CostModel::subcore(four).power,
              CostModel::subcore(two).power);
}

TEST(CostModel, RbaIsFarCheaperThanCuScaling)
{
    GpuConfig rba = GpuConfig::volta();
    rba.scheduler = SchedulerPolicy::RBA;
    GpuConfig cu4 = GpuConfig::volta();
    cu4.collectorUnitsPerSm = 4 * cu4.subCores;
    double rbaDelta = CostModel::subcore(rba).power - 1.0;
    double cuDelta = CostModel::subcore(cu4).power - 1.0;
    EXPECT_LT(rbaDelta * 20, cuDelta);
}

TEST(CostModel, BreakdownSumsToTotal)
{
    GpuConfig cfg = GpuConfig::volta();
    cfg.scheduler = SchedulerPolicy::RBA;
    cfg.collectorUnitsPerSm = 8 * cfg.subCores;
    CostBreakdown b = CostModel::breakdown(cfg);
    CostEstimate e = CostModel::subcore(cfg);
    EXPECT_NEAR(b.area(), e.area, 1e-12);
    EXPECT_NEAR(b.power(), e.power, 1e-12);
    EXPECT_GT(b.rbaArea, 0.0);
}

TEST(CostModel, StructuralBitCounts)
{
    // 16 entries x 5 bits of score storage (Sec. VI-B2).
    EXPECT_EQ(CostModel::rbaScoreBits(), 80);
    // Each CU stores 3 x 32 x 32 bits of operands plus tags.
    EXPECT_GT(CostModel::cuStorageBits(), 3 * 32 * 32);
    EXPECT_GT(CostModel::cuStorageBits(),
              30 * CostModel::rbaScoreBits());
}

} // namespace
} // namespace scsim
