/** @file Paper-shape integration oracles: the qualitative results the
 *  reproduction must preserve (see EXPERIMENTS.md for the full
 *  quantitative comparison). */

#include <gtest/gtest.h>

#include "gpu/gpu_sim.hh"
#include "workloads/microbench.hh"
#include "workloads/suite.hh"

namespace scsim {
namespace {

GpuConfig
volta(int sms)
{
    GpuConfig cfg = GpuConfig::volta();
    cfg.numSms = sms;
    return cfg;
}

double
speedupOf(const GpuConfig &base, const GpuConfig &design,
          const Application &app)
{
    return static_cast<double>(simulate(base, app).cycles)
        / static_cast<double>(simulate(design, app).cycles);
}

TEST(PaperFig3, UnbalancedFmaIsAboutFourTimesSlower)
{
    GpuConfig cfg = volta(2);
    Cycle base = simulate(cfg, makeFmaMicro(FmaLayout::Baseline, 1024,
                                            16)).cycles;
    Cycle bal = simulate(cfg, makeFmaMicro(FmaLayout::Balanced, 1024,
                                           16)).cycles;
    Cycle unbal = simulate(cfg, makeFmaMicro(FmaLayout::Unbalanced,
                                             1024, 16)).cycles;
    double balRatio = static_cast<double>(bal)
        / static_cast<double>(base);
    double unbalRatio = static_cast<double>(unbal)
        / static_cast<double>(base);
    EXPECT_NEAR(balRatio, 1.0, 0.05);
    EXPECT_GT(unbalRatio, 3.2);   // paper: 3.9x on A100
    EXPECT_LT(unbalRatio, 4.6);
}

TEST(PaperFig3, KeplerLikeMonolithicIsInsensitive)
{
    GpuConfig cfg = GpuConfig::keplerLike();
    cfg.numSms = 4;
    Cycle base = simulate(cfg, makeFmaMicro(FmaLayout::Baseline, 2048,
                                            32)).cycles;
    Cycle unbal = simulate(cfg, makeFmaMicro(FmaLayout::Unbalanced,
                                             2048, 32)).cycles;
    double ratio = static_cast<double>(unbal)
        / static_cast<double>(base);
    EXPECT_NEAR(ratio, 1.0, 0.15);
}

TEST(PaperFig8, SrrBalancesOneInFourPerfectly)
{
    GpuConfig rr = volta(1);
    GpuConfig srr = rr;
    srr.assign = AssignPolicy::SRR;
    GpuConfig shuffle = rr;
    shuffle.assign = AssignPolicy::Shuffle;

    KernelDesc k = makeImbalanceMicro(16.0, 256, 8);
    Cycle tRr = simulate(rr, k).cycles;
    Cycle tSrr = simulate(srr, k).cycles;
    Cycle tShuffle = simulate(shuffle, k).cycles;
    // SRR best, Shuffle in between, RR pathological.
    EXPECT_LT(tSrr, tShuffle);
    EXPECT_LT(tShuffle, tRr);
    EXPECT_GT(static_cast<double>(tRr) / static_cast<double>(tSrr),
              2.0);
}

TEST(PaperSec6, RbaHelpsReadOperandBoundApps)
{
    GpuConfig base = volta(4);
    GpuConfig rba = base;
    rba.scheduler = SchedulerPolicy::RBA;
    Application mriq = buildApp(findApp("pb-mriq", 0.2));
    double s = speedupOf(base, rba, mriq);
    EXPECT_GT(s, 1.05);   // paper: double-digit on RF-bound apps
}

TEST(PaperSec6, RbaBeatsDoublingCollectorUnits)
{
    GpuConfig base = volta(4);
    GpuConfig rba = base;
    rba.scheduler = SchedulerPolicy::RBA;
    GpuConfig cu4 = base;
    cu4.collectorUnitsPerSm = 4 * cu4.subCores;
    Application mriq = buildApp(findApp("pb-mriq", 0.2));
    EXPECT_GT(speedupOf(base, rba, mriq),
              speedupOf(base, cu4, mriq));
}

TEST(PaperSec6, TpchGainsLittleFromRba)
{
    GpuConfig base = volta(4);
    GpuConfig rba = base;
    rba.scheduler = SchedulerPolicy::RBA;
    Application q = buildApp(findApp("tpcU-q8", 0.2));
    double s = speedupOf(base, rba, q);
    EXPECT_NEAR(s, 1.0, 0.05);   // "only a few percent"
}

TEST(PaperFig16, SrrSpeedsUpUncompressedTpch)
{
    GpuConfig base = volta(4);
    GpuConfig srr = base;
    srr.assign = AssignPolicy::SRR;
    Application q8 = buildApp(findApp("tpcU-q8", 0.25));
    double s = speedupOf(base, srr, q8);
    EXPECT_GT(s, 1.10);   // paper: +30.8% on query 8
}

TEST(PaperFig17, SrrCollapsesIssueCov)
{
    GpuConfig base = volta(4);
    GpuConfig srr = base;
    srr.assign = AssignPolicy::SRR;
    Application q8 = buildApp(findApp("tpcU-q8", 0.25));
    double covRr = simulate(base, q8).issueCov();
    double covSrr = simulate(srr, q8).issueCov();
    EXPECT_GT(covRr, 0.4);     // paper: 0.80 avg, 1.01 on q8
    EXPECT_LT(covSrr, covRr / 2.5);
}

TEST(PaperSec6, BankStealingNearNoise)
{
    GpuConfig base = volta(2);
    GpuConfig steal = base;
    steal.bankStealing = true;
    Application app = buildApp(findApp("rod-srad", 0.15));
    double s = speedupOf(base, steal, app);
    EXPECT_NEAR(s, 1.0, 0.05);   // paper: <1% with 2 CUs/sub-core
}

TEST(PaperFig14, RbaRaisesAverageRfUtilizationOnSrad)
{
    AppSpec spec = findApp("rod-srad", 0.15);
    auto avgReads = [&](SchedulerPolicy p, int subCores) {
        GpuConfig cfg = volta(1);
        cfg.scheduler = p;
        cfg.subCores = subCores;
        cfg.rfTraceEnable = true;
        SimStats s = simulate(cfg, buildApp(spec));
        return s.rfReadTrace.average();
    };
    double base = avgReads(SchedulerPolicy::GTO, 4);
    double rba = avgReads(SchedulerPolicy::RBA, 4);
    EXPECT_GT(rba, base);   // paper: 22.2 -> 27.1 reads/cycle
}

TEST(PaperSec4, SubCoreCountScalesImbalancePenalty)
{
    // 2 sub-cores halve the pathological loss relative to 4.
    KernelDesc unbal = makeFmaMicro(FmaLayout::Unbalanced, 512, 8);
    KernelDesc base = makeFmaMicro(FmaLayout::Baseline, 512, 8);
    auto ratioFor = [&](int subCores) {
        GpuConfig cfg = volta(1);
        cfg.subCores = subCores;
        return static_cast<double>(simulate(cfg, unbal).cycles)
            / static_cast<double>(simulate(cfg, base).cycles);
    };
    double two = ratioFor(2);
    double four = ratioFor(4);
    EXPECT_GT(four, two);
    EXPECT_NEAR(two, 2.0, 0.5);
}

} // namespace
} // namespace scsim
