/** @file Unit tests for statistics primitives. */

#include <cmath>

#include <gtest/gtest.h>

#include "stats/stats.hh"

namespace scsim {
namespace {

TEST(Distribution, EmptyIsZero)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(d.cov(), 0.0);
}

TEST(Distribution, SingleSample)
{
    Distribution d;
    d.add(5.0);
    EXPECT_EQ(d.count(), 1u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(d.min(), 5.0);
    EXPECT_DOUBLE_EQ(d.max(), 5.0);
}

TEST(Distribution, KnownMoments)
{
    // Values 8K,8,8,8 give CoV = sqrt(3)(K-1)/(K+3) (see DESIGN.md).
    Distribution d;
    for (double x : { 32.0, 8.0, 8.0, 8.0 })   // K = 4
        d.add(x);
    EXPECT_DOUBLE_EQ(d.mean(), 14.0);
    double expectCov = std::sqrt(3.0) * 3.0 / 7.0;
    EXPECT_NEAR(d.cov(), expectCov, 1e-12);
}

TEST(Distribution, MergeMatchesCombined)
{
    Distribution a, b, all;
    for (int i = 0; i < 10; ++i) {
        double x = i * 1.5 - 3.0;
        (i % 2 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Distribution, MergeWithEmpty)
{
    Distribution a, empty;
    a.add(2.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 1u);
    EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(TimeSeries, WindowAveraging)
{
    TimeSeries ts(10);
    for (Cycle c = 0; c < 30; ++c)
        ts.add(c, 2.0);
    ts.finalize(30);
    ASSERT_EQ(ts.samples().size(), 3u);
    for (double s : ts.samples())
        EXPECT_DOUBLE_EQ(s, 2.0);
}

TEST(TimeSeries, SparseAdds)
{
    TimeSeries ts(4);
    ts.add(0, 4.0);
    ts.add(7, 8.0);    // second window
    ts.finalize(8);
    ASSERT_EQ(ts.samples().size(), 2u);
    EXPECT_DOUBLE_EQ(ts.samples()[0], 1.0);   // 4 over 4 cycles
    EXPECT_DOUBLE_EQ(ts.samples()[1], 2.0);   // 8 over 4 cycles
}

TEST(TimeSeries, FinalizePartialWindow)
{
    TimeSeries ts(8);
    ts.add(0, 8.0);
    ts.finalize(4);    // only 4 cycles elapsed
    ASSERT_EQ(ts.samples().size(), 1u);
    EXPECT_DOUBLE_EQ(ts.samples()[0], 2.0);
}

TEST(TimeSeries, EmptyGapsProduceZeroSamples)
{
    TimeSeries ts(2);
    ts.add(9, 6.0);
    ts.finalize(10);
    ASSERT_EQ(ts.samples().size(), 5u);
    EXPECT_DOUBLE_EQ(ts.samples()[3], 0.0);
    EXPECT_DOUBLE_EQ(ts.samples()[4], 3.0);
}

TEST(SummaryMath, Mean)
{
    std::vector<double> xs { 1.0, 2.0, 3.0 };
    EXPECT_DOUBLE_EQ(mean(xs), 2.0);
    EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(SummaryMath, Geomean)
{
    std::vector<double> xs { 1.0, 4.0 };
    EXPECT_DOUBLE_EQ(geomean(xs), 2.0);
    std::vector<double> ones(5, 1.0);
    EXPECT_NEAR(geomean(ones), 1.0, 1e-12);
}

TEST(SummaryMath, CoefficientOfVariation)
{
    std::vector<double> same(4, 3.0);
    EXPECT_DOUBLE_EQ(coefficientOfVariation(same), 0.0);
    std::vector<double> spread { 32.0, 8.0, 8.0, 8.0 };
    EXPECT_NEAR(coefficientOfVariation(spread),
                std::sqrt(3.0) * 3.0 / 7.0, 1e-12);
}

TEST(SimStats, IpcAndCov)
{
    SimStats s;
    s.cycles = 100;
    s.instructions = 250;
    EXPECT_DOUBLE_EQ(s.ipc(), 2.5);

    s.issuePerScheduler = { { 32, 8, 8, 8 }, { 0, 0, 0, 0 } };
    // The idle SM is excluded from the average.
    EXPECT_NEAR(s.issueCov(), std::sqrt(3.0) * 3.0 / 7.0, 1e-12);
}

TEST(SimStats, IssueCovBalanced)
{
    SimStats s;
    s.issuePerScheduler = { { 10, 10, 10, 10 } };
    EXPECT_DOUBLE_EQ(s.issueCov(), 0.0);
}

} // namespace
} // namespace scsim
