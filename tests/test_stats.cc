/** @file Unit tests for statistics primitives. */

#include <cmath>

#include <gtest/gtest.h>

#include "stats/stats.hh"

namespace scsim {
namespace {

TEST(Distribution, EmptyIsZero)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(d.cov(), 0.0);
}

TEST(Distribution, SingleSample)
{
    Distribution d;
    d.add(5.0);
    EXPECT_EQ(d.count(), 1u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(d.min(), 5.0);
    EXPECT_DOUBLE_EQ(d.max(), 5.0);
}

TEST(Distribution, KnownMoments)
{
    // Values 8K,8,8,8 give CoV = sqrt(3)(K-1)/(K+3) (see DESIGN.md).
    Distribution d;
    for (double x : { 32.0, 8.0, 8.0, 8.0 })   // K = 4
        d.add(x);
    EXPECT_DOUBLE_EQ(d.mean(), 14.0);
    double expectCov = std::sqrt(3.0) * 3.0 / 7.0;
    EXPECT_NEAR(d.cov(), expectCov, 1e-12);
}

TEST(Distribution, MergeMatchesCombined)
{
    Distribution a, b, all;
    for (int i = 0; i < 10; ++i) {
        double x = i * 1.5 - 3.0;
        (i % 2 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Distribution, ShardedMergeEqualsSinglePass)
{
    // Four shards of uneven sizes, merged pairwise then chained, must
    // reproduce the one-pass accumulator exactly (count/sum/min/max)
    // and to rounding (mean/variance).
    Distribution shards[4], all;
    int n = 0;
    for (int s = 0; s < 4; ++s) {
        for (int i = 0; i <= s * 3; ++i) {
            double x = 0.75 * n * n - 11.0 * n + 3.5;
            shards[s].add(x);
            all.add(x);
            ++n;
        }
    }
    Distribution merged;
    for (const Distribution &s : shards)
        merged.merge(s);
    EXPECT_EQ(merged.count(), all.count());
    EXPECT_DOUBLE_EQ(merged.sum(), all.sum());
    EXPECT_DOUBLE_EQ(merged.min(), all.min());
    EXPECT_DOUBLE_EQ(merged.max(), all.max());
    EXPECT_NEAR(merged.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(merged.variance(), all.variance(),
                1e-9 * all.variance());
}

TEST(Distribution, MergeWithEmpty)
{
    Distribution a, empty;
    a.add(2.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 1u);
    EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(TimeSeries, WindowAveraging)
{
    TimeSeries ts(10);
    for (Cycle c = 0; c < 30; ++c)
        ts.add(c, 2.0);
    ts.finalize(30);
    ASSERT_EQ(ts.samples().size(), 3u);
    for (double s : ts.samples())
        EXPECT_DOUBLE_EQ(s, 2.0);
}

TEST(TimeSeries, SparseAdds)
{
    TimeSeries ts(4);
    ts.add(0, 4.0);
    ts.add(7, 8.0);    // second window
    ts.finalize(8);
    ASSERT_EQ(ts.samples().size(), 2u);
    EXPECT_DOUBLE_EQ(ts.samples()[0], 1.0);   // 4 over 4 cycles
    EXPECT_DOUBLE_EQ(ts.samples()[1], 2.0);   // 8 over 4 cycles
}

TEST(TimeSeries, FinalizePartialWindow)
{
    TimeSeries ts(8);
    ts.add(0, 8.0);
    ts.finalize(4);    // only 4 cycles elapsed
    ASSERT_EQ(ts.samples().size(), 1u);
    EXPECT_DOUBLE_EQ(ts.samples()[0], 2.0);
}

TEST(TimeSeries, EmptyGapsProduceZeroSamples)
{
    TimeSeries ts(2);
    ts.add(9, 6.0);
    ts.finalize(10);
    ASSERT_EQ(ts.samples().size(), 5u);
    EXPECT_DOUBLE_EQ(ts.samples()[3], 0.0);
    EXPECT_DOUBLE_EQ(ts.samples()[4], 3.0);
}

TEST(SummaryMath, Mean)
{
    std::vector<double> xs { 1.0, 2.0, 3.0 };
    EXPECT_DOUBLE_EQ(mean(xs), 2.0);
    EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(SummaryMath, Geomean)
{
    std::vector<double> xs { 1.0, 4.0 };
    EXPECT_DOUBLE_EQ(geomean(xs), 2.0);
    std::vector<double> ones(5, 1.0);
    EXPECT_NEAR(geomean(ones), 1.0, 1e-12);
}

TEST(SummaryMath, CoefficientOfVariation)
{
    std::vector<double> same(4, 3.0);
    EXPECT_DOUBLE_EQ(coefficientOfVariation(same), 0.0);
    std::vector<double> spread { 32.0, 8.0, 8.0, 8.0 };
    EXPECT_NEAR(coefficientOfVariation(spread),
                std::sqrt(3.0) * 3.0 / 7.0, 1e-12);
}

TEST(SimStats, IpcAndCov)
{
    SimStats s;
    s.cycles = 100;
    s.instructions = 250;
    EXPECT_DOUBLE_EQ(s.ipc(), 2.5);

    s.issuePerScheduler = { { 32, 8, 8, 8 }, { 0, 0, 0, 0 } };
    // The idle SM is excluded from the average.
    EXPECT_NEAR(s.issueCov(), std::sqrt(3.0) * 3.0 / 7.0, 1e-12);
}

TEST(SimStats, IssueCovBalanced)
{
    SimStats s;
    s.issuePerScheduler = { { 10, 10, 10, 10 } };
    EXPECT_DOUBLE_EQ(s.issueCov(), 0.0);
}

TEST(TimeSeries, MergeConcatenatesSamples)
{
    TimeSeries a(4), b(4);
    a.add(0, 4.0);
    a.finalize(4);
    b.add(0, 8.0);
    b.add(5, 12.0);
    b.finalize(8);
    a.merge(b);
    ASSERT_EQ(a.samples().size(), 3u);
    EXPECT_DOUBLE_EQ(a.samples()[0], 1.0);
    EXPECT_DOUBLE_EQ(a.samples()[1], 2.0);
    EXPECT_DOUBLE_EQ(a.samples()[2], 3.0);
}

TEST(TimeSeries, MergeIntoEmptyAdoptsWindow)
{
    TimeSeries empty(512), b(4);
    b.add(0, 8.0);
    b.finalize(4);
    empty.merge(b);
    EXPECT_EQ(empty.window(), 4u);
    ASSERT_EQ(empty.samples().size(), 1u);
    EXPECT_DOUBLE_EQ(empty.samples()[0], 2.0);
}

/** A SimStats shard with every counter derived from @p base. */
SimStats
statsShard(std::uint64_t base)
{
    SimStats s;
    s.cycles = base;
    s.instructions = base * 2;
    s.threadInstructions = base * 64;
    s.issuePerScheduler = { { base, base + 1 }, { base + 2, base + 3 } };
    s.schedCycles = base * 4;
    s.issueSlotsUsed = base * 2;
    s.stallNoWarp = base + 5;
    s.stallScoreboard = base + 6;
    s.stallNoCu = base + 7;
    s.cuTurnaroundSum = base + 8;
    s.cuDispatches = base + 9;
    s.rfReads = base * 6;
    s.rfWrites = base * 3;
    s.rfBankConflictCycles = base + 10;
    s.collectorFullStalls = base + 11;
    s.execStructuralStalls = base + 12;
    s.l1Accesses = base + 13;
    s.l1Misses = base + 14;
    s.l2Accesses = base + 15;
    s.l2Misses = base + 16;
    s.blocksCompleted = base + 17;
    s.warpsCompleted = base + 18;
    s.assignSpills = base + 19;
    s.warpMigrations = base + 20;
    s.kernelSpans.emplace_back("k" + std::to_string(base), base);
    s.rfReadTrace = TimeSeries{ 4 };
    s.rfReadTrace.add(0, static_cast<double>(base));
    s.rfReadTrace.finalize(4);
    return s;
}

TEST(SimStats, MergeEqualsSequentialAccumulation)
{
    SimStats merged = statsShard(100);
    merged.merge(statsShard(1000));

    EXPECT_EQ(merged.cycles, 1100u);
    EXPECT_EQ(merged.instructions, 2200u);
    EXPECT_EQ(merged.threadInstructions, 70400u);
    ASSERT_EQ(merged.issuePerScheduler.size(), 2u);
    EXPECT_EQ(merged.issuePerScheduler[0],
              (std::vector<std::uint64_t>{ 1100, 1102 }));
    EXPECT_EQ(merged.issuePerScheduler[1],
              (std::vector<std::uint64_t>{ 1104, 1106 }));
    EXPECT_EQ(merged.schedCycles, 4400u);
    EXPECT_EQ(merged.stallNoWarp, 1110u);
    EXPECT_EQ(merged.rfReads, 6600u);
    EXPECT_EQ(merged.l2Misses, 1132u);
    EXPECT_EQ(merged.warpMigrations, 1140u);

    ASSERT_EQ(merged.kernelSpans.size(), 2u);
    EXPECT_EQ(merged.kernelSpans[0].first, "k100");
    EXPECT_EQ(merged.kernelSpans[1].second, 1000u);

    ASSERT_EQ(merged.rfReadTrace.samples().size(), 2u);
    EXPECT_DOUBLE_EQ(merged.rfReadTrace.samples()[0], 25.0);
    EXPECT_DOUBLE_EQ(merged.rfReadTrace.samples()[1], 250.0);
}

TEST(SimStats, MergeGrowsIssueMatrix)
{
    SimStats small;
    small.issuePerScheduler = { { 1 } };
    SimStats big;
    big.issuePerScheduler = { { 2, 3 }, { 4, 5 } };
    small.merge(big);
    ASSERT_EQ(small.issuePerScheduler.size(), 2u);
    EXPECT_EQ(small.issuePerScheduler[0],
              (std::vector<std::uint64_t>{ 3, 3 }));
    EXPECT_EQ(small.issuePerScheduler[1],
              (std::vector<std::uint64_t>{ 4, 5 }));
}

TEST(SimStats, MergeWithDefaultIsIdentity)
{
    SimStats merged = statsShard(7);
    SimStats reference = statsShard(7);
    merged.merge(SimStats{});
    EXPECT_EQ(merged.cycles, reference.cycles);
    EXPECT_EQ(merged.instructions, reference.instructions);
    EXPECT_EQ(merged.issuePerScheduler, reference.issuePerScheduler);
    EXPECT_EQ(merged.kernelSpans.size(), reference.kernelSpans.size());
    EXPECT_EQ(merged.rfReadTrace.samples(),
              reference.rfReadTrace.samples());
}

} // namespace
} // namespace scsim
