/** @file Tests for concurrent-kernel execution and the ideal
 *  warp-migration oracle. */

#include <gtest/gtest.h>

#include "gpu/gpu_sim.hh"
#include "workloads/microbench.hh"
#include "workloads/suite.hh"

namespace scsim {
namespace {

GpuConfig
smallVolta(int sms = 2)
{
    GpuConfig cfg = GpuConfig::volta();
    cfg.numSms = sms;
    return cfg;
}

Application
twoKernelApp(int regsA = 32, int regsB = 32)
{
    Application app;
    app.name = "pair";
    KernelDesc a = makeFmaMicro(FmaLayout::Baseline, 256, 8);
    a.name = "a";
    a.regsPerThread = regsA;
    KernelDesc b = makeFmaMicro(FmaLayout::Baseline, 256, 8);
    b.name = "b";
    b.regsPerThread = regsB;
    app.kernels.push_back(a);
    app.kernels.push_back(b);
    return app;
}

TEST(Concurrent, CompletesAllKernels)
{
    GpuSim sim(smallVolta(2));
    SimStats s = sim.runConcurrent(twoKernelApp());
    EXPECT_EQ(s.blocksCompleted, 16u);
    EXPECT_EQ(s.warpsCompleted, 16u * 8u);
}

TEST(Concurrent, FasterThanSequentialWhenUnderOccupied)
{
    // Two small grids cannot fill the machine alone; overlapping them
    // must help.
    GpuConfig cfg = smallVolta(4);
    Application app = twoKernelApp();
    GpuSim sim(cfg);
    Cycle sequential = sim.run(app).cycles;
    Cycle concurrent = sim.runConcurrent(app).cycles;
    EXPECT_LT(concurrent, sequential);
}

TEST(Concurrent, Deterministic)
{
    GpuConfig cfg = smallVolta(2);
    Application app = twoKernelApp(64, 16);
    GpuSim sim(cfg);
    Cycle a = sim.runConcurrent(app).cycles;
    Cycle b = sim.runConcurrent(app).cycles;
    EXPECT_EQ(a, b);
}

TEST(Concurrent, MixedRegisterDemandsShareTheSm)
{
    // Fat- and thin-register kernels co-resident: the thin kernel's
    // blocks fill capacity the fat one cannot use (effect #4 setting).
    GpuConfig cfg = smallVolta(1);
    Application app = twoKernelApp(128, 16);
    GpuSim sim(cfg);
    SimStats s = sim.runConcurrent(app);
    EXPECT_EQ(s.blocksCompleted, 16u);
}

TEST(Concurrent, SequentialRunStillRecordsKernelSpans)
{
    GpuConfig cfg = smallVolta(2);
    Application app = twoKernelApp();
    GpuSim sim(cfg);
    SimStats s = sim.run(app);
    ASSERT_EQ(s.kernelSpans.size(), 2u);
    EXPECT_EQ(s.kernelSpans[0].first, "a");
    EXPECT_GT(s.kernelSpans[0].second, 0u);
    EXPECT_EQ(s.kernelSpans[0].second + s.kernelSpans[1].second,
              s.cycles);
}

TEST(MigrationOracle, FixesThePathologicalImbalance)
{
    KernelDesc k = makeImbalanceMicro(16.0, 256, 8);
    GpuConfig base = smallVolta(1);
    GpuConfig oracle = base;
    oracle.idealWarpMigration = true;
    Cycle b = simulate(base, k).cycles;
    SimStats o = simulate(oracle, k);
    EXPECT_LT(o.cycles, b);
    EXPECT_GT(o.warpMigrations, 0u);
    // The oracle should recover at least a factor two on this micro.
    EXPECT_GT(static_cast<double>(b) / static_cast<double>(o.cycles),
              2.0);
}

TEST(MigrationOracle, AtLeastAsGoodAsSrrOnItsOwnPattern)
{
    KernelDesc k = makeImbalanceMicro(8.0, 256, 8);
    GpuConfig base = smallVolta(1);
    GpuConfig srr = base;
    srr.assign = AssignPolicy::SRR;
    GpuConfig oracle = base;
    oracle.idealWarpMigration = true;
    Cycle tSrr = simulate(srr, k).cycles;
    Cycle tOracle = simulate(oracle, k).cycles;
    EXPECT_LT(static_cast<double>(tOracle), 1.15
              * static_cast<double>(tSrr));
}

TEST(MigrationOracle, NoMigrationsWhenBalanced)
{
    KernelDesc k = makeFmaMicro(FmaLayout::Baseline, 256, 8);
    GpuConfig oracle = smallVolta(1);
    oracle.idealWarpMigration = true;
    SimStats s = simulate(oracle, k);
    // Balanced work leaves nothing worth stealing (a short drain tail
    // at block boundaries is permitted).
    EXPECT_LT(s.warpMigrations, 64u);
    EXPECT_EQ(s.blocksCompleted, 8u);
}

TEST(MigrationOracle, PreservesCompletionSemantics)
{
    Application app = buildApp(findApp("tpcU-q3", 0.1));
    GpuConfig oracle = smallVolta(2);
    oracle.idealWarpMigration = true;
    SimStats s = simulate(oracle, app);
    std::uint64_t expectedWarps = 0;
    for (const auto &k : app.kernels)
        expectedWarps += static_cast<std::uint64_t>(k.numBlocks)
            * static_cast<std::uint64_t>(k.warpsPerBlock);
    EXPECT_EQ(s.warpsCompleted, expectedWarps);
    EXPECT_EQ(s.instructions,
              app.totalWarpInstructions());
}

TEST(MigrationOracle, RespectsRegisterCapacity)
{
    // Fat warps (8 KB each) exactly fill every sub-core's file; the
    // oracle must never oversubscribe a cluster while migrating.
    KernelDesc k = makeImbalanceMicro(8.0, 256, 8);
    k.regsPerThread = 64;
    GpuConfig oracle = smallVolta(1);
    oracle.idealWarpMigration = true;
    SimStats s = simulate(oracle, k);   // panics internally if broken
    EXPECT_EQ(s.blocksCompleted, 8u);
}

} // namespace
} // namespace scsim
