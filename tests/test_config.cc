/** @file Unit tests for GpuConfig: Table II defaults, presets, parsing. */

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "config/gpu_config.hh"
#include "expect_throw.hh"

namespace scsim {
namespace {

TEST(GpuConfig, TableIiDefaults)
{
    GpuConfig c = GpuConfig::volta();
    EXPECT_EQ(c.numSms, 80);
    EXPECT_EQ(c.subCores, 4);
    EXPECT_EQ(c.maxWarpsPerSm, 64);
    EXPECT_EQ(c.banksPerCluster(), 2);
    EXPECT_EQ(c.cusPerCluster(), 2);
    EXPECT_EQ(c.regFileBytesPerCluster(), 64u * 1024u);
    EXPECT_EQ(c.l1Bytes, 128u * 1024u);
    EXPECT_EQ(c.l2Bytes, 6u * 1024u * 1024u);
    EXPECT_EQ(c.l2Ways, 24);
    EXPECT_EQ(c.scheduler, SchedulerPolicy::GTO);
    EXPECT_EQ(c.assign, AssignPolicy::RoundRobin);
    EXPECT_NO_FATAL_FAILURE(c.validate());
}

TEST(GpuConfig, FullyConnectedSharesTotals)
{
    GpuConfig p = GpuConfig::volta();
    GpuConfig f = GpuConfig::voltaFullyConnected();
    EXPECT_EQ(f.subCores, 1);
    EXPECT_EQ(f.rfBanksPerSm, p.rfBanksPerSm);
    EXPECT_EQ(f.collectorUnitsPerSm, p.collectorUnitsPerSm);
    EXPECT_EQ(f.banksPerCluster(), 8);
    EXPECT_EQ(f.cusPerCluster(), 8);
    EXPECT_EQ(f.schedulersPerCluster(), 4);
    EXPECT_EQ(f.regFileBytesPerCluster(), 256u * 1024u);
}

TEST(GpuConfig, KeplerLikeIsMonolithicDualIssue)
{
    GpuConfig k = GpuConfig::keplerLike();
    EXPECT_EQ(k.subCores, 1);
    EXPECT_EQ(k.issueWidthPerScheduler, 2);
    EXPECT_GT(k.spLatency, GpuConfig::volta().spLatency);
    EXPECT_NO_FATAL_FAILURE(k.validate());
}

TEST(GpuConfig, SetParsesNumbersAndEnums)
{
    GpuConfig c;
    c.set("numSms", "12");
    EXPECT_EQ(c.numSms, 12);
    c.set("scheduler", "RBA");
    EXPECT_EQ(c.scheduler, SchedulerPolicy::RBA);
    c.set("assign", "HashShuffle");
    EXPECT_EQ(c.assign, AssignPolicy::HashShuffle);
    c.set("bankStealing", "true");
    EXPECT_TRUE(c.bankStealing);
    c.set("bankStealing", "0");
    EXPECT_FALSE(c.bankStealing);
    c.set("l2SectorsPerCyclePerSm", "1.25");
    EXPECT_DOUBLE_EQ(c.l2SectorsPerCyclePerSm, 1.25);
}

TEST(GpuConfigThrow, SetRejectsUnknownKey)
{
    GpuConfig c;
    EXPECT_THROW_WITH(c.set("warpSpeed", "9"), ConfigError,
                      "unknown configuration");
}

TEST(GpuConfigThrow, SetRejectsGarbageValue)
{
    GpuConfig c;
    EXPECT_THROW_WITH(c.set("numSms", "many"), ConfigError,
                      "cannot parse");
    EXPECT_THROW_WITH(c.set("scheduler", "FIFO"), ConfigError,
                      "unknown scheduler");
    EXPECT_THROW_WITH(c.set("bankStealing", "maybe"), ConfigError,
                      "cannot parse bool");
}

TEST(GpuConfigThrow, ValidateCatchesIndivisibleBanks)
{
    GpuConfig c;
    c.rfBanksPerSm = 6;   // not divisible by 4 sub-cores
    EXPECT_THROW_WITH(c.validate(), ConfigError, "not divisible");
}

TEST(GpuConfigThrow, ValidateCatchesBadHashTable)
{
    GpuConfig c;
    c.hashTableEntries = 8;
    EXPECT_THROW_WITH(c.validate(), ConfigError, "hashTableEntries");
}

TEST(GpuConfigThrow, ValidateCatchesTinySchedulerTables)
{
    GpuConfig c;
    c.maxWarpsPerScheduler = 8;   // 4 x 8 < 64
    EXPECT_THROW_WITH(c.validate(), ConfigError, "cannot hold");
}

TEST(GpuConfig, LoadFileParsesCommentsAndWhitespace)
{
    std::string path = ::testing::TempDir() + "scsim_cfg_test.cfg";
    {
        std::ofstream out(path);
        out << "# a comment\n"
            << "  numSms = 6   # trailing comment\n"
            << "\n"
            << "scheduler=RBA\n";
    }
    GpuConfig c;
    c.loadFile(path);
    EXPECT_EQ(c.numSms, 6);
    EXPECT_EQ(c.scheduler, SchedulerPolicy::RBA);
    std::remove(path.c_str());
}

TEST(GpuConfigThrow, LoadFileMissing)
{
    GpuConfig c;
    EXPECT_THROW_WITH(c.loadFile("/nonexistent/scsim.cfg"),
                      ConfigError, "cannot open");
}

TEST(GpuConfig, PolicyNames)
{
    EXPECT_STREQ(toString(SchedulerPolicy::RBA), "RBA");
    EXPECT_STREQ(toString(AssignPolicy::SRR), "SRR");
    EXPECT_STREQ(toString(AssignPolicy::HashShuffle), "HashShuffle");
}

/** Every legal sub-core count divides the per-SM resources. */
class SubCoreSweep : public ::testing::TestWithParam<int> {};

TEST_P(SubCoreSweep, DerivedQuantitiesConsistent)
{
    GpuConfig c;
    c.subCores = GetParam();
    c.schedulersPerSm = 4;
    c.rfBanksPerSm = 8;
    c.collectorUnitsPerSm = 8;
    if (c.schedulersPerSm % c.subCores)
        GTEST_SKIP();
    c.validate();
    EXPECT_EQ(c.banksPerCluster() * c.subCores, c.rfBanksPerSm);
    EXPECT_EQ(c.cusPerCluster() * c.subCores, c.collectorUnitsPerSm);
    EXPECT_EQ(c.schedulersPerCluster() * c.subCores, c.schedulersPerSm);
    EXPECT_EQ(c.regFileBytesPerCluster()
                  * static_cast<std::uint32_t>(c.subCores),
              c.regFileBytesPerSm);
}

INSTANTIATE_TEST_SUITE_P(AllPartitionings, SubCoreSweep,
                         ::testing::Values(1, 2, 4));

} // namespace
} // namespace scsim
