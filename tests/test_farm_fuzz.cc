/**
 * @file
 * Deterministic protocol fuzzer for the farm wire surface.
 *
 * A seeded PRNG mutates valid protocol frames — truncation, bitflips,
 * byte substitution, envelope length lies, garbage preambles, spliced
 * and interleaved frames — and feeds the damage to exactly the code a
 * hostile or broken peer would reach: FrameAssembler (in arbitrary
 * read()-chunk sizes) and every protocol parser, with requireRecord's
 * decode policy on top.  The contract under test is "classify, never
 * crash": every input must come back as Ok, VersionSkew, Corrupt, a
 * poisoned stream, or a typed ConfigError/SimError — no aborts, no
 * reads past the buffer (the asan/tsan presets run this binary), no
 * unbounded memory.
 *
 * The seed is fixed, so a failure reproduces exactly; the iteration
 * counts put well over 10k mutated frames through the stack per run.
 * Labeled `fuzz` in CTest and included in the sanitizer presets.
 */

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/sim_error.hh"
#include "farm/protocol.hh"
#include "runner/wire.hh"
#include "workloads/suite.hh"

namespace scsim::farm {
namespace {

using runner::FrameAssembler;
using runner::JobResult;
using runner::JobStatus;
using runner::SweepSpec;
using runner::WireDecode;

using Rng = std::mt19937_64;

/** One PRNG for the whole binary: mutation k of frame j of test i is
 *  the same bytes every run, on every machine. */
constexpr std::uint64_t kFuzzSeed = 0x5c51f4112e5eedULL;

std::size_t
randBelow(Rng &rng, std::size_t n)
{
    return n ? static_cast<std::size_t>(rng() % n) : 0;
}

// ---- corpus: one valid frame of every record kind ---------------------

SweepSpec
smallSpec()
{
    AppSpec app;
    app.name = "fuzzapp";
    app.suite = "test";
    app.numBlocks = 4;
    app.warpsPerBlock = 4;
    app.baseInsts = 60;
    app.footprintMB = 1;

    GpuConfig cfg = GpuConfig::volta();
    cfg.numSms = 2;

    SweepSpec spec;
    spec.add("fz-a", cfg, app);
    app.numBlocks = 8;
    spec.add("fz-b", cfg, app);
    return spec;
}

JobResult
sampleResult()
{
    JobResult r;
    r.key = 0x1122334455667788ULL;
    r.status = JobStatus::Ok;
    r.wallMs = 12.5;
    r.attempts = 1;
    r.stats.cycles = 123456;
    r.stats.instructions = 7890;
    r.stats.threadInstructions = 7890 * 32;
    return r;
}

/** Every record the protocol can utter, each one valid. */
std::vector<std::string>
corpus()
{
    std::vector<std::string> frames;
    frames.push_back(serializeHello(localHello("client")));
    frames.push_back(serializeHello(localHello("server")));

    SubmitMsg sub;
    sub.name = "fuzz-sweep";
    sub.detach = true;
    sub.resume = true;
    sub.spec = smallSpec();
    frames.push_back(serializeSubmit(sub));

    AcceptMsg acc;
    acc.sweepId = 7;
    acc.specHash = 0xfeedfacecafebeefULL;
    acc.jobCount = 2;
    acc.adopted = 1;
    frames.push_back(serializeAccept(acc));

    JobDoneMsg done;
    done.index = 1;
    done.adopted = true;
    done.result = sampleResult();
    frames.push_back(serializeJobDone(done));

    JobDoneMsg crashed;
    crashed.index = 0;
    crashed.result.status = JobStatus::Crashed;
    crashed.result.error = "worker killed by signal 9";
    crashed.result.termSignal = 9;
    crashed.result.attempts = 3;
    frames.push_back(serializeJobDone(crashed));

    SweepDoneMsg fin;
    fin.executed = 2;
    fin.cacheHits = 1;
    fin.failed = 1;
    fin.resumed = 1;
    frames.push_back(serializeSweepDone(fin));

    frames.push_back(serializeStatusReq());

    FarmStatus st;
    st.build = "fuzz-build";
    st.protocol = kFarmProtocolVersion;
    st.uptimeMs = 987654;
    st.workers = 4;
    st.busyWorkers = 2;
    st.queueDepth = 5;
    st.inFlight = 2;
    st.draining = true;
    st.maxQueuedJobs = 64;
    st.maxSweepsPerClient = 2;
    st.submitsRejected = 3;
    st.idleDisconnects = 1;
    st.slowReaderDisconnects = 1;
    st.connectionsShed = 1;
    st.acceptFailures = 2;
    st.staleCompletions = 1;
    frames.push_back(serializeStatus(st));

    frames.push_back(serializeError("spec rejected: empty sweep"));

    BusyMsg busy;
    busy.reason = "queue-full";
    busy.retryAfterMs = 500;
    busy.queueDepth = 64;
    frames.push_back(serializeBusy(busy));

    frames.push_back(serializeDrainReq());

    DrainAckMsg ack;
    ack.inFlight = 2;
    ack.abandoned = 5;
    ack.sweepsActive = 1;
    frames.push_back(serializeDrainAck(ack));

    return frames;
}

// ---- mutators ---------------------------------------------------------

std::string
mutTruncate(Rng &rng, std::string s)
{
    s.resize(randBelow(rng, s.size() + 1));
    return s;
}

std::string
mutBitflips(Rng &rng, std::string s)
{
    if (s.empty())
        return s;
    std::size_t flips = 1 + randBelow(rng, 8);
    for (std::size_t i = 0; i < flips; ++i)
        s[randBelow(rng, s.size())] ^=
            static_cast<char>(1u << randBelow(rng, 8));
    return s;
}

std::string
mutSubstitute(Rng &rng, std::string s)
{
    if (s.empty())
        return s;
    std::size_t n = 1 + randBelow(rng, 16);
    for (std::size_t i = 0; i < n; ++i)
        s[randBelow(rng, s.size())] = static_cast<char>(rng() & 0xff);
    return s;
}

std::string
mutInsert(Rng &rng, std::string s)
{
    std::size_t at = randBelow(rng, s.size() + 1);
    std::size_t n = 1 + randBelow(rng, 32);
    std::string junk;
    for (std::size_t i = 0; i < n; ++i)
        junk.push_back(static_cast<char>(rng() & 0xff));
    s.insert(at, junk);
    return s;
}

std::string
mutDeleteSlice(Rng &rng, std::string s)
{
    if (s.empty())
        return s;
    std::size_t at = randBelow(rng, s.size());
    std::size_t n = 1 + randBelow(rng, s.size() - at);
    s.erase(at, n);
    return s;
}

std::string
mutSplice(Rng &rng, std::string s)
{
    if (s.size() < 2)
        return s;
    std::size_t at = randBelow(rng, s.size());
    std::size_t n = 1 + randBelow(rng, s.size() - at);
    std::size_t to = randBelow(rng, s.size());
    s.insert(to, s.substr(at, n));
    return s;
}

std::string
mutGarbagePreamble(Rng &rng, std::string s)
{
    std::size_t n = 1 + randBelow(rng, 64);
    std::string junk;
    for (std::size_t i = 0; i < n; ++i)
        junk.push_back(static_cast<char>(rng() & 0xff));
    return junk + s;
}

using Mutator = std::string (*)(Rng &, std::string);

constexpr Mutator kMutators[] = {
    mutTruncate,     mutBitflips, mutSubstitute,      mutInsert,
    mutDeleteSlice,  mutSplice,   mutGarbagePreamble,
};

std::string
mutate(Rng &rng, std::string s)
{
    return kMutators[randBelow(rng, std::size(kMutators))](
        rng, std::move(s));
}

/** Envelope @p frame with a lying byte count some of the time. */
std::string
envelopeMaybeLying(Rng &rng, const std::string &frame)
{
    switch (rng() % 4) {
    case 0: {  // claim fewer bytes: tail bleeds into the next envelope
        std::size_t claim = randBelow(rng, frame.size() + 1);
        return "frame " + std::to_string(claim) + "\n" + frame;
    }
    case 1: {  // claim more bytes: swallows part of the next frame
        std::size_t claim = frame.size() + 1 + randBelow(rng, 4096);
        return "frame " + std::to_string(claim) + "\n" + frame;
    }
    case 2:  // no envelope at all: raw record on the stream
        return frame;
    default:
        return runner::envelopeFrame(frame);
    }
}

// ---- the parser under the frame: dispatch + classify ------------------

struct Tally
{
    std::uint64_t frames = 0;       //!< frames pushed at the parsers
    std::uint64_t ok = 0;
    std::uint64_t skew = 0;
    std::uint64_t corrupt = 0;
    std::uint64_t noHeader = 0;     //!< peekFrameHeader said no
    std::uint64_t unknownMagic = 0;
    std::uint64_t threw = 0;        //!< typed ConfigError/SimError
};

void
classify(WireDecode d, Tally &t)
{
    switch (d) {
    case WireDecode::Ok: ++t.ok; break;
    case WireDecode::VersionSkew: ++t.skew; break;
    case WireDecode::Corrupt: ++t.corrupt; break;
    }
}

/**
 * What a real peer does with an arriving frame: peek the header,
 * parse by magic, and let requireRecord apply the decode policy.
 * Anything other than a clean classification or a typed SimError is a
 * fuzzing finding (crash, sanitizer report, or foreign exception).
 */
void
exerciseFrame(const std::string &frame, Tally &t)
{
    ++t.frames;
    runner::FrameHeader hdr;
    if (!runner::peekFrameHeader(frame, hdr)) {
        ++t.noHeader;
        return;
    }

    try {
        WireDecode d = WireDecode::Corrupt;
        if (hdr.magic == kHelloMagic) {
            HelloMsg m;
            d = parseHello(frame, m);
        } else if (hdr.magic == kSubmitMagic) {
            SubmitMsg m;
            d = parseSubmit(frame, m);
        } else if (hdr.magic == kAcceptMagic) {
            AcceptMsg m;
            d = parseAccept(frame, m);
        } else if (hdr.magic == kJobDoneMagic) {
            JobDoneMsg m;
            d = parseJobDone(frame, m);
        } else if (hdr.magic == kSweepDoneMagic) {
            SweepDoneMsg m;
            d = parseSweepDone(frame, m);
        } else if (hdr.magic == kStatusReqMagic) {
            d = parseStatusReq(frame);
        } else if (hdr.magic == kStatusMagic) {
            FarmStatus m;
            d = parseStatus(frame, m);
        } else if (hdr.magic == kErrorMagic) {
            ErrorMsg m;
            d = parseError(frame, m);
        } else if (hdr.magic == kBusyMagic) {
            BusyMsg m;
            d = parseBusy(frame, m);
        } else if (hdr.magic == kDrainReqMagic) {
            d = parseDrainReq(frame);
        } else if (hdr.magic == kDrainAckMagic) {
            DrainAckMsg m;
            d = parseDrainAck(frame, m);
        } else {
            ++t.unknownMagic;
            return;
        }
        classify(d, t);
        // The decode policy layer must also only classify or throw.
        try {
            requireRecord(d, frame, "fuzz");
        } catch (const ConfigError &) {
        }
    } catch (const SimError &) {
        ++t.threw;  // parseSubmit's embedded GpuConfig::set, etc.
    }
}

// ---- tests ------------------------------------------------------------

/** The corpus itself is valid: every frame parses Ok via its own
 *  parser.  Guards the fuzzer against silently fuzzing garbage. */
TEST(FarmFuzz, CorpusIsValid)
{
    Tally t;
    for (const std::string &frame : corpus())
        exerciseFrame(frame, t);
    EXPECT_EQ(t.ok, t.frames);
    EXPECT_EQ(t.noHeader, 0u);
    EXPECT_EQ(t.unknownMagic, 0u);
    EXPECT_EQ(t.threw, 0u);
}

/**
 * Mutated single frames against every parser.  ~8k mutated frames;
 * each must classify (Ok/skew/corrupt), throw a typed error, or fail
 * header-peek — never crash.
 */
TEST(FarmFuzz, MutatedFramesNeverCrashTheParsers)
{
    Rng rng(kFuzzSeed);
    const std::vector<std::string> seeds = corpus();
    Tally t;

    constexpr int kIterations = 8000;
    for (int i = 0; i < kIterations; ++i) {
        std::string frame = seeds[randBelow(rng, seeds.size())];
        // Stack 1-3 mutations so damage compounds.
        std::size_t rounds = 1 + randBelow(rng, 3);
        for (std::size_t r = 0; r < rounds; ++r)
            frame = mutate(rng, std::move(frame));
        exerciseFrame(frame, t);
    }

    EXPECT_EQ(t.frames, static_cast<std::uint64_t>(kIterations));
    // The mutators leave some frames intact-enough to parse (e.g. a
    // splice past the payload end), but the overwhelming bulk must be
    // caught by the checksum.  If `corrupt` collapses toward zero the
    // checksum has stopped covering the payload.
    EXPECT_GT(t.corrupt + t.noHeader + t.unknownMagic + t.threw + t.skew,
              static_cast<std::uint64_t>(kIterations) / 2);
}

/**
 * Mutated byte streams against FrameAssembler, fed in random chunk
 * sizes, with every popped frame dispatched to the parsers.  Covers
 * envelope length lies, interleaved/spliced frames and garbage
 * preambles; checks the poison contract (a corrupt stream never
 * yields another frame) and bounded buffering at every step.
 */
TEST(FarmFuzz, MutatedStreamsNeverCrashTheAssembler)
{
    Rng rng(kFuzzSeed ^ 0xa55a);
    const std::vector<std::string> seeds = corpus();
    Tally t;
    std::uint64_t streams = 0, poisoned = 0, framesMutated = 0;

    constexpr int kIterations = 1500;
    for (int i = 0; i < kIterations; ++i) {
        // 1-4 frames per stream, enveloped with occasional lies.
        std::string stream;
        std::size_t nFrames = 1 + randBelow(rng, 4);
        for (std::size_t f = 0; f < nFrames; ++f)
            stream += envelopeMaybeLying(
                rng, seeds[randBelow(rng, seeds.size())]);
        framesMutated += nFrames;

        // Then damage the raw transport bytes most of the time.
        if (rng() % 8 != 0) {
            std::size_t rounds = 1 + randBelow(rng, 2);
            for (std::size_t r = 0; r < rounds; ++r)
                stream = mutate(rng, std::move(stream));
        }

        FrameAssembler in;
        std::size_t off = 0;
        while (off < stream.size()) {
            std::size_t chunk =
                std::min(stream.size() - off, 1 + randBelow(rng, 257));
            in.feed(stream.data() + off, chunk);
            off += chunk;

            std::string frame;
            while (in.next(frame))
                exerciseFrame(frame, t);
            if (in.corrupt()) {
                // Poison is terminal: no more frames, no residue
                // growth from further feeds.
                EXPECT_FALSE(in.next(frame));
                in.feed(stream.data() + off, stream.size() - off);
                EXPECT_FALSE(in.next(frame));
                EXPECT_EQ(in.buffered(), 0u);
                ++poisoned;
                break;
            }
            // Buffering stays bounded by the frame cap plus one
            // envelope line, mutated or not.
            EXPECT_LE(in.buffered(), in.maxFrameBytes() + 64);
        }
        ++streams;
    }

    EXPECT_EQ(streams, static_cast<std::uint64_t>(kIterations));
    EXPECT_GT(poisoned, 0u);
    EXPECT_GT(t.frames, 0u);
    // Combined with the single-frame test this run pushed >10k
    // mutated inputs through the protocol stack.
    EXPECT_GE(framesMutated + 8000, 10000u);
}

/**
 * Adversarial envelopes with valid payloads: a peer that speaks
 * perfect records inside a lying transport.  All damage must land on
 * the envelope layer (poison / short frame -> Corrupt), and an
 * undamaged prefix must still deliver its frames.
 */
TEST(FarmFuzz, LyingEnvelopesAroundValidRecords)
{
    Rng rng(kFuzzSeed ^ 0xbeef);
    const std::vector<std::string> seeds = corpus();

    constexpr int kIterations = 2000;
    for (int i = 0; i < kIterations; ++i) {
        const std::string &good = seeds[randBelow(rng, seeds.size())];
        const std::string &bad = seeds[randBelow(rng, seeds.size())];

        // valid envelope, then a lying one, then another valid one.
        std::string stream = runner::envelopeFrame(good);
        std::size_t lie = randBelow(rng, bad.size() + 4096);
        stream += "frame " + std::to_string(lie) + "\n" + bad;
        stream += runner::envelopeFrame(good);

        FrameAssembler in;
        in.feed(stream);
        std::string frame;
        ASSERT_TRUE(in.next(frame));  // undamaged prefix delivers
        EXPECT_EQ(frame, good);

        Tally t;
        while (in.next(frame))
            exerciseFrame(frame, t);
        // Whatever the lie produced, it classified; nothing crashed.
        EXPECT_LE(t.ok, 2u);
    }
}

} // namespace
} // namespace scsim::farm
