/**
 * @file
 * Process-isolation and resume tests: the shared text escapers, the
 * wire records (stats, job, job-result) and their corruption
 * handling, the subprocess runner, the `run-job` IPC protocol against
 * the real CLI binary, crash containment under `sweep --isolate`, and
 * journal-based resume with byte-identical manifests.
 *
 * Labeled `isolation` in CTest.  The CLI binary's path is baked in as
 * SCSIM_CLI_PATH (the tests run from the gtest binary, which has no
 * `run-job` entry point of its own).
 */

#include <algorithm>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_inject.hh"
#include "common/text_escape.hh"
#include "expect_throw.hh"
#include "runner/job_key.hh"
#include "runner/journal.hh"
#include "runner/report.hh"
#include "runner/subprocess.hh"
#include "runner/sweep_engine.hh"
#include "runner/wire.hh"
#include "stats/stats_io.hh"
#include "workloads/microbench.hh"

namespace scsim::runner {
namespace {

AppSpec
tinyApp(const std::string &name, int blocks = 4)
{
    AppSpec app;
    app.name = name;
    app.suite = "test";
    app.numBlocks = blocks;
    app.warpsPerBlock = 4;
    app.baseInsts = 60;
    app.footprintMB = 1;
    return app;
}

GpuConfig
tinyCfg()
{
    GpuConfig cfg = GpuConfig::volta();
    cfg.numSms = 2;
    return cfg;
}

std::string
freshDir(const std::string &leaf)
{
    std::string dir = testing::TempDir() + "scsim_" + leaf;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
spew(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
}

/** A three-job spec over distinct tiny apps. */
SweepSpec
threeJobSpec()
{
    SweepSpec spec;
    spec.add("a", tinyCfg(), tinyApp("appa"));
    spec.add("b", tinyCfg(), tinyApp("appb"));
    spec.add("c", tinyCfg(), tinyApp("appc"));
    return spec;
}

/** Isolated-mode options pointing at the real CLI binary. */
SweepOptions
isolatedOpts(int jobs)
{
    SweepOptions opts;
    opts.jobs = jobs;
    opts.isolate = true;
    opts.selfExe = SCSIM_CLI_PATH;
    opts.crashAttempts = 2;
    return opts;
}

class IsolationTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        FaultInjector::instance().reset();
        unsetenv("SCSIM_FAULT_CRASH");
    }
    void TearDown() override
    {
        FaultInjector::instance().reset();
        unsetenv("SCSIM_FAULT_CRASH");
    }
};

// ---- shared text escapers ---------------------------------------------

TEST(TextEscape, EscapeLineRoundTripsHostileText)
{
    const std::string hostile = "a\nb\r\nc\\d \\n literal\n";
    const std::string one = escapeLine(hostile);
    EXPECT_EQ(one.find('\n'), std::string::npos);
    EXPECT_EQ(one.find('\r'), std::string::npos);
    EXPECT_EQ(unescapeLine(one), hostile);
    EXPECT_EQ(unescapeLine(escapeLine("")), "");
}

TEST(TextEscape, CsvFieldRoundTripsThroughSplit)
{
    const std::vector<std::string> fields = {
        "plain", "comma, inside", "quote \"inside\"", " leading space",
        "trailing space ", "new\nline", "back\\slash", "",
    };
    std::string row;
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i)
            row += ',';
        row += csvField(fields[i]);
    }
    EXPECT_EQ(row.find('\n'), std::string::npos);

    std::vector<std::string> back;
    ASSERT_TRUE(splitCsvRow(row, back));
    ASSERT_EQ(back.size(), fields.size());
    for (std::size_t i = 0; i < fields.size(); ++i)
        EXPECT_EQ(unescapeLine(back[i]), fields[i]) << "field " << i;
}

TEST(TextEscape, SplitCsvRowRejectsUnterminatedQuote)
{
    std::vector<std::string> out;
    EXPECT_FALSE(splitCsvRow("ok,\"unterminated", out));
}

TEST(TextEscape, JsonEscapeCoversQuotesBackslashesAndControls)
{
    EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(jsonEscape("nl\ntab\t"), "nl\\ntab\\t");
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(TextEscape, CsvManifestHostileErrorRoundTrips)
{
    SweepSpec spec;
    spec.add("t,ag \"q\"", tinyCfg(), tinyApp("evil\napp"));

    SweepResult res;
    res.tags = { spec.jobs[0].tag };
    res.results.resize(1);
    res.results[0].key = jobKey(spec.jobs[0]);
    res.results[0].status = JobStatus::Failed;
    res.results[0].error = "boom, \"quoted\"\nsecond line, with comma";

    const std::string csv = csvManifest(spec, res);
    // Hostile newlines must not add physical rows: header + one row.
    ASSERT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);

    const std::size_t nl = csv.find('\n');
    const std::string row = csv.substr(nl + 1, csv.size() - nl - 2);
    std::vector<std::string> fields;
    ASSERT_TRUE(splitCsvRow(row, fields));
    ASSERT_GE(fields.size(), 8u);
    EXPECT_EQ(unescapeLine(fields[0]), spec.jobs[0].tag);
    EXPECT_EQ(unescapeLine(fields[1]), "evil\napp");
    EXPECT_EQ(fields[4], "failed");
    EXPECT_EQ(unescapeLine(fields[5]), res.results[0].error);

    // The JSON manifest carries the same error, JSON-escaped.
    const std::string json = jsonManifest(spec, res);
    EXPECT_NE(json.find(jsonEscape(res.results[0].error)),
              std::string::npos);
}

// ---- stats wire payload -----------------------------------------------

SimStats
sampleStats(std::uint64_t base)
{
    SimStats s;
    s.cycles = base + 1;
    s.instructions = base + 2;
    s.threadInstructions = base + 3;
    s.rfReads = base + 4;
    s.rfWrites = base + 5;
    s.l1Accesses = base + 6;
    s.l2Misses = base + 7;
    s.blocksCompleted = base + 8;
    s.warpsCompleted = base + 9;
    s.kernelSpans.emplace_back("k\nname-" + std::to_string(base),
                               base + 10);
    return s;
}

TEST(StatsWire, PayloadRoundTripsByteIdentically)
{
    const SimStats s = sampleStats(100);
    const std::string payload = serializeStatsPayload(s);
    SimStats back;
    ASSERT_TRUE(parseStatsPayload(payload, back));
    EXPECT_EQ(serializeStatsPayload(back), payload);
    EXPECT_EQ(back.cycles, s.cycles);
    ASSERT_EQ(back.kernelSpans.size(), 1u);
    EXPECT_EQ(back.kernelSpans[0].first, s.kernelSpans[0].first);
}

TEST(StatsWire, MergeAfterParseEqualsMergeBeforeSerialize)
{
    SimStats a = sampleStats(100);
    SimStats b = sampleStats(5000);

    SimStats mergedOriginals = a;
    mergedOriginals.merge(b);

    SimStats pa, pb;
    ASSERT_TRUE(parseStatsPayload(serializeStatsPayload(a), pa));
    ASSERT_TRUE(parseStatsPayload(serializeStatsPayload(b), pb));
    pa.merge(pb);

    EXPECT_EQ(serializeStatsPayload(pa),
              serializeStatsPayload(mergedOriginals));
}

TEST(StatsWire, UnknownKeysAreSkippedForwardCompatibly)
{
    const SimStats s = sampleStats(7);
    std::string payload = serializeStatsPayload(s);
    payload += "futureCounter 99\n";
    SimStats back;
    ASSERT_TRUE(parseStatsPayload(payload, back));
    EXPECT_EQ(serializeStatsPayload(back), serializeStatsPayload(s));
}

// ---- framed wire records ----------------------------------------------

JobResult
sampleResult()
{
    JobResult r;
    r.key = 0x0123456789abcdefULL;
    r.stats = sampleStats(42);
    r.status = JobStatus::Crashed;
    r.error = "worker crashed: signal 11\nwith a second line";
    r.cached = false;
    r.wallMs = 12.5;
    r.exitCode = -1;
    r.termSignal = 11;
    r.attempts = 3;
    return r;
}

TEST(Wire, JobResultRoundTripsByteIdentically)
{
    const JobResult r = sampleResult();
    const std::string text = serializeJobResult(r);

    JobResult back;
    ASSERT_EQ(decodeJobResult(text, back), WireDecode::Ok);
    EXPECT_EQ(back.key, r.key);
    EXPECT_EQ(back.status, JobStatus::Crashed);
    EXPECT_EQ(back.error, r.error);
    EXPECT_EQ(back.termSignal, 11);
    EXPECT_EQ(back.exitCode, -1);
    EXPECT_EQ(back.attempts, 3);
    EXPECT_EQ(back.wallMs, r.wallMs);
    EXPECT_EQ(serializeJobResult(back), text);
}

TEST(Wire, RejectsTruncationTamperingAndVersionSkew)
{
    const std::string text = serializeJobResult(sampleResult());
    JobResult out;

    // Truncated anywhere: mid-payload and mid-header.
    EXPECT_EQ(decodeJobResult(text.substr(0, text.size() / 2), out),
              WireDecode::Corrupt);
    EXPECT_EQ(decodeJobResult(text.substr(0, 10), out),
              WireDecode::Corrupt);
    EXPECT_EQ(decodeJobResult("", out), WireDecode::Corrupt);

    // One flipped payload byte fails the checksum.
    std::string tampered = text;
    tampered[tampered.size() / 2] ^= 1;
    EXPECT_EQ(decodeJobResult(tampered, out), WireDecode::Corrupt);

    // A different format version is skew, not corruption.
    std::string skewed = text;
    const std::size_t v = skewed.find(" v1 ");
    ASSERT_NE(v, std::string::npos);
    skewed.replace(v, 4, " v9 ");
    EXPECT_EQ(decodeJobResult(skewed, out), WireDecode::VersionSkew);

    // A well-formed record of another kind is not a job result.
    EXPECT_EQ(decodeJobResult(serializeStats(SimStats{}), out),
              WireDecode::Corrupt);
}

TEST(Wire, SimJobRoundTripsByteIdentically)
{
    SimJob job;
    job.tag = "rt\njob, \"hostile\"";
    job.cfg = tinyCfg();
    job.cfg.numSms = 3;
    job.app = tinyApp("round\ntrip");
    job.app.divPattern = { 1.0, 0.625, 0.25 };
    job.app.randomMem = true;
    job.salt = 77;
    job.concurrent = true;

    const std::string text = serializeJob(job);
    SimJob back;
    ASSERT_EQ(parseJob(text, back), WireDecode::Ok);
    EXPECT_EQ(back.tag, job.tag);
    EXPECT_EQ(canonicalText(back), canonicalText(job));
    EXPECT_EQ(jobKey(back), jobKey(job));
    EXPECT_EQ(serializeJob(back), text);
}

// ---- subprocess runner ------------------------------------------------

TEST(Subprocess, CapturesExitCodeStdinAndStdout)
{
    SubprocessResult r = runSubprocess(
        { "/bin/sh", "-c", "cat; exit 3" }, "fed\nthrough\n", 30.0);
    EXPECT_EQ(r.exitCode, 3);
    EXPECT_EQ(r.termSignal, 0);
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(r.stdoutText, "fed\nthrough\n");
    EXPECT_FALSE(r.exitedCleanly());

    SubprocessResult ok =
        runSubprocess({ "/bin/sh", "-c", "exit 0" }, "", 30.0);
    EXPECT_TRUE(ok.exitedCleanly());
}

TEST(Subprocess, ReportsFatalSignal)
{
    SubprocessResult r = runSubprocess(
        { "/bin/sh", "-c", "kill -s SEGV $$" }, "", 30.0);
    EXPECT_EQ(r.termSignal, SIGSEGV);
    EXPECT_FALSE(r.timedOut);
    EXPECT_FALSE(r.exitedCleanly());
}

TEST(Subprocess, BoundsStderrToItsTail)
{
    SubprocessResult r = runSubprocess(
        { "/bin/sh", "-c",
          "i=0; while [ $i -lt 400 ]; do echo 0123456789abcdef 1>&2; "
          "i=$((i+1)); done" },
        "", 30.0, /*tailBytes=*/256);
    EXPECT_LE(r.stderrTail.size(), 256u);
    ASSERT_GE(r.stderrTail.size(), 17u);
    EXPECT_EQ(r.stderrTail.substr(r.stderrTail.size() - 17),
              "0123456789abcdef\n");
}

TEST(Subprocess, TimeoutKillsTheChild)
{
    SubprocessResult r =
        runSubprocess({ "/bin/sh", "-c", "sleep 30" }, "", 0.5);
    EXPECT_TRUE(r.timedOut);
    EXPECT_TRUE(r.termSignal == SIGTERM || r.termSignal == SIGKILL)
        << "termSignal " << r.termSignal;
}

TEST(Subprocess, ExecFailureReportsExit127)
{
    SubprocessResult r = runSubprocess(
        { "/nonexistent/scsim-no-such-binary" }, "", 30.0);
    EXPECT_EQ(r.exitCode, 127);
    EXPECT_EQ(r.termSignal, 0);
}

// ---- crash injection hooks --------------------------------------------

TEST_F(IsolationTest, CrashInjectorMatchesByTokenAndResets)
{
    FaultInjector &fi = FaultInjector::instance();
    EXPECT_EQ(fi.crashSignalFor("crash-micro-k0"), 0);

    fi.raiseSignalInKernel("crash-micro", SIGSEGV);
    EXPECT_EQ(fi.crashSignalFor("crash-micro-k0"), SIGSEGV);
    EXPECT_EQ(fi.crashSignalFor("other-kernel"), 0);

    fi.reset();
    EXPECT_EQ(fi.crashSignalFor("crash-micro-k0"), 0);
}

TEST_F(IsolationTest, ArmCrashFromEnvParsesTheThreeForms)
{
    FaultInjector &fi = FaultInjector::instance();
    EXPECT_TRUE(fi.armCrashFromEnv("tok"));
    EXPECT_EQ(fi.crashSignalFor("tok-k0"), SIGSEGV);

    EXPECT_TRUE(fi.armCrashFromEnv("tok:abort"));
    EXPECT_EQ(fi.crashSignalFor("tok-k0"), SIGABRT);

    EXPECT_TRUE(fi.armCrashFromEnv("tok:6"));
    EXPECT_EQ(fi.crashSignalFor("tok-k0"), 6);

    EXPECT_FALSE(fi.armCrashFromEnv(nullptr));
    EXPECT_FALSE(fi.armCrashFromEnv(""));
    EXPECT_FALSE(fi.armCrashFromEnv(":abort"));
}

TEST_F(IsolationTest, CrashMicroIsARunnableKernel)
{
    const KernelDesc kd = makeCrashMicro();
    EXPECT_EQ(kd.name, "crash-micro");
    EXPECT_GT(kd.numBlocks, 0);
    EXPECT_GT(kd.warpsPerBlock, 0);
    EXPECT_FALSE(kd.shapes.empty());
}

// ---- run-job IPC against the real CLI ---------------------------------

TEST_F(IsolationTest, RunJobProtocolMatchesInProcessExecution)
{
    SimJob job;
    job.tag = "proto";
    job.cfg = tinyCfg();
    job.app = tinyApp("proto-app");

    // Reference: the same job through the in-process engine.
    SweepSpec spec;
    spec.jobs.push_back(job);
    SweepOptions inproc;
    inproc.jobs = 1;
    SweepResult ref = SweepEngine(inproc).run(spec);
    ASSERT_EQ(ref.results[0].status, JobStatus::Ok);

    SubprocessResult sub = runSubprocess(
        { SCSIM_CLI_PATH, "run-job" }, serializeJob(job), 120.0);
    ASSERT_TRUE(sub.exitedCleanly())
        << "exit " << sub.exitCode << " signal " << sub.termSignal
        << "\n" << sub.stderrTail;

    JobResult r;
    ASSERT_EQ(decodeJobResult(sub.stdoutText, r), WireDecode::Ok);
    EXPECT_EQ(r.status, JobStatus::Ok);
    EXPECT_EQ(r.error, "");
    EXPECT_EQ(r.key, jobKey(job));
    EXPECT_EQ(serializeStatsPayload(r.stats),
              serializeStatsPayload(ref.results[0].stats));
}

TEST_F(IsolationTest, IsolatedSweepMatchesInProcessManifests)
{
    const SweepSpec spec = threeJobSpec();

    SweepOptions inproc;
    inproc.jobs = 1;
    SweepResult ref = SweepEngine(inproc).run(spec);
    ASSERT_TRUE(ref.allOk());

    SweepResult iso = SweepEngine(isolatedOpts(2)).run(spec);
    ASSERT_TRUE(iso.allOk());
    EXPECT_EQ(iso.executed, 3u);
    for (const JobResult &r : iso.results)
        EXPECT_EQ(r.attempts, 1);

    EXPECT_EQ(jsonManifest(spec, iso), jsonManifest(spec, ref));
    EXPECT_EQ(csvManifest(spec, iso), csvManifest(spec, ref));
}

TEST_F(IsolationTest, IsolatedSweepContainsAnInjectedCrash)
{
    const SweepSpec spec = threeJobSpec();
    // Workers inherit the environment; only kernels of "appb" match.
    setenv("SCSIM_FAULT_CRASH", "appb", 1);

    SweepResult res = SweepEngine(isolatedOpts(2)).run(spec);

    ASSERT_EQ(res.results.size(), 3u);
    EXPECT_EQ(res.results[0].status, JobStatus::Ok);
    EXPECT_EQ(res.results[2].status, JobStatus::Ok);

    const JobResult &crashed = res.results[1];
    EXPECT_EQ(crashed.status, JobStatus::Crashed);
    EXPECT_TRUE(crashed.termSignal == SIGSEGV || crashed.exitCode != 0)
        << "signal " << crashed.termSignal << " exit "
        << crashed.exitCode;
    EXPECT_NE(crashed.error, "");
    EXPECT_EQ(crashed.attempts, 2);  // crashAttempts consumed
    EXPECT_EQ(res.failed, 1u);
    EXPECT_FALSE(res.allOk());

    const std::string json = jsonManifest(spec, res);
    EXPECT_NE(json.find("\"status\": \"crashed\""), std::string::npos);
}

TEST_F(IsolationTest, CrashManifestIdenticalAcrossWorkerCounts)
{
    const SweepSpec spec = threeJobSpec();
    setenv("SCSIM_FAULT_CRASH", "appc", 1);

    SweepResult one = SweepEngine(isolatedOpts(1)).run(spec);
    SweepResult three = SweepEngine(isolatedOpts(3)).run(spec);

    EXPECT_EQ(one.results[2].status, JobStatus::Crashed);
    EXPECT_EQ(jsonManifest(spec, one), jsonManifest(spec, three));
    EXPECT_EQ(csvManifest(spec, one), csvManifest(spec, three));
}

// ---- journal and resume -----------------------------------------------

TEST_F(IsolationTest, JournalRecordsEveryFinishedJob)
{
    const SweepSpec spec = threeJobSpec();
    const std::string dir = freshDir("journal_basic");
    const std::string path = dir + "/sweep.journal";

    SweepOptions opts;
    opts.jobs = 1;
    opts.journalPath = path;
    SweepResult res = SweepEngine(opts).run(spec);
    ASSERT_TRUE(res.allOk());

    JournalContents j = readJournal(path);
    EXPECT_EQ(j.specHash, sweepSpecHash(spec));
    EXPECT_EQ(j.jobCount, 3u);
    EXPECT_EQ(j.dropped, 0u);
    ASSERT_EQ(j.records.size(), 3u);
    for (const JournalRecord &rec : j.records) {
        ASSERT_LT(rec.index, spec.jobs.size());
        EXPECT_EQ(rec.tag, spec.jobs[rec.index].tag);
        EXPECT_EQ(rec.result.status, JobStatus::Ok);
        EXPECT_EQ(rec.result.key, res.results[rec.index].key);
    }
    std::filesystem::remove_all(dir);
}

TEST_F(IsolationTest, SpecHashPinsJobIdentityOrderAndCount)
{
    SweepSpec spec = threeJobSpec();
    const std::uint64_t h = sweepSpecHash(spec);

    SweepSpec reordered = spec;
    std::swap(reordered.jobs[0], reordered.jobs[1]);
    EXPECT_NE(sweepSpecHash(reordered), h);

    SweepSpec edited = spec;
    edited.jobs[2].salt = 1;
    EXPECT_NE(sweepSpecHash(edited), h);

    SweepSpec shorter = spec;
    shorter.jobs.pop_back();
    EXPECT_NE(sweepSpecHash(shorter), h);
}

TEST_F(IsolationTest, ResumeFromTruncatedJournalIsByteIdentical)
{
    const SweepSpec spec = threeJobSpec();
    const std::string dir = freshDir("journal_resume");
    const std::string path = dir + "/sweep.journal";

    SweepOptions opts;
    opts.jobs = 1;
    opts.journalPath = path;
    SweepResult clean = SweepEngine(opts).run(spec);
    ASSERT_TRUE(clean.allOk());
    const std::string jsonClean = jsonManifest(spec, clean);
    const std::string csvClean = csvManifest(spec, clean);

    // Simulate a SIGKILL mid-append: keep the first record intact,
    // cut the second record in half, lose the third entirely.
    const std::string full = slurp(path);
    const std::size_t rec1 = full.find("record ");
    ASSERT_NE(rec1, std::string::npos);
    const std::size_t rec2 = full.find("record ", rec1 + 1);
    ASSERT_NE(rec2, std::string::npos);
    spew(path, full.substr(0, rec2 + 24));

    JournalContents j = readJournal(path);
    EXPECT_EQ(j.records.size(), 1u);
    EXPECT_GE(j.dropped, 1u);

    SweepOptions resume = opts;
    resume.resumePath = path;
    SweepResult resumed = SweepEngine(resume).run(spec);
    EXPECT_EQ(resumed.resumed, 1u);
    EXPECT_EQ(resumed.executed, 3u);  // 1 adopted + 2 re-run

    EXPECT_EQ(jsonManifest(spec, resumed), jsonClean);
    EXPECT_EQ(csvManifest(spec, resumed), csvClean);

    // The rewritten journal is complete and clean again: the damaged
    // tail was scrubbed, not left stranded mid-file.
    JournalContents after = readJournal(path);
    EXPECT_EQ(after.records.size(), 3u);
    EXPECT_EQ(after.dropped, 0u);
    std::filesystem::remove_all(dir);
}

TEST_F(IsolationTest, ResumeFromCompleteJournalRunsNothing)
{
    const SweepSpec spec = threeJobSpec();
    const std::string dir = freshDir("journal_complete");
    const std::string path = dir + "/sweep.journal";

    SweepOptions opts;
    opts.jobs = 2;
    opts.journalPath = path;
    SweepResult clean = SweepEngine(opts).run(spec);
    ASSERT_TRUE(clean.allOk());

    SweepOptions resume = opts;
    resume.resumePath = path;
    SweepResult resumed = SweepEngine(resume).run(spec);
    EXPECT_EQ(resumed.resumed, 3u);
    EXPECT_EQ(resumed.cacheHits, 0u);
    EXPECT_EQ(jsonManifest(spec, resumed), jsonManifest(spec, clean));
    std::filesystem::remove_all(dir);
}

TEST_F(IsolationTest, ResumeRejectsAJournalFromAnotherSweep)
{
    const SweepSpec spec = threeJobSpec();
    const std::string dir = freshDir("journal_mismatch");
    const std::string path = dir + "/sweep.journal";

    SweepOptions opts;
    opts.jobs = 1;
    opts.journalPath = path;
    ASSERT_TRUE(SweepEngine(opts).run(spec).allOk());

    SweepSpec other = threeJobSpec();
    other.jobs[1].app = tinyApp("different");
    SweepOptions resume;
    resume.jobs = 1;
    resume.resumePath = path;
    EXPECT_THROW_WITH(SweepEngine(resume).run(other), ConfigError,
                      "different sweep");
    std::filesystem::remove_all(dir);
}

TEST_F(IsolationTest, ResumeAfterCrashDoesNotReRunAdoptedJobs)
{
    const SweepSpec spec = threeJobSpec();
    const std::string dir = freshDir("journal_crash_resume");
    const std::string path = dir + "/sweep.journal";

    setenv("SCSIM_FAULT_CRASH", "appb", 1);
    SweepOptions opts = isolatedOpts(1);
    opts.journalPath = path;
    SweepResult first = SweepEngine(opts).run(spec);
    EXPECT_EQ(first.results[1].status, JobStatus::Crashed);
    const std::string jsonFirst = jsonManifest(spec, first);

    // Resume with the fault disarmed: every outcome — including the
    // crash — was journaled, so nothing re-runs and the crash record
    // survives verbatim.
    unsetenv("SCSIM_FAULT_CRASH");
    SweepOptions resume = opts;
    resume.resumePath = path;
    SweepResult resumed = SweepEngine(resume).run(spec);
    EXPECT_EQ(resumed.resumed, 3u);
    EXPECT_EQ(resumed.results[1].status, JobStatus::Crashed);
    EXPECT_EQ(jsonManifest(spec, resumed), jsonFirst);
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace scsim::runner
