/** @file Tests for collector units and the operand collector. */

#include <gtest/gtest.h>

#include "core/operand_collector.hh"

namespace scsim {
namespace {

class CollectorTest : public ::testing::Test
{
  protected:
    CollectorTest() : arb_(2), oc_(2) {}
    RegFileArbiter arb_;
    OperandCollector oc_;
};

TEST_F(CollectorTest, AllocateEnqueuesDistinctReads)
{
    Instruction fma = Instruction::alu(Opcode::FMA, 0, 0, 1, 2);
    int cu = oc_.allocate(/*warp=*/0, fma, arb_, 5);
    ASSERT_GE(cu, 0);
    EXPECT_EQ(oc_.freeCount(), 1);
    EXPECT_FALSE(oc_.unit(cu).ready());
    // r0 and r2 -> bank 0, r1 -> bank 1 for slot 0.
    EXPECT_EQ(arb_.readQueueLen(0), 2);
    EXPECT_EQ(arb_.readQueueLen(1), 1);
}

TEST_F(CollectorTest, DuplicateRegistersShareOneRead)
{
    Instruction sq = Instruction::alu(Opcode::FMUL, 1, 3, 3);
    int cu = oc_.allocate(0, sq, arb_, 0);
    ASSERT_GE(cu, 0);
    EXPECT_EQ(arb_.readQueueLen(0) + arb_.readQueueLen(1), 1);

    ArbGrants g;
    arb_.arbitrate(g);
    ASSERT_EQ(g.reads.size(), 1u);
    // The single grant fills both operand slots.
    EXPECT_EQ(g.reads[0].operandMask, 0b011u);
    oc_.operandArrived(cu, g.reads[0].operandMask);
    EXPECT_TRUE(oc_.unit(cu).ready());
}

TEST_F(CollectorTest, ReadyAfterAllOperandsArrive)
{
    Instruction fma = Instruction::alu(Opcode::FMA, 0, 0, 1, 2);
    int cu = oc_.allocate(0, fma, arb_, 0);
    ArbGrants g;
    // Two arbitration rounds drain the conflicting bank.
    arb_.arbitrate(g);
    for (const auto &r : g.reads)
        oc_.operandArrived(r.cu, r.operandMask);
    EXPECT_FALSE(oc_.unit(cu).ready());
    g.clear();
    arb_.arbitrate(g);
    for (const auto &r : g.reads)
        oc_.operandArrived(r.cu, r.operandMask);
    EXPECT_TRUE(oc_.unit(cu).ready());
}

TEST_F(CollectorTest, ZeroSourceInstructionIsImmediatelyReady)
{
    Instruction mov = Instruction::alu(Opcode::MOV, 4);
    int cu = oc_.allocate(0, mov, arb_, 0);
    ASSERT_GE(cu, 0);
    EXPECT_TRUE(oc_.unit(cu).ready());
    EXPECT_FALSE(arb_.anyPending());
}

TEST_F(CollectorTest, AllocateFailsWhenFull)
{
    Instruction i = Instruction::alu(Opcode::IADD, 0, 1);
    EXPECT_GE(oc_.allocate(0, i, arb_, 0), 0);
    EXPECT_GE(oc_.allocate(1, i, arb_, 0), 0);
    EXPECT_FALSE(oc_.hasFree());
    EXPECT_EQ(oc_.allocate(2, i, arb_, 0), -1);
}

TEST_F(CollectorTest, ReleaseRecycles)
{
    Instruction i = Instruction::alu(Opcode::MOV, 4);
    int cu = oc_.allocate(0, i, arb_, 0);
    oc_.release(cu);
    EXPECT_EQ(oc_.freeCount(), 2);
    EXPECT_GE(oc_.allocate(1, i, arb_, 0), 0);
}

TEST_F(CollectorTest, BanksIdleQuery)
{
    Instruction i = Instruction::alu(Opcode::FADD, 0, 1, 2);
    EXPECT_TRUE(oc_.banksIdle(0, i, arb_));
    oc_.allocate(0, i, arb_, 0);   // reads now queued
    EXPECT_FALSE(oc_.banksIdle(0, i, arb_));
}

TEST_F(CollectorTest, SlotChangesBankMapping)
{
    // Same instruction on an odd slot flips the banks.
    Instruction i = Instruction::alu(Opcode::FADD, 0, 2, 4);
    oc_.allocate(/*warp=*/1, i, arb_, 0);
    EXPECT_EQ(arb_.readQueueLen(1), 2);   // (2+1)%2 = (4+1)%2 = 1
    EXPECT_EQ(arb_.readQueueLen(0), 0);
}

TEST_F(CollectorTest, ResetFreesEverything)
{
    Instruction i = Instruction::alu(Opcode::IADD, 0, 1);
    oc_.allocate(0, i, arb_, 0);
    oc_.reset();
    EXPECT_EQ(oc_.freeCount(), 2);
    EXPECT_FALSE(oc_.unit(0).busy);
}

TEST_F(CollectorTest, DeathOnBadRelease)
{
    EXPECT_DEATH(oc_.release(0), "free CU");
}

TEST_F(CollectorTest, DeathOnDuplicateOperandArrival)
{
    Instruction i = Instruction::alu(Opcode::IADD, 0, 1);
    int cu = oc_.allocate(0, i, arb_, 0);
    oc_.operandArrived(cu, 1u);
    EXPECT_DEATH(oc_.operandArrived(cu, 1u), "twice");
}

} // namespace
} // namespace scsim
