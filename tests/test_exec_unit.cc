/** @file Tests for execution pipes. */

#include <gtest/gtest.h>

#include "core/exec_unit.hh"

namespace scsim {
namespace {

TEST(ExecPipe, InitiationIntervalGatesAcceptance)
{
    ExecPipe pipe(UnitKind::SP, 2, 4);
    EXPECT_TRUE(pipe.canAccept(0));
    pipe.accept(0);
    EXPECT_FALSE(pipe.canAccept(1));
    EXPECT_TRUE(pipe.canAccept(2));
    pipe.accept(2);
    EXPECT_FALSE(pipe.canAccept(3));
}

TEST(ExecPipe, ResetFrees)
{
    ExecPipe pipe(UnitKind::SFU, 8, 20);
    pipe.accept(10);
    pipe.reset();
    EXPECT_TRUE(pipe.canAccept(0));
}

TEST(PipeSet, CountsScaleWithSchedulers)
{
    GpuConfig cfg = GpuConfig::volta();
    PipeSet one(cfg, 1), four(cfg, 4);
    EXPECT_EQ(four.pipes().size(), 4 * one.pipes().size());
}

TEST(PipeSet, FindFreeByKind)
{
    GpuConfig cfg = GpuConfig::volta();
    PipeSet pipes(cfg, 1);
    ExecPipe *sp = pipes.findFree(UnitKind::SP, 0);
    ASSERT_NE(sp, nullptr);
    EXPECT_EQ(sp->kind(), UnitKind::SP);
    sp->accept(0);
    // Only one SP pipe per scheduler in the Volta model.
    EXPECT_EQ(pipes.findFree(UnitKind::SP, 1), nullptr);
    EXPECT_NE(pipes.findFree(UnitKind::SFU, 1), nullptr);
    EXPECT_NE(pipes.findFree(UnitKind::LdSt, 1), nullptr);
    EXPECT_NE(pipes.findFree(UnitKind::Tensor, 1), nullptr);
}

TEST(PipeSet, PooledPipesServeBursts)
{
    GpuConfig cfg = GpuConfig::volta();
    PipeSet pipes(cfg, 4);   // fully-connected pool
    int accepted = 0;
    while (ExecPipe *p = pipes.findFree(UnitKind::SP, 0)) {
        p->accept(0);
        ++accepted;
    }
    EXPECT_EQ(accepted, 4);
}

TEST(PipeSet, LatencyFromConfig)
{
    GpuConfig cfg = GpuConfig::volta();
    cfg.spLatency = 9;
    PipeSet pipes(cfg, 1);
    EXPECT_EQ(pipes.findFree(UnitKind::SP, 0)->latency(), 9);
}

} // namespace
} // namespace scsim
