/** @file End-to-end GpuSim integration tests and cross-cutting
 *  properties (determinism, idle-skip equivalence). */

#include <gtest/gtest.h>

#include "expect_throw.hh"
#include "gpu/gpu_sim.hh"
#include "workloads/microbench.hh"
#include "workloads/suite.hh"

namespace scsim {
namespace {

GpuConfig
smallVolta(int sms = 2)
{
    GpuConfig cfg = GpuConfig::volta();
    cfg.numSms = sms;
    return cfg;
}

TEST(GpuSim, CompletesAllBlocksAcrossSms)
{
    GpuConfig cfg = smallVolta(4);
    KernelDesc k = makeFmaMicro(FmaLayout::Baseline, 64, 40);
    SimStats s = simulate(cfg, k);
    EXPECT_EQ(s.blocksCompleted, 40u);
    EXPECT_EQ(s.warpsCompleted, 40u * 8u);
    EXPECT_EQ(s.instructions, 40u * 8u * 66u);
    EXPECT_GT(s.ipc(), 0.0);
}

TEST(GpuSim, MultiKernelAppRunsSequentially)
{
    GpuConfig cfg = smallVolta(2);
    Application app;
    app.name = "two-kernels";
    app.kernels.push_back(makeFmaMicro(FmaLayout::Baseline, 32, 4));
    app.kernels.push_back(makeFmaMicro(FmaLayout::Balanced, 32, 4));
    SimStats s = simulate(cfg, app);
    EXPECT_EQ(s.blocksCompleted, 8u);

    Cycle lone = simulate(cfg, app.kernels[0]).cycles;
    EXPECT_GT(s.cycles, lone);
}

TEST(GpuSim, DeterministicAcrossRuns)
{
    GpuConfig cfg = smallVolta(2);
    cfg.assign = AssignPolicy::Shuffle;
    Application app = buildApp(findApp("tpcU-q5", 0.1));
    SimStats a = simulate(cfg, app);
    SimStats b = simulate(cfg, app);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.rfReads, b.rfReads);
    EXPECT_EQ(a.issuePerScheduler, b.issuePerScheduler);
}

TEST(GpuSim, SeedChangesShuffleOutcome)
{
    GpuConfig cfg = smallVolta(1);
    cfg.assign = AssignPolicy::Shuffle;
    KernelDesc k = makeImbalanceMicro(8.0, 128, 6);
    Cycle a = simulate(cfg, k).cycles;
    cfg.seed = 999;
    Cycle b = simulate(cfg, k).cycles;
    EXPECT_NE(a, b);
}

/** Idle-cycle skipping must be an exact optimization. */
class IdleSkipEquivalence
    : public ::testing::TestWithParam<SchedulerPolicy>
{};

TEST_P(IdleSkipEquivalence, SameResultWithAndWithoutSkip)
{
    GpuConfig cfg = smallVolta(2);
    cfg.scheduler = GetParam();
    Application app = buildApp(findApp("rod-nn", 0.08));
    cfg.enableIdleSkip = true;
    SimStats skip = simulate(cfg, app);
    cfg.enableIdleSkip = false;
    SimStats noskip = simulate(cfg, app);
    EXPECT_EQ(skip.cycles, noskip.cycles);
    EXPECT_EQ(skip.instructions, noskip.instructions);
    EXPECT_EQ(skip.rfReads, noskip.rfReads);
    EXPECT_EQ(skip.rfBankConflictCycles, noskip.rfBankConflictCycles);
}

INSTANTIATE_TEST_SUITE_P(Schedulers, IdleSkipEquivalence,
                         ::testing::Values(SchedulerPolicy::LRR,
                                           SchedulerPolicy::GTO,
                                           SchedulerPolicy::RBA));

TEST(GpuSim, RbaLatencyZeroMatchesRingDepthOne)
{
    GpuConfig cfg = smallVolta(1);
    cfg.scheduler = SchedulerPolicy::RBA;
    KernelDesc k = makeConflictMicro(0, 512, 8);
    cfg.rbaScoreLatency = 0;
    Cycle c0 = simulate(cfg, k).cycles;
    EXPECT_GT(c0, 0u);
    // Large staleness still runs to completion and stays close.
    cfg.rbaScoreLatency = 20;
    Cycle c20 = simulate(cfg, k).cycles;
    EXPECT_GT(c20, 0u);
    EXPECT_LT(static_cast<double>(c20) / static_cast<double>(c0), 1.25);
}

TEST(GpuSim, MoreSmsRunFaster)
{
    KernelDesc k = makeFmaMicro(FmaLayout::Baseline, 128, 32);
    Cycle one = simulate(smallVolta(1), k).cycles;
    Cycle four = simulate(smallVolta(4), k).cycles;
    EXPECT_LT(four, one);
    EXPECT_GT(four, one / 8);
}

TEST(GpuSim, FullyConnectedNeverSlowerOnImbalance)
{
    KernelDesc k = makeFmaMicro(FmaLayout::Unbalanced, 512, 8);
    Cycle part = simulate(smallVolta(1), k).cycles;
    GpuConfig fc = smallVolta(1);
    fc.subCores = 1;
    Cycle full = simulate(fc, k).cycles;
    EXPECT_LT(full, part);
}

TEST(GpuSim, AllAssignPoliciesRunEveryWorkload)
{
    KernelDesc k = makeImbalanceMicro(4.0, 64, 8);
    for (AssignPolicy p : { AssignPolicy::RoundRobin, AssignPolicy::SRR,
                            AssignPolicy::Shuffle, AssignPolicy::HashSRR,
                            AssignPolicy::HashShuffle }) {
        GpuConfig cfg = smallVolta(1);
        cfg.assign = p;
        SimStats s = simulate(cfg, k);
        EXPECT_EQ(s.blocksCompleted, 8u) << toString(p);
    }
}

TEST(GpuSim, HashSrrMatchesFunctionalSrrExactly)
{
    KernelDesc k = makeImbalanceMicro(6.0, 128, 10);
    GpuConfig a = smallVolta(1);
    a.assign = AssignPolicy::SRR;
    GpuConfig b = smallVolta(1);
    b.assign = AssignPolicy::HashSRR;
    EXPECT_EQ(simulate(a, k).cycles, simulate(b, k).cycles);
}

TEST(GpuSim, BankStealingRunsAndStaysClose)
{
    GpuConfig cfg = smallVolta(1);
    KernelDesc k = makeConflictMicro(1, 512, 8);
    Cycle base = simulate(cfg, k).cycles;
    cfg.bankStealing = true;
    Cycle steal = simulate(cfg, k).cycles;
    double ratio = static_cast<double>(steal)
        / static_cast<double>(base);
    // Paper: <1% average effect with only 2 CUs per sub-core.
    EXPECT_GT(ratio, 0.9);
    EXPECT_LT(ratio, 1.1);
}

TEST(GpuSim, RfTraceCollectsSamples)
{
    GpuConfig cfg = smallVolta(1);
    cfg.rfTraceEnable = true;
    cfg.rfTraceWindow = 32;
    KernelDesc k = makeConflictMicro(1, 256, 4);
    SimStats s = simulate(cfg, k);
    EXPECT_GT(s.rfReadTrace.samples().size(), 2u);
    EXPECT_GT(s.rfReadTrace.average(), 0.0);
    // Peak bandwidth is 8 banks x 32 lanes.
    for (double x : s.rfReadTrace.samples())
        EXPECT_LE(x, 256.0);
}

TEST(GpuSim, StatsAccountingConsistency)
{
    GpuConfig cfg = smallVolta(2);
    Application app = buildApp(findApp("ply-atax", 0.08));
    SimStats s = simulate(cfg, app);
    EXPECT_EQ(s.threadInstructions, s.instructions * 32u);
    EXPECT_GE(s.l1Accesses, s.l1Misses);
    EXPECT_GE(s.l2Accesses, s.l2Misses);
    EXPECT_EQ(s.issueSlotsUsed, s.instructions);
    std::uint64_t perSchedTotal = 0;
    for (const auto &sm : s.issuePerScheduler)
        for (std::uint64_t n : sm)
            perSchedTotal += n;
    EXPECT_EQ(perSchedTotal, s.instructions);
}

TEST(GpuSimThrow, MaxCyclesThrowsHangError)
{
    GpuConfig cfg = smallVolta(1);
    cfg.maxCycles = 100;
    KernelDesc k = makeFmaMicro(FmaLayout::Baseline, 4096, 8);
    EXPECT_THROW_WITH(simulate(cfg, k), HangError,
                      "exceeded maxCycles");
}

TEST(GpuSimThrow, OversizedBlockThrows)
{
    GpuConfig cfg = smallVolta(1);
    KernelDesc k = makeFmaMicro(FmaLayout::Baseline, 16, 1);
    k.regsPerThread = 256;
    k.warpsPerBlock = 16;
    k.shapeOfWarp.assign(16, 0);
    EXPECT_THROW_WITH(simulate(cfg, k), WorkloadError, "reg bytes");
}

} // namespace
} // namespace scsim
