/**
 * @file
 * Fault-tolerance tests: the fault-injection harness, cache checksum
 * and quarantine behavior, the forward-progress watchdog, and sweep
 * failure containment (one bad job must not take out a sweep).
 *
 * Labeled `robustness` in CTest; the fixture disarms the process-wide
 * FaultInjector around every test.
 */

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_inject.hh"
#include "expect_throw.hh"
#include "gpu/gpu_sim.hh"
#include "runner/job_key.hh"
#include "runner/report.hh"
#include "runner/result_cache.hh"
#include "runner/sweep_engine.hh"
#include "runner/worker_pool.hh"
#include "workloads/microbench.hh"

namespace scsim::runner {
namespace {

AppSpec
tinyApp(const std::string &name, int blocks = 4)
{
    AppSpec app;
    app.name = name;
    app.suite = "test";
    app.numBlocks = blocks;
    app.warpsPerBlock = 4;
    app.baseInsts = 60;
    app.footprintMB = 1;
    return app;
}

GpuConfig
tinyCfg()
{
    GpuConfig cfg = GpuConfig::volta();
    cfg.numSms = 2;
    return cfg;
}

/** A job whose kernels cannot fit the SM: fails inside GpuSim::run. */
AppSpec
oversizedApp(const std::string &name, int blocks = 4)
{
    AppSpec app = tinyApp(name, blocks);
    app.regsPerThread = 256;
    app.warpsPerBlock = 16;
    return app;
}

std::string
freshDir(const std::string &leaf)
{
    std::string dir = testing::TempDir() + "scsim_" + leaf;
    std::filesystem::remove_all(dir);
    return dir;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

class RobustnessTest : public ::testing::Test
{
  protected:
    void SetUp() override { FaultInjector::instance().reset(); }
    void TearDown() override { FaultInjector::instance().reset(); }
};

// ---- serialization hardening -----------------------------------------

TEST_F(RobustnessTest, KernelSpanHostileNamesRoundTrip)
{
    SimStats s;
    s.cycles = 42;
    s.kernelSpans.emplace_back("evil\nname with spaces", 100);
    s.kernelSpans.emplace_back("back\\slash\rand cr", 200);

    SimStats back;
    ASSERT_TRUE(deserializeStats(serializeStats(s), back));
    ASSERT_EQ(back.kernelSpans.size(), 2u);
    EXPECT_EQ(back.kernelSpans[0].first, "evil\nname with spaces");
    EXPECT_EQ(back.kernelSpans[0].second, 100u);
    EXPECT_EQ(back.kernelSpans[1].first, "back\\slash\rand cr");
    EXPECT_EQ(serializeStats(back), serializeStats(s));
}

TEST_F(RobustnessTest, ChecksumDetectsPayloadTampering)
{
    SimStats s;
    s.cycles = 12345;
    std::string text = serializeStats(s);
    ASSERT_TRUE(deserializeStats(text, s));

    std::string tampered = text;
    tampered.replace(tampered.find("12345"), 5, "54321");
    SimStats out;
    EXPECT_EQ(decodeStats(tampered, out), StatsDecode::Corrupt);
}

// ---- fault injector ---------------------------------------------------

TEST_F(RobustnessTest, InjectedCacheWriteFaultThrows)
{
    std::string dir = freshDir("inject_write");
    ResultCache cache(dir);
    SimStats s;
    s.cycles = 7;

    FaultInjector::instance().armCacheWriteFaults(1);
    EXPECT_THROW_WITH(cache.store(1, s), CacheError,
                      "injected cache write fault");
    EXPECT_EQ(FaultInjector::instance().cacheWriteAttempts(), 1u);

    // The next attempt (2nd) is past the armed range and succeeds.
    cache.store(1, s);
    EXPECT_EQ(FaultInjector::instance().cacheWriteAttempts(), 2u);
    std::filesystem::remove_all(dir);
}

TEST_F(RobustnessTest, InjectedCacheReadFaultThrows)
{
    std::string dir = freshDir("inject_read");
    SimStats s;
    s.cycles = 7;
    {
        ResultCache cache(dir);
        cache.store(1, s);
    }
    ResultCache fresh(dir);
    FaultInjector::instance().armCacheReadFaults(1);
    SimStats out;
    EXPECT_THROW_WITH(fresh.lookup(1, out), CacheError,
                      "injected cache read fault");
    EXPECT_TRUE(fresh.lookup(1, out));   // second attempt clean
    EXPECT_EQ(out.cycles, 7u);
    std::filesystem::remove_all(dir);
}

TEST_F(RobustnessTest, MemoryOnlyCacheNeverTouchesInjector)
{
    ResultCache cache;   // no dir: disk faults cannot apply
    SimStats s;
    s.cycles = 3;
    FaultInjector::instance().armCacheWriteFaults(1, 1000);
    FaultInjector::instance().armCacheReadFaults(1, 1000);
    cache.store(9, s);
    SimStats out;
    EXPECT_TRUE(cache.lookup(9, out));
    EXPECT_EQ(FaultInjector::instance().cacheWriteAttempts(), 0u);
    EXPECT_EQ(FaultInjector::instance().cacheReadAttempts(), 0u);
}

// ---- cache integrity --------------------------------------------------

TEST_F(RobustnessTest, CorruptEntryIsQuarantinedAndRerun)
{
    std::string dir = freshDir("quarantine");
    SweepSpec spec;
    spec.add("only", tinyCfg(), tinyApp("solo"));

    SweepEngine first{ SweepOptions{ .jobs = 1, .cacheDir = dir } };
    SweepResult cold = first.run(spec);
    ASSERT_TRUE(cold.allOk());

    // Hand-corrupt the payload behind the checksum's back.
    std::string path =
        dir + "/" + keyToHex(cold.results[0].key) + ".stats";
    std::string text = slurp(path);
    ASSERT_FALSE(text.empty());
    {
        std::ofstream out(path, std::ios::trunc);
        text[text.size() / 2] ^= 0x20;
        out << text;
    }

    SweepEngine second{ SweepOptions{ .jobs = 1, .cacheDir = dir } };
    SweepResult warm = second.run(spec);
    EXPECT_TRUE(warm.allOk());
    EXPECT_EQ(warm.cacheHits, 0u);      // corrupt entry did not hit
    EXPECT_EQ(warm.executed, 1u);       // the job re-ran
    EXPECT_EQ(second.cache().quarantined(), 1u);
    EXPECT_TRUE(std::filesystem::exists(
        dir + "/" + keyToHex(cold.results[0].key) + ".corrupt"));
    // The re-run rewrote a good entry with identical results.
    SimStats out;
    ResultCache check(dir);
    EXPECT_TRUE(check.lookup(cold.results[0].key, out));
    EXPECT_EQ(out.cycles, cold.results[0].stats.cycles);
    std::filesystem::remove_all(dir);
}

TEST_F(RobustnessTest, VersionSkewIsAMissNotAQuarantine)
{
    std::string dir = freshDir("skew");
    ResultCache cache(dir);
    {
        std::ofstream out(dir + "/" + keyToHex(5) + ".stats");
        out << "scsim-result v1\ncycles 9\n";
    }
    SimStats out;
    EXPECT_FALSE(cache.lookup(5, out));
    EXPECT_EQ(cache.quarantined(), 0u);
    EXPECT_TRUE(
        std::filesystem::exists(dir + "/" + keyToHex(5) + ".stats"));
    std::filesystem::remove_all(dir);
}

TEST_F(RobustnessTest, SweepRetriesTransientCacheWrite)
{
    std::string dir = freshDir("transient_write");
    SweepSpec spec;
    spec.add("only", tinyCfg(), tinyApp("solo"));

    // First disk write fails once; the engine's bounded backoff must
    // retry and land the entry.
    FaultInjector::instance().armCacheWriteFaults(1);
    SweepEngine engine{ SweepOptions{ .jobs = 1, .cacheDir = dir } };
    SweepResult res = engine.run(spec);
    EXPECT_TRUE(res.allOk());
    EXPECT_GE(FaultInjector::instance().cacheWriteAttempts(), 2u);

    FaultInjector::instance().reset();
    SweepEngine warm{ SweepOptions{ .jobs = 1, .cacheDir = dir } };
    EXPECT_EQ(warm.run(spec).cacheHits, 1u);
    std::filesystem::remove_all(dir);
}

TEST_F(RobustnessTest, SweepSurvivesPersistentCacheFailure)
{
    std::string dir = freshDir("persistent_fail");
    SweepSpec spec;
    spec.add("only", tinyCfg(), tinyApp("solo"));

    // A permanently broken disk degrades to "nothing cached", never
    // to a failed job.
    FaultInjector::instance().armCacheWriteFaults(1, 1u << 20);
    FaultInjector::instance().armCacheReadFaults(1, 1u << 20);
    SweepEngine engine{ SweepOptions{ .jobs = 1, .cacheDir = dir } };
    SweepResult res = engine.run(spec);
    EXPECT_TRUE(res.allOk());
    EXPECT_EQ(res.executed, 1u);
    std::filesystem::remove_all(dir);
}

// ---- watchdog ---------------------------------------------------------

TEST_F(RobustnessTest, WatchdogContainsSyntheticHang)
{
    GpuConfig cfg = tinyCfg();
    cfg.hangWindowCycles = 3000;
    FaultInjector::instance().armHang("hang-micro");
    GpuSim sim(cfg);
    try {
        sim.run(makeHangMicro());
        FAIL() << "expected HangError";
    } catch (const HangError &e) {
        EXPECT_NE(std::string(e.what()).find("no forward progress"),
                  std::string::npos);
        // The diagnostic dumps per-sub-core issue and collector state.
        EXPECT_NE(e.diagnostic().find("sub-core"), std::string::npos);
        EXPECT_NE(e.diagnostic().find("collector"), std::string::npos);
        EXPECT_NE(e.diagnostic().find("scoreboardPending"),
                  std::string::npos);
    }
}

TEST_F(RobustnessTest, HangMicroCompletesWhenDisarmed)
{
    GpuConfig cfg = tinyCfg();
    cfg.hangWindowCycles = 3000;
    SimStats s = simulate(cfg, makeHangMicro());
    EXPECT_GT(s.cycles, 0u);
    EXPECT_EQ(s.blocksCompleted, 2u);
}

TEST_F(RobustnessTest, DisabledBudgetsPreserveBehavior)
{
    KernelDesc k = makeFmaMicro(FmaLayout::Baseline, 64, 4);
    SimStats guarded = simulate(tinyCfg(), k);

    GpuConfig open = tinyCfg();
    open.maxCycles = 0;          // unlimited
    open.hangWindowCycles = 0;   // watchdog off
    SimStats free = simulate(open, k);
    EXPECT_EQ(free.cycles, guarded.cycles);
    EXPECT_EQ(free.instructions, guarded.instructions);
}

// ---- sweep failure containment ---------------------------------------

TEST_F(RobustnessTest, SweepContainsHangAndErrorJobs)
{
    FaultInjector::instance().armHang("hangapp");

    SweepSpec spec;
    for (const char *name : { "appA", "appB", "appC", "appD" })
        spec.add(name, tinyCfg(), tinyApp(name));
    spec.add("hugeapp", tinyCfg(), oversizedApp("hugeapp"));
    GpuConfig hangCfg = tinyCfg();
    hangCfg.hangWindowCycles = 3000;
    spec.add("hangapp", hangCfg, tinyApp("hangapp"));

    auto check = [&](const SweepResult &res) {
        EXPECT_EQ(res.failed, 2u);
        EXPECT_EQ(res.skipped, 0u);
        EXPECT_EQ(res.executed, spec.jobs.size());
        for (std::size_t i = 0; i < res.tags.size(); ++i) {
            const JobResult &r = res.results[i];
            if (res.tags[i] == "hugeapp") {
                EXPECT_EQ(r.status, JobStatus::Failed);
                EXPECT_NE(r.error.find("reg bytes"),
                          std::string::npos);
            } else if (res.tags[i] == "hangapp") {
                EXPECT_EQ(r.status, JobStatus::Hang);
                EXPECT_NE(r.error.find("no forward progress"),
                          std::string::npos);
            } else {
                EXPECT_EQ(r.status, JobStatus::Ok) << res.tags[i];
                EXPECT_GT(r.stats.cycles, 0u);
            }
        }
    };

    SweepEngine serial{ SweepOptions{ .jobs = 1, .cacheDir = "" } };
    SweepResult r1 = serial.run(spec);
    check(r1);

    SweepEngine parallel{ SweepOptions{ .jobs = 8, .cacheDir = "" } };
    SweepResult r8 = parallel.run(spec);
    check(r8);

    // Manifests are byte-identical at any worker count, and carry the
    // per-job status and error columns.
    EXPECT_EQ(jsonManifest(spec, r1), jsonManifest(spec, r8));
    EXPECT_EQ(csvManifest(spec, r1), csvManifest(spec, r8));
    std::string json = jsonManifest(spec, r1);
    EXPECT_NE(json.find("\"status\": \"failed\""), std::string::npos);
    EXPECT_NE(json.find("\"status\": \"hang\""), std::string::npos);
    EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos);
}

TEST_F(RobustnessTest, FailFastSkipsRemainingJobs)
{
    SweepSpec spec;
    // Big enough to sort first under longest-expected-first.
    spec.add("bad", tinyCfg(), oversizedApp("bad", 64));
    for (const char *name : { "appA", "appB", "appC" })
        spec.add(name, tinyCfg(), tinyApp(name));

    SweepOptions opts{ .jobs = 1 };
    opts.failFast = true;
    SweepEngine engine{ opts };
    SweepResult res = engine.run(spec);
    EXPECT_EQ(res.failed, 1u);
    EXPECT_EQ(res.executed, 1u);
    EXPECT_EQ(res.skipped, 3u);
    EXPECT_FALSE(res.allOk());
    for (std::size_t i = 0; i < res.tags.size(); ++i)
        if (res.tags[i] != "bad") {
            EXPECT_EQ(res.results[i].status, JobStatus::Skipped);
            EXPECT_NE(res.results[i].error.find("skipped"),
                      std::string::npos);
        }
}

TEST_F(RobustnessTest, MaxFailuresBoundsTheDamage)
{
    SweepSpec spec;
    spec.add("bad1", tinyCfg(), oversizedApp("bad1", 64));
    spec.add("bad2", tinyCfg(), oversizedApp("bad2", 63));
    spec.add("good", tinyCfg(), tinyApp("good"));

    SweepOptions opts{ .jobs = 1 };
    opts.maxFailures = 2;
    SweepEngine engine{ opts };
    SweepResult res = engine.run(spec);
    EXPECT_EQ(res.failed, 2u);
    EXPECT_EQ(res.skipped, 1u);
}

// ---- worker pool containment -----------------------------------------

TEST_F(RobustnessTest, WorkerPoolCapturesPerJobExceptions)
{
    std::vector<std::size_t> order{ 0, 1, 2, 3 };
    auto errors = runOrdered(order, 2, [](std::size_t i) {
        if (i % 2)
            throw WorkloadError("odd job " + std::to_string(i));
    });
    ASSERT_EQ(errors.size(), 4u);
    EXPECT_FALSE(errors[0]);
    EXPECT_TRUE(errors[1]);
    EXPECT_FALSE(errors[2]);
    EXPECT_TRUE(errors[3]);
    EXPECT_THROW(std::rethrow_exception(errors[1]), WorkloadError);
}

TEST_F(RobustnessTest, WorkerPoolStopPredicateHalts)
{
    std::vector<std::size_t> order{ 0, 1, 2, 3, 4 };
    std::vector<int> ran(order.size(), 0);
    auto errors = runOrdered(
        order, 1,
        [&](std::size_t i) {
            ran[i] = 1;
            throw WorkloadError("always fails");
        },
        [](std::size_t failures) { return failures >= 2; });
    EXPECT_EQ(ran[0] + ran[1] + ran[2] + ran[3] + ran[4], 2);
    EXPECT_TRUE(errors[0]);
    EXPECT_TRUE(errors[1]);
    EXPECT_FALSE(errors[2]);
}

} // namespace
} // namespace scsim::runner
