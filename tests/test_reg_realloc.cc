/** @file Tests for the compiler-style register re-allocation pass. */

#include <gtest/gtest.h>

#include "trace/reg_realloc.hh"
#include "workloads/suite.hh"

namespace scsim {
namespace {

WarpProgram
conflictedProgram()
{
    // Every FMA reads three even registers: with 2 banks, 2 excess
    // same-instruction reads per FMA.
    WarpProgram p;
    for (int i = 0; i < 16; ++i) {
        RegIndex acc = static_cast<RegIndex>(2 * (i % 3));   // 0,2,4
        p.code.push_back(Instruction::alu(Opcode::FMA, acc, acc, 6, 8));
    }
    p.code.push_back(Instruction::barrier());
    p.code.push_back(Instruction::exit());
    return p;
}

TEST(ProfileConflicts, CountsExcessSameBankReads)
{
    ConflictProfile p = profileConflicts(conflictedProgram(), 2);
    EXPECT_EQ(p.instructions, 16u);
    EXPECT_EQ(p.sameInstConflicts, 16u * 2u);
    EXPECT_DOUBLE_EQ(p.conflictsPerInst(), 2.0);
}

TEST(ProfileConflicts, MoreBanksFewerConflicts)
{
    WarpProgram p = conflictedProgram();
    EXPECT_LT(profileConflicts(p, 8).sameInstConflicts,
              profileConflicts(p, 2).sameInstConflicts);
}

TEST(ReallocateRegisters, RemovesRemovableConflicts)
{
    WarpProgram p = conflictedProgram();
    WarpProgram r = reallocateRegisters(p, 16, 2);
    // Three distinct sources over two banks: at best one pair shares,
    // i.e. one excess read per instruction.
    EXPECT_EQ(profileConflicts(r, 2).sameInstConflicts, 16u);
}

TEST(ReallocateRegisters, IsABijectionOnUsedRegisters)
{
    WarpProgram p = conflictedProgram();
    WarpProgram r = reallocateRegisters(p, 16, 2);
    ASSERT_EQ(r.code.size(), p.code.size());
    // The mapping must be consistent: equal old ids -> equal new ids,
    // distinct old ids -> distinct new ids.
    std::map<RegIndex, RegIndex> mapping;
    std::set<RegIndex> images;
    for (std::size_t i = 0; i < p.code.size(); ++i) {
        auto check = [&](RegIndex oldR, RegIndex newR) {
            if (oldR == kNoReg) {
                EXPECT_EQ(newR, kNoReg);
                return;
            }
            auto it = mapping.find(oldR);
            if (it == mapping.end()) {
                EXPECT_TRUE(images.insert(newR).second)
                    << "two registers renamed onto " << newR;
                mapping[oldR] = newR;
            } else {
                EXPECT_EQ(it->second, newR);
            }
            EXPECT_GE(newR, 0);
            EXPECT_LT(newR, 16);
        };
        check(p.code[i].dst, r.code[i].dst);
        for (std::size_t s = 0; s < 3; ++s)
            check(p.code[i].srcs[s], r.code[i].srcs[s]);
        EXPECT_EQ(r.code[i].op, p.code[i].op);
    }
}

TEST(ReallocateRegisters, PreservesDependenceStructure)
{
    WarpProgram p = conflictedProgram();
    WarpProgram r = reallocateRegisters(p, 16, 2);
    // Renaming preserves which instructions read each dst: compare
    // def-use distance multiset via a simple fingerprint.
    auto fingerprint = [](const WarpProgram &prog) {
        std::vector<int> fp;
        for (std::size_t i = 0; i < prog.code.size(); ++i) {
            if (prog.code[i].dst == kNoReg)
                continue;
            for (std::size_t j = i + 1; j < prog.code.size(); ++j) {
                bool reads = false;
                for (RegIndex s : prog.code[j].srcs)
                    reads = reads || s == prog.code[i].dst;
                if (reads || prog.code[j].dst == prog.code[i].dst) {
                    fp.push_back(static_cast<int>(j - i));
                    break;
                }
            }
        }
        return fp;
    };
    EXPECT_EQ(fingerprint(r), fingerprint(p));
}

TEST(ReallocateRegisters, KernelWrapperValidates)
{
    AppSpec spec = findApp("pb-mriq", 0.1);
    Application app = buildApp(spec);
    KernelDesc before = app.kernels[0];
    KernelDesc after = reallocateRegisters(before, 2);
    EXPECT_EQ(after.totalWarpInstructions(),
              before.totalWarpInstructions());
    // The pass should strictly reduce same-inst conflicts on this
    // deliberately conflict-heavy kernel.
    std::uint64_t cBefore = 0, cAfter = 0;
    for (std::size_t s = 0; s < before.shapes.size(); ++s) {
        cBefore += profileConflicts(before.shapes[s], 2)
                       .sameInstConflicts;
        cAfter += profileConflicts(after.shapes[s], 2)
                      .sameInstConflicts;
    }
    EXPECT_LT(cAfter, cBefore);
}

TEST(ReallocateRegisters, NoOpOnConflictFreeCode)
{
    WarpProgram p;
    p.code.push_back(Instruction::alu(Opcode::FADD, 0, 1, 2));
    p.code.push_back(Instruction::exit());
    WarpProgram r = reallocateRegisters(p, 8, 2);
    EXPECT_EQ(profileConflicts(r, 2).sameInstConflicts, 0u);
}

} // namespace
} // namespace scsim
