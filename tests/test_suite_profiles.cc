/** @file Structural assertions on the synthetic suite: each suite's
 *  generated code must exhibit the warp-level characteristics its
 *  real counterpart is modeled on (DESIGN.md substitution table). */

#include <gtest/gtest.h>

#include "trace/reg_realloc.hh"
#include "workloads/calibration.hh"
#include "workloads/suite.hh"

namespace scsim {
namespace {

double
opFraction(const KernelDesc &k, bool (*pred)(Opcode))
{
    std::uint64_t hits = 0, total = 0;
    for (const auto &shape : k.shapes)
        for (const auto &inst : shape.code) {
            if (!inst.usesCollector())
                continue;
            ++total;
            hits += pred(inst.op);
        }
    return total ? static_cast<double>(hits)
                       / static_cast<double>(total)
                 : 0.0;
}

double
conflictsPerInst(const AppSpec &spec)
{
    Application app = buildApp(spec);
    std::uint64_t conflicts = 0, insts = 0;
    for (const auto &k : app.kernels)
        for (const auto &shape : k.shapes) {
            ConflictProfile p = profileConflicts(shape, 2);
            conflicts += p.sameInstConflicts;
            insts += p.instructions;
        }
    return static_cast<double>(conflicts) / static_cast<double>(insts);
}

TEST(SuiteProfiles, CugraphIsBankConflictProne)
{
    // cuGraph models register-reuse-heavy kernels; its same-bank
    // pressure must clearly exceed a streaming Polybench kernel's.
    double graph = conflictsPerInst(findApp("cg-pgrnk", 0.1));
    double stream = conflictsPerInst(findApp("ply-atax", 0.1));
    EXPECT_GT(graph, 1.15 * stream);
}

TEST(SuiteProfiles, MriqIsComputeDominated)
{
    Application app = buildApp(findApp("pb-mriq", 0.1));
    double mem = opFraction(app.kernels[0], isMemory);
    EXPECT_LT(mem, 0.05);
    double fma = opFraction(app.kernels[0], [](Opcode op) {
        return op == Opcode::FMA;
    });
    EXPECT_GT(fma, 0.6);
}

TEST(SuiteProfiles, TpchIsMemoryHeavyOutsideDivergentKernels)
{
    AppSpec spec = findApp("tpcU-q5", 0.1);
    Application app = buildApp(spec);
    // The trailing (balanced, scan-like) kernel keeps the full memory
    // fraction; the leading divergent kernels are compute-biased.
    double memLast = opFraction(app.kernels.back(), isMemory);
    double memFirst = opFraction(app.kernels.front(), isMemory);
    EXPECT_GT(memLast, 0.20);
    EXPECT_LT(memFirst, memLast);
}

TEST(SuiteProfiles, DeepbenchUsesTensorPipes)
{
    Application app = buildApp(findApp("db-conv-tr", 0.1));
    double tensor = opFraction(app.kernels[0], [](Opcode op) {
        return op == Opcode::TENSOR;
    });
    EXPECT_GT(tensor, 0.25);
}

TEST(SuiteProfiles, CutlassUsesSharedMemory)
{
    AppSpec spec = findApp("cutlass-1024", 0.1);
    EXPECT_GT(spec.smemBytesPerBlock, 0u);
    Application app = buildApp(spec);
    double lds = opFraction(app.kernels[0], [](Opcode op) {
        return op == Opcode::LDS;
    });
    EXPECT_GT(lds, 0.0);
}

TEST(SuiteProfiles, CompressedQueriesMoreImbalancedThanUncompressed)
{
    // Shape-length ratio between the longest and shortest warp of the
    // first (divergent) kernel.
    auto imbalance = [](const char *name) {
        Application app = buildApp(findApp(name, 0.1));
        const KernelDesc &k = app.kernels.front();
        std::size_t lo = SIZE_MAX, hi = 0;
        for (int w = 0; w < k.warpsPerBlock; ++w) {
            lo = std::min(lo, k.programOf(w).length());
            hi = std::max(hi, k.programOf(w).length());
        }
        return static_cast<double>(hi) / static_cast<double>(lo);
    };
    EXPECT_GT(imbalance("tpcC-q9"), imbalance("tpcU-q9"));
    EXPECT_GT(imbalance("tpcU-q9"), 2.5);
}

TEST(SuiteProfiles, GraphAppsReuseAHotRegister)
{
    // hotRegFrac makes one register absorb a large share of reads.
    // The hot register rotates per compiler phase, so measure the
    // skew inside one phase-sized window (48 instructions).
    Application app = buildApp(findApp("cg-lou", 0.1));
    const WarpProgram &prog = app.kernels[0].shapes[0];
    std::map<RegIndex, int> readCounts;
    int totalReads = 0;
    for (std::size_t i = 0; i < std::min<std::size_t>(
             48, prog.code.size()); ++i)
        for (RegIndex r : prog.code[i].srcs)
            if (r != kNoReg) {
                ++readCounts[r];
                ++totalReads;
            }
    int hottest = 0;
    for (const auto &[reg, n] : readCounts)
        hottest = std::max(hottest, n);
    // The window's hottest register draws far above a uniform share.
    double uniform = static_cast<double>(totalReads)
        / static_cast<double>(readCounts.size());
    EXPECT_GT(hottest, 1.6 * uniform);
}

TEST(SuiteProfiles, OracleSeesTheSuiteDifferences)
{
    // The analytical profile distinguishes conflict-heavy from
    // streaming code.
    Application graph = buildApp(findApp("cg-katz", 0.1));
    Application stream = buildApp(findApp("ply-mvt", 0.1));
    ProgramProfile g = analyzeProgram(graph.kernels[0].shapes[0], 2);
    ProgramProfile p = analyzeProgram(stream.kernels[0].shapes[0], 2);
    EXPECT_GT(g.worstBankReads, p.worstBankReads);
}

TEST(SuiteProfiles, RegWindowsRespectSpecs)
{
    for (const char *name : { "cg-lou", "pb-sgemm", "tpcC-q1" }) {
        AppSpec spec = findApp(name, 0.1);
        Application app = buildApp(spec);
        for (const auto &k : app.kernels)
            EXPECT_GE(k.regsPerThread,
                      std::max(spec.regsPerThread, spec.regWindow));
    }
}

} // namespace
} // namespace scsim
