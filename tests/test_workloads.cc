/** @file Tests for the workload substrate: microbenchmarks, the
 *  112-app suite table, and the synthetic generator. */

#include <set>

#include <gtest/gtest.h>

#include "expect_throw.hh"
#include "workloads/microbench.hh"
#include "workloads/suite.hh"

namespace scsim {
namespace {

TEST(FmaMicro, BaselineLayout)
{
    KernelDesc k = makeFmaMicro(FmaLayout::Baseline, 100, 3);
    k.validate();
    EXPECT_EQ(k.warpsPerBlock, 8);
    EXPECT_EQ(k.numBlocks, 3);
    for (std::uint16_t s : k.shapeOfWarp)
        EXPECT_EQ(s, 0);
    // 100 FMA + BAR + EXIT.
    EXPECT_EQ(k.shapes[0].length(), 102u);
}

TEST(FmaMicro, BalancedPutsComputeWarpsFirst)
{
    KernelDesc k = makeFmaMicro(FmaLayout::Balanced, 10, 1);
    EXPECT_EQ(k.warpsPerBlock, 32);
    for (int w = 0; w < 32; ++w)
        EXPECT_EQ(k.shapeOfWarp[static_cast<std::size_t>(w)],
                  w < 8 ? 0 : 1) << w;
}

TEST(FmaMicro, UnbalancedPutsComputeEveryFourth)
{
    KernelDesc k = makeFmaMicro(FmaLayout::Unbalanced, 10, 1);
    for (int w = 0; w < 32; ++w)
        EXPECT_EQ(k.shapeOfWarp[static_cast<std::size_t>(w)],
                  (w % 4 == 0) ? 0 : 1) << w;
}

TEST(FmaMicro, ComputeShapeIsDependentFmaChains)
{
    KernelDesc k = makeFmaMicro(FmaLayout::Baseline, 8, 1);
    const auto &code = k.shapes[0].code;
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(code[static_cast<std::size_t>(i)].op, Opcode::FMA);
        // Four interleaved accumulator chains (r0..r3).
        EXPECT_EQ(code[static_cast<std::size_t>(i)].dst, i % 4);
        EXPECT_EQ(code[static_cast<std::size_t>(i)].srcs[0], i % 4);
    }
    EXPECT_EQ(code[8].op, Opcode::BAR);
    EXPECT_EQ(code[9].op, Opcode::EXIT);
}

TEST(FmaMicro, EmptyShapeIsBarrierExit)
{
    KernelDesc k = makeFmaMicro(FmaLayout::Balanced, 10, 1);
    ASSERT_EQ(k.shapes[1].code.size(), 2u);
    EXPECT_EQ(k.shapes[1].code[0].op, Opcode::BAR);
    EXPECT_EQ(k.shapes[1].code[1].op, Opcode::EXIT);
}

TEST(ImbalanceMicro, LongWarpsEveryFourth)
{
    KernelDesc k = makeImbalanceMicro(4.0, 100, 2);
    k.validate();
    EXPECT_EQ(k.shapes[0].length(), 402u);
    EXPECT_EQ(k.shapes[1].length(), 102u);
    for (int w = 0; w < 32; ++w)
        EXPECT_EQ(k.shapeOfWarp[static_cast<std::size_t>(w)],
                  (w % 4 == 0) ? 0 : 1);
}

TEST(ConflictMicro, AllVariantsValidate)
{
    for (int v = 0; v < kNumConflictMicros; ++v) {
        KernelDesc k = makeConflictMicro(v, 64, 2);
        EXPECT_NO_FATAL_FAILURE(k.validate()) << v;
        EXPECT_EQ(k.shapes[0].length(), 66u);
    }
}

TEST(ConflictMicro, Variant0IsSingleBankPerWarp)
{
    KernelDesc k = makeConflictMicro(0, 32, 1);
    for (const Instruction &inst : k.shapes[0].code) {
        if (inst.op != Opcode::FMA)
            continue;
        // All operands even -> same bank under the 2-bank swizzle.
        for (RegIndex r : inst.srcs) {
            if (r != kNoReg) {
                EXPECT_EQ(r % 2, 0);
            }
        }
    }
}

TEST(Suite, Has112UniqueApps)
{
    auto apps = standardSuite(0.5);
    EXPECT_EQ(apps.size(), 112u);
    std::set<std::string> names;
    for (const auto &a : apps)
        names.insert(a.name);
    EXPECT_EQ(names.size(), 112u);
}

TEST(Suite, EightSuitesWithExpectedCounts)
{
    std::map<std::string, int> bySuite;
    for (const auto &a : standardSuite(0.5))
        ++bySuite[a.suite];
    EXPECT_EQ(bySuite.size(), 8u);
    EXPECT_EQ(bySuite["tpch-u"], 22);
    EXPECT_EQ(bySuite["tpch-c"], 22);
    EXPECT_EQ(bySuite["parboil"], 11);
    EXPECT_EQ(bySuite["rodinia"], 20);
    EXPECT_EQ(bySuite["cugraph"], 7);
    EXPECT_EQ(bySuite["polybench"], 15);
    EXPECT_EQ(bySuite["deepbench"], 8);
    EXPECT_EQ(bySuite["cutlass"], 7);
}

TEST(Suite, SubsetsResolve)
{
    EXPECT_EQ(sensitiveApps(0.5).size(), 25u);
    EXPECT_FALSE(rfSensitiveApps(0.5).empty());
    EXPECT_EQ(findApp("pb-mriq", 0.5).suite, "parboil");
}

TEST(SuiteThrow, UnknownAppAndSuite)
{
    EXPECT_THROW_WITH(findApp("pb-nope", 1.0), WorkloadError,
                      "unknown application");
    EXPECT_THROW_WITH(suiteApps("spec2006", 1.0), WorkloadError,
                      "unknown suite");
}

TEST(Suite, ScaleShrinksGrids)
{
    AppSpec big = findApp("tpcU-q1", 1.0);
    AppSpec small = findApp("tpcU-q1", 0.25);
    EXPECT_LT(small.numBlocks, big.numBlocks);
    EXPECT_GE(small.numBlocks, 8);
}

TEST(Builder, EveryAppBuildsAndValidates)
{
    for (const auto &spec : standardSuite(0.1)) {
        Application app = buildApp(spec);
        EXPECT_NO_FATAL_FAILURE(app.validate()) << spec.name;
        EXPECT_EQ(app.name, spec.name);
        EXPECT_EQ(static_cast<int>(app.kernels.size()),
                  spec.numKernels);
        EXPECT_GT(app.totalWarpInstructions(), 0u);
    }
}

TEST(Builder, DeterministicForName)
{
    AppSpec spec = findApp("cg-lou", 0.2);
    Application a = buildApp(spec);
    Application b = buildApp(spec);
    EXPECT_EQ(a.totalWarpInstructions(), b.totalWarpInstructions());
    ASSERT_EQ(a.kernels.size(), b.kernels.size());
    for (std::size_t k = 0; k < a.kernels.size(); ++k) {
        ASSERT_EQ(a.kernels[k].shapes.size(),
                  b.kernels[k].shapes.size());
        for (std::size_t s = 0; s < a.kernels[k].shapes.size(); ++s)
            EXPECT_EQ(a.kernels[k].shapes[s].length(),
                      b.kernels[k].shapes[s].length());
    }
}

TEST(Builder, SaltChangesTheApp)
{
    AppSpec spec = findApp("cg-lou", 0.2);
    Application a = buildApp(spec, 0);
    Application b = buildApp(spec, 1);
    EXPECT_NE(a.totalWarpInstructions(), b.totalWarpInstructions());
}

TEST(Builder, DivergencePatternShowsUpInShapeLengths)
{
    AppSpec spec = findApp("tpcU-q8", 0.2);
    Application app = buildApp(spec);
    // Kernel 0 is divergent: warp slot 0 must be several times longer
    // than slot 1 (pattern amp,1,1,1 with noise).
    const KernelDesc &k = app.kernels.front();
    double ratio = static_cast<double>(k.programOf(0).length())
        / static_cast<double>(k.programOf(1).length());
    EXPECT_GT(ratio, 2.5);
    // The last kernel is balanced: all warps near-equal.
    const KernelDesc &last = app.kernels.back();
    double balanced = static_cast<double>(last.programOf(0).length())
        / static_cast<double>(last.programOf(1).length());
    EXPECT_LT(balanced, 1.5);
    EXPECT_GT(balanced, 0.6);
}

TEST(Builder, MixFractionsRoughlyHonored)
{
    AppSpec spec;
    spec.name = "mixcheck";
    spec.fmaFrac = 0.5;
    spec.memFrac = 0.2;
    spec.sfuFrac = 0.1;
    spec.baseInsts = 4000;
    spec.numBlocks = 8;
    spec.divKernelFrac = 0.0;   // balanced kernel keeps the raw mix
    Application app = buildApp(spec);
    int fma = 0, mem = 0, sfu = 0, total = 0;
    for (const auto &inst : app.kernels[0].shapes[0].code) {
        if (!inst.usesCollector())
            continue;
        ++total;
        fma += inst.op == Opcode::FMA;
        mem += isMemory(inst.op);
        sfu += inst.op == Opcode::SFU;
    }
    auto frac = [&](int n) {
        return static_cast<double>(n) / total;
    };
    EXPECT_NEAR(frac(fma), 0.5, 0.06);
    EXPECT_NEAR(frac(mem), 0.2, 0.05);
    EXPECT_NEAR(frac(sfu), 0.1, 0.04);
}

TEST(Builder, SharedMemoryAppsEmitLds)
{
    AppSpec spec = findApp("pb-sgemm", 0.1);
    Application app = buildApp(spec);
    bool sawLds = false;
    for (const auto &inst : app.kernels[0].shapes[0].code)
        sawLds = sawLds || inst.op == Opcode::LDS;
    EXPECT_TRUE(sawLds);
}

TEST(Builder, RegistersStayInWindow)
{
    for (const char *name : { "cg-lou", "pb-mriq", "tpcC-q3" }) {
        AppSpec spec = findApp(name, 0.1);
        Application app = buildApp(spec);
        int window = std::max(spec.regsPerThread, spec.regWindow);
        for (const auto &k : app.kernels)
            for (const auto &shape : k.shapes)
                for (const auto &inst : shape.code) {
                    if (inst.dst != kNoReg) {
                        EXPECT_LT(inst.dst, window);
                    }
                    for (RegIndex r : inst.srcs) {
                        if (r != kNoReg) {
                            EXPECT_LT(r, window);
                        }
                    }
                }
    }
}

} // namespace
} // namespace scsim
