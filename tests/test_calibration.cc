/** @file Tests for the program analyzer and silicon-oracle model. */

#include <gtest/gtest.h>

#include "gpu/gpu_sim.hh"
#include "workloads/calibration.hh"
#include "workloads/microbench.hh"

namespace scsim {
namespace {

WarpProgram
wrap(std::vector<Instruction> body)
{
    WarpProgram p;
    p.code = std::move(body);
    p.code.push_back(Instruction::barrier());
    p.code.push_back(Instruction::exit());
    return p;
}

TEST(AnalyzeProgram, CountsDistinctReads)
{
    WarpProgram p = wrap({
        Instruction::alu(Opcode::FMA, 0, 0, 1, 2),   // 3 reads
        Instruction::alu(Opcode::FMUL, 1, 3, 3),     // dup -> 1 read
    });
    ProgramProfile prof = analyzeProgram(p, 2);
    EXPECT_DOUBLE_EQ(prof.computeInsts, 2.0);
    EXPECT_DOUBLE_EQ(prof.readsPerInst, 2.0);
}

TEST(AnalyzeProgram, WorstBankReads)
{
    // r0, r2, r4 all in bank 0 (2 banks): per-inst worst = 3.
    WarpProgram p = wrap({
        Instruction::alu(Opcode::FMA, 0, 0, 2, 4),
    });
    ProgramProfile prof = analyzeProgram(p, 2);
    EXPECT_DOUBLE_EQ(prof.worstBankReads, 3.0);
    EXPECT_DOUBLE_EQ(prof.maxBankLoad, 3.0);
    // With 8 banks they spread out.
    ProgramProfile wide = analyzeProgram(p, 8);
    EXPECT_DOUBLE_EQ(wide.worstBankReads, 1.0);
}

TEST(AnalyzeProgram, MaxBankLoadAveragesOverStream)
{
    // Alternating banks: each bank loaded every other instruction.
    WarpProgram p = wrap({
        Instruction::alu(Opcode::IADD, 0, 2),   // bank 0
        Instruction::alu(Opcode::IADD, 1, 3),   // bank 1
        Instruction::alu(Opcode::IADD, 0, 4),   // bank 0
        Instruction::alu(Opcode::IADD, 1, 5),   // bank 1
    });
    ProgramProfile prof = analyzeProgram(p, 2);
    EXPECT_DOUBLE_EQ(prof.maxBankLoad, 0.5);
}

TEST(AnalyzeProgram, DependenceDistance)
{
    // Serial chain on r0: distance 1.
    WarpProgram serial = wrap({
        Instruction::alu(Opcode::FMA, 0, 0, 1, 2),
        Instruction::alu(Opcode::FMA, 0, 0, 1, 2),
        Instruction::alu(Opcode::FMA, 0, 0, 1, 2),
    });
    EXPECT_LE(analyzeProgram(serial, 2).depDistance, 2.0);

    // Four interleaved chains: distance ~4.
    std::vector<Instruction> body;
    for (int i = 0; i < 16; ++i)
        body.push_back(Instruction::alu(
            Opcode::FMA, static_cast<RegIndex>(i % 4),
            static_cast<RegIndex>(i % 4), 8, 9));
    EXPECT_GT(analyzeProgram(wrap(std::move(body)), 2).depDistance,
              3.0);
}

TEST(AnalyzeProgram, IgnoresBarrierAndExit)
{
    WarpProgram p = wrap({});
    ProgramProfile prof = analyzeProgram(p, 2);
    EXPECT_DOUBLE_EQ(prof.computeInsts, 0.0);
}

TEST(Oracle, ScalesWithWork)
{
    GpuConfig cfg = GpuConfig::volta();
    cfg.numSms = 2;
    KernelDesc small = makeConflictMicro(1, 256, 8);
    KernelDesc big = makeConflictMicro(1, 1024, 8);
    double a = siliconOracleCycles(cfg, small);
    double b = siliconOracleCycles(cfg, big);
    EXPECT_GT(b, 3.0 * a);
    EXPECT_LT(b, 5.0 * a);
}

TEST(Oracle, ConflictHeavyCostsMore)
{
    GpuConfig cfg = GpuConfig::volta();
    cfg.numSms = 2;
    // Variant 0 serializes on one bank; variant 1 spreads.
    double sameBank = siliconOracleCycles(
        cfg, makeConflictMicro(0, 512, 8));
    double spread = siliconOracleCycles(
        cfg, makeConflictMicro(1, 512, 8));
    EXPECT_GT(sameBank, 1.3 * spread);
}

TEST(Oracle, TracksSimulatorWithinTolerance)
{
    // The whole point of the oracle: it should land within tens of
    // percent of the cycle-level model at the silicon CU count.
    GpuConfig cfg = GpuConfig::volta();
    cfg.numSms = 2;
    for (int v = 0; v < kNumConflictMicros; ++v) {
        KernelDesc k = makeConflictMicro(v, 512, 8);
        double oracle = siliconOracleCycles(cfg, k, 2);
        double sim = static_cast<double>(simulate(cfg, k).cycles);
        EXPECT_LT(std::abs(sim - oracle) / oracle, 0.35) << v;
    }
}

} // namespace
} // namespace scsim
