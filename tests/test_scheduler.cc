/** @file Tests for the warp issue schedulers (LRR, GTO, RBA). */

#include <gtest/gtest.h>

#include "core/scheduler.hh"

namespace scsim {
namespace {

/** Small harness: a warp table where slot i has ageRank and next inst. */
class SchedulerTest : public ::testing::Test
{
  protected:
    SchedulerTest()
    {
        warps_.resize(8);
        for (int i = 0; i < 8; ++i) {
            WarpContext &w = warps_[static_cast<std::size_t>(i)];
            w.slot = i;
            w.active = true;
            w.ageRank = static_cast<std::uint32_t>(i);
        }
        qlen_ = { 0, 0 };
        ctx_.warps = warps_.data();
        ctx_.bankQueueLen = qlen_.data();
        ctx_.numBanks = 2;
    }

    void
    setInst(int slot, const Instruction &inst)
    {
        progs_[static_cast<std::size_t>(slot)].code = { inst,
            Instruction::exit() };
        warps_[static_cast<std::size_t>(slot)].prog =
            &progs_[static_cast<std::size_t>(slot)];
        warps_[static_cast<std::size_t>(slot)].pc = 0;
    }

    std::vector<WarpContext> warps_;
    std::array<WarpProgram, 8> progs_;
    std::vector<int> qlen_;
    PickContext ctx_;
};

TEST_F(SchedulerTest, GtoPicksOldestFirst)
{
    GtoScheduler gto;
    EXPECT_EQ(gto.pick({ 3, 1, 5 }, ctx_), 1);
}

TEST_F(SchedulerTest, GtoStaysGreedy)
{
    GtoScheduler gto;
    gto.notifyIssued(5, 0);
    EXPECT_EQ(gto.pick({ 3, 1, 5 }, ctx_), 5);
    // Greedy warp not ready -> falls back to oldest.
    EXPECT_EQ(gto.pick({ 3, 2 }, ctx_), 2);
}

TEST_F(SchedulerTest, GtoAgeRankBeatsSlotNumber)
{
    // Slot 7 is older (smaller ageRank) than slot 0.
    warps_[7].ageRank = 0;
    warps_[0].ageRank = 9;
    GtoScheduler gto;
    EXPECT_EQ(gto.pick({ 0, 7 }, ctx_), 7);
}

TEST_F(SchedulerTest, LrrRotates)
{
    LrrScheduler lrr;
    EXPECT_EQ(lrr.pick({ 1, 3, 5 }, ctx_), 1);
    lrr.notifyIssued(1, 0);
    EXPECT_EQ(lrr.pick({ 1, 3, 5 }, ctx_), 3);
    lrr.notifyIssued(3, 0);
    EXPECT_EQ(lrr.pick({ 1, 3, 5 }, ctx_), 5);
    lrr.notifyIssued(5, 0);
    // Wraps back to the lowest slot.
    EXPECT_EQ(lrr.pick({ 1, 3, 5 }, ctx_), 1);
}

TEST_F(SchedulerTest, RbaScoreSumsQueueLengths)
{
    // slot 0: regs 0,1,2 -> banks 0,1,0.
    Instruction fma = Instruction::alu(Opcode::FMA, 0, 0, 1, 2);
    int q[2] = { 3, 1 };
    EXPECT_EQ(rbaScore(fma, 0, q, 2), 3 + 1 + 3);
    // Same instruction from an odd slot flips the banks.
    EXPECT_EQ(rbaScore(fma, 1, q, 2), 1 + 3 + 1);
}

TEST_F(SchedulerTest, RbaScoreClampsToFiveBits)
{
    Instruction fma = Instruction::alu(Opcode::FMA, 0, 0, 2, 4);
    int q[2] = { 30, 0 };
    EXPECT_EQ(rbaScore(fma, 0, q, 2), 31);
}

TEST_F(SchedulerTest, RbaPrefersIdleBanks)
{
    // Warp 0's operands hit bank 0 (busy); warp 1's hit bank 1 (idle).
    setInst(0, Instruction::alu(Opcode::FMUL, 0, 0, 2));
    setInst(1, Instruction::alu(Opcode::FMUL, 1, 1, 3));
    qlen_ = { 4, 0 };
    RbaScheduler rba;
    // Warp 0 reads banks (0+0)=0,(2+0)=0 -> score 8; warp 1 reads
    // (1+1)=0? no: (1+1)%2=0,(3+1)%2=0 -> also bank 0.  Use slot 2:
    setInst(2, Instruction::alu(Opcode::FMUL, 1, 1, 3));
    // slot 2: (1+2)%2=1,(3+2)%2=1 -> bank 1, score 0.
    EXPECT_EQ(rba.pick({ 0, 2 }, ctx_), 2);
}

TEST_F(SchedulerTest, RbaTieBreaksByAge)
{
    setInst(3, Instruction::alu(Opcode::IADD, 0, 2));
    setInst(5, Instruction::alu(Opcode::IADD, 0, 2));
    qlen_ = { 0, 0 };
    warps_[3].ageRank = 9;
    warps_[5].ageRank = 2;   // older despite higher slot
    RbaScheduler rba;
    EXPECT_EQ(rba.pick({ 3, 5 }, ctx_), 5);
}

TEST_F(SchedulerTest, RbaEqualsOldestWhenScoresEqual)
{
    for (int s : { 0, 1, 2 })
        setInst(s, Instruction::alu(Opcode::IADD, 0, 2));
    qlen_ = { 2, 2 };   // uniform -> every score identical
    RbaScheduler rba;
    GtoScheduler gto;
    EXPECT_EQ(rba.pick({ 2, 0, 1 }, ctx_), gto.pick({ 2, 0, 1 }, ctx_));
}

TEST_F(SchedulerTest, FactoryProducesConfiguredPolicy)
{
    EXPECT_NE(dynamic_cast<LrrScheduler *>(
                  makeScheduler(SchedulerPolicy::LRR).get()),
              nullptr);
    EXPECT_NE(dynamic_cast<GtoScheduler *>(
                  makeScheduler(SchedulerPolicy::GTO).get()),
              nullptr);
    EXPECT_NE(dynamic_cast<RbaScheduler *>(
                  makeScheduler(SchedulerPolicy::RBA).get()),
              nullptr);
}

} // namespace
} // namespace scsim
