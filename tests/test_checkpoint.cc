/**
 * @file
 * Checkpoint/restore tests (ctest label `checkpoint`).
 *
 * Covers the snapshot wire record and its corruption handling, the
 * SimEngine checkpoint observer, the save/resume determinism contract
 * (a mid-run snapshot resumed on a fresh simulator must reproduce the
 * golden fingerprint of an uninterrupted run, for every design point),
 * the `run-job` cold-start fallback for every damage class (truncated
 * frame, flipped checksum byte, bumped version, foreign job key,
 * unusable payload), the injected-ENOSPC degrade paths for snapshot
 * and journal writes, and the `version` / `checkpoint --verify` CLI
 * surface.
 *
 * Like `isolation`, the subprocess tests drive the real CLI binary
 * (SCSIM_CLI_PATH); the golden matrix reuses the engine goldens
 * (SCSIM_ENGINE_GOLDENS).
 */

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_inject.hh"
#include "common/sim_error.hh"
#include "runner/design.hh"
#include "runner/job_key.hh"
#include "runner/journal.hh"
#include "runner/subprocess.hh"
#include "runner/wire.hh"
#include "sim/engine.hh"
#include "stats/stats_io.hh"
#include "workloads/microbench.hh"
#include "workloads/suite.hh"

namespace scsim {
namespace {

using runner::decodeJobResult;
using runner::decodeSnapshot;
using runner::JobResult;
using runner::JobStatus;
using runner::jobKey;
using runner::JournalWriter;
using runner::keyToHex;
using runner::readJournal;
using runner::runSubprocess;
using runner::serializeJob;
using runner::serializeSnapshot;
using runner::SimJob;
using runner::SubprocessResult;
using runner::WireDecode;
using sim::SimEngine;

// ---- shared helpers (mirrors test_isolation / test_engine) ------------

AppSpec
tinyApp(const std::string &name, int blocks = 4)
{
    AppSpec app;
    app.name = name;
    app.suite = "test";
    app.numBlocks = blocks;
    app.warpsPerBlock = 4;
    app.baseInsts = 60;
    app.footprintMB = 1;
    return app;
}

GpuConfig
tinyCfg()
{
    GpuConfig cfg = GpuConfig::volta();
    cfg.numSms = 2;
    return cfg;
}

SimJob
tinyJob(const std::string &tag = "ckpt")
{
    SimJob job;
    job.tag = tag;
    job.cfg = tinyCfg();
    job.app = tinyApp(tag + "-app");
    return job;
}

std::string
freshDir(const std::string &leaf)
{
    std::string dir = testing::TempDir() + "scsim_ckpt_" + leaf;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
spew(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
}

KernelDesc
microWorkload(const std::string &name)
{
    if (name == "fma-unbalanced")
        return makeFmaMicro(FmaLayout::Unbalanced, 512, 8);
    if (name == "imbalance:4")
        return makeImbalanceMicro(4.0, 256, 8);
    if (name == "conflict:0")
        return makeConflictMicro(0, 512, 4);
    ADD_FAILURE() << "unknown micro workload " << name;
    return {};
}

GpuConfig
goldenBase()
{
    GpuConfig cfg = GpuConfig::volta();
    cfg.numSms = 2;
    return cfg;
}

/** design name -> workload name -> seed fingerprint (hex). */
std::map<std::string, std::map<std::string, std::string>>
loadGoldens()
{
    std::ifstream in(SCSIM_ENGINE_GOLDENS);
    EXPECT_TRUE(in.good()) << "missing goldens: " SCSIM_ENGINE_GOLDENS;
    std::map<std::string, std::map<std::string, std::string>> out;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::istringstream ls(line);
        std::string design, workload, hex;
        std::getline(ls, design, '\t');
        std::getline(ls, workload, '\t');
        std::getline(ls, hex, '\t');
        out[design][workload] = hex;
    }
    return out;
}

/** The Application wrapping SimEngine::run(KernelDesc) performs. */
Application
wrapKernel(const KernelDesc &kernel)
{
    Application app;
    app.name = kernel.name;
    app.kernels.push_back(kernel);
    return app;
}

class CheckpointTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        FaultInjector::instance().reset();
        unsetenv("SCSIM_FAULT_CRASH");
        unsetenv("SCSIM_FAULT_CRASH_ONCE");
        unsetenv("SCSIM_FAULT_SNAPSHOT_WRITE");
    }
    void TearDown() override
    {
        FaultInjector::instance().reset();
        unsetenv("SCSIM_FAULT_SNAPSHOT_WRITE");
    }
};

// ---- snapshot wire record ---------------------------------------------

TEST_F(CheckpointTest, SnapshotRecordRoundTrips)
{
    const std::string state = "run.concurrent b 0\nrun.now u 1234\n";
    std::string frame = serializeSnapshot(0xdeadbeefcafe1234ull, state);

    std::uint64_t key = 0;
    std::string got;
    EXPECT_EQ(decodeSnapshot(frame, key, got), WireDecode::Ok);
    EXPECT_EQ(key, 0xdeadbeefcafe1234ull);
    EXPECT_EQ(got, state);
}

TEST_F(CheckpointTest, TruncatedSnapshotFrameIsCorrupt)
{
    std::string frame = serializeSnapshot(7, "some state lines\n");
    frame.resize(frame.size() - 5);

    std::uint64_t key = 99;
    std::string state = "untouched";
    EXPECT_EQ(decodeSnapshot(frame, key, state), WireDecode::Corrupt);
    EXPECT_EQ(key, 99u) << "outputs must be untouched on failure";
    EXPECT_EQ(state, "untouched");
}

TEST_F(CheckpointTest, FlippedSnapshotByteIsCorrupt)
{
    std::string frame = serializeSnapshot(7, "some state lines\n");
    frame[frame.size() - 3] ^= 0x01;  // inside the payload

    std::uint64_t key = 0;
    std::string state;
    EXPECT_EQ(decodeSnapshot(frame, key, state), WireDecode::Corrupt);
}

TEST_F(CheckpointTest, BumpedSnapshotVersionIsVersionSkew)
{
    std::string frame = serializeSnapshot(7, "some state lines\n");
    auto pos = frame.find(" v1 ");
    ASSERT_NE(pos, std::string::npos);
    frame.replace(pos, 4, " v2 ");

    std::uint64_t key = 0;
    std::string state;
    EXPECT_EQ(decodeSnapshot(frame, key, state),
              WireDecode::VersionSkew);
    EXPECT_EQ(runner::kSnapshotVersion, 1u)
        << "bump the hand-crafted v2 header above with the format";
}

// ---- SimEngine checkpoint observer ------------------------------------

TEST_F(CheckpointTest, CheckpointObserverFiresAndDoesNotPerturbTheRun)
{
    // Reference: no checkpointing at all.
    SimStats ref = SimEngine(goldenBase()).run(microWorkload("conflict:0"));

    SimEngine engine(goldenBase());
    std::vector<std::pair<std::string, Cycle>> snaps;
    sim::EngineObserver obs;
    obs.onCheckpoint = [&](const std::string &payload, Cycle now) {
        snaps.emplace_back(payload, now);
    };
    engine.addObserver(std::move(obs));
    engine.setCheckpointInterval(200);

    SimStats s = engine.run(microWorkload("conflict:0"));
    ASSERT_FALSE(snaps.empty()) << "no checkpoint fired";
    EXPECT_EQ(sim::statsFingerprintHex(s), sim::statsFingerprintHex(ref))
        << "observing checkpoints must be invisible to the simulation";
    for (std::size_t i = 1; i < snaps.size(); ++i)
        EXPECT_GT(snaps[i].second, snaps[i - 1].second);
}

TEST_F(CheckpointTest, ResumeRejectsDamagedPayload)
{
    SimEngine engine(goldenBase());
    Application app = wrapKernel(microWorkload("conflict:0"));
    EXPECT_THROW(engine.sim().resume(app, "not a state payload\n"),
                 CacheError);
}

// ---- golden determinism matrix: snapshot + resume == uninterrupted ----

TEST_F(CheckpointTest, ResumedRunMatchesGoldenFingerprintsEverywhere)
{
    auto goldens = loadGoldens();
    const char *workloads[] = { "fma-unbalanced", "imbalance:4",
                                "conflict:0" };
    GpuConfig base = goldenBase();
    for (runner::Design d : runner::allDesigns()) {
        std::string name = runner::toString(d);
        ASSERT_TRUE(goldens.count(name)) << "no goldens for " << name;
        for (const char *w : workloads) {
            KernelDesc kernel = microWorkload(w);

            // Uninterrupted run, capturing every mid-run snapshot.
            SimEngine full(runner::designConfig(base, name));
            std::vector<std::string> snaps;
            sim::EngineObserver obs;
            obs.onCheckpoint = [&](const std::string &payload, Cycle) {
                snaps.push_back(payload);
            };
            full.addObserver(std::move(obs));
            full.setCheckpointInterval(200);
            SimStats ref = full.run(kernel);
            EXPECT_EQ(sim::statsFingerprintHex(ref), goldens[name][w])
                << "design '" << name << "' workload '" << w
                << "' diverged from seed behavior";
            ASSERT_FALSE(snaps.empty())
                << "design '" << name << "' workload '" << w
                << "' finished before the first checkpoint";

            // Resume a fresh simulator from a mid-run snapshot: the
            // rest of the run must land on the same fingerprint.
            SimEngine resumed(runner::designConfig(base, name));
            SimStats got = resumed.sim().resume(
                wrapKernel(kernel), snaps[snaps.size() / 2]);
            EXPECT_EQ(sim::statsFingerprintHex(got), goldens[name][w])
                << "design '" << name << "' workload '" << w
                << "' resumed to a different result";
        }
    }
}

// ---- run-job cold-start fallback for every damage class ---------------

/** Run @p job through `run-job` with checkpointing against @p dir. */
SubprocessResult
runJobCli(const SimJob &job, const std::string &dir)
{
    return runSubprocess({ SCSIM_CLI_PATH, "run-job",
                           "--checkpoint-cycles", "200", "--state-dir",
                           dir },
                         serializeJob(job), 120.0);
}

/** In-process reference payload for @p job. */
std::string
referencePayload(const SimJob &job)
{
    SimEngine engine(job.cfg);
    return serializeStatsPayload(
        engine.runApp(job.app, job.salt, job.concurrent));
}

/** Assert the job succeeded and matched the in-process reference. */
void
expectCleanResult(const SubprocessResult &sub, const SimJob &job)
{
    ASSERT_TRUE(sub.exitedCleanly())
        << "exit " << sub.exitCode << " signal " << sub.termSignal
        << "\n" << sub.stderrTail;
    JobResult r;
    ASSERT_EQ(decodeJobResult(sub.stdoutText, r), WireDecode::Ok);
    EXPECT_EQ(r.status, JobStatus::Ok) << r.error;
    EXPECT_EQ(serializeStatsPayload(r.stats), referencePayload(job));
}

/** Seed a damaged snapshot, run the job, expect quarantine + success. */
void
expectColdStartRecovery(const std::string &leaf,
                        const std::string &snapshotBytes)
{
    SimJob job = tinyJob();
    std::string dir = freshDir(leaf);
    std::string snap = dir + "/" + keyToHex(jobKey(job)) + ".snap";
    spew(snap, snapshotBytes);

    SubprocessResult sub = runJobCli(job, dir);
    expectCleanResult(sub, job);
    EXPECT_TRUE(std::filesystem::exists(snap + ".corrupt"))
        << "damaged snapshot was not quarantined\n" << sub.stderrTail;
    EXPECT_FALSE(std::filesystem::exists(snap))
        << "snapshot must be unlinked once the job has a result";
}

TEST_F(CheckpointTest, RunJobStartsColdOnTruncatedSnapshot)
{
    std::string frame =
        serializeSnapshot(jobKey(tinyJob()), "run.concurrent b 0\n");
    frame.resize(frame.size() / 2);
    expectColdStartRecovery("truncated", frame);
}

TEST_F(CheckpointTest, RunJobStartsColdOnFlippedChecksumByte)
{
    std::string frame =
        serializeSnapshot(jobKey(tinyJob()), "run.concurrent b 0\n");
    frame[frame.size() - 2] ^= 0x01;
    expectColdStartRecovery("flipped", frame);
}

TEST_F(CheckpointTest, RunJobStartsColdOnVersionSkewedSnapshot)
{
    std::string frame =
        serializeSnapshot(jobKey(tinyJob()), "run.concurrent b 0\n");
    auto pos = frame.find(" v1 ");
    ASSERT_NE(pos, std::string::npos);
    frame.replace(pos, 4, " v9 ");
    expectColdStartRecovery("skewed", frame);
}

TEST_F(CheckpointTest, RunJobStartsColdOnForeignJobSnapshot)
{
    expectColdStartRecovery(
        "foreign",
        serializeSnapshot(jobKey(tinyJob()) + 1, "run.concurrent b 0\n"));
}

TEST_F(CheckpointTest, RunJobStartsColdOnUnusableState)
{
    // Valid frame, right job — but a payload the simulator rejects.
    expectColdStartRecovery(
        "unusable",
        serializeSnapshot(jobKey(tinyJob()), "not a state payload\n"));
}

TEST_F(CheckpointTest, RunJobSucceedsWithoutAnySnapshot)
{
    SimJob job = tinyJob();
    std::string dir = freshDir("nosnap");
    SubprocessResult sub = runJobCli(job, dir);
    expectCleanResult(sub, job);
    EXPECT_FALSE(std::filesystem::exists(
        dir + "/" + keyToHex(jobKey(job)) + ".snap"));
}

// ---- injected-ENOSPC degrade paths ------------------------------------

TEST_F(CheckpointTest, SnapshotWriteFaultDegradesButJobSucceeds)
{
    // Workers inherit the environment: every snapshot write fails as
    // if the disk were full.  The job must still finish correctly.
    setenv("SCSIM_FAULT_SNAPSHOT_WRITE", "1:1000000", 1);
    SimJob job = tinyJob();
    std::string dir = freshDir("enospc");

    SubprocessResult sub = runJobCli(job, dir);
    expectCleanResult(sub, job);
    EXPECT_NE(sub.stderrTail.find("continuing without checkpoints"),
              std::string::npos)
        << "expected exactly one degrade warning\n" << sub.stderrTail;
}

TEST_F(CheckpointTest, SnapshotFaultEnvParserRejectsGarbage)
{
    FaultInjector &fi = FaultInjector::instance();
    EXPECT_FALSE(fi.armSnapshotWriteFromEnv(nullptr));
    EXPECT_FALSE(fi.armSnapshotWriteFromEnv(""));
    EXPECT_FALSE(fi.armSnapshotWriteFromEnv("zero"));
    EXPECT_FALSE(fi.armSnapshotWriteFromEnv("3:"));
    EXPECT_TRUE(fi.armSnapshotWriteFromEnv("2"));
    EXPECT_TRUE(fi.armSnapshotWriteFromEnv("2:5"));
}

TEST_F(CheckpointTest, JournalDegradesToNoOpOnDiskFull)
{
    std::string dir = freshDir("journal");
    std::string path = dir + "/sweep.journal";
    FaultInjector::instance().armJournalWriteFaults(1, 1u << 20);

    JobResult r;
    r.status = JobStatus::Ok;
    JournalWriter w(path, 0x1234, 3, /*fresh=*/true);
    EXPECT_FALSE(w.degraded());
    EXPECT_NO_THROW(w.append(0, "a", r));  // fails -> warn + latch
    EXPECT_TRUE(w.degraded());
    EXPECT_NO_THROW(w.append(1, "b", r));  // silent no-op now

    // Only the first append even reached the injector.
    EXPECT_EQ(FaultInjector::instance().journalWriteAttempts(), 1u);

    // On disk: the header survived, no records, still parsable.
    auto contents = readJournal(path);
    EXPECT_EQ(contents.specHash, 0x1234u);
    EXPECT_TRUE(contents.records.empty());
    EXPECT_EQ(contents.dropped, 0u);
}

TEST_F(CheckpointTest, JournalKeepsRecordsWrittenBeforeDiskFilled)
{
    std::string dir = freshDir("journal_tail");
    std::string path = dir + "/sweep.journal";
    FaultInjector::instance().armJournalWriteFaults(2, 1);

    JobResult r;
    r.status = JobStatus::Ok;
    JournalWriter w(path, 0x5678, 3, /*fresh=*/true);
    w.append(0, "a", r);   // durable
    w.append(1, "b", r);   // ENOSPC -> degrade
    w.append(2, "c", r);   // no-op
    EXPECT_TRUE(w.degraded());

    auto contents = readJournal(path);
    ASSERT_EQ(contents.records.size(), 1u);
    EXPECT_EQ(contents.records[0].tag, "a");
}

// ---- CLI surface -------------------------------------------------------

TEST_F(CheckpointTest, VersionPrintsSnapshotFormat)
{
    SubprocessResult sub =
        runSubprocess({ SCSIM_CLI_PATH, "version" }, "", 30.0);
    ASSERT_TRUE(sub.exitedCleanly());
    EXPECT_NE(sub.stdoutText.find("snapshot format: v1"),
              std::string::npos)
        << sub.stdoutText;
}

TEST_F(CheckpointTest, CheckpointVerifyAcceptsGoodRejectsBad)
{
    std::string dir = freshDir("verify");
    std::string good = dir + "/good.snap";
    std::string bad = dir + "/bad.snap";
    std::string frame = serializeSnapshot(42, "run.concurrent b 0\n");
    spew(good, frame);
    frame[frame.size() - 2] ^= 0x01;
    spew(bad, frame);

    SubprocessResult ok = runSubprocess(
        { SCSIM_CLI_PATH, "checkpoint", "--file", good, "--verify" },
        "", 30.0);
    EXPECT_TRUE(ok.exitedCleanly()) << ok.stderrTail;

    SubprocessResult rej = runSubprocess(
        { SCSIM_CLI_PATH, "checkpoint", "--file", bad, "--verify" },
        "", 30.0);
    EXPECT_EQ(rej.termSignal, 0);
    EXPECT_NE(rej.exitCode, 0)
        << "corrupt snapshot must fail verification";
}

} // namespace
} // namespace scsim
