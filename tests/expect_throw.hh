/**
 * @file
 * EXPECT_THROW_WITH: gtest's EXPECT_THROW plus a substring check on
 * the exception message — the throwing counterpart of the message
 * regex that EXPECT_EXIT carried before the library layer switched
 * from scsim_fatal to exceptions (common/sim_error.hh).
 */

#ifndef SCSIM_TESTS_EXPECT_THROW_HH
#define SCSIM_TESTS_EXPECT_THROW_HH

#include <string>

#include <gtest/gtest.h>

#include "common/sim_error.hh"

#define EXPECT_THROW_WITH(stmt, ExType, substr)                         \
    do {                                                                \
        try {                                                           \
            stmt;                                                       \
            ADD_FAILURE() << "expected " #ExType " from: " #stmt;       \
        } catch (const ExType &caught_) {                               \
            EXPECT_NE(std::string(caught_.what()).find(substr),         \
                      std::string::npos)                                \
                << #ExType " message '" << caught_.what()               \
                << "' lacks '" << substr << "'";                        \
        }                                                               \
    } while (0)

#endif // SCSIM_TESTS_EXPECT_THROW_HH
