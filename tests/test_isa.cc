/** @file Unit tests for the instruction representation. */

#include <gtest/gtest.h>

#include "isa/instruction.hh"

namespace scsim {
namespace {

TEST(Opcode, StringRoundTrip)
{
    for (int i = 0; i < static_cast<int>(Opcode::NumOpcodes); ++i) {
        auto op = static_cast<Opcode>(i);
        EXPECT_EQ(opcodeFromString(toString(op)), op);
    }
}

TEST(OpcodeDeath, UnknownMnemonic)
{
    EXPECT_EXIT(opcodeFromString("HCF"), ::testing::ExitedWithCode(1),
                "unknown opcode");
}

TEST(Opcode, UnitMapping)
{
    EXPECT_EQ(unitOf(Opcode::FMA), UnitKind::SP);
    EXPECT_EQ(unitOf(Opcode::IADD), UnitKind::SP);
    EXPECT_EQ(unitOf(Opcode::MOV), UnitKind::SP);
    EXPECT_EQ(unitOf(Opcode::SFU), UnitKind::SFU);
    EXPECT_EQ(unitOf(Opcode::TENSOR), UnitKind::Tensor);
    EXPECT_EQ(unitOf(Opcode::LDG), UnitKind::LdSt);
    EXPECT_EQ(unitOf(Opcode::STS), UnitKind::LdSt);
    EXPECT_EQ(unitOf(Opcode::BAR), UnitKind::None);
    EXPECT_EQ(unitOf(Opcode::EXIT), UnitKind::None);
}

TEST(Opcode, MemoryClassification)
{
    EXPECT_TRUE(isMemory(Opcode::LDG));
    EXPECT_TRUE(isMemory(Opcode::STG));
    EXPECT_TRUE(isMemory(Opcode::LDS));
    EXPECT_TRUE(isMemory(Opcode::STS));
    EXPECT_FALSE(isMemory(Opcode::FMA));
    EXPECT_FALSE(isMemory(Opcode::BAR));

    EXPECT_TRUE(isLoad(Opcode::LDG));
    EXPECT_TRUE(isLoad(Opcode::LDS));
    EXPECT_FALSE(isLoad(Opcode::STG));
    EXPECT_FALSE(isLoad(Opcode::FMA));
}

TEST(Instruction, AluConstructor)
{
    Instruction i = Instruction::alu(Opcode::FMA, 3, 3, 4, 5);
    EXPECT_EQ(i.op, Opcode::FMA);
    EXPECT_EQ(i.dst, 3);
    EXPECT_EQ(i.numSrcs(), 3);
    EXPECT_TRUE(i.usesCollector());
}

TEST(Instruction, NumSrcsCountsOnlyUsed)
{
    Instruction i = Instruction::alu(Opcode::IADD, 1, 2);
    EXPECT_EQ(i.numSrcs(), 1);
    Instruction mov = Instruction::alu(Opcode::MOV, 1);
    EXPECT_EQ(mov.numSrcs(), 0);
}

TEST(Instruction, LoadStoreShapes)
{
    MemInfo m;
    m.space = MemSpace::Global;
    Instruction ld = Instruction::load(Opcode::LDG, 5, 6, m);
    EXPECT_EQ(ld.dst, 5);
    EXPECT_EQ(ld.srcs[0], 6);
    EXPECT_EQ(ld.numSrcs(), 1);

    Instruction st = Instruction::store(Opcode::STG, 6, 5, m);
    EXPECT_EQ(st.dst, kNoReg);
    EXPECT_EQ(st.numSrcs(), 2);
}

TEST(Instruction, BarrierAndExitSkipCollector)
{
    EXPECT_FALSE(Instruction::barrier().usesCollector());
    EXPECT_FALSE(Instruction::exit().usesCollector());
    EXPECT_EQ(Instruction::barrier().dst, kNoReg);
    EXPECT_EQ(Instruction::exit().numSrcs(), 0);
}

TEST(MemInfo, Defaults)
{
    MemInfo m;
    EXPECT_EQ(m.space, MemSpace::Global);
    EXPECT_GT(m.footprintBytes, 0u);
    EXPECT_FALSE(m.randomAccess);
}

} // namespace
} // namespace scsim
