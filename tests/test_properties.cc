/** @file Cross-cutting property sweeps (TEST_P): invariants that must
 *  hold across design points, workloads and seeds. */

#include <set>

#include <gtest/gtest.h>

#include "gpu/gpu_sim.hh"
#include "workloads/microbench.hh"
#include "workloads/suite.hh"

namespace scsim {
namespace {

GpuConfig
volta(int sms)
{
    GpuConfig cfg = GpuConfig::volta();
    cfg.numSms = sms;
    return cfg;
}

/**
 * Property: across every design point, a run completes exactly the
 * launched work and the accounting identities hold.
 */
struct DesignPoint
{
    const char *name;
    SchedulerPolicy sched;
    AssignPolicy assign;
    int subCores;
    bool bankStealing;
    bool migration;
};

class DesignInvariants : public ::testing::TestWithParam<DesignPoint>
{};

TEST_P(DesignInvariants, AccountingHolds)
{
    DesignPoint p = GetParam();
    GpuConfig cfg = volta(2);
    cfg.scheduler = p.sched;
    cfg.assign = p.assign;
    cfg.subCores = p.subCores;
    cfg.bankStealing = p.bankStealing;
    cfg.idealWarpMigration = p.migration && p.subCores > 1;

    Application app = buildApp(findApp("rod-kmeans", 0.08));
    SimStats s = simulate(cfg, app);

    EXPECT_EQ(s.instructions, app.totalWarpInstructions());
    std::uint64_t warps = 0, blocks = 0;
    for (const auto &k : app.kernels) {
        blocks += static_cast<std::uint64_t>(k.numBlocks);
        warps += static_cast<std::uint64_t>(k.numBlocks)
            * static_cast<std::uint64_t>(k.warpsPerBlock);
    }
    EXPECT_EQ(s.blocksCompleted, blocks);
    EXPECT_EQ(s.warpsCompleted, warps);
    EXPECT_EQ(s.issueSlotsUsed, s.instructions);
    EXPECT_GT(s.cycles, 0u);
    // Every issued register write eventually retires: reads never
    // exceed 3 per instruction, writes never exceed 1.
    EXPECT_LE(s.rfReads, s.instructions * 3 * kWarpSize);
    EXPECT_LE(s.rfWrites, s.instructions * kWarpSize);
}

INSTANTIATE_TEST_SUITE_P(
    Designs, DesignInvariants,
    ::testing::Values(
        DesignPoint{ "baseline", SchedulerPolicy::GTO,
                     AssignPolicy::RoundRobin, 4, false, false },
        DesignPoint{ "lrr", SchedulerPolicy::LRR,
                     AssignPolicy::RoundRobin, 4, false, false },
        DesignPoint{ "rba", SchedulerPolicy::RBA,
                     AssignPolicy::RoundRobin, 4, false, false },
        DesignPoint{ "srr", SchedulerPolicy::GTO, AssignPolicy::SRR,
                     4, false, false },
        DesignPoint{ "shuffle", SchedulerPolicy::GTO,
                     AssignPolicy::Shuffle, 4, false, false },
        DesignPoint{ "hash-shuffle", SchedulerPolicy::GTO,
                     AssignPolicy::HashShuffle, 4, false, false },
        DesignPoint{ "fc", SchedulerPolicy::GTO,
                     AssignPolicy::RoundRobin, 1, false, false },
        DesignPoint{ "fc-rba", SchedulerPolicy::RBA,
                     AssignPolicy::RoundRobin, 1, false, false },
        DesignPoint{ "steal", SchedulerPolicy::GTO,
                     AssignPolicy::RoundRobin, 4, true, false },
        DesignPoint{ "migrate", SchedulerPolicy::GTO,
                     AssignPolicy::RoundRobin, 4, false, true }),
    [](const ::testing::TestParamInfo<DesignPoint> &info) {
        std::string n = info.param.name;
        for (char &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

/** Property: the imbalance penalty grows with the imbalance factor
 *  under RR and stays bounded under SRR. */
class ImbalanceMonotonicity : public ::testing::TestWithParam<double>
{};

TEST_P(ImbalanceMonotonicity, RrDegradesSrrHolds)
{
    double factor = GetParam();
    GpuConfig rr = volta(1);
    GpuConfig srr = rr;
    srr.assign = AssignPolicy::SRR;

    KernelDesc lo = makeImbalanceMicro(factor, 128, 6);
    KernelDesc hi = makeImbalanceMicro(factor * 2, 128, 6);
    double work = (8 * factor + 24) / 32.0;
    double workHi = (8 * factor * 2 + 24) / 32.0;

    double rrLo = static_cast<double>(simulate(rr, lo).cycles) / work;
    double rrHi = static_cast<double>(simulate(rr, hi).cycles) / workHi;
    EXPECT_GT(rrHi, rrLo * 1.02);   // per-unit-work time keeps growing

    double srrLo = static_cast<double>(simulate(srr, lo).cycles) / work;
    double srrHi = static_cast<double>(simulate(srr, hi).cycles)
        / workHi;
    EXPECT_LT(srrHi, srrLo * 1.35);  // SRR stays near-flat
}

INSTANTIATE_TEST_SUITE_P(Factors, ImbalanceMonotonicity,
                         ::testing::Values(2.0, 4.0, 8.0));

/** Property: seeds only matter for stochastic policies. */
class SeedSensitivity
    : public ::testing::TestWithParam<AssignPolicy>
{};

TEST_P(SeedSensitivity, DeterministicPoliciesIgnoreSeed)
{
    AssignPolicy p = GetParam();
    KernelDesc k = makeImbalanceMicro(6.0, 128, 6);
    std::set<Cycle> outcomes;
    for (std::uint64_t seed : { 1ull, 7777ull, 123456ull }) {
        GpuConfig cfg = volta(1);
        cfg.assign = p;
        cfg.seed = seed;
        outcomes.insert(simulate(cfg, k).cycles);
    }
    bool stochastic = p == AssignPolicy::Shuffle
        || p == AssignPolicy::HashShuffle;
    if (stochastic)
        EXPECT_GT(outcomes.size(), 1u);   // some seed must matter
    else
        EXPECT_EQ(outcomes.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Policies, SeedSensitivity,
                         ::testing::Values(AssignPolicy::RoundRobin,
                                           AssignPolicy::SRR,
                                           AssignPolicy::HashSRR,
                                           AssignPolicy::Shuffle,
                                           AssignPolicy::HashShuffle));

/** Property: adding collector units never hurts (on conflict micros,
 *  modulo a small timing-resonance tolerance). */
class CuMonotonicity : public ::testing::TestWithParam<int>
{};

TEST_P(CuMonotonicity, MoreCusNeverMuchWorse)
{
    int variant = GetParam();
    KernelDesc k = makeConflictMicro(variant, 512, 8);
    GpuConfig two = volta(1);
    GpuConfig eight = two;
    eight.collectorUnitsPerSm = 8 * eight.subCores;
    double ratio = static_cast<double>(simulate(eight, k).cycles)
        / static_cast<double>(simulate(two, k).cycles);
    EXPECT_LT(ratio, 1.12) << "variant " << variant;
}

INSTANTIATE_TEST_SUITE_P(Variants, CuMonotonicity,
                         ::testing::Range(0, kNumConflictMicros));

} // namespace
} // namespace scsim
