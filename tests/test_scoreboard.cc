/** @file Tests for the per-warp scoreboard. */

#include <gtest/gtest.h>

#include "core/scoreboard.hh"

namespace scsim {
namespace {

TEST(Scoreboard, FreshIsReady)
{
    Scoreboard sb;
    EXPECT_TRUE(sb.ready(Instruction::alu(Opcode::FMA, 0, 0, 1, 2)));
    EXPECT_FALSE(sb.anyPending());
}

TEST(Scoreboard, RawHazardBlocks)
{
    Scoreboard sb;
    sb.markIssue(Instruction::alu(Opcode::FMA, 5, 0, 1, 2));
    EXPECT_TRUE(sb.pending(5));
    // Consumer of r5 blocks; independent instruction does not.
    EXPECT_FALSE(sb.ready(Instruction::alu(Opcode::FADD, 6, 5, 1)));
    EXPECT_TRUE(sb.ready(Instruction::alu(Opcode::FADD, 6, 1, 2)));
}

TEST(Scoreboard, WawHazardBlocks)
{
    Scoreboard sb;
    sb.markIssue(Instruction::alu(Opcode::FMA, 5, 0, 1, 2));
    EXPECT_FALSE(sb.ready(Instruction::alu(Opcode::IADD, 5, 1)));
}

TEST(Scoreboard, CompleteUnblocks)
{
    Scoreboard sb;
    Instruction producer = Instruction::alu(Opcode::FMA, 5, 0, 1, 2);
    Instruction consumer = Instruction::alu(Opcode::FADD, 6, 5, 1);
    sb.markIssue(producer);
    EXPECT_FALSE(sb.ready(consumer));
    sb.completeWrite(5);
    EXPECT_TRUE(sb.ready(consumer));
    EXPECT_FALSE(sb.anyPending());
}

TEST(Scoreboard, TracksMultiplePending)
{
    Scoreboard sb;
    sb.markIssue(Instruction::alu(Opcode::FMA, 1, 0, 2, 3));
    sb.markIssue(Instruction::alu(Opcode::FMA, 4, 0, 2, 3));
    EXPECT_EQ(sb.pendingCount(), 2);
    sb.completeWrite(1);
    EXPECT_EQ(sb.pendingCount(), 1);
    EXPECT_TRUE(sb.pending(4));
    EXPECT_FALSE(sb.pending(1));
}

TEST(Scoreboard, NoDestinationIsNoOp)
{
    Scoreboard sb;
    sb.markIssue(Instruction::store(Opcode::STG, 1, 2, MemInfo{}));
    EXPECT_FALSE(sb.anyPending());
}

TEST(Scoreboard, ResetClears)
{
    Scoreboard sb;
    sb.markIssue(Instruction::alu(Opcode::FMA, 1, 0, 2, 3));
    sb.reset();
    EXPECT_FALSE(sb.anyPending());
    EXPECT_FALSE(sb.pending(1));
}

TEST(ScoreboardDeath, DoubleCompletePanics)
{
    Scoreboard sb;
    sb.markIssue(Instruction::alu(Opcode::FMA, 1, 0, 2, 3));
    sb.completeWrite(1);
    EXPECT_DEATH(sb.completeWrite(1), "never issued");
}

TEST(ScoreboardDeath, WawIssueWithoutReadyPanics)
{
    Scoreboard sb;
    sb.markIssue(Instruction::alu(Opcode::FMA, 1, 0, 2, 3));
    EXPECT_DEATH(sb.markIssue(Instruction::alu(Opcode::FMA, 1, 0, 2, 3)),
                 "WAW");
}

} // namespace
} // namespace scsim
