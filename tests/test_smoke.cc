/** @file End-to-end smoke: the FMA micro runs and shows the Fig 3 shape. */

#include <gtest/gtest.h>

#include "gpu/gpu_sim.hh"
#include "workloads/microbench.hh"

namespace scsim {
namespace {

TEST(Smoke, FmaMicroRunsToCompletion)
{
    GpuConfig cfg = GpuConfig::volta();
    cfg.numSms = 1;
    KernelDesc k = makeFmaMicro(FmaLayout::Baseline, 256, 4);
    SimStats stats = simulate(cfg, k);
    EXPECT_GT(stats.cycles, 0u);
    EXPECT_EQ(stats.blocksCompleted, 4u);
    EXPECT_EQ(stats.warpsCompleted, 4u * 8u);
}

TEST(Smoke, UnbalancedSlowerThanBalanced)
{
    GpuConfig cfg = GpuConfig::volta();
    cfg.numSms = 1;
    auto cyclesOf = [&](FmaLayout layout) {
        return simulate(cfg, makeFmaMicro(layout, 512, 8)).cycles;
    };
    Cycle balanced = cyclesOf(FmaLayout::Balanced);
    Cycle unbalanced = cyclesOf(FmaLayout::Unbalanced);
    EXPECT_GT(unbalanced, balanced * 2);
}

} // namespace
} // namespace scsim
