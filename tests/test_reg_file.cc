/** @file Tests for the banked register file arbiter. */

#include <gtest/gtest.h>

#include "core/reg_file.hh"

namespace scsim {
namespace {

TEST(RegFileArbiter, BankSwizzle)
{
    RegFileArbiter arb(2);
    EXPECT_EQ(arb.bankOf(0, 0), 0);
    EXPECT_EQ(arb.bankOf(1, 0), 1);
    // Mod 2 the swizzle is the plain parity mapping: slot flips it.
    EXPECT_EQ(arb.bankOf(0, 1), 1);
    EXPECT_EQ(arb.bankOf(7, 3), (7 + 3) % 2);

    RegFileArbiter arb8(8);
    EXPECT_EQ(arb8.bankOf(5, 10), (5 + 7 * 10) % 8);
}

TEST(RegFileArbiter, OneReadPerBankPerCycle)
{
    RegFileArbiter arb(2);
    arb.pushRead(0, ReadRequest{ 0, 1 });
    arb.pushRead(0, ReadRequest{ 1, 1 });
    arb.pushRead(1, ReadRequest{ 2, 1 });

    ArbGrants g;
    arb.arbitrate(g);
    EXPECT_EQ(g.reads.size(), 2u);        // one per bank
    EXPECT_EQ(g.conflictCycles, 1);       // bank 0 still has a reader
    EXPECT_EQ(arb.readQueueLen(0), 1);
    EXPECT_EQ(arb.readQueueLen(1), 0);

    g.clear();
    arb.arbitrate(g);
    EXPECT_EQ(g.reads.size(), 1u);
    EXPECT_EQ(g.conflictCycles, 0);
    EXPECT_FALSE(arb.anyPending());
}

TEST(RegFileArbiter, ReadsAreFifoPerBank)
{
    RegFileArbiter arb(1);
    arb.pushRead(0, ReadRequest{ 7, 1 });
    arb.pushRead(0, ReadRequest{ 8, 2 });
    ArbGrants g;
    arb.arbitrate(g);
    ASSERT_EQ(g.reads.size(), 1u);
    EXPECT_EQ(g.reads[0].cu, 7);
    g.clear();
    arb.arbitrate(g);
    ASSERT_EQ(g.reads.size(), 1u);
    EXPECT_EQ(g.reads[0].cu, 8);
}

TEST(RegFileArbiter, WritePortIsIndependent)
{
    RegFileArbiter arb(2);
    arb.pushRead(0, ReadRequest{ 0, 1 });
    arb.pushWrite(0, WriteRequest{ 3, 12 });
    ArbGrants g;
    arb.arbitrate(g);
    // Same bank grants both its read and its write this cycle.
    EXPECT_EQ(g.reads.size(), 1u);
    ASSERT_EQ(g.writes.size(), 1u);
    EXPECT_EQ(g.writes[0].warp, 3);
    EXPECT_EQ(g.writes[0].reg, 12);
    EXPECT_EQ(g.conflictCycles, 0);
}

TEST(RegFileArbiter, WritesQueuePerBank)
{
    RegFileArbiter arb(1);
    arb.pushWrite(0, WriteRequest{ 1, 1 });
    arb.pushWrite(0, WriteRequest{ 2, 2 });
    ArbGrants g;
    arb.arbitrate(g);
    ASSERT_EQ(g.writes.size(), 1u);
    EXPECT_EQ(g.writes[0].warp, 1);
    EXPECT_TRUE(arb.anyPending());
    g.clear();
    arb.arbitrate(g);
    ASSERT_EQ(g.writes.size(), 1u);
    EXPECT_EQ(g.writes[0].warp, 2);
}

TEST(RegFileArbiter, ReadIdleTracksQueues)
{
    RegFileArbiter arb(2);
    EXPECT_TRUE(arb.readIdle(0));
    arb.pushRead(0, ReadRequest{ 0, 1 });
    EXPECT_FALSE(arb.readIdle(0));
    EXPECT_TRUE(arb.readIdle(1));
}

TEST(RegFileArbiter, ResetDrainsEverything)
{
    RegFileArbiter arb(2);
    arb.pushRead(0, ReadRequest{ 0, 1 });
    arb.pushWrite(1, WriteRequest{ 0, 3 });
    arb.reset();
    EXPECT_FALSE(arb.anyPending());
    EXPECT_EQ(arb.readQueueLen(0), 0);
}

/** Sweep bank counts: each bank grants at most one read per cycle. */
class ArbiterSweep : public ::testing::TestWithParam<int> {};

TEST_P(ArbiterSweep, GrantInvariant)
{
    int banks = GetParam();
    RegFileArbiter arb(banks);
    // Two requests on every bank.
    for (int b = 0; b < banks; ++b) {
        arb.pushRead(b, ReadRequest{ b, 1 });
        arb.pushRead(b, ReadRequest{ b + 100, 1 });
    }
    ArbGrants g;
    arb.arbitrate(g);
    EXPECT_EQ(static_cast<int>(g.reads.size()), banks);
    EXPECT_EQ(g.conflictCycles, banks);
    g.clear();
    arb.arbitrate(g);
    EXPECT_EQ(static_cast<int>(g.reads.size()), banks);
    EXPECT_EQ(g.conflictCycles, 0);
    EXPECT_FALSE(arb.anyPending());
}

INSTANTIATE_TEST_SUITE_P(Banks, ArbiterSweep,
                         ::testing::Values(1, 2, 4, 8));

} // namespace
} // namespace scsim
