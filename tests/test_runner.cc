/**
 * @file
 * Sweep-engine tests: job-key content addressing, result-cache
 * round-trips and hit/miss/invalidation behavior, thread-count
 * invariance of the merged results and manifests, and the
 * longest-expected-first ordering helpers.
 *
 * Labeled `runner` in CTest so `ctest -L runner` (and the `tsan`
 * preset) can exercise exactly the threaded paths.
 */

#include <atomic>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "expect_throw.hh"
#include "runner/design.hh"
#include "runner/job_key.hh"
#include "runner/report.hh"
#include "runner/result_cache.hh"
#include "runner/sweep_engine.hh"
#include "runner/worker_pool.hh"

namespace scsim::runner {
namespace {

/** A seconds-scale-free workload: small grid, short warps. */
AppSpec
tinyApp(const std::string &name, int blocks = 4)
{
    AppSpec app;
    app.name = name;
    app.suite = "test";
    app.numBlocks = blocks;
    app.warpsPerBlock = 4;
    app.baseInsts = 60;
    app.footprintMB = 1;
    return app;
}

GpuConfig
tinyCfg()
{
    GpuConfig cfg = GpuConfig::volta();
    cfg.numSms = 2;
    return cfg;
}

/** Baseline + RBA + Shuffle over three tiny apps. */
SweepSpec
tinySpec()
{
    SweepSpec spec;
    GpuConfig base = tinyCfg();
    for (const char *name : { "appA", "appB", "appC" }) {
        AppSpec app = tinyApp(name);
        for (Design d :
             { Design::Baseline, Design::RBA, Design::Shuffle }) {
            spec.add(app.name + std::string("|") + toString(d),
                     applyDesign(base, d), app);
        }
    }
    return spec;
}

/** Fresh empty directory under the gtest temp root. */
std::string
freshDir(const std::string &leaf)
{
    std::string dir = testing::TempDir() + "scsim_" + leaf;
    std::filesystem::remove_all(dir);
    return dir;
}

TEST(JobKey, SameJobSameKey)
{
    SimJob a{ "t", tinyCfg(), tinyApp("x"), 0, false };
    SimJob b{ "different-tag", tinyCfg(), tinyApp("x"), 0, false };
    // The tag names the result row; it is not part of the content.
    EXPECT_EQ(jobKey(a), jobKey(b));
}

TEST(JobKey, SensitiveToEveryInput)
{
    SimJob base{ "t", tinyCfg(), tinyApp("x"), 0, false };
    std::uint64_t k = jobKey(base);

    SimJob salted = base;
    salted.salt = 1;
    EXPECT_NE(jobKey(salted), k);

    SimJob conc = base;
    conc.concurrent = true;
    EXPECT_NE(jobKey(conc), k);

    SimJob sched = base;
    sched.cfg.scheduler = SchedulerPolicy::RBA;
    EXPECT_NE(jobKey(sched), k);

    SimJob knob = base;
    knob.cfg.rbaScoreLatency = 8;
    EXPECT_NE(jobKey(knob), k);

    SimJob work = base;
    work.app.baseInsts += 1;
    EXPECT_NE(jobKey(work), k);

    SimJob pattern = base;
    pattern.app.divPattern = { 1.0, 4.0 };
    EXPECT_NE(jobKey(pattern), k);
}

TEST(JobKey, HexIsFixedWidth)
{
    EXPECT_EQ(keyToHex(0x1), "0000000000000001");
    EXPECT_EQ(keyToHex(0xdeadbeefcafef00dULL), "deadbeefcafef00d");
}

TEST(ResultCache, SerializeRoundTrip)
{
    SimStats s;
    s.cycles = 12345;
    s.instructions = 678;
    s.issuePerScheduler = { { 1, 2, 3 }, { 4, 5, 6 } };
    s.rfReads = 999;
    s.l2Misses = 42;
    s.kernelSpans.emplace_back("gemm pass 1", 100);
    s.kernelSpans.emplace_back("reduce", 200);
    s.rfReadTrace = TimeSeries{ 8 };
    s.rfReadTrace.add(0, 16.0);
    s.rfReadTrace.add(9, 24.0);
    s.rfReadTrace.finalize(16);

    SimStats back;
    ASSERT_TRUE(deserializeStats(serializeStats(s), back));
    EXPECT_EQ(back.cycles, s.cycles);
    EXPECT_EQ(back.instructions, s.instructions);
    EXPECT_EQ(back.issuePerScheduler, s.issuePerScheduler);
    EXPECT_EQ(back.rfReads, s.rfReads);
    EXPECT_EQ(back.l2Misses, s.l2Misses);
    ASSERT_EQ(back.kernelSpans.size(), 2u);
    EXPECT_EQ(back.kernelSpans[0].first, "gemm pass 1");
    EXPECT_EQ(back.kernelSpans[1].second, 200u);
    EXPECT_EQ(back.rfReadTrace.window(), 8u);
    EXPECT_EQ(back.rfReadTrace.samples(), s.rfReadTrace.samples());

    // The round-trip must also be byte-stable (cache re-writes).
    EXPECT_EQ(serializeStats(back), serializeStats(s));
}

TEST(ResultCache, RejectsGarbageAndVersionSkew)
{
    SimStats out;
    EXPECT_FALSE(deserializeStats("", out));
    EXPECT_FALSE(deserializeStats("not a result file\n", out));
    EXPECT_FALSE(deserializeStats("scsim-result v999\ncycles 1\n", out));
}

TEST(ResultCache, DiskPersistsAcrossInstances)
{
    std::string dir = freshDir("cache_persist");
    SimStats s;
    s.cycles = 777;
    {
        ResultCache cache(dir);
        cache.store(0xabcdef, s);
    }
    ResultCache fresh(dir);
    SimStats out;
    EXPECT_TRUE(fresh.lookup(0xabcdef, out));
    EXPECT_EQ(out.cycles, 777u);
    EXPECT_EQ(fresh.hits(), 1u);
    EXPECT_FALSE(fresh.lookup(0x123456, out));
    EXPECT_EQ(fresh.misses(), 1u);
    std::filesystem::remove_all(dir);
}

TEST(WorkerPool, ResolveJobs)
{
    EXPECT_GE(resolveJobs(0), 1);
    EXPECT_EQ(resolveJobs(3), 3);
}

TEST(WorkerPool, RunsEveryIndexOnce)
{
    std::vector<std::size_t> order { 4, 2, 0, 1, 3 };
    std::vector<std::atomic<int>> hits(5);
    runOrdered(order, 4, [&](std::size_t i) { ++hits[i]; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(SweepEngine, ThreadCountInvariance)
{
    SweepSpec spec = tinySpec();

    SweepEngine serial{ SweepOptions{ .jobs = 1, .cacheDir = "" } };
    SweepResult r1 = serial.run(spec);

    SweepEngine parallel{ SweepOptions{ .jobs = 8, .cacheDir = "" } };
    SweepResult r8 = parallel.run(spec);

    ASSERT_EQ(r1.results.size(), r8.results.size());
    for (std::size_t i = 0; i < r1.results.size(); ++i) {
        EXPECT_EQ(r1.results[i].key, r8.results[i].key);
        EXPECT_EQ(r1.results[i].stats.cycles,
                  r8.results[i].stats.cycles)
            << "job " << r1.tags[i];
        EXPECT_EQ(r1.results[i].stats.rfBankConflictCycles,
                  r8.results[i].stats.rfBankConflictCycles);
    }
    // The structured manifests must be byte-identical.
    EXPECT_EQ(jsonManifest(spec, r1), jsonManifest(spec, r8));
    EXPECT_EQ(csvManifest(spec, r1), csvManifest(spec, r8));
}

TEST(SweepEngine, CacheHitsOnRerun)
{
    std::string dir = freshDir("cache_rerun");
    SweepSpec spec = tinySpec();

    SweepEngine first{ SweepOptions{ .jobs = 4, .cacheDir = dir } };
    SweepResult cold = first.run(spec);
    EXPECT_EQ(cold.executed, spec.jobs.size());
    EXPECT_EQ(cold.cacheHits, 0u);

    SweepEngine second{ SweepOptions{ .jobs = 4, .cacheDir = dir } };
    SweepResult warm = second.run(spec);
    EXPECT_EQ(warm.executed, 0u);
    EXPECT_EQ(warm.cacheHits, spec.jobs.size());

    // Cached results are indistinguishable from simulated ones.
    EXPECT_EQ(jsonManifest(spec, cold), jsonManifest(spec, warm));
    std::filesystem::remove_all(dir);
}

TEST(SweepEngine, ConfigChangeInvalidatesCache)
{
    std::string dir = freshDir("cache_invalidate");
    SweepSpec spec = tinySpec();

    SweepEngine first{ SweepOptions{ .jobs = 4, .cacheDir = dir } };
    first.run(spec);

    // An SM-count change must miss on every point...
    SweepSpec bigger = spec;
    for (SimJob &job : bigger.jobs)
        job.cfg.numSms = 4;
    SweepEngine second{ SweepOptions{ .jobs = 4, .cacheDir = dir } };
    SweepResult r = second.run(bigger);
    EXPECT_EQ(r.cacheHits, 0u);
    EXPECT_EQ(r.executed, bigger.jobs.size());

    // ...while the unchanged spec still hits everything.
    SweepEngine third{ SweepOptions{ .jobs = 4, .cacheDir = dir } };
    EXPECT_EQ(third.run(spec).cacheHits, spec.jobs.size());
    std::filesystem::remove_all(dir);
}

TEST(SweepEngine, SaltInvalidatesCache)
{
    std::string dir = freshDir("cache_salt");
    SweepSpec spec = tinySpec();
    SweepEngine first{ SweepOptions{ .jobs = 2, .cacheDir = dir } };
    first.run(spec);

    SweepSpec salted = spec;
    for (SimJob &job : salted.jobs)
        job.salt = 99;
    SweepEngine second{ SweepOptions{ .jobs = 2, .cacheDir = dir } };
    EXPECT_EQ(second.run(salted).cacheHits, 0u);
    std::filesystem::remove_all(dir);
}

TEST(SweepEngine, ByTagLookup)
{
    SweepSpec spec;
    spec.add("only", tinyCfg(), tinyApp("solo"));
    SweepEngine engine{ SweepOptions{ .jobs = 1, .cacheDir = "" } };
    SweepResult r = engine.run(spec);
    EXPECT_GT(r.cycles("only"), 0u);
    EXPECT_EQ(&r.stats("only"), &r.results[0].stats);
}

TEST(SweepEngine, DuplicateTagFailsBeforeAnyJobRuns)
{
    SweepSpec spec;
    spec.add("dup", tinyCfg(), tinyApp("a"));
    spec.add("dup", tinyCfg(), tinyApp("b"));
    SweepEngine engine{ SweepOptions{ .jobs = 1, .cacheDir = "" } };
    // The message names the offending tag and app.
    EXPECT_THROW_WITH(engine.run(spec), ConfigError,
                      "duplicate sweep tag 'dup' (app 'b')");
}

TEST(SweepEngine, InvalidConfigReportsTagAndAppUpfront)
{
    SweepSpec spec;
    spec.add("good", tinyCfg(), tinyApp("a"));
    GpuConfig bad = tinyCfg();
    bad.rfBanksPerSm = 6;   // not divisible by 4 sub-cores
    spec.add("broken", bad, tinyApp("b"));
    SweepEngine engine{ SweepOptions{ .jobs = 1, .cacheDir = "" } };
    EXPECT_THROW_WITH(engine.run(spec), ConfigError,
                      "job 'broken' (app 'b')");
    EXPECT_THROW_WITH(engine.run(spec), ConfigError,
                      "no jobs were run");
}

TEST(ExpectedCost, OrdersByWork)
{
    SimJob small{ "s", tinyCfg(), tinyApp("s", 2), 0, false };
    SimJob large{ "l", tinyCfg(), tinyApp("l", 64), 0, false };
    EXPECT_GT(large.expectedCost(), small.expectedCost());

    // A fully-connected SM costs more to simulate than a partitioned
    // one for identical work.
    SimJob fc = small;
    fc.cfg = applyDesign(tinyCfg(), Design::FullyConnected);
    EXPECT_GT(fc.expectedCost(), small.expectedCost());
}

} // namespace
} // namespace scsim::runner
